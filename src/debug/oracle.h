/**
 * @file
 * Lockstep commit oracle. Runs the golden-model functional interpreter
 * (isa/interp.h) one retired instruction at a time alongside the
 * out-of-order core: every commit the core makes is replayed on the
 * interpreter and the architectural effects are compared immediately --
 * PC of the committed instruction, destination register values (incl.
 * CV trap payloads), enqueued queue entries, and stored memory. The run
 * halts at the *first* diverging commit with a structured report,
 * instead of an end-of-run memory diff that says nothing about where
 * the pipeline went wrong.
 *
 * The interpreter runs in lockstep mode (Interp::setLockstep): it never
 * takes skip-arming decisions on its own, because those are
 * timing-dependent choices the OOO core already made. The oracle
 * mirrors them explicitly: an ENQTRAP commit pre-arms the interpreter
 * queue, and the core's non-speculative skip_to_ctrl drain is mirrored
 * through onSkipDrain().
 *
 * Scope: the oracle assumes a race-free program whose cross-thread
 * communication goes through Pipette queues (the intended programming
 * model). Threads racing on shared memory can legitimately diverge
 * from the sequential golden model and are not supported.
 */

#ifndef PIPETTE_DEBUG_ORACLE_H
#define PIPETTE_DEBUG_ORACLE_H

#include <string>
#include <unordered_map>

#include "core/dyn_inst.h"
#include "isa/interp.h"
#include "isa/machine_spec.h"
#include "mem/sim_memory.h"
#include "pipette/regfile.h"
#include "sim/types.h"

namespace pipette {
namespace debug {

/** Golden-model shadow of the whole system, stepped per commit. */
class LockstepOracle
{
  public:
    /** Snapshots the spec and the pre-run memory image. */
    LockstepOracle(const MachineSpec &spec, const SimMemory &initialMem,
                   uint32_t defaultQueueCap);

    /**
     * Verify one commit of thread (core, tid). Called from the core's
     * commit stage after the instruction's architectural effects are
     * applied (stores written, queue pointers advanced) but before it
     * leaves the ROB. Returns false on the first divergence; report()
     * then holds the structured description.
     */
    bool onCommit(Cycle now, CoreId core, ThreadId tid, const DynInst &inst,
                  const PhysRegFile &prf, const SimMemory &coreMem);

    /**
     * Mirror the core's non-speculative skip_to_ctrl drain: n committed
     * data entries of (core, q) were consumed outside commit.
     */
    bool onSkipDrain(Cycle now, CoreId core, ThreadId tid, QueueId q,
                     uint32_t n);

    bool diverged() const { return diverged_; }
    const std::string &report() const { return report_; }

  private:
    size_t threadIndex(CoreId core, ThreadId tid) const;
    void fail(const std::string &text);

    MachineSpec spec_; ///< owned copy; interp_ references it
    SimMemory mem_;    ///< golden memory image, evolves with the interp
    Interp interp_;
    std::unordered_map<uint32_t, size_t> threadIdx_; ///< (core<<8|tid)
    bool diverged_ = false;
    std::string report_;
};

} // namespace debug
} // namespace pipette

#endif // PIPETTE_DEBUG_ORACLE_H
