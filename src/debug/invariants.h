/**
 * @file
 * Structural invariant checks, run once per cycle by the System when
 * `GuardrailConfig::invariantChecks` is set (and at drain for the leak
 * checks). Each check returns false and fills `err` with a structured
 * description on the first violation; the run loop then stops with
 * StopReason::InvariantViolation instead of crashing later on the
 * corrupted state.
 */

#ifndef PIPETTE_DEBUG_INVARIANTS_H
#define PIPETTE_DEBUG_INVARIANTS_H

#include <string>

#include "pipette/qrm.h"

namespace pipette {
namespace debug {

/**
 * QRM pointer consistency for every queue of one core:
 * commHead <= specHead <= commTail <= specTail, occupancy within
 * capacity, and the per-core register budget accounting
 * (sum of totalSize == regsInUse <= maxRegs).
 */
bool checkQrmConsistency(const Qrm &qrm, CoreId core, std::string *err);

/**
 * Connector credit conservation: in-flight flits plus destination
 * occupancy never exceed the destination capacity (the credit budget).
 */
bool checkConnectorCredits(CoreId fromCore, QueueId fromQueue,
                           CoreId toCore, QueueId toQueue, size_t inflight,
                           uint64_t destOccupancy, uint64_t destCapacity,
                           std::string *err);

} // namespace debug
} // namespace pipette

#endif // PIPETTE_DEBUG_INVARIANTS_H
