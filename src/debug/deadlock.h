/**
 * @file
 * Watchdog deadlock diagnoser. When the run loop's watchdog fires, the
 * System collects a snapshot of every agent's wait state (threads
 * stalled on empty/full queues or exhausted resources, RA and connector
 * progress state, per-queue QRM pointers) and this module classifies it:
 *
 *  - build the thread <-> queue wait-for relation (dequeue-on-empty,
 *    enqueue-on-full, connector credit exhaustion, RA completion
 *    stalls), with queue producer/consumer topology taken from the
 *    MachineSpec;
 *  - run a relievability fixpoint: a waiting agent is relievable if
 *    some agent that could unblock it is progressing or itself
 *    relievable. If no agent is live at the end, the waits form a true
 *    deadlock (a cycle, or starvation behind a halted/stalled agent);
 *    otherwise the system is livelocked or just slow.
 *
 * The report lists every non-halted agent's wait edges plus occupancy
 * and head/tail state of each involved queue, so a wedged pipeline is
 * diagnosable from the log alone.
 */

#ifndef PIPETTE_DEBUG_DEADLOCK_H
#define PIPETTE_DEBUG_DEADLOCK_H

#include <string>
#include <vector>

#include "isa/machine_spec.h"
#include "pipette/qrm.h"
#include "sim/types.h"

namespace pipette {
namespace debug {

/** What a thread's rename stage is blocked on (if anything). */
enum class WaitState : uint8_t
{
    None,       ///< renaming normally
    FetchEmpty, ///< nothing renameable (frontend / redirect)
    QueueEmpty, ///< dequeue source(s) have no committed entry
    QueueFull,  ///< enqueue destination is full / register budget
    Resource,   ///< ROB/IQ/LSQ/PRF/pool/checkpoint exhaustion
};

/** Per-thread wait snapshot, collected by Core::collectWaitInfo(). */
struct ThreadWaitInfo
{
    CoreId core = 0;
    ThreadId tid = 0;
    bool halted = false;
    Addr pc = 0;
    uint64_t committed = 0;
    uint64_t robSize = 0;
    WaitState wait = WaitState::None;
    /** Local queue ids the stalled instruction dequeues (QueueEmpty). */
    std::vector<QueueId> waitEmpty;
    /** Local queue id the stalled instruction enqueues (QueueFull). */
    std::vector<QueueId> waitFull;
    /** Resource-wait detail flags. */
    bool poolExhausted = false;
    bool ckptExhausted = false;
    /** Rename blocked by an injected pool/checkpoint fault. */
    bool faultBlocked = false;
};

/** Per-queue snapshot (one row per materialized queue). */
struct QueueSnapshot
{
    CoreId core = 0;
    QueueId queue = 0;
    Qrm::QueueDiag d;
};

/** Per-RA snapshot. */
struct RaSnapshot
{
    CoreId core = 0;
    QueueId inQueue = 0;
    QueueId outQueue = 0;
    size_t cbSize = 0;
    bool busy = false;    ///< scanning or mid-pair (holds work)
    bool stalled = false; ///< fault-injected freeze active
};

/** Per-connector snapshot. */
struct ConnectorSnapshot
{
    CoreId fromCore = 0;
    QueueId fromQueue = 0;
    CoreId toCore = 0;
    QueueId toQueue = 0;
    size_t inflight = 0;
    uint64_t credits = 0;       ///< destination capacity
    uint64_t destOccupancy = 0; ///< totalSize of the destination queue
    bool stalled = false;
};

struct DeadlockReport
{
    /** No agent can make progress: a wait cycle or dead-end starvation. */
    bool trueDeadlock = false;
    std::string text;
};

/** Classify a watchdog firing; all snapshots are read-only inputs. */
DeadlockReport diagnoseDeadlock(const MachineSpec &spec,
                                const std::vector<ThreadWaitInfo> &threads,
                                const std::vector<QueueSnapshot> &queues,
                                const std::vector<RaSnapshot> &ras,
                                const std::vector<ConnectorSnapshot> &conns,
                                Cycle now, Cycle sinceCommit);

const char *waitStateName(WaitState w);

} // namespace debug
} // namespace pipette

#endif // PIPETTE_DEBUG_DEADLOCK_H
