#include "debug/oracle.h"

#include <sstream>

namespace pipette {
namespace debug {

namespace {

/** Human-readable form of a committed micro-op. */
std::string
disasm(const DynInst &inst)
{
    if (inst.si && inst.op == inst.si->op)
        return inst.si->toString();
    return opInfo(inst.op).name;
}

} // namespace

LockstepOracle::LockstepOracle(const MachineSpec &spec,
                               const SimMemory &initialMem,
                               uint32_t defaultQueueCap)
    : spec_(spec), interp_(spec_, &mem_, defaultQueueCap)
{
    mem_.copyFrom(initialMem);
    interp_.setLockstep(true);
    for (size_t i = 0; i < spec_.threads.size(); i++) {
        const ThreadSpec &ts = spec_.threads[i];
        threadIdx_[(static_cast<uint32_t>(ts.core) << 8) | ts.tid] = i;
    }
}

size_t
LockstepOracle::threadIndex(CoreId core, ThreadId tid) const
{
    auto it = threadIdx_.find((static_cast<uint32_t>(core) << 8) | tid);
    panic_if(it == threadIdx_.end(), "oracle: commit from unknown thread c",
             static_cast<int>(core), ".t", static_cast<int>(tid));
    return it->second;
}

void
LockstepOracle::fail(const std::string &text)
{
    diverged_ = true;
    report_ = text;
}

bool
LockstepOracle::onCommit(Cycle now, CoreId core, ThreadId tid,
                         const DynInst &inst, const PhysRegFile &prf,
                         const SimMemory &coreMem)
{
    if (diverged_)
        return false;
    size_t idx = threadIndex(core, tid);

    std::ostringstream hdr;
    hdr << "lockstep oracle divergence at cycle " << now << ", core "
        << static_cast<int>(core) << " thread " << static_cast<int>(tid)
        << ", commit #" << interp_.threadInstrs(idx) + 1 << "\n  pc " << inst.pc
        << ": " << disasm(inst) << "\n";

    if (interp_.threadHalted(idx)) {
        fail(hdr.str() + "  core committed an instruction after the golden "
                         "model halted this thread");
        return false;
    }

    // First check: the commit streams must agree on *which* instruction
    // retires next. A wrong-path commit or a mis-taken branch shows up
    // here on the very next commit of the thread.
    if (interp_.threadPc(idx) != inst.pc) {
        std::ostringstream oss;
        oss << hdr.str() << "  golden model is at pc "
            << interp_.threadPc(idx) << ", core committed pc " << inst.pc;
        fail(oss.str());
        return false;
    }

    // An enqueue trap is a timing decision (the queue was skip-armed
    // when the producer renamed); mirror the arm onto the golden queue
    // so the interpreter takes the same trap.
    if (inst.op == Op::ENQTRAP) {
        interp_.setSkipArmed(core, static_cast<QueueId>(inst.cvQid), true);
    }

    // Step the golden thread until it retires exactly one instruction.
    // A step may block on a queue whose producer is an RA or connector
    // (non-speculative agents with no commit stream of their own):
    // sweep them until the thread can proceed. A skiptc discard steps
    // without retiring, hence the loop on the instruction counter.
    uint64_t before = interp_.threadInstrs(idx);
    uint64_t guard = 0;
    while (interp_.threadInstrs(idx) == before) {
        if (!interp_.stepThreadAt(idx) && !interp_.sweepAgents()) {
            std::ostringstream oss;
            oss << hdr.str()
                << "  golden model is blocked on a queue here (no RA or "
                   "connector can supply it), but the core committed";
            fail(oss.str());
            return false;
        }
        if (++guard > 1'000'000) {
            fail(hdr.str() + "  golden model failed to retire after 1M "
                             "steps (runaway skip drain?)");
            return false;
        }
    }

    // Architectural comparison: destination registers.
    ArchRegId darch[DynInst::MAX_DESTS];
    int ncmp = 0;
    if (inst.op == Op::CVTRAP) {
        darch[ncmp++] = reg::CVVAL;
        darch[ncmp++] = reg::CVQID;
        darch[ncmp++] = reg::CVRET;
    } else if (inst.op == Op::ENQTRAP) {
        darch[ncmp++] = reg::CVQID;
        darch[ncmp++] = reg::CVRET;
    } else if (inst.ndest == 1 && !inst.destIsQueue) {
        darch[ncmp++] = inst.si->rd;
    }
    for (int d = 0; d < ncmp; d++) {
        uint64_t got = prf.read(inst.dests[d]);
        uint64_t want = interp_.reg(idx, darch[d]);
        if (got != want) {
            std::ostringstream oss;
            oss << hdr.str() << "  dest r" << static_cast<int>(darch[d])
                << ": core wrote " << got << ", golden model expects "
                << want;
            fail(oss.str());
            return false;
        }
    }

    // Enqueued entry: the golden push just happened, so it is the
    // newest entry of the golden queue.
    if (inst.destIsQueue) {
        if (interp_.queueSize(core, inst.enqQueue) == 0) {
            fail(hdr.str() + "  core enqueued but the golden queue is "
                             "empty after the same instruction");
            return false;
        }
        auto [want, wantCtrl] = interp_.queueBack(core, inst.enqQueue);
        uint64_t got = prf.read(inst.dests[0]);
        bool gotCtrl = inst.si->op == Op::ENQC;
        if (got != want || gotCtrl != wantCtrl) {
            std::ostringstream oss;
            oss << hdr.str() << "  enqueue to q"
                << static_cast<int>(inst.enqQueue) << ": core pushed "
                << got << (gotCtrl ? " (ctrl)" : "")
                << ", golden model pushed " << want
                << (wantCtrl ? " (ctrl)" : "");
            fail(oss.str());
            return false;
        }
    }

    // Stored memory: both models have applied the store by now.
    if ((inst.isStore || inst.isAtomic) && inst.memSize > 0) {
        uint64_t got = coreMem.read(inst.memAddr, inst.memSize);
        uint64_t want = mem_.read(inst.memAddr, inst.memSize);
        if (got != want) {
            std::ostringstream oss;
            oss << hdr.str() << "  memory [" << inst.memAddr << " +"
                << static_cast<int>(inst.memSize) << "]: core has " << got
                << ", golden model has " << want;
            fail(oss.str());
            return false;
        }
    }

    if (inst.op == Op::HALT && !interp_.threadHalted(idx)) {
        fail(hdr.str() + "  core committed HALT but the golden model "
                         "thread is still running");
        return false;
    }
    return true;
}

bool
LockstepOracle::onSkipDrain(Cycle now, CoreId core, ThreadId tid, QueueId q,
                            uint32_t n)
{
    if (diverged_)
        return false;
    for (uint32_t i = 0; i < n; i++) {
        // The drained entries are committed in the core, but the golden
        // producer (an RA or connector) may not have pushed them yet.
        uint64_t guard = 0;
        while (interp_.queueSize(core, q) == 0) {
            if (!interp_.sweepAgents() || ++guard > 1'000'000) {
                std::ostringstream oss;
                oss << "lockstep oracle divergence at cycle " << now
                    << ", core " << static_cast<int>(core) << " thread "
                    << static_cast<int>(tid) << "\n  skip_to_ctrl drained "
                    << n << " committed entries of q" << static_cast<int>(q)
                    << ", but the golden queue ran dry after " << i;
                fail(oss.str());
                return false;
            }
        }
        auto [v, ctrl] = interp_.popQueueFront(core, q);
        if (ctrl) {
            std::ostringstream oss;
            oss << "lockstep oracle divergence at cycle " << now << ", core "
                << static_cast<int>(core) << " thread "
                << static_cast<int>(tid)
                << "\n  skip_to_ctrl drain consumed a data entry, but the "
                   "golden queue head of q"
                << static_cast<int>(q) << " is a control value (" << v << ")";
            fail(oss.str());
            return false;
        }
    }
    return true;
}

} // namespace debug
} // namespace pipette
