#include "debug/guardrails.h"

#include <sstream>

namespace pipette {
namespace debug {

Guardrails::Guardrails(const GuardrailConfig &cfg, const MachineSpec *spec,
                       uint32_t defaultQueueCap)
    : cfg_(cfg), spec_(spec), defaultQueueCap_(defaultQueueCap)
{
}

Guardrails::~Guardrails() = default;

void
Guardrails::beginRun(const SimMemory &mem)
{
    if (cfg_.lockstepOracle && !oracle_) {
        oracle_ = std::make_unique<LockstepOracle>(*spec_, mem,
                                                   defaultQueueCap_);
    }
}

void
Guardrails::record(CoreId core, ThreadId tid, const FlightEvent &e)
{
    if (cfg_.flightRecorderDepth == 0)
        return;
    auto &ring = flight_[(static_cast<uint32_t>(core) << 8) | tid];
    ring.push_back(e);
    if (ring.size() > cfg_.flightRecorderDepth)
        ring.pop_front();
}

void
Guardrails::onCommit(Cycle now, CoreId core, ThreadId tid,
                     const DynInst &inst, const PhysRegFile &prf,
                     const SimMemory &mem)
{
    record(core, tid,
           FlightEvent{FlightEvent::Kind::Commit, now, inst.pc, inst.op,
                       inst.destIsQueue ? inst.enqQueue : INVALID_QUEUE, 0});
    if (oracle_ && !failed() &&
        !oracle_->onCommit(now, core, tid, inst, prf, mem)) {
        failure_ = GuardrailFailure::OracleDivergence;
        report_ = oracle_->report();
    }
}

void
Guardrails::onSquash(Cycle now, CoreId core, const DynInst &inst)
{
    record(core, inst.tid,
           FlightEvent{FlightEvent::Kind::Squash, now, inst.pc, inst.op,
                       inst.destIsQueue ? inst.enqQueue : INVALID_QUEUE, 0});
}

void
Guardrails::onSkipDrain(Cycle now, CoreId core, ThreadId tid, QueueId q,
                        uint32_t n)
{
    record(core, tid,
           FlightEvent{FlightEvent::Kind::SkipDrain, now, 0, Op::SKIPTC, q,
                       n});
    if (oracle_ && !failed() && !oracle_->onSkipDrain(now, core, tid, q, n)) {
        failure_ = GuardrailFailure::OracleDivergence;
        report_ = oracle_->report();
    }
}

void
Guardrails::reportInvariantViolation(const std::string &text)
{
    if (failed())
        return;
    failure_ = GuardrailFailure::InvariantViolation;
    report_ = text;
}

std::string
Guardrails::flightDump() const
{
    if (cfg_.flightRecorderDepth == 0 || flight_.empty())
        return "";
    std::ostringstream oss;
    oss << "flight recorder (last " << cfg_.flightRecorderDepth
        << " events per thread):\n";
    for (const auto &[key, ring] : flight_) {
        oss << "  core " << (key >> 8) << " t" << (key & 0xff) << ":\n";
        for (const FlightEvent &e : ring) {
            oss << "    " << e.cycle << " ";
            switch (e.kind) {
              case FlightEvent::Kind::Commit:
                oss << "commit pc=" << e.pc << " " << opInfo(e.op).name;
                if (e.queue != INVALID_QUEUE)
                    oss << " enq:q" << static_cast<int>(e.queue);
                break;
              case FlightEvent::Kind::Squash:
                oss << "squash pc=" << e.pc << " " << opInfo(e.op).name;
                if (e.queue != INVALID_QUEUE)
                    oss << " enq:q" << static_cast<int>(e.queue);
                break;
              case FlightEvent::Kind::SkipDrain:
                oss << "skip-drain q" << static_cast<int>(e.queue) << " x"
                    << e.count;
                break;
            }
            oss << "\n";
        }
    }
    return oss.str();
}

std::vector<Guardrails::FlightEventView>
Guardrails::flightEvents() const
{
    std::vector<FlightEventView> out;
    for (const auto &[key, ring] : flight_) {
        for (const FlightEvent &e : ring) {
            FlightEventView v;
            v.core = key >> 8;
            v.tid = key & 0xff;
            switch (e.kind) {
              case FlightEvent::Kind::Commit: v.kind = "commit"; break;
              case FlightEvent::Kind::Squash: v.kind = "squash"; break;
              case FlightEvent::Kind::SkipDrain:
                v.kind = "skip-drain";
                break;
            }
            v.cycle = e.cycle;
            v.pc = e.pc;
            v.opName = opInfo(e.op).name;
            v.queue = e.queue == INVALID_QUEUE
                          ? -1
                          : static_cast<int>(e.queue);
            v.count = e.count;
            out.push_back(v);
        }
    }
    return out;
}

} // namespace debug
} // namespace pipette
