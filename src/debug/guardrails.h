/**
 * @file
 * Guardrails facade: the single object the core and the System talk to
 * when `SystemConfig::guardrails` is enabled. It owns
 *
 *  - the lockstep commit oracle (debug/oracle.h), fed one commit at a
 *    time from the core's commit stage;
 *  - the crash flight recorder: a bounded ring of the last N commits,
 *    squashes, and non-speculative queue drains per hardware thread,
 *    dumped into every failure report so the events leading up to a
 *    divergence, deadlock, or invariant violation are visible;
 *  - the failure latch the System polls each cycle to stop the run with
 *    a structured StopReason instead of crashing on corrupted state.
 *
 * Cost when disabled: the core holds a null Guardrails pointer and every
 * hook site is a single branch, so golden statistics are bit-identical.
 */

#ifndef PIPETTE_DEBUG_GUARDRAILS_H
#define PIPETTE_DEBUG_GUARDRAILS_H

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/dyn_inst.h"
#include "debug/oracle.h"
#include "isa/machine_spec.h"
#include "sim/config.h"

namespace pipette {
namespace debug {

/** Which guardrail tripped (System maps this onto its StopReason). */
enum class GuardrailFailure : uint8_t
{
    None,
    OracleDivergence,
    InvariantViolation,
};

/** Per-run guardrail state; owned by the System, hooked by the cores. */
class Guardrails
{
  public:
    /** `spec` must outlive this object (the System's stored copy). */
    Guardrails(const GuardrailConfig &cfg, const MachineSpec *spec,
               uint32_t defaultQueueCap);
    ~Guardrails();

    /**
     * Arm the run-time guardrails. Called at the top of every
     * System::runFor; the oracle snapshots the (now fully populated)
     * memory image on the first call only.
     */
    void beginRun(const SimMemory &mem);

    // --- Core hooks (call sites guard on a null Guardrails*) ---
    void onCommit(Cycle now, CoreId core, ThreadId tid, const DynInst &inst,
                  const PhysRegFile &prf, const SimMemory &mem);
    void onSquash(Cycle now, CoreId core, const DynInst &inst);
    void onSkipDrain(Cycle now, CoreId core, ThreadId tid, QueueId q,
                     uint32_t n);

    /** Latch an invariant violation found by the System's cycle check. */
    void reportInvariantViolation(const std::string &text);

    bool failed() const { return failure_ != GuardrailFailure::None; }
    GuardrailFailure failure() const { return failure_; }
    /** Structured description of the latched failure. */
    const std::string &report() const { return report_; }

    /** Last-events dump, all threads (empty if the recorder is off). */
    std::string flightDump() const;

    /** One flight-recorder event in export form (observability trace). */
    struct FlightEventView
    {
        CoreId core = 0;
        ThreadId tid = 0;
        /** "commit" / "squash" / "skip-drain". */
        const char *kind = "";
        Cycle cycle = 0;
        Addr pc = 0;
        const char *opName = "";
        /** Enqueue target / drained queue; -1 = none. */
        int queue = -1;
        uint32_t count = 0;
    };
    /** Flattened recorder contents, thread-ordered then ring-ordered
     *  (empty if the recorder is off). */
    std::vector<FlightEventView> flightEvents() const;

  private:
    struct FlightEvent
    {
        enum class Kind : uint8_t { Commit, Squash, SkipDrain };
        Kind kind;
        Cycle cycle;
        Addr pc;
        Op op;
        QueueId queue; ///< enqueue target / drained queue (or invalid)
        uint32_t count; ///< drained entries (SkipDrain)
    };

    void record(CoreId core, ThreadId tid, const FlightEvent &e);

    GuardrailConfig cfg_;
    const MachineSpec *spec_;
    uint32_t defaultQueueCap_;
    std::unique_ptr<LockstepOracle> oracle_;
    /** Ordered map so the dump walks threads deterministically. */
    std::map<uint32_t, std::deque<FlightEvent>> flight_;
    GuardrailFailure failure_ = GuardrailFailure::None;
    std::string report_;
};

} // namespace debug
} // namespace pipette

#endif // PIPETTE_DEBUG_GUARDRAILS_H
