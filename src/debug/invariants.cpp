#include "debug/invariants.h"

#include <sstream>

namespace pipette {
namespace debug {

bool
checkQrmConsistency(const Qrm &qrm, CoreId core, std::string *err)
{
    uint64_t held = 0;
    for (QueueId q = 0; q < qrm.numQueues(); q++) {
        Qrm::QueueDiag d = qrm.diag(q);
        bool ordered = d.commHead <= d.specHead && d.specHead <= d.commTail &&
                       d.commTail <= d.specTail;
        bool bounded = d.specTail - d.commHead <= d.cap;
        if (!ordered || !bounded) {
            std::ostringstream oss;
            oss << "QRM pointer invariant violated on core "
                << static_cast<int>(core) << " queue " << static_cast<int>(q)
                << ": specHead=" << d.specHead << " specTail=" << d.specTail
                << " commHead=" << d.commHead << " commTail=" << d.commTail
                << " cap=" << d.cap
                << (!ordered ? " (ordering commHead<=specHead<=commTail<="
                               "specTail broken)"
                             : " (occupancy exceeds capacity)");
            *err = oss.str();
            return false;
        }
        held += d.specTail - d.commHead;
    }
    if (held != qrm.regsInUse() || qrm.regsInUse() > qrm.maxRegs()) {
        std::ostringstream oss;
        oss << "QRM register accounting violated on core "
            << static_cast<int>(core) << ": sum of queue occupancy " << held
            << " vs regsInUse " << qrm.regsInUse() << " (budget "
            << qrm.maxRegs() << ")";
        *err = oss.str();
        return false;
    }
    return true;
}

bool
checkConnectorCredits(CoreId fromCore, QueueId fromQueue, CoreId toCore,
                      QueueId toQueue, size_t inflight,
                      uint64_t destOccupancy, uint64_t destCapacity,
                      std::string *err)
{
    if (inflight + destOccupancy <= destCapacity)
        return true;
    std::ostringstream oss;
    oss << "connector credit conservation violated on c"
        << static_cast<int>(fromCore) << ".q" << static_cast<int>(fromQueue)
        << " -> c" << static_cast<int>(toCore) << ".q"
        << static_cast<int>(toQueue) << ": inflight " << inflight
        << " + dest occupancy " << destOccupancy << " > capacity "
        << destCapacity;
    *err = oss.str();
    return false;
}

} // namespace debug
} // namespace pipette
