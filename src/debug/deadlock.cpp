#include "debug/deadlock.h"

#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace pipette {
namespace debug {

namespace {

constexpr uint32_t
qkey(CoreId core, QueueId q)
{
    return (static_cast<uint32_t>(core) << 8) | q;
}

/** Wait-for graph node: threads, then RAs, then connectors. */
struct Node
{
    bool live = false; ///< progressing, or relieved by a live node
    bool dead = false; ///< can never act again (halted/stalled/blocked)
    std::vector<uint32_t> waitQueues; ///< queue keys this node waits on
    bool waitOnProducers = false;     ///< else waits on consumers
};

} // namespace

const char *
waitStateName(WaitState w)
{
    switch (w) {
      case WaitState::None: return "running";
      case WaitState::FetchEmpty: return "frontend";
      case WaitState::QueueEmpty: return "dequeue-on-empty";
      case WaitState::QueueFull: return "enqueue-on-full";
      case WaitState::Resource: return "resource";
    }
    return "?";
}

DeadlockReport
diagnoseDeadlock(const MachineSpec &spec,
                 const std::vector<ThreadWaitInfo> &threads,
                 const std::vector<QueueSnapshot> &queues,
                 const std::vector<RaSnapshot> &ras,
                 const std::vector<ConnectorSnapshot> &conns, Cycle now,
                 Cycle sinceCommit)
{
    const size_t nT = threads.size(), nR = ras.size(), nC = conns.size();
    std::vector<Node> nodes(nT + nR + nC);

    std::unordered_map<uint32_t, const QueueSnapshot *> qmap;
    for (const QueueSnapshot &qs : queues)
        qmap[qkey(qs.core, qs.queue)] = &qs;

    // Producer/consumer topology from the software spec.
    std::unordered_map<uint32_t, std::vector<size_t>> producers, consumers;
    for (size_t i = 0; i < nT; i++) {
        for (const ThreadSpec &ts : spec.threads) {
            if (ts.core != threads[i].core || ts.tid != threads[i].tid)
                continue;
            for (const QueueMapSpec &m : ts.queueMaps) {
                auto &side = m.dir == QueueDir::Out ? producers : consumers;
                side[qkey(ts.core, m.queue)].push_back(i);
            }
        }
    }
    for (size_t j = 0; j < nR; j++) {
        consumers[qkey(ras[j].core, ras[j].inQueue)].push_back(nT + j);
        producers[qkey(ras[j].core, ras[j].outQueue)].push_back(nT + j);
    }
    for (size_t k = 0; k < nC; k++) {
        consumers[qkey(conns[k].fromCore, conns[k].fromQueue)]
            .push_back(nT + nR + k);
        producers[qkey(conns[k].toCore, conns[k].toQueue)]
            .push_back(nT + nR + k);
    }

    auto committedSize = [&](uint32_t key) -> uint64_t {
        auto it = qmap.find(key);
        if (it == qmap.end())
            return 0;
        return it->second->d.commTail - it->second->d.specHead;
    };
    auto hasSpace = [&](uint32_t key) -> bool {
        auto it = qmap.find(key);
        if (it == qmap.end())
            return true;
        const Qrm::QueueDiag &d = it->second->d;
        return d.specTail - d.commHead < d.cap;
    };

    // Initial liveness.
    for (size_t i = 0; i < nT; i++) {
        const ThreadWaitInfo &t = threads[i];
        Node &n = nodes[i];
        if (t.halted) {
            n.dead = true;
        } else if (t.wait == WaitState::QueueEmpty) {
            n.waitOnProducers = true;
            for (QueueId q : t.waitEmpty) {
                uint32_t key = qkey(t.core, q);
                if (committedSize(key) > 0)
                    n.live = true; // not actually blocked: slow progress
                n.waitQueues.push_back(key);
            }
        } else if (t.wait == WaitState::QueueFull) {
            for (QueueId q : t.waitFull)
                n.waitQueues.push_back(qkey(t.core, q));
        } else if (t.wait == WaitState::Resource && t.faultBlocked) {
            n.dead = true; // injected pool/checkpoint block: unrelievable
        } else {
            // Running, frontend-stalled, or organically resource-bound:
            // in-flight completions can still unblock it, so count it as
            // able to act (the verdict becomes livelock/slow progress).
            n.live = true;
        }
    }
    for (size_t j = 0; j < nR; j++) {
        const RaSnapshot &r = ras[j];
        Node &n = nodes[nT + j];
        uint32_t inKey = qkey(r.core, r.inQueue);
        uint32_t outKey = qkey(r.core, r.outQueue);
        if (r.stalled) {
            n.dead = true;
        } else if (r.cbSize > 0 || r.busy || committedSize(inKey) > 0) {
            if (hasSpace(outKey))
                n.live = true;
            else
                n.waitQueues.push_back(outKey); // waits on consumers
        } else {
            n.waitOnProducers = true;
            n.waitQueues.push_back(inKey);
        }
    }
    for (size_t k = 0; k < nC; k++) {
        const ConnectorSnapshot &c = conns[k];
        Node &n = nodes[nT + nR + k];
        uint32_t fromKey = qkey(c.fromCore, c.fromQueue);
        uint32_t toKey = qkey(c.toCore, c.toQueue);
        bool fromAvail = committedSize(fromKey) > 0;
        bool credits = c.inflight + c.destOccupancy < c.credits;
        if (c.stalled) {
            n.dead = true;
        } else if ((c.inflight > 0 && hasSpace(toKey)) ||
                   (fromAvail && credits)) {
            n.live = true;
        } else if (fromAvail || c.inflight > 0) {
            n.waitQueues.push_back(toKey); // credit/space exhaustion
        } else {
            n.waitOnProducers = true;
            n.waitQueues.push_back(fromKey);
        }
    }

    // Relievability fixpoint.
    bool changed = true;
    while (changed) {
        changed = false;
        for (Node &n : nodes) {
            if (n.live || n.dead)
                continue;
            for (uint32_t key : n.waitQueues) {
                auto &side = n.waitOnProducers ? producers : consumers;
                auto it = side.find(key);
                if (it == side.end())
                    continue;
                for (size_t rel : it->second) {
                    if (nodes[rel].live) {
                        n.live = true;
                        changed = true;
                        break;
                    }
                }
                if (n.live)
                    break;
            }
        }
    }

    bool anyLive = false;
    for (const Node &n : nodes)
        anyLive |= n.live;

    DeadlockReport rep;
    rep.trueDeadlock = !anyLive;

    std::ostringstream oss;
    oss << "deadlock diagnosis at cycle " << now << " (no commit for "
        << sinceCommit << " cycles)\n";
    oss << "  verdict: "
        << (rep.trueDeadlock
                ? "TRUE DEADLOCK (no agent can make progress: wait "
                  "cycle or dead-end starvation)"
                : "livelock / slow progress (some agents can still act)")
        << "\n";

    std::unordered_set<uint32_t> interesting;
    for (const Node &n : nodes)
        for (uint32_t key : n.waitQueues)
            interesting.insert(key);

    for (size_t i = 0; i < nT; i++) {
        const ThreadWaitInfo &t = threads[i];
        oss << "  core " << static_cast<int>(t.core) << " t"
            << static_cast<int>(t.tid) << ": pc=" << t.pc
            << " committed=" << t.committed << " rob=" << t.robSize;
        if (t.halted) {
            oss << " HALTED\n";
            continue;
        }
        oss << " wait=" << waitStateName(t.wait);
        for (QueueId q : t.waitEmpty)
            oss << " empty:q" << static_cast<int>(q);
        for (QueueId q : t.waitFull)
            oss << " full:q" << static_cast<int>(q);
        if (t.poolExhausted)
            oss << " dyninst-pool-exhausted";
        if (t.ckptExhausted)
            oss << " checkpoint-arena-exhausted";
        if (t.faultBlocked)
            oss << " (fault-injected block)";
        oss << (nodes[i].live ? "" : " [unrelievable]") << "\n";
    }
    for (size_t j = 0; j < nR; j++) {
        const RaSnapshot &r = ras[j];
        oss << "  ra core " << static_cast<int>(r.core) << " q"
            << static_cast<int>(r.inQueue) << "->q"
            << static_cast<int>(r.outQueue) << ": cb=" << r.cbSize
            << (r.busy ? " busy" : "") << (r.stalled ? " STALLED" : "")
            << (nodes[nT + j].live ? "" : " [unrelievable]") << "\n";
        interesting.insert(qkey(r.core, r.inQueue));
        interesting.insert(qkey(r.core, r.outQueue));
    }
    for (size_t k = 0; k < nC; k++) {
        const ConnectorSnapshot &c = conns[k];
        oss << "  connector c" << static_cast<int>(c.fromCore) << ".q"
            << static_cast<int>(c.fromQueue) << " -> c"
            << static_cast<int>(c.toCore) << ".q"
            << static_cast<int>(c.toQueue) << ": inflight=" << c.inflight
            << " credits=" << c.credits
            << " dest-occupancy=" << c.destOccupancy
            << (c.inflight + c.destOccupancy >= c.credits
                    ? " CREDIT-EXHAUSTED"
                    : "")
            << (c.stalled ? " STALLED" : "")
            << (nodes[nT + nR + k].live ? "" : " [unrelievable]") << "\n";
        interesting.insert(qkey(c.fromCore, c.fromQueue));
        interesting.insert(qkey(c.toCore, c.toQueue));
    }
    for (const QueueSnapshot &qs : queues) {
        uint32_t key = qkey(qs.core, qs.queue);
        const Qrm::QueueDiag &d = qs.d;
        bool occupied = d.specTail != d.commHead;
        if (!occupied && !d.skipArmed && !interesting.count(key))
            continue;
        oss << "  queue c" << static_cast<int>(qs.core) << ".q"
            << static_cast<int>(qs.queue) << ": cap=" << d.cap
            << " committed=" << d.commTail - d.specHead
            << " total=" << d.specTail - d.commHead
            << " specHead=" << d.specHead << " specTail=" << d.specTail
            << " commHead=" << d.commHead << " commTail=" << d.commTail
            << (d.skipArmed ? " skip-armed" : "") << "\n";
    }
    rep.text = oss.str();
    return rep;
}

} // namespace debug
} // namespace pipette
