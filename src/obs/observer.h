/**
 * @file
 * Deterministic observability layer (ISSUE 5): the single object every
 * instrumentation hook in the simulator talks to when
 * `SystemConfig::observability` is enabled. Three pillars:
 *
 *  - interval sampling: every N cycles the System feeds a snapshot of
 *    the aggregate core/cache/memory stats plus per-queue occupancy;
 *    the Observer stores the deltas as a time series (CSV export);
 *  - histograms: log2-bucketed per-queue occupancy-at-enqueue and
 *    dequeue-wait latency, per-RA indirection latency, and per-
 *    connector credit-stall run length, folded into the flattened
 *    stats map under "obs." keys;
 *  - trace export: a Chrome/Perfetto JSON trace (thread stall-state
 *    slices, RA busy slices, queue/RA/connector counter tracks, CPI
 *    counters, flight-recorder instants) and a gem5-style O3PipeView
 *    text trace (per-instruction fetch/decode/rename/dispatch/issue/
 *    complete/retire ticks, viewable in Konata), both bounded by the
 *    configured cycle window.
 *
 * Contract (mirrors the PR 3 guardrails pattern): the cores, QRMs, RAs,
 * and connectors hold a null Observer pointer by default and every hook
 * site is a single branch, so with observability off the simulation is
 * bit-identical and the hot path allocation-free. Even when on, the
 * Observer only reads -- simulated timing and statistics never change.
 * Everything recorded is a pure function of simulated state, so traces
 * and CSVs are byte-identical across repeated runs and host-parallel
 * sweep execution.
 */

#ifndef PIPETTE_OBS_OBSERVER_H
#define PIPETTE_OBS_OBSERVER_H

#include <deque>
#include <map>
#include <string>
#include <vector>

#include "core/dyn_inst.h"
#include "obs/histogram.h"
#include "sim/config.h"
#include "sim/stats.h"
#include "sim/types.h"

namespace pipette {
namespace obs {

/** Thread pipeline state for the Perfetto stall-state track. */
enum class ThreadState : uint8_t
{
    Run,        ///< renamed at least one micro-op this cycle
    QueueEmpty, ///< rename blocked on an empty Pipette queue
    QueueFull,  ///< rename blocked on a full Pipette queue
    Resource,   ///< rename blocked on ROB/IQ/LSQ/PRF/pool
    Frontend,   ///< nothing renameable (fetch/redirect latency)
    Halted,
    NumStates,
};

const char *threadStateName(ThreadState s);

/** Per-run observability state; owned by the System, hooked by all. */
class Observer
{
  public:
    explicit Observer(const SystemConfig &cfg);

    const ObservabilityConfig &config() const { return cfg_; }

    // ---- Track registration (System::configure) ----
    void registerThread(CoreId core, ThreadId tid);
    void registerRa(uint32_t idx, CoreId core, QueueId in, QueueId out);
    void registerConnector(uint32_t idx, CoreId from, QueueId fromQ,
                           CoreId to, QueueId toQ);

    // ---- Per-cycle lifecycle (System::runFor) ----
    /** Called before the cores tick; establishes the hook timestamp and
     *  the trace-window state for this cycle. */
    void beginCycle(Cycle now);

    // ---- Epoch-journal mode (multicore epoch scheduler) ----
    /**
     * When on, the hot hooks append to per-core journals instead of
     * mutating shared trace/histogram state, so they are safe to call
     * from concurrent core partitions. flushJournal() replays the
     * entries serially at each epoch edge in a deterministic global
     * order -- (cycle, core, per-core insertion order) -- so every
     * derived artifact (histograms, Perfetto events, pipeview text) is
     * identical at any host worker count.
     */
    void setJournalMode(bool on);
    bool journalMode() const { return journal_; }
    /** Phase-local timestamp for hooks fired from `core`'s partition
     *  (the shared now_ is not written during phases). */
    void
    setCoreCycle(CoreId core, Cycle cy)
    {
        coreNow_[core] = cy;
    }
    /** Replay and clear the journaled hook events (epoch edge, serial). */
    void flushJournal();
    /** Collectors are inside the trace window this cycle. */
    bool traceActive() const { return traceActive_; }
    /** The Perfetto poll (thread/RA/connector state) is wanted. */
    bool wantPoll() const { return traceActive_ && cfg_.perfetto; }
    Cycle now() const { return now_; }

    bool
    sampleDue(Cycle now) const
    {
        return cfg_.sampleInterval && now >= nextSample_;
    }

    /**
     * Cycle elision (DESIGN.md §13): the run loop clamps clock skips to
     * the next interval-sampler emission so every sample row is taken
     * at exactly the cycle it would be taken at when single-stepping.
     * Returns 0 when the sampler is disabled (no clamp needed).
     */
    Cycle
    nextSampleCycle() const
    {
        return cfg_.sampleInterval ? nextSample_ : 0;
    }

    // ---- Hot hooks (single null-check at every call site) ----
    /** Entry became committed in (core, q); occAfter = committed size. */
    void onQueuePush(CoreId core, QueueId q, uint64_t occAfter);
    /** Committed entry consumed from (core, q). */
    void onQueuePop(CoreId core, QueueId q, uint64_t occAfter);
    /** RA issued an indirection load completing after `latency` cycles. */
    void onRaLatency(uint32_t idx, Cycle latency);
    /** Connector had data to send but no credits this cycle. */
    void onConnectorCreditStall(uint32_t idx, Cycle now);
    /** Instruction committed (O3PipeView block; stage timestamps are
     *  carried on the pooled DynInst). */
    void onRetire(Cycle now, CoreId core, ThreadId tid,
                  const DynInst &inst);

    // ---- Perfetto poll (System, once per cycle inside the window) ----
    void threadState(CoreId core, ThreadId tid, ThreadState s);
    void raState(uint32_t idx, uint64_t cbSize, bool busy);
    void connectorState(uint32_t idx, uint64_t inflight);
    /** Cumulative CPI-stack counters; deltas are emitted as a counter
     *  track every CPI_EMIT_PERIOD cycles. */
    void coreCpi(CoreId core,
                 const std::array<uint64_t, NUM_CPI_BUCKETS> &cum);

    // ---- Interval sampling (System) ----
    struct SampleInput
    {
        CoreStats agg;
        uint64_t l1Misses = 0;
        uint64_t l2Misses = 0;
        uint64_t l3Misses = 0;
        MemStats mem;
        /** Instantaneous committed occupancy, core-major, one entry per
         *  (core, queue). */
        const uint64_t *queueOcc = nullptr;
    };
    void sample(Cycle now, const SampleInput &in);

    /** One stored interval row (bench access; full data is in the CSV). */
    struct SampleRow
    {
        Cycle cycle = 0;
        uint64_t instrs = 0;
        uint64_t uops = 0;
        uint64_t squashed = 0;
        std::array<uint64_t, NUM_CPI_BUCKETS> cpi = {};
    };
    const std::vector<SampleRow> &sampleRows() const { return rows_; }

    // ---- Flight-recorder import (System, on an abnormal stop) ----
    void addFlightInstant(CoreId core, ThreadId tid, Cycle cycle,
                          const std::string &desc);

    // ---- Finalize / export ----
    /** Close open slices, emit the final partial sample. Idempotent. */
    void finalize(const SampleInput &in, Cycle now);
    /** Write configured output files (no-op for empty paths). */
    void writeFiles();

    std::string perfettoJson() const;
    const std::string &pipeviewText() const { return pipeview_; }
    const std::string &intervalCsv() const { return csv_; }

    /** Fold histograms and sample counts into the flattened stat map. */
    void dumpStats(std::map<std::string, double> &out) const;

    // ---- Introspection (tests) ----
    uint64_t queuePushes(CoreId core, QueueId q) const;
    uint64_t queuePops(CoreId core, QueueId q) const;
    uint64_t totalQueuePushes() const;
    const Log2Histogram &occupancyHist(CoreId core, QueueId q) const;
    const Log2Histogram &waitHist(CoreId core, QueueId q) const;
    const Log2Histogram &raLatencyHist(uint32_t idx) const;
    const Log2Histogram &connStallHist(uint32_t idx) const;

  private:
    /** Cycles between Perfetto CPI-counter emissions. */
    static constexpr Cycle CPI_EMIT_PERIOD = 64;

    struct QueueTrack
    {
        uint64_t pushes = 0;
        uint64_t pops = 0;
        Log2Histogram occ;  ///< committed occupancy at enqueue
        Log2Histogram wait; ///< commit-to-consume latency
        /** Commit timestamps of unconsumed entries (committed pointers
         *  are strictly FIFO, so a deque matches pops to pushes). */
        std::deque<Cycle> enqCycles;
        uint64_t lastCounter = ~0ull; ///< last emitted occupancy
    };

    struct ThreadTrack
    {
        bool registered = false;
        uint8_t state = 0xff; ///< 0xff = no open slice
        Cycle sliceStart = 0;
    };

    struct RaTrack
    {
        bool registered = false;
        CoreId core = 0;
        QueueId in = 0, out = 0;
        Log2Histogram latency;
        uint64_t lastCb = ~0ull;
        bool busy = false;
        Cycle busyStart = 0;
    };

    struct ConnTrack
    {
        bool registered = false;
        CoreId from = 0, to = 0;
        QueueId fromQ = 0, toQ = 0;
        Log2Histogram stall; ///< credit-stall run lengths (cycles)
        uint64_t lastInflight = ~0ull;
        Cycle lastStallCycle = ~0ull;
        Cycle runStart = 0;
        uint64_t runLen = 0;
    };

    /** Retire fields copied out of the pooled DynInst at hook time (the
     *  pool recycles the instruction long before the epoch edge). */
    struct RetireInfo
    {
        uint64_t seq = 0;
        Addr pc = 0;
        const Instr *si = nullptr;
        Op op = Op::NOP;
        Cycle fetchReady = 0;
        Cycle renameCycle = 0;
        Cycle issueCycle = 0;
        Cycle completeCycle = 0;
    };

    /** One journaled hook invocation (epoch-journal mode). */
    struct JEntry
    {
        enum class Kind : uint8_t
        {
            QPush,
            QPop,
            RaLat,
            ConnStall,
            Retire,
        };
        Kind kind;
        ThreadId tid = 0; ///< Retire only
        Cycle cycle = 0;
        uint32_t a = 0; ///< queue id (QPush/QPop) or track idx
        uint64_t b = 0; ///< occAfter (QPush/QPop) or latency (RaLat)
        RetireInfo ri;  ///< Retire only
    };

    QueueTrack &qt(CoreId core, QueueId q);
    const QueueTrack &qt(CoreId core, QueueId q) const;
    size_t ti(CoreId core, ThreadId tid) const;

    // Legacy hook bodies, shared by the direct hooks and the journal
    // replay (which establishes now_/traceActive_ per entry first).
    void pushImpl(CoreId core, QueueId q, uint64_t occAfter);
    void popImpl(CoreId core, QueueId q, uint64_t occAfter);
    void raLatImpl(uint32_t idx, Cycle latency);
    void connStallImpl(uint32_t idx, Cycle now);
    void retireImpl(Cycle now, CoreId core, ThreadId tid,
                    const RetireInfo &ri);

    /** End the current credit-stall run: histogram + Perfetto slice. */
    void flushConnRun(ConnTrack &c, uint32_t idx);
    void closeOpenSlices(Cycle endCycle);

    // Perfetto event emission (each appends one JSON object string).
    void evSlice(uint32_t pid, uint32_t tid, const char *name, Cycle ts,
                 Cycle dur);
    void evCounter(uint32_t pid, const std::string &name, Cycle ts,
                   uint64_t value);
    void evInstant(uint32_t pid, uint32_t tid, const std::string &name,
                   Cycle ts);
    void evMeta(uint32_t pid, uint32_t tid, const char *metaName,
                const std::string &value);

    uint32_t raPid() const { return numCores_ + 1; }
    uint32_t connPid() const { return numCores_ + 2; }

    ObservabilityConfig cfg_;
    uint32_t numCores_;
    uint32_t numQueues_;
    uint32_t smtThreads_;
    uint32_t frontendDelay_;
    Cycle traceEnd_; ///< first cycle past the trace window

    Cycle now_ = 0;
    bool traceActive_ = false;
    bool finalized_ = false;
    bool filesWritten_ = false;

    std::vector<QueueTrack> queues_;   ///< core-major
    std::vector<ThreadTrack> threads_; ///< core * smtThreads + tid
    std::vector<RaTrack> ras_;
    std::vector<ConnTrack> conns_;

    // CPI counter state, per core.
    std::vector<std::array<uint64_t, NUM_CPI_BUCKETS>> cpiPrev_;
    std::vector<Cycle> cpiNextEmit_;

    // Interval sampler state.
    Cycle nextSample_ = 0;
    Cycle lastSample_ = 0;
    SampleInput prev_;
    std::vector<SampleRow> rows_;
    std::string csv_;

    std::vector<std::string> events_; ///< Perfetto JSON objects
    std::string pipeview_;

    // Epoch-journal mode state.
    bool journal_ = false;
    std::vector<Cycle> coreNow_;            ///< per-partition hook clock
    std::vector<std::vector<JEntry>> journals_; ///< per-core, in order
};

} // namespace obs
} // namespace pipette

#endif // PIPETTE_OBS_OBSERVER_H
