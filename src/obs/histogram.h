/**
 * @file
 * Log2-bucketed histogram for observability counters. Bucket i counts
 * samples whose bit width is i (bucket 0 holds exactly the value 0,
 * bucket 1 holds 1, bucket 2 holds 2-3, bucket 3 holds 4-7, ...), so a
 * 64-bit sample space folds into 65 fixed buckets with no allocation
 * per sample. Distributions, not means, are what explain queue
 * throughput cliffs (BlockFIFO/MultiFIFO; ISSUE 5).
 */

#ifndef PIPETTE_OBS_HISTOGRAM_H
#define PIPETTE_OBS_HISTOGRAM_H

#include <array>
#include <bit>
#include <cstdint>
#include <map>
#include <string>

namespace pipette {
namespace obs {

/** Fixed-size log2 histogram of uint64 samples. */
class Log2Histogram
{
  public:
    static constexpr size_t NUM_BUCKETS = 65;

    void
    add(uint64_t v)
    {
        buckets_[std::bit_width(v)]++;
        count_++;
        sum_ += v;
        if (count_ == 1 || v < min_)
            min_ = v;
        if (v > max_)
            max_ = v;
    }

    uint64_t count() const { return count_; }
    uint64_t sum() const { return sum_; }
    uint64_t min() const { return count_ ? min_ : 0; }
    uint64_t max() const { return max_; }
    uint64_t bucket(size_t i) const { return buckets_[i]; }

    double
    mean() const
    {
        return count_ ? static_cast<double>(sum_) /
                            static_cast<double>(count_)
                      : 0.0;
    }

    /** Accumulate another histogram into this one. */
    void
    merge(const Log2Histogram &o)
    {
        if (o.count_) {
            if (count_ == 0 || o.min_ < min_)
                min_ = o.min_;
            if (o.max_ > max_)
                max_ = o.max_;
        }
        for (size_t i = 0; i < NUM_BUCKETS; i++)
            buckets_[i] += o.buckets_[i];
        count_ += o.count_;
        sum_ += o.sum_;
    }

    /** Total across all buckets (== count(); used by the tests). */
    uint64_t
    bucketTotal() const
    {
        uint64_t t = 0;
        for (uint64_t b : buckets_)
            t += b;
        return t;
    }

    /**
     * Flatten under `prefix`: count/sum/min/max/mean plus one
     * "bucket<i>" key per non-empty bucket. Key set is a deterministic
     * function of the recorded samples.
     */
    void
    dump(const std::string &prefix,
         std::map<std::string, double> &out) const
    {
        out[prefix + ".count"] = static_cast<double>(count_);
        out[prefix + ".sum"] = static_cast<double>(sum_);
        out[prefix + ".min"] = static_cast<double>(min());
        out[prefix + ".max"] = static_cast<double>(max_);
        out[prefix + ".mean"] = mean();
        for (size_t i = 0; i < NUM_BUCKETS; i++) {
            if (buckets_[i]) {
                out[prefix + ".bucket" + std::to_string(i)] =
                    static_cast<double>(buckets_[i]);
            }
        }
    }

  private:
    std::array<uint64_t, NUM_BUCKETS> buckets_ = {};
    uint64_t count_ = 0;
    uint64_t sum_ = 0;
    uint64_t min_ = 0;
    uint64_t max_ = 0;
};

} // namespace obs
} // namespace pipette

#endif // PIPETTE_OBS_HISTOGRAM_H
