#include "obs/observer.h"

#include <cinttypes>
#include <cstdio>

#include "isa/opcodes.h"
#include "sim/logging.h"

namespace pipette {
namespace obs {

namespace {

/** Escape a string for inclusion in a JSON string literal. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** gem5 O3PipeView traces use 500 ticks per cycle (1 GHz @ ps/2). */
constexpr uint64_t PIPEVIEW_TICKS_PER_CYCLE = 500;

} // namespace

const char *
threadStateName(ThreadState s)
{
    switch (s) {
      case ThreadState::Run: return "run";
      case ThreadState::QueueEmpty: return "stall:queue-empty";
      case ThreadState::QueueFull: return "stall:queue-full";
      case ThreadState::Resource: return "stall:resource";
      case ThreadState::Frontend: return "stall:frontend";
      case ThreadState::Halted: return "halted";
      default: return "?";
    }
}

Observer::Observer(const SystemConfig &cfg)
    : cfg_(cfg.observability), numCores_(cfg.numCores),
      numQueues_(cfg.core.numQueues), smtThreads_(cfg.core.smtThreads),
      frontendDelay_(cfg.core.frontendDelay)
{
    traceEnd_ = cfg_.traceCycles ? cfg_.traceFrom + cfg_.traceCycles
                                 : ~0ull;
    queues_.resize(static_cast<size_t>(numCores_) * numQueues_);
    threads_.resize(static_cast<size_t>(numCores_) * smtThreads_);
    cpiPrev_.assign(numCores_, {});
    cpiNextEmit_.assign(numCores_, cfg_.traceFrom);
    nextSample_ = cfg_.sampleInterval;

    if (cfg_.sampleInterval) {
        csv_ = "cycle,instrs,uops,squashed";
        for (size_t i = 0; i < NUM_CPI_BUCKETS; i++) {
            csv_ += ",cpi_";
            csv_ += cpiBucketName(static_cast<CpiBucket>(i));
        }
        csv_ += ",loads,stores,enqueues,dequeues,l1_misses,l2_misses,"
                "l3_misses,dram_reads,dram_writes";
        for (uint32_t c = 0; c < numCores_; c++) {
            for (uint32_t q = 0; q < numQueues_; q++) {
                csv_ += ",c" + std::to_string(c) + "q" +
                        std::to_string(q) + "_occ";
            }
        }
        csv_ += "\n";
    }

    if (cfg_.perfetto) {
        for (uint32_t c = 0; c < numCores_; c++)
            evMeta(c + 1, 0, "process_name",
                   "core " + std::to_string(c));
        evMeta(raPid(), 0, "process_name", "reference accelerators");
        evMeta(connPid(), 0, "process_name", "connectors");
    }
}

// ---------------------------------------------------------------------
// Track registration

void
Observer::registerThread(CoreId core, ThreadId tid)
{
    ThreadTrack &t = threads_[ti(core, tid)];
    t.registered = true;
    if (cfg_.perfetto) {
        evMeta(core + 1, tid + 1, "thread_name",
               "t" + std::to_string(tid));
    }
}

void
Observer::registerRa(uint32_t idx, CoreId core, QueueId in, QueueId out)
{
    if (ras_.size() <= idx)
        ras_.resize(idx + 1);
    RaTrack &r = ras_[idx];
    r.registered = true;
    r.core = core;
    r.in = in;
    r.out = out;
    if (cfg_.perfetto) {
        evMeta(raPid(), idx + 1, "thread_name",
               "ra" + std::to_string(idx) + " c" + std::to_string(core) +
                   " q" + std::to_string(in) + "->q" +
                   std::to_string(out));
    }
}

void
Observer::registerConnector(uint32_t idx, CoreId from, QueueId fromQ,
                            CoreId to, QueueId toQ)
{
    if (conns_.size() <= idx)
        conns_.resize(idx + 1);
    ConnTrack &c = conns_[idx];
    c.registered = true;
    c.from = from;
    c.fromQ = fromQ;
    c.to = to;
    c.toQ = toQ;
    if (cfg_.perfetto) {
        evMeta(connPid(), idx + 1, "thread_name",
               "conn" + std::to_string(idx) + " c" + std::to_string(from) +
                   "q" + std::to_string(fromQ) + "->c" +
                   std::to_string(to) + "q" + std::to_string(toQ));
    }
}

// ---------------------------------------------------------------------
// Lifecycle

void
Observer::beginCycle(Cycle now)
{
    now_ = now;
    traceActive_ = (cfg_.perfetto || cfg_.pipeview) &&
                   now >= cfg_.traceFrom && now < traceEnd_;
}

// ---------------------------------------------------------------------
// Hot hooks

void
Observer::onQueuePush(CoreId core, QueueId q, uint64_t occAfter)
{
    if (journal_) {
        journals_[core].push_back(
            {JEntry::Kind::QPush, 0, coreNow_[core], q, occAfter, {}});
        return;
    }
    pushImpl(core, q, occAfter);
}

void
Observer::pushImpl(CoreId core, QueueId q, uint64_t occAfter)
{
    QueueTrack &t = qt(core, q);
    t.pushes++;
    if (cfg_.histograms) {
        // Committed occupancy the entry found on arrival.
        t.occ.add(occAfter - 1);
        t.enqCycles.push_back(now_);
    }
    if (traceActive_ && cfg_.perfetto && occAfter != t.lastCounter) {
        t.lastCounter = occAfter;
        evCounter(core + 1,
                  "q" + std::to_string(q) + " occupancy", now_,
                  occAfter);
    }
}

void
Observer::onQueuePop(CoreId core, QueueId q, uint64_t occAfter)
{
    if (journal_) {
        journals_[core].push_back(
            {JEntry::Kind::QPop, 0, coreNow_[core], q, occAfter, {}});
        return;
    }
    popImpl(core, q, occAfter);
}

void
Observer::popImpl(CoreId core, QueueId q, uint64_t occAfter)
{
    QueueTrack &t = qt(core, q);
    t.pops++;
    if (cfg_.histograms && !t.enqCycles.empty()) {
        // Committed order is FIFO, so the oldest unconsumed entry is the
        // one leaving.
        t.wait.add(now_ - t.enqCycles.front());
        t.enqCycles.pop_front();
    }
    if (traceActive_ && cfg_.perfetto && occAfter != t.lastCounter) {
        t.lastCounter = occAfter;
        evCounter(core + 1,
                  "q" + std::to_string(q) + " occupancy", now_,
                  occAfter);
    }
}

void
Observer::onRaLatency(uint32_t idx, Cycle latency)
{
    if (journal_) {
        // RAs are always registered before the run starts, so the
        // track's core (== the partition this hook fires in) is valid.
        CoreId core = ras_[idx].core;
        journals_[core].push_back(
            {JEntry::Kind::RaLat, 0, coreNow_[core], idx, latency, {}});
        return;
    }
    raLatImpl(idx, latency);
}

void
Observer::raLatImpl(uint32_t idx, Cycle latency)
{
    if (ras_.size() <= idx)
        ras_.resize(idx + 1);
    if (cfg_.histograms)
        ras_[idx].latency.add(latency);
}

void
Observer::onConnectorCreditStall(uint32_t idx, Cycle now)
{
    if (journal_) {
        // Fired from the producer half, i.e. the from-core partition.
        CoreId core = conns_[idx].from;
        journals_[core].push_back(
            {JEntry::Kind::ConnStall, 0, now, idx, 0, {}});
        return;
    }
    connStallImpl(idx, now);
}

void
Observer::connStallImpl(uint32_t idx, Cycle now)
{
    if (conns_.size() <= idx)
        conns_.resize(idx + 1);
    ConnTrack &c = conns_[idx];
    if (c.lastStallCycle + 1 == now) {
        c.runLen++;
    } else {
        flushConnRun(c, idx);
        c.runStart = now;
        c.runLen = 1;
    }
    c.lastStallCycle = now;
}

void
Observer::flushConnRun(ConnTrack &c, uint32_t idx)
{
    if (!c.runLen)
        return;
    if (cfg_.histograms)
        c.stall.add(c.runLen);
    if (cfg_.perfetto && c.runStart >= cfg_.traceFrom &&
        c.runStart < traceEnd_) {
        evSlice(connPid(), idx + 1, "credit stall", c.runStart, c.runLen);
    }
    c.runLen = 0;
}

void
Observer::onRetire(Cycle now, CoreId core, ThreadId tid,
                   const DynInst &inst)
{
    if (journal_) {
        if (!cfg_.pipeview || now < cfg_.traceFrom || now >= traceEnd_)
            return;
        JEntry e;
        e.kind = JEntry::Kind::Retire;
        e.tid = tid;
        e.cycle = now;
        e.ri = {inst.seq,         inst.pc,         inst.si,
                inst.op,          inst.fetchReady, inst.renameCycle,
                inst.issueCycle,  inst.completeCycle};
        journals_[core].push_back(e);
        return;
    }
    if (!traceActive_ || !cfg_.pipeview)
        return;
    retireImpl(now, core, tid,
               {inst.seq, inst.pc, inst.si, inst.op, inst.fetchReady,
                inst.renameCycle, inst.issueCycle, inst.completeCycle});
}

void
Observer::retireImpl(Cycle now, CoreId core, ThreadId tid,
                     const RetireInfo &ri)
{
    // Stage cycles are captured on the pooled DynInst as it flows
    // through the pipeline; the core tick order guarantees
    // fetch <= decode <= rename = dispatch <= issue < complete <= retire.
    uint64_t fetchReady = ri.fetchReady;
    uint64_t fetch =
        fetchReady > frontendDelay_ ? fetchReady - frontendDelay_ : 0;
    // Multi-core traces need globally unique instruction ids.
    uint64_t uid = numCores_ > 1
                       ? static_cast<uint64_t>(core) * 100000000ull +
                             ri.seq
                       : ri.seq;
    std::string disasm = ri.si && ri.op == ri.si->op
                             ? ri.si->toString()
                             : opInfo(ri.op).name;
    char buf[256];
    snprintf(buf, sizeof(buf),
             "O3PipeView:fetch:%" PRIu64 ":0x%08" PRIx64 ":0:%" PRIu64
             ":t%u %s\n",
             fetch * PIPEVIEW_TICKS_PER_CYCLE, ri.pc, uid, tid,
             disasm.c_str());
    pipeview_ += buf;
    snprintf(buf, sizeof(buf),
             "O3PipeView:decode:%" PRIu64 "\n"
             "O3PipeView:rename:%" PRIu64 "\n"
             "O3PipeView:dispatch:%" PRIu64 "\n"
             "O3PipeView:issue:%" PRIu64 "\n"
             "O3PipeView:complete:%" PRIu64 "\n"
             "O3PipeView:retire:%" PRIu64 ":store:0\n",
             fetchReady * PIPEVIEW_TICKS_PER_CYCLE,
             ri.renameCycle * PIPEVIEW_TICKS_PER_CYCLE,
             ri.renameCycle * PIPEVIEW_TICKS_PER_CYCLE,
             ri.issueCycle * PIPEVIEW_TICKS_PER_CYCLE,
             ri.completeCycle * PIPEVIEW_TICKS_PER_CYCLE,
             now * PIPEVIEW_TICKS_PER_CYCLE);
    pipeview_ += buf;
}

// ---------------------------------------------------------------------
// Epoch-journal mode

void
Observer::setJournalMode(bool on)
{
    journal_ = on;
    coreNow_.assign(numCores_, 0);
    journals_.assign(numCores_, {});
}

void
Observer::flushJournal()
{
    // K-way merge of the per-core journals: each is already cycle-
    // ordered, and strict < on the cycle makes the lowest core win
    // ties, giving the deterministic (cycle, core, insertion) order.
    std::vector<size_t> pos(journals_.size(), 0);
    for (;;) {
        size_t best = journals_.size();
        for (size_t c = 0; c < journals_.size(); c++) {
            if (pos[c] >= journals_[c].size())
                continue;
            if (best == journals_.size() ||
                journals_[c][pos[c]].cycle <
                    journals_[best][pos[best]].cycle)
                best = c;
        }
        if (best == journals_.size())
            break;
        const JEntry &e = journals_[best][pos[best]++];
        now_ = e.cycle;
        traceActive_ = (cfg_.perfetto || cfg_.pipeview) &&
                       e.cycle >= cfg_.traceFrom && e.cycle < traceEnd_;
        CoreId core = static_cast<CoreId>(best);
        switch (e.kind) {
          case JEntry::Kind::QPush:
            pushImpl(core, static_cast<QueueId>(e.a), e.b);
            break;
          case JEntry::Kind::QPop:
            popImpl(core, static_cast<QueueId>(e.a), e.b);
            break;
          case JEntry::Kind::RaLat:
            raLatImpl(e.a, e.b);
            break;
          case JEntry::Kind::ConnStall:
            connStallImpl(e.a, e.cycle);
            break;
          case JEntry::Kind::Retire:
            retireImpl(e.cycle, core, e.tid, e.ri);
            break;
        }
    }
    for (auto &j : journals_)
        j.clear();
}

// ---------------------------------------------------------------------
// Perfetto polling

void
Observer::threadState(CoreId core, ThreadId tid, ThreadState s)
{
    ThreadTrack &t = threads_[ti(core, tid)];
    uint8_t code = static_cast<uint8_t>(s);
    if (t.state == code)
        return;
    if (t.state != 0xff) {
        evSlice(core + 1, tid + 1,
                threadStateName(static_cast<ThreadState>(t.state)),
                t.sliceStart, now_ - t.sliceStart);
    }
    t.state = code;
    t.sliceStart = now_;
}

void
Observer::raState(uint32_t idx, uint64_t cbSize, bool busy)
{
    if (ras_.size() <= idx)
        ras_.resize(idx + 1);
    RaTrack &r = ras_[idx];
    if (cbSize != r.lastCb) {
        r.lastCb = cbSize;
        evCounter(raPid(), "ra" + std::to_string(idx) + " cbuf", now_,
                  cbSize);
    }
    if (busy != r.busy) {
        if (r.busy)
            evSlice(raPid(), idx + 1, "busy", r.busyStart,
                    now_ - r.busyStart);
        r.busy = busy;
        r.busyStart = now_;
    }
}

void
Observer::connectorState(uint32_t idx, uint64_t inflight)
{
    if (conns_.size() <= idx)
        conns_.resize(idx + 1);
    ConnTrack &c = conns_[idx];
    if (inflight != c.lastInflight) {
        c.lastInflight = inflight;
        evCounter(connPid(), "conn" + std::to_string(idx) + " inflight",
                  now_, inflight);
    }
}

void
Observer::coreCpi(CoreId core,
                  const std::array<uint64_t, NUM_CPI_BUCKETS> &cum)
{
    if (now_ < cpiNextEmit_[core])
        return;
    cpiNextEmit_[core] = now_ + CPI_EMIT_PERIOD;
    std::string args;
    for (size_t i = 0; i < NUM_CPI_BUCKETS; i++) {
        if (i)
            args += ',';
        args += '"';
        args += cpiBucketName(static_cast<CpiBucket>(i));
        args += "\":";
        args += std::to_string(cum[i] - cpiPrev_[core][i]);
    }
    cpiPrev_[core] = cum;
    char buf[128];
    snprintf(buf, sizeof(buf),
             "{\"name\":\"cpi stack\",\"ph\":\"C\",\"pid\":%u,"
             "\"tid\":0,\"ts\":%" PRIu64 ",\"args\":{",
             core + 1, now_);
    events_.push_back(std::string(buf) + args + "}}");
}

// ---------------------------------------------------------------------
// Interval sampling

void
Observer::sample(Cycle now, const SampleInput &in)
{
    const CoreStats &a = in.agg;
    const CoreStats &p = prev_.agg;

    SampleRow row;
    row.cycle = now;
    row.instrs = a.committedInstrs - p.committedInstrs;
    row.uops = a.issuedUops - p.issuedUops;
    row.squashed = a.squashedInstrs - p.squashedInstrs;
    for (size_t i = 0; i < NUM_CPI_BUCKETS; i++)
        row.cpi[i] = a.cpiCycles[i] - p.cpiCycles[i];

    char buf[512];
    int n = snprintf(
        buf, sizeof(buf),
        "%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64
        ",%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64
        ",%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64
        ",%" PRIu64 ",%" PRIu64,
        now, row.instrs, row.uops, row.squashed, row.cpi[0], row.cpi[1],
        row.cpi[2], row.cpi[3], a.loads - p.loads, a.stores - p.stores,
        a.enqueues - p.enqueues, a.dequeues - p.dequeues,
        in.l1Misses - prev_.l1Misses, in.l2Misses - prev_.l2Misses,
        in.l3Misses - prev_.l3Misses,
        in.mem.dramReads - prev_.mem.dramReads,
        in.mem.dramWrites - prev_.mem.dramWrites);
    csv_.append(buf, n);
    size_t nq = static_cast<size_t>(numCores_) * numQueues_;
    for (size_t i = 0; i < nq; i++) {
        csv_ += ',';
        csv_ += std::to_string(in.queueOcc ? in.queueOcc[i] : 0);
    }
    csv_ += '\n';

    rows_.push_back(row);
    prev_ = in;
    prev_.queueOcc = nullptr; // not owned; only scalars carry over
    lastSample_ = now;
    nextSample_ = now + cfg_.sampleInterval;
}

// ---------------------------------------------------------------------
// Flight-recorder import

void
Observer::addFlightInstant(CoreId core, ThreadId tid, Cycle cycle,
                           const std::string &desc)
{
    if (!cfg_.perfetto)
        return;
    evInstant(core + 1, tid + 1, desc, cycle);
}

// ---------------------------------------------------------------------
// Finalize / export

void
Observer::closeOpenSlices(Cycle endCycle)
{
    for (uint32_t c = 0; c < numCores_; c++) {
        for (uint32_t t = 0; t < smtThreads_; t++) {
            ThreadTrack &tt = threads_[ti(c, t)];
            if (tt.state != 0xff && endCycle > tt.sliceStart) {
                evSlice(c + 1, t + 1,
                        threadStateName(
                            static_cast<ThreadState>(tt.state)),
                        tt.sliceStart, endCycle - tt.sliceStart);
            }
            tt.state = 0xff;
        }
    }
    for (size_t i = 0; i < ras_.size(); i++) {
        RaTrack &r = ras_[i];
        if (r.busy && endCycle > r.busyStart) {
            evSlice(raPid(), static_cast<uint32_t>(i) + 1, "busy",
                    r.busyStart, endCycle - r.busyStart);
        }
        r.busy = false;
    }
}

void
Observer::finalize(const SampleInput &in, Cycle now)
{
    if (finalized_)
        return;
    finalized_ = true;
    now_ = now;
    for (size_t i = 0; i < conns_.size(); i++)
        flushConnRun(conns_[i], static_cast<uint32_t>(i));
    if (cfg_.perfetto)
        closeOpenSlices(now);
    // Final partial interval, so the CSV totals match the run totals.
    if (cfg_.sampleInterval && now > lastSample_)
        sample(now, in);
}

std::string
Observer::perfettoJson() const
{
    std::string out = "{\"traceEvents\":[\n";
    for (size_t i = 0; i < events_.size(); i++) {
        out += events_[i];
        if (i + 1 < events_.size())
            out += ',';
        out += '\n';
    }
    out += "],\"displayTimeUnit\":\"ns\"}\n";
    return out;
}

void
Observer::writeFiles()
{
    if (filesWritten_)
        return;
    filesWritten_ = true;
    auto writeTo = [](const std::string &path, const std::string &data) {
        if (path.empty())
            return;
        FILE *f = fopen(path.c_str(), "w");
        if (!f) {
            warn("obs: cannot open ", path, " for writing");
            return;
        }
        fwrite(data.data(), 1, data.size(), f);
        fclose(f);
    };
    if (cfg_.perfetto)
        writeTo(cfg_.perfettoPath, perfettoJson());
    if (cfg_.pipeview)
        writeTo(cfg_.pipeviewPath, pipeview_);
    if (cfg_.sampleInterval)
        writeTo(cfg_.sampleCsvPath, csv_);
}

void
Observer::dumpStats(std::map<std::string, double> &out) const
{
    if (cfg_.sampleInterval)
        out["obs.samples"] = static_cast<double>(rows_.size());
    if (!cfg_.histograms)
        return;
    for (uint32_t c = 0; c < numCores_; c++) {
        for (uint32_t q = 0; q < numQueues_; q++) {
            const QueueTrack &t = qt(c, q);
            if (!t.pushes && !t.pops)
                continue;
            std::string prefix =
                "obs.c" + std::to_string(c) + ".q" + std::to_string(q);
            t.occ.dump(prefix + ".occ", out);
            t.wait.dump(prefix + ".wait", out);
        }
    }
    for (size_t i = 0; i < ras_.size(); i++) {
        if (ras_[i].latency.count()) {
            ras_[i].latency.dump(
                "obs.ra" + std::to_string(i) + ".latency", out);
        }
    }
    for (size_t i = 0; i < conns_.size(); i++) {
        if (conns_[i].stall.count()) {
            conns_[i].stall.dump(
                "obs.conn" + std::to_string(i) + ".creditStall", out);
        }
    }
}

// ---------------------------------------------------------------------
// Introspection

Observer::QueueTrack &
Observer::qt(CoreId core, QueueId q)
{
    return queues_[static_cast<size_t>(core) * numQueues_ + q];
}

const Observer::QueueTrack &
Observer::qt(CoreId core, QueueId q) const
{
    return queues_[static_cast<size_t>(core) * numQueues_ + q];
}

size_t
Observer::ti(CoreId core, ThreadId tid) const
{
    return static_cast<size_t>(core) * smtThreads_ + tid;
}

uint64_t
Observer::queuePushes(CoreId core, QueueId q) const
{
    return qt(core, q).pushes;
}

uint64_t
Observer::queuePops(CoreId core, QueueId q) const
{
    return qt(core, q).pops;
}

uint64_t
Observer::totalQueuePushes() const
{
    uint64_t t = 0;
    for (const QueueTrack &q : queues_)
        t += q.pushes;
    return t;
}

const Log2Histogram &
Observer::occupancyHist(CoreId core, QueueId q) const
{
    return qt(core, q).occ;
}

const Log2Histogram &
Observer::waitHist(CoreId core, QueueId q) const
{
    return qt(core, q).wait;
}

const Log2Histogram &
Observer::raLatencyHist(uint32_t idx) const
{
    return ras_[idx].latency;
}

const Log2Histogram &
Observer::connStallHist(uint32_t idx) const
{
    return conns_[idx].stall;
}

// ---------------------------------------------------------------------
// Perfetto event emission. 1 simulated cycle = 1 trace microsecond.

void
Observer::evSlice(uint32_t pid, uint32_t tid, const char *name, Cycle ts,
                  Cycle dur)
{
    char buf[224];
    snprintf(buf, sizeof(buf),
             "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":%u,\"tid\":%u,"
             "\"ts\":%" PRIu64 ",\"dur\":%" PRIu64 "}",
             name, pid, tid, ts, dur);
    events_.push_back(buf);
}

void
Observer::evCounter(uint32_t pid, const std::string &name, Cycle ts,
                    uint64_t value)
{
    char buf[224];
    snprintf(buf, sizeof(buf),
             "{\"name\":\"%s\",\"ph\":\"C\",\"pid\":%u,\"tid\":0,"
             "\"ts\":%" PRIu64 ",\"args\":{\"value\":%" PRIu64 "}}",
             name.c_str(), pid, ts, value);
    events_.push_back(buf);
}

void
Observer::evInstant(uint32_t pid, uint32_t tid, const std::string &name,
                    Cycle ts)
{
    char buf[288];
    snprintf(buf, sizeof(buf),
             "{\"name\":\"%s\",\"ph\":\"i\",\"pid\":%u,\"tid\":%u,"
             "\"ts\":%" PRIu64 ",\"s\":\"t\"}",
             jsonEscape(name).c_str(), pid, tid, ts);
    events_.push_back(buf);
}

void
Observer::evMeta(uint32_t pid, uint32_t tid, const char *metaName,
                 const std::string &value)
{
    char buf[288];
    snprintf(buf, sizeof(buf),
             "{\"name\":\"%s\",\"ph\":\"M\",\"pid\":%u,\"tid\":%u,"
             "\"args\":{\"name\":\"%s\"}}",
             metaName, pid, tid, jsonEscape(value).c_str());
    events_.push_back(buf);
}

} // namespace obs
} // namespace pipette
