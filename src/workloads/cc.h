/**
 * @file
 * Connected components (paper Sec. V-B, from Ligra): min-label
 * propagation over a shrinking frontier. The pipeline mirrors BFS
 * (Fig. 1(d)) with one addition: the current vertex's label travels
 * down the pipeline as a per-vertex control value, so the update stage
 * needs no extra loads to know which label to propagate.
 *
 * CV protocol: values with bit 63 clear are per-vertex label headers;
 * bit 63 set marks control (LEVEL_END / DONE).
 */

#ifndef PIPETTE_WORKLOADS_CC_H
#define PIPETTE_WORKLOADS_CC_H

#include "workloads/graph.h"
#include "workloads/refimpl.h"
#include "workloads/workload.h"

namespace pipette {

/** Connected-components workload over one input graph. */
class CcWorkload : public WorkloadBase
{
  public:
    explicit CcWorkload(const Graph *g);

    std::string name() const override { return "cc"; }
    void build(BuildContext &ctx, Variant v) override;
    bool verify(System &sys) const override;

    /** Simulated address of the component-label array (for tooling). */
    Addr resultAddr() const { return compAddr_; }

    static constexpr uint64_t HDR_BIT = 1ull << 63;
    static constexpr uint64_t LEVEL_END = HDR_BIT;
    static constexpr uint64_t DONE = HDR_BIT + 1;

  private:
    struct Arrays
    {
        Addr off, ngh, comp, flag, fA, fB, globals;
    };
    Arrays installArrays(BuildContext &ctx);

    void buildSerial(BuildContext &ctx);
    void buildDataParallel(BuildContext &ctx);
    void buildPipeline(BuildContext &ctx, bool useRa, bool streaming);

    Program *genFringe(BuildContext &ctx, bool emitOffsets);
    Program *genPump(BuildContext &ctx, Addr *handler);
    Program *genEnumerate(BuildContext &ctx, Addr *handler);
    Program *genFetchComp(BuildContext &ctx, Addr *handler);
    Program *genUpdate(BuildContext &ctx, Addr *handler);

    const Graph *g_;
    std::vector<uint32_t> refComp_;
    Addr compAddr_ = 0;
};

} // namespace pipette

#endif // PIPETTE_WORKLOADS_CC_H
