/**
 * @file
 * Host-side graph representation (CSR) and synthetic generators that
 * approximate the paper's Table V inputs at laptop scale: 2D grids for
 * road networks (high diameter, degree ~4), R-MAT for power-law graphs
 * (collaboration / internet), and uniform random graphs for circuit /
 * simulation meshes. All generators are deterministic given a seed.
 */

#ifndef PIPETTE_WORKLOADS_GRAPH_H
#define PIPETTE_WORKLOADS_GRAPH_H

#include <cstdint>
#include <string>
#include <vector>

#include "sim/rng.h"

namespace pipette {

/** Compressed-sparse-row graph (32-bit ids, as in common frameworks). */
struct Graph
{
    uint32_t numVertices = 0;
    std::vector<uint32_t> offsets;   // numVertices + 1
    std::vector<uint32_t> neighbors; // numEdges

    uint32_t numEdges() const { return static_cast<uint32_t>(neighbors.size()); }
    uint32_t
    degree(uint32_t v) const
    {
        return offsets[v + 1] - offsets[v];
    }
    double
    avgDegree() const
    {
        return numVertices
                   ? static_cast<double>(numEdges()) / numVertices
                   : 0.0;
    }
};

/** Build a CSR graph from an edge list (directed edges as given). */
Graph buildCsr(uint32_t numVertices,
               const std::vector<std::pair<uint32_t, uint32_t>> &edges);

/**
 * 2D grid graph (road-network proxy: degree <= 4, huge diameter).
 * Vertex ids are randomly permuted so neighbor accesses are irregular,
 * as they are with real road networks stored in arbitrary order.
 */
Graph makeGridGraph(uint32_t rows, uint32_t cols, uint64_t seed);

/**
 * R-MAT power-law graph (collaboration / internet proxy) with the
 * classic (0.57, 0.19, 0.19, 0.05) parameters, symmetrized.
 */
Graph makeRmatGraph(uint32_t numVertices, uint32_t numEdges,
                    uint64_t seed);

/** Uniform random graph with the given average degree, symmetrized. */
Graph makeUniformGraph(uint32_t numVertices, double avgDegree,
                       uint64_t seed);

/** A named input approximating one Table V row. */
struct GraphInput
{
    std::string name;  ///< short tag used in the paper's plots (Co, Dy, ...)
    std::string domain;
    Graph graph;
};

/**
 * The five Table V proxies, scaled to `scale` vertices for the largest
 * (road) input; the others keep the paper's relative sizes and degree
 * profiles. scale=1.0 means the default laptop-scale sizes.
 */
std::vector<GraphInput> makeTable5Inputs(double scale = 1.0);

} // namespace pipette

#endif // PIPETTE_WORKLOADS_GRAPH_H
