/**
 * @file
 * Host reference implementations used to verify every simulated
 * workload variant. Each reference produces exactly the architectural
 * result the simulated programs must compute (integer-exact).
 */

#ifndef PIPETTE_WORKLOADS_REFIMPL_H
#define PIPETTE_WORKLOADS_REFIMPL_H

#include <cstdint>
#include <vector>

#include "workloads/graph.h"
#include "workloads/matrix.h"

namespace pipette {

/** BFS distances from src (0xFFFFFFFF where unreachable). */
std::vector<uint32_t> bfsReference(const Graph &g, uint32_t src);

/** Connected components by min-label propagation: comp[v] = min id in
 *  v's component. */
std::vector<uint32_t> ccReference(const Graph &g);

/** Parameters of the fixed-point PageRank-Delta kernel. */
struct PrdParams
{
    uint32_t maxIters = 10;
    /** Fixed-point scale: values are in units of 2^-16. */
    static constexpr uint64_t FP = 1u << 16;
    /** alpha = 54/64 = 0.84375 (damping). */
    static constexpr uint64_t ALPHA_NUM = 54;
    static constexpr uint32_t ALPHA_SHIFT = 6;
    /** Activation threshold for |delta|. */
    static constexpr uint64_t EPS = FP / 128;
};

/** Fixed-point PageRank-Delta ranks after convergence/maxIters. */
std::vector<uint64_t> prdReference(const Graph &g, const PrdParams &p);

/** Parameters of the Radii estimation kernel. */
struct RadiiParams
{
    uint32_t numSources = 48; ///< low bits of the visited mask (< 60)
    uint64_t seed = 7;
};

/** Radii estimates (round at which each vertex's mask last changed;
 *  0 for untouched vertices). */
std::vector<uint32_t> radiiReference(const Graph &g,
                                     const RadiiParams &p);

/** The K distinct source vertices, in generation order (source i owns
 *  mask bit i). Shared by the reference and the simulated builds. */
std::vector<uint32_t> radiiSources(uint32_t numVertices,
                                   const RadiiParams &p);

/**
 * Inner-product SpMM sample: C[i][j] = dot(A_i, Bt_j) for every row i
 * and every j in cols, where Bt is B's transpose (so Bt_j is B's column
 * j as a sparse row). Returned row-major: result[i * cols.size() + k].
 */
std::vector<uint64_t> spmmReference(const SparseMatrix &A,
                                    const SparseMatrix &Bt,
                                    const std::vector<uint32_t> &cols);

// ---------------------------------------------------------------- Silo

/** Fixed-depth B+tree with 32-bit keys/values (Silo index proxy). */
struct BPlusTree
{
    /** Keys per node (fanout = KEYS + 1 children for internal nodes). */
    static constexpr uint32_t KEYS = 15;
    /** Node layout in 32-bit words: [nkeys, keys[15], children[16]]. */
    static constexpr uint32_t NODE_WORDS = 32;

    uint32_t depth = 0;      ///< levels including the leaf level
    uint32_t rootIndex = 0;  ///< node index of the root
    /** Flat node pool; children are node indices (or values at leaves). */
    std::vector<uint32_t> pool;

    /** Look up a key; returns its value (keys are always present). */
    uint32_t lookup(uint32_t key) const;
};

/** Build a fixed-depth B+tree over keys 0..numKeys-1 with
 *  value(key) = key * 2654435761 (a hash, checked by verify). */
BPlusTree buildBPlusTree(uint32_t numKeys);

/** Zipfian YCSB-C query stream over the key space. */
std::vector<uint32_t> makeYcsbQueries(uint32_t numKeys,
                                      uint32_t numQueries, double theta,
                                      uint64_t seed);

/** Reference checksum: sum of looked-up values. */
uint64_t siloReference(const BPlusTree &tree,
                       const std::vector<uint32_t> &queries);

} // namespace pipette

#endif // PIPETTE_WORKLOADS_REFIMPL_H
