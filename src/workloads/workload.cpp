#include "workloads/workload.h"

namespace pipette {

const char *
variantName(Variant v)
{
    switch (v) {
      case Variant::Serial: return "serial";
      case Variant::DataParallel: return "data-parallel";
      case Variant::Pipette: return "pipette";
      case Variant::PipetteNoRa: return "pipette-nora";
      case Variant::Streaming: return "streaming";
      case Variant::MulticorePipette: return "multicore-pipette";
      default: return "?";
    }
}

bool
WorkloadBase::supports(Variant v) const
{
    return v != Variant::MulticorePipette;
}

Addr
installU32(SimMemory &mem, SimAllocator &alloc,
           const std::vector<uint32_t> &data)
{
    Addr base = alloc.alloc32(data.size() ? data.size() : 1);
    mem.writeArray32(base, data.data(), data.size());
    return base;
}

Addr
installU64(SimMemory &mem, SimAllocator &alloc,
           const std::vector<uint64_t> &data)
{
    Addr base = alloc.alloc64(data.size() ? data.size() : 1);
    mem.writeArray64(base, data.data(), data.size());
    return base;
}

void
emitBarrier(Asm &a, Reg gbase, int64_t countOff, int64_t phaseOff,
            uint64_t n, Reg s1, Reg s2, Reg s3)
{
    auto wait = a.label();
    auto spin = a.label();
    auto after = a.label();
    a.ld(s1, gbase, phaseOff);    // my phase
    a.addi(s2, gbase, countOff);  // &count
    a.li(s3, 1);
    a.amoadd(s3, s2, s3);         // s3 = arrivals before me
    a.bnei(s3, static_cast<int64_t>(n - 1), wait);
    // Last arriver: reset the count, then advance the phase.
    a.sd(R::zero, s2, 0);
    a.addi(s2, gbase, phaseOff);
    a.li(s3, 1);
    a.amoadd(R::zero, s2, s3);
    a.jmp(after);
    a.bind(wait);
    a.addi(s2, gbase, phaseOff);
    a.bind(spin);
    a.ld(s3, s2, 0);
    a.beq(s3, s1, spin);
    a.bind(after);
    // Order post-barrier loads after the phase observation. The OOO
    // core would otherwise hoist them above the spin exit and read
    // stale pre-barrier values.
    a.fence();
}

} // namespace pipette
