#include "workloads/silo.h"

namespace pipette {

namespace {
constexpr Reg QO{11};   ///< packed (key, node) to the next stage
constexpr Reg QI{12};   ///< packed (key, node) from the previous stage
constexpr Reg QRO{9};   ///< node-header announce to the next stage's RA
constexpr Reg QRI{10};  ///< node header from this stage's RA
constexpr uint32_t NODE_SHIFT = 7; // 128-byte nodes
} // namespace

SiloWorkload::SiloWorkload(Options opt) : opt_(opt)
{
    tree_ = buildBPlusTree(opt.numKeys);
    queries_ = makeYcsbQueries(opt.numKeys, opt.numQueries,
                               opt.zipfTheta, opt.seed);
    refSum_ = siloReference(tree_, queries_);
    static_assert(BPlusTree::NODE_WORDS * 4 == 1u << NODE_SHIFT,
                  "node size mismatch");
}

SiloWorkload::Arrays
SiloWorkload::installArrays(BuildContext &ctx)
{
    Arrays a;
    a.pool = installU32(ctx.mem(), ctx.alloc, tree_.pool);
    a.queries = installU32(ctx.mem(), ctx.alloc, queries_);
    a.result = ctx.alloc.alloc(8);
    ctx.mem().write(a.result, 8, 0);
    resultAddr_ = a.result;
    a.globals = ctx.alloc.alloc(64);
    ctx.mem().fill(a.globals, 64, 0);
    return a;
}

bool
SiloWorkload::verify(System &sys) const
{
    uint64_t got = sys.memory().read(resultAddr_, 8);
    if (got != refSum_) {
        warn("silo mismatch: got ", got, " want ", refSum_);
        return false;
    }
    return true;
}

void
SiloWorkload::build(BuildContext &ctx, Variant v)
{
    switch (v) {
      case Variant::Serial:
        buildSerial(ctx);
        break;
      case Variant::DataParallel:
        buildDataParallel(ctx);
        break;
      case Variant::Pipette:
        buildPipeline(ctx, true, false);
        break;
      case Variant::PipetteNoRa:
        buildPipeline(ctx, false, false);
        break;
      case Variant::Streaming:
        buildPipeline(ctx, false, true);
        break;
      default:
        fatal("silo: unsupported variant");
    }
}

// ----------------------------------------------------------- serial/DP

namespace {

/**
 * Emit the full-lookup loop over queries [r1, r2). r5 = pool base,
 * r6 = local sum. Ends with the sum in r6.
 */
void
emitLookupLoop(Asm &a, const BPlusTree &tree, Addr poolBase)
{
    auto qloop = a.label();
    auto desc = a.label();
    auto scan = a.label();
    auto fnd = a.label();
    auto leaf = a.label();
    auto lscan = a.label();
    auto lfnd = a.label();
    auto out = a.label();

    Addr rootAddr = poolBase + static_cast<Addr>(tree.rootIndex) *
                                   (BPlusTree::NODE_WORDS * 4);

    a.bind(qloop);
    a.bgeu(R::r1, R::r2, out);
    a.lw(R::r3, R::r1, 0); // key
    a.addi(R::r1, R::r1, 4);
    a.li(R::r4, rootAddr);
    a.li(Reg{11}, tree.depth - 1);
    a.bind(desc);
    a.beqi(Reg{11}, 0, leaf);
    a.lw(R::r7, R::r4, 0); // nkeys
    a.li(R::r8, 0);
    a.bind(scan);
    a.bgeu(R::r8, R::r7, fnd);
    a.slli(R::r9, R::r8, 2);
    a.add(R::r9, R::r4, R::r9);
    a.lw(R::r10, R::r9, 4);
    a.bltu(R::r3, R::r10, fnd);
    a.addi(R::r8, R::r8, 1);
    a.jmp(scan);
    a.bind(fnd);
    a.slli(R::r9, R::r8, 2);
    a.add(R::r9, R::r4, R::r9);
    a.lw(R::r9, R::r9, 4 * (1 + BPlusTree::KEYS)); // children[i]
    a.slli(R::r9, R::r9, NODE_SHIFT);
    a.li(R::r10, poolBase);
    a.add(R::r4, R::r10, R::r9);
    a.addi(Reg{11}, Reg{11}, -1);
    a.jmp(desc);
    a.bind(leaf);
    a.lw(R::r7, R::r4, 0);
    a.li(R::r8, 0);
    a.bind(lscan);
    a.bgeu(R::r8, R::r7, qloop); // absent key: skip (never happens)
    a.slli(R::r9, R::r8, 2);
    a.add(R::r9, R::r4, R::r9);
    a.lw(R::r10, R::r9, 4);
    a.beq(R::r10, R::r3, lfnd);
    a.addi(R::r8, R::r8, 1);
    a.jmp(lscan);
    a.bind(lfnd);
    a.lw(R::r10, R::r9, 4 * (1 + BPlusTree::KEYS)); // values[i]
    a.add(R::r6, R::r6, R::r10);
    a.jmp(qloop);
    a.bind(out);
}

} // namespace

void
SiloWorkload::buildSerial(BuildContext &ctx)
{
    Arrays A = installArrays(ctx);
    Program *p = ctx.newProgram("silo-serial");
    Asm a(p);
    a.li(R::r6, 0);
    emitLookupLoop(a, tree_, A.pool);
    a.li(R::r9, A.result);
    a.sd(R::r6, R::r9, 0);
    a.halt();
    a.finalize();
    ThreadSpec &t = ctx.spec.addThread(0, 0, p);
    t.initRegs[1] = A.queries;
    t.initRegs[2] = A.queries + 4ull * queries_.size();
    t.initRegs[5] = A.pool;
}

void
SiloWorkload::buildDataParallel(BuildContext &ctx)
{
    Arrays A = installArrays(ctx);
    uint32_t nThreads = ctx.numCores() * ctx.smtThreads();
    Program *p = ctx.newProgram("silo-dp");
    Asm a(p);
    a.li(R::r6, 0);
    emitLookupLoop(a, tree_, A.pool);
    // Fold the partial sum into the shared result atomically.
    a.li(R::r9, A.result);
    a.amoadd(R::zero, R::r9, R::r6);
    a.halt();
    a.finalize();

    uint32_t per = static_cast<uint32_t>(queries_.size()) / nThreads;
    for (CoreId c = 0; c < ctx.numCores(); c++) {
        for (ThreadId t = 0; t < ctx.smtThreads(); t++) {
            uint32_t idx = c * ctx.smtThreads() + t;
            uint32_t lo = idx * per;
            uint32_t hi = idx + 1 == nThreads
                              ? static_cast<uint32_t>(queries_.size())
                              : lo + per;
            ThreadSpec &ts = ctx.spec.addThread(c, t, p);
            ts.initRegs[1] = A.queries + 4ull * lo;
            ts.initRegs[2] = A.queries + 4ull * hi;
            ts.initRegs[5] = A.pool;
        }
    }
}

// ------------------------------------------------------ pipeline stages

Program *
SiloWorkload::genStage(BuildContext &ctx, const Arrays &A, uint32_t levels,
                       bool first, bool last, bool raIn, bool raOut,
                       Addr *handler)
{
    Program *p = ctx.newProgram("silo-stage");
    Asm a(p);
    auto loop = a.label("loop");
    auto fin = a.label("fin");
    auto hdl = a.label("hdl");

    Addr rootAddr = A.pool + static_cast<Addr>(tree_.rootIndex) *
                                 (BPlusTree::NODE_WORDS * 4);

    if (last)
        a.li(R::r1, 0); // sum
    a.bind(loop);
    if (first) {
        a.bgeu(R::r1, R::r2, fin);
        a.lw(R::r3, R::r1, 0); // key
        a.addi(R::r1, R::r1, 4);
        a.li(R::r4, rootAddr);
    } else {
        a.mov(R::r8, QI); // packed (key << 32 | node); traps on DONE
        a.srli(R::r3, R::r8, 32);
        a.andi(R::r4, R::r8, 0xFFFFFFFFll);
        a.slli(R::r4, R::r4, NODE_SHIFT);
        a.add(R::r4, R::r5, R::r4);
    }
    if (raIn)
        a.mov(R::r8, QRI); // consume the header announce (L1 is warm)

    for (uint32_t lvl = 0; lvl < levels; lvl++) {
        bool leafLevel = last && lvl + 1 == levels;
        if (lvl > 0) {
            // r4 currently holds a child node index.
            a.slli(R::r4, R::r4, NODE_SHIFT);
            a.add(R::r4, R::r5, R::r4);
        }
        auto scan = a.label();
        auto found = a.label();
        // Key-compare scratch: the first stage keeps its query-stream
        // end pointer in r2, so it scans through r10 instead (r10 is
        // only queue-mapped on non-first stages).
        Reg ks = first ? Reg{10} : Reg{2};
        a.lw(R::r6, R::r4, 0); // nkeys
        a.li(R::r7, 0);
        a.bind(scan);
        a.bgeu(R::r7, R::r6, leafLevel ? loop : found);
        a.slli(R::r8, R::r7, 2);
        a.add(R::r8, R::r4, R::r8);
        if (leafLevel) {
            a.lw(ks, R::r8, 4);
            a.beq(ks, R::r3, found);
        } else {
            a.lw(ks, R::r8, 4);
            a.bltu(R::r3, ks, found);
        }
        a.addi(R::r7, R::r7, 1);
        a.jmp(scan);
        a.bind(found);
        // Recompute the slot address: the scan may exit with i == nkeys
        // without having updated r8 for the final index.
        a.slli(R::r8, R::r7, 2);
        a.add(R::r8, R::r4, R::r8);
        a.lw(R::r4, R::r8, 4 * (1 + BPlusTree::KEYS));
        if (leafLevel) {
            a.add(R::r1, R::r1, R::r4); // accumulate value
        }
    }
    if (!last) {
        a.slli(R::r8, R::r3, 32);
        a.or_(R::r8, R::r8, R::r4);
        a.mov(QO, R::r8);
        if (raOut) {
            // Announce the next node to the next stage's RA (the RA
            // fetches pool[idx * 16] in 8-byte units -> header line).
            a.slli(R::r8, R::r4, 4);
            a.mov(QRO, R::r8);
        }
    }
    a.jmp(loop);
    a.bind(fin);
    if (first) {
        a.enqc(QO, R::zero); // DONE
        a.halt();
    }
    a.bind(hdl);
    if (!first) {
        if (last) {
            a.li(R::r8, A.result);
            a.sd(R::r1, R::r8, 0);
            a.halt();
        } else {
            a.enqc(QO, R::cvval);
            a.halt();
        }
    }
    a.finalize();
    *handler = first ? static_cast<Addr>(-1) : p->labels().at("hdl");
    return p;
}

void
SiloWorkload::buildPipeline(BuildContext &ctx, bool useRa, bool streaming)
{
    Arrays A = installArrays(ctx);
    uint32_t depth = tree_.depth;
    uint32_t numStages =
        std::min<uint32_t>(streaming ? ctx.numCores() : ctx.smtThreads(),
                           std::min(4u, depth));
    fatal_if(numStages < 2, "silo pipeline needs >= 2 stages");
    fatal_if(streaming && ctx.numCores() < numStages,
             "streaming silo needs one core per stage");

    // Distribute levels: earlier stages take the extra ones.
    std::vector<uint32_t> levels(numStages, depth / numStages);
    for (uint32_t s = 0; s < depth % numStages; s++)
        levels[s]++;

    // First nodes handled by each stage s > 0 are announced by stage
    // s-1 through an RA (queue ids: chain q0..; RA queues above).
    auto addMap = [](ThreadSpec &t, Reg r, QueueId q, QueueDir d) {
        t.queueMaps.push_back({r.idx, q, d});
    };

    for (uint32_t s = 0; s < numStages; s++) {
        bool first = s == 0;
        bool last = s + 1 == numStages;
        bool raIn = useRa && !first;
        bool raOut = useRa && !last;
        Addr h;
        Program *p = genStage(ctx, A, levels[s], first, last, raIn,
                              raOut, &h);
        CoreId core = streaming ? s : 0;
        ThreadId tid = streaming ? 0 : static_cast<ThreadId>(s);
        ThreadSpec &t = ctx.spec.addThread(core, tid, p);
        if (!first)
            t.deqHandler = static_cast<int64_t>(h);
        t.initRegs[5] = A.pool;
        if (first) {
            t.initRegs[1] = A.queries;
            t.initRegs[2] = A.queries + 4ull * queries_.size();
        }

        if (streaming) {
            // Chain queue: local q0 out on producer, q0 in on consumer.
            if (!first)
                addMap(t, QI, 0, QueueDir::In);
            if (!last) {
                addMap(t, QO, 1, QueueDir::Out);
                ctx.spec.connectors.push_back(
                    {core, 1, core + 1, 0});
            }
        } else {
            // Single core: chain queues 0..numStages-2; RA queues
            // 8+2s (announce in) and 8+2s+1 (header out).
            if (!first)
                addMap(t, QI, static_cast<QueueId>(s - 1), QueueDir::In);
            if (!last)
                addMap(t, QO, static_cast<QueueId>(s), QueueDir::Out);
            if (raOut) {
                auto annQ = static_cast<QueueId>(8 + 2 * s);
                addMap(t, QRO, annQ, QueueDir::Out);
                ctx.spec.ras.push_back(
                    {0, annQ, static_cast<QueueId>(annQ + 1), A.pool, 8,
                     RaMode::Indirect});
            }
            if (raIn) {
                addMap(t, QRI, static_cast<QueueId>(8 + 2 * (s - 1) + 1),
                       QueueDir::In);
            }
        }
    }
}

} // namespace pipette
