#include "workloads/spmm.h"

namespace pipette {

namespace {
// Merge-intersect queue registers.
constexpr Reg QRI{9};   ///< row stream in
constexpr Reg QCI{10};  ///< col stream in
constexpr Reg QPA{11};  ///< matched A positions out (also CV channel)
constexpr Reg QPB{12};  ///< matched B positions out
// Streamer / accumulate registers.
constexpr Reg QO{11};
constexpr Reg QVA{9};
constexpr Reg QVB{10};
constexpr int64_t CHUNK = 4;
} // namespace

SpmmWorkload::SpmmWorkload(const SparseMatrix *a, const SparseMatrix *bt,
                           Options opt)
    : a_(a), bt_(bt), opt_(opt)
{
    fatal_if(a->n != bt->n, "spmm: dimension mismatch");
    uint32_t nc = std::min(opt.numCols, a->n);
    stride_ = std::max(1u, a->n / nc);
    for (uint32_t k = 0; k < nc; k++)
        cols_.push_back(k * stride_);
    refC_ = spmmReference(*a, *bt, cols_);
}

SpmmWorkload::Arrays
SpmmWorkload::installArrays(BuildContext &ctx)
{
    Arrays A;
    A.rowPtrA = installU32(ctx.mem(), ctx.alloc, a_->rowPtr);
    A.colIdxA = installU32(ctx.mem(), ctx.alloc, a_->colIdx);
    A.valA = installU32(ctx.mem(), ctx.alloc, a_->values);
    A.rowPtrB = installU32(ctx.mem(), ctx.alloc, bt_->rowPtr);
    A.colIdxB = installU32(ctx.mem(), ctx.alloc, bt_->colIdx);
    A.valB = installU32(ctx.mem(), ctx.alloc, bt_->values);
    A.c = ctx.alloc.alloc64(static_cast<uint64_t>(a_->n) * cols_.size());
    ctx.mem().fill(A.c, 8ull * a_->n * cols_.size(), 0);
    cAddr_ = A.c;
    A.globals = ctx.alloc.alloc(64);
    ctx.mem().fill(A.globals, 64, 0);
    return A;
}

bool
SpmmWorkload::verify(System &sys) const
{
    auto got = sys.memory().readArray64(cAddr_, refC_.size());
    for (size_t i = 0; i < refC_.size(); i++) {
        if (got[i] != refC_[i]) {
            warn("spmm mismatch at slot ", i, ": got ", got[i], " want ",
                 refC_[i]);
            return false;
        }
    }
    return true;
}

void
SpmmWorkload::build(BuildContext &ctx, Variant v)
{
    switch (v) {
      case Variant::Serial:
        buildSerial(ctx);
        break;
      case Variant::DataParallel:
        buildDataParallel(ctx);
        break;
      case Variant::Pipette:
        buildPipeline(ctx, true, false);
        break;
      case Variant::PipetteNoRa:
        buildPipeline(ctx, false, false);
        break;
      case Variant::Streaming:
        buildPipeline(ctx, true, true);
        break;
      default:
        fatal("spmm: unsupported variant");
    }
}

// ----------------------------------------------------- serial / DP core

void
SpmmWorkload::emitSerialKernel(Asm &a, const Arrays &A, bool dataParallel,
                               uint32_t nThreads)
{
    (void)nThreads;
    // r1=rowPtrA r2=colIdxA r3=rowPtrB r4=colIdxB
    // r5=i r6=k r7=pa r8=ea r9=pb r10=eb r11=sum r15=chunkEnd (DP)
    auto iloop = a.label();
    auto kloop = a.label();
    auto merge = a.label();
    auto lt = a.label();
    auto gt = a.label();
    auto eq = a.label();
    auto mdone = a.label();
    auto knext = a.label();
    auto inext = a.label();
    auto claim = a.label();
    auto noclamp = a.label();
    auto done = a.label();

    uint32_t n = a_->n;
    auto numCols = static_cast<int64_t>(cols_.size());

    if (dataParallel) {
        a.bind(claim);
        a.li(Reg{12}, A.globals);
        a.li(Reg{13}, CHUNK);
        a.amoadd(R::r5, Reg{12}, Reg{13});
        a.bgei(R::r5, n, done);
        a.addi(Reg{15}, R::r5, CHUNK);
        a.blti(Reg{15}, n, noclamp);
        a.li(Reg{15}, n);
        a.bind(noclamp);
    } else {
        a.li(R::r5, 0);
    }
    a.bind(iloop);
    if (dataParallel)
        a.bgeu(R::r5, Reg{15}, claim);
    a.li(R::r6, 0);
    a.bind(kloop);
    a.slli(Reg{12}, R::r5, 2);
    a.add(Reg{12}, R::r1, Reg{12});
    a.lw(R::r7, Reg{12}, 0); // pa
    a.lw(R::r8, Reg{12}, 4); // ea
    a.li(Reg{12}, stride_);
    a.mul(Reg{12}, R::r6, Reg{12}); // j
    a.slli(Reg{12}, Reg{12}, 2);
    a.add(Reg{12}, R::r3, Reg{12});
    a.lw(R::r9, Reg{12}, 0);  // pb
    a.lw(R::r10, Reg{12}, 4); // eb
    a.li(Reg{11}, 0);         // sum
    a.bind(merge);
    a.bgeu(R::r7, R::r8, mdone);
    a.bgeu(R::r9, R::r10, mdone);
    a.slli(Reg{12}, R::r7, 2);
    a.add(Reg{12}, R::r2, Reg{12});
    a.lw(Reg{12}, Reg{12}, 0); // ca
    a.slli(Reg{13}, R::r9, 2);
    a.add(Reg{13}, R::r4, Reg{13});
    a.lw(Reg{13}, Reg{13}, 0); // cb
    a.beq(Reg{12}, Reg{13}, eq);
    a.bltu(Reg{12}, Reg{13}, lt);
    a.bind(gt);
    a.addi(R::r9, R::r9, 1);
    a.jmp(merge);
    a.bind(lt);
    a.addi(R::r7, R::r7, 1);
    a.jmp(merge);
    a.bind(eq);
    a.li(Reg{12}, A.valA);
    a.slli(Reg{13}, R::r7, 2);
    a.add(Reg{12}, Reg{12}, Reg{13});
    a.lw(Reg{12}, Reg{12}, 0); // va
    a.li(Reg{13}, A.valB);
    a.slli(Reg{14}, R::r9, 2);
    a.add(Reg{13}, Reg{13}, Reg{14});
    a.lw(Reg{13}, Reg{13}, 0); // vb
    a.mul(Reg{12}, Reg{12}, Reg{13});
    a.add(Reg{11}, Reg{11}, Reg{12});
    a.addi(R::r7, R::r7, 1);
    a.addi(R::r9, R::r9, 1);
    a.jmp(merge);
    a.bind(mdone);
    a.li(Reg{12}, A.c);
    a.li(Reg{13}, numCols);
    a.mul(Reg{13}, R::r5, Reg{13});
    a.add(Reg{13}, Reg{13}, R::r6);
    a.slli(Reg{13}, Reg{13}, 3);
    a.add(Reg{12}, Reg{12}, Reg{13});
    a.sd(Reg{11}, Reg{12}, 0);
    a.bind(knext);
    a.addi(R::r6, R::r6, 1);
    a.blti(R::r6, numCols, kloop);
    a.bind(inext);
    a.addi(R::r5, R::r5, 1);
    if (dataParallel)
        a.jmp(iloop);
    else
        a.blti(R::r5, n, iloop);
    a.bind(done);
    a.halt();
}

void
SpmmWorkload::buildSerial(BuildContext &ctx)
{
    Arrays A = installArrays(ctx);
    Program *p = ctx.newProgram("spmm-serial");
    Asm a(p);
    emitSerialKernel(a, A, false, 1);
    a.finalize();
    ThreadSpec &t = ctx.spec.addThread(0, 0, p);
    t.initRegs[1] = A.rowPtrA;
    t.initRegs[2] = A.colIdxA;
    t.initRegs[3] = A.rowPtrB;
    t.initRegs[4] = A.colIdxB;
}

void
SpmmWorkload::buildDataParallel(BuildContext &ctx)
{
    Arrays A = installArrays(ctx);
    uint32_t nThreads = ctx.numCores() * ctx.smtThreads();
    Program *p = ctx.newProgram("spmm-dp");
    Asm a(p);
    emitSerialKernel(a, A, true, nThreads);
    a.finalize();
    for (CoreId c = 0; c < ctx.numCores(); c++) {
        for (ThreadId t = 0; t < ctx.smtThreads(); t++) {
            ThreadSpec &ts = ctx.spec.addThread(c, t, p);
            ts.initRegs[1] = A.rowPtrA;
            ts.initRegs[2] = A.colIdxA;
            ts.initRegs[3] = A.rowPtrB;
            ts.initRegs[4] = A.colIdxB;
        }
    }
}

// ------------------------------------------------------ pipeline stages

Program *
SpmmWorkload::genStream(BuildContext &ctx, const Arrays &A, bool isCols,
                        Addr *enqHandler)
{
    Program *p = ctx.newProgram(isCols ? "spmm-cols" : "spmm-rows");
    Asm a(p);
    // r1=i r2=k r3=p r4=end r5=rowPtr r6=colIdx r9/r10 scratch
    auto outer = a.label();
    auto stream = a.label();
    auto instDone = a.label();
    auto next = a.label("next");
    auto ehdl = a.label("ehdl");
    auto fin = a.label();

    a.li(R::r1, 0);
    a.li(R::r2, 0);
    a.bind(outer);
    if (isCols) {
        a.li(R::r9, stride_);
        a.mul(R::r9, R::r2, R::r9); // j = k * stride
        a.slli(R::r9, R::r9, 2);
    } else {
        a.slli(R::r9, R::r1, 2);
    }
    a.add(R::r9, R::r5, R::r9);
    a.lw(R::r3, R::r9, 0);
    a.lw(R::r4, R::r9, 4);
    a.bind(stream);
    a.bgeu(R::r3, R::r4, instDone);
    a.slli(R::r9, R::r3, 2);
    a.add(R::r9, R::r6, R::r9);
    a.lw(R::r9, R::r9, 0); // coordinate
    a.slli(R::r9, R::r9, 32);
    a.or_(R::r9, R::r9, R::r3); // pack (coord << 32) | position
    a.mov(QO, R::r9);           // enqueue (may raise the enq handler)
    a.addi(R::r3, R::r3, 1);
    a.jmp(stream);
    a.bind(instDone);
    a.enqc(QO, R::zero); // instance delimiter
    a.bind(next);
    a.addi(R::r2, R::r2, 1);
    a.blti(R::r2, static_cast<int64_t>(cols_.size()), outer);
    a.li(R::r2, 0);
    a.addi(R::r1, R::r1, 1);
    a.blti(R::r1, a_->n, outer);
    a.jmp(fin);
    // Enqueue control handler: the consumer skipped this instance
    // (Fig. 5). Terminate it with a CV and move to the next one.
    a.bind(ehdl);
    a.enqc(QO, R::zero);
    a.jmp(next);
    a.bind(fin);
    a.halt();
    a.finalize();
    *enqHandler = p->labels().at("ehdl");
    return p;
}

Program *
SpmmWorkload::genMerge(BuildContext &ctx, QueueId rowQ, QueueId colQ,
                       Addr *handler)
{
    (void)colQ;
    Program *p = ctx.newProgram("spmm-merge");
    Asm a(p);
    // In: QRI (rows), QCI (cols). Out: QPA (A positions + pair CVs),
    // QPB (B positions). r5=pairCount r6=totalPairs.
    auto merge = a.label("merge");
    auto compare = a.label();
    auto advA = a.label();
    auto match = a.label();
    auto hdl = a.label("hdl");
    auto rowEnded = a.label();
    auto pairEnd = a.label();
    auto fin = a.label();

    a.li(R::r5, 0); // pair counter
    // Hold the current head of each stream in registers; only the side
    // that advanced re-peeks (peeking a CV raises the handler).
    a.bind(merge);
    a.peek(R::r1, QRI);
    a.srli(R::r3, R::r1, 32);
    a.peek(R::r2, QCI);
    a.srli(R::r4, R::r2, 32);
    a.bind(compare);
    a.beq(R::r3, R::r4, match);
    a.bltu(R::r3, R::r4, advA);
    a.mov(R::zero, QCI); // consume the smaller col coordinate
    a.peek(R::r2, QCI);
    a.srli(R::r4, R::r2, 32);
    a.jmp(compare);
    a.bind(advA);
    a.mov(R::zero, QRI);
    a.peek(R::r1, QRI);
    a.srli(R::r3, R::r1, 32);
    a.jmp(compare);
    a.bind(match);
    a.andi(R::r1, R::r1, 0xFFFFFFFFll);
    a.mov(QPA, R::r1); // A value position
    a.andi(R::r2, R::r2, 0xFFFFFFFFll);
    a.mov(QPB, R::r2); // B value position
    a.mov(R::zero, QRI);
    a.mov(R::zero, QCI);
    a.jmp(merge);

    a.bind(hdl);
    // One side delimited its instance; discard the other side up to its
    // delimiter (possibly redirecting that producer, Fig. 5).
    a.beqi(R::cvqid, static_cast<int64_t>(rowQ), rowEnded);
    a.skiptc(R::r1, QRI); // col ended first: skip the rest of the row
    a.jmp(pairEnd);
    a.bind(rowEnded);
    a.skiptc(R::r1, QCI);
    a.bind(pairEnd);
    a.enqc(QPA, R::zero); // pair delimiter for the accumulate stage
    a.addi(R::r5, R::r5, 1);
    a.bltu(R::r5, R::r6, merge);
    a.li(R::r1, 1);
    a.enqc(QPA, R::r1); // DONE
    a.bind(fin);
    a.halt();
    a.finalize();
    *handler = p->labels().at("hdl");
    return p;
}

Program *
SpmmWorkload::genAccum(BuildContext &ctx, const Arrays &A, bool loadsVals,
                       Addr *handler)
{
    Program *p = ctx.newProgram("spmm-accum");
    Asm a(p);
    // In: QVA (values or positions), QVB. r1=C write ptr, r2=sum.
    auto loop = a.label("loop");
    auto hdl = a.label("hdl");
    auto fin = a.label("fin");

    a.bind(loop);
    a.mov(R::r3, QVA); // traps on pair CV / DONE
    a.mov(R::r4, QVB);
    if (loadsVals) {
        a.slli(R::r3, R::r3, 2);
        a.add(R::r3, R::r5, R::r3); // r5 = valA base
        a.lw(R::r3, R::r3, 0);
        a.slli(R::r4, R::r4, 2);
        a.add(R::r4, R::r6, R::r4); // r6 = valB base
        a.lw(R::r4, R::r4, 0);
    }
    a.mul(R::r3, R::r3, R::r4);
    a.add(R::r2, R::r2, R::r3);
    a.jmp(loop);
    a.bind(hdl);
    a.beqi(R::cvval, 1, fin);
    a.sd(R::r2, R::r1, 0);
    a.addi(R::r1, R::r1, 8);
    a.li(R::r2, 0);
    a.jr(R::cvret);
    a.bind(fin);
    a.halt();
    a.finalize();
    (void)A;
    *handler = p->labels().at("hdl");
    return p;
}

void
SpmmWorkload::buildPipeline(BuildContext &ctx, bool useRa, bool streaming)
{
    fatal_if(streaming && ctx.numCores() < 4,
             "streaming spmm needs 4 cores");
    Arrays A = installArrays(ctx);
    uint64_t totalPairs = static_cast<uint64_t>(a_->n) * cols_.size();

    auto addMap = [](ThreadSpec &t, Reg r, QueueId q, QueueDir d) {
        t.queueMaps.push_back({r.idx, q, d});
    };

    CoreId rowsCore = 0, colsCore = 0, mergeCore = 0, accCore = 0;
    ThreadId rowsTid = 0, colsTid = 1, mergeTid = 2, accTid = 3;
    if (streaming) {
        rowsCore = 0;
        colsCore = 1;
        mergeCore = 2;
        accCore = 3;
        rowsTid = colsTid = mergeTid = accTid = 0;
    }

    // Queue ids are core-local. Merge core hosts qR(0), qC(1), and the
    // position queues; the accumulate core hosts the value queues.
    QueueId qR = 0, qC = 1, qPA = 2, qPB = 3, qVA = 4, qVB = 5;

    Addr ehRows;
    Program *rows = genStream(ctx, A, false, &ehRows);
    ThreadSpec &tr = ctx.spec.addThread(rowsCore, rowsTid, rows);
    tr.enqHandler = static_cast<int64_t>(ehRows);
    tr.initRegs[5] = A.rowPtrA;
    tr.initRegs[6] = A.colIdxA;

    Addr ehCols;
    Program *cols = genStream(ctx, A, true, &ehCols);
    ThreadSpec &tc = ctx.spec.addThread(colsCore, colsTid, cols);
    tc.enqHandler = static_cast<int64_t>(ehCols);
    tc.initRegs[5] = A.rowPtrB;
    tc.initRegs[6] = A.colIdxB;

    if (streaming) {
        // Streams live on their own cores and connect into the merge
        // core's qR/qC.
        addMap(tr, QO, 0, QueueDir::Out);
        ctx.spec.connectors.push_back({rowsCore, 0, mergeCore, qR});
        addMap(tc, QO, 0, QueueDir::Out);
        ctx.spec.connectors.push_back({colsCore, 0, mergeCore, qC});
    } else {
        addMap(tr, QO, qR, QueueDir::Out);
        addMap(tc, QO, qC, QueueDir::Out);
    }

    Addr hM;
    Program *merge = genMerge(ctx, qR, qC, &hM);
    ThreadSpec &tm = ctx.spec.addThread(mergeCore, mergeTid, merge);
    tm.deqHandler = static_cast<int64_t>(hM);
    tm.initRegs[6] = totalPairs;
    addMap(tm, QRI, qR, QueueDir::In);
    addMap(tm, QCI, qC, QueueDir::In);
    addMap(tm, QPA, qPA, QueueDir::Out);
    addMap(tm, QPB, qPB, QueueDir::Out);

    Addr hA;
    Program *acc = genAccum(ctx, A, !useRa, &hA);
    ThreadSpec &ta = ctx.spec.addThread(accCore, accTid, acc);
    ta.deqHandler = static_cast<int64_t>(hA);
    ta.initRegs[1] = A.c;
    if (!useRa) {
        ta.initRegs[5] = A.valA;
        ta.initRegs[6] = A.valB;
    }

    if (useRa) {
        // Position -> value fetch on the merge core.
        ctx.spec.ras.push_back(
            {mergeCore, qPA, qVA, A.valA, 4, RaMode::Indirect});
        ctx.spec.ras.push_back(
            {mergeCore, qPB, qVB, A.valB, 4, RaMode::Indirect});
        if (streaming) {
            addMap(ta, QVA, 0, QueueDir::In);
            addMap(ta, QVB, 1, QueueDir::In);
            ctx.spec.connectors.push_back({mergeCore, qVA, accCore, 0});
            ctx.spec.connectors.push_back({mergeCore, qVB, accCore, 1});
        } else {
            addMap(ta, QVA, qVA, QueueDir::In);
            addMap(ta, QVB, qVB, QueueDir::In);
        }
    } else {
        // Accumulate dequeues positions directly and loads the values.
        addMap(ta, QVA, qPA, QueueDir::In);
        addMap(ta, QVB, qPB, QueueDir::In);
    }
}

} // namespace pipette
