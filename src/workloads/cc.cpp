#include "workloads/cc.h"

namespace pipette {

namespace {
constexpr Reg QO{11};
constexpr Reg QI{12};
} // namespace

CcWorkload::CcWorkload(const Graph *g) : g_(g)
{
    refComp_ = ccReference(*g);
}

CcWorkload::Arrays
CcWorkload::installArrays(BuildContext &ctx)
{
    Arrays a;
    a.off = installU32(ctx.mem(), ctx.alloc, g_->offsets);
    a.ngh = installU32(ctx.mem(), ctx.alloc, g_->neighbors);
    std::vector<uint32_t> comp(g_->numVertices);
    std::vector<uint32_t> fringe(g_->numVertices);
    for (uint32_t v = 0; v < g_->numVertices; v++)
        comp[v] = fringe[v] = v;
    a.comp = installU32(ctx.mem(), ctx.alloc, comp);
    compAddr_ = a.comp;
    // Per-vertex epoch tags: a vertex is appended to the next fringe
    // at most once per round (append iff epoch[v] != round). Epochs
    // start at 0; rounds count from 1.
    std::vector<uint32_t> epochs(g_->numVertices, 0);
    a.flag = installU32(ctx.mem(), ctx.alloc, epochs);
    a.fA = installU32(ctx.mem(), ctx.alloc, fringe);
    a.fB = ctx.alloc.alloc32(g_->numVertices + 1);
    a.globals = ctx.alloc.alloc(128);
    ctx.mem().fill(a.globals, 128, 0);
    return a;
}

bool
CcWorkload::verify(System &sys) const
{
    auto got = sys.memory().readArray32(compAddr_, g_->numVertices);
    for (uint32_t v = 0; v < g_->numVertices; v++) {
        if (got[v] != refComp_[v]) {
            warn("cc mismatch at v=", v, ": got ", got[v], " want ",
                 refComp_[v]);
            return false;
        }
    }
    return true;
}

void
CcWorkload::build(BuildContext &ctx, Variant v)
{
    switch (v) {
      case Variant::Serial:
        buildSerial(ctx);
        break;
      case Variant::DataParallel:
        buildDataParallel(ctx);
        break;
      case Variant::Pipette:
        buildPipeline(ctx, true, false);
        break;
      case Variant::PipetteNoRa:
        buildPipeline(ctx, false, false);
        break;
      case Variant::Streaming:
        buildPipeline(ctx, true, true);
        break;
      default:
        fatal("cc: unsupported variant");
    }
}

// --------------------------------------------------------------- serial

void
CcWorkload::buildSerial(BuildContext &ctx)
{
    Arrays A = installArrays(ctx);
    Program *p = ctx.newProgram("cc-serial");
    Asm a(p);
    // r1=off r2=ngh r3=comp r4=curF(ptr) r5=nextF r6=curF end
    // r7=nextIdx r8=epoch r9=round tag r10=v r11..r15 scratch
    auto vloop = a.label();
    auto eloop = a.label();
    auto enext = a.label();
    auto edone = a.label();
    auto levelDone = a.label();
    auto oddSwap = a.label();
    auto contLevel = a.label();
    auto done = a.label();

    a.li(R::r7, 0);
    a.bind(vloop);
    a.bgeu(R::r4, R::r6, levelDone);
    a.lw(R::r10, R::r4, 0); // v
    a.addi(R::r4, R::r4, 4);
    a.slli(Reg{11}, R::r10, 2);
    a.add(Reg{12}, R::r3, Reg{11});
    a.lw(Reg{14}, Reg{12}, 0); // label = comp[v]
    a.add(Reg{11}, R::r1, Reg{11});
    a.lw(Reg{12}, Reg{11}, 4); // end
    a.lw(Reg{11}, Reg{11}, 0); // start
    a.bind(eloop);
    a.bgeu(Reg{11}, Reg{12}, edone);
    a.slli(R::r10, Reg{11}, 2);
    a.add(R::r10, R::r2, R::r10);
    a.lw(R::r10, R::r10, 0); // ngh
    a.slli(Reg{13}, R::r10, 2);
    a.add(Reg{13}, R::r3, Reg{13});
    a.lw(Reg{15}, Reg{13}, 0); // comp[ngh]
    a.bgeu(Reg{14}, Reg{15}, enext);
    a.sw(Reg{14}, Reg{13}, 0); // comp[ngh] = label
    // Epoch dedup: at most one fringe occurrence per round.
    a.slli(Reg{13}, R::r10, 2);
    a.add(Reg{13}, R::r8, Reg{13});
    a.lw(Reg{15}, Reg{13}, 0);
    a.beq(Reg{15}, R::r9, enext); // already appended this round
    a.sw(R::r9, Reg{13}, 0);
    a.slli(Reg{13}, R::r7, 2);
    a.add(Reg{13}, R::r5, Reg{13});
    a.sw(R::r10, Reg{13}, 0);
    a.addi(R::r7, R::r7, 1);
    a.bind(enext);
    a.addi(Reg{11}, Reg{11}, 1);
    a.jmp(eloop);
    a.bind(edone);
    a.jmp(vloop);
    a.bind(levelDone);
    a.beqi(R::r7, 0, done);
    // Next round: swap fringes by round parity (bases as immediates).
    a.andi(Reg{13}, R::r9, 1);
    a.bnei(Reg{13}, 0, oddSwap);
    a.li(R::r4, A.fA); // even round just ended: read A next... (below)
    a.li(R::r5, A.fB);
    a.jmp(contLevel);
    a.bind(oddSwap);
    a.li(R::r4, A.fB); // odd round wrote into fB: read it next
    a.li(R::r5, A.fA);
    a.bind(contLevel);
    a.slli(R::r6, R::r7, 2);
    a.add(R::r6, R::r4, R::r6);
    a.li(R::r7, 0);
    a.addi(R::r9, R::r9, 1);
    a.jmp(vloop);
    a.bind(done);
    a.halt();
    a.finalize();

    ThreadSpec &t = ctx.spec.addThread(0, 0, p);
    t.initRegs[1] = A.off;
    t.initRegs[2] = A.ngh;
    t.initRegs[3] = A.comp;
    t.initRegs[4] = A.fA;
    t.initRegs[5] = A.fB;
    t.initRegs[6] = A.fA + 4ull * g_->numVertices; // fringe end
    t.initRegs[8] = A.flag; // epoch array
    t.initRegs[9] = 1;      // round tag
}

// -------------------------------------------------------- data-parallel

void
CcWorkload::buildDataParallel(BuildContext &ctx)
{
    Arrays A = installArrays(ctx);
    // Globals: 0 cursor, 8 curSize, 16 nextIdx, 24 phase, 32 count,
    // 48 curF, 56 nextF.
    ctx.mem().write(A.globals + 8, 8, g_->numVertices);
    ctx.mem().write(A.globals + 48, 8, A.fA);
    ctx.mem().write(A.globals + 56, 8, A.fB);
    ctx.mem().write(A.globals + 40, 8, 1); // round tag

    uint32_t nThreads = ctx.numCores() * ctx.smtThreads();
    const int64_t CHUNK = 8;

    Program *p = ctx.newProgram("cc-dp");
    Asm a(p);
    // r1=off r2=ngh r3=comp r4=G r5=tid r6=curF r7=curSize r8=flag
    // r9=i r10=chunkEnd r11..r15 scratch
    auto level = a.label();
    auto chunk = a.label();
    auto noclamp = a.label();
    auto vloop = a.label();
    auto eloop = a.label();
    auto enext = a.label();
    auto edone = a.label();
    auto levelEnd = a.label();
    auto notT0 = a.label();
    auto done = a.label();

    a.bind(level);
    a.ld(R::r6, R::r4, 48);
    a.ld(R::r7, R::r4, 8);
    a.bind(chunk);
    a.li(Reg{11}, CHUNK);
    a.amoadd(R::r9, R::r4, Reg{11});
    a.bgeu(R::r9, R::r7, levelEnd);
    a.addi(R::r10, R::r9, CHUNK);
    a.bltu(R::r10, R::r7, noclamp);
    a.mov(R::r10, R::r7);
    a.bind(noclamp);
    a.bind(vloop);
    a.bgeu(R::r9, R::r10, chunk);
    a.slli(Reg{11}, R::r9, 2);
    a.add(Reg{11}, R::r6, Reg{11});
    a.lw(Reg{11}, Reg{11}, 0); // v
    a.slli(Reg{12}, Reg{11}, 2);
    a.add(Reg{13}, R::r3, Reg{12});
    a.lw(Reg{14}, Reg{13}, 0); // label
    a.add(Reg{12}, R::r1, Reg{12});
    a.lw(Reg{13}, Reg{12}, 4); // end
    a.lw(Reg{12}, Reg{12}, 0); // start
    a.bind(eloop);
    a.bgeu(Reg{12}, Reg{13}, edone);
    a.slli(Reg{15}, Reg{12}, 2);
    a.add(Reg{15}, R::r2, Reg{15});
    a.lw(Reg{15}, Reg{15}, 0); // ngh
    a.slli(Reg{11}, Reg{15}, 2);
    a.add(Reg{11}, R::r3, Reg{11});
    a.amominuw(Reg{11}, Reg{11}, Reg{14}); // old = min-claim
    a.bgeu(Reg{14}, Reg{11}, enext);       // no improvement
    // Improved: epoch dedup (at most one occurrence per round). The
    // atomic swap both claims the slot exactly once and orders the
    // comp[] improvement before it (x86 LOCK semantics).
    a.slli(Reg{11}, Reg{15}, 2);
    a.add(Reg{11}, R::r8, Reg{11});
    {
        auto skipApp = a.label();
        a.ld(R::r10, R::r4, 40); // round tag (r10 restored below)
        a.amoswapw(Reg{11}, Reg{11}, R::r10); // old epoch
        a.beq(Reg{11}, R::r10, skipApp); // already appended this round
        a.addi(Reg{11}, R::r4, 16);
        a.li(R::r10, 1);
        a.amoadd(R::r10, Reg{11}, R::r10); // next index
        a.ld(Reg{11}, R::r4, 56);
        a.slli(R::r10, R::r10, 2);
        a.add(Reg{11}, Reg{11}, R::r10);
        a.sw(Reg{15}, Reg{11}, 0);
        a.bind(skipApp);
        // Restore the chunk end (r10 was clobbered): cursor claims are
        // CHUNK-aligned, so chunkEnd = (i & ~(CHUNK-1)) + CHUNK.
        a.andi(R::r10, R::r9, ~(CHUNK - 1));
        a.addi(R::r10, R::r10, CHUNK);
        auto noclamp2 = a.label();
        a.bltu(R::r10, R::r7, noclamp2);
        a.mov(R::r10, R::r7);
        a.bind(noclamp2);
    }
    a.bind(enext);
    a.addi(Reg{12}, Reg{12}, 1);
    a.jmp(eloop);
    a.bind(edone);
    a.addi(R::r9, R::r9, 1);
    a.jmp(vloop);

    a.bind(levelEnd);
    emitBarrier(a, R::r4, 32, 24, nThreads, Reg{11}, Reg{12}, Reg{13});
    a.bnei(R::r5, 0, notT0);
    a.ld(Reg{11}, R::r4, 48);
    a.ld(Reg{12}, R::r4, 56);
    a.sd(Reg{12}, R::r4, 48);
    a.sd(Reg{11}, R::r4, 56);
    a.ld(Reg{11}, R::r4, 16);
    a.sd(Reg{11}, R::r4, 8);
    a.sd(R::zero, R::r4, 16);
    a.sd(R::zero, R::r4, 0);
    a.ld(Reg{11}, R::r4, 40); // round tag++
    a.addi(Reg{11}, Reg{11}, 1);
    a.sd(Reg{11}, R::r4, 40);
    a.bind(notT0);
    emitBarrier(a, R::r4, 32, 24, nThreads, Reg{11}, Reg{12}, Reg{13});
    a.ld(Reg{11}, R::r4, 8);
    a.beqi(Reg{11}, 0, done);
    a.jmp(level);
    a.bind(done);
    a.halt();
    a.finalize();

    for (CoreId c = 0; c < ctx.numCores(); c++) {
        for (ThreadId t = 0; t < ctx.smtThreads(); t++) {
            ThreadSpec &ts = ctx.spec.addThread(c, t, p);
            ts.initRegs[1] = A.off;
            ts.initRegs[2] = A.ngh;
            ts.initRegs[3] = A.comp;
            ts.initRegs[4] = A.globals;
            ts.initRegs[5] = c * ctx.smtThreads() + t;
            ts.initRegs[8] = A.flag;
        }
    }
}

// ------------------------------------------------------ pipeline stages

Program *
CcWorkload::genFringe(BuildContext &ctx, bool emitOffsets)
{
    Program *p = ctx.newProgram("cc-fringe");
    Asm a(p);
    // r1=curF r2=nextF r3=curSize r4=i r5=v r6=comp r7=flag
    // r8=off (if emitOffsets) r9/r10 scratch
    auto level = a.label();
    auto vloop = a.label();
    auto next = a.label();

    a.bind(level);
    a.li(R::r4, 0);
    a.bind(vloop);
    a.bgeu(R::r4, R::r3, next);
    a.slli(R::r5, R::r4, 2);
    a.add(R::r5, R::r1, R::r5);
    a.lw(R::r5, R::r5, 0); // v
    a.slli(R::r9, R::r5, 2);
    a.add(R::r10, R::r6, R::r9);
    a.lw(R::r10, R::r10, 0); // label
    a.enqc(QO, R::r10);      // per-vertex label header
    if (!emitOffsets) {
        a.mov(QO, R::r5);
    } else {
        a.add(R::r9, R::r8, R::r9);
        a.lw(R::r10, R::r9, 4);
        a.lw(R::r9, R::r9, 0);
        a.mov(QO, R::r9);
        a.mov(QO, R::r10);
    }
    a.addi(R::r4, R::r4, 1);
    a.jmp(vloop);
    a.bind(next);
    a.li(R::r5, static_cast<uint64_t>(LEVEL_END));
    a.enqc(QO, R::r5);
    a.mov(R::r3, QI);
    a.mov(R::r5, R::r1);
    a.mov(R::r1, R::r2);
    a.mov(R::r2, R::r5);
    a.bnei(R::r3, 0, level);
    a.li(R::r5, static_cast<uint64_t>(DONE));
    a.enqc(QO, R::r5);
    a.halt();
    a.finalize();
    return p;
}

Program *
CcWorkload::genPump(BuildContext &ctx, Addr *handler)
{
    Program *p = ctx.newProgram("cc-pump");
    Asm a(p);
    auto loop = a.label("loop");
    auto hdl = a.label("hdl");
    auto fin = a.label("fin");
    a.bind(loop);
    a.mov(QO, QI);
    a.jmp(loop);
    a.bind(hdl);
    a.enqc(QO, R::cvval);
    a.li(R::r1, static_cast<uint64_t>(DONE));
    a.beq(R::cvval, R::r1, fin);
    a.jr(R::cvret);
    a.bind(fin);
    a.halt();
    a.finalize();
    *handler = p->labels().at("hdl");
    return p;
}

Program *
CcWorkload::genEnumerate(BuildContext &ctx, Addr *handler)
{
    Program *p = ctx.newProgram("cc-enumerate");
    Asm a(p);
    auto loop = a.label("loop");
    auto eloop = a.label();
    auto hdl = a.label("hdl");
    auto fin = a.label("fin");
    a.bind(loop);
    a.mov(R::r2, QI);
    a.mov(R::r3, QI);
    a.bind(eloop);
    a.bgeu(R::r2, R::r3, loop);
    a.slli(R::r4, R::r2, 2);
    a.add(R::r4, R::r1, R::r4);
    a.lw(QO, R::r4, 0);
    a.addi(R::r2, R::r2, 1);
    a.jmp(eloop);
    a.bind(hdl);
    a.enqc(QO, R::cvval);
    a.li(R::r5, static_cast<uint64_t>(DONE));
    a.beq(R::cvval, R::r5, fin);
    a.jr(R::cvret);
    a.bind(fin);
    a.halt();
    a.finalize();
    *handler = p->labels().at("hdl");
    return p;
}

Program *
CcWorkload::genFetchComp(BuildContext &ctx, Addr *handler)
{
    Program *p = ctx.newProgram("cc-fetchcomp");
    Asm a(p);
    auto loop = a.label("loop");
    auto hdl = a.label("hdl");
    auto fin = a.label("fin");
    a.bind(loop);
    a.mov(R::r2, QI);
    a.slli(R::r3, R::r2, 2);
    a.add(R::r3, R::r1, R::r3);
    a.mov(QO, R::r2);
    a.lw(QO, R::r3, 0);
    a.jmp(loop);
    a.bind(hdl);
    a.enqc(QO, R::cvval);
    a.li(R::r5, static_cast<uint64_t>(DONE));
    a.beq(R::cvval, R::r5, fin);
    a.jr(R::cvret);
    a.bind(fin);
    a.halt();
    a.finalize();
    *handler = p->labels().at("hdl");
    return p;
}

Program *
CcWorkload::genUpdate(BuildContext &ctx, Addr *handler)
{
    Program *p = ctx.newProgram("cc-update");
    Asm a(p);
    // r1=comp r2=nextF r3=nextIdx r4=epoch r6=other fringe
    // r9=round tag r10=curLabel
    auto loop = a.label("loop");
    auto hdl = a.label("hdl");
    auto ctl = a.label();
    auto fin = a.label("fin");
    a.li(R::r3, 0);
    a.bind(loop);
    a.mov(R::r5, QI); // ngh
    a.mov(R::r7, QI); // fetched comp[ngh] (monotone: >= current)
    a.bgeu(R::r10, R::r7, loop);
    a.slli(R::r8, R::r5, 2);
    a.add(R::r8, R::r1, R::r8);
    a.lw(R::r7, R::r8, 0); // re-check against the current value
    a.bgeu(R::r10, R::r7, loop);
    a.sw(R::r10, R::r8, 0);
    // Epoch dedup (single writer: plain loads/stores suffice).
    a.slli(R::r8, R::r5, 2);
    a.add(R::r8, R::r4, R::r8);
    a.lw(R::r7, R::r8, 0);
    a.beq(R::r7, R::r9, loop); // already appended this round
    a.sw(R::r9, R::r8, 0);
    a.slli(R::r8, R::r3, 2);
    a.add(R::r8, R::r2, R::r8);
    a.sw(R::r5, R::r8, 0);
    a.addi(R::r3, R::r3, 1);
    a.jmp(loop);
    a.bind(hdl);
    a.srli(R::r7, R::cvval, 63);
    a.bnei(R::r7, 0, ctl);
    a.mov(R::r10, R::cvval); // label header
    a.jr(R::cvret);
    a.bind(ctl);
    a.li(R::r7, static_cast<uint64_t>(DONE));
    a.beq(R::cvval, R::r7, fin);
    a.mov(QO, R::r3); // next-level size
    a.mov(R::r7, R::r2);
    a.mov(R::r2, R::r6);
    a.mov(R::r6, R::r7);
    a.li(R::r3, 0);
    a.addi(R::r9, R::r9, 1); // round tag++
    a.jr(R::cvret);
    a.bind(fin);
    a.halt();
    a.finalize();
    *handler = p->labels().at("hdl");
    return p;
}

void
CcWorkload::buildPipeline(BuildContext &ctx, bool useRa, bool streaming)
{
    fatal_if(streaming && ctx.numCores() < 4, "streaming CC needs 4 cores");
    Arrays A = installArrays(ctx);

    auto addMap = [](ThreadSpec &t, Reg r, QueueId q, QueueDir d) {
        t.queueMaps.push_back({r.idx, q, d});
    };
    auto initFringe = [&](ThreadSpec &t, bool emitOffsets) {
        t.initRegs[1] = A.fA;
        t.initRegs[2] = A.fB;
        t.initRegs[3] = g_->numVertices;
        t.initRegs[6] = A.comp;
        t.initRegs[7] = A.flag;
        if (emitOffsets)
            t.initRegs[8] = A.off;
    };
    auto initUpdate = [&](ThreadSpec &t) {
        t.initRegs[1] = A.comp;
        t.initRegs[2] = A.fB;
        t.initRegs[6] = A.fA;
        t.initRegs[4] = A.flag; // epoch array
        t.initRegs[9] = 1;      // round tag
    };

    if (streaming) {
        Program *fr = genFringe(ctx, false);
        ThreadSpec &t0 = ctx.spec.addThread(0, 0, fr);
        initFringe(t0, false);
        addMap(t0, QO, 0, QueueDir::Out);
        addMap(t0, QI, 2, QueueDir::In);
        ctx.spec.ras.push_back({0, 0, 1, A.off, 4, RaMode::IndirectPair});

        Addr h1;
        Program *pump1 = genPump(ctx, &h1);
        ThreadSpec &t1 = ctx.spec.addThread(1, 0, pump1);
        t1.deqHandler = static_cast<int64_t>(h1);
        addMap(t1, QI, 0, QueueDir::In);
        addMap(t1, QO, 1, QueueDir::Out);
        ctx.spec.ras.push_back({1, 1, 2, A.ngh, 4, RaMode::Scan});
        ctx.spec.connectors.push_back({0, 1, 1, 0});

        Addr h2;
        Program *pump2 = genPump(ctx, &h2);
        ThreadSpec &t2 = ctx.spec.addThread(2, 0, pump2);
        t2.deqHandler = static_cast<int64_t>(h2);
        addMap(t2, QI, 0, QueueDir::In);
        addMap(t2, QO, 1, QueueDir::Out);
        ctx.spec.ras.push_back({2, 1, 2, A.comp, 4, RaMode::IndirectKV});
        ctx.spec.connectors.push_back({1, 2, 2, 0});

        Addr hU;
        Program *upd = genUpdate(ctx, &hU);
        ThreadSpec &t3 = ctx.spec.addThread(3, 0, upd);
        t3.deqHandler = static_cast<int64_t>(hU);
        initUpdate(t3);
        addMap(t3, QI, 0, QueueDir::In);
        addMap(t3, QO, 1, QueueDir::Out);
        ctx.spec.connectors.push_back({2, 2, 3, 0});
        ctx.spec.connectors.push_back({3, 1, 0, 2});
        ctx.spec.queueCaps.push_back({0, 2, 4});
        ctx.spec.queueCaps.push_back({3, 1, 4});
        return;
    }

    if (useRa) {
        // T1 fringe -> RA pair -> RA scan -> RA kv(comp) -> T2 update.
        Program *fr = genFringe(ctx, false);
        ThreadSpec &t0 = ctx.spec.addThread(0, 0, fr);
        initFringe(t0, false);
        addMap(t0, QO, 0, QueueDir::Out);
        addMap(t0, QI, 4, QueueDir::In);
        ctx.spec.ras.push_back({0, 0, 1, A.off, 4, RaMode::IndirectPair});
        ctx.spec.ras.push_back({0, 1, 2, A.ngh, 4, RaMode::Scan});
        ctx.spec.ras.push_back({0, 2, 3, A.comp, 4, RaMode::IndirectKV});
        Addr hU;
        Program *upd = genUpdate(ctx, &hU);
        ThreadSpec &t1 = ctx.spec.addThread(0, 1, upd);
        t1.deqHandler = static_cast<int64_t>(hU);
        initUpdate(t1);
        addMap(t1, QI, 3, QueueDir::In);
        addMap(t1, QO, 4, QueueDir::Out);
        ctx.spec.queueCaps.push_back({0, 0, 16});
        ctx.spec.queueCaps.push_back({0, 4, 4});
        return;
    }

    // No-RA 4-thread pipeline.
    Program *fr = genFringe(ctx, true);
    ThreadSpec &t0 = ctx.spec.addThread(0, 0, fr);
    initFringe(t0, true);
    addMap(t0, QO, 0, QueueDir::Out);
    addMap(t0, QI, 3, QueueDir::In);
    Addr hE;
    Program *en = genEnumerate(ctx, &hE);
    ThreadSpec &t1 = ctx.spec.addThread(0, 1, en);
    t1.deqHandler = static_cast<int64_t>(hE);
    t1.initRegs[1] = A.ngh;
    addMap(t1, QI, 0, QueueDir::In);
    addMap(t1, QO, 1, QueueDir::Out);
    Addr hF;
    Program *fc = genFetchComp(ctx, &hF);
    ThreadSpec &t2 = ctx.spec.addThread(0, 2, fc);
    t2.deqHandler = static_cast<int64_t>(hF);
    t2.initRegs[1] = A.comp;
    addMap(t2, QI, 1, QueueDir::In);
    addMap(t2, QO, 2, QueueDir::Out);
    Addr hU;
    Program *upd = genUpdate(ctx, &hU);
    ThreadSpec &t3 = ctx.spec.addThread(0, 3, upd);
    t3.deqHandler = static_cast<int64_t>(hU);
    initUpdate(t3);
    addMap(t3, QI, 2, QueueDir::In);
    addMap(t3, QO, 3, QueueDir::Out);
    ctx.spec.queueCaps.push_back({0, 3, 4});
}

} // namespace pipette
