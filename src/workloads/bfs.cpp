#include "workloads/bfs.h"

namespace pipette {

namespace {
/** Queue-mapped register conventions for the pipeline stages. */
constexpr Reg QO{11}; ///< output queue
constexpr Reg QI{12}; ///< input queue
} // namespace

BfsWorkload::BfsWorkload(const Graph *g, Options opt) : g_(g), opt_(opt)
{
    fatal_if(opt.depth < 2 || opt.depth > 4, "BFS depth must be 2..4");
    refDist_ = bfsReference(*g, opt.src);
}

BfsWorkload::Arrays
BfsWorkload::installArrays(BuildContext &ctx, uint32_t numFringes)
{
    Arrays a;
    a.off = installU32(ctx.mem(), ctx.alloc, g_->offsets);
    a.ngh = installU32(ctx.mem(), ctx.alloc, g_->neighbors);
    std::vector<uint32_t> dist(g_->numVertices, 0xFFFFFFFFu);
    dist[opt_.src] = 0;
    a.dist = installU32(ctx.mem(), ctx.alloc, dist);
    distAddr_ = a.dist;
    a.fA = ctx.alloc.alloc32(g_->numVertices + 1);
    ctx.mem().write(a.fA, 4, opt_.src); // initial fringe = {src}
    a.fB = ctx.alloc.alloc32(g_->numVertices + 1);
    (void)numFringes;
    a.globals = ctx.alloc.alloc(128);
    ctx.mem().fill(a.globals, 128, 0);
    return a;
}

bool
BfsWorkload::verify(System &sys) const
{
    auto got = sys.memory().readArray32(distAddr_, g_->numVertices);
    for (uint32_t v = 0; v < g_->numVertices; v++) {
        if (got[v] != refDist_[v]) {
            warn("bfs mismatch at v=", v, ": got ", got[v], " want ",
                 refDist_[v]);
            return false;
        }
    }
    return true;
}

void
BfsWorkload::build(BuildContext &ctx, Variant v)
{
    switch (v) {
      case Variant::Serial:
        buildSerial(ctx);
        break;
      case Variant::DataParallel:
        buildDataParallel(ctx);
        break;
      case Variant::Pipette:
        buildPipeline(ctx, true, false);
        break;
      case Variant::PipetteNoRa:
        buildPipeline(ctx, false, false);
        break;
      case Variant::Streaming:
        buildPipeline(ctx, true, true);
        break;
      case Variant::MulticorePipette:
        buildMulticore(ctx);
        break;
    }
}

// --------------------------------------------------------------- serial

void
BfsWorkload::buildSerial(BuildContext &ctx)
{
    Arrays A = installArrays(ctx);
    Program *p = ctx.newProgram("bfs-serial");
    Asm a(p);
    // r1=off r2=ngh r3=dist r4=curF r5=nextF r6=curSize r7=nextIdx
    // r8=cur_dist r9=i r10..r15 scratch
    auto level = a.label("level");
    auto vloop = a.label("vloop");
    auto eloop = a.label("eloop");
    auto edone = a.label("edone");
    auto skip = a.label("skip");
    auto levelDone = a.label("level_done");
    auto done = a.label("done");

    a.li(R::r7, 0);
    a.bind(level);
    a.li(R::r9, 0);
    a.bind(vloop);
    a.bgeu(R::r9, R::r6, levelDone);
    a.slli(R::r10, R::r9, 2);
    a.add(R::r10, R::r4, R::r10);
    a.lw(R::r10, R::r10, 0); // v
    a.slli(R::r11, R::r10, 2);
    a.add(R::r11, R::r1, R::r11);
    a.lw(R::r12, R::r11, 4); // end
    a.lw(R::r11, R::r11, 0); // start
    a.bind(eloop);
    a.bgeu(R::r11, R::r12, edone);
    a.slli(R::r10, R::r11, 2);
    a.add(R::r10, R::r2, R::r10);
    a.lw(R::r10, R::r10, 0); // ngh
    a.slli(Reg{13}, R::r10, 2);
    a.add(Reg{13}, R::r3, Reg{13});
    a.lw(Reg{14}, Reg{13}, 0); // dist[ngh]
    a.bnei(Reg{14}, static_cast<int64_t>(UNSET32), skip);
    a.sw(R::r8, Reg{13}, 0);
    a.slli(Reg{15}, R::r7, 2);
    a.add(Reg{15}, R::r5, Reg{15});
    a.sw(R::r10, Reg{15}, 0);
    a.addi(R::r7, R::r7, 1);
    a.bind(skip);
    a.addi(R::r11, R::r11, 1);
    a.jmp(eloop);
    a.bind(edone);
    a.addi(R::r9, R::r9, 1);
    a.jmp(vloop);
    a.bind(levelDone);
    a.beqi(R::r7, 0, done);
    a.mov(R::r10, R::r4);
    a.mov(R::r4, R::r5);
    a.mov(R::r5, R::r10);
    a.mov(R::r6, R::r7);
    a.li(R::r7, 0);
    a.addi(R::r8, R::r8, 1);
    a.jmp(level);
    a.bind(done);
    a.halt();
    a.finalize();

    ThreadSpec &t = ctx.spec.addThread(0, 0, p);
    t.initRegs[1] = A.off;
    t.initRegs[2] = A.ngh;
    t.initRegs[3] = A.dist;
    t.initRegs[4] = A.fA;
    t.initRegs[5] = A.fB;
    t.initRegs[6] = 1; // curSize
    t.initRegs[8] = 1; // cur_dist
}

// -------------------------------------------------------- data-parallel

void
BfsWorkload::buildDataParallel(BuildContext &ctx)
{
    Arrays A = installArrays(ctx);
    // Globals block (8-byte slots):
    //   0: fringe cursor     8: curSize      16: nextIdx
    //  24: barrier phase    32: barrier count
    //  40: cur_dist         48: curF ptr     56: nextF ptr
    ctx.mem().write(A.globals + 8, 8, 1);      // curSize = 1
    ctx.mem().write(A.globals + 40, 8, 1);     // cur_dist = 1
    ctx.mem().write(A.globals + 48, 8, A.fA);
    ctx.mem().write(A.globals + 56, 8, A.fB);

    uint32_t nThreads = ctx.numCores() * ctx.smtThreads();
    const int64_t CHUNK = 8;

    Program *p = ctx.newProgram("bfs-dp");
    Asm a(p);
    // r1=off r2=ngh r3=dist r4=G r5=tid r6=curF r7=curSize r8=cur_dist
    // r9=i r10=chunkEnd r11..r15 scratch
    auto level = a.label("level");
    auto chunk = a.label("chunk");
    auto noclamp = a.label("noclamp");
    auto vloop = a.label("vloop");
    auto eloop = a.label("eloop");
    auto enext = a.label("enext");
    auto edone = a.label("edone");
    auto levelEnd = a.label("level_end");
    auto notZero = a.label("not_zero");
    auto done = a.label("done");

    a.bind(level);
    a.ld(R::r8, R::r4, 40); // cur_dist
    a.ld(R::r6, R::r4, 48); // curF
    a.ld(R::r7, R::r4, 8);  // curSize
    a.bind(chunk);
    a.li(Reg{11}, CHUNK);
    a.amoadd(R::r9, R::r4, Reg{11}); // claim [r9, r9+CHUNK)
    a.bgeu(R::r9, R::r7, levelEnd);
    a.addi(R::r10, R::r9, CHUNK);
    a.bltu(R::r10, R::r7, noclamp);
    a.mov(R::r10, R::r7);
    a.bind(noclamp);
    a.bind(vloop);
    a.bgeu(R::r9, R::r10, chunk);
    a.slli(Reg{11}, R::r9, 2);
    a.add(Reg{11}, R::r6, Reg{11});
    a.lw(Reg{11}, Reg{11}, 0); // v
    a.slli(Reg{12}, Reg{11}, 2);
    a.add(Reg{12}, R::r1, Reg{12});
    a.lw(Reg{13}, Reg{12}, 4); // end
    a.lw(Reg{12}, Reg{12}, 0); // start
    a.bind(eloop);
    a.bgeu(Reg{12}, Reg{13}, edone);
    a.slli(Reg{14}, Reg{12}, 2);
    a.add(Reg{14}, R::r2, Reg{14});
    a.lw(Reg{14}, Reg{14}, 0); // ngh
    a.slli(Reg{15}, Reg{14}, 2);
    a.add(Reg{15}, R::r3, Reg{15}); // &dist[ngh]
    a.lw(Reg{11}, Reg{15}, 0);      // cheap pre-check
    a.bnei(Reg{11}, static_cast<int64_t>(UNSET32), enext);
    a.li(Reg{11}, static_cast<uint64_t>(UNSET32));
    a.amocasw(Reg{11}, Reg{15}, R::r8); // claim dist[ngh] (32-bit)
    a.bnei(Reg{11}, static_cast<int64_t>(UNSET32), enext);
    // Won the vertex: append to the shared next fringe.
    a.addi(Reg{15}, R::r4, 16);
    a.li(Reg{11}, 1);
    a.amoadd(Reg{11}, Reg{15}, Reg{11}); // next index
    a.ld(Reg{15}, R::r4, 56);            // nextF
    a.slli(Reg{11}, Reg{11}, 2);
    a.add(Reg{15}, Reg{15}, Reg{11});
    a.sw(Reg{14}, Reg{15}, 0);
    a.bind(enext);
    a.addi(Reg{12}, Reg{12}, 1);
    a.jmp(eloop);
    a.bind(edone);
    a.addi(R::r9, R::r9, 1);
    a.jmp(vloop);

    a.bind(levelEnd);
    emitBarrier(a, R::r4, 32, 24, nThreads, Reg{11}, Reg{12}, Reg{13});
    // Thread 0 swaps fringes and resets counters.
    auto notT0 = a.label("not_t0");
    a.bnei(R::r5, 0, notT0);
    a.ld(Reg{11}, R::r4, 48);
    a.ld(Reg{12}, R::r4, 56);
    a.sd(Reg{12}, R::r4, 48);
    a.sd(Reg{11}, R::r4, 56);
    a.ld(Reg{11}, R::r4, 16); // nextIdx
    a.sd(Reg{11}, R::r4, 8);  // curSize = nextIdx
    a.sd(R::zero, R::r4, 16);
    a.sd(R::zero, R::r4, 0); // cursor = 0
    a.ld(Reg{11}, R::r4, 40);
    a.addi(Reg{11}, Reg{11}, 1);
    a.sd(Reg{11}, R::r4, 40);
    a.bind(notT0);
    emitBarrier(a, R::r4, 32, 24, nThreads, Reg{11}, Reg{12}, Reg{13});
    a.ld(Reg{11}, R::r4, 8);
    a.bnei(Reg{11}, 0, notZero);
    a.jmp(done);
    a.bind(notZero);
    a.jmp(level);
    a.bind(done);
    a.halt();
    a.finalize();

    for (CoreId c = 0; c < ctx.numCores(); c++) {
        for (ThreadId t = 0; t < ctx.smtThreads(); t++) {
            ThreadSpec &ts = ctx.spec.addThread(c, t, p);
            ts.initRegs[1] = A.off;
            ts.initRegs[2] = A.ngh;
            ts.initRegs[3] = A.dist;
            ts.initRegs[4] = A.globals;
            ts.initRegs[5] = c * ctx.smtThreads() + t; // tid
        }
    }
}

// ------------------------------------------------------ pipeline stages

Program *
BfsWorkload::genFringe(BuildContext &ctx, bool emitOffsets,
                       bool emitNeighbors, Addr *handler)
{
    Program *p = ctx.newProgram("bfs-fringe");
    Asm a(p);
    // r1=curF r2=nextF r3=curSize r4=i r5=scratch
    // r6=offsets (if emitOffsets) r7=start r8=end
    // r9=neighbors (if emitNeighbors) r10=scratch
    auto level = a.label("level");
    auto vloop = a.label("vloop");
    auto next = a.label("next");
    auto done = a.label("done");

    a.bind(level);
    a.li(R::r4, 0);
    a.bind(vloop);
    a.bgeu(R::r4, R::r3, next);
    a.slli(R::r5, R::r4, 2);
    a.add(R::r5, R::r1, R::r5);
    if (!emitOffsets) {
        a.lw(QO, R::r5, 0); // load of curF[i] enqueues v directly
    } else {
        a.lw(R::r5, R::r5, 0); // v
        a.slli(R::r7, R::r5, 2);
        a.add(R::r7, R::r6, R::r7);
        a.lw(R::r8, R::r7, 4); // end
        a.lw(R::r7, R::r7, 0); // start
        if (!emitNeighbors) {
            a.mov(QO, R::r7);
            a.mov(QO, R::r8);
        } else {
            auto eloop = a.label("eloop");
            auto edone = a.label("edone");
            a.bind(eloop);
            a.bgeu(R::r7, R::r8, edone);
            a.slli(R::r10, R::r7, 2);
            a.add(R::r10, R::r9, R::r10);
            a.lw(QO, R::r10, 0); // load of ngh enqueues directly
            a.addi(R::r7, R::r7, 1);
            a.jmp(eloop);
            a.bind(edone);
        }
    }
    a.addi(R::r4, R::r4, 1);
    a.jmp(vloop);
    a.bind(next);
    a.enqc(QO, R::zero); // CV_LEVEL_END
    a.mov(R::r3, QI);    // next level size (blocks on feedback queue)
    a.mov(R::r5, R::r1);
    a.mov(R::r1, R::r2);
    a.mov(R::r2, R::r5);
    a.bnei(R::r3, 0, level);
    a.li(R::r5, CV_DONE);
    a.enqc(QO, R::r5);
    a.halt();
    a.finalize();
    *handler = static_cast<Addr>(-1); // no dequeue handler needed
    return p;
}

Program *
BfsWorkload::genPump(BuildContext &ctx, Addr *handler)
{
    Program *p = ctx.newProgram("bfs-pump");
    Asm a(p);
    auto loop = a.label("loop");
    auto hdl = a.label("hdl");
    auto fin = a.label("fin");
    a.bind(loop);
    a.mov(QO, QI); // dequeue + enqueue in one micro-op
    a.jmp(loop);
    a.bind(hdl);
    a.enqc(QO, R::cvval);
    a.beqi(R::cvval, static_cast<int64_t>(CV_DONE), fin);
    a.jr(R::cvret);
    a.bind(fin);
    a.halt();
    a.finalize();
    *handler = p->labels().at("hdl");
    return p;
}

Program *
BfsWorkload::genEnumerate(BuildContext &ctx, Addr *handler)
{
    Program *p = ctx.newProgram("bfs-enumerate");
    Asm a(p);
    // r1 = neighbors base
    auto loop = a.label("loop");
    auto eloop = a.label("eloop");
    auto hdl = a.label("hdl");
    auto fin = a.label("fin");
    a.bind(loop);
    a.mov(R::r2, QI); // start
    a.mov(R::r3, QI); // end
    a.bind(eloop);
    a.bgeu(R::r2, R::r3, loop);
    a.slli(R::r4, R::r2, 2);
    a.add(R::r4, R::r1, R::r4);
    a.lw(QO, R::r4, 0);
    a.addi(R::r2, R::r2, 1);
    a.jmp(eloop);
    a.bind(hdl);
    a.enqc(QO, R::cvval);
    a.beqi(R::cvval, static_cast<int64_t>(CV_DONE), fin);
    a.jr(R::cvret);
    a.bind(fin);
    a.halt();
    a.finalize();
    *handler = p->labels().at("hdl");
    return p;
}

Program *
BfsWorkload::genFetchDist(BuildContext &ctx, Addr *handler)
{
    Program *p = ctx.newProgram("bfs-fetchdist");
    Asm a(p);
    // r1 = dist base
    auto loop = a.label("loop");
    auto hdl = a.label("hdl");
    auto fin = a.label("fin");
    a.bind(loop);
    a.mov(R::r2, QI); // ngh
    a.slli(R::r3, R::r2, 2);
    a.add(R::r3, R::r1, R::r3);
    a.mov(QO, R::r2);  // enqueue ngh
    a.lw(QO, R::r3, 0); // enqueue dist[ngh]
    a.jmp(loop);
    a.bind(hdl);
    a.enqc(QO, R::cvval);
    a.beqi(R::cvval, static_cast<int64_t>(CV_DONE), fin);
    a.jr(R::cvret);
    a.bind(fin);
    a.halt();
    a.finalize();
    *handler = p->labels().at("hdl");
    return p;
}

Program *
BfsWorkload::genUpdate(BuildContext &ctx, bool loadsDist, Addr *handler)
{
    Program *p = ctx.newProgram("bfs-update");
    Asm a(p);
    // r1=dist r2=nextF(current) r3=nextIdx r4=cur_dist r6=other fringe
    auto loop = a.label("loop");
    auto hdl = a.label("hdl");
    auto fin = a.label("fin");
    a.li(R::r3, 0);
    a.bind(loop);
    a.mov(R::r5, QI); // ngh
    if (loadsDist) {
        a.slli(R::r8, R::r5, 2);
        a.add(R::r8, R::r1, R::r8);
        a.lw(R::r7, R::r8, 0);
        a.bnei(R::r7, static_cast<int64_t>(UNSET32), loop);
    } else {
        a.mov(R::r7, QI); // fetched dist (possibly stale)
        a.bnei(R::r7, static_cast<int64_t>(UNSET32), loop);
        // Re-check: the prefetched distance may be stale (Sec. III-C).
        a.slli(R::r8, R::r5, 2);
        a.add(R::r8, R::r1, R::r8);
        a.lw(R::r7, R::r8, 0);
        a.bnei(R::r7, static_cast<int64_t>(UNSET32), loop);
    }
    a.sw(R::r4, R::r8, 0);
    a.slli(R::r9, R::r3, 2);
    a.add(R::r9, R::r2, R::r9);
    a.sw(R::r5, R::r9, 0);
    a.addi(R::r3, R::r3, 1);
    a.jmp(loop);
    a.bind(hdl);
    a.beqi(R::cvval, static_cast<int64_t>(CV_DONE), fin);
    a.mov(QO, R::r3); // send next-level size back (feedback queue)
    a.addi(R::r4, R::r4, 1);
    a.mov(R::r10, R::r2);
    a.mov(R::r2, R::r6);
    a.mov(R::r6, R::r10);
    a.li(R::r3, 0);
    a.jr(R::cvret);
    a.bind(fin);
    a.halt();
    a.finalize();
    *handler = p->labels().at("hdl");
    return p;
}

// ------------------------------------------------------------ pipelines

void
BfsWorkload::buildPipeline(BuildContext &ctx, bool useRa, bool streaming)
{
    fatal_if(streaming && ctx.numCores() < 4,
             "streaming BFS needs 4 cores");
    fatal_if(streaming && !useRa, "streaming BFS is built with RAs");
    Arrays A = installArrays(ctx);
    uint32_t depth = opt_.depth;

    auto addMap = [](ThreadSpec &t, Reg r, QueueId q, QueueDir d) {
        t.queueMaps.push_back({r.idx, q, d});
    };

    if (streaming) {
        // One stage per single-threaded core (paper Sec. VI-B):
        //  core0: fringe + RA(offset pair)   -> conn ->
        //  core1: pump  + RA(neighbor scan)  -> conn ->
        //  core2: pump  + RA(dist KV)        -> conn ->
        //  core3: update                     -> conn (feedback) -> core0
        Addr h;
        Program *fr = genFringe(ctx, false, false, &h);
        ThreadSpec &t0 = ctx.spec.addThread(0, 0, fr);
        t0.initRegs[1] = A.fA;
        t0.initRegs[2] = A.fB;
        t0.initRegs[3] = 1;
        addMap(t0, QO, 0, QueueDir::Out); // q0: v -> RA pair
        addMap(t0, QI, 2, QueueDir::In);  // q2: feedback in
        ctx.spec.ras.push_back({0, 0, 1, A.off, 4, RaMode::IndirectPair});

        Addr hPump1;
        Program *pump1 = genPump(ctx, &hPump1);
        ThreadSpec &t1 = ctx.spec.addThread(1, 0, pump1);
        t1.deqHandler = static_cast<int64_t>(hPump1);
        addMap(t1, QI, 0, QueueDir::In);  // from connector
        addMap(t1, QO, 1, QueueDir::Out); // into scan RA
        ctx.spec.ras.push_back({1, 1, 2, A.ngh, 4, RaMode::Scan});
        ctx.spec.connectors.push_back({0, 1, 1, 0}); // core0.q1->core1.q0

        Addr hPump2;
        Program *pump2 = genPump(ctx, &hPump2);
        ThreadSpec &t2 = ctx.spec.addThread(2, 0, pump2);
        t2.deqHandler = static_cast<int64_t>(hPump2);
        addMap(t2, QI, 0, QueueDir::In);
        addMap(t2, QO, 1, QueueDir::Out);
        ctx.spec.ras.push_back({2, 1, 2, A.dist, 4, RaMode::IndirectKV});
        ctx.spec.connectors.push_back({1, 2, 2, 0}); // core1.q2->core2.q0

        Addr hUpd;
        Program *upd = genUpdate(ctx, false, &hUpd);
        ThreadSpec &t3 = ctx.spec.addThread(3, 0, upd);
        t3.deqHandler = static_cast<int64_t>(hUpd);
        t3.initRegs[1] = A.dist;
        t3.initRegs[2] = A.fB;
        t3.initRegs[6] = A.fA;
        t3.initRegs[4] = 1;
        addMap(t3, QI, 0, QueueDir::In);
        addMap(t3, QO, 1, QueueDir::Out); // feedback out
        ctx.spec.connectors.push_back({2, 2, 3, 0}); // core2.q2->core3.q0
        ctx.spec.connectors.push_back({3, 1, 0, 2}); // feedback
        // Small feedback queues.
        ctx.spec.queueCaps.push_back({0, 2, 4});
        ctx.spec.queueCaps.push_back({3, 1, 4});
        return;
    }

    // Single-core SMT pipeline. Queue ids are allocated sequentially.
    QueueId nextQ = 0;
    auto alloc = [&nextQ]() { return nextQ++; };

    // Last stage: update.
    Addr hUpd;
    Program *upd = genUpdate(ctx, depth <= 3 && !useRa, &hUpd);

    if (useRa) {
        if (depth == 4) {
            // T1 fringe -> RA pair -> RA scan -> RA kv -> T2 update.
            QueueId q0 = alloc(), q1 = alloc(), q2 = alloc(),
                    q3 = alloc(), qfb = alloc();
            Addr h;
            Program *fr = genFringe(ctx, false, false, &h);
            ThreadSpec &t0 = ctx.spec.addThread(0, 0, fr);
            t0.initRegs[1] = A.fA;
            t0.initRegs[2] = A.fB;
            t0.initRegs[3] = 1;
            addMap(t0, QO, q0, QueueDir::Out);
            addMap(t0, QI, qfb, QueueDir::In);
            ctx.spec.ras.push_back(
                {0, q0, q1, A.off, 4, RaMode::IndirectPair});
            ctx.spec.ras.push_back({0, q1, q2, A.ngh, 4, RaMode::Scan});
            ctx.spec.ras.push_back(
                {0, q2, q3, A.dist, 4, RaMode::IndirectKV});
            ThreadSpec &t1 = ctx.spec.addThread(0, 1, upd);
            t1.deqHandler = static_cast<int64_t>(hUpd);
            t1.initRegs[1] = A.dist;
            t1.initRegs[2] = A.fB;
            t1.initRegs[6] = A.fA;
            t1.initRegs[4] = 1;
            addMap(t1, QI, q3, QueueDir::In);
            addMap(t1, QO, qfb, QueueDir::Out);
            ctx.spec.queueCaps.push_back({0, q0, 16});
            ctx.spec.queueCaps.push_back({0, qfb, 4});
        } else if (depth == 3) {
            // T1 fringe -> RA pair -> T2 enumerate -> RA kv -> T3 update.
            QueueId q0 = alloc(), q1 = alloc(), q2 = alloc(),
                    q3 = alloc(), qfb = alloc();
            Addr h;
            Program *fr = genFringe(ctx, false, false, &h);
            ThreadSpec &t0 = ctx.spec.addThread(0, 0, fr);
            t0.initRegs[1] = A.fA;
            t0.initRegs[2] = A.fB;
            t0.initRegs[3] = 1;
            addMap(t0, QO, q0, QueueDir::Out);
            addMap(t0, QI, qfb, QueueDir::In);
            ctx.spec.ras.push_back(
                {0, q0, q1, A.off, 4, RaMode::IndirectPair});
            Addr hEnum;
            Program *en = genEnumerate(ctx, &hEnum);
            ThreadSpec &t1 = ctx.spec.addThread(0, 1, en);
            t1.deqHandler = static_cast<int64_t>(hEnum);
            t1.initRegs[1] = A.ngh;
            addMap(t1, QI, q1, QueueDir::In);
            addMap(t1, QO, q2, QueueDir::Out);
            ctx.spec.ras.push_back(
                {0, q2, q3, A.dist, 4, RaMode::IndirectKV});
            ThreadSpec &t2 = ctx.spec.addThread(0, 2, upd);
            t2.deqHandler = static_cast<int64_t>(hUpd);
            t2.initRegs[1] = A.dist;
            t2.initRegs[2] = A.fB;
            t2.initRegs[6] = A.fA;
            t2.initRegs[4] = 1;
            addMap(t2, QI, q3, QueueDir::In);
            addMap(t2, QO, qfb, QueueDir::Out);
            ctx.spec.queueCaps.push_back({0, qfb, 4});
        } else {
            // depth 2: T1 fringe+off+enum -> RA kv -> T2 update.
            QueueId q0 = alloc(), q1 = alloc(), qfb = alloc();
            Addr h;
            Program *fr = genFringe(ctx, true, true, &h);
            ThreadSpec &t0 = ctx.spec.addThread(0, 0, fr);
            t0.initRegs[1] = A.fA;
            t0.initRegs[2] = A.fB;
            t0.initRegs[3] = 1;
            t0.initRegs[6] = A.off;
            t0.initRegs[9] = A.ngh;
            addMap(t0, QO, q0, QueueDir::Out);
            addMap(t0, QI, qfb, QueueDir::In);
            ctx.spec.ras.push_back(
                {0, q0, q1, A.dist, 4, RaMode::IndirectKV});
            ThreadSpec &t1 = ctx.spec.addThread(0, 1, upd);
            t1.deqHandler = static_cast<int64_t>(hUpd);
            t1.initRegs[1] = A.dist;
            t1.initRegs[2] = A.fB;
            t1.initRegs[6] = A.fA;
            t1.initRegs[4] = 1;
            addMap(t1, QI, q1, QueueDir::In);
            addMap(t1, QO, qfb, QueueDir::Out);
            ctx.spec.queueCaps.push_back({0, qfb, 4});
        }
        return;
    }

    // No-RA thread pipelines.
    if (depth == 4) {
        QueueId q0 = alloc(), q1 = alloc(), q2 = alloc(), qfb = alloc();
        Addr h;
        Program *fr = genFringe(ctx, true, false, &h);
        ThreadSpec &t0 = ctx.spec.addThread(0, 0, fr);
        t0.initRegs[1] = A.fA;
        t0.initRegs[2] = A.fB;
        t0.initRegs[3] = 1;
        t0.initRegs[6] = A.off;
        addMap(t0, QO, q0, QueueDir::Out);
        addMap(t0, QI, qfb, QueueDir::In);
        Addr hEnum;
        Program *en = genEnumerate(ctx, &hEnum);
        ThreadSpec &t1 = ctx.spec.addThread(0, 1, en);
        t1.deqHandler = static_cast<int64_t>(hEnum);
        t1.initRegs[1] = A.ngh;
        addMap(t1, QI, q0, QueueDir::In);
        addMap(t1, QO, q1, QueueDir::Out);
        Addr hFd;
        Program *fd = genFetchDist(ctx, &hFd);
        ThreadSpec &t2 = ctx.spec.addThread(0, 2, fd);
        t2.deqHandler = static_cast<int64_t>(hFd);
        t2.initRegs[1] = A.dist;
        addMap(t2, QI, q1, QueueDir::In);
        addMap(t2, QO, q2, QueueDir::Out);
        ThreadSpec &t3 = ctx.spec.addThread(0, 3, upd);
        t3.deqHandler = static_cast<int64_t>(hUpd);
        t3.initRegs[1] = A.dist;
        t3.initRegs[2] = A.fB;
        t3.initRegs[6] = A.fA;
        t3.initRegs[4] = 1;
        addMap(t3, QI, q2, QueueDir::In);
        addMap(t3, QO, qfb, QueueDir::Out);
        ctx.spec.queueCaps.push_back({0, qfb, 4});
    } else if (depth == 3) {
        QueueId q0 = alloc(), q1 = alloc(), qfb = alloc();
        Addr h;
        Program *fr = genFringe(ctx, true, false, &h);
        ThreadSpec &t0 = ctx.spec.addThread(0, 0, fr);
        t0.initRegs[1] = A.fA;
        t0.initRegs[2] = A.fB;
        t0.initRegs[3] = 1;
        t0.initRegs[6] = A.off;
        addMap(t0, QO, q0, QueueDir::Out);
        addMap(t0, QI, qfb, QueueDir::In);
        Addr hEnum;
        Program *en = genEnumerate(ctx, &hEnum);
        ThreadSpec &t1 = ctx.spec.addThread(0, 1, en);
        t1.deqHandler = static_cast<int64_t>(hEnum);
        t1.initRegs[1] = A.ngh;
        addMap(t1, QI, q0, QueueDir::In);
        addMap(t1, QO, q1, QueueDir::Out);
        ThreadSpec &t2 = ctx.spec.addThread(0, 2, upd);
        t2.deqHandler = static_cast<int64_t>(hUpd);
        t2.initRegs[1] = A.dist;
        t2.initRegs[2] = A.fB;
        t2.initRegs[6] = A.fA;
        t2.initRegs[4] = 1;
        addMap(t2, QI, q1, QueueDir::In);
        addMap(t2, QO, qfb, QueueDir::Out);
        ctx.spec.queueCaps.push_back({0, qfb, 4});
    } else {
        QueueId q0 = alloc(), qfb = alloc();
        Addr h;
        Program *fr = genFringe(ctx, true, true, &h);
        ThreadSpec &t0 = ctx.spec.addThread(0, 0, fr);
        t0.initRegs[1] = A.fA;
        t0.initRegs[2] = A.fB;
        t0.initRegs[3] = 1;
        t0.initRegs[6] = A.off;
        t0.initRegs[9] = A.ngh;
        addMap(t0, QO, q0, QueueDir::Out);
        addMap(t0, QI, qfb, QueueDir::In);
        ThreadSpec &t1 = ctx.spec.addThread(0, 1, upd);
        t1.deqHandler = static_cast<int64_t>(hUpd);
        t1.initRegs[1] = A.dist;
        t1.initRegs[2] = A.fB;
        t1.initRegs[6] = A.fA;
        t1.initRegs[4] = 1;
        addMap(t1, QI, q0, QueueDir::In);
        addMap(t1, QO, qfb, QueueDir::Out);
        ctx.spec.queueCaps.push_back({0, qfb, 4});
    }
}

void
BfsWorkload::buildMulticore(BuildContext &ctx)
{
    // Implemented in bfs_multicore.cpp.
    buildMulticoreImpl(ctx);
}

} // namespace pipette
