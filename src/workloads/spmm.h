/**
 * @file
 * Inner-product sparse matrix-matrix multiply (paper Sec. III, Figs. 4
 * and 5): for every row i of A and a fixed set of columns j of B
 * (streamed as rows of B^T), merge-intersect the sparse coordinates and
 * accumulate products of the matching values.
 *
 * This kernel exercises Pipette's full control-flow repertoire:
 *  - stream stages delimit each row/column instance with a CV;
 *  - merge-intersect peeks both streams (peeking a CV raises the
 *    dequeue handler);
 *  - when one side is exhausted early, merge-intersect issues
 *    skip_to_ctrl on the other stream, which either discards the
 *    remaining coordinates or redirects the producer through its
 *    enqueue control handler to abort the instance (Fig. 5);
 *  - matched coordinate positions flow to reference accelerators that
 *    fetch the values for the accumulate stage.
 */

#ifndef PIPETTE_WORKLOADS_SPMM_H
#define PIPETTE_WORKLOADS_SPMM_H

#include "workloads/matrix.h"
#include "workloads/refimpl.h"
#include "workloads/workload.h"

namespace pipette {

/** SpMM workload over A and B (given as A and B-transpose). */
class SpmmWorkload : public WorkloadBase
{
  public:
    struct Options
    {
        /** Number of B columns evaluated per row of A. */
        uint32_t numCols = 8;
    };

    SpmmWorkload(const SparseMatrix *a, const SparseMatrix *bt,
                 Options opt);
    SpmmWorkload(const SparseMatrix *a, const SparseMatrix *bt)
        : SpmmWorkload(a, bt, Options{})
    {
    }

    std::string name() const override { return "spmm"; }
    void build(BuildContext &ctx, Variant v) override;
    bool verify(System &sys) const override;

  private:
    struct Arrays
    {
        Addr rowPtrA, colIdxA, valA;
        Addr rowPtrB, colIdxB, valB;
        Addr c, globals;
    };
    Arrays installArrays(BuildContext &ctx);

    void buildSerial(BuildContext &ctx);
    void buildDataParallel(BuildContext &ctx);
    void buildPipeline(BuildContext &ctx, bool useRa, bool streaming);

    Program *genStream(BuildContext &ctx, const Arrays &A, bool isCols,
                       Addr *enqHandler);
    Program *genMerge(BuildContext &ctx, QueueId rowQ, QueueId colQ,
                      Addr *handler);
    Program *genAccum(BuildContext &ctx, const Arrays &A, bool loadsVals,
                      Addr *handler);
    /** Emit the shared merge loop body (serial and DP variants). */
    void emitSerialKernel(Asm &a, const Arrays &A, bool dataParallel,
                          uint32_t nThreads);

    const SparseMatrix *a_;
    const SparseMatrix *bt_;
    Options opt_;
    std::vector<uint32_t> cols_;
    uint32_t stride_;
    std::vector<uint64_t> refC_;
    Addr cAddr_ = 0;
};

} // namespace pipette

#endif // PIPETTE_WORKLOADS_SPMM_H
