#include "workloads/refimpl.h"

#include <algorithm>
#include <numeric>
#include <queue>

#include "sim/logging.h"

namespace pipette {

std::vector<uint32_t>
bfsReference(const Graph &g, uint32_t src)
{
    std::vector<uint32_t> dist(g.numVertices, 0xFFFFFFFFu);
    dist[src] = 0;
    std::vector<uint32_t> fringe{src}, next;
    uint32_t level = 1;
    while (!fringe.empty()) {
        next.clear();
        for (uint32_t v : fringe) {
            for (uint32_t e = g.offsets[v]; e < g.offsets[v + 1]; e++) {
                uint32_t n = g.neighbors[e];
                if (dist[n] == 0xFFFFFFFFu) {
                    dist[n] = level;
                    next.push_back(n);
                }
            }
        }
        fringe.swap(next);
        level++;
    }
    return dist;
}

std::vector<uint32_t>
ccReference(const Graph &g)
{
    // Min-label per component via BFS from each unvisited vertex.
    std::vector<uint32_t> comp(g.numVertices, 0xFFFFFFFFu);
    for (uint32_t s = 0; s < g.numVertices; s++) {
        if (comp[s] != 0xFFFFFFFFu)
            continue;
        comp[s] = s;
        std::queue<uint32_t> q;
        q.push(s);
        while (!q.empty()) {
            uint32_t v = q.front();
            q.pop();
            for (uint32_t e = g.offsets[v]; e < g.offsets[v + 1]; e++) {
                uint32_t n = g.neighbors[e];
                if (comp[n] == 0xFFFFFFFFu) {
                    comp[n] = s;
                    q.push(n);
                }
            }
        }
    }
    return comp;
}

std::vector<uint64_t>
prdReference(const Graph &g, const PrdParams &p)
{
    uint32_t n = g.numVertices;
    std::vector<uint64_t> rank(n, 0), delta(n, PrdParams::FP), acc(n, 0);
    std::vector<uint32_t> active(n), touched;
    std::iota(active.begin(), active.end(), 0);

    for (uint32_t iter = 0; iter < p.maxIters && !active.empty();
         iter++) {
        touched.clear();
        for (uint32_t v : active) {
            uint32_t deg = g.degree(v);
            if (deg == 0)
                continue;
            uint64_t contrib =
                ((delta[v] * PrdParams::ALPHA_NUM) >>
                 PrdParams::ALPHA_SHIFT) /
                deg;
            if (contrib == 0)
                continue;
            for (uint32_t e = g.offsets[v]; e < g.offsets[v + 1]; e++) {
                uint32_t ngh = g.neighbors[e];
                if (acc[ngh] == 0)
                    touched.push_back(ngh);
                acc[ngh] += contrib;
            }
        }
        active.clear();
        for (uint32_t w : touched) {
            uint64_t nd = acc[w];
            acc[w] = 0;
            rank[w] += nd;
            if (nd > PrdParams::EPS) {
                delta[w] = nd;
                active.push_back(w);
            }
        }
    }
    return rank;
}

std::vector<uint32_t>
radiiSources(uint32_t numVertices, const RadiiParams &p)
{
    fatal_if(p.numSources >= 60, "Radii uses at most 59 mask bits");
    fatal_if(p.numSources > numVertices, "more sources than vertices");
    Rng rng(p.seed);
    std::vector<bool> taken(numVertices, false);
    std::vector<uint32_t> sources;
    for (uint32_t i = 0; i < p.numSources; i++) {
        uint32_t s;
        do {
            s = static_cast<uint32_t>(rng.uniformInt(0, numVertices - 1));
        } while (taken[s]);
        taken[s] = true;
        sources.push_back(s);
    }
    return sources;
}

std::vector<uint32_t>
radiiReference(const Graph &g, const RadiiParams &p)
{
    uint32_t n = g.numVertices;
    std::vector<uint64_t> mask(n, 0), maskNext(n, 0);
    std::vector<uint32_t> radii(n, 0);

    std::vector<uint32_t> fringe = radiiSources(n, p);
    for (uint32_t i = 0; i < fringe.size(); i++)
        mask[fringe[i]] = 1ull << i;
    std::sort(fringe.begin(), fringe.end());

    uint32_t round = 1;
    std::vector<uint32_t> next;
    while (!fringe.empty()) {
        next.clear();
        // Update phase: strictly synchronous (reads mask[], writes
        // maskNext[]); matches the pipelined implementation exactly.
        for (uint32_t v : fringe) {
            uint64_t vm = mask[v];
            for (uint32_t e = g.offsets[v]; e < g.offsets[v + 1]; e++) {
                uint32_t ngh = g.neighbors[e];
                if ((vm & ~mask[ngh]) == 0)
                    continue;
                if (maskNext[ngh] == 0)
                    next.push_back(ngh);
                maskNext[ngh] |= vm;
            }
        }
        // Apply phase.
        for (uint32_t w : next) {
            mask[w] |= maskNext[w];
            maskNext[w] = 0;
            radii[w] = round;
        }
        fringe.swap(next);
        round++;
    }
    return radii;
}

std::vector<uint64_t>
spmmReference(const SparseMatrix &A, const SparseMatrix &Bt,
              const std::vector<uint32_t> &cols)
{
    std::vector<uint64_t> out(A.n * cols.size(), 0);
    for (uint32_t i = 0; i < A.n; i++) {
        for (size_t k = 0; k < cols.size(); k++) {
            uint32_t j = cols[k];
            uint64_t sum = 0;
            uint32_t pa = A.rowPtr[i], ea = A.rowPtr[i + 1];
            uint32_t pb = Bt.rowPtr[j], eb = Bt.rowPtr[j + 1];
            while (pa < ea && pb < eb) {
                uint32_t ca = A.colIdx[pa], cb = Bt.colIdx[pb];
                if (ca == cb) {
                    sum += static_cast<uint64_t>(A.values[pa]) *
                           Bt.values[pb];
                    pa++;
                    pb++;
                } else if (ca < cb) {
                    pa++;
                } else {
                    pb++;
                }
            }
            out[i * cols.size() + k] = sum;
        }
    }
    return out;
}

// ---------------------------------------------------------------- Silo

uint32_t
BPlusTree::lookup(uint32_t key) const
{
    uint32_t node = rootIndex;
    for (uint32_t level = 0; level + 1 < depth; level++) {
        const uint32_t *w = &pool[node * NODE_WORDS];
        uint32_t nkeys = w[0];
        uint32_t i = 0;
        while (i < nkeys && key >= w[1 + i])
            i++;
        node = w[1 + KEYS + i];
    }
    const uint32_t *w = &pool[node * NODE_WORDS];
    uint32_t nkeys = w[0];
    for (uint32_t i = 0; i < nkeys; i++) {
        if (w[1 + i] == key)
            return w[1 + KEYS + i];
    }
    panic("B+tree lookup of absent key ", key);
}

BPlusTree
buildBPlusTree(uint32_t numKeys)
{
    BPlusTree t;
    constexpr uint32_t K = BPlusTree::KEYS;
    constexpr uint32_t W = BPlusTree::NODE_WORDS;

    // Leaf level.
    struct LevelNode
    {
        uint32_t index;
        uint32_t minKey;
    };
    std::vector<LevelNode> level;
    auto newNode = [&t]() {
        uint32_t idx = static_cast<uint32_t>(t.pool.size() / W);
        t.pool.resize(t.pool.size() + W, 0);
        return idx;
    };

    for (uint32_t k = 0; k < numKeys; k += K) {
        uint32_t idx = newNode();
        uint32_t *w = &t.pool[idx * W];
        uint32_t n = std::min(K, numKeys - k);
        w[0] = n;
        for (uint32_t i = 0; i < n; i++) {
            w[1 + i] = k + i;
            w[1 + K + i] = (k + i) * 2654435761u;
        }
        level.push_back({idx, k});
    }
    t.depth = 1;

    // Internal levels (fanout K+1).
    while (level.size() > 1) {
        std::vector<LevelNode> up;
        for (size_t c = 0; c < level.size(); c += K + 1) {
            uint32_t idx = newNode();
            uint32_t *w = &t.pool[idx * W];
            uint32_t nchild = static_cast<uint32_t>(
                std::min<size_t>(K + 1, level.size() - c));
            w[0] = nchild - 1;
            for (uint32_t i = 0; i < nchild; i++) {
                w[1 + K + i] = level[c + i].index;
                if (i > 0)
                    w[1 + (i - 1)] = level[c + i].minKey;
            }
            up.push_back({idx, level[c].minKey});
        }
        level.swap(up);
        t.depth++;
    }
    t.rootIndex = level[0].index;
    return t;
}

std::vector<uint32_t>
makeYcsbQueries(uint32_t numKeys, uint32_t numQueries, double theta,
                uint64_t seed)
{
    ZipfSampler zipf(numKeys, theta, seed);
    Rng rng(seed ^ 0xabcdef);
    // Scatter popularity ranks over the key space.
    std::vector<uint32_t> perm(numKeys);
    std::iota(perm.begin(), perm.end(), 0);
    for (uint32_t i = numKeys - 1; i > 0; i--)
        std::swap(perm[i], perm[rng.uniformInt(0, i)]);

    std::vector<uint32_t> queries(numQueries);
    for (uint32_t q = 0; q < numQueries; q++)
        queries[q] = perm[zipf.sample()];
    return queries;
}

uint64_t
siloReference(const BPlusTree &tree, const std::vector<uint32_t> &queries)
{
    uint64_t sum = 0;
    for (uint32_t q : queries)
        sum += tree.lookup(q);
    return sum;
}

} // namespace pipette
