/**
 * @file
 * Multicore Pipette BFS (paper Sec. VI-F, Fig. 17): the pipeline is
 * replicated across four cores, each owning a contiguous power-of-two
 * range of vertices. Instead of per-edge shared-memory synchronization,
 * neighbors are partitioned by owner and streamed to the owning core's
 * update stage through cross-core connectors; only the per-level
 * size/termination exchange uses shared memory (one counter + a
 * 4-thread barrier per level).
 *
 * Per core:
 *   T1 (fringe) -> RA(offset pair) -> RA(neighbor scan) -> Tpart
 *   Tpart routes each neighbor to its owner (4 output queues; remote
 *     ones bridged by connectors);
 *   Tfwd merges the four per-source streams in round-robin source
 *     order (level ends delimited by CVs) -> RA(dist KV) -> Tupd;
 *   Tupd claims distances, builds the local next fringe, and at each
 *     level end exchanges sizes globally and feeds T1 the local and
 *     global next-level sizes.
 */

#include "workloads/bfs.h"

namespace pipette {

namespace {
constexpr Reg QO{11};
constexpr Reg QI{12};

// Shared globals (8-byte slots).
constexpr int64_t G_SIZE_A = 0; ///< next-size accumulator, even levels
constexpr int64_t G_SIZE_B = 8; ///< next-size accumulator, odd levels
constexpr int64_t G_COUNT = 16;
constexpr int64_t G_PHASE = 24;

uint32_t
log2ceil(uint32_t x)
{
    uint32_t b = 0;
    while ((1u << b) < x)
        b++;
    return b;
}
} // namespace

void
BfsWorkload::buildMulticoreImpl(BuildContext &ctx)
{
    constexpr uint32_t NC = 4;
    fatal_if(ctx.numCores() != NC, "multicore BFS needs exactly 4 cores");

    // --- Shared arrays.
    Addr off = installU32(ctx.mem(), ctx.alloc, g_->offsets);
    Addr nghArr = installU32(ctx.mem(), ctx.alloc, g_->neighbors);
    std::vector<uint32_t> dist(g_->numVertices, 0xFFFFFFFFu);
    dist[opt_.src] = 0;
    Addr distA = installU32(ctx.mem(), ctx.alloc, dist);
    distAddr_ = distA;
    Addr globals = ctx.alloc.alloc(64);
    ctx.mem().fill(globals, 64, 0);
    (void)G_SIZE_A;
    (void)G_SIZE_B;

    // Ownership: owner(v) = min(v >> shift, 3).
    uint32_t shift =
        log2ceil(g_->numVertices) >= 2 ? log2ceil(g_->numVertices) - 2 : 0;
    uint32_t srcOwner = std::min(opt_.src >> shift, NC - 1);

    std::array<Addr, NC> fA, fB;
    for (CoreId c = 0; c < NC; c++) {
        fA[c] = ctx.alloc.alloc32(g_->numVertices + 1);
        fB[c] = ctx.alloc.alloc32(g_->numVertices + 1);
    }
    ctx.mem().write(fA[srcOwner], 4, opt_.src);

    auto addMap = [](ThreadSpec &t, Reg r, QueueId q, QueueDir d) {
        t.queueMaps.push_back({r.idx, q, d});
    };

    for (CoreId c = 0; c < NC; c++) {
        // ---- T1: local fringe streamer.
        {
            Program *p = ctx.newProgram("mbfs-fringe");
            Asm a(p);
            auto level = a.label();
            auto vloop = a.label();
            auto next = a.label();
            a.bind(level);
            a.li(R::r4, 0);
            a.bind(vloop);
            a.bgeu(R::r4, R::r3, next);
            a.slli(R::r5, R::r4, 2);
            a.add(R::r5, R::r1, R::r5);
            a.lw(QO, R::r5, 0); // enqueue v
            a.addi(R::r4, R::r4, 1);
            a.jmp(vloop);
            a.bind(next);
            a.enqc(QO, R::zero); // CV_LEVEL_END
            a.mov(R::r3, QI);    // local next size
            a.mov(R::r6, QI);    // global next size
            a.mov(R::r5, R::r1);
            a.mov(R::r1, R::r2);
            a.mov(R::r2, R::r5);
            a.bnei(R::r6, 0, level);
            a.li(R::r5, CV_DONE);
            a.enqc(QO, R::r5);
            a.halt();
            a.finalize();
            ThreadSpec &t = ctx.spec.addThread(c, 0, p);
            t.initRegs[1] = fA[c];
            t.initRegs[2] = fB[c];
            t.initRegs[3] = c == srcOwner ? 1 : 0;
            addMap(t, QO, 0, QueueDir::Out);
            addMap(t, QI, 13, QueueDir::In);
        }
        ctx.spec.ras.push_back({c, 0, 1, off, 4, RaMode::IndirectPair});
        ctx.spec.ras.push_back({c, 1, 2, nghArr, 4, RaMode::Scan});

        // ---- Tpart: route neighbors by owner.
        {
            Program *p = ctx.newProgram("mbfs-part");
            Asm a(p);
            auto loop = a.label();
            auto noclamp = a.label();
            auto s0 = a.label();
            auto s1 = a.label();
            auto s2 = a.label();
            auto hdl = a.label("hdl");
            auto fin = a.label();
            a.bind(loop);
            a.mov(R::r1, QI); // ngh (traps on CV)
            a.srli(R::r2, R::r1, static_cast<int64_t>(shift));
            a.blti(R::r2, 3, noclamp);
            a.li(R::r2, 3);
            a.bind(noclamp);
            a.beqi(R::r2, 0, s0);
            a.beqi(R::r2, 1, s1);
            a.beqi(R::r2, 2, s2);
            a.mov(Reg{11}, R::r1); // owner 3
            a.jmp(loop);
            a.bind(s0);
            a.mov(Reg{8}, R::r1);
            a.jmp(loop);
            a.bind(s1);
            a.mov(Reg{9}, R::r1);
            a.jmp(loop);
            a.bind(s2);
            a.mov(Reg{10}, R::r1);
            a.jmp(loop);
            a.bind(hdl);
            // Broadcast the level/done CV to every owner stream.
            a.enqc(Reg{8}, R::cvval);
            a.enqc(Reg{9}, R::cvval);
            a.enqc(Reg{10}, R::cvval);
            a.enqc(Reg{11}, R::cvval);
            a.beqi(R::cvval, static_cast<int64_t>(CV_DONE), fin);
            a.jr(R::cvret);
            a.bind(fin);
            a.halt();
            a.finalize();
            ThreadSpec &t = ctx.spec.addThread(c, 1, p);
            t.deqHandler = static_cast<int64_t>(p->labels().at("hdl"));
            addMap(t, QI, 2, QueueDir::In);
            // Owner o: local Tfwd input if o == c, else staging queue
            // q3+o bridged by a connector to (o, q7+c).
            Reg outRegs[NC] = {Reg{8}, Reg{9}, Reg{10}, Reg{11}};
            for (uint32_t o = 0; o < NC; o++) {
                if (o == c) {
                    addMap(t, outRegs[o],
                           static_cast<QueueId>(7 + c), QueueDir::Out);
                } else {
                    auto stage = static_cast<QueueId>(3 + o);
                    addMap(t, outRegs[o], stage, QueueDir::Out);
                    ctx.spec.connectors.push_back(
                        {c, stage, o, static_cast<QueueId>(7 + c)});
                }
            }
        }

        // ---- Tfwd: merge the four per-source streams in order.
        {
            Program *p = ctx.newProgram("mbfs-fwd");
            Asm a(p);
            auto fwd0 = a.label("fwd0");
            auto fwd1 = a.label("fwd1");
            auto fwd2 = a.label("fwd2");
            auto fwd3 = a.label("fwd3");
            auto hdl = a.label("hdl");
            auto dcol = a.label();
            a.bind(fwd0);
            a.mov(QO, Reg{8});
            a.jmp(fwd0);
            a.bind(fwd1);
            a.mov(QO, Reg{9});
            a.jmp(fwd1);
            a.bind(fwd2);
            a.mov(QO, Reg{10});
            a.jmp(fwd2);
            a.bind(fwd3);
            a.mov(QO, QI);
            a.jmp(fwd3);
            a.bind(hdl);
            a.beqi(R::cvval, static_cast<int64_t>(CV_DONE), dcol);
            a.beqi(R::cvqid, 7, fwd1);
            a.beqi(R::cvqid, 8, fwd2);
            a.beqi(R::cvqid, 9, fwd3);
            a.enqc(QO, R::cvval); // all four sources ended this level
            a.jmp(fwd0);
            a.bind(dcol);
            // DONE arrives on source 0 first (round-robin); drain the
            // other three DONEs, forward one, and stop.
            a.skiptc(R::r1, Reg{9});
            a.skiptc(R::r1, Reg{10});
            a.skiptc(R::r1, QI);
            a.enqc(QO, R::cvval);
            a.halt();
            a.finalize();
            ThreadSpec &t = ctx.spec.addThread(c, 2, p);
            t.deqHandler = static_cast<int64_t>(p->labels().at("hdl"));
            addMap(t, Reg{8}, 7, QueueDir::In);
            addMap(t, Reg{9}, 8, QueueDir::In);
            addMap(t, Reg{10}, 9, QueueDir::In);
            addMap(t, QI, 10, QueueDir::In);
            addMap(t, QO, 11, QueueDir::Out);
        }
        ctx.spec.ras.push_back({c, 11, 12, distA, 4, RaMode::IndirectKV});

        // ---- Tupd: claim distances, build the local next fringe, and
        // synchronize sizes at each level end.
        {
            Program *p = ctx.newProgram("mbfs-update");
            Asm a(p);
            auto loop = a.label();
            auto hdl = a.label("hdl");
            auto noreset = a.label();
            auto fin = a.label();
            a.li(R::r3, 0);
            a.bind(loop);
            a.mov(R::r5, QI); // ngh
            a.mov(R::r7, QI); // prefetched dist
            a.bnei(R::r7, static_cast<int64_t>(UNSET32), loop);
            a.slli(R::r8, R::r5, 2);
            a.add(R::r8, R::r1, R::r8);
            a.lw(R::r7, R::r8, 0); // re-check (RA value may be stale)
            a.bnei(R::r7, static_cast<int64_t>(UNSET32), loop);
            a.sw(R::r4, R::r8, 0);
            a.slli(R::r9, R::r3, 2);
            a.add(R::r9, R::r2, R::r9);
            a.sw(R::r5, R::r9, 0);
            a.addi(R::r3, R::r3, 1);
            a.jmp(loop);
            a.bind(hdl);
            a.beqi(R::cvval, static_cast<int64_t>(CV_DONE), fin);
            // Add the local count into this level's parity slot.
            a.li(R::cvqid, globals);
            a.andi(R::cvval, R::r4, 1);
            a.slli(R::cvval, R::cvval, 3);
            a.add(R::cvqid, R::cvqid, R::cvval);
            a.amoadd(R::zero, R::cvqid, R::r3);
            // Barrier #1 over the four update threads.
            a.li(R::cvqid, globals);
            emitBarrier(a, R::cvqid, G_COUNT, G_PHASE, NC, R::r5, R::r7,
                        R::r8);
            // Core 0 resets the other parity slot for the level after
            // next (already read by everyone, not yet written).
            a.bnei(R::r10, 0, noreset);
            a.li(R::cvqid, globals);
            a.andi(R::cvval, R::r4, 1);
            a.xori(R::cvval, R::cvval, 1);
            a.slli(R::cvval, R::cvval, 3);
            a.add(R::cvqid, R::cvqid, R::cvval);
            a.sd(R::zero, R::cvqid, 0);
            a.bind(noreset);
            // Barrier #2, then read the global total.
            a.li(R::cvqid, globals);
            emitBarrier(a, R::cvqid, G_COUNT, G_PHASE, NC, R::r5, R::r7,
                        R::r8);
            a.li(R::cvqid, globals);
            a.andi(R::cvval, R::r4, 1);
            a.slli(R::cvval, R::cvval, 3);
            a.add(R::cvqid, R::cvqid, R::cvval);
            a.ld(R::cvval, R::cvqid, 0); // global next size
            a.mov(QO, R::r3);            // feedback: local size
            a.mov(QO, R::cvval);         // feedback: global size
            a.addi(R::r4, R::r4, 1);
            a.mov(R::r9, R::r2);
            a.mov(R::r2, R::r6);
            a.mov(R::r6, R::r9);
            a.li(R::r3, 0);
            a.jr(R::cvret);
            a.bind(fin);
            a.halt();
            a.finalize();
            ThreadSpec &t = ctx.spec.addThread(c, 3, p);
            t.deqHandler = static_cast<int64_t>(p->labels().at("hdl"));
            t.initRegs[1] = distA;
            t.initRegs[2] = fB[c];
            t.initRegs[6] = fA[c];
            t.initRegs[4] = 1; // cur_dist
            t.initRegs[10] = c;
            addMap(t, QI, 12, QueueDir::In);
            addMap(t, QO, 13, QueueDir::Out);
        }

        // Queue capacities: stay within the register budget.
        ctx.spec.queueCaps.push_back({c, 0, 16});
        ctx.spec.queueCaps.push_back({c, 1, 16});
        ctx.spec.queueCaps.push_back({c, 2, 16});
        for (QueueId q = 3; q <= 10; q++)
            ctx.spec.queueCaps.push_back({c, q, 8});
        ctx.spec.queueCaps.push_back({c, 11, 8});
        ctx.spec.queueCaps.push_back({c, 12, 16});
        ctx.spec.queueCaps.push_back({c, 13, 4});
    }
}

} // namespace pipette
