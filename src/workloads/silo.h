/**
 * @file
 * Silo (paper Sec. V-B, Fig. 8): an in-memory database dominated by
 * B+tree index lookups, driven by the read-only YCSB-C workload with
 * Zipfian-distributed keys.
 *
 * The Pipette version pipelines lookups across tree levels: each stage
 * owns a slice of levels, dequeues (key, node) pairs, walks its levels,
 * and enqueues the pair for the next stage; the leaf stage accumulates
 * the values. With RAs enabled, each stage's node fetch is announced by
 * the previous stage through an indirect RA that pulls the node's
 * header line into the L1 ahead of the stage's accesses.
 *
 * The paper's Silo re-enqueues lookups into a single stage's input
 * queue (a cycle in the pipeline graph). Our queues are strictly
 * point-to-point, so we unroll the cycle into a fixed-depth linear
 * pipeline -- the tree has a fixed depth, so both forms perform the
 * same per-level decoupling (see DESIGN.md).
 */

#ifndef PIPETTE_WORKLOADS_SILO_H
#define PIPETTE_WORKLOADS_SILO_H

#include "workloads/refimpl.h"
#include "workloads/workload.h"

namespace pipette {

/** Silo/YCSB-C workload. */
class SiloWorkload : public WorkloadBase
{
  public:
    struct Options
    {
        uint32_t numKeys = 60000;
        uint32_t numQueries = 8000;
        double zipfTheta = 0.99;
        uint64_t seed = 99;
    };

    explicit SiloWorkload(Options opt);
    SiloWorkload() : SiloWorkload(Options{}) {}

    std::string name() const override { return "silo"; }
    void build(BuildContext &ctx, Variant v) override;
    bool verify(System &sys) const override;

  private:
    struct Arrays
    {
        Addr pool, queries, result, globals;
    };
    Arrays installArrays(BuildContext &ctx);

    void buildSerial(BuildContext &ctx);
    void buildDataParallel(BuildContext &ctx);
    void buildPipeline(BuildContext &ctx, bool useRa, bool streaming);

    /**
     * One pipeline stage walking `levels` tree levels. Stage kinds:
     * first (reads the query stream), middle, last (accumulates).
     */
    Program *genStage(BuildContext &ctx, const Arrays &A, uint32_t levels,
                      bool first, bool last, bool raIn, bool raOut,
                      Addr *handler);

    Options opt_;
    BPlusTree tree_;
    std::vector<uint32_t> queries_;
    uint64_t refSum_ = 0;
    Addr resultAddr_ = 0;
};

} // namespace pipette

#endif // PIPETTE_WORKLOADS_SILO_H
