/**
 * @file
 * Common infrastructure for the six benchmark workloads. Each workload
 * builds simulated-memory data structures plus mini-ISA programs for
 * every variant the paper evaluates:
 *
 *  - Serial: one thread on one core;
 *  - DataParallel: all SMT threads of all cores, synchronizing through
 *    shared memory (atomics + barriers);
 *  - Pipette: pipeline stages time-multiplexed on one core's SMT
 *    threads, with reference accelerators (the paper's default);
 *  - PipetteNoRa: same without RAs;
 *  - Streaming: one pipeline stage per single-threaded core, joined by
 *    connectors (the paper's streaming-multicore baseline, Sec. VI-B);
 *  - MulticorePipette: stages replicated across cores with cross-core
 *    neighbor partitioning (paper Sec. VI-F, BFS only).
 */

#ifndef PIPETTE_WORKLOADS_WORKLOAD_H
#define PIPETTE_WORKLOADS_WORKLOAD_H

#include <memory>
#include <string>
#include <vector>

#include "core/system.h"
#include "isa/assembler.h"
#include "isa/machine_spec.h"
#include "mem/sim_memory.h"

namespace pipette {

/** Benchmark variants (paper Sec. V-B / VI). */
enum class Variant
{
    Serial,
    DataParallel,
    Pipette,
    PipetteNoRa,
    Streaming,
    MulticorePipette,
};

const char *variantName(Variant v);

/** Per-build state: owns the programs and accumulates the spec. */
struct BuildContext
{
    System *sys;
    SimAllocator alloc{0x100000};
    MachineSpec spec;
    std::vector<std::unique_ptr<Program>> programs;

    explicit BuildContext(System *s) : sys(s) {}

    Program *
    newProgram(const std::string &name)
    {
        programs.push_back(std::make_unique<Program>(name));
        return programs.back().get();
    }

    SimMemory &mem() { return sys->memory(); }
    uint32_t numCores() const { return sys->numCores(); }
    uint32_t smtThreads() const { return sys->config().core.smtThreads; }
};

/** Interface the experiment harness drives. */
class WorkloadBase
{
  public:
    virtual ~WorkloadBase() = default;
    virtual std::string name() const = 0;
    /** Populate memory and the machine spec for one variant. */
    virtual void build(BuildContext &ctx, Variant v) = 0;
    /** Check architectural results against the host reference. */
    virtual bool verify(System &sys) const = 0;
    /** Which variants this workload implements. */
    virtual bool supports(Variant v) const;
};

// ------------------------------------------------------------- helpers

/** Copy a host uint32 array into simulated memory; returns its base. */
Addr installU32(SimMemory &mem, SimAllocator &alloc,
                const std::vector<uint32_t> &data);
/** Copy a host uint64 array into simulated memory; returns its base. */
Addr installU64(SimMemory &mem, SimAllocator &alloc,
                const std::vector<uint64_t> &data);

/**
 * Emit a centralized phase barrier over `n` threads. The globals block
 * at `gbase` must reserve 8-byte slots at countOff and phaseOff
 * (initialized to zero). Clobbers s1, s2, s3.
 */
void emitBarrier(Asm &a, Reg gbase, int64_t countOff, int64_t phaseOff,
                 uint64_t n, Reg s1, Reg s2, Reg s3);

/** Unvisited-distance sentinel used by the graph workloads. */
constexpr uint64_t UNSET32 = 0xFFFFFFFFull;

/** Control-value protocol shared by the pipelined graph workloads. */
constexpr uint64_t CV_LEVEL_END = 0;
constexpr uint64_t CV_DONE = 1;

} // namespace pipette

#endif // PIPETTE_WORKLOADS_WORKLOAD_H
