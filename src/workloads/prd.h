/**
 * @file
 * PageRank-Delta (paper Sec. V-B, from Ligra): only vertices whose rank
 * changed by more than a threshold stay active. Fixed-point integer
 * arithmetic (2^-16 units, alpha = 54/64) keeps every variant
 * bit-identical to the host reference.
 *
 * Each iteration has two pipelined phases:
 *   phase 1 (distribute): stream active vertices; each vertex's
 *     contribution rides ahead of its neighbor stream as a CV header;
 *     the update stage accumulates into acc[] and builds the touched
 *     list;
 *   phase 2 (apply): stream the touched list; the update stage folds
 *     acc into rank/delta and rebuilds the active list.
 *
 * CV protocol: bit 63 clear = contribution header; bit 63 set =
 * PHASE1_END / PHASE2_END / DONE.
 */

#ifndef PIPETTE_WORKLOADS_PRD_H
#define PIPETTE_WORKLOADS_PRD_H

#include "workloads/graph.h"
#include "workloads/refimpl.h"
#include "workloads/workload.h"

namespace pipette {

/** PageRank-Delta workload over one input graph. */
class PrdWorkload : public WorkloadBase
{
  public:
    PrdWorkload(const Graph *g, PrdParams params);
    explicit PrdWorkload(const Graph *g) : PrdWorkload(g, PrdParams{}) {}

    std::string name() const override { return "prd"; }
    void build(BuildContext &ctx, Variant v) override;
    bool verify(System &sys) const override;

    static constexpr uint64_t HDR_BIT = 1ull << 63;
    static constexpr uint64_t PHASE1_END = HDR_BIT;
    static constexpr uint64_t PHASE2_END = HDR_BIT + 1;
    static constexpr uint64_t DONE = HDR_BIT + 2;

  private:
    struct Arrays
    {
        Addr off, ngh, deg, delta, acc, rank, active, touched, globals;
    };
    Arrays installArrays(BuildContext &ctx);

    void buildSerial(BuildContext &ctx);
    void buildDataParallel(BuildContext &ctx);
    void buildPipeline(BuildContext &ctx, bool useRa, bool streaming);

    Program *genStreamer(BuildContext &ctx, const Arrays &A,
                         bool emitOffsets);
    Program *genPump(BuildContext &ctx, Addr *handler);
    Program *genEnumerate(BuildContext &ctx, Addr *handler);
    Program *genFetchAcc(BuildContext &ctx, Addr *handler);
    Program *genUpdate(BuildContext &ctx, const Arrays &A, bool loadsAcc,
                       Addr *handler);

    const Graph *g_;
    PrdParams params_;
    std::vector<uint64_t> refRank_;
    Addr rankAddr_ = 0;
};

} // namespace pipette

#endif // PIPETTE_WORKLOADS_PRD_H
