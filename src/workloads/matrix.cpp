#include "workloads/matrix.h"

#include <algorithm>

namespace pipette {

SparseMatrix
SparseMatrix::transpose() const
{
    SparseMatrix t;
    t.n = n;
    t.rowPtr.assign(n + 1, 0);
    for (uint32_t c : colIdx)
        t.rowPtr[c + 1]++;
    for (uint32_t i = 0; i < n; i++)
        t.rowPtr[i + 1] += t.rowPtr[i];
    t.colIdx.resize(nnz());
    t.values.resize(nnz());
    std::vector<uint32_t> cursor(t.rowPtr.begin(), t.rowPtr.end() - 1);
    for (uint32_t r = 0; r < n; r++) {
        for (uint32_t k = rowPtr[r]; k < rowPtr[r + 1]; k++) {
            uint32_t c = colIdx[k];
            t.colIdx[cursor[c]] = r;
            t.values[cursor[c]] = values[k];
            cursor[c]++;
        }
    }
    return t;
}

SparseMatrix
makeSparseMatrix(uint32_t n, double avgNnz, uint64_t seed)
{
    Rng rng(seed);
    SparseMatrix m;
    m.n = n;
    m.rowPtr.assign(n + 1, 0);
    std::vector<std::vector<uint32_t>> rows(n);
    for (uint32_t r = 0; r < n; r++) {
        // Row lengths vary around the average (0.25x .. 1.75x).
        auto len = static_cast<uint32_t>(
            avgNnz * (0.25 + 1.5 * rng.uniformReal()) + 0.5);
        auto &row = rows[r];
        for (uint32_t k = 0; k < len; k++) {
            uint32_t c;
            if (rng.bernoulli(0.6)) {
                // Banded: near the diagonal.
                int64_t off =
                    static_cast<int64_t>(rng.uniformInt(0, 64)) - 32;
                int64_t cc = static_cast<int64_t>(r) + off;
                c = static_cast<uint32_t>(
                    std::clamp<int64_t>(cc, 0, n - 1));
            } else {
                c = static_cast<uint32_t>(rng.uniformInt(0, n - 1));
            }
            row.push_back(c);
        }
        std::sort(row.begin(), row.end());
        row.erase(std::unique(row.begin(), row.end()), row.end());
    }
    for (uint32_t r = 0; r < n; r++)
        m.rowPtr[r + 1] =
            m.rowPtr[r] + static_cast<uint32_t>(rows[r].size());
    m.colIdx.reserve(m.rowPtr[n]);
    m.values.reserve(m.rowPtr[n]);
    for (uint32_t r = 0; r < n; r++) {
        for (uint32_t c : rows[r]) {
            m.colIdx.push_back(c);
            // Small integer values; products stay in 64 bits.
            m.values.push_back(
                static_cast<uint32_t>(rng.uniformInt(1, 9)));
        }
    }
    return m;
}

std::vector<MatrixInput>
makeTable6Inputs(double scale)
{
    auto s = [scale](uint32_t x) {
        auto v = static_cast<uint32_t>(x * scale);
        return std::max(v, 64u);
    };
    std::vector<MatrixInput> inputs;
    inputs.push_back({"Am", "graph as matrix",
                      makeSparseMatrix(s(16384), 8.0, 101)});
    inputs.push_back({"Ca", "collaboration",
                      makeSparseMatrix(s(4096), 8.1, 202)});
    inputs.push_back({"Cg", "gel electrophoresis",
                      makeSparseMatrix(s(8192), 15.6, 303)});
    inputs.push_back({"Cu", "electromagnetics",
                      makeSparseMatrix(s(8192), 16.2, 404)});
    inputs.push_back({"Rn", "fluid dynamics",
                      makeSparseMatrix(s(3072), 49.7, 505)});
    inputs.push_back({"Pe", "structural",
                      makeSparseMatrix(s(6144), 52.9, 606)});
    return inputs;
}

} // namespace pipette
