#include "workloads/radii.h"

#include <algorithm>

namespace pipette {

namespace {
constexpr Reg QO{11};
constexpr Reg QI{12};
constexpr int64_t CHUNK = 8;

// Globals block layout (8-byte slots).
constexpr int64_t G_CURSOR_A = 0;
constexpr int64_t G_CURSIZE = 8;
constexpr int64_t G_NEXTIDX = 16;
constexpr int64_t G_PHASE = 24;
constexpr int64_t G_COUNT = 32;
constexpr int64_t G_CURF = 48;
constexpr int64_t G_NEXTF = 56;
constexpr int64_t G_CURSOR_B = 72;
constexpr int64_t G_ROUND = 88;
constexpr int64_t G_SAVE = 96;
} // namespace

RadiiWorkload::RadiiWorkload(const Graph *g, RadiiParams params)
    : g_(g), params_(params)
{
    refRadii_ = radiiReference(*g, params);
    sources_ = radiiSources(g->numVertices, params);
}

RadiiWorkload::Arrays
RadiiWorkload::installArrays(BuildContext &ctx)
{
    Arrays a;
    a.off = installU32(ctx.mem(), ctx.alloc, g_->offsets);
    a.ngh = installU32(ctx.mem(), ctx.alloc, g_->neighbors);
    std::vector<uint64_t> mask(g_->numVertices, 0);
    for (uint32_t i = 0; i < sources_.size(); i++)
        mask[sources_[i]] = 1ull << i;
    a.mask = installU64(ctx.mem(), ctx.alloc, mask);
    a.maskNext = ctx.alloc.alloc64(g_->numVertices);
    ctx.mem().fill(a.maskNext, 8ull * g_->numVertices, 0);
    a.radii = ctx.alloc.alloc32(g_->numVertices);
    ctx.mem().fill(a.radii, 4ull * g_->numVertices, 0);
    radiiAddr_ = a.radii;
    std::vector<uint32_t> fringe = sources_;
    std::sort(fringe.begin(), fringe.end());
    a.fringe0 = static_cast<uint32_t>(fringe.size());
    fringe.resize(g_->numVertices + 1, 0);
    a.fA = installU32(ctx.mem(), ctx.alloc, fringe);
    a.fB = ctx.alloc.alloc32(g_->numVertices + 1);
    a.globals = ctx.alloc.alloc(128);
    ctx.mem().fill(a.globals, 128, 0);
    ctx.mem().write(a.globals + G_ROUND, 8, 1);
    return a;
}

bool
RadiiWorkload::verify(System &sys) const
{
    auto got = sys.memory().readArray32(radiiAddr_, g_->numVertices);
    for (uint32_t v = 0; v < g_->numVertices; v++) {
        if (got[v] != refRadii_[v]) {
            warn("radii mismatch at v=", v, ": got ", got[v], " want ",
                 refRadii_[v]);
            return false;
        }
    }
    return true;
}

void
RadiiWorkload::build(BuildContext &ctx, Variant v)
{
    switch (v) {
      case Variant::Serial:
        buildSerial(ctx);
        break;
      case Variant::DataParallel:
        buildDataParallel(ctx);
        break;
      case Variant::Pipette:
        buildPipeline(ctx, true, false);
        break;
      case Variant::PipetteNoRa:
        buildPipeline(ctx, false, false);
        break;
      case Variant::Streaming:
        buildPipeline(ctx, true, true);
        break;
      default:
        fatal("radii: unsupported variant");
    }
}

// --------------------------------------------------------------- serial

void
RadiiWorkload::buildSerial(BuildContext &ctx)
{
    Arrays A = installArrays(ctx);
    Program *p = ctx.newProgram("radii-serial");
    Asm a(p);
    // r1=off r2=ngh r3=mask r4=curF r5=nextF r6=curSize r7=nextIdx
    // r8=maskNext r9=i; r10..r15 scratch
    auto round = a.label();
    auto vloop = a.label();
    auto eloop = a.label();
    auto enext = a.label();
    auto skipApp = a.label();
    auto edone = a.label();
    auto updateDone = a.label();
    auto aloop = a.label();
    auto adone = a.label();
    auto done = a.label();

    a.bind(round);
    a.li(R::r9, 0);
    a.bind(vloop);
    a.bgeu(R::r9, R::r6, updateDone);
    a.slli(R::r10, R::r9, 2);
    a.add(R::r10, R::r4, R::r10);
    a.lw(R::r10, R::r10, 0); // v
    a.slli(Reg{15}, R::r10, 3);
    a.add(Reg{15}, R::r3, Reg{15});
    a.ld(Reg{15}, Reg{15}, 0); // vm = mask[v]
    a.slli(Reg{11}, R::r10, 2);
    a.add(Reg{11}, R::r1, Reg{11});
    a.lw(Reg{12}, Reg{11}, 4); // end
    a.lw(Reg{11}, Reg{11}, 0); // start
    a.bind(eloop);
    a.bgeu(Reg{11}, Reg{12}, edone);
    a.slli(R::r10, Reg{11}, 2);
    a.add(R::r10, R::r2, R::r10);
    a.lw(R::r10, R::r10, 0); // ngh
    a.slli(Reg{13}, R::r10, 3);
    a.add(Reg{14}, R::r3, Reg{13});
    a.ld(Reg{14}, Reg{14}, 0); // mask[ngh]
    a.xori(Reg{14}, Reg{14}, -1);
    a.and_(Reg{14}, Reg{15}, Reg{14}); // t = vm & ~mask[ngh]
    a.beqi(Reg{14}, 0, enext);
    a.add(Reg{13}, R::r8, Reg{13}); // &maskNext[ngh]
    a.ld(Reg{14}, Reg{13}, 0);      // mn
    a.bnei(Reg{14}, 0, skipApp);
    a.slli(Reg{14}, R::r7, 2);
    a.add(Reg{14}, R::r5, Reg{14});
    a.sw(R::r10, Reg{14}, 0); // append ngh
    a.addi(R::r7, R::r7, 1);
    a.bind(skipApp);
    a.ld(Reg{14}, Reg{13}, 0);
    a.or_(Reg{14}, Reg{14}, Reg{15});
    a.sd(Reg{14}, Reg{13}, 0);
    a.bind(enext);
    a.addi(Reg{11}, Reg{11}, 1);
    a.jmp(eloop);
    a.bind(edone);
    a.addi(R::r9, R::r9, 1);
    a.jmp(vloop);

    a.bind(updateDone);
    a.beqi(R::r7, 0, done);
    // Apply phase over nextF[0..nextIdx).
    a.li(R::r9, 0);
    a.li(Reg{13}, A.radii);
    a.li(Reg{14}, A.globals + G_ROUND);
    a.ld(Reg{14}, Reg{14}, 0); // round
    a.bind(aloop);
    a.bgeu(R::r9, R::r7, adone);
    a.slli(R::r10, R::r9, 2);
    a.add(R::r10, R::r5, R::r10);
    a.lw(R::r10, R::r10, 0); // w
    a.slli(Reg{11}, R::r10, 3);
    a.add(Reg{12}, R::r8, Reg{11});
    a.ld(Reg{15}, Reg{12}, 0); // a = maskNext[w]
    a.sd(R::zero, Reg{12}, 0);
    a.add(Reg{12}, R::r3, Reg{11});
    a.ld(Reg{11}, Reg{12}, 0); // m
    a.or_(Reg{11}, Reg{11}, Reg{15});
    a.sd(Reg{11}, Reg{12}, 0);
    a.slli(Reg{11}, R::r10, 2);
    a.add(Reg{11}, Reg{13}, Reg{11});
    a.sw(Reg{14}, Reg{11}, 0); // radii[w] = round
    a.addi(R::r9, R::r9, 1);
    a.jmp(aloop);
    a.bind(adone);
    a.addi(Reg{14}, Reg{14}, 1);
    a.li(R::r10, A.globals + G_ROUND);
    a.sd(Reg{14}, R::r10, 0);
    a.mov(R::r10, R::r4);
    a.mov(R::r4, R::r5);
    a.mov(R::r5, R::r10);
    a.mov(R::r6, R::r7);
    a.li(R::r7, 0);
    a.jmp(round);
    a.bind(done);
    a.halt();
    a.finalize();

    ThreadSpec &t = ctx.spec.addThread(0, 0, p);
    t.initRegs[1] = A.off;
    t.initRegs[2] = A.ngh;
    t.initRegs[3] = A.mask;
    t.initRegs[4] = A.fA;
    t.initRegs[5] = A.fB;
    t.initRegs[6] = A.fringe0;
    t.initRegs[8] = A.maskNext;
}

// -------------------------------------------------------- data-parallel

void
RadiiWorkload::buildDataParallel(BuildContext &ctx)
{
    Arrays A = installArrays(ctx);
    ctx.mem().write(A.globals + G_CURSIZE, 8, A.fringe0);
    ctx.mem().write(A.globals + G_CURF, 8, A.fA);
    ctx.mem().write(A.globals + G_NEXTF, 8, A.fB);

    uint32_t nThreads = ctx.numCores() * ctx.smtThreads();

    Program *p = ctx.newProgram("radii-dp");
    Asm a(p);
    // r1=off r2=ngh r3=mask r4=G r5=tid r6=curF r7=curSize r8=maskNext
    // r9=i r10=chunkEnd r11..r15 scratch
    auto round = a.label();
    auto chunk = a.label();
    auto noclamp = a.label();
    auto vloop = a.label();
    auto eloop = a.label();
    auto enext = a.label();
    auto edone = a.label();
    auto updateEnd = a.label();
    auto applyChunk = a.label();
    auto applyNoclamp = a.label();
    auto aloop = a.label();
    auto applyEnd = a.label();
    auto notT0 = a.label();
    auto done = a.label();

    a.bind(round);
    a.ld(R::r6, R::r4, G_CURF);
    a.ld(R::r7, R::r4, G_CURSIZE);
    a.bind(chunk);
    a.li(Reg{11}, CHUNK);
    a.amoadd(R::r9, R::r4, Reg{11}); // cursor A at offset 0
    a.bgeu(R::r9, R::r7, updateEnd);
    a.addi(R::r10, R::r9, CHUNK);
    a.bltu(R::r10, R::r7, noclamp);
    a.mov(R::r10, R::r7);
    a.bind(noclamp);
    a.bind(vloop);
    a.bgeu(R::r9, R::r10, chunk);
    a.slli(Reg{11}, R::r9, 2);
    a.add(Reg{11}, R::r6, Reg{11});
    a.lw(Reg{11}, Reg{11}, 0); // v
    a.slli(Reg{15}, Reg{11}, 3);
    a.add(Reg{15}, R::r3, Reg{15});
    a.ld(Reg{15}, Reg{15}, 0); // vm
    a.slli(Reg{12}, Reg{11}, 2);
    a.add(Reg{12}, R::r1, Reg{12});
    a.lw(Reg{13}, Reg{12}, 4); // end (temporarily)
    a.lw(Reg{12}, Reg{12}, 0); // start
    // Move end into r11 (v is dead).
    a.mov(Reg{11}, Reg{13});
    a.bind(eloop);
    a.bgeu(Reg{12}, Reg{11}, edone);
    a.slli(Reg{13}, Reg{12}, 2);
    a.add(Reg{13}, R::r2, Reg{13});
    a.lw(Reg{13}, Reg{13}, 0); // ngh
    a.slli(Reg{14}, Reg{13}, 3);
    a.add(Reg{14}, R::r3, Reg{14});
    a.ld(Reg{14}, Reg{14}, 0);
    a.xori(Reg{14}, Reg{14}, -1);
    a.and_(Reg{14}, Reg{15}, Reg{14}); // t
    a.beqi(Reg{14}, 0, enext);
    a.slli(Reg{14}, Reg{13}, 3);
    a.add(Reg{14}, R::r8, Reg{14});
    a.amoor(Reg{14}, Reg{14}, Reg{15}); // old = fetch-or
    a.bnei(Reg{14}, 0, enext);
    // First toucher appends (exactly once per vertex per round).
    a.addi(Reg{14}, R::r4, G_NEXTIDX);
    a.li(R::r10, 1);
    a.amoadd(R::r10, Reg{14}, R::r10);
    a.ld(Reg{14}, R::r4, G_NEXTF);
    a.slli(R::r10, R::r10, 2);
    a.add(Reg{14}, Reg{14}, R::r10);
    a.sw(Reg{13}, Reg{14}, 0);
    // Restore the chunk end (claims are CHUNK-aligned).
    a.andi(R::r10, R::r9, ~(CHUNK - 1));
    a.addi(R::r10, R::r10, CHUNK);
    {
        auto nc = a.label();
        a.bltu(R::r10, R::r7, nc);
        a.mov(R::r10, R::r7);
        a.bind(nc);
    }
    a.bind(enext);
    a.addi(Reg{12}, Reg{12}, 1);
    a.jmp(eloop);
    a.bind(edone);
    a.addi(R::r9, R::r9, 1);
    a.jmp(vloop);

    a.bind(updateEnd);
    emitBarrier(a, R::r4, G_COUNT, G_PHASE, nThreads, Reg{11}, Reg{12},
                Reg{13});
    // Apply phase: chunked over nextF[0..nextIdx). r7 <- bound,
    // r6 <- round (curF is reloaded next round).
    a.ld(R::r7, R::r4, G_NEXTIDX);
    a.ld(R::r6, R::r4, G_ROUND);
    a.bind(applyChunk);
    a.li(Reg{11}, CHUNK);
    a.addi(Reg{12}, R::r4, G_CURSOR_B);
    a.amoadd(R::r9, Reg{12}, Reg{11});
    a.bgeu(R::r9, R::r7, applyEnd);
    a.addi(R::r10, R::r9, CHUNK);
    a.bltu(R::r10, R::r7, applyNoclamp);
    a.mov(R::r10, R::r7);
    a.bind(applyNoclamp);
    a.bind(aloop);
    a.bgeu(R::r9, R::r10, applyChunk);
    a.ld(Reg{11}, R::r4, G_NEXTF);
    a.slli(Reg{12}, R::r9, 2);
    a.add(Reg{11}, Reg{11}, Reg{12});
    a.lw(Reg{11}, Reg{11}, 0); // w
    a.slli(Reg{12}, Reg{11}, 3);
    a.add(Reg{13}, R::r8, Reg{12});
    a.ld(Reg{14}, Reg{13}, 0); // a
    a.sd(R::zero, Reg{13}, 0);
    a.add(Reg{13}, R::r3, Reg{12});
    a.ld(Reg{15}, Reg{13}, 0); // m
    a.or_(Reg{15}, Reg{15}, Reg{14});
    a.sd(Reg{15}, Reg{13}, 0);
    a.li(Reg{13}, A.radii);
    a.slli(Reg{12}, Reg{11}, 2);
    a.add(Reg{13}, Reg{13}, Reg{12});
    a.sw(R::r6, Reg{13}, 0); // radii[w] = round
    a.addi(R::r9, R::r9, 1);
    a.jmp(aloop);

    a.bind(applyEnd);
    emitBarrier(a, R::r4, G_COUNT, G_PHASE, nThreads, Reg{11}, Reg{12},
                Reg{13});
    a.bnei(R::r5, 0, notT0);
    a.ld(Reg{11}, R::r4, G_CURF);
    a.ld(Reg{12}, R::r4, G_NEXTF);
    a.sd(Reg{12}, R::r4, G_CURF);
    a.sd(Reg{11}, R::r4, G_NEXTF);
    a.ld(Reg{11}, R::r4, G_NEXTIDX);
    a.sd(Reg{11}, R::r4, G_CURSIZE);
    a.sd(R::zero, R::r4, G_NEXTIDX);
    a.sd(R::zero, R::r4, G_CURSOR_A);
    a.sd(R::zero, R::r4, G_CURSOR_B);
    a.ld(Reg{11}, R::r4, G_ROUND);
    a.addi(Reg{11}, Reg{11}, 1);
    a.sd(Reg{11}, R::r4, G_ROUND);
    a.bind(notT0);
    emitBarrier(a, R::r4, G_COUNT, G_PHASE, nThreads, Reg{11}, Reg{12},
                Reg{13});
    a.ld(Reg{11}, R::r4, G_CURSIZE);
    a.beqi(Reg{11}, 0, done);
    a.jmp(round);
    a.bind(done);
    a.halt();
    a.finalize();

    for (CoreId c = 0; c < ctx.numCores(); c++) {
        for (ThreadId t = 0; t < ctx.smtThreads(); t++) {
            ThreadSpec &ts = ctx.spec.addThread(c, t, p);
            ts.initRegs[1] = A.off;
            ts.initRegs[2] = A.ngh;
            ts.initRegs[3] = A.mask;
            ts.initRegs[4] = A.globals;
            ts.initRegs[5] = c * ctx.smtThreads() + t;
            ts.initRegs[8] = A.maskNext;
        }
    }
}

// ------------------------------------------------------ pipeline stages

Program *
RadiiWorkload::genFringe(BuildContext &ctx, bool emitOffsets)
{
    Program *p = ctx.newProgram("radii-fringe");
    Asm a(p);
    // r1=curF r2=nextF r3=curSize r4=i r5=v r6=mask
    // r8=off (if emitOffsets) r9/r10 scratch
    auto level = a.label();
    auto vloop = a.label();
    auto next = a.label();

    a.bind(level);
    a.li(R::r4, 0);
    a.bind(vloop);
    a.bgeu(R::r4, R::r3, next);
    a.slli(R::r5, R::r4, 2);
    a.add(R::r5, R::r1, R::r5);
    a.lw(R::r5, R::r5, 0); // v
    a.slli(R::r9, R::r5, 3);
    a.add(R::r9, R::r6, R::r9);
    a.ld(R::r9, R::r9, 0); // mask[v]
    a.enqc(QO, R::r9);     // per-vertex mask header
    if (!emitOffsets) {
        a.mov(QO, R::r5);
    } else {
        a.slli(R::r9, R::r5, 2);
        a.add(R::r9, R::r8, R::r9);
        a.lw(R::r10, R::r9, 4);
        a.lw(R::r9, R::r9, 0);
        a.mov(QO, R::r9);
        a.mov(QO, R::r10);
    }
    a.addi(R::r4, R::r4, 1);
    a.jmp(vloop);
    a.bind(next);
    a.li(R::r5, static_cast<uint64_t>(LEVEL_END));
    a.enqc(QO, R::r5);
    a.mov(R::r3, QI);
    a.mov(R::r5, R::r1);
    a.mov(R::r1, R::r2);
    a.mov(R::r2, R::r5);
    a.bnei(R::r3, 0, level);
    a.li(R::r5, static_cast<uint64_t>(DONE));
    a.enqc(QO, R::r5);
    a.halt();
    a.finalize();
    return p;
}

Program *
RadiiWorkload::genPump(BuildContext &ctx, Addr *handler)
{
    Program *p = ctx.newProgram("radii-pump");
    Asm a(p);
    auto loop = a.label("loop");
    auto hdl = a.label("hdl");
    auto fin = a.label("fin");
    a.bind(loop);
    a.mov(QO, QI);
    a.jmp(loop);
    a.bind(hdl);
    a.enqc(QO, R::cvval);
    a.li(R::r1, static_cast<uint64_t>(DONE));
    a.beq(R::cvval, R::r1, fin);
    a.jr(R::cvret);
    a.bind(fin);
    a.halt();
    a.finalize();
    *handler = p->labels().at("hdl");
    return p;
}

Program *
RadiiWorkload::genEnumerate(BuildContext &ctx, Addr *handler)
{
    Program *p = ctx.newProgram("radii-enumerate");
    Asm a(p);
    auto loop = a.label("loop");
    auto eloop = a.label();
    auto hdl = a.label("hdl");
    auto fin = a.label("fin");
    a.bind(loop);
    a.mov(R::r2, QI);
    a.mov(R::r3, QI);
    a.bind(eloop);
    a.bgeu(R::r2, R::r3, loop);
    a.slli(R::r4, R::r2, 2);
    a.add(R::r4, R::r1, R::r4);
    a.lw(QO, R::r4, 0);
    a.addi(R::r2, R::r2, 1);
    a.jmp(eloop);
    a.bind(hdl);
    a.enqc(QO, R::cvval);
    a.li(R::r5, static_cast<uint64_t>(DONE));
    a.beq(R::cvval, R::r5, fin);
    a.jr(R::cvret);
    a.bind(fin);
    a.halt();
    a.finalize();
    *handler = p->labels().at("hdl");
    return p;
}

Program *
RadiiWorkload::genFetchMask(BuildContext &ctx, Addr *handler)
{
    Program *p = ctx.newProgram("radii-fetchmask");
    Asm a(p);
    auto loop = a.label("loop");
    auto hdl = a.label("hdl");
    auto fin = a.label("fin");
    a.bind(loop);
    a.mov(R::r2, QI);
    a.slli(R::r3, R::r2, 3);
    a.add(R::r3, R::r1, R::r3);
    a.mov(QO, R::r2);
    a.ld(QO, R::r3, 0);
    a.jmp(loop);
    a.bind(hdl);
    a.enqc(QO, R::cvval);
    a.li(R::r5, static_cast<uint64_t>(DONE));
    a.beq(R::cvval, R::r5, fin);
    a.jr(R::cvret);
    a.bind(fin);
    a.halt();
    a.finalize();
    *handler = p->labels().at("hdl");
    return p;
}

Program *
RadiiWorkload::genUpdate(BuildContext &ctx, const Arrays &A, Addr *handler)
{
    Program *p = ctx.newProgram("radii-update");
    Asm a(p);
    // r1=mask r2=nextF r3=nextIdx r4=maskNext r6=other fringe
    // r10=current vertex's mask (set by the header CV handler)
    auto loop = a.label("loop");
    auto skipApp = a.label();
    auto hdl = a.label("hdl");
    auto ctl = a.label();
    auto aloop = a.label();
    auto adone = a.label();
    auto fin = a.label("fin");

    a.li(R::r3, 0);
    a.bind(loop);
    a.mov(R::r5, QI); // ngh
    a.mov(R::r7, QI); // mask[ngh] (stable within a round)
    a.xori(R::r7, R::r7, -1);
    a.and_(R::r7, R::r10, R::r7); // t = vm & ~mask[ngh]
    a.beqi(R::r7, 0, loop);
    a.slli(R::r8, R::r5, 3);
    a.add(R::r8, R::r4, R::r8); // &maskNext[ngh]
    a.ld(R::r7, R::r8, 0);      // mn
    a.bnei(R::r7, 0, skipApp);
    a.slli(R::r9, R::r3, 2);
    a.add(R::r9, R::r2, R::r9);
    a.sw(R::r5, R::r9, 0); // append
    a.addi(R::r3, R::r3, 1);
    a.bind(skipApp);
    a.ld(R::r7, R::r8, 0);
    a.or_(R::r7, R::r7, R::r10);
    a.sd(R::r7, R::r8, 0);
    a.jmp(loop);

    a.bind(hdl);
    a.srli(R::r5, R::cvval, 63);
    a.bnei(R::r5, 0, ctl);
    a.mov(R::r10, R::cvval); // mask header
    a.jr(R::cvret);
    a.bind(ctl);
    a.li(R::r5, static_cast<uint64_t>(DONE));
    a.beq(R::cvval, R::r5, fin);
    // LEVEL_END: apply phase. r13/r14 (cvval/cvqid) are scratch here.
    a.li(R::cvqid, A.globals + G_SAVE);
    a.sd(R::r6, R::cvqid, 0); // save the other-fringe pointer
    a.li(R::r7, A.radii);
    a.li(R::cvqid, A.globals + G_ROUND);
    a.ld(R::r8, R::cvqid, 0); // round
    a.li(R::r5, 0);
    a.bind(aloop);
    a.bgeu(R::r5, R::r3, adone);
    a.slli(R::cvval, R::r5, 2);
    a.add(R::cvval, R::r2, R::cvval);
    a.lw(R::r6, R::cvval, 0); // w
    a.slli(R::cvval, R::r6, 3);
    a.add(R::cvqid, R::r4, R::cvval); // &maskNext[w]
    a.ld(R::r9, R::cvqid, 0);
    a.sd(R::zero, R::cvqid, 0);
    a.add(R::cvqid, R::r1, R::cvval); // &mask[w]
    a.ld(R::r10, R::cvqid, 0);
    a.or_(R::r10, R::r10, R::r9);
    a.sd(R::r10, R::cvqid, 0);
    a.slli(R::cvval, R::r6, 2);
    a.add(R::cvval, R::r7, R::cvval);
    a.sw(R::r8, R::cvval, 0); // radii[w] = round
    a.addi(R::r5, R::r5, 1);
    a.jmp(aloop);
    a.bind(adone);
    a.addi(R::r8, R::r8, 1);
    a.li(R::cvqid, A.globals + G_ROUND);
    a.sd(R::r8, R::cvqid, 0);
    a.mov(QO, R::r3); // feedback: next fringe size
    a.li(R::cvqid, A.globals + G_SAVE);
    a.ld(R::r6, R::cvqid, 0); // restore other fringe
    a.mov(R::cvval, R::r2);
    a.mov(R::r2, R::r6);
    a.mov(R::r6, R::cvval);
    a.li(R::r3, 0);
    a.jr(R::cvret);
    a.bind(fin);
    a.halt();
    a.finalize();
    *handler = p->labels().at("hdl");
    return p;
}

void
RadiiWorkload::buildPipeline(BuildContext &ctx, bool useRa,
                             bool streaming)
{
    fatal_if(streaming && ctx.numCores() < 4,
             "streaming radii needs 4 cores");
    Arrays A = installArrays(ctx);

    auto addMap = [](ThreadSpec &t, Reg r, QueueId q, QueueDir d) {
        t.queueMaps.push_back({r.idx, q, d});
    };
    auto initFringe = [&](ThreadSpec &t, bool emitOffsets) {
        t.initRegs[1] = A.fA;
        t.initRegs[2] = A.fB;
        t.initRegs[3] = A.fringe0;
        t.initRegs[6] = A.mask;
        if (emitOffsets)
            t.initRegs[8] = A.off;
    };
    auto initUpdate = [&](ThreadSpec &t) {
        t.initRegs[1] = A.mask;
        t.initRegs[2] = A.fB;
        t.initRegs[6] = A.fA;
        t.initRegs[4] = A.maskNext;
    };

    if (streaming) {
        Program *fr = genFringe(ctx, false);
        ThreadSpec &t0 = ctx.spec.addThread(0, 0, fr);
        initFringe(t0, false);
        addMap(t0, QO, 0, QueueDir::Out);
        addMap(t0, QI, 2, QueueDir::In);
        ctx.spec.ras.push_back({0, 0, 1, A.off, 4, RaMode::IndirectPair});

        Addr h1;
        Program *pump1 = genPump(ctx, &h1);
        ThreadSpec &t1 = ctx.spec.addThread(1, 0, pump1);
        t1.deqHandler = static_cast<int64_t>(h1);
        addMap(t1, QI, 0, QueueDir::In);
        addMap(t1, QO, 1, QueueDir::Out);
        ctx.spec.ras.push_back({1, 1, 2, A.ngh, 4, RaMode::Scan});
        ctx.spec.connectors.push_back({0, 1, 1, 0});

        Addr h2;
        Program *pump2 = genPump(ctx, &h2);
        ThreadSpec &t2 = ctx.spec.addThread(2, 0, pump2);
        t2.deqHandler = static_cast<int64_t>(h2);
        addMap(t2, QI, 0, QueueDir::In);
        addMap(t2, QO, 1, QueueDir::Out);
        ctx.spec.ras.push_back({2, 1, 2, A.mask, 8, RaMode::IndirectKV});
        ctx.spec.connectors.push_back({1, 2, 2, 0});

        Addr hU;
        Program *upd = genUpdate(ctx, A, &hU);
        ThreadSpec &t3 = ctx.spec.addThread(3, 0, upd);
        t3.deqHandler = static_cast<int64_t>(hU);
        initUpdate(t3);
        addMap(t3, QI, 0, QueueDir::In);
        addMap(t3, QO, 1, QueueDir::Out);
        ctx.spec.connectors.push_back({2, 2, 3, 0});
        ctx.spec.connectors.push_back({3, 1, 0, 2});
        ctx.spec.queueCaps.push_back({0, 2, 4});
        ctx.spec.queueCaps.push_back({3, 1, 4});
        return;
    }

    if (useRa) {
        Program *fr = genFringe(ctx, false);
        ThreadSpec &t0 = ctx.spec.addThread(0, 0, fr);
        initFringe(t0, false);
        addMap(t0, QO, 0, QueueDir::Out);
        addMap(t0, QI, 4, QueueDir::In);
        ctx.spec.ras.push_back({0, 0, 1, A.off, 4, RaMode::IndirectPair});
        ctx.spec.ras.push_back({0, 1, 2, A.ngh, 4, RaMode::Scan});
        ctx.spec.ras.push_back({0, 2, 3, A.mask, 8, RaMode::IndirectKV});
        Addr hU;
        Program *upd = genUpdate(ctx, A, &hU);
        ThreadSpec &t1 = ctx.spec.addThread(0, 1, upd);
        t1.deqHandler = static_cast<int64_t>(hU);
        initUpdate(t1);
        addMap(t1, QI, 3, QueueDir::In);
        addMap(t1, QO, 4, QueueDir::Out);
        ctx.spec.queueCaps.push_back({0, 0, 16});
        ctx.spec.queueCaps.push_back({0, 4, 4});
        return;
    }

    Program *fr = genFringe(ctx, true);
    ThreadSpec &t0 = ctx.spec.addThread(0, 0, fr);
    initFringe(t0, true);
    addMap(t0, QO, 0, QueueDir::Out);
    addMap(t0, QI, 3, QueueDir::In);
    Addr hE;
    Program *en = genEnumerate(ctx, &hE);
    ThreadSpec &t1 = ctx.spec.addThread(0, 1, en);
    t1.deqHandler = static_cast<int64_t>(hE);
    t1.initRegs[1] = A.ngh;
    addMap(t1, QI, 0, QueueDir::In);
    addMap(t1, QO, 1, QueueDir::Out);
    Addr hF;
    Program *fm = genFetchMask(ctx, &hF);
    ThreadSpec &t2 = ctx.spec.addThread(0, 2, fm);
    t2.deqHandler = static_cast<int64_t>(hF);
    t2.initRegs[1] = A.mask;
    addMap(t2, QI, 1, QueueDir::In);
    addMap(t2, QO, 2, QueueDir::Out);
    Addr hU;
    Program *upd = genUpdate(ctx, A, &hU);
    ThreadSpec &t3 = ctx.spec.addThread(0, 3, upd);
    t3.deqHandler = static_cast<int64_t>(hU);
    initUpdate(t3);
    addMap(t3, QI, 2, QueueDir::In);
    addMap(t3, QO, 3, QueueDir::Out);
    ctx.spec.queueCaps.push_back({0, 3, 4});
}

} // namespace pipette
