/**
 * @file
 * Breadth-first search (paper Sec. II, Fig. 1): the flagship workload.
 * Implements serial (PBFS-style), data-parallel (CAS-claimed distances,
 * shared fringe, barriers), and Pipette pipelines of configurable depth
 * (2/3/4 stages) with or without reference accelerators (Fig. 15), plus
 * the streaming-multicore placement and the multicore-Pipette version
 * with cross-core neighbor partitioning (Fig. 17).
 *
 * Pipeline stages follow Fig. 1(d): process current fringe -> enumerate
 * neighbors -> fetch distances -> update data, decoupled across each
 * long-latency indirection, with level changes and termination signaled
 * through control values (CV_LEVEL_END / CV_DONE) and the next-level
 * fringe size fed back through a dedicated queue.
 */

#ifndef PIPETTE_WORKLOADS_BFS_H
#define PIPETTE_WORKLOADS_BFS_H

#include "workloads/graph.h"
#include "workloads/refimpl.h"
#include "workloads/workload.h"

namespace pipette {

/** BFS workload over one input graph. */
class BfsWorkload : public WorkloadBase
{
  public:
    struct Options
    {
        uint32_t src = 0;
        /** Pipeline stages for Pipette variants (2, 3, or 4; Fig. 15). */
        uint32_t depth = 4;
    };

    explicit BfsWorkload(const Graph *g) : BfsWorkload(g, Options{}) {}
    BfsWorkload(const Graph *g, Options opt);

    std::string name() const override { return "bfs"; }
    void build(BuildContext &ctx, Variant v) override;
    bool verify(System &sys) const override;
    bool supports(Variant) const override { return true; }

  private:
    struct Arrays
    {
        Addr off, ngh, dist, fA, fB, globals;
    };
    Arrays installArrays(BuildContext &ctx, uint32_t numFringes = 2);

    void buildSerial(BuildContext &ctx);
    void buildDataParallel(BuildContext &ctx);
    void buildPipeline(BuildContext &ctx, bool useRa, bool streaming);
    void buildMulticore(BuildContext &ctx);
    /** Fig. 17 replicated-pipeline build (bfs_multicore.cpp). */
    void buildMulticoreImpl(BuildContext &ctx);

    // Stage program generators (see bfs.cpp for register conventions).
    Program *genFringe(BuildContext &ctx, bool emitOffsets,
                       bool emitNeighbors, Addr *handler);
    Program *genPump(BuildContext &ctx, Addr *handler);
    Program *genEnumerate(BuildContext &ctx, Addr *handler);
    Program *genFetchDist(BuildContext &ctx, Addr *handler);
    Program *genUpdate(BuildContext &ctx, bool loadsDist, Addr *handler);

    const Graph *g_;
    Options opt_;
    std::vector<uint32_t> refDist_;
    Addr distAddr_ = 0;
};

} // namespace pipette

#endif // PIPETTE_WORKLOADS_BFS_H
