/**
 * @file
 * Host-side sparse matrices (CSR) with integer values, plus generators
 * approximating the paper's Table VI inputs by average non-zeros per
 * row. Integer values keep the mini-ISA integer-only while preserving
 * the memory behaviour of the SpMM kernel.
 */

#ifndef PIPETTE_WORKLOADS_MATRIX_H
#define PIPETTE_WORKLOADS_MATRIX_H

#include <cstdint>
#include <string>
#include <vector>

#include "sim/rng.h"

namespace pipette {

/** CSR sparse matrix with 32-bit coordinates and values. */
struct SparseMatrix
{
    uint32_t n = 0; ///< square: n x n
    std::vector<uint32_t> rowPtr;  // n + 1
    std::vector<uint32_t> colIdx;  // nnz, sorted within each row
    std::vector<uint32_t> values;  // nnz

    uint32_t nnz() const { return static_cast<uint32_t>(colIdx.size()); }
    double
    avgNnzPerRow() const
    {
        return n ? static_cast<double>(nnz()) / n : 0.0;
    }

    /** Transpose (gives CSC view of the same matrix). */
    SparseMatrix transpose() const;
};

/**
 * Random sparse matrix with roughly `avgNnz` non-zeros per row. Column
 * positions are a blend of banded (local) and uniform (scattered)
 * placement, like the physical-simulation matrices in Table VI.
 */
SparseMatrix makeSparseMatrix(uint32_t n, double avgNnz, uint64_t seed);

/** A named input approximating one Table VI row. */
struct MatrixInput
{
    std::string name;
    std::string domain;
    SparseMatrix matrix;
};

/** The six Table VI proxies (see EXPERIMENTS.md for the mapping). */
std::vector<MatrixInput> makeTable6Inputs(double scale = 1.0);

} // namespace pipette

#endif // PIPETTE_WORKLOADS_MATRIX_H
