/**
 * @file
 * Radii estimation (paper Sec. V-B, from Ligra): K simultaneous BFS
 * traversals tracked as per-vertex bit masks. Rounds are strictly
 * synchronous: the update phase reads mask[] and accumulates into
 * maskNext[], and an apply phase at the end of each round folds
 * maskNext into mask and stamps radii. This makes every variant
 * bit-identical to the host reference.
 *
 * The pipeline sends each fringe vertex's mask ahead of its neighbor
 * stream as a per-vertex control value (masks use < 60 bits; CVs with
 * bit 63 set are LEVEL_END / DONE).
 */

#ifndef PIPETTE_WORKLOADS_RADII_H
#define PIPETTE_WORKLOADS_RADII_H

#include "workloads/graph.h"
#include "workloads/refimpl.h"
#include "workloads/workload.h"

namespace pipette {

/** Radii-estimation workload over one input graph. */
class RadiiWorkload : public WorkloadBase
{
  public:
    RadiiWorkload(const Graph *g, RadiiParams params);
    explicit RadiiWorkload(const Graph *g)
        : RadiiWorkload(g, RadiiParams{})
    {
    }

    std::string name() const override { return "radii"; }
    void build(BuildContext &ctx, Variant v) override;
    bool verify(System &sys) const override;

    static constexpr uint64_t HDR_BIT = 1ull << 63;
    static constexpr uint64_t LEVEL_END = HDR_BIT;
    static constexpr uint64_t DONE = HDR_BIT + 1;

  private:
    struct Arrays
    {
        Addr off, ngh, mask, maskNext, radii, fA, fB, globals;
        uint32_t fringe0;
    };
    Arrays installArrays(BuildContext &ctx);

    void buildSerial(BuildContext &ctx);
    void buildDataParallel(BuildContext &ctx);
    void buildPipeline(BuildContext &ctx, bool useRa, bool streaming);

    Program *genFringe(BuildContext &ctx, bool emitOffsets);
    Program *genPump(BuildContext &ctx, Addr *handler);
    Program *genEnumerate(BuildContext &ctx, Addr *handler);
    Program *genFetchMask(BuildContext &ctx, Addr *handler);
    Program *genUpdate(BuildContext &ctx, const Arrays &A, Addr *handler);

    const Graph *g_;
    RadiiParams params_;
    std::vector<uint32_t> refRadii_;
    std::vector<uint32_t> sources_;
    Addr radiiAddr_ = 0;
};

} // namespace pipette

#endif // PIPETTE_WORKLOADS_RADII_H
