#include "workloads/prd.h"

namespace pipette {

namespace {
constexpr Reg QO{11};  ///< phase-1 output / main chain
constexpr Reg QI{12};  ///< feedback in (T1) / phase-1 data in (T2)
constexpr Reg QO2{9};  ///< T1: phase-2 output; T2: phase-2 data in
constexpr int64_t CHUNK = 8;

constexpr int64_t G_CURSOR_A = 0;
constexpr int64_t G_ACTIVE_CNT = 8;
constexpr int64_t G_TOUCH_IDX = 16;
constexpr int64_t G_PHASE = 24;
constexpr int64_t G_COUNT = 32;
constexpr int64_t G_CURSOR_B = 72;
constexpr int64_t G_ACTIVE_IDX = 80;
constexpr int64_t G_ITER = 88;
} // namespace

PrdWorkload::PrdWorkload(const Graph *g, PrdParams params)
    : g_(g), params_(params)
{
    refRank_ = prdReference(*g, params);
}

PrdWorkload::Arrays
PrdWorkload::installArrays(BuildContext &ctx)
{
    Arrays a;
    a.off = installU32(ctx.mem(), ctx.alloc, g_->offsets);
    a.ngh = installU32(ctx.mem(), ctx.alloc, g_->neighbors);
    std::vector<uint32_t> deg(g_->numVertices);
    std::vector<uint32_t> active(g_->numVertices);
    for (uint32_t v = 0; v < g_->numVertices; v++) {
        deg[v] = g_->degree(v);
        active[v] = v;
    }
    a.deg = installU32(ctx.mem(), ctx.alloc, deg);
    std::vector<uint64_t> delta(g_->numVertices, PrdParams::FP);
    a.delta = installU64(ctx.mem(), ctx.alloc, delta);
    a.acc = ctx.alloc.alloc64(g_->numVertices);
    ctx.mem().fill(a.acc, 8ull * g_->numVertices, 0);
    a.rank = ctx.alloc.alloc64(g_->numVertices);
    ctx.mem().fill(a.rank, 8ull * g_->numVertices, 0);
    rankAddr_ = a.rank;
    a.active = installU32(ctx.mem(), ctx.alloc, active);
    a.touched = ctx.alloc.alloc32(g_->numVertices + 1);
    a.globals = ctx.alloc.alloc(128);
    ctx.mem().fill(a.globals, 128, 0);
    ctx.mem().write(a.globals + G_ACTIVE_CNT, 8, g_->numVertices);
    return a;
}

bool
PrdWorkload::verify(System &sys) const
{
    auto got = sys.memory().readArray64(rankAddr_, g_->numVertices);
    for (uint32_t v = 0; v < g_->numVertices; v++) {
        if (got[v] != refRank_[v]) {
            warn("prd mismatch at v=", v, ": got ", got[v], " want ",
                 refRank_[v]);
            return false;
        }
    }
    return true;
}

void
PrdWorkload::build(BuildContext &ctx, Variant v)
{
    switch (v) {
      case Variant::Serial:
        buildSerial(ctx);
        break;
      case Variant::DataParallel:
        buildDataParallel(ctx);
        break;
      case Variant::Pipette:
        buildPipeline(ctx, true, false);
        break;
      case Variant::PipetteNoRa:
        buildPipeline(ctx, false, false);
        break;
      case Variant::Streaming:
        buildPipeline(ctx, true, true);
        break;
      default:
        fatal("prd: unsupported variant");
    }
}

// --------------------------------------------------------------- serial

void
PrdWorkload::buildSerial(BuildContext &ctx)
{
    Arrays A = installArrays(ctx);
    Program *p = ctx.newProgram("prd-serial");
    Asm a(p);
    // Persistent: r2=ngh r3=delta r4=deg r5=acc r10=54 r7=activePtr
    // r9=activeEnd r12=touchedPtr r8=activeWritePtr(phase2)
    auto iterTop = a.label();
    auto p1v = a.label();
    auto p1e = a.label();
    auto p1noT = a.label();
    auto p1done = a.label();
    auto p2loop = a.label();
    auto p2done = a.label();
    auto done = a.label();

    a.li(R::r10, PrdParams::ALPHA_NUM);
    a.li(Reg{14}, g_->numVertices); // activeCount
    a.bind(iterTop);
    a.beqi(Reg{14}, 0, done);
    a.li(R::r1, A.globals + G_ITER);
    a.ld(Reg{15}, R::r1, 0);
    a.bgei(Reg{15}, params_.maxIters, done);
    a.addi(Reg{15}, Reg{15}, 1);
    a.sd(Reg{15}, R::r1, 0);

    // ---- Phase 1: distribute.
    a.li(R::r7, A.active);
    a.slli(R::r9, Reg{14}, 2);
    a.add(R::r9, R::r7, R::r9);
    a.li(R::r12, A.touched);
    a.bind(p1v);
    a.bgeu(R::r7, R::r9, p1done);
    a.lw(Reg{13}, R::r7, 0); // v
    a.addi(R::r7, R::r7, 4);
    a.slli(R::r1, Reg{13}, 2);
    a.add(R::r1, R::r4, R::r1);
    a.lw(R::r1, R::r1, 0); // deg
    a.beqi(R::r1, 0, p1v);
    a.slli(Reg{15}, Reg{13}, 3);
    a.add(Reg{15}, R::r3, Reg{15});
    a.ld(Reg{15}, Reg{15}, 0); // delta
    a.mul(Reg{15}, Reg{15}, R::r10);
    a.srli(Reg{15}, Reg{15}, PrdParams::ALPHA_SHIFT);
    a.divu(Reg{14}, Reg{15}, R::r1); // contrib
    a.beqi(Reg{14}, 0, p1v);
    a.li(R::r1, A.off);
    a.slli(Reg{15}, Reg{13}, 2);
    a.add(R::r1, R::r1, Reg{15});
    a.lw(R::r6, R::r1, 0);   // e = start
    a.lw(Reg{15}, R::r1, 4); // end
    a.bind(p1e);
    a.bgeu(R::r6, Reg{15}, p1v);
    a.slli(Reg{11}, R::r6, 2);
    a.add(Reg{11}, R::r2, Reg{11});
    a.lw(Reg{11}, Reg{11}, 0); // ngh
    a.slli(Reg{13}, Reg{11}, 3);
    a.add(Reg{13}, R::r5, Reg{13});
    a.ld(R::r1, Reg{13}, 0); // a
    a.bnei(R::r1, 0, p1noT);
    a.sw(Reg{11}, R::r12, 0); // touched append
    a.addi(R::r12, R::r12, 4);
    a.bind(p1noT);
    a.add(R::r1, R::r1, Reg{14});
    a.sd(R::r1, Reg{13}, 0);
    a.addi(R::r6, R::r6, 1);
    a.jmp(p1e);

    // ---- Phase 2: apply.
    a.bind(p1done);
    a.li(R::r6, A.touched);
    a.li(R::r8, A.active);
    a.bind(p2loop);
    a.bgeu(R::r6, R::r12, p2done);
    a.lw(Reg{13}, R::r6, 0); // w
    a.addi(R::r6, R::r6, 4);
    a.slli(Reg{14}, Reg{13}, 3);
    a.add(Reg{15}, R::r5, Reg{14});
    a.ld(Reg{11}, Reg{15}, 0); // nd
    a.sd(R::zero, Reg{15}, 0);
    a.li(R::r1, A.rank);
    a.add(Reg{15}, R::r1, Reg{14});
    a.ld(R::r1, Reg{15}, 0);
    a.add(R::r1, R::r1, Reg{11});
    a.sd(R::r1, Reg{15}, 0);
    a.li(R::r1, PrdParams::EPS);
    a.bgeu(R::r1, Reg{11}, p2loop); // keep only nd > EPS
    a.add(Reg{15}, R::r3, Reg{14});
    a.sd(Reg{11}, Reg{15}, 0); // delta[w] = nd
    a.sw(Reg{13}, R::r8, 0);   // active append
    a.addi(R::r8, R::r8, 1 * 4);
    a.jmp(p2loop);
    a.bind(p2done);
    a.li(R::r1, A.active);
    a.sub(Reg{14}, R::r8, R::r1);
    a.srli(Reg{14}, Reg{14}, 2); // new activeCount
    a.jmp(iterTop);
    a.bind(done);
    a.halt();
    a.finalize();

    ThreadSpec &t = ctx.spec.addThread(0, 0, p);
    t.initRegs[2] = A.ngh;
    t.initRegs[3] = A.delta;
    t.initRegs[4] = A.deg;
    t.initRegs[5] = A.acc;
}

// -------------------------------------------------------- data-parallel

void
PrdWorkload::buildDataParallel(BuildContext &ctx)
{
    Arrays A = installArrays(ctx);
    uint32_t nThreads = ctx.numCores() * ctx.smtThreads();

    Program *p = ctx.newProgram("prd-dp");
    Asm a(p);
    // r1=G r2=ngh r3=delta r4=deg r5=acc r6=tid r9=i r10=chunkEnd
    // scratch r7 r8 r11..r15
    auto iterTop = a.label();
    auto p1chunk = a.label();
    auto p1nc = a.label();
    auto p1v = a.label();
    auto p1e = a.label();
    auto p1noT = a.label();
    auto p1edone = a.label();
    auto p1end = a.label();
    auto p2chunk = a.label();
    auto p2nc = a.label();
    auto p2v = a.label();
    auto p2skip = a.label();
    auto p2end = a.label();
    auto notT0 = a.label();
    auto done = a.label();

    a.bind(iterTop);
    a.ld(R::r7, R::r1, G_ACTIVE_CNT);
    a.beqi(R::r7, 0, done);
    a.ld(R::r8, R::r1, G_ITER);
    a.bgei(R::r8, params_.maxIters, done);

    // ---- Phase 1 over active[0..cnt).
    a.bind(p1chunk);
    a.li(Reg{11}, CHUNK);
    a.amoadd(R::r9, R::r1, Reg{11}); // cursor A
    a.bgeu(R::r9, R::r7, p1end);
    a.addi(R::r10, R::r9, CHUNK);
    a.bltu(R::r10, R::r7, p1nc);
    a.mov(R::r10, R::r7);
    a.bind(p1nc);
    a.bind(p1v);
    a.bgeu(R::r9, R::r10, p1chunk);
    a.li(Reg{13}, A.active);
    a.slli(Reg{12}, R::r9, 2);
    a.add(Reg{13}, Reg{13}, Reg{12});
    a.lw(Reg{13}, Reg{13}, 0); // v
    a.slli(Reg{12}, Reg{13}, 2);
    a.add(Reg{14}, R::r4, Reg{12});
    a.lw(Reg{14}, Reg{14}, 0); // deg
    a.beqi(Reg{14}, 0, p1edone);
    a.slli(Reg{15}, Reg{13}, 3);
    a.add(Reg{15}, R::r3, Reg{15});
    a.ld(Reg{15}, Reg{15}, 0); // delta
    a.li(R::r8, PrdParams::ALPHA_NUM);
    a.mul(Reg{15}, Reg{15}, R::r8);
    a.srli(Reg{15}, Reg{15}, PrdParams::ALPHA_SHIFT);
    a.divu(Reg{14}, Reg{15}, Reg{14}); // contrib
    a.beqi(Reg{14}, 0, p1edone);
    a.li(R::r8, A.off);
    a.add(R::r8, R::r8, Reg{12});
    a.lw(Reg{12}, R::r8, 0);  // e = start
    a.lw(Reg{13}, R::r8, 4);  // end
    a.bind(p1e);
    a.bgeu(Reg{12}, Reg{13}, p1edone);
    a.slli(Reg{15}, Reg{12}, 2);
    a.add(Reg{15}, R::r2, Reg{15});
    a.lw(Reg{15}, Reg{15}, 0); // ngh
    a.slli(R::r8, Reg{15}, 3);
    a.add(R::r8, R::r5, R::r8);
    a.amoadd(R::r8, R::r8, Reg{14}); // old = fetch-add contrib
    a.bnei(R::r8, 0, p1noT);
    // First toucher appends to the shared touched list.
    a.addi(R::r8, R::r1, G_TOUCH_IDX);
    a.li(R::r7, 1);
    a.amoadd(R::r7, R::r8, R::r7);
    a.li(R::r8, A.touched);
    a.slli(R::r7, R::r7, 2);
    a.add(R::r8, R::r8, R::r7);
    a.sw(Reg{15}, R::r8, 0);
    a.ld(R::r7, R::r1, G_ACTIVE_CNT); // restore r7 (phase-1 bound)
    a.bind(p1noT);
    a.addi(Reg{12}, Reg{12}, 1);
    a.jmp(p1e);
    a.bind(p1edone);
    a.addi(R::r9, R::r9, 1);
    a.jmp(p1v);

    a.bind(p1end);
    emitBarrier(a, R::r1, G_COUNT, G_PHASE, nThreads, Reg{11}, Reg{12},
                Reg{13});

    // ---- Phase 2 over touched[0..touchIdx).
    a.ld(R::r7, R::r1, G_TOUCH_IDX);
    a.bind(p2chunk);
    a.li(Reg{11}, CHUNK);
    a.addi(Reg{12}, R::r1, G_CURSOR_B);
    a.amoadd(R::r9, Reg{12}, Reg{11});
    a.bgeu(R::r9, R::r7, p2end);
    a.addi(R::r10, R::r9, CHUNK);
    a.bltu(R::r10, R::r7, p2nc);
    a.mov(R::r10, R::r7);
    a.bind(p2nc);
    a.bind(p2v);
    a.bgeu(R::r9, R::r10, p2chunk);
    a.li(Reg{13}, A.touched);
    a.slli(Reg{12}, R::r9, 2);
    a.add(Reg{13}, Reg{13}, Reg{12});
    a.lw(Reg{13}, Reg{13}, 0); // w
    a.slli(Reg{14}, Reg{13}, 3);
    a.add(Reg{15}, R::r5, Reg{14});
    a.ld(Reg{11}, Reg{15}, 0); // nd (phase 1 complete; exclusive owner)
    a.sd(R::zero, Reg{15}, 0);
    a.li(R::r8, A.rank);
    a.add(Reg{15}, R::r8, Reg{14});
    a.ld(R::r8, Reg{15}, 0);
    a.add(R::r8, R::r8, Reg{11});
    a.sd(R::r8, Reg{15}, 0);
    a.li(R::r8, PrdParams::EPS);
    a.bgeu(R::r8, Reg{11}, p2skip);
    a.add(Reg{15}, R::r3, Reg{14});
    a.sd(Reg{11}, Reg{15}, 0); // delta[w] = nd
    a.addi(R::r8, R::r1, G_ACTIVE_IDX);
    a.li(Reg{14}, 1);
    a.amoadd(Reg{14}, R::r8, Reg{14});
    a.li(R::r8, A.active);
    a.slli(Reg{14}, Reg{14}, 2);
    a.add(R::r8, R::r8, Reg{14});
    a.sw(Reg{13}, R::r8, 0);
    a.bind(p2skip);
    a.addi(R::r9, R::r9, 1);
    a.jmp(p2v);

    a.bind(p2end);
    emitBarrier(a, R::r1, G_COUNT, G_PHASE, nThreads, Reg{11}, Reg{12},
                Reg{13});
    a.bnei(R::r6, 0, notT0);
    a.ld(Reg{11}, R::r1, G_ACTIVE_IDX);
    a.sd(Reg{11}, R::r1, G_ACTIVE_CNT);
    a.sd(R::zero, R::r1, G_ACTIVE_IDX);
    a.sd(R::zero, R::r1, G_TOUCH_IDX);
    a.sd(R::zero, R::r1, G_CURSOR_A);
    a.sd(R::zero, R::r1, G_CURSOR_B);
    a.ld(Reg{11}, R::r1, G_ITER);
    a.addi(Reg{11}, Reg{11}, 1);
    a.sd(Reg{11}, R::r1, G_ITER);
    a.bind(notT0);
    emitBarrier(a, R::r1, G_COUNT, G_PHASE, nThreads, Reg{11}, Reg{12},
                Reg{13});
    a.jmp(iterTop);
    a.bind(done);
    a.halt();
    a.finalize();

    for (CoreId c = 0; c < ctx.numCores(); c++) {
        for (ThreadId t = 0; t < ctx.smtThreads(); t++) {
            ThreadSpec &ts = ctx.spec.addThread(c, t, p);
            ts.initRegs[1] = A.globals;
            ts.initRegs[2] = A.ngh;
            ts.initRegs[3] = A.delta;
            ts.initRegs[4] = A.deg;
            ts.initRegs[5] = A.acc;
            ts.initRegs[6] = c * ctx.smtThreads() + t;
        }
    }
}

// ------------------------------------------------------ pipeline stages

Program *
PrdWorkload::genStreamer(BuildContext &ctx, const Arrays &A,
                         bool emitOffsets)
{
    Program *p = ctx.newProgram("prd-streamer");
    Asm a(p);
    // r1=ptr r2=iter r3=delta r4=deg r5=end r6/r7/r8 scratch r10=54
    auto iterTop = a.label();
    auto p1v = a.label();
    auto p1end = a.label();
    auto p2v = a.label();
    auto p2end = a.label();
    auto finish = a.label();

    a.li(R::r10, PrdParams::ALPHA_NUM);
    a.li(R::r2, 0);
    a.li(R::r8, g_->numVertices); // activeCount
    a.bind(iterTop);
    a.beqi(R::r8, 0, finish);
    a.bgei(R::r2, params_.maxIters, finish);
    a.addi(R::r2, R::r2, 1);
    a.li(R::r1, A.active);
    a.slli(R::r5, R::r8, 2);
    a.add(R::r5, R::r1, R::r5);
    a.bind(p1v);
    a.bgeu(R::r1, R::r5, p1end);
    a.lw(R::r6, R::r1, 0); // v
    a.addi(R::r1, R::r1, 4);
    a.slli(R::r7, R::r6, 2);
    a.add(R::r7, R::r4, R::r7);
    a.lw(R::r7, R::r7, 0); // deg
    a.beqi(R::r7, 0, p1v);
    a.slli(R::r8, R::r6, 3);
    a.add(R::r8, R::r3, R::r8);
    a.ld(R::r8, R::r8, 0); // delta
    a.mul(R::r8, R::r8, R::r10);
    a.srli(R::r8, R::r8, PrdParams::ALPHA_SHIFT);
    a.divu(R::r7, R::r8, R::r7); // contrib
    a.beqi(R::r7, 0, p1v);
    a.enqc(QO, R::r7); // contribution header
    if (!emitOffsets) {
        a.mov(QO, R::r6);
    } else {
        a.li(R::r7, A.off);
        a.slli(R::r8, R::r6, 2);
        a.add(R::r7, R::r7, R::r8);
        a.lw(R::r8, R::r7, 4);
        a.lw(R::r7, R::r7, 0);
        a.mov(QO, R::r7);
        a.mov(QO, R::r8);
    }
    a.jmp(p1v);
    a.bind(p1end);
    a.li(R::r6, static_cast<uint64_t>(PHASE1_END));
    a.enqc(QO, R::r6);
    a.mov(R::r8, QI); // touched count
    // Phase 2: stream the touched list.
    a.li(R::r1, A.touched);
    a.slli(R::r5, R::r8, 2);
    a.add(R::r5, R::r1, R::r5);
    a.bind(p2v);
    a.bgeu(R::r1, R::r5, p2end);
    a.lw(QO2, R::r1, 0); // load enqueues w on the phase-2 queue
    a.addi(R::r1, R::r1, 4);
    a.jmp(p2v);
    a.bind(p2end);
    a.li(R::r6, static_cast<uint64_t>(PHASE2_END));
    a.enqc(QO2, R::r6);
    a.mov(R::r8, QI); // new active count
    a.jmp(iterTop);
    a.bind(finish);
    a.li(R::r6, static_cast<uint64_t>(DONE));
    a.enqc(QO, R::r6);
    a.halt();
    a.finalize();
    return p;
}

Program *
PrdWorkload::genPump(BuildContext &ctx, Addr *handler)
{
    Program *p = ctx.newProgram("prd-pump");
    Asm a(p);
    auto loop = a.label("loop");
    auto hdl = a.label("hdl");
    auto fin = a.label("fin");
    a.bind(loop);
    a.mov(QO, QI);
    a.jmp(loop);
    a.bind(hdl);
    a.enqc(QO, R::cvval);
    a.li(R::r1, static_cast<uint64_t>(DONE));
    a.beq(R::cvval, R::r1, fin);
    a.jr(R::cvret);
    a.bind(fin);
    a.halt();
    a.finalize();
    *handler = p->labels().at("hdl");
    return p;
}

Program *
PrdWorkload::genEnumerate(BuildContext &ctx, Addr *handler)
{
    Program *p = ctx.newProgram("prd-enumerate");
    Asm a(p);
    auto loop = a.label("loop");
    auto eloop = a.label();
    auto hdl = a.label("hdl");
    auto fin = a.label("fin");
    a.bind(loop);
    a.mov(R::r2, QI);
    a.mov(R::r3, QI);
    a.bind(eloop);
    a.bgeu(R::r2, R::r3, loop);
    a.slli(R::r4, R::r2, 2);
    a.add(R::r4, R::r1, R::r4);
    a.lw(QO, R::r4, 0);
    a.addi(R::r2, R::r2, 1);
    a.jmp(eloop);
    a.bind(hdl);
    a.enqc(QO, R::cvval);
    a.li(R::r5, static_cast<uint64_t>(DONE));
    a.beq(R::cvval, R::r5, fin);
    a.jr(R::cvret);
    a.bind(fin);
    a.halt();
    a.finalize();
    *handler = p->labels().at("hdl");
    return p;
}

Program *
PrdWorkload::genFetchAcc(BuildContext &ctx, Addr *handler)
{
    Program *p = ctx.newProgram("prd-fetchacc");
    Asm a(p);
    auto loop = a.label("loop");
    auto hdl = a.label("hdl");
    auto fin = a.label("fin");
    a.bind(loop);
    a.mov(R::r2, QI);
    a.slli(R::r3, R::r2, 3);
    a.add(R::r3, R::r1, R::r3);
    a.mov(QO, R::r2);
    a.ld(QO, R::r3, 0);
    a.jmp(loop);
    a.bind(hdl);
    a.enqc(QO, R::cvval);
    a.li(R::r5, static_cast<uint64_t>(DONE));
    a.beq(R::cvval, R::r5, fin);
    a.jr(R::cvret);
    a.bind(fin);
    a.halt();
    a.finalize();
    *handler = p->labels().at("hdl");
    return p;
}

Program *
PrdWorkload::genUpdate(BuildContext &ctx, const Arrays &A, bool loadsAcc,
                       Addr *handler)
{
    Program *p = ctx.newProgram("prd-update");
    Asm a(p);
    // r1=acc r2=touchedPtr r3=rank r4=delta r6=activePtr r10=contrib
    // In: QI = phase-1 data, QO2 = phase-2 data. Out: QO = feedback.
    auto p1loop = a.label("p1loop");
    auto p1noT = a.label();
    auto p2loop = a.label("p2loop");
    auto p2skip = a.label();
    auto hdl = a.label("hdl");
    auto ctl = a.label();
    auto fin = a.label("fin");

    a.bind(p1loop);
    a.mov(R::r5, QI); // ngh
    a.mov(R::r7, QI); // prefetched acc value (may be stale; reload)
    a.slli(R::r8, R::r5, 3);
    a.add(R::r8, R::r1, R::r8);
    a.ld(R::r7, R::r8, 0); // current acc (L1 hit thanks to the RA)
    a.bnei(R::r7, 0, p1noT);
    a.sw(R::r5, R::r2, 0); // touched append
    a.addi(R::r2, R::r2, 4);
    a.bind(p1noT);
    a.add(R::r7, R::r7, R::r10);
    a.sd(R::r7, R::r8, 0);
    a.jmp(p1loop);

    a.bind(p2loop);
    a.mov(R::r5, QO2); // w
    if (loadsAcc) {
        a.slli(R::r8, R::r5, 3);
        a.add(R::r8, R::r1, R::r8);
        a.ld(R::r7, R::r8, 0); // nd (phase 1 complete: accurate)
    } else {
        a.mov(R::r7, QO2); // nd via the RA (accurate after phase 1)
        a.slli(R::r8, R::r5, 3);
        a.add(R::r8, R::r1, R::r8);
    }
    a.sd(R::zero, R::r8, 0); // acc[w] = 0
    a.slli(R::r8, R::r5, 3);
    a.add(R::r8, R::r3, R::r8);
    a.ld(R::r10, R::r8, 0);
    a.add(R::r10, R::r10, R::r7);
    a.sd(R::r10, R::r8, 0); // rank[w] += nd
    a.li(R::r10, PrdParams::EPS);
    a.bgeu(R::r10, R::r7, p2loop);
    a.slli(R::r8, R::r5, 3);
    a.add(R::r8, R::r4, R::r8);
    a.sd(R::r7, R::r8, 0); // delta[w] = nd
    a.sw(R::r5, R::r6, 0); // active append
    a.addi(R::r6, R::r6, 4);
    a.jmp(p2loop);

    a.bind(hdl);
    a.srli(R::r5, R::cvval, 63);
    a.bnei(R::r5, 0, ctl);
    a.mov(R::r10, R::cvval); // contribution header
    a.jr(R::cvret);
    a.bind(ctl);
    {
        auto tryP2 = a.label();
        auto isDone = a.label();
        a.li(R::r5, static_cast<uint64_t>(PHASE1_END));
        a.bne(R::cvval, R::r5, tryP2);
        // PHASE1_END: send touched count, reset pointers, go to phase 2.
        a.li(R::r5, A.touched);
        a.sub(R::r7, R::r2, R::r5);
        a.srli(R::r7, R::r7, 2);
        a.mov(QO, R::r7);
        a.li(R::r2, A.touched);
        a.li(R::r6, A.active);
        a.jmp(p2loop);
        a.bind(tryP2);
        a.li(R::r5, static_cast<uint64_t>(DONE));
        a.beq(R::cvval, R::r5, isDone);
        // PHASE2_END: send active count, back to phase 1.
        a.li(R::r5, A.active);
        a.sub(R::r7, R::r6, R::r5);
        a.srli(R::r7, R::r7, 2);
        a.mov(QO, R::r7);
        a.jmp(p1loop);
        a.bind(isDone);
        a.halt();
    }
    a.bind(fin);
    a.halt();
    a.finalize();
    *handler = p->labels().at("hdl");
    return p;
}

void
PrdWorkload::buildPipeline(BuildContext &ctx, bool useRa, bool streaming)
{
    fatal_if(streaming && ctx.numCores() < 4,
             "streaming prd needs 4 cores");
    Arrays A = installArrays(ctx);

    auto addMap = [](ThreadSpec &t, Reg r, QueueId q, QueueDir d) {
        t.queueMaps.push_back({r.idx, q, d});
    };
    auto initStreamer = [&](ThreadSpec &t) {
        t.initRegs[3] = A.delta;
        t.initRegs[4] = A.deg;
    };
    auto initUpdate = [&](ThreadSpec &t) {
        t.initRegs[1] = A.acc;
        t.initRegs[2] = A.touched;
        t.initRegs[3] = A.rank;
        t.initRegs[4] = A.delta;
        t.initRegs[6] = A.active;
    };

    if (streaming) {
        // core0: streamer + RA(pair) + RA(acc kv, phase 2)
        // core1: pump + RA(scan); core2: pump + RA(acc kv, phase 1)
        // core3: update. Feedback and phase-2 data cross via connectors.
        Program *st = genStreamer(ctx, A, false);
        ThreadSpec &t0 = ctx.spec.addThread(0, 0, st);
        initStreamer(t0);
        addMap(t0, QO, 0, QueueDir::Out);  // phase-1 chain
        addMap(t0, QO2, 3, QueueDir::Out); // phase-2 -> RA4 in
        addMap(t0, QI, 2, QueueDir::In);   // feedback
        ctx.spec.ras.push_back({0, 0, 1, A.off, 4, RaMode::IndirectPair});
        ctx.spec.ras.push_back({0, 3, 4, A.acc, 8, RaMode::IndirectKV});

        Addr h1;
        Program *pump1 = genPump(ctx, &h1);
        ThreadSpec &t1 = ctx.spec.addThread(1, 0, pump1);
        t1.deqHandler = static_cast<int64_t>(h1);
        addMap(t1, QI, 0, QueueDir::In);
        addMap(t1, QO, 1, QueueDir::Out);
        ctx.spec.ras.push_back({1, 1, 2, A.ngh, 4, RaMode::Scan});
        ctx.spec.connectors.push_back({0, 1, 1, 0});

        Addr h2;
        Program *pump2 = genPump(ctx, &h2);
        ThreadSpec &t2 = ctx.spec.addThread(2, 0, pump2);
        t2.deqHandler = static_cast<int64_t>(h2);
        addMap(t2, QI, 0, QueueDir::In);
        addMap(t2, QO, 1, QueueDir::Out);
        ctx.spec.ras.push_back({2, 1, 2, A.acc, 8, RaMode::IndirectKV});
        ctx.spec.connectors.push_back({1, 2, 2, 0});

        Addr hU;
        Program *upd = genUpdate(ctx, A, false, &hU);
        ThreadSpec &t3 = ctx.spec.addThread(3, 0, upd);
        t3.deqHandler = static_cast<int64_t>(hU);
        initUpdate(t3);
        addMap(t3, QI, 0, QueueDir::In);   // phase-1 data
        addMap(t3, QO2, 2, QueueDir::In);  // phase-2 data
        addMap(t3, QO, 1, QueueDir::Out);  // feedback
        ctx.spec.connectors.push_back({2, 2, 3, 0});
        ctx.spec.connectors.push_back({0, 4, 3, 2}); // RA4 out -> core3
        ctx.spec.connectors.push_back({3, 1, 0, 2}); // feedback
        ctx.spec.queueCaps.push_back({0, 2, 4});
        ctx.spec.queueCaps.push_back({3, 1, 4});
        return;
    }

    if (useRa) {
        // Phase 1: T1 -> RA pair -> RA scan -> RA kv(acc) -> T2.
        // Phase 2: T1 -> RA kv(acc) -> T2. Feedback: T2 -> T1.
        Program *st = genStreamer(ctx, A, false);
        ThreadSpec &t0 = ctx.spec.addThread(0, 0, st);
        initStreamer(t0);
        addMap(t0, QO, 0, QueueDir::Out);
        addMap(t0, QO2, 5, QueueDir::Out);
        addMap(t0, QI, 4, QueueDir::In);
        ctx.spec.ras.push_back({0, 0, 1, A.off, 4, RaMode::IndirectPair});
        ctx.spec.ras.push_back({0, 1, 2, A.ngh, 4, RaMode::Scan});
        ctx.spec.ras.push_back({0, 2, 3, A.acc, 8, RaMode::IndirectKV});
        ctx.spec.ras.push_back({0, 5, 6, A.acc, 8, RaMode::IndirectKV});
        Addr hU;
        Program *upd = genUpdate(ctx, A, false, &hU);
        ThreadSpec &t1 = ctx.spec.addThread(0, 1, upd);
        t1.deqHandler = static_cast<int64_t>(hU);
        initUpdate(t1);
        addMap(t1, QI, 3, QueueDir::In);
        addMap(t1, QO2, 6, QueueDir::In);
        addMap(t1, QO, 4, QueueDir::Out);
        ctx.spec.queueCaps.push_back({0, 0, 16});
        ctx.spec.queueCaps.push_back({0, 4, 4});
        return;
    }

    // No-RA 4-thread pipeline; phase 2 is a direct T1 -> T4 queue.
    Program *st = genStreamer(ctx, A, true);
    ThreadSpec &t0 = ctx.spec.addThread(0, 0, st);
    initStreamer(t0);
    addMap(t0, QO, 0, QueueDir::Out);
    addMap(t0, QO2, 4, QueueDir::Out);
    addMap(t0, QI, 3, QueueDir::In);
    Addr hE;
    Program *en = genEnumerate(ctx, &hE);
    ThreadSpec &t1 = ctx.spec.addThread(0, 1, en);
    t1.deqHandler = static_cast<int64_t>(hE);
    t1.initRegs[1] = A.ngh;
    addMap(t1, QI, 0, QueueDir::In);
    addMap(t1, QO, 1, QueueDir::Out);
    Addr hF;
    Program *fa = genFetchAcc(ctx, &hF);
    ThreadSpec &t2 = ctx.spec.addThread(0, 2, fa);
    t2.deqHandler = static_cast<int64_t>(hF);
    t2.initRegs[1] = A.acc;
    addMap(t2, QI, 1, QueueDir::In);
    addMap(t2, QO, 2, QueueDir::Out);
    Addr hU;
    Program *upd = genUpdate(ctx, A, true, &hU);
    ThreadSpec &t3 = ctx.spec.addThread(0, 3, upd);
    t3.deqHandler = static_cast<int64_t>(hU);
    initUpdate(t3);
    addMap(t3, QI, 2, QueueDir::In);
    addMap(t3, QO2, 4, QueueDir::In);
    addMap(t3, QO, 3, QueueDir::Out);
    ctx.spec.queueCaps.push_back({0, 3, 4});
}

} // namespace pipette
