#include "workloads/graph.h"

#include <algorithm>
#include <numeric>

#include "sim/logging.h"

namespace pipette {

Graph
buildCsr(uint32_t numVertices,
         const std::vector<std::pair<uint32_t, uint32_t>> &edges)
{
    Graph g;
    g.numVertices = numVertices;
    g.offsets.assign(numVertices + 1, 0);
    for (const auto &[u, v] : edges) {
        panic_if(u >= numVertices || v >= numVertices,
                 "edge endpoint out of range");
        g.offsets[u + 1]++;
    }
    for (uint32_t v = 0; v < numVertices; v++)
        g.offsets[v + 1] += g.offsets[v];
    g.neighbors.resize(edges.size());
    std::vector<uint32_t> cursor(g.offsets.begin(), g.offsets.end() - 1);
    for (const auto &[u, v] : edges)
        g.neighbors[cursor[u]++] = v;
    return g;
}

namespace {

/** Random permutation of 0..n-1. */
std::vector<uint32_t>
permutation(uint32_t n, Rng &rng)
{
    std::vector<uint32_t> p(n);
    std::iota(p.begin(), p.end(), 0);
    for (uint32_t i = n - 1; i > 0; i--)
        std::swap(p[i], p[rng.uniformInt(0, i)]);
    return p;
}

/** Dedup + drop self-loops + symmetrize an edge list. */
std::vector<std::pair<uint32_t, uint32_t>>
canonicalize(std::vector<std::pair<uint32_t, uint32_t>> edges)
{
    std::vector<std::pair<uint32_t, uint32_t>> out;
    out.reserve(edges.size() * 2);
    for (auto [u, v] : edges) {
        if (u == v)
            continue;
        out.emplace_back(u, v);
        out.emplace_back(v, u);
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

} // namespace

Graph
makeGridGraph(uint32_t rows, uint32_t cols, uint64_t seed)
{
    Rng rng(seed);
    uint32_t n = rows * cols;
    std::vector<uint32_t> perm = permutation(n, rng);
    std::vector<std::pair<uint32_t, uint32_t>> edges;
    edges.reserve(static_cast<size_t>(n) * 2);
    auto id = [&](uint32_t r, uint32_t c) { return perm[r * cols + c]; };
    for (uint32_t r = 0; r < rows; r++) {
        for (uint32_t c = 0; c < cols; c++) {
            if (c + 1 < cols)
                edges.emplace_back(id(r, c), id(r, c + 1));
            if (r + 1 < rows)
                edges.emplace_back(id(r, c), id(r + 1, c));
        }
    }
    return buildCsr(n, canonicalize(std::move(edges)));
}

Graph
makeRmatGraph(uint32_t numVertices, uint32_t numEdges, uint64_t seed)
{
    Rng rng(seed);
    uint32_t bits = 0;
    while ((1u << bits) < numVertices)
        bits++;
    std::vector<std::pair<uint32_t, uint32_t>> edges;
    edges.reserve(numEdges);
    const double a = 0.57, b = 0.19, c = 0.19;
    for (uint32_t e = 0; e < numEdges; e++) {
        uint32_t u = 0, v = 0;
        for (uint32_t d = 0; d < bits; d++) {
            double p = rng.uniformReal();
            if (p < a) {
                // top-left quadrant
            } else if (p < a + b) {
                v |= 1u << d;
            } else if (p < a + b + c) {
                u |= 1u << d;
            } else {
                u |= 1u << d;
                v |= 1u << d;
            }
        }
        if (u < numVertices && v < numVertices)
            edges.emplace_back(u, v);
    }
    return buildCsr(numVertices, canonicalize(std::move(edges)));
}

Graph
makeUniformGraph(uint32_t numVertices, double avgDegree, uint64_t seed)
{
    Rng rng(seed);
    // Undirected edges; symmetrization doubles degree.
    auto targetEdges = static_cast<uint64_t>(
        numVertices * avgDegree / 2.0);
    std::vector<std::pair<uint32_t, uint32_t>> edges;
    edges.reserve(targetEdges);
    for (uint64_t e = 0; e < targetEdges; e++) {
        edges.emplace_back(
            static_cast<uint32_t>(rng.uniformInt(0, numVertices - 1)),
            static_cast<uint32_t>(rng.uniformInt(0, numVertices - 1)));
    }
    return buildCsr(numVertices, canonicalize(std::move(edges)));
}

std::vector<GraphInput>
makeTable5Inputs(double scale)
{
    auto s = [scale](uint32_t x) {
        auto v = static_cast<uint32_t>(x * scale);
        return std::max(v, 64u);
    };
    std::vector<GraphInput> inputs;
    // Co: coAuthorsDBLP (collaboration, power law, avg degree ~6.3)
    inputs.push_back(
        {"Co", "collaboration", makeRmatGraph(s(16384), s(55000), 11)});
    // Dy: hugetrace (dynamic simulation mesh, degree ~3)
    inputs.push_back(
        {"Dy", "dynamic simulation", makeUniformGraph(s(49152), 3.0, 22)});
    // Fs: Freescale1 (circuit, degree ~5.6)
    inputs.push_back(
        {"Fs", "circuit simulation", makeUniformGraph(s(36864), 5.6, 33)});
    // Sk: as-Skitter (internet topology, heavy-tailed, avg degree ~13)
    inputs.push_back(
        {"Sk", "internet", makeRmatGraph(s(18432), s(120000), 44)});
    // Rd: USA road network (grid-like, degree ~2.4, huge diameter)
    inputs.push_back(
        {"Rd", "road network", makeGridGraph(s(320), s(320), 55)});
    return inputs;
}

} // namespace pipette
