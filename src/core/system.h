/**
 * @file
 * The full simulated system: cores, memory hierarchy, reference
 * accelerators, connectors, and the run loop. A System is configured
 * from a SystemConfig (hardware) plus a MachineSpec (software), the same
 * spec the golden-model interpreter accepts.
 */

#ifndef PIPETTE_CORE_SYSTEM_H
#define PIPETTE_CORE_SYSTEM_H

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/core.h"
#include "pipette/connector.h"
#include "pipette/ra.h"

namespace pipette {

/** Complete simulated machine. */
class System
{
  public:
    explicit System(const SystemConfig &cfg);
    ~System();

    /** Functional memory (populate before configure/run). */
    SimMemory &memory() { return mem_; }

    /** Apply a software configuration. Call exactly once. */
    void configure(const MachineSpec &spec);

    struct RunResult
    {
        bool finished = false; ///< all threads halted
        bool deadlock = false; ///< watchdog fired
        Cycle cycles = 0;
        uint64_t instrs = 0; ///< committed across all cores
    };

    /** Run to completion (or watchdog / maxCycles). */
    RunResult run();

    /**
     * Resumable variant of run() for host-instrumentation tests:
     * advance at most `n` further cycles, then return. Call repeatedly;
     * `finished` is set once every thread halts. Do not mix with run()
     * on the same System.
     */
    RunResult runFor(Cycle n);

    Core &core(CoreId c) { return *cores_[c]; }
    uint32_t numCores() const { return static_cast<uint32_t>(cores_.size()); }
    MemoryHierarchy &hierarchy() { return hier_; }
    const SystemConfig &config() const { return cfg_; }

    /** Aggregate statistics across all cores. */
    CoreStats aggregateCoreStats() const;
    /** Flatten everything into a name -> value map. */
    std::map<std::string, double> dumpStats() const;

  private:
    SystemConfig cfg_;
    EventQueue eq_;
    SimMemory mem_;
    MemoryHierarchy hier_;
    std::vector<std::unique_ptr<Core>> cores_;
    std::vector<std::unique_ptr<RefAccel>> ras_;
    std::vector<std::unique_ptr<Connector>> connectors_;
    bool configured_ = false;
    Cycle stepNow_ = 0;          ///< runFor() cursor
    Cycle stepLastProgress_ = 0; ///< runFor() watchdog cursor
};

} // namespace pipette

#endif // PIPETTE_CORE_SYSTEM_H
