/**
 * @file
 * The full simulated system: cores, memory hierarchy, reference
 * accelerators, connectors, and the run loop. A System is configured
 * from a SystemConfig (hardware) plus a MachineSpec (software), the same
 * spec the golden-model interpreter accepts.
 *
 * Guardrails (SystemConfig::guardrails): the run loop can drive a
 * lockstep commit oracle, per-cycle structural invariant checks, a
 * deadlock diagnoser on watchdog fire, deterministic fault injection,
 * and a crash flight recorder. Every abnormal stop is reported as a
 * structured StopReason plus a textual diagnosis instead of a crash or
 * a bare "deadlock" bit. All of it is inert (and the simulation
 * bit-identical) when the config is left at its defaults.
 */

#ifndef PIPETTE_CORE_SYSTEM_H
#define PIPETTE_CORE_SYSTEM_H

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/core.h"
#include "debug/guardrails.h"
#include "hostprof/hostprof.h"
#include "isa/arch_snapshot.h"
#include "obs/observer.h"
#include "parallel/task_pool.h"
#include "pipette/connector.h"
#include "pipette/ra.h"

namespace pipette {

/** Complete simulated machine. */
class System
{
  public:
    explicit System(const SystemConfig &cfg);
    ~System();

    /** Functional memory (populate before configure/run). */
    SimMemory &memory() { return mem_; }

    /** Apply a software configuration. Call exactly once. */
    void configure(const MachineSpec &spec);

    /** Why the run loop returned. */
    enum class StopReason : uint8_t
    {
        None,               ///< runFor() budget elapsed, still running
        Finished,           ///< all threads halted
        WatchdogDeadlock,   ///< no commit for watchdogCycles
        OracleDivergence,   ///< lockstep oracle caught a wrong commit
        InvariantViolation, ///< structural invariant check failed
        MaxCycles,          ///< cfg.maxCycles reached
        Interrupted,        ///< cooperative SIGINT/SIGTERM drain
    };

    static const char *stopReasonName(StopReason r);

    struct RunResult
    {
        bool finished = false; ///< all threads halted
        bool deadlock = false; ///< watchdog fired
        StopReason stopReason = StopReason::None;
        /** Structured failure report (divergence / deadlock diagnosis /
         *  invariant violation), with the flight-recorder dump appended
         *  when the recorder is enabled. Empty on clean finishes. */
        std::string diagnosis;
        Cycle cycles = 0;
        uint64_t instrs = 0; ///< committed across all cores
    };

    /** Run to completion (or watchdog / guardrail stop / maxCycles). */
    RunResult run();

    /**
     * Resumable variant of run() for host-instrumentation tests:
     * advance at most `n` further cycles, then return. Call repeatedly;
     * `finished` is set once every thread halts. Do not mix with run()
     * on the same System.
     */
    RunResult runFor(Cycle n);

    Core &core(CoreId c) { return *cores_[c]; }
    uint32_t numCores() const { return static_cast<uint32_t>(cores_.size()); }
    MemoryHierarchy &hierarchy() { return hier_; }
    const SystemConfig &config() const { return cfg_; }

    /** Aggregate statistics across all cores. */
    CoreStats aggregateCoreStats() const;
    /** Flatten everything into a name -> value map. */
    std::map<std::string, double> dumpStats() const;

    /** Observability layer; null unless cfg.observability is enabled. */
    obs::Observer *observer() { return obs_.get(); }
    const obs::Observer *observer() const { return obs_.get(); }

    /**
     * Epoch length of the multicore scheduler (1 for single-core
     * systems, which keep the legacy cycle loop). Exposed for tests.
     */
    Cycle epochLength() const { return epochLen_; }

    /**
     * True when the epoch scheduler decided at configure() that a
     * phase carries too little work to amortize host-pool dispatch and
     * will run inline regardless of coreJobs. Pure function of the
     * config, so the decision -- and every simulated result -- is
     * identical at any --core-jobs value.
     */
    bool epochAutoInline() const { return epochAutoInline_; }

    /**
     * Minimum simulated work (epoch length x cores) per epoch phase
     * below which the scheduler auto-inlines instead of dispatching to
     * the host pool. Public so benches/tests can explain the fallback.
     */
    static constexpr Cycle kEpochParallelMinWork = 4096;

    /** Host-side epoch-scheduler telemetry for this System (zeros
     *  unless host profiling was enabled during the run). */
    const hostprof::EpochTelemetry &epochTelemetry() const
    {
        return epochProf_;
    }

    /**
     * Sampling checkpoint restore (src/sample/): overwrite the
     * architectural state of every thread, queue, and RA with an
     * interpreter snapshot. Memory state arrives separately through
     * SimMemory::setPageSource. Only valid after configure() and
     * before the first cycle.
     */
    void restoreArchState(const ArchSnapshot &snap);

  private:
    /**
     * Multicore run loop (epoch-barrier scheduler). The simulated
     * cores -- each with its private L1/L2, QRM, RAs, event queue, and
     * connector halves -- advance independently through an epoch of
     * `epochLen_` cycles; every cross-core effect (L1-miss service
     * against the shared L3/DRAM, connector flit handoff and credits,
     * atomics, invalidations, observability) is exchanged only at the
     * epoch edge, serially, in deterministic core-ID order. The phase
     * can therefore fan out over `cfg.coreJobs` host workers with
     * byte-identical results at any worker count.
     */
    void epochLoop(Cycle stop, bool watchInvariants, RunResult *res);
    /** One core partition's slice of an epoch phase: cycles (from, to]. */
    void tickCorePartition(size_t c, Cycle from, Cycle to);
    /** Run one epoch phase across all cores (parallel or inline). */
    void runEpochPhase(Cycle from, Cycle to);
    /** Serial cross-core exchange at an epoch edge. */
    void epochEdgeExchange(Cycle edge);

    /** Apply due fault injections; removes one-shot faults once taken. */
    void applyFaults(Cycle now);
    /** Per-cycle structural checks; false + err on first violation. */
    bool checkInvariants(std::string *err) const;
    /** Watchdog diagnosis: wait-for graph + queue state + flight dump. */
    std::string diagnose(Cycle now, Cycle sinceCommit);
    /** Post-finish quiesce + pool/register leak accounting ("" = ok). */
    std::string drainLeakCheck();

    /** Per-cycle observability work after the ticks: Perfetto state
     *  polling inside the trace window plus due interval samples. */
    void observeCycle(Cycle now);
    /** Snapshot of everything the interval sampler consumes. */
    obs::Observer::SampleInput buildSampleInput();
    /** Terminal-stop export: flight import, finalize, file writes. */
    void finishObservability(StopReason reason);

    SystemConfig cfg_;
    /** One event queue per core so partitions can advance privately;
     *  eqs_[0] doubles as the single queue of the legacy loop. */
    std::vector<std::unique_ptr<EventQueue>> eqs_;
    SimMemory mem_;
    MemoryHierarchy hier_;
    std::vector<std::unique_ptr<Core>> cores_;
    std::vector<std::unique_ptr<RefAccel>> ras_;
    std::vector<std::unique_ptr<Connector>> connectors_;
    bool configured_ = false;

    // --- Epoch scheduler state (multicore only) ---
    Cycle epochLen_ = 1;
    /** Guardrails / commit tracing touch shared state from the core
     *  tick, so the phase must stay on one host thread. */
    bool epochInline_ = false;
    /** Phase too small to amortize host-pool dispatch (see above). */
    bool epochAutoInline_ = false;
    /** Lazily created host pool for the phase (min(coreJobs, cores)). */
    std::unique_ptr<parallel::TaskPool> corePool_;
    /** Partition membership, by core: RAs and connector halves. */
    std::vector<std::vector<RefAccel *>> rasByCore_;
    std::vector<std::vector<Connector *>> connFrom_;
    std::vector<std::vector<Connector *>> connTo_;
    Cycle stepNow_ = 0;          ///< runFor() cursor
    Cycle stepLastProgress_ = 0; ///< runFor() watchdog cursor
    /** Host-side epoch telemetry, single-writer on the coordinating
     *  thread; merged into the hostprof globals at destruction. */
    hostprof::EpochTelemetry epochProf_;
    /** Per-partition tick durations (raw ns) of the current pooled
     *  phase; slot-indexed, so workers write race-free. */
    std::vector<uint64_t> epochDurNs_;

    /** Software spec copy for deadlock diagnosis and the oracle. */
    MachineSpec spec_;
    std::unique_ptr<debug::Guardrails> guardrails_;
    /** Faults not yet (fully) applied; drained as they fire. */
    std::vector<FaultInjection> faultsPending_;
    /** Observability layer; null = off (single-branch hook sites). */
    std::unique_ptr<obs::Observer> obs_;
    /** Scratch per-(core, queue) occupancy buffer for the sampler. */
    std::vector<uint64_t> obsQueueOcc_;
};

} // namespace pipette

#endif // PIPETTE_CORE_SYSTEM_H
