/**
 * @file
 * Dynamic (in-flight) instruction state for the out-of-order core.
 *
 * DynInsts are pool-managed: the core acquires one from a fixed
 * free-list pool at rename and PooledPtr references keep it alive in
 * the ROB, load/store queues, issue queue, and in-flight completion
 * callbacks. The last reference drop returns it (and its rename-map
 * checkpoint, if any) to the pool/arena, so the steady-state rename ->
 * commit path never touches the host heap.
 */

#ifndef PIPETTE_CORE_DYN_INST_H
#define PIPETTE_CORE_DYN_INST_H

#include <array>

#include "isa/instr.h"
#include "sim/pool.h"
#include "sim/types.h"

namespace pipette {

/** Rename-map snapshot taken at branches and indirect jumps. */
using RenameCheckpoint = std::array<PhysRegId, NUM_ARCH_REGS>;

/** Fixed arena of checkpoint slots, bounded by in-flight branches. */
using CheckpointArena = SlotArena<RenameCheckpoint>;

/** One in-flight instruction. */
struct DynInst
{
    static constexpr int MAX_SRCS = 3;
    static constexpr int MAX_DESTS = 3;

    // --- Identity ---
    uint64_t seq = 0; ///< core-wide age order
    ThreadId tid = 0;
    Addr pc = 0;
    const Instr *si = nullptr;
    /** Effective opcode (CVTRAP/ENQTRAP replace the fetched op). */
    Op op = Op::NOP;

    // --- Fetch / prediction ---
    bool isCondBranch = false;
    bool isIndirect = false;
    bool predTaken = false;
    Addr predTarget = 0;
    uint64_t histAtPred = 0;

    // --- Rename ---
    int nsrc = 0;
    std::array<PhysRegId, MAX_SRCS> srcs = {INVALID_PREG, INVALID_PREG,
                                            INVALID_PREG};
    int ndest = 0;
    std::array<PhysRegId, MAX_DESTS> dests = {INVALID_PREG, INVALID_PREG,
                                              INVALID_PREG};
    std::array<PhysRegId, MAX_DESTS> prevDests = {INVALID_PREG,
                                                  INVALID_PREG,
                                                  INVALID_PREG};
    /** Queues dequeued by this instruction (committed/rolled back). */
    int ndeq = 0;
    std::array<QueueId, 3> deqQueues = {INVALID_QUEUE, INVALID_QUEUE,
                                        INVALID_QUEUE};
    /** Destination is an enqueue (dests[0] entered the QRM). */
    bool destIsQueue = false;
    QueueId enqQueue = INVALID_QUEUE;
    /** ENQC cleared this queue's skip-armed flag (restore on squash). */
    bool clearedSkip = false;
    /** skiptc: total entries consumed speculatively (discards + CV). */
    uint32_t skipConsumed = 0;
    /** Rename-map checkpoint slot (branches and indirect jumps). */
    RenameCheckpoint *checkpoint = nullptr;

    // --- Trap payload (CVTRAP / ENQTRAP) ---
    uint64_t cvQid = 0;
    uint64_t cvRet = 0;

    // --- Execution state ---
    bool inIQ = false;
    /** Unready sources; the entry sleeps on wakeup lists until zero. */
    uint8_t waitCnt = 0;
    bool issued = false;
    bool executed = false;
    bool squashed = false;
    int pendingCompletions = 0;

    // Memory
    Addr memAddr = 0;
    uint8_t memSize = 0;
    uint64_t storeData = 0;
    bool addrReady = false;

    // Branch resolution
    bool actualTaken = false;
    Addr actualTarget = 0;

    bool isLoad = false;
    bool isStore = false;
    bool isAtomic = false;

    // --- Stage timestamps (observability; see obs/observer.h) ---
    /** Cycle the fetched instruction became renameable. */
    Cycle fetchReady = 0;
    Cycle renameCycle = 0;
    Cycle issueCycle = 0;
    /** Writeback cycle (the last one, for multi-completion ops). */
    Cycle completeCycle = 0;

    // --- Pool management (see sim/pool.h) ---
    uint32_t poolRefs = 0;
    ObjectPool<DynInst> *poolOwner = nullptr;
    /** Arena the checkpoint came from (set when checkpoint is taken). */
    CheckpointArena *ckptArena = nullptr;

    /** Return external resources and restore default state (pool hook). */
    void
    poolReset()
    {
        if (checkpoint)
            ckptArena->free(checkpoint);
        ObjectPool<DynInst> *owner = poolOwner;
        *this = DynInst{};
        poolOwner = owner;
    }
};

using DynInstPool = ObjectPool<DynInst>;
using DynInstPtr = PooledPtr<DynInst>;

} // namespace pipette

#endif // PIPETTE_CORE_DYN_INST_H
