/**
 * @file
 * Dynamic (in-flight) instruction state for the out-of-order core.
 */

#ifndef PIPETTE_CORE_DYN_INST_H
#define PIPETTE_CORE_DYN_INST_H

#include <array>
#include <memory>
#include <vector>

#include "isa/instr.h"
#include "sim/types.h"

namespace pipette {

/** One in-flight instruction. */
struct DynInst
{
    static constexpr int MAX_SRCS = 3;
    static constexpr int MAX_DESTS = 3;

    // --- Identity ---
    uint64_t seq = 0; ///< core-wide age order
    ThreadId tid = 0;
    Addr pc = 0;
    const Instr *si = nullptr;
    /** Effective opcode (CVTRAP/ENQTRAP replace the fetched op). */
    Op op = Op::NOP;

    // --- Fetch / prediction ---
    bool isCondBranch = false;
    bool isIndirect = false;
    bool predTaken = false;
    Addr predTarget = 0;
    uint64_t histAtPred = 0;

    // --- Rename ---
    int nsrc = 0;
    std::array<PhysRegId, MAX_SRCS> srcs = {INVALID_PREG, INVALID_PREG,
                                            INVALID_PREG};
    int ndest = 0;
    std::array<PhysRegId, MAX_DESTS> dests = {INVALID_PREG, INVALID_PREG,
                                              INVALID_PREG};
    std::array<PhysRegId, MAX_DESTS> prevDests = {INVALID_PREG,
                                                  INVALID_PREG,
                                                  INVALID_PREG};
    /** Queues dequeued by this instruction (committed/rolled back). */
    int ndeq = 0;
    std::array<QueueId, 3> deqQueues = {INVALID_QUEUE, INVALID_QUEUE,
                                        INVALID_QUEUE};
    /** Destination is an enqueue (dests[0] entered the QRM). */
    bool destIsQueue = false;
    QueueId enqQueue = INVALID_QUEUE;
    /** ENQC cleared this queue's skip-armed flag (restore on squash). */
    bool clearedSkip = false;
    /** skiptc: total entries consumed speculatively (discards + CV). */
    uint32_t skipConsumed = 0;
    /** Rename-map checkpoint (branches and indirect jumps). */
    std::unique_ptr<std::array<PhysRegId, NUM_ARCH_REGS>> checkpoint;

    // --- Trap payload (CVTRAP / ENQTRAP) ---
    uint64_t cvQid = 0;
    uint64_t cvRet = 0;

    // --- Execution state ---
    bool inIQ = false;
    bool issued = false;
    bool executed = false;
    bool squashed = false;
    int pendingCompletions = 0;

    // Memory
    Addr memAddr = 0;
    uint8_t memSize = 0;
    uint64_t storeData = 0;
    bool addrReady = false;

    // Branch resolution
    bool actualTaken = false;
    Addr actualTarget = 0;

    bool isLoad = false;
    bool isStore = false;
    bool isAtomic = false;
};

using DynInstPtr = std::shared_ptr<DynInst>;

} // namespace pipette

#endif // PIPETTE_CORE_DYN_INST_H
