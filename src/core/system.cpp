#include "core/system.h"

#include <chrono>
#include <sstream>

#include "debug/invariants.h"
#include "resilience/interrupt.h"
#include "sim/logging.h"

namespace pipette {

namespace {

/** Raw steady-clock ns for epoch-phase durations (host-side only). */
uint64_t
rawNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

std::vector<std::unique_ptr<EventQueue>>
makeEventQueues(uint32_t n)
{
    std::vector<std::unique_ptr<EventQueue>> eqs;
    for (uint32_t i = 0; i < n; i++)
        eqs.push_back(std::make_unique<EventQueue>());
    return eqs;
}

} // namespace

System::System(const SystemConfig &cfg)
    : cfg_(cfg), eqs_(makeEventQueues(cfg.numCores ? cfg.numCores : 1)),
      hier_(cfg.mem, cfg.numCores, eqs_[0].get())
{
    for (uint32_t c = 0; c < cfg.numCores; c++) {
        cores_.push_back(std::make_unique<Core>(c, cfg.core, &mem_,
                                                &hier_, eqs_[c].get()));
    }
}

System::~System()
{
    if (epochProf_.epochs)
        hostprof::mergeEpoch(epochProf_);
    // Pending events hold handles into the cores' DynInst pools; drop
    // them while the cores (declared after eqs_) are still alive.
    for (auto &eq : eqs_)
        eq->clear();
}

const char *
System::stopReasonName(StopReason r)
{
    switch (r) {
      case StopReason::None: return "running";
      case StopReason::Finished: return "finished";
      case StopReason::WatchdogDeadlock: return "watchdog-deadlock";
      case StopReason::OracleDivergence: return "oracle-divergence";
      case StopReason::InvariantViolation: return "invariant-violation";
      case StopReason::MaxCycles: return "max-cycles";
      case StopReason::Interrupted: return "interrupted";
    }
    return "?";
}

void
System::configure(const MachineSpec &spec)
{
    panic_if(configured_, "System::configure called twice");
    configured_ = true;
    spec_ = spec; // kept for deadlock diagnosis and the lockstep oracle

    for (const ThreadSpec &ts : spec.threads) {
        fatal_if(ts.core >= cores_.size(), "thread on nonexistent core");
        cores_[ts.core]->addThread(ts);
    }
    for (const QueueCapSpec &qc : spec.queueCaps) {
        fatal_if(qc.core >= cores_.size(), "queue cap on bad core");
        cores_[qc.core]->qrm().setCapacity(qc.queue, qc.capacity);
    }
    for (const RaSpec &rs : spec.ras) {
        fatal_if(rs.core >= cores_.size(), "RA on nonexistent core");
        Core *core = cores_[rs.core].get();
        fatal_if(ras_.size() >=
                     static_cast<size_t>(cfg_.core.numRAs) * cores_.size(),
                 "too many reference accelerators configured");
        ras_.push_back(std::make_unique<RefAccel>(
            rs, cfg_.core.raCompletionBuf, &core->qrm(), &core->prf(),
            &mem_, &hier_, eqs_[rs.core].get(), &core->stats(),
            [core] { return core->tryUseMemPort(); }));
    }
    for (const ConnectorSpec &cs : spec.connectors) {
        fatal_if(cs.fromCore >= cores_.size() ||
                     cs.toCore >= cores_.size(),
                 "connector on nonexistent core");
        Core *from = cores_[cs.fromCore].get();
        Core *to = cores_[cs.toCore].get();
        connectors_.push_back(std::make_unique<Connector>(
            cs, &from->qrm(), &from->prf(), &to->qrm(), &to->prf(),
            &from->stats(), cfg_.connectorLatency,
            cfg_.connectorBandwidth));
    }
    for (auto &core : cores_)
        core->configure();

    if (cfg_.observability.enabled()) {
        obs_ = std::make_unique<obs::Observer>(cfg_);
        for (auto &core : cores_) {
            core->setObserver(obs_.get());
            for (ThreadId tid : core->activeThreadIds())
                obs_->registerThread(core->id(), tid);
        }
        for (size_t i = 0; i < ras_.size(); i++) {
            const RaSpec &rs = ras_[i]->spec();
            ras_[i]->setObserver(obs_.get(), static_cast<uint32_t>(i));
            obs_->registerRa(static_cast<uint32_t>(i), rs.core,
                             rs.inQueue, rs.outQueue);
        }
        for (size_t i = 0; i < connectors_.size(); i++) {
            const ConnectorSpec &cs = connectors_[i]->spec();
            connectors_[i]->setObserver(obs_.get(),
                                        static_cast<uint32_t>(i));
            obs_->registerConnector(static_cast<uint32_t>(i), cs.fromCore,
                                    cs.fromQueue, cs.toCore, cs.toQueue);
        }
    }

    if (cfg_.guardrails.enabled()) {
        guardrails_ = std::make_unique<debug::Guardrails>(
            cfg_.guardrails, &spec_, cfg_.core.queueCapacity);
        for (auto &core : cores_)
            core->setGuardrails(guardrails_.get());
        faultsPending_ = cfg_.guardrails.faults;
        for (const FaultInjection &f : faultsPending_) {
            switch (f.kind) {
              case FaultKind::DropConnectorCredits:
                fatal_if(f.index >= connectors_.size(),
                         "fault: connector index out of range");
                break;
              case FaultKind::DelayRaCompletion:
                fatal_if(f.index >= ras_.size(),
                         "fault: RA index out of range");
                break;
              default:
                fatal_if(f.core >= cores_.size(),
                         "fault: core out of range");
                break;
            }
        }
    }

    // Multicore systems always run the epoch-barrier scheduler (the
    // legacy cycle loop stays bit-exact for single-core systems), so
    // results depend only on the epoch length -- never on coreJobs.
    if (cores_.size() > 1) {
        Cycle e = cfg_.epochLength;
        if (!e) {
            // Auto: the shortest cross-core latency, so deferring every
            // cross-core effect to the edge only ever reorders events
            // that were concurrent anyway.
            Cycle cacheGap = cfg_.mem.l3.latency > cfg_.mem.l2.latency
                                 ? cfg_.mem.l3.latency - cfg_.mem.l2.latency
                                 : 1;
            e = cfg_.connectorLatency
                    ? std::min<Cycle>(cfg_.connectorLatency, cacheGap)
                    : cacheGap;
        }
        epochLen_ = std::max<Cycle>(e, 1);

        std::vector<EventQueue *> eqp;
        for (auto &eq : eqs_)
            eqp.push_back(eq.get());
        hier_.setEpochMode(std::move(eqp));
        for (auto &core : cores_)
            core->setEpochDefer(true);
        for (auto &conn : connectors_)
            conn->setEpochMode();
        if (obs_)
            obs_->setJournalMode(true);

        rasByCore_.resize(cores_.size());
        connFrom_.resize(cores_.size());
        connTo_.resize(cores_.size());
        for (auto &ra : ras_) {
            rasByCore_[ra->spec().core].push_back(ra.get());
            // An RA runs in its core's partition, so it reads through
            // that core's write-buffering view (own stores forward;
            // remote stores become visible at the next edge).
            ra->setMemView(&cores_[ra->spec().core]->memView());
        }
        for (auto &conn : connectors_) {
            connFrom_[conn->spec().fromCore].push_back(conn.get());
            connTo_[conn->spec().toCore].push_back(conn.get());
        }
        // The lockstep oracle and the commit trace write shared state
        // from inside the core tick; run those phases on one host
        // thread (same epoch algorithm, so results are unchanged).
        epochInline_ =
            guardrails_ != nullptr || cfg_.core.traceFile != nullptr;

        // Host-side: fanning a phase over the core pool only pays off
        // when the phase carries enough simulated work to amortize task
        // dispatch and the barrier wakeup. Below the threshold the
        // handoff dominates and --core-jobs makes the host *slower*
        // (BENCH_sweep.json gmean 0.79 at the default 24-cycle epoch),
        // so fall back to inline phases. The threshold is a fixed
        // core-cycles-per-phase count, not a host measurement, so the
        // decision is reproducible everywhere and identical at any
        // --core-jobs value.
        epochAutoInline_ =
            epochLen_ * cores_.size() < kEpochParallelMinWork;

        // The fallback silently ignores --core-jobs, which reads as "a
        // flat 1.0x speedup" in sweeps; say why, once per process (a
        // sweep configures hundreds of Systems).
        if (epochAutoInline_ && cfg_.coreJobs > 1) {
            static std::atomic<bool> hinted{false};
            if (!hinted.exchange(true)) {
                warn("epoch scheduler: phase work ",
                     epochLen_ * cores_.size(), " core-cycles (epoch ",
                     epochLen_, " x ", cores_.size(),
                     " cores) is below kEpochParallelMinWork=",
                     kEpochParallelMinWork,
                     "; running epoch phases inline despite "
                     "--core-jobs ",
                     cfg_.coreJobs,
                     ". Raise --epoch-length to amortize pool "
                     "dispatch.");
            }
        }
    }
}

void
System::applyFaults(Cycle now)
{
    for (size_t i = 0; i < faultsPending_.size();) {
        FaultInjection &f = faultsPending_[i];
        if (now < f.atCycle) {
            i++;
            continue;
        }
        // duration 0 = for the rest of the run.
        Cycle until = f.duration ? f.atCycle + f.duration
                                 : ~static_cast<Cycle>(0);
        bool applied = true;
        switch (f.kind) {
          case FaultKind::DropConnectorCredits:
            connectors_[f.index]->injectStall(until);
            break;
          case FaultKind::DelayRaCompletion:
            ras_[f.index]->injectStall(until);
            break;
          case FaultKind::BlockDynInstPool:
            cores_[f.core]->injectPoolBlock(until);
            break;
          case FaultKind::BlockCheckpointArena:
            cores_[f.core]->injectCheckpointBlock(until);
            break;
          case FaultKind::FlipQueuePayload: {
            // Needs a committed data entry at the head to corrupt; if
            // none is there yet, retry on later cycles.
            Qrm &qrm = cores_[f.core]->qrm();
            if (qrm.canDequeueSpec(f.queue) && !qrm.headCtrl(f.queue)) {
                PhysRegFile &prf = cores_[f.core]->prf();
                PhysRegId r = qrm.headReg(f.queue);
                prf.write(r, prf.read(r) ^ (1ull << (f.bit & 63)));
            } else {
                applied = false;
            }
            break;
          }
          case FaultKind::CorruptQueueState:
            cores_[f.core]->qrm().injectTailCorruption(f.queue);
            break;
        }
        if (applied) {
            faultsPending_.erase(faultsPending_.begin() +
                                 static_cast<ptrdiff_t>(i));
        } else {
            i++;
        }
    }
}

bool
System::checkInvariants(std::string *err) const
{
    for (const auto &core : cores_) {
        if (!debug::checkQrmConsistency(core->qrm(), core->id(), err))
            return false;
    }
    for (const auto &conn : connectors_) {
        const ConnectorSpec &cs = conn->spec();
        const Qrm &toQrm = cores_[cs.toCore]->qrm();
        if (!debug::checkConnectorCredits(
                cs.fromCore, cs.fromQueue, cs.toCore, cs.toQueue,
                conn->inflightSize(), toQrm.totalSize(cs.toQueue),
                toQrm.capacity(cs.toQueue), err)) {
            return false;
        }
    }
    return true;
}

std::string
System::diagnose(Cycle now, Cycle sinceCommit)
{
    std::vector<debug::ThreadWaitInfo> tw;
    std::vector<debug::QueueSnapshot> qs;
    std::vector<debug::RaSnapshot> rs;
    std::vector<debug::ConnectorSnapshot> cs;
    for (const auto &core : cores_) {
        core->collectWaitInfo(now, &tw);
        for (QueueId q = 0; q < core->qrm().numQueues(); q++)
            qs.push_back({core->id(), q, core->qrm().diag(q)});
    }
    for (const auto &ra : ras_) {
        rs.push_back({ra->spec().core, ra->spec().inQueue,
                      ra->spec().outQueue, ra->cbSize(), !ra->idle(),
                      now < ra->stalledUntil()});
    }
    for (const auto &conn : connectors_) {
        const ConnectorSpec &c = conn->spec();
        const Qrm &toQrm = cores_[c.toCore]->qrm();
        cs.push_back({c.fromCore, c.fromQueue, c.toCore, c.toQueue,
                      conn->inflightSize(), toQrm.capacity(c.toQueue),
                      toQrm.totalSize(c.toQueue),
                      now < conn->stalledUntil()});
    }
    debug::DeadlockReport rep =
        debug::diagnoseDeadlock(spec_, tw, qs, rs, cs, now, sinceCommit);
    std::string text = rep.text;
    if (guardrails_) {
        std::string fd = guardrails_->flightDump();
        if (!fd.empty())
            text += fd;
    }
    return text;
}

std::string
System::drainLeakCheck()
{
    // Quiesce: in-flight completions (cache misses, writeback ring
    // residue) hold DynInst and register references; run them out by
    // ticking the halted machine until the event queue stays empty for
    // a comfortable margin (the writeback ring spans 256 cycles).
    Cycle qn = stepNow_;
    uint64_t calm = 0;
    if (cores_.size() > 1) {
        // Multicore: drain in inline epochs (the run loop only stops at
        // epoch edges, so deferred state is exchanged consistently).
        while (calm < 512) {
            if (qn - stepNow_ > 1'000'000)
                return "drain: event queues failed to quiesce within "
                       "1M cycles";
            Cycle to = qn + epochLen_;
            for (size_t c = 0; c < cores_.size(); c++)
                tickCorePartition(c, qn, to);
            epochEdgeExchange(to);
            qn = to;
            bool settled = !hier_.epochOpsPending();
            for (auto &eq : eqs_)
                settled &= eq->empty();
            calm = settled ? calm + epochLen_ : 0;
        }
    } else {
        while (calm < 512) {
            if (qn - stepNow_ > 1'000'000)
                return "drain: event queue failed to quiesce within "
                       "1M cycles";
            qn++;
            eqs_[0]->runUntil(qn);
            for (auto &core : cores_)
                core->tick(qn);
            for (auto &ra : ras_)
                ra->tick(qn);
            for (auto &conn : connectors_)
                conn->tick(qn);
            calm = eqs_[0]->empty() ? calm + 1 : 0;
        }
    }

    std::ostringstream oss;
    for (const auto &core : cores_) {
        if (core->dynInstPool().inUse() != 0) {
            oss << "drain leak: core " << static_cast<int>(core->id())
                << " DynInst pool still holds "
                << core->dynInstPool().inUse() << " objects";
            return oss.str();
        }
        if (core->checkpointArena().inUse() != 0) {
            oss << "drain leak: core " << static_cast<int>(core->id())
                << " checkpoint arena still holds "
                << core->checkpointArena().inUse() << " slots";
            return oss.str();
        }
        std::string err;
        if (!debug::checkQrmConsistency(core->qrm(), core->id(), &err))
            return err;
        // Register conservation: every physical register is either
        // free, pinned by a thread's architectural map, or held by a
        // queue entry.
        uint64_t held = 0;
        for (QueueId q = 0; q < core->qrm().numQueues(); q++)
            held += core->qrm().totalSize(q);
        uint64_t accounted =
            core->prf().numFree() +
            static_cast<uint64_t>(NUM_ARCH_REGS) *
                core->numActiveThreads() +
            held;
        if (accounted != core->prf().size()) {
            oss << "drain leak: core " << static_cast<int>(core->id())
                << " register accounting: free " << core->prf().numFree()
                << " + pinned "
                << NUM_ARCH_REGS * core->numActiveThreads()
                << " + queued " << held << " = " << accounted << " != "
                << core->prf().size() << " physical registers";
            return oss.str();
        }
    }
    return "";
}

System::RunResult
System::run()
{
    return runFor(~static_cast<Cycle>(0));
}

System::RunResult
System::runFor(Cycle n)
{
    panic_if(!configured_, "System::runFor before configure");
    RunResult res;
    if (guardrails_)
        guardrails_->beginRun(mem_);
    bool watchInvariants = cfg_.guardrails.invariantChecks;
    // Cycle elision requires every diagnostic mode that watches (or
    // perturbs) individual cycles to be off: any guardrail -- lockstep
    // oracle, per-cycle invariant checks, fault plans, flight recorder
    // -- forces single-stepping with identical diagnostics. The commit
    // trace is unaffected (elided cycles commit nothing) and per-cycle
    // trace collectors are handled by the traceActive() gate below.
    bool elide = cfg_.cycleElision && !guardrails_;
    Cycle stop = n > ~static_cast<Cycle>(0) - stepNow_
                     ? ~static_cast<Cycle>(0)
                     : stepNow_ + n;
    if (cores_.size() > 1) {
        // Multicore: epoch-barrier scheduler (see epochLoop).
        epochLoop(stop, watchInvariants, &res);
    } else
    while (stepNow_ < stop) {
        stepNow_++;
        eqs_[0]->runUntil(stepNow_);
        // Timestamp the observability hooks before any stage can fire
        // one this cycle.
        if (obs_)
            obs_->beginCycle(stepNow_);

        if (!faultsPending_.empty())
            applyFaults(stepNow_);
        // Check invariants before any stage can act on state a fault
        // (or a bug) corrupted this cycle: a phantom committed entry
        // must be caught before a consumer dequeues it.
        if (watchInvariants) {
            std::string err;
            if (!checkInvariants(&err)) {
                if (guardrails_)
                    guardrails_->reportInvariantViolation(err);
                res.stopReason = StopReason::InvariantViolation;
                res.diagnosis = err;
                break;
            }
        }

        bool allHalted = true;
        for (auto &core : cores_) {
            core->tick(stepNow_);
            allHalted &= core->allHalted();
        }
        for (auto &ra : ras_)
            ra->tick(stepNow_);
        for (auto &conn : connectors_)
            conn->tick(stepNow_);

        if (obs_)
            observeCycle(stepNow_);

        if (guardrails_ && guardrails_->failed()) {
            res.stopReason =
                guardrails_->failure() ==
                        debug::GuardrailFailure::OracleDivergence
                    ? StopReason::OracleDivergence
                    : StopReason::InvariantViolation;
            res.diagnosis = guardrails_->report();
            break;
        }
        if (allHalted) {
            res.finished = true;
            res.stopReason = StopReason::Finished;
            break;
        }
        for (auto &core : cores_)
            stepLastProgress_ =
                std::max(stepLastProgress_, core->lastCommitCycle());
        if (stepNow_ - stepLastProgress_ > cfg_.watchdogCycles) {
            res.deadlock = true;
            res.stopReason = StopReason::WatchdogDeadlock;
            res.diagnosis =
                diagnose(stepNow_, stepNow_ - stepLastProgress_);
            warn("watchdog: no commit for ", cfg_.watchdogCycles,
                 " cycles at cycle ", stepNow_, "\n", res.diagnosis);
            break;
        }
        if (cfg_.maxCycles && stepNow_ >= cfg_.maxCycles) {
            res.stopReason = StopReason::MaxCycles;
            break;
        }
        // Cooperative SIGINT/SIGTERM: drain at the next cycle edge so
        // the caller can emit a resumable checkpoint + partial stats.
        if (resilience::interruptRequested()) {
            res.stopReason = StopReason::Interrupted;
            break;
        }

        // --- Stall-aware cycle elision (DESIGN.md §13). When this
        // cycle mutated nothing anywhere, every following cycle repeats
        // it verbatim until the earliest self-reported deadline: jump
        // the clock there and credit the per-cycle stats in bulk.
        // Guardrail modes never reach here (elide is false); the clamps
        // keep every time-triggered action -- watchdog, maxCycles,
        // interval samples, the trace-window opening -- on exactly the
        // cycle it fires at when single-stepping, so results are
        // bit-identical with the skip off.
        if (elide && (!obs_ || !obs_->traceActive())) {
            hostprof::ScopedPhase hpScan(
                hostprof::Phase::ElisionScan);
            bool quiet = cores_[0]->tickQuiescent();
            for (auto &ra : ras_)
                quiet &= ra->tickQuiescent();
            for (auto &conn : connectors_)
                quiet &= conn->tickQuiescent();
            if (!quiet)
                continue;
            Cycle dl = eqs_[0]->nextDeadline();
            dl = std::min(dl, cores_[0]->nextSelfActivity(stepNow_));
            for (auto &conn : connectors_)
                dl = std::min(dl, conn->nextSelfActivity(stepNow_));
            if (dl <= stepNow_ + 1)
                continue;
            Cycle target = std::min(dl - 1, stop);
            if (cfg_.maxCycles)
                target = std::min(target, cfg_.maxCycles);
            // The watchdog-firing cycle itself ticks normally
            // (saturate: no progress + no watchdog = spin, as when
            // single-stepping, just without burning host time).
            Cycle noFire = stepLastProgress_ +
                           std::min(cfg_.watchdogCycles,
                                    ~static_cast<Cycle>(0) -
                                        stepLastProgress_);
            target = std::min(target, noFire);
            if (obs_) {
                Cycle ns = obs_->nextSampleCycle();
                if (ns)
                    target = std::min(target, ns - 1);
                const ObservabilityConfig &oc = cfg_.observability;
                if ((oc.perfetto || oc.pipeview) &&
                    stepNow_ < oc.traceFrom)
                    target = std::min(target, oc.traceFrom - 1);
            }
            if (target > stepNow_) {
                if (hostprof::enabled())
                    hostprof::recordSkipWindow(target - stepNow_);
                cores_[0]->elide(target - stepNow_);
                stepNow_ = target;
            }
        }
    }
    res.cycles = stepNow_;
    for (auto &core : cores_)
        res.instrs += core->stats().committedInstrs;

    // Failure reports carry the flight recorder when it is on.
    if (guardrails_ && !res.diagnosis.empty() &&
        res.stopReason != StopReason::WatchdogDeadlock) {
        std::string fd = guardrails_->flightDump();
        if (!fd.empty())
            res.diagnosis += "\n" + fd;
    }

    // Leak accounting at drain: everything transient must be back in
    // its pool once the machine has fully wound down.
    if (res.finished && watchInvariants) {
        std::string err = drainLeakCheck();
        if (!err.empty()) {
            res.finished = false;
            res.stopReason = StopReason::InvariantViolation;
            res.diagnosis = err;
            if (guardrails_)
                guardrails_->reportInvariantViolation(err);
        }
    }

    // Terminal stop: export whatever the observability layer collected
    // (idempotent across resumed runFor() calls).
    if (obs_ && res.stopReason != StopReason::None)
        finishObservability(res.stopReason);
    return res;
}

void
System::epochLoop(Cycle stop, bool watchInvariants, RunResult *res)
{
    while (stepNow_ < stop) {
        // --- Epoch start (serial): faults and invariants against the
        // edge-consistent state, exactly once per epoch.
        if (!faultsPending_.empty())
            applyFaults(stepNow_);
        if (watchInvariants) {
            std::string err;
            if (!checkInvariants(&err)) {
                if (guardrails_)
                    guardrails_->reportInvariantViolation(err);
                res->stopReason = StopReason::InvariantViolation;
                res->diagnosis = err;
                break;
            }
        }

        Cycle epochEnd = stepNow_ + epochLen_;
        if (epochEnd > stop)
            epochEnd = stop;
        if (cfg_.maxCycles && cfg_.maxCycles > stepNow_ &&
            epochEnd > cfg_.maxCycles)
            epochEnd = cfg_.maxCycles;

        // --- Phase: every core partition advances privately.
        runEpochPhase(stepNow_, epochEnd);
        stepNow_ = epochEnd;

        // --- Edge (serial): cross-core exchange, then bookkeeping.
        epochEdgeExchange(stepNow_);
        if (obs_) {
            obs_->beginCycle(stepNow_);
            observeCycle(stepNow_);
        }
        if (guardrails_ && guardrails_->failed()) {
            res->stopReason =
                guardrails_->failure() ==
                        debug::GuardrailFailure::OracleDivergence
                    ? StopReason::OracleDivergence
                    : StopReason::InvariantViolation;
            res->diagnosis = guardrails_->report();
            break;
        }
        bool allHalted = true;
        for (auto &core : cores_)
            allHalted &= core->allHalted();
        if (allHalted) {
            res->finished = true;
            res->stopReason = StopReason::Finished;
            break;
        }
        for (auto &core : cores_)
            stepLastProgress_ =
                std::max(stepLastProgress_, core->lastCommitCycle());
        if (stepNow_ - stepLastProgress_ > cfg_.watchdogCycles) {
            res->deadlock = true;
            res->stopReason = StopReason::WatchdogDeadlock;
            res->diagnosis =
                diagnose(stepNow_, stepNow_ - stepLastProgress_);
            warn("watchdog: no commit for ", cfg_.watchdogCycles,
                 " cycles at cycle ", stepNow_, "\n", res->diagnosis);
            break;
        }
        if (cfg_.maxCycles && stepNow_ >= cfg_.maxCycles) {
            res->stopReason = StopReason::MaxCycles;
            break;
        }
        // Interrupt poll only at epoch edges: partition ticks between
        // edges stay signal-free so all cores stop at the same cycle
        // regardless of host worker scheduling.
        if (resilience::interruptRequested()) {
            res->stopReason = StopReason::Interrupted;
            break;
        }
    }
}

void
System::tickCorePartition(size_t c, Cycle from, Cycle to)
{
    // Attributed to whichever host thread runs the partition (a pool
    // worker or, inline, the coordinator), so the host trace shows the
    // per-worker phase lanes.
    hostprof::ScopedPhase hpPhase(hostprof::Phase::EpochPhase);
    Core *core = cores_[c].get();
    EventQueue *eq = eqs_[c].get();
    obs::Observer *obs = obs_.get();
    // Cycle elision inside a partition clamps to the epoch edge `to`:
    // watchdog, maxCycles, interval samples, and interrupts are all
    // edge-only in epoch mode, so the edge is the only extra deadline.
    // Per-cycle trace collectors disable the skip wholesale (cheap and
    // conservative: trace runs are diagnostic, not throughput, runs).
    bool elide = cfg_.cycleElision && !guardrails_ &&
                 !(obs && (cfg_.observability.perfetto ||
                           cfg_.observability.pipeview));
    for (Cycle cy = from + 1; cy <= to; cy++) {
        if (obs)
            obs->setCoreCycle(static_cast<CoreId>(c), cy);
        eq->runUntil(cy);
        core->tick(cy);
        for (RefAccel *ra : rasByCore_[c])
            ra->tick(cy);
        for (Connector *conn : connFrom_[c])
            conn->tickProducer(cy);
        for (Connector *conn : connTo_[c])
            conn->tickConsumer(cy);

        if (!elide || cy >= to)
            continue;
        hostprof::ScopedPhase hpScan(hostprof::Phase::ElisionScan);
        bool quiet = core->tickQuiescent();
        for (RefAccel *ra : rasByCore_[c])
            quiet &= ra->tickQuiescent();
        for (Connector *conn : connFrom_[c])
            quiet &= conn->producerQuiescent();
        for (Connector *conn : connTo_[c])
            quiet &= conn->consumerQuiescent();
        if (!quiet)
            continue;
        Cycle dl = eq->nextDeadline();
        dl = std::min(dl, core->nextSelfActivity(cy));
        for (Connector *conn : connTo_[c])
            dl = std::min(dl, conn->nextInboxArrival(cy));
        if (dl <= cy + 1)
            continue;
        Cycle target = std::min(dl - 1, to);
        if (target > cy) {
            if (hostprof::enabled())
                hostprof::recordSkipWindow(target - cy);
            core->elide(target - cy);
            cy = target;
        }
    }
}

void
System::runEpochPhase(Cycle from, Cycle to)
{
    size_t n = cores_.size();
    uint32_t workers = std::min<uint32_t>(
        cfg_.coreJobs ? cfg_.coreJobs : 1, static_cast<uint32_t>(n));
    const bool prof = hostprof::enabled();
    if (epochInline_ || epochAutoInline_ || workers <= 1) {
        uint64_t t0 = prof ? rawNs() : 0;
        for (size_t c = 0; c < n; c++)
            tickCorePartition(c, from, to);
        if (prof) {
            // Inline phase: wall == work, no barrier, no imbalance.
            uint64_t w = rawNs() - t0;
            epochProf_.epochs++;
            epochProf_.phaseWorkNs += w;
            epochProf_.phaseWallNs += w;
        }
        return;
    }
    if (!corePool_)
        corePool_ = std::make_unique<parallel::TaskPool>(workers);
    std::vector<parallel::TaskPool::Task> tasks;
    tasks.reserve(n);
    if (prof && epochDurNs_.size() != n)
        epochDurNs_.assign(n, 0);
    for (size_t c = 0; c < n; c++) {
        if (prof) {
            // Slot-indexed duration writes: each worker owns its
            // partition's slot, and the pool barrier orders the
            // caller's reads after them.
            tasks.push_back([this, c, from, to] {
                uint64_t t0 = rawNs();
                tickCorePartition(c, from, to);
                epochDurNs_[c] = rawNs() - t0;
            });
        } else {
            tasks.push_back(
                [this, c, from, to] { tickCorePartition(c, from, to); });
        }
    }
    if (!prof) {
        corePool_->run(std::move(tasks));
        return;
    }
    uint64_t t0 = rawNs();
    {
        hostprof::ScopedPhase hpBarrier(hostprof::Phase::EpochBarrier);
        corePool_->run(std::move(tasks));
    }
    uint64_t wall = rawNs() - t0;
    uint64_t work = 0, dmin = ~uint64_t{0}, dmax = 0;
    for (size_t c = 0; c < n; c++) {
        uint64_t d = epochDurNs_[c];
        work += d;
        dmin = std::min(dmin, d);
        dmax = std::max(dmax, d);
    }
    epochProf_.epochs++;
    epochProf_.pooledEpochs++;
    epochProf_.phaseWorkNs += work;
    epochProf_.phaseWallNs += wall;
    uint64_t wallWorkers = wall * workers;
    epochProf_.wallWorkersNs += wallWorkers;
    if (wallWorkers > work)
        epochProf_.barrierWaitNs += wallWorkers - work;
    epochProf_.imbalanceNs.add(dmax - dmin);
}

void
System::epochEdgeExchange(Cycle edge)
{
    // 1. Shared-hierarchy effects: replay every deferred L1-miss-level
    // operation in (issue, core, seq) order against the real L2/L3.
    hier_.flushEpochEdge(edge);

    // 2. Plain stores committed during the phase, merged across cores
    // by (commit cycle, core id); each core's buffer is already in
    // commit order. They drain before the atomics so an atomic
    // replaying at this edge reads everything the epoch wrote.
    {
        std::vector<size_t> sp(cores_.size(), 0);
        for (;;) {
            size_t best = cores_.size();
            for (size_t c = 0; c < cores_.size(); c++) {
                const auto &v = cores_[c]->memView().pending();
                if (sp[c] >= v.size())
                    continue;
                if (best == cores_.size() ||
                    v[sp[c]].cycle <
                        cores_[best]->memView().pending()[sp[best]].cycle)
                    best = c;
            }
            if (best == cores_.size())
                break;
            const EpochMemView::BufferedStore &s =
                cores_[best]->memView().pending()[sp[best]];
            mem_.write(s.addr, s.size, s.val);
            sp[best]++;
        }
        for (auto &core : cores_)
            core->memView().clearPending();
    }

    // 3. Atomics, in the same deterministic global order. They run
    // after the flush so no line is still PENDING when they access.
    std::vector<size_t> pos(cores_.size(), 0);
    for (;;) {
        size_t best = cores_.size();
        for (size_t c = 0; c < cores_.size(); c++) {
            const auto &v = cores_[c]->deferredAtomics();
            if (pos[c] >= v.size())
                continue;
            if (best == cores_.size() ||
                v[pos[c]].issue <
                    cores_[best]->deferredAtomics()[pos[best]].issue)
                best = c;
        }
        if (best == cores_.size())
            break;
        cores_[best]->replayAtomicAtEdge(
            cores_[best]->deferredAtomics()[pos[best]], edge);
        pos[best]++;
    }
    for (auto &core : cores_)
        core->deferredAtomics().clear();

    // 4. Connector cross-core exchange, in declaration order.
    for (auto &conn : connectors_)
        conn->epochEdge(edge);

    // 5. Observability journal replay (global (cycle, core) order).
    if (obs_)
        obs_->flushJournal();
}

void
System::observeCycle(Cycle now)
{
    if (obs_->wantPoll()) {
        for (auto &core : cores_) {
            for (ThreadId tid : core->activeThreadIds()) {
                obs_->threadState(core->id(), tid,
                                  core->threadObsState(tid));
            }
            obs_->coreCpi(core->id(), core->stats().cpiCycles);
        }
        for (size_t i = 0; i < ras_.size(); i++) {
            obs_->raState(static_cast<uint32_t>(i), ras_[i]->cbSize(),
                          !ras_[i]->idle());
        }
        for (size_t i = 0; i < connectors_.size(); i++) {
            obs_->connectorState(static_cast<uint32_t>(i),
                                 connectors_[i]->inflightSize());
        }
    }
    if (obs_->sampleDue(now))
        obs_->sample(now, buildSampleInput());
}

obs::Observer::SampleInput
System::buildSampleInput()
{
    obs::Observer::SampleInput in;
    in.agg = aggregateCoreStats();
    for (uint32_t c = 0; c < cores_.size(); c++) {
        in.l1Misses += hier_.l1Stats(c).misses;
        in.l2Misses += hier_.l2Stats(c).misses;
    }
    in.l3Misses = hier_.l3Stats().misses;
    in.mem = hier_.memStats();
    obsQueueOcc_.clear();
    for (const auto &core : cores_) {
        for (QueueId q = 0; q < core->qrm().numQueues(); q++)
            obsQueueOcc_.push_back(core->qrm().committedSize(q));
    }
    in.queueOcc = obsQueueOcc_.data();
    return in;
}

void
System::finishObservability(StopReason reason)
{
    // On an abnormal stop, lay the flight-recorder ring over the trace
    // so the final events are visible next to the polled state.
    bool failureStop = reason == StopReason::WatchdogDeadlock ||
                       reason == StopReason::OracleDivergence ||
                       reason == StopReason::InvariantViolation;
    if (guardrails_ && failureStop) {
        for (const debug::Guardrails::FlightEventView &e :
             guardrails_->flightEvents()) {
            std::string desc =
                std::string("flight:") + e.kind + " " + e.opName;
            if (e.pc)
                desc += " pc=" + std::to_string(e.pc);
            if (e.queue >= 0)
                desc += " q" + std::to_string(e.queue);
            if (e.count)
                desc += " x" + std::to_string(e.count);
            obs_->addFlightInstant(e.core, e.tid, e.cycle, desc);
        }
    }
    obs_->finalize(buildSampleInput(), stepNow_);
    obs_->writeFiles();
}

CoreStats
System::aggregateCoreStats() const
{
    CoreStats agg;
    for (const auto &core : cores_) {
        const CoreStats &s = core->stats();
        agg.cycles = std::max(agg.cycles, s.cycles);
        // Every registered scalar counter sums across cores; the stats.h
        // static_assert guarantees the registry is complete.
#define PIPETTE_AGG_STAT(name) agg.name += s.name;
        PIPETTE_CORE_STAT_COUNTERS(PIPETTE_AGG_STAT)
#undef PIPETTE_AGG_STAT
        for (size_t t = 0; t < 8; t++)
            agg.committedPerThread[t] += s.committedPerThread[t];
        for (size_t i = 0; i < NUM_CPI_BUCKETS; i++)
            agg.cpiCycles[i] += s.cpiCycles[i];
    }
    return agg;
}

std::map<std::string, double>
System::dumpStats() const
{
    std::map<std::string, double> out;
    for (size_t c = 0; c < cores_.size(); c++)
        cores_[c]->stats().dump("core" + std::to_string(c), out);
    hier_.dumpStats(out);
    if (obs_)
        obs_->dumpStats(out);
    // Record the phase-dispatch decision (a pure config function, so
    // byte-identical at any --core-jobs value).
    if (cores_.size() > 1)
        out["sim.epochAutoInline"] = epochAutoInline_ ? 1.0 : 0.0;
    // Elision totals, aggregated across cores: how much of the run the
    // quiescence oracle fast-forwarded. Host-speed metadata only --
    // every other row is identical with the skip off.
    CoreStats agg = aggregateCoreStats();
    out["sim.skippedCycles"] = static_cast<double>(agg.skippedCycles);
    out["sim.skipWindows"] = static_cast<double>(agg.skipWindows);
    return out;
}

void
System::restoreArchState(const ArchSnapshot &snap)
{
    panic_if(!configured_, "restoreArchState before configure");
    panic_if(snap.threads.size() != spec_.threads.size(),
             "snapshot thread count ", snap.threads.size(),
             " != spec ", spec_.threads.size());
    for (size_t i = 0; i < snap.threads.size(); i++) {
        const ThreadSpec &ts = spec_.threads[i];
        const ArchSnapshot::Thread &st = snap.threads[i];
        cores_[ts.core]->restoreThreadState(ts.tid, st.pc, st.halted,
                                            st.regs);
    }
    for (const ArchSnapshot::Queue &q : snap.queues) {
        Core &core = *cores_[q.core];
        for (const auto &[v, ctrl] : q.entries)
            core.preloadQueueEntry(q.id, v, ctrl);
        // After the entries: a ctrl preload clears the arm, exactly as
        // a live ctrl push would, so the snapshot's arm state must win.
        core.qrm().setSkipArmed(q.id, q.skipArmed);
    }
    panic_if(snap.ras.size() != ras_.size(), "snapshot RA count ",
             snap.ras.size(), " != spec ", ras_.size());
    for (size_t i = 0; i < snap.ras.size(); i++) {
        const ArchSnapshot::Ra &r = snap.ras[i];
        ras_[i]->restoreFunctionalState(r.scanning, r.haveStart, r.start,
                                        r.cur, r.end);
    }
}

} // namespace pipette
