#include "core/system.h"

namespace pipette {

System::System(const SystemConfig &cfg)
    : cfg_(cfg), hier_(cfg.mem, cfg.numCores, &eq_)
{
    for (uint32_t c = 0; c < cfg.numCores; c++) {
        cores_.push_back(std::make_unique<Core>(c, cfg.core, &mem_,
                                                &hier_, &eq_));
    }
}

System::~System()
{
    // Pending events hold handles into the cores' DynInst pools; drop
    // them while the cores (declared after eq_) are still alive.
    eq_.clear();
}

void
System::configure(const MachineSpec &spec)
{
    panic_if(configured_, "System::configure called twice");
    configured_ = true;

    for (const ThreadSpec &ts : spec.threads) {
        fatal_if(ts.core >= cores_.size(), "thread on nonexistent core");
        cores_[ts.core]->addThread(ts);
    }
    for (const QueueCapSpec &qc : spec.queueCaps) {
        fatal_if(qc.core >= cores_.size(), "queue cap on bad core");
        cores_[qc.core]->qrm().setCapacity(qc.queue, qc.capacity);
    }
    for (const RaSpec &rs : spec.ras) {
        fatal_if(rs.core >= cores_.size(), "RA on nonexistent core");
        Core *core = cores_[rs.core].get();
        fatal_if(ras_.size() >=
                     static_cast<size_t>(cfg_.core.numRAs) * cores_.size(),
                 "too many reference accelerators configured");
        ras_.push_back(std::make_unique<RefAccel>(
            rs, cfg_.core.raCompletionBuf, &core->qrm(), &core->prf(),
            &mem_, &hier_, &eq_, &core->stats(),
            [core] { return core->tryUseMemPort(); }));
    }
    for (const ConnectorSpec &cs : spec.connectors) {
        fatal_if(cs.fromCore >= cores_.size() ||
                     cs.toCore >= cores_.size(),
                 "connector on nonexistent core");
        Core *from = cores_[cs.fromCore].get();
        Core *to = cores_[cs.toCore].get();
        connectors_.push_back(std::make_unique<Connector>(
            cs, &from->qrm(), &from->prf(), &to->qrm(), &to->prf(),
            &from->stats(), cfg_.connectorLatency,
            cfg_.connectorBandwidth));
    }
    for (auto &core : cores_)
        core->configure();
}

System::RunResult
System::run()
{
    panic_if(!configured_, "System::run before configure");
    RunResult res;
    Cycle now = 0;
    Cycle lastProgress = 0;
    while (true) {
        now++;
        eq_.runUntil(now);
        bool allHalted = true;
        for (auto &core : cores_) {
            core->tick(now);
            allHalted &= core->allHalted();
        }
        for (auto &ra : ras_)
            ra->tick(now);
        for (auto &conn : connectors_)
            conn->tick(now);

        if (allHalted) {
            res.finished = true;
            break;
        }
        for (auto &core : cores_)
            lastProgress = std::max(lastProgress, core->lastCommitCycle());
        if (now - lastProgress > cfg_.watchdogCycles) {
            res.deadlock = true;
            warn("watchdog: no commit for ", cfg_.watchdogCycles,
                 " cycles at cycle ", now);
            for (auto &core : cores_)
                warn(core->debugString());
            break;
        }
        if (cfg_.maxCycles && now >= cfg_.maxCycles)
            break;
    }
    res.cycles = now;
    for (auto &core : cores_)
        res.instrs += core->stats().committedInstrs;
    return res;
}

System::RunResult
System::runFor(Cycle n)
{
    panic_if(!configured_, "System::runFor before configure");
    RunResult res;
    Cycle stop = stepNow_ + n;
    while (stepNow_ < stop) {
        stepNow_++;
        eq_.runUntil(stepNow_);
        bool allHalted = true;
        for (auto &core : cores_) {
            core->tick(stepNow_);
            allHalted &= core->allHalted();
        }
        for (auto &ra : ras_)
            ra->tick(stepNow_);
        for (auto &conn : connectors_)
            conn->tick(stepNow_);

        if (allHalted) {
            res.finished = true;
            break;
        }
        for (auto &core : cores_)
            stepLastProgress_ =
                std::max(stepLastProgress_, core->lastCommitCycle());
        if (stepNow_ - stepLastProgress_ > cfg_.watchdogCycles) {
            res.deadlock = true;
            break;
        }
        if (cfg_.maxCycles && stepNow_ >= cfg_.maxCycles)
            break;
    }
    res.cycles = stepNow_;
    for (auto &core : cores_)
        res.instrs += core->stats().committedInstrs;
    return res;
}

CoreStats
System::aggregateCoreStats() const
{
    CoreStats agg;
    for (const auto &core : cores_) {
        const CoreStats &s = core->stats();
        agg.cycles = std::max(agg.cycles, s.cycles);
        agg.committedInstrs += s.committedInstrs;
        agg.issuedUops += s.issuedUops;
        agg.squashedInstrs += s.squashedInstrs;
        agg.fetchedInstrs += s.fetchedInstrs;
        agg.branches += s.branches;
        agg.mispredicts += s.mispredicts;
        agg.loads += s.loads;
        agg.stores += s.stores;
        agg.atomics += s.atomics;
        agg.enqueues += s.enqueues;
        agg.dequeues += s.dequeues;
        agg.ctrlValues += s.ctrlValues;
        agg.cvTraps += s.cvTraps;
        agg.enqTraps += s.enqTraps;
        agg.skipDiscards += s.skipDiscards;
        agg.queueFullStalls += s.queueFullStalls;
        agg.queueEmptyStalls += s.queueEmptyStalls;
        agg.dynInstPoolStalls += s.dynInstPoolStalls;
        agg.checkpointStalls += s.checkpointStalls;
        agg.regReads += s.regReads;
        agg.regWrites += s.regWrites;
        agg.raAccesses += s.raAccesses;
        agg.raCvForwards += s.raCvForwards;
        agg.connectorTransfers += s.connectorTransfers;
        for (size_t i = 0; i < NUM_CPI_BUCKETS; i++)
            agg.cpiCycles[i] += s.cpiCycles[i];
    }
    return agg;
}

std::map<std::string, double>
System::dumpStats() const
{
    std::map<std::string, double> out;
    for (size_t c = 0; c < cores_.size(); c++)
        cores_[c]->stats().dump("core" + std::to_string(c), out);
    hier_.dumpStats(out);
    return out;
}

} // namespace pipette
