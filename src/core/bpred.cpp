#include "core/bpred.h"

namespace pipette {

BranchPredictor::BranchPredictor(const CoreConfig &cfg, uint32_t numThreads)
{
    uint32_t phtEntries = 1u << cfg.gshareBits;
    pht_.assign(phtEntries, 1); // weakly not-taken
    phtMask_ = phtEntries - 1;
    uint32_t btbEntries = cfg.btbEntries;
    // round to power of two
    uint32_t p = 1;
    while (p < btbEntries)
        p *= 2;
    btb_.resize(p);
    btbMask_ = p - 1;
    hist_.assign(numThreads, 0);
}

bool
BranchPredictor::predictCond(ThreadId tid, Addr pc)
{
    bool taken = pht_[phtIndex(tid, pc, hist_[tid])] >= 2;
    hist_[tid] = (hist_[tid] << 1) | (taken ? 1 : 0);
    return taken;
}

void
BranchPredictor::updateCond(ThreadId tid, Addr pc, bool taken,
                            uint64_t histAtPred)
{
    uint8_t &ctr = pht_[phtIndex(tid, pc, histAtPred)];
    if (taken && ctr < 3)
        ctr++;
    else if (!taken && ctr > 0)
        ctr--;
}

void
BranchPredictor::restoreHistory(ThreadId tid, uint64_t h, bool actualTaken)
{
    hist_[tid] = (h << 1) | (actualTaken ? 1 : 0);
}

bool
BranchPredictor::predictIndirect(ThreadId tid, Addr pc, Addr *target) const
{
    const BtbEntry &e = btb_[btbIndex(tid, pc)];
    if (e.pc == pc && e.tid == tid) {
        *target = e.target;
        return true;
    }
    return false;
}

void
BranchPredictor::updateIndirect(ThreadId tid, Addr pc, Addr target)
{
    BtbEntry &e = btb_[btbIndex(tid, pc)];
    e.pc = pc;
    e.tid = tid;
    e.target = target;
}

} // namespace pipette
