/**
 * @file
 * The out-of-order SMT core with integrated Pipette support.
 *
 * Pipeline: fetch (ICOUNT thread choice, branch prediction) -> decoupled
 * fetch buffer -> rename/dispatch (register renaming, QRM interaction,
 * CV/enqueue trap dispatch, resource allocation) -> unified issue queue
 * -> execute (FU ports, LSQ, cache accesses via the event queue) ->
 * in-order per-thread commit (frees registers, advances QRM committed
 * pointers, drains stores).
 *
 * Pipette specifics (paper Secs. III-IV):
 *  - an instruction whose source arch register is input-mapped dequeues
 *    at rename (stalling on empty); one whose destination is
 *    output-mapped enqueues (stalling on full / register budget);
 *  - a dequeue or peek that finds a control value at the head becomes a
 *    CVTRAP micro-op: it consumes the CV, writes cvval/cvqid/cvret, and
 *    redirects fetch to the dequeue control handler;
 *  - a data enqueue on a skip-armed queue becomes an ENQTRAP micro-op
 *    redirecting to the enqueue control handler;
 *  - skiptc consumes committed data entries until a CV; with no CV
 *    available it waits until it is the oldest instruction of its
 *    thread, then drains entries non-speculatively and arms the queue.
 */

#ifndef PIPETTE_CORE_CORE_H
#define PIPETTE_CORE_CORE_H

#include <deque>
#include <memory>
#include <set>
#include <vector>

#include "core/bpred.h"
#include "core/dyn_inst.h"
#include "isa/machine_spec.h"
#include "mem/hierarchy.h"
#include "mem/sim_memory.h"
#include "pipette/qrm.h"
#include "pipette/regfile.h"
#include "sim/config.h"
#include "sim/stats.h"

namespace pipette {

/** One simulated OOO SMT core. */
class Core
{
  public:
    Core(CoreId id, const CoreConfig &cfg, SimMemory *mem,
         MemoryHierarchy *hier, EventQueue *eq);

    /** Attach a software thread (before configure()). */
    void addThread(const ThreadSpec &ts);
    /** Finalize after all threads are attached: partition structures. */
    void configure();

    /** Advance one cycle. */
    void tick(Cycle now);

    bool allHalted() const;
    CoreId id() const { return id_; }
    const CoreConfig &config() const { return cfg_; }

    CoreStats &stats() { return stats_; }
    const CoreStats &stats() const { return stats_; }
    Qrm &qrm() { return qrm_; }
    PhysRegFile &prf() { return prf_; }

    /** Claim a data-cache port this cycle (shared with RAs). */
    bool tryUseMemPort();

    /** Cycle of the most recent commit (watchdog support). */
    Cycle lastCommitCycle() const { return lastCommit_; }

    /**
     * Architectural register value of a thread. Only meaningful when
     * the thread has no in-flight instructions (e.g., after halting).
     */
    uint64_t
    readArchReg(ThreadId tid, ArchRegId r) const
    {
        return prf_.read(threads_[tid].renameMap[r]);
    }

    /** Committed instruction count of one thread. */
    uint64_t
    threadInstrs(ThreadId tid) const
    {
        return threads_[tid].instrsCommitted;
    }

    /** Debug dump: per-thread PC and stall state. */
    std::string debugString() const;

  private:
    struct FetchedInst
    {
        Addr pc;
        const Instr *si;
        Cycle readyCycle;
        bool predTaken = false;
        Addr predTarget = 0;
        uint64_t histAtPred = 0;
    };

    enum class StallReason : uint8_t
    {
        None,
        QueueEmpty,
        QueueFull,
        Resource,
        Empty, ///< nothing to rename
    };

    struct ThreadCtx
    {
        bool active = false;
        const Program *prog = nullptr;
        Addr pc = 0;
        bool halted = false;
        bool haltFetched = false;
        Cycle fetchBlockedUntil = 0;
        int64_t deqHandler = -1;
        int64_t enqHandler = -1;
        std::array<PhysRegId, NUM_ARCH_REGS> renameMap;
        std::array<int8_t, NUM_ARCH_REGS> mapDir;  // -1 none, 0 in, 1 out
        std::array<QueueId, NUM_ARCH_REGS> mapQ;
        std::deque<FetchedInst> fetchQ;
        std::deque<DynInstPtr> rob;
        std::deque<DynInstPtr> loadQ;
        std::deque<DynInstPtr> storeQ;
        std::deque<std::pair<Addr, uint8_t>> storeBuffer; // post-commit
        /** Sequence numbers of in-flight FENCEs (younger loads wait). */
        std::set<uint64_t> pendingFences;
        StallReason renameStall = StallReason::Empty;
        uint64_t instrsCommitted = 0;
    };

    // Pipeline stages
    void fetch(Cycle now);
    void rename(Cycle now);
    void issue(Cycle now);
    void commit(Cycle now);
    void drainStoreBuffers(Cycle now);
    void accountCpi(Cycle now);

    /** Rename a single instruction; returns the stall reason. */
    StallReason renameOne(ThreadId tid, Cycle now);

    // Execution helpers
    bool executeInst(const DynInstPtr &inst, Cycle now);
    bool tryExecuteLoad(const DynInstPtr &inst, Cycle now);
    void handleMispredict(const DynInstPtr &inst, Cycle now);
    void squashYounger(ThreadId tid, uint64_t seq);
    void undoRename(const DynInstPtr &inst);
    void scheduleWriteback(const DynInstPtr &inst, Cycle when,
                           std::array<uint64_t, DynInst::MAX_DESTS> vals);
    void readSources(const DynInstPtr &inst, uint64_t *v1, uint64_t *v2,
                     uint64_t *vd) const;
    bool isOldestInThread(const DynInstPtr &inst) const;

    /** Fixed-latency writebacks: per-cycle ring (cheaper than events). */
    struct WbEntry
    {
        DynInstPtr inst;
        std::array<uint64_t, DynInst::MAX_DESTS> vals;
    };
    static constexpr uint32_t WB_RING = 256;
    void processWritebacks(Cycle now);
    void applyWriteback(const DynInstPtr &inst,
                        const std::array<uint64_t, DynInst::MAX_DESTS> &vals);

    CoreId id_;
    CoreConfig cfg_;
    SimMemory *mem_;
    MemoryHierarchy *hier_;
    EventQueue *eq_;

    std::array<std::vector<WbEntry>, WB_RING> wbRing_;

    PhysRegFile prf_;
    Qrm qrm_;
    BranchPredictor bpred_;
    std::vector<ThreadCtx> threads_;
    std::vector<DynInstPtr> iq_;

    // Partitioned sizes (set at configure()).
    uint32_t robPerThread_ = 0;
    uint32_t lqPerThread_ = 0;
    uint32_t sqPerThread_ = 0;
    uint32_t numActive_ = 0;

    uint64_t seqCtr_ = 0;
    uint32_t iqOccupancy_ = 0;
    uint32_t fetchRr_ = 0;
    uint32_t renameRr_ = 0;
    uint32_t commitRr_ = 0;

    // Per-cycle resources
    uint32_t memPortsUsed_ = 0;
    uint32_t aluUsed_ = 0;
    uint32_t mulUsed_ = 0;
    Cycle divBusyUntil_ = 0;
    uint32_t issuedThisCycle_ = 0;

    Cycle lastCommit_ = 0;
    CoreStats stats_;
    bool configured_ = false;
};

} // namespace pipette

#endif // PIPETTE_CORE_CORE_H
