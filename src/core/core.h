/**
 * @file
 * The out-of-order SMT core with integrated Pipette support.
 *
 * Pipeline: fetch (ICOUNT thread choice, branch prediction) -> decoupled
 * fetch buffer -> rename/dispatch (register renaming, QRM interaction,
 * CV/enqueue trap dispatch, resource allocation) -> unified issue queue
 * -> execute (FU ports, LSQ, cache accesses via the event queue) ->
 * in-order per-thread commit (frees registers, advances QRM committed
 * pointers, drains stores).
 *
 * Pipette specifics (paper Secs. III-IV):
 *  - an instruction whose source arch register is input-mapped dequeues
 *    at rename (stalling on empty); one whose destination is
 *    output-mapped enqueues (stalling on full / register budget);
 *  - a dequeue or peek that finds a control value at the head becomes a
 *    CVTRAP micro-op: it consumes the CV, writes cvval/cvqid/cvret, and
 *    redirects fetch to the dequeue control handler;
 *  - a data enqueue on a skip-armed queue becomes an ENQTRAP micro-op
 *    redirecting to the enqueue control handler;
 *  - skiptc consumes committed data entries until a CV; with no CV
 *    available it waits until it is the oldest instruction of its
 *    thread, then drains entries non-speculatively and arms the queue.
 */

#ifndef PIPETTE_CORE_CORE_H
#define PIPETTE_CORE_CORE_H

#include <memory>
#include <set>
#include <vector>

#include "core/bpred.h"
#include "core/dyn_inst.h"
#include "debug/deadlock.h"
#include "isa/machine_spec.h"
#include "mem/hierarchy.h"
#include "mem/sim_memory.h"
#include "pipette/qrm.h"
#include "pipette/regfile.h"
#include "sim/config.h"
#include "sim/stats.h"

namespace pipette {

namespace debug {
class Guardrails;
} // namespace debug

namespace obs {
class Observer;
enum class ThreadState : uint8_t;
} // namespace obs

/** One simulated OOO SMT core. */
class Core
{
  public:
    Core(CoreId id, const CoreConfig &cfg, SimMemory *mem,
         MemoryHierarchy *hier, EventQueue *eq);

    /** Attach a software thread (before configure()). */
    void addThread(const ThreadSpec &ts);
    /** Finalize after all threads are attached: partition structures. */
    void configure();

    /** Advance one cycle. */
    void tick(Cycle now);

    // --- Stall-aware cycle elision (DESIGN.md §13) --------------------
    /**
     * True when the last tick() mutated no simulated state: no fetch,
     * rename, issue, writeback, commit, store-buffer drain, or queue
     * skip-arm happened. The only statistics such a tick moves are the
     * per-cycle stall/CPI counters, and those are a pure function of
     * the frozen state -- so until one of this core's own deadlines
     * (nextSelfActivity) matures or an external agent (event queue,
     * RA, connector) mutates shared state, every subsequent tick
     * repeats the exact same no-op with the exact same stat deltas.
     */
    bool tickQuiescent() const { return !tickActive_; }
    /**
     * Earliest future cycle at which this core's self-scheduled work
     * matures with no external help: the first nonempty writeback-ring
     * slot, a fetch redirect penalty expiring, or the frontend delay
     * of the oldest fetched instruction maturing. EventQueue::NEVER
     * when only external events can unfreeze it.
     */
    Cycle nextSelfActivity(Cycle now) const;
    /**
     * Credit k elided cycles in bulk: every counter a frozen tick
     * bumps (cycles, the CPI bucket, the rename stall counters, the
     * round-robin pivots) advances by exactly k times the delta the
     * last executed tick produced, so every stat stays a pure function
     * of simulated time -- bit-identical with elision off.
     */
    void elide(uint64_t k);

    bool allHalted() const;
    CoreId id() const { return id_; }
    const CoreConfig &config() const { return cfg_; }

    CoreStats &stats() { return stats_; }
    const CoreStats &stats() const { return stats_; }
    Qrm &qrm() { return qrm_; }
    const Qrm &qrm() const { return qrm_; }
    PhysRegFile &prf() { return prf_; }
    const PhysRegFile &prf() const { return prf_; }
    uint32_t numActiveThreads() const { return numActive_; }
    /** In-flight instruction pool (host-perf instrumentation). */
    const DynInstPool &dynInstPool() const { return pool_; }
    /** Rename-checkpoint arena (host-perf instrumentation). */
    const CheckpointArena &checkpointArena() const { return ckptArena_; }

    /** Claim a data-cache port this cycle (shared with RAs). */
    bool tryUseMemPort();

    /** Cycle of the most recent commit (watchdog support). */
    Cycle lastCommitCycle() const { return lastCommit_; }

    /**
     * Architectural register value of a thread. Only meaningful when
     * the thread has no in-flight instructions (e.g., after halting).
     */
    uint64_t
    readArchReg(ThreadId tid, ArchRegId r) const
    {
        return prf_.read(threads_[tid].renameMap[r]);
    }

    /** Committed instruction count of one thread. */
    uint64_t
    threadInstrs(ThreadId tid) const
    {
        return threads_[tid].instrsCommitted;
    }

    // --- Sampling checkpoint restore (src/sample/) --------------------
    //
    // A detailed measurement window is a freshly built System whose
    // architectural state is overwritten with an interpreter snapshot
    // before the first cycle. Only valid after configure() and before
    // the first tick.

    /** Overwrite one thread's PC, halt flag, and architectural regs. */
    void restoreThreadState(ThreadId tid, Addr pc, bool halted,
                            const std::array<uint64_t, NUM_ARCH_REGS> &regs);

    /**
     * Append one committed entry to a queue, backed by a freshly
     * allocated physical register (mirrors how non-speculative agents
     * enqueue, so the register-conservation invariant holds).
     */
    void preloadQueueEntry(QueueId q, uint64_t value, bool ctrl);

    /** Branch predictor access for warm-state install. */
    BranchPredictor &bpred() { return bpred_; }

    /** Debug dump: per-thread PC and stall state. */
    std::string debugString() const;

    /**
     * Attach the guardrails hook target (commit oracle, flight
     * recorder). Null (the default) disables every hook: each hook site
     * is a single pointer test, so timing and statistics stay
     * bit-identical with guardrails off.
     */
    void setGuardrails(debug::Guardrails *g) { guardrails_ = g; }

    /**
     * Attach the observability hook target (stage timestamps, retire
     * trace, QRM occupancy). Same contract as setGuardrails: null (the
     * default) makes every hook site a single pointer test.
     */
    void setObserver(obs::Observer *o);

    /** Active thread ids, ascending (observability polling). */
    const std::vector<ThreadId> &activeThreadIds() const
    {
        return activeTids_;
    }
    /** Current pipeline state of a thread (Perfetto stall track). */
    obs::ThreadState threadObsState(ThreadId tid) const;

    /**
     * Fault injection (FaultKind::BlockDynInstPool /
     * BlockCheckpointArena): rename treats the pool/arena as exhausted
     * until the given cycle, bumping the same stall statistics as
     * organic exhaustion.
     */
    void injectPoolBlock(Cycle until) { poolBlockedUntil_ = until; }
    void injectCheckpointBlock(Cycle until) { ckptBlockedUntil_ = until; }

    /** Append every active thread's wait snapshot (deadlock diagnosis). */
    void collectWaitInfo(Cycle now,
                         std::vector<debug::ThreadWaitInfo> *out) const;

    /**
     * Epoch scheduler support. With epoch-defer on, executeInst records
     * each atomic's operands instead of applying its read-modify-write:
     * atomics touch shared memory, so their functional effect and cache
     * access replay serially at the epoch edge, merged across cores in
     * (issue, core, seq) order by the System.
     */
    struct DeferredAtomic
    {
        Cycle issue;
        uint64_t seq;
        Addr addr;
        uint8_t size;
        uint64_t v2;
        uint64_t vd;
        DynInstPtr inst;
    };
    /**
     * Epoch-defer also turns on the write-buffering memory view: plain
     * stores stay private to this core until the System drains them at
     * the epoch edge, so the shared SimMemory is read-only while core
     * phases run on concurrent host threads.
     */
    void
    setEpochDefer(bool on)
    {
        epochDefer_ = on;
        memView_.setBuffering(on);
    }
    std::vector<DeferredAtomic> &deferredAtomics()
    {
        return deferredAtomics_;
    }
    /** Replay one deferred atomic at an epoch edge (serial context). */
    void replayAtomicAtEdge(const DeferredAtomic &op, Cycle edge);
    /** This core's memory view (RAs on this core read through it). */
    EpochMemView &memView() { return memView_; }

  private:
    struct FetchedInst
    {
        Addr pc;
        const Instr *si;
        const OpInfo *info; ///< cached opInfo(si->op)
        Cycle readyCycle;
        bool predTaken = false;
        Addr predTarget = 0;
        uint64_t histAtPred = 0;
        /**
         * No operand register is queue-mapped (and the op is not a
         * Pipette op), so the rename queue gates are no-ops. The queue
         * maps are fixed per thread, so this is known at fetch; rename
         * uses it to skip the gate checks entirely.
         */
        bool queueFree = false;
    };

    enum class StallReason : uint8_t
    {
        None,
        QueueEmpty,
        QueueFull,
        Resource,
        Empty, ///< nothing to rename
    };

    struct ThreadCtx
    {
        bool active = false;
        const Program *prog = nullptr;
        Addr pc = 0;
        bool halted = false;
        bool haltFetched = false;
        Cycle fetchBlockedUntil = 0;
        int64_t deqHandler = -1;
        int64_t enqHandler = -1;
        std::array<PhysRegId, NUM_ARCH_REGS> renameMap;
        std::array<int8_t, NUM_ARCH_REGS> mapDir;  // -1 none, 0 in, 1 out
        std::array<QueueId, NUM_ARCH_REGS> mapQ;
        /** Per-PC: no operand is queue-mapped (precomputed at
         *  configure(); the maps and program are fixed by then). */
        std::vector<uint8_t> queueFreeByPc;
        // Fixed-capacity rings, sized at configure() (see BoundedDeque:
        // the pipeline queues must not touch the heap in steady state).
        BoundedDeque<FetchedInst> fetchQ;
        BoundedDeque<DynInstPtr> rob;
        BoundedDeque<DynInstPtr> loadQ;
        BoundedDeque<DynInstPtr> storeQ;
        BoundedDeque<std::pair<Addr, uint8_t>> storeBuffer; // post-commit
        /** Sequence numbers of in-flight FENCEs (younger loads wait). */
        std::set<uint64_t> pendingFences;
        StallReason renameStall = StallReason::Empty;
        uint64_t instrsCommitted = 0;
        /**
         * Queue-stall memo: when rename stalled on QueueEmpty/QueueFull,
         * the outcome can only change if one of the queues the gates
         * consult mutates (per-queue QRM version), the shared register
         * budget moves (only when the stall was budget-bound), or, for
         * skiptc's oldest-instruction drain, the ROB occupancy changes.
         * Retry cycles with an unchanged key return the memoized reason
         * without re-running the gates.
         */
        StallReason stallMemo = StallReason::None;
        const Instr *stallSi = nullptr;
        Addr stallPc = 0;
        uint64_t stallRobSize = 0;
        uint8_t stallNq = 0;
        bool stallNeedRegs = false;
        std::array<QueueId, 4> stallQs;
        std::array<uint64_t, 4> stallQv;
        uint64_t stallRegsVersion = 0;
    };

    // Pipeline stages
    void fetch(Cycle now);
    void rename(Cycle now);
    void issue(Cycle now);
    void commit(Cycle now);
    void drainStoreBuffers(Cycle now);
    void accountCpi(Cycle now);

    /** Rename a single instruction; returns the stall reason. */
    StallReason renameOne(ThreadId tid, Cycle now);

    /**
     * Index into activeTids_ where a round-robin walk with counter `rr`
     * starts. Walking activeTids_ cyclically from here visits the same
     * threads in the same order as the former `(rr + k) % smtThreads`
     * scan over every SMT slot restricted to active threads.
     */
    size_t
    rrStart(uint32_t rr) const
    {
        uint32_t pivot = rr % static_cast<uint32_t>(threads_.size());
        for (size_t i = 0; i < activeTids_.size(); i++)
            if (activeTids_[i] >= pivot)
                return i;
        return 0;
    }

    // Execution helpers
    bool executeInst(const DynInstPtr &inst, Cycle now);
    bool tryExecuteLoad(const DynInstPtr &inst, Cycle now);
    void handleMispredict(const DynInstPtr &inst, Cycle now);
    void squashYounger(ThreadId tid, uint64_t seq);
    void undoRename(const DynInstPtr &inst);
    void scheduleWriteback(const DynInstPtr &inst, Cycle when,
                           std::array<uint64_t, DynInst::MAX_DESTS> vals);
    void readSources(const DynInstPtr &inst, uint64_t *v1, uint64_t *v2,
                     uint64_t *vd) const;
    bool isOldestInThread(const DynInstPtr &inst) const;

    /** Fixed-latency writebacks: per-cycle ring (cheaper than events). */
    struct WbEntry
    {
        DynInstPtr inst;
        std::array<uint64_t, DynInst::MAX_DESTS> vals;
    };
    static constexpr uint32_t WB_RING = 256;
    void processWritebacks(Cycle now);
    void applyWriteback(const DynInstPtr &inst,
                        const std::array<uint64_t, DynInst::MAX_DESTS> &vals);

    CoreId id_;
    CoreConfig cfg_;
    SimMemory *mem_;
    MemoryHierarchy *hier_;
    EventQueue *eq_;

    // Fixed-capacity backing stores for the allocation-free rename
    // path. Declared before every container of DynInstPtr so they are
    // destroyed after the last handle drops.
    CheckpointArena ckptArena_;
    DynInstPool pool_;

    std::array<std::vector<WbEntry>, WB_RING> wbRing_;

    PhysRegFile prf_;
    Qrm qrm_;
    BranchPredictor bpred_;
    std::vector<ThreadCtx> threads_;

    /**
     * Issue queue, wakeup-driven. Entries whose sources are all ready
     * sit in eligible_ in age order; entries with unready sources sleep
     * on the per-register waiter lists and are moved to eligible_ when
     * the register's ready transition is drained from the PRF ready
     * log. issue() therefore scans only issue candidates instead of
     * polling every in-flight instruction each cycle.
     */
    std::vector<DynInstPtr> eligible_;
    /** A sleeping entry; seq detects stale pointers to recycled slots. */
    struct IqWaiter
    {
        DynInst *inst;
        uint64_t seq;
    };
    std::vector<std::vector<IqWaiter>> regWaiters_;
    std::vector<DynInstPtr> wokenBuf_; ///< woken this cycle (scratch)
    std::vector<DynInstPtr> mergeBuf_; ///< merge scratch

    // Partitioned sizes (set at configure()).
    uint32_t robPerThread_ = 0;
    uint32_t lqPerThread_ = 0;
    uint32_t sqPerThread_ = 0;
    uint32_t numActive_ = 0;
    /** Active thread ids, ascending; the per-cycle stage loops walk
     *  this instead of every SMT slot. */
    std::vector<ThreadId> activeTids_;

    uint64_t seqCtr_ = 0;
    uint32_t iqOccupancy_ = 0;
    uint32_t fetchRr_ = 0;
    uint32_t renameRr_ = 0;
    uint32_t commitRr_ = 0;

    // Per-cycle resources
    uint32_t memPortsUsed_ = 0;
    uint32_t aluUsed_ = 0;
    uint32_t mulUsed_ = 0;
    Cycle divBusyUntil_ = 0;
    uint32_t issuedThisCycle_ = 0;

    Cycle lastCommit_ = 0;
    CoreStats stats_;
    bool configured_ = false;

    // Cycle-elision state (DESIGN.md §13).
    /** Any simulated-state mutation during the current tick sets this. */
    bool tickActive_ = true;
    /** Entries currently in wbRing_ (gates the deadline scan). */
    uint32_t wbCount_ = 0;
    /** CPI bucket of the last tick (bulk credit target). */
    size_t lastBucket_ = 0;
    /** Tick-entry snapshots of the per-cycle rename stall counters;
     *  elide() replays (current - snapshot) per elided cycle. */
    uint64_t snapQueueEmpty_ = 0;
    uint64_t snapQueueFull_ = 0;
    uint64_t snapPoolStalls_ = 0;
    uint64_t snapCkptStalls_ = 0;

    /** Guardrail hooks; null = disabled (single-branch hook sites). */
    debug::Guardrails *guardrails_ = nullptr;
    /** Observability hooks; null = disabled (single-branch hook sites). */
    obs::Observer *obs_ = nullptr;
    /** Fault injection: rename sees the pool/arena as exhausted. */
    Cycle poolBlockedUntil_ = 0;
    Cycle ckptBlockedUntil_ = 0;

    /** Epoch scheduler: defer atomics to the epoch edge. */
    bool epochDefer_ = false;
    std::vector<DeferredAtomic> deferredAtomics_;
    /** Write-buffering memory view (pass-through when not deferring). */
    EpochMemView memView_;
};

} // namespace pipette

#endif // PIPETTE_CORE_CORE_H
