#include "core/core.h"

#include <algorithm>
#include <iterator>
#include <sstream>

#include "debug/guardrails.h"
#include "obs/observer.h"

namespace pipette {

namespace {

/** Mask a value to `bytes` width (forwarding, sub-word loads). */
uint64_t
maskToSize(uint64_t v, uint8_t bytes)
{
    if (bytes >= 8)
        return v;
    return v & ((1ull << (8 * bytes)) - 1);
}

bool
rangesOverlap(Addr a1, uint8_t s1, Addr a2, uint8_t s2)
{
    return a1 < a2 + s2 && a2 < a1 + s1;
}

/**
 * DynInst pool sizing: live instructions are bounded by the ROB plus
 * issue-queue/LSQ residue, and squashed instructions can linger while
 * outstanding memory completions hold references. The generous default
 * makes exhaustion (a rename stall) unreachable in practice, keeping
 * simulated timing identical to an unbounded allocator.
 */
uint32_t
dynInstPoolCapacity(const CoreConfig &cfg)
{
    if (cfg.dynInstPoolEntries)
        return cfg.dynInstPoolEntries;
    return cfg.robEntries + cfg.iqEntries +
           8 * (cfg.lqEntries + cfg.sqEntries) + 1024;
}

uint32_t
checkpointArenaCapacity(const CoreConfig &cfg)
{
    if (cfg.checkpointArenaEntries)
        return cfg.checkpointArenaEntries;
    // Checkpoints are freed with their instruction, so the in-flight
    // branch population is bounded by the DynInst pool.
    return dynInstPoolCapacity(cfg);
}

} // namespace

Core::Core(CoreId id, const CoreConfig &cfg, SimMemory *mem,
           MemoryHierarchy *hier, EventQueue *eq)
    : id_(id), cfg_(cfg), mem_(mem), hier_(hier), eq_(eq),
      ckptArena_(checkpointArenaCapacity(cfg)),
      pool_(dynInstPoolCapacity(cfg)),
      prf_(cfg.physRegs),
      qrm_(cfg.numQueues, cfg.queueCapacity, cfg.maxQueueRegs),
      bpred_(cfg, cfg.smtThreads), memView_(mem)
{
    threads_.resize(cfg.smtThreads);
    for (ThreadCtx &t : threads_) {
        t.renameMap.fill(INVALID_PREG);
        t.mapDir.fill(-1);
        t.mapQ.fill(INVALID_QUEUE);
    }
    // Wakeup-driven issue: track ready transitions and pre-size the
    // issue-stage buffers so the steady state never reallocates.
    prf_.enableReadyLog();
    regWaiters_.resize(cfg.physRegs);
    // A register's waiter list is cleared on every ready transition;
    // between transitions it can hold at most the IQ population (plus
    // briefly-stale squashed entries), so one IQ's worth of capacity
    // per register keeps the wakeup path reallocation-free.
    for (auto &ws : regWaiters_)
        ws.reserve(cfg.iqEntries);
    for (auto &slot : wbRing_)
        slot.reserve(64); // > issue width x latencies landing together
    eligible_.reserve(cfg.iqEntries);
    wokenBuf_.reserve(cfg.iqEntries);
    mergeBuf_.reserve(cfg.iqEntries);
}

void
Core::addThread(const ThreadSpec &ts)
{
    panic_if(configured_, "addThread after configure");
    panic_if(ts.tid >= threads_.size(), "thread id out of range");
    ThreadCtx &t = threads_[ts.tid];
    panic_if(t.active, "thread ", ts.tid, " attached twice");
    t.active = true;
    t.prog = ts.prog;
    t.pc = 0;
    t.deqHandler = ts.deqHandler;
    t.enqHandler = ts.enqHandler;
    for (const QueueMapSpec &m : ts.queueMaps) {
        panic_if(m.archReg == reg::ZERO, "cannot queue-map r0");
        fatal_if(m.queue >= cfg_.numQueues, "queue id out of range");
        t.mapDir[m.archReg] = m.dir == QueueDir::In ? 0 : 1;
        t.mapQ[m.archReg] = m.queue;
    }
    // Pin architectural registers to physical registers now.
    for (uint32_t r = 0; r < NUM_ARCH_REGS; r++) {
        PhysRegId p = prf_.alloc();
        prf_.write(p, r == reg::ZERO ? 0 : ts.initRegs[r]);
        t.renameMap[r] = p;
    }
}

void
Core::configure()
{
    panic_if(configured_, "configure called twice");
    configured_ = true;
    numActive_ = 0;
    activeTids_.clear();
    for (uint32_t tid = 0; tid < threads_.size(); tid++) {
        if (threads_[tid].active) {
            numActive_++;
            activeTids_.push_back(static_cast<ThreadId>(tid));
        }
    }
    if (numActive_ == 0)
        return; // idle core (e.g., unused stage slot)
    robPerThread_ = cfg_.robEntries / numActive_;
    lqPerThread_ = std::max(1u, cfg_.lqEntries / numActive_);
    sqPerThread_ = std::max(1u, cfg_.sqEntries / numActive_);
    for (ThreadCtx &t : threads_) {
        t.fetchQ.init(cfg_.fetchBufferEntries);
        t.rob.init(robPerThread_);
        t.loadQ.init(lqPerThread_);
        t.storeQ.init(sqPerThread_);
        t.storeBuffer.init(cfg_.storeBufferEntries);
        // Precompute, per PC, whether rename's queue gates apply: the
        // queue maps and program are fixed from here on. Pipette ops
        // always take the gate path (their operands must be
        // queue-mapped; the gates also hold the malformed-program
        // diagnostics).
        if (!t.active)
            continue;
        t.queueFreeByPc.assign(t.prog->size(), 0);
        for (Addr pc = 0; pc < t.prog->size(); pc++) {
            const Instr &si = t.prog->at(pc);
            const OpInfo &info = opInfo(si.op);
            bool qf = si.op != Op::PEEK && si.op != Op::SKIPTC &&
                      si.op != Op::ENQC;
            if (qf && info.readsRs1 && t.mapDir[si.rs1] != -1)
                qf = false;
            if (qf && info.readsRs2 && t.mapDir[si.rs2] != -1)
                qf = false;
            if (qf && info.readsRd && t.mapDir[si.rd] != -1)
                qf = false;
            if (qf && info.writesRd && si.rd != reg::ZERO &&
                t.mapDir[si.rd] != -1)
                qf = false;
            t.queueFreeByPc[pc] = qf ? 1 : 0;
        }
    }
}

void
Core::restoreThreadState(ThreadId tid, Addr pc, bool halted,
                         const std::array<uint64_t, NUM_ARCH_REGS> &regs)
{
    panic_if(!configured_, "restoreThreadState before configure");
    ThreadCtx &t = threads_[tid];
    panic_if(!t.active, "restore of inactive thread ", tid);
    t.pc = pc;
    t.halted = halted;
    t.haltFetched = halted;
    // r0 keeps its pinned zero; everything else takes the snapshot
    // value through the existing rename mapping.
    for (uint32_t r = 1; r < NUM_ARCH_REGS; r++)
        prf_.write(t.renameMap[r], regs[r]);
}

void
Core::preloadQueueEntry(QueueId q, uint64_t value, bool ctrl)
{
    panic_if(!configured_, "preloadQueueEntry before configure");
    PhysRegId p = prf_.alloc();
    prf_.write(p, value);
    qrm_.enqueueNonSpec(q, p, ctrl);
}

bool
Core::allHalted() const
{
    for (ThreadId tid : activeTids_)
        if (!threads_[tid].halted)
            return false;
    return true;
}

bool
Core::tryUseMemPort()
{
    if (memPortsUsed_ >= cfg_.numMemPorts)
        return false;
    memPortsUsed_++;
    return true;
}

void
Core::tick(Cycle now)
{
    panic_if(!configured_, "tick before configure");
    memPortsUsed_ = 0;
    aluUsed_ = 0;
    mulUsed_ = 0;
    issuedThisCycle_ = 0;
    tickActive_ = false;
    snapQueueEmpty_ = stats_.queueEmptyStalls;
    snapQueueFull_ = stats_.queueFullStalls;
    snapPoolStalls_ = stats_.dynInstPoolStalls;
    snapCkptStalls_ = stats_.checkpointStalls;

    processWritebacks(now);
    commit(now);
    issue(now);
    rename(now);
    fetch(now);
    drainStoreBuffers(now);
    accountCpi(now);
    stats_.cycles++;
}

// ---------------------------------------------------------------- fetch

void
Core::fetch(Cycle now)
{
    // ICOUNT: fetch from the thread with the fewest in-flight instrs.
    int best = -1;
    size_t bestCount = ~0ull;
    size_t nAct = activeTids_.size();
    size_t start = rrStart(fetchRr_);
    for (size_t j = 0; j < nAct; j++) {
        ThreadId tid = activeTids_[(start + j) % nAct];
        ThreadCtx &t = threads_[tid];
        if (t.halted || t.haltFetched)
            continue;
        if (t.fetchBlockedUntil > now)
            continue;
        if (t.fetchQ.size() >= cfg_.fetchBufferEntries)
            continue;
        size_t count = t.fetchQ.size() + t.rob.size();
        if (count < bestCount) {
            bestCount = count;
            best = static_cast<int>(tid);
        }
    }
    fetchRr_++;
    if (best < 0)
        return;
    tickActive_ = true; // a fetchable thread always fetches >= 1 instr

    ThreadCtx &t = threads_[best];
    ThreadId tid = static_cast<ThreadId>(best);
    for (uint32_t n = 0; n < cfg_.fetchWidth; n++) {
        if (t.fetchQ.size() >= cfg_.fetchBufferEntries)
            break;
        const Instr &si = t.prog->at(t.pc);
        const OpInfo &info = opInfo(si.op);
        FetchedInst fi;
        fi.pc = t.pc;
        fi.si = &si;
        fi.info = &info;
        fi.readyCycle = now + cfg_.frontendDelay;
        fi.queueFree = t.queueFreeByPc[t.pc] != 0;
        stats_.fetchedInstrs++;

        bool endGroup = false;
        if (info.isCondBranch) {
            fi.histAtPred = bpred_.history(tid);
            fi.predTaken = bpred_.predictCond(tid, t.pc);
            fi.predTarget = static_cast<Addr>(si.target);
            if (fi.predTaken) {
                t.pc = fi.predTarget;
                endGroup = true;
            } else {
                t.pc++;
            }
        } else if (info.isDirectJump) {
            t.pc = static_cast<Addr>(si.target);
            endGroup = true;
        } else if (info.isIndirectJump) {
            Addr tgt;
            if (bpred_.predictIndirect(tid, t.pc, &tgt))
                fi.predTarget = tgt;
            else
                fi.predTarget = t.pc + 1;
            t.pc = fi.predTarget;
            endGroup = true;
        } else if (info.isHalt) {
            t.haltFetched = true;
            endGroup = true;
        } else {
            t.pc++;
        }
        t.fetchQ.push_back(fi);
        if (endGroup)
            break;
    }
}

// --------------------------------------------------------------- rename

void
Core::rename(Cycle now)
{
    for (ThreadId tid : activeTids_)
        threads_[tid].renameStall = StallReason::Empty;

    uint32_t width = cfg_.renameWidth;
    size_t nAct = activeTids_.size();
    size_t start = rrStart(renameRr_);
    for (size_t j = 0; j < nAct && width > 0; j++) {
        ThreadId tid = activeTids_[(start + j) % nAct];
        ThreadCtx &t = threads_[tid];
        if (t.halted)
            continue;
        while (width > 0) {
            StallReason st = renameOne(tid, now);
            t.renameStall = st;
            if (st != StallReason::None)
                break;
            tickActive_ = true;
            width--;
        }
    }
    renameRr_++;
}

Core::StallReason
Core::renameOne(ThreadId tid, Cycle now)
{
    ThreadCtx &t = threads_[tid];
    if (t.fetchQ.empty() || t.fetchQ.front().readyCycle > now)
        return StallReason::Empty;
    const FetchedInst &fi = t.fetchQ.front();
    const Instr &si = *fi.si;
    const OpInfo &info = *fi.info;

    // Queue-stall fast path: the gates are a pure function of the
    // instruction, the (static) queue maps, the state of the queues the
    // instruction touches, the register budget (only when the stall was
    // budget-bound), and -- for skiptc's oldest-instruction drain --
    // the ROB occupancy. While a stalled instruction's key is
    // unchanged, the recorded outcome (including the stat bump) is
    // exactly what re-running the gates would do.
    if (t.stallMemo != StallReason::None && t.stallSi == fi.si &&
        t.stallPc == fi.pc && t.stallRobSize == t.rob.size() &&
        (!t.stallNeedRegs || t.stallRegsVersion == qrm_.regsVersion())) {
        bool hit = true;
        for (uint8_t i = 0; i < t.stallNq; i++) {
            if (qrm_.version(t.stallQs[i]) != t.stallQv[i]) {
                hit = false;
                break;
            }
        }
        if (hit) {
            if (t.stallMemo == StallReason::QueueEmpty)
                stats_.queueEmptyStalls++;
            else
                stats_.queueFullStalls++;
            return t.stallMemo;
        }
    }

    // ---- Classify operands.
    ArchRegId srcRegs[3];
    int nsrcRegs = 0;
    if (info.readsRs1)
        srcRegs[nsrcRegs++] = si.rs1;
    if (info.readsRs2)
        srcRegs[nsrcRegs++] = si.rs2;
    if (info.readsRd)
        srcRegs[nsrcRegs++] = si.rd;

    bool isPeek = si.op == Op::PEEK;
    bool isSkip = si.op == Op::SKIPTC;

    // Record a queue stall in the memo: snapshot the versions of every
    // queue the gates may consult for this instruction (a superset of
    // those actually consulted is safe -- it only costs extra misses).
    auto queueStall = [&](StallReason r) {
        if (r == StallReason::QueueEmpty)
            stats_.queueEmptyStalls++;
        else
            stats_.queueFullStalls++;
        t.stallMemo = r;
        t.stallSi = fi.si;
        t.stallPc = fi.pc;
        t.stallRobSize = t.rob.size();
        uint8_t nq = 0;
        for (int i = 0; i < nsrcRegs; i++) {
            if (t.mapDir[srcRegs[i]] == 0) {
                t.stallQs[nq] = t.mapQ[srcRegs[i]];
                t.stallQv[nq] = qrm_.version(t.stallQs[nq]);
                nq++;
            }
        }
        if (isPeek || isSkip) {
            t.stallQs[nq] = t.mapQ[si.rs1];
            t.stallQv[nq] = qrm_.version(t.stallQs[nq]);
            nq++;
        }
        bool needRegs = false;
        if (info.writesRd && si.rd != reg::ZERO && t.mapDir[si.rd] == 1) {
            QueueId q = t.mapQ[si.rd];
            t.stallQs[nq] = q;
            t.stallQv[nq] = qrm_.version(q);
            nq++;
            // canEnqueueSpec also reads the shared register budget; a
            // capacity-bound stall stays a stall no matter how the
            // budget moves, so only budget-bound stalls key on it.
            needRegs = r == StallReason::QueueFull && !qrm_.enqueueFull(q);
        }
        t.stallNq = nq;
        t.stallNeedRegs = needRegs;
        t.stallRegsVersion = qrm_.regsVersion();
        return r;
    };

    QueueId trapQueue = INVALID_QUEUE;
    bool enq = false;
    bool enqTrap = false;
    Qrm::CtrlScan scan;
    if (!fi.queueFree) {

    // ---- Gate 1: every dequeue source needs a committed entry.
    for (int i = 0; i < nsrcRegs; i++) {
        ArchRegId r = srcRegs[i];
        panic_if(t.mapDir[r] == 1, "read of output-mapped r",
                 static_cast<int>(r), " at pc ", fi.pc, " in '",
                 t.prog->name(), "'");
        if (t.mapDir[r] == 0) {
            for (int j = 0; j < i; j++) {
                panic_if(t.mapDir[srcRegs[j]] == 0 &&
                             t.mapQ[srcRegs[j]] == t.mapQ[r],
                         "instruction dequeues queue twice at pc ", fi.pc);
            }
            if (!qrm_.canDequeueSpec(t.mapQ[r]))
                return queueStall(StallReason::QueueEmpty);
        }
    }
    if (isPeek || isSkip) {
        panic_if(t.mapDir[si.rs1] != 0, "peek/skiptc on non-input reg at "
                 "pc ", fi.pc, " in '", t.prog->name(), "'");
    }
    if (isPeek && !qrm_.canDequeueSpec(t.mapQ[si.rs1]))
        return queueStall(StallReason::QueueEmpty);

    // ---- Gate 2: control value at the head of a dequeue source?
    for (int i = 0; i < nsrcRegs && trapQueue == INVALID_QUEUE; i++) {
        ArchRegId r = srcRegs[i];
        if (t.mapDir[r] == 0 && qrm_.headCtrl(t.mapQ[r]))
            trapQueue = t.mapQ[r];
    }
    if (isPeek && trapQueue == INVALID_QUEUE &&
        qrm_.headCtrl(t.mapQ[si.rs1])) {
        trapQueue = t.mapQ[si.rs1];
    }

    // ---- Gate 3: destination enqueue conditions.
    enq = info.writesRd && si.rd != reg::ZERO && t.mapDir[si.rd] == 1;
    panic_if(info.writesRd && si.rd != reg::ZERO && t.mapDir[si.rd] == 0,
             "write to input-mapped r", static_cast<int>(si.rd),
             " at pc ", fi.pc);
    panic_if(si.op == Op::ENQC && !enq,
             "enqc destination not output-mapped at pc ", fi.pc);
    if (enq && trapQueue == INVALID_QUEUE) {
        QueueId q = t.mapQ[si.rd];
        if (qrm_.skipArmed(q) && si.op != Op::ENQC) {
            enqTrap = true;
        } else if (!qrm_.canEnqueueSpec(q)) {
            return queueStall(StallReason::QueueFull);
        }
    }

    // ---- skiptc: find a control value among committed entries.
    if (isSkip && trapQueue == INVALID_QUEUE && !enqTrap) {
        QueueId q = t.mapQ[si.rs1];
        scan = qrm_.scanForCtrl(q);
        if (!scan.found) {
            // No CV yet. Once this skiptc is the oldest instruction of
            // its thread it is non-speculative: drain committed data
            // entries outright. Arm the queue only while no control
            // value is in flight -- an uncommitted CV means the current
            // work unit is ending by itself, and arming now would
            // redirect the producer inside the *next* unit instead
            // (wrong-abort race). Data-only in-flight entries are safe:
            // they belong to the unit being skipped.
            if (t.rob.empty()) {
                uint32_t drained = 0;
                while (qrm_.canDequeueNonSpec(q)) {
                    bool ctrl = false;
                    PhysRegId r = qrm_.dequeueNonSpec(q, &ctrl);
                    panic_if(ctrl, "ctrl entry appeared mid-drain");
                    prf_.free(r);
                    stats_.skipDiscards++;
                    drained++;
                }
                if (drained > 0) {
                    // The drain cycle's stat deltas (skipDiscards)
                    // differ from the memo-hit retries that follow, so
                    // it can never serve as an elision template.
                    tickActive_ = true;
                    if (guardrails_)
                        guardrails_->onSkipDrain(now, id_, tid, q,
                                                 drained);
                }
                if (!qrm_.hasInflightCtrl(q)) {
                    qrm_.armSkip(q); // queue-state mutation
                    tickActive_ = true;
                }
            }
            return queueStall(StallReason::QueueEmpty);
        }
    }

    } // if (!fi.queueFree)

    // ---- Effective micro-op and resource requirements.
    Op effOp = si.op;
    int ndest = 0;
    if (trapQueue != INVALID_QUEUE) {
        panic_if(t.deqHandler < 0, "control value with no dequeue handler "
                 "(program '", t.prog->name(), "', pc ", fi.pc, ")");
        effOp = Op::CVTRAP;
        ndest = 3;
    } else if (enqTrap) {
        panic_if(t.enqHandler < 0, "skip armed with no enqueue handler "
                 "(program '", t.prog->name(), "', pc ", fi.pc, ")");
        effOp = Op::ENQTRAP;
        ndest = 2;
    } else if (info.writesRd && si.rd != reg::ZERO) {
        ndest = 1;
    }

    bool isLoad = effOp == si.op && info.isLoad && !info.isAtomic;
    bool isStore = effOp == si.op && info.isStore && !info.isAtomic;
    bool isAtomic = effOp == si.op && info.isAtomic;

    if (t.rob.size() >= robPerThread_ || iqOccupancy_ >= cfg_.iqEntries)
        return StallReason::Resource;
    if ((isLoad || isAtomic) && t.loadQ.size() >= lqPerThread_)
        return StallReason::Resource;
    if (isStore && t.storeQ.size() >= sqPerThread_)
        return StallReason::Resource;
    if (prf_.numFree() < static_cast<uint32_t>(ndest))
        return StallReason::Resource;
    if (pool_.numFree() == 0 || now < poolBlockedUntil_) {
        stats_.dynInstPoolStalls++;
        return StallReason::Resource;
    }
    bool needsCkpt = effOp == si.op &&
                     (info.isCondBranch || info.isIndirectJump);
    if (needsCkpt &&
        (ckptArena_.numFree() == 0 || now < ckptBlockedUntil_)) {
        stats_.checkpointStalls++;
        return StallReason::Resource;
    }

    // ---- Commit point of rename: build the DynInst and mutate state.
    DynInstPtr inst(pool_.tryAcquire());
    inst->seq = ++seqCtr_;
    inst->tid = tid;
    inst->pc = fi.pc;
    inst->si = &si;
    inst->op = effOp;
    inst->isLoad = isLoad;
    inst->isStore = isStore;
    inst->isAtomic = isAtomic;
    inst->predTaken = fi.predTaken;
    inst->predTarget = fi.predTarget;
    inst->histAtPred = fi.histAtPred;
    inst->isCondBranch = effOp == si.op && info.isCondBranch;
    inst->isIndirect = effOp == si.op && info.isIndirectJump;
    inst->fetchReady = fi.readyCycle;
    inst->renameCycle = now;

    if (effOp == Op::CVTRAP) {
        // Consume the CV, deliver payload, redirect to the handler.
        inst->srcs[0] = qrm_.dequeueSpec(trapQueue);
        inst->nsrc = 1;
        inst->deqQueues[0] = trapQueue;
        inst->ndeq = 1;
        inst->cvQid = trapQueue;
        inst->cvRet = fi.pc;
        ArchRegId darch[3] = {reg::CVVAL, reg::CVQID, reg::CVRET};
        for (int d = 0; d < 3; d++) {
            inst->dests[d] = prf_.alloc();
            inst->prevDests[d] = t.renameMap[darch[d]];
            t.renameMap[darch[d]] = inst->dests[d];
        }
        inst->ndest = 3;
        t.fetchQ.clear();
        t.pc = static_cast<Addr>(t.deqHandler);
        t.haltFetched = false;
        stats_.cvTraps++;
    } else if (effOp == Op::ENQTRAP) {
        inst->cvQid = t.mapQ[si.rd];
        inst->cvRet = fi.pc;
        ArchRegId darch[2] = {reg::CVQID, reg::CVRET};
        for (int d = 0; d < 2; d++) {
            inst->dests[d] = prf_.alloc();
            inst->prevDests[d] = t.renameMap[darch[d]];
            t.renameMap[darch[d]] = inst->dests[d];
        }
        inst->ndest = 2;
        t.fetchQ.clear();
        t.pc = static_cast<Addr>(t.enqHandler);
        t.haltFetched = false;
        stats_.enqTraps++;
    } else {
        // Normal rename: sources.
        if (isSkip) {
            QueueId q = t.mapQ[si.rs1];
            PhysRegId cvReg = INVALID_PREG;
            for (uint32_t k = 0; k <= scan.offset; k++)
                cvReg = qrm_.dequeueSpec(q);
            inst->srcs[0] = cvReg;
            inst->nsrc = 1;
            inst->deqQueues[0] = q;
            inst->skipConsumed = scan.offset + 1;
            stats_.skipDiscards += scan.offset;
        } else if (isPeek) {
            inst->srcs[0] = qrm_.headReg(t.mapQ[si.rs1]);
            inst->nsrc = 1;
        } else {
            for (int i = 0; i < nsrcRegs; i++) {
                ArchRegId r = srcRegs[i];
                if (t.mapDir[r] == 0) {
                    QueueId q = t.mapQ[r];
                    inst->srcs[i] = qrm_.dequeueSpec(q);
                    inst->deqQueues[inst->ndeq++] = q;
                } else {
                    inst->srcs[i] = t.renameMap[r];
                }
            }
            inst->nsrc = nsrcRegs;
        }

        // Destination.
        if (ndest == 1) {
            inst->dests[0] = prf_.alloc();
            inst->ndest = 1;
            if (enq) {
                QueueId q = t.mapQ[si.rd];
                inst->destIsQueue = true;
                inst->enqQueue = q;
                if (si.op == Op::ENQC && qrm_.skipArmed(q)) {
                    inst->clearedSkip = true;
                    qrm_.setSkipArmed(q, false);
                }
                qrm_.enqueueSpec(q, inst->dests[0], si.op == Op::ENQC);
            } else {
                inst->prevDests[0] = t.renameMap[si.rd];
                t.renameMap[si.rd] = inst->dests[0];
            }
        }

        // Branch checkpoint (arena slot reserved above).
        if (inst->isCondBranch || inst->isIndirect) {
            inst->checkpoint = ckptArena_.alloc();
            inst->ckptArena = &ckptArena_;
            *inst->checkpoint = t.renameMap;
        }
    }

    if (effOp != Op::CVTRAP && effOp != Op::ENQTRAP)
        t.fetchQ.pop_front();

    // Atomics are full fences (x86 LOCK semantics): younger loads must
    // not execute before them. FENCE gets the same treatment.
    if (effOp == Op::FENCE || isAtomic)
        t.pendingFences.insert(inst->seq);

    t.rob.push_back(inst);
    if (inst->isLoad || inst->isAtomic)
        t.loadQ.push_back(inst);
    if (inst->isStore)
        t.storeQ.push_back(inst);

    // Enter the issue queue: ready entries go straight to eligible_
    // (rename order == age order); the rest sleep on the waiter list of
    // each unready source until its ready transition wakes them.
    uint32_t waits = 0;
    for (int s = 0; s < inst->nsrc; s++) {
        PhysRegId r = inst->srcs[s];
        if (!prf_.isReady(r)) {
            regWaiters_[r].push_back(IqWaiter{inst.get(), inst->seq});
            waits++;
        }
    }
    inst->waitCnt = static_cast<uint8_t>(waits);
    if (waits == 0)
        eligible_.push_back(inst);
    inst->inIQ = true;
    iqOccupancy_++;
    return StallReason::None;
}

// ---------------------------------------------------------------- issue

void
Core::readSources(const DynInstPtr &inst, uint64_t *v1, uint64_t *v2,
                  uint64_t *vd) const
{
    const OpInfo &info = opInfo(inst->si->op);
    int i = 0;
    *v1 = *v2 = *vd = 0;
    if (inst->op == Op::CVTRAP || inst->op == Op::ENQTRAP ||
        inst->op == Op::PEEK || inst->op == Op::SKIPTC) {
        if (inst->nsrc > 0)
            *v1 = prf_.read(inst->srcs[0]);
        return;
    }
    if (info.readsRs1)
        *v1 = prf_.read(inst->srcs[i++]);
    if (info.readsRs2)
        *v2 = prf_.read(inst->srcs[i++]);
    if (info.readsRd)
        *vd = prf_.read(inst->srcs[i++]);
}

void
Core::applyWriteback(const DynInstPtr &inst,
                     const std::array<uint64_t, DynInst::MAX_DESTS> &vals)
{
    inst->pendingCompletions--;
    if (inst->squashed) {
        if (inst->pendingCompletions == 0) {
            for (int d = 0; d < inst->ndest; d++)
                prf_.free(inst->dests[d]);
        }
        return;
    }
    for (int d = 0; d < inst->ndest; d++) {
        prf_.write(inst->dests[d], vals[d]);
        stats_.regWrites++;
    }
    inst->executed = true;
    inst->completeCycle = eq_->now();
}

void
Core::scheduleWriteback(const DynInstPtr &inst, Cycle when,
                        std::array<uint64_t, DynInst::MAX_DESTS> vals)
{
    inst->pendingCompletions++;
    Cycle now = eq_->now();
    if (when > now && when - now < WB_RING) {
        wbRing_[when % WB_RING].push_back(WbEntry{inst, vals});
        wbCount_++;
        return;
    }
    eq_->schedule(when, [this, inst, vals] { applyWriteback(inst, vals); });
}

void
Core::processWritebacks(Cycle now)
{
    auto &slot = wbRing_[now % WB_RING];
    if (slot.empty())
        return;
    tickActive_ = true;
    wbCount_ -= static_cast<uint32_t>(slot.size());
    for (WbEntry &e : slot)
        applyWriteback(e.inst, e.vals);
    slot.clear();
}

bool
Core::isOldestInThread(const DynInstPtr &inst) const
{
    const ThreadCtx &t = threads_[inst->tid];
    return !t.rob.empty() && t.rob.front() == inst;
}

bool
Core::tryExecuteLoad(const DynInstPtr &inst, Cycle now)
{
    ThreadCtx &t = threads_[inst->tid];
    // Memory ordering: wait for older fences.
    if (!t.pendingFences.empty() && *t.pendingFences.begin() < inst->seq)
        return false;
    uint64_t v1, v2, vd;
    readSources(inst, &v1, &v2, &vd);
    Addr addr = v1 + static_cast<uint64_t>(inst->si->imm);
    uint8_t size = opInfo(inst->si->op).memBytes;

    // Conservative memory dependences: all older same-thread stores must
    // have known addresses; forward only on exact matches.
    const DynInstPtr *fwd = nullptr;
    for (size_t k = t.storeQ.size(); k-- > 0;) {
        const DynInstPtr &s = t.storeQ[k];
        if (s->seq > inst->seq)
            continue;
        if (!s->addrReady)
            return false; // defer: unknown older store address
        if (s->memAddr == addr && s->memSize == size) {
            fwd = &s;
            break;
        }
        if (rangesOverlap(s->memAddr, s->memSize, addr, size))
            return false; // partial overlap: wait for the store to drain
    }

    if (fwd) {
        inst->memAddr = addr;
        inst->memSize = size;
        scheduleWriteback(inst, now + 1,
                          {maskToSize((*fwd)->storeData, size), 0, 0});
        return true;
    }

    if (!tryUseMemPort())
        return false;

    inst->memAddr = addr;
    inst->memSize = size;
    inst->pendingCompletions++;
    // Through the view: in epoch mode the shared memory only holds
    // state up to the last edge, and this core's younger committed
    // stores forward from its private buffer.
    const EpochMemView *mem = &memView_;
    PhysRegFile *prf = &prf_;
    CoreStats *st = &stats_;
    EventQueue *eqp = eq_;
    Cycle done = hier_->access(id_, addr, false, now,
                               [inst, mem, prf, st, addr, size, eqp] {
        inst->pendingCompletions--;
        if (inst->squashed) {
            if (inst->pendingCompletions == 0) {
                for (int d = 0; d < inst->ndest; d++)
                    prf->free(inst->dests[d]);
            }
            return;
        }
        uint64_t val = mem->read(addr, size);
        if (inst->ndest > 0) {
            prf->write(inst->dests[0], val);
            st->regWrites++;
        }
        inst->executed = true;
        // In epoch mode the issue-time `done` below is PENDING; the
        // callback runs at the true completion cycle either way.
        inst->completeCycle = eqp->now();
    });
    inst->completeCycle = done;
    return true;
}

void
Core::replayAtomicAtEdge(const DeferredAtomic &op, Cycle edge)
{
    DynInstPtr inst = op.inst;
    uint64_t old = mem_->read(op.addr, op.size);
    AtomicResult ar = evalAtomic(inst->si->op, old, op.v2, op.vd);
    if (ar.doStore)
        mem_->write(op.addr, op.size, ar.newValue);
    PhysRegFile *prf = &prf_;
    CoreStats *st = &stats_;
    EventQueue *eqp = eq_;
    hier_->accessAtEdge(id_, op.addr, true, op.issue, edge,
                        [inst, prf, st, old, eqp] {
        inst->pendingCompletions--;
        if (inst->squashed) {
            panic("atomic squashed while in flight");
        }
        if (inst->ndest > 0) {
            prf->write(inst->dests[0], old);
            st->regWrites++;
        }
        inst->executed = true;
        inst->completeCycle = eqp->now();
    });
}

bool
Core::executeInst(const DynInstPtr &inst, Cycle now)
{
    const Instr &si = *inst->si;
    const OpInfo &info = opInfo(si.op);

    switch (inst->op) {
      case Op::CVTRAP: {
        uint64_t v1, v2, vd;
        readSources(inst, &v1, &v2, &vd);
        scheduleWriteback(inst, now + 1, {v1, inst->cvQid, inst->cvRet});
        return true;
      }
      case Op::ENQTRAP:
        scheduleWriteback(inst, now + 1, {inst->cvQid, inst->cvRet, 0});
        return true;
      default:
        break;
    }

    if (inst->isLoad)
        return tryExecuteLoad(inst, now);

    if (inst->isAtomic) {
        if (!isOldestInThread(inst))
            return false;
        if (!threads_[inst->tid].storeBuffer.empty())
            return false;
        if (!tryUseMemPort())
            return false;
        uint64_t v1, v2, vd;
        readSources(inst, &v1, &v2, &vd);
        Addr addr = v1;
        uint8_t size = info.memBytes;
        inst->memAddr = addr;
        inst->memSize = size;
        stats_.atomics++;
        threads_[inst->tid].pendingFences.erase(inst->seq);
        inst->pendingCompletions++;
        if (epochDefer_) {
            // Epoch mode: the read-modify-write touches shared memory,
            // so its functional effect and cache access replay at the
            // epoch edge in deterministic (issue, core, seq) order.
            deferredAtomics_.push_back(
                {now, inst->seq, addr, size, v2, vd, inst});
            return true;
        }
        uint64_t old = mem_->read(addr, size);
        AtomicResult ar = evalAtomic(si.op, old, v2, vd);
        if (ar.doStore)
            mem_->write(addr, size, ar.newValue);
        PhysRegFile *prf = &prf_;
        CoreStats *st = &stats_;
        Cycle done = hier_->access(id_, addr, true, now,
                                   [inst, prf, st, old] {
            inst->pendingCompletions--;
            if (inst->squashed) {
                panic("atomic squashed while in flight");
            }
            if (inst->ndest > 0) {
                prf->write(inst->dests[0], old);
                st->regWrites++;
            }
            inst->executed = true;
        });
        inst->completeCycle = done;
        return true;
    }

    if (inst->isStore) {
        uint64_t v1, v2, vd;
        readSources(inst, &v1, &v2, &vd);
        inst->memAddr = v1 + static_cast<uint64_t>(si.imm);
        inst->memSize = info.memBytes;
        inst->storeData = v2;
        inst->addrReady = true;
        scheduleWriteback(inst, now + 1, {0, 0, 0});
        return true;
    }

    uint64_t v1, v2, vd;
    readSources(inst, &v1, &v2, &vd);

    if (inst->isCondBranch) {
        bool useImm = si.op >= Op::BEQI && si.op <= Op::BGEI;
        bool taken = evalBranch(
            si.op, v1, useImm ? static_cast<uint64_t>(si.imm) : v2);
        inst->actualTaken = taken;
        inst->actualTarget =
            taken ? static_cast<Addr>(si.target) : inst->pc + 1;
        bpred_.updateCond(inst->tid, inst->pc, taken, inst->histAtPred);
        stats_.branches++;
        Addr predictedPc =
            inst->predTaken ? inst->predTarget : inst->pc + 1;
        scheduleWriteback(inst, now + 1, {0, 0, 0});
        if (predictedPc != inst->actualTarget)
            handleMispredict(inst, now);
        return true;
    }

    if (inst->isIndirect) {
        inst->actualTarget = v1;
        inst->actualTaken = true;
        bpred_.updateIndirect(inst->tid, inst->pc, v1);
        stats_.branches++;
        scheduleWriteback(inst, now + 1, {0, 0, 0});
        if (inst->predTarget != inst->actualTarget)
            handleMispredict(inst, now);
        return true;
    }

    if (inst->op == Op::FENCE) {
        if (!isOldestInThread(inst))
            return false;
        threads_[inst->tid].pendingFences.erase(inst->seq);
        scheduleWriteback(inst, now + 1, {0, 0, 0});
        return true;
    }

    uint64_t result = 0;
    uint32_t latency = info.latency;
    switch (inst->op) {
      case Op::PEEK:
      case Op::SKIPTC:
        result = v1;
        break;
      case Op::ENQC:
        result = v1;
        break;
      case Op::JAL:
        result = inst->pc + 1;
        break;
      case Op::JMP:
      case Op::HALT:
      case Op::NOP:
        break;
      case Op::MUL:
        result = evalAlu(si.op, v1, v2);
        latency = cfg_.mulLatency;
        break;
      case Op::DIVU:
      case Op::REMU: {
        // Partially pipelined divider (Skylake-like): long latency,
        // one new division every few cycles.
        Cycle start = std::max(now, divBusyUntil_);
        divBusyUntil_ = start + 4;
        result = evalAlu(si.op, v1, v2);
        scheduleWriteback(inst, start + cfg_.divLatency, {result, 0, 0});
        return true;
      }
      default:
        result = evalAlu(si.op, v1,
                         info.readsRs2 ? v2
                                       : static_cast<uint64_t>(si.imm));
        break;
    }
    scheduleWriteback(inst, now + latency, {result, 0, 0});
    return true;
}

void
Core::issue(Cycle now)
{
    // Drain ready transitions accumulated since the last scan and wake
    // the sleeping consumers of each register. The wakeup entries carry
    // the seq recorded at rename; a mismatch means the pool slot was
    // recycled (squash) and the entry is stale.
    std::vector<PhysRegId> &readyLog = prf_.readyLog();
    if (!readyLog.empty())
        tickActive_ = true; // wakeups mutate waitCnt/eligible state
    for (PhysRegId r : readyLog) {
        std::vector<IqWaiter> &ws = regWaiters_[r];
        for (const IqWaiter &wt : ws) {
            DynInst *di = wt.inst;
            if (di->seq != wt.seq || di->squashed || !di->inIQ)
                continue;
            if (--di->waitCnt == 0)
                wokenBuf_.push_back(DynInstPtr(di));
        }
        ws.clear();
    }
    readyLog.clear();

    // Merge the woken entries into the age-ordered eligible list so
    // issue order matches a full age-ordered scan exactly.
    if (!wokenBuf_.empty()) {
        std::sort(wokenBuf_.begin(), wokenBuf_.end(),
                  [](const DynInstPtr &a, const DynInstPtr &b) {
                      return a->seq < b->seq;
                  });
        mergeBuf_.clear();
        std::merge(std::make_move_iterator(eligible_.begin()),
                   std::make_move_iterator(eligible_.end()),
                   std::make_move_iterator(wokenBuf_.begin()),
                   std::make_move_iterator(wokenBuf_.end()),
                   std::back_inserter(mergeBuf_),
                   [](const DynInstPtr &a, const DynInstPtr &b) {
                       return a->seq < b->seq;
                   });
        eligible_.swap(mergeBuf_);
        wokenBuf_.clear();
    }

    // Compact squashed/issued entries and issue in age order. All
    // entries here have ready sources (readiness never reverts while an
    // instruction is in flight).
    size_t w = 0;
    bool mispredicted = false;
    for (size_t i = 0; i < eligible_.size(); i++) {
        const DynInstPtr &inst = eligible_[i];
        // undoRename already cleared inIQ for squashed entries.
        if (inst->squashed || inst->issued || !inst->inIQ)
            continue; // drop from IQ
        if (mispredicted || issuedThisCycle_ >= cfg_.issueWidth) {
            if (w != i)
                eligible_[w] = std::move(eligible_[i]);
            w++;
            continue;
        }

        // Functional unit availability.
        const OpInfo &info = opInfo(inst->op == Op::CVTRAP ||
                                            inst->op == Op::ENQTRAP
                                        ? Op::NOP
                                        : inst->si->op);
        bool fuOk = true;
        switch (info.fu) {
          case FuType::Alu:
          case FuType::None:
            fuOk = aluUsed_ < cfg_.numAlu;
            break;
          case FuType::Mul:
            fuOk = mulUsed_ < cfg_.numMul;
            break;
          case FuType::Div:
            fuOk = true; // serialized via divBusyUntil_
            break;
          case FuType::Mem:
            fuOk = memPortsUsed_ < cfg_.numMemPorts;
            break;
        }
        if (!fuOk) {
            if (w != i)
                eligible_[w] = std::move(eligible_[i]);
            w++;
            continue;
        }

        if (!executeInst(inst, now)) {
            // Deferred (LSQ or at-head constraints).
            if (w != i)
                eligible_[w] = std::move(eligible_[i]);
            w++;
            continue;
        }

        switch (info.fu) {
          case FuType::Alu:
          case FuType::None:
          case FuType::Div:
            aluUsed_++;
            break;
          case FuType::Mul:
            mulUsed_++;
            break;
          case FuType::Mem:
            break; // ports accounted inside executeInst
        }
        inst->issued = true;
        inst->issueCycle = now;
        inst->inIQ = false;
        iqOccupancy_--;
        issuedThisCycle_++;
        tickActive_ = true;
        stats_.issuedUops++;
        stats_.regReads += inst->nsrc;
        if (inst->isCondBranch || inst->isIndirect) {
            Addr predictedPc = inst->isIndirect
                                   ? inst->predTarget
                                   : (inst->predTaken ? inst->predTarget
                                                      : inst->pc + 1);
            if (predictedPc != inst->actualTarget)
                mispredicted = true;
        }
    }
    eligible_.resize(w);
}

void
Core::handleMispredict(const DynInstPtr &inst, Cycle now)
{
    ThreadCtx &t = threads_[inst->tid];
    squashYounger(inst->tid, inst->seq);
    panic_if(!inst->checkpoint, "mispredict without checkpoint");
    t.renameMap = *inst->checkpoint;
    if (inst->isCondBranch) {
        bpred_.restoreHistory(inst->tid, inst->histAtPred,
                              inst->actualTaken);
    }
    t.pc = inst->actualTarget;
    t.fetchQ.clear();
    t.haltFetched = false;
    t.fetchBlockedUntil = now + cfg_.mispredictPenalty;
    stats_.mispredicts++;
}

void
Core::undoRename(const DynInstPtr &inst)
{
    inst->squashed = true;
    if (guardrails_)
        guardrails_->onSquash(eq_->now(), id_, *inst);
    if (inst->inIQ) {
        inst->inIQ = false;
        iqOccupancy_--;
    }
    // Reverse of the rename-time mutations, youngest-first.
    if (inst->destIsQueue) {
        PhysRegId r = qrm_.rollbackEnqueue(inst->enqQueue);
        panic_if(r != inst->dests[0], "enqueue rollback mismatch");
    }
    if (inst->skipConsumed > 0) {
        for (uint32_t k = 0; k < inst->skipConsumed; k++)
            qrm_.rollbackDequeue(inst->deqQueues[0]);
    } else {
        for (int i = inst->ndeq - 1; i >= 0; i--)
            qrm_.rollbackDequeue(inst->deqQueues[i]);
    }
    if (inst->clearedSkip)
        qrm_.setSkipArmed(inst->enqQueue, true);
    if (inst->op == Op::FENCE || inst->isAtomic)
        threads_[inst->tid].pendingFences.erase(inst->seq);
    if (inst->pendingCompletions == 0) {
        for (int d = 0; d < inst->ndest; d++)
            prf_.free(inst->dests[d]);
    }
    stats_.squashedInstrs++;
}

void
Core::squashYounger(ThreadId tid, uint64_t seq)
{
    ThreadCtx &t = threads_[tid];
    while (!t.rob.empty() && t.rob.back()->seq > seq) {
        undoRename(t.rob.back());
        t.rob.pop_back();
    }
    while (!t.loadQ.empty() && t.loadQ.back()->seq > seq)
        t.loadQ.pop_back();
    while (!t.storeQ.empty() && t.storeQ.back()->seq > seq)
        t.storeQ.pop_back();
}

// --------------------------------------------------------------- commit

void
Core::commit(Cycle now)
{
    uint32_t budget = cfg_.commitWidth;
    size_t nAct = activeTids_.size();
    size_t start = rrStart(commitRr_);
    for (size_t j = 0; j < nAct && budget > 0; j++) {
        ThreadId tid = activeTids_[(start + j) % nAct];
        ThreadCtx &t = threads_[tid];
        if (t.halted)
            continue;
        while (budget > 0 && !t.rob.empty()) {
            // Raw pointer: the ROB keeps the instruction alive until
            // pop_front below, and copying the handle every attempt is
            // measurable refcount churn.
            DynInst *inst = t.rob.front().get();
            if (!inst->executed)
                break;
            if (inst->isStore) {
                if (t.storeBuffer.size() >= cfg_.storeBufferEntries)
                    break;
                memView_.write(now, inst->memAddr, inst->memSize,
                               inst->storeData);
                t.storeBuffer.push_back({inst->memAddr, inst->memSize});
                stats_.stores++;
            }
            if (inst->isLoad)
                stats_.loads++;

            if (inst->skipConsumed > 0) {
                for (uint32_t i = 0; i < inst->skipConsumed; i++)
                    prf_.free(qrm_.commitDequeue(inst->deqQueues[0]));
                stats_.dequeues++;
            } else {
                for (int i = 0; i < inst->ndeq; i++) {
                    prf_.free(qrm_.commitDequeue(inst->deqQueues[i]));
                    stats_.dequeues++;
                }
            }
            if (inst->destIsQueue) {
                qrm_.commitEnqueue(inst->enqQueue);
                stats_.enqueues++;
                if (inst->si->op == Op::ENQC)
                    stats_.ctrlValues++;
            } else {
                for (int d = 0; d < inst->ndest; d++) {
                    if (inst->prevDests[d] != INVALID_PREG)
                        prf_.free(inst->prevDests[d]);
                }
            }
            if (inst->isLoad || inst->isAtomic) {
                panic_if(t.loadQ.empty() || t.loadQ.front().get() != inst,
                         "loadQ out of sync");
                t.loadQ.pop_front();
            }
            if (inst->isStore) {
                panic_if(t.storeQ.empty() || t.storeQ.front().get() != inst,
                         "storeQ out of sync");
                t.storeQ.pop_front();
            }
            if (cfg_.traceFile) {
                std::fprintf(cfg_.traceFile, "%10llu c%u.t%u %5llu: %s\n",
                             static_cast<unsigned long long>(now), id_,
                             tid,
                             static_cast<unsigned long long>(inst->pc),
                             inst->op == inst->si->op
                                 ? inst->si->toString().c_str()
                                 : opInfo(inst->op).name);
            }
            if (guardrails_)
                guardrails_->onCommit(now, id_, tid, *inst, prf_, *mem_);
            if (obs_)
                obs_->onRetire(now, id_, tid, *inst);
            bool isHalt = inst->op == Op::HALT;
            t.rob.pop_front(); // may release `inst` back to the pool
            budget--;
            tickActive_ = true;
            stats_.committedInstrs++;
            if (tid < 8)
                stats_.committedPerThread[tid]++;
            t.instrsCommitted++;
            lastCommit_ = now;
            if (isHalt) {
                t.halted = true;
                break;
            }
        }
    }
    commitRr_++;
}

void
Core::drainStoreBuffers(Cycle now)
{
    for (ThreadId tid : activeTids_) {
        ThreadCtx &t = threads_[tid];
        if (t.storeBuffer.empty())
            continue;
        if (!tryUseMemPort())
            return;
        auto [addr, size] = t.storeBuffer.front();
        t.storeBuffer.pop_front();
        tickActive_ = true;
        hier_->access(id_, addr, true, now, nullptr);
    }
}

// ------------------------------------------------------------- CPI stack

void
Core::accountCpi(Cycle now)
{
    (void)now;
    CpiBucket bucket;
    if (issuedThisCycle_ > 0) {
        bucket = CpiBucket::Issue;
    } else {
        bool anyActive = false;
        bool allQueue = true;
        bool anyQueue = false;
        bool anyBackend = false;
        for (ThreadId tid : activeTids_) {
            const ThreadCtx &t = threads_[tid];
            if (t.halted)
                continue;
            anyActive = true;
            bool queueStall = t.renameStall == StallReason::QueueEmpty ||
                              t.renameStall == StallReason::QueueFull;
            anyQueue |= queueStall;
            if (!queueStall)
                allQueue = false;
            if (!t.rob.empty() && !t.rob.front()->executed)
                anyBackend = true;
        }
        if (!anyActive)
            bucket = CpiBucket::Other;
        else if (allQueue && anyQueue)
            bucket = CpiBucket::Queue;
        else if (anyBackend)
            bucket = CpiBucket::Backend;
        else if (anyQueue)
            bucket = CpiBucket::Queue;
        else
            bucket = CpiBucket::Other;
    }
    lastBucket_ = static_cast<size_t>(bucket);
    stats_.cpiCycles[lastBucket_]++;
}

// ------------------------------------------------- cycle elision (§13)

Cycle
Core::nextSelfActivity(Cycle now) const
{
    Cycle next = EventQueue::NEVER;
    if (wbCount_ > 0) {
        // Every ring entry lies within (now, now + WB_RING):
        // scheduleWriteback bounds it at insert time and the run loop
        // never jumps past a nonempty slot, so the first nonempty slot
        // by offset is the earliest pending writeback.
        for (uint32_t d = 1; d < WB_RING; d++) {
            if (!wbRing_[(now + d) % WB_RING].empty()) {
                next = now + d;
                break;
            }
        }
    }
    for (ThreadId tid : activeTids_) {
        const ThreadCtx &t = threads_[tid];
        if (t.halted)
            continue;
        if (t.fetchBlockedUntil > now)
            next = std::min(next, t.fetchBlockedUntil);
        if (!t.fetchQ.empty() && t.fetchQ.front().readyCycle > now)
            next = std::min(next, t.fetchQ.front().readyCycle);
    }
    return next;
}

void
Core::elide(uint64_t k)
{
    // A quiescent tick bumps: cycles, one CPI bucket, and (per stalled
    // thread, via the queue-stall memo or the pure resource gates) the
    // rename stall counters. Those bumps are a pure function of the
    // frozen state, so the deltas the last executed tick produced are
    // exactly what each elided cycle would produce.
    uint64_t dEmpty = stats_.queueEmptyStalls - snapQueueEmpty_;
    uint64_t dFull = stats_.queueFullStalls - snapQueueFull_;
    uint64_t dPool = stats_.dynInstPoolStalls - snapPoolStalls_;
    uint64_t dCkpt = stats_.checkpointStalls - snapCkptStalls_;
    stats_.queueEmptyStalls += dEmpty * k;
    stats_.queueFullStalls += dFull * k;
    stats_.dynInstPoolStalls += dPool * k;
    stats_.checkpointStalls += dCkpt * k;
    stats_.cycles += k;
    stats_.cpiCycles[lastBucket_] += k;
    stats_.skippedCycles += k;
    stats_.skipWindows++;
    // The round-robin pivots advance once per cycle unconditionally;
    // uint32 wraparound matches single-stepping k times exactly.
    fetchRr_ += static_cast<uint32_t>(k);
    renameRr_ += static_cast<uint32_t>(k);
    commitRr_ += static_cast<uint32_t>(k);
}

void
Core::collectWaitInfo(Cycle now,
                      std::vector<debug::ThreadWaitInfo> *out) const
{
    for (ThreadId tid : activeTids_) {
        const ThreadCtx &t = threads_[tid];
        debug::ThreadWaitInfo w;
        w.core = id_;
        w.tid = tid;
        w.halted = t.halted;
        w.pc = t.pc;
        w.committed = t.instrsCommitted;
        w.robSize = t.rob.size();
        switch (t.renameStall) {
          case StallReason::QueueEmpty:
            w.wait = debug::WaitState::QueueEmpty;
            break;
          case StallReason::QueueFull:
            w.wait = debug::WaitState::QueueFull;
            break;
          case StallReason::Resource:
            w.wait = debug::WaitState::Resource;
            break;
          case StallReason::Empty:
            w.wait = debug::WaitState::FetchEmpty;
            break;
          case StallReason::None:
            w.wait = debug::WaitState::None;
            break;
        }
        // Which queues is the stalled instruction blocked on? Reclassify
        // the head of the fetch queue the same way rename's gates do.
        if (!t.halted && !t.fetchQ.empty() &&
            (w.wait == debug::WaitState::QueueEmpty ||
             w.wait == debug::WaitState::QueueFull)) {
            const FetchedInst &fi = t.fetchQ.front();
            const Instr &si = *fi.si;
            const OpInfo &info = *fi.info;
            if (w.wait == debug::WaitState::QueueEmpty) {
                ArchRegId srcRegs[3];
                int n = 0;
                if (info.readsRs1)
                    srcRegs[n++] = si.rs1;
                if (info.readsRs2)
                    srcRegs[n++] = si.rs2;
                if (info.readsRd)
                    srcRegs[n++] = si.rd;
                for (int i = 0; i < n; i++) {
                    if (t.mapDir[srcRegs[i]] == 0)
                        w.waitEmpty.push_back(t.mapQ[srcRegs[i]]);
                }
                if ((si.op == Op::PEEK || si.op == Op::SKIPTC) &&
                    t.mapDir[si.rs1] == 0) {
                    w.waitEmpty.push_back(t.mapQ[si.rs1]);
                }
            } else if (info.writesRd && si.rd != reg::ZERO &&
                       t.mapDir[si.rd] == 1) {
                w.waitFull.push_back(t.mapQ[si.rd]);
            }
        }
        w.poolExhausted = pool_.numFree() == 0;
        w.ckptExhausted = ckptArena_.numFree() == 0;
        w.faultBlocked =
            now < poolBlockedUntil_ || now < ckptBlockedUntil_;
        out->push_back(w);
    }
}

void
Core::setObserver(obs::Observer *o)
{
    obs_ = o;
    qrm_.setObserver(o, id_);
}

obs::ThreadState
Core::threadObsState(ThreadId tid) const
{
    const ThreadCtx &t = threads_[tid];
    if (t.halted)
        return obs::ThreadState::Halted;
    switch (t.renameStall) {
      case StallReason::None: return obs::ThreadState::Run;
      case StallReason::QueueEmpty: return obs::ThreadState::QueueEmpty;
      case StallReason::QueueFull: return obs::ThreadState::QueueFull;
      case StallReason::Resource: return obs::ThreadState::Resource;
      case StallReason::Empty: return obs::ThreadState::Frontend;
    }
    return obs::ThreadState::Frontend;
}

std::string
Core::debugString() const
{
    std::ostringstream oss;
    oss << "core " << id_ << ":\n";
    for (size_t i = 0; i < threads_.size(); i++) {
        const ThreadCtx &t = threads_[i];
        if (!t.active)
            continue;
        oss << "  t" << i << ": pc=" << t.pc
            << (t.halted ? " HALTED" : "") << " rob=" << t.rob.size()
            << " fq=" << t.fetchQ.size() << " stall="
            << static_cast<int>(t.renameStall)
            << " committed=" << t.instrsCommitted << "\n";
    }
    oss << qrm_.debugString();
    return oss.str();
}

} // namespace pipette
