/**
 * @file
 * Branch prediction: per-thread-history gshare for conditional branch
 * direction and a BTB for indirect-jump (JR) targets. Direct targets are
 * encoded in the instruction, so the BTB only serves JR (which Pipette
 * handlers use heavily for `jr cvret`).
 */

#ifndef PIPETTE_CORE_BPRED_H
#define PIPETTE_CORE_BPRED_H

#include <cstdint>
#include <vector>

#include "sim/config.h"
#include "sim/logging.h"
#include "sim/types.h"

namespace pipette {

/** gshare + BTB branch predictor. */
class BranchPredictor
{
  public:
    BranchPredictor(const CoreConfig &cfg, uint32_t numThreads);

    /** Predict direction and speculatively update the history. */
    bool predictCond(ThreadId tid, Addr pc);
    /** Train on the resolved outcome (history was updated at predict). */
    void updateCond(ThreadId tid, Addr pc, bool taken, uint64_t histAtPred);
    /** Current speculative history (checkpointed into each branch). */
    uint64_t history(ThreadId tid) const { return hist_[tid]; }
    /** Restore history after a squash. */
    void restoreHistory(ThreadId tid, uint64_t h, bool actualTaken);

    /** Predict an indirect target; false if no BTB entry. */
    bool predictIndirect(ThreadId tid, Addr pc, Addr *target) const;
    void updateIndirect(ThreadId tid, Addr pc, Addr target);

    struct BtbEntry
    {
        Addr pc = ~0ull;
        Addr target = 0;
        ThreadId tid = 0;
    };

    // --- Durable-checkpoint support (src/resilience/) ----------------
    //
    // Field-by-field serialization of the trained state; restore
    // requires identically sized tables, which the loader guarantees by
    // rebuilding the predictor from the same CoreConfig.

    const std::vector<uint8_t> &rawPht() const { return pht_; }
    const std::vector<BtbEntry> &rawBtb() const { return btb_; }
    const std::vector<uint64_t> &rawHist() const { return hist_; }
    void
    restoreRaw(std::vector<uint8_t> &&pht, std::vector<BtbEntry> &&btb,
               std::vector<uint64_t> &&hist)
    {
        panic_if(pht.size() != pht_.size() || btb.size() != btb_.size() ||
                     hist.size() != hist_.size(),
                 "BranchPredictor::restoreRaw geometry mismatch");
        pht_ = std::move(pht);
        btb_ = std::move(btb);
        hist_ = std::move(hist);
    }

  private:
    uint32_t
    phtIndex(ThreadId tid, Addr pc, uint64_t hist) const
    {
        uint64_t x = pc ^ hist ^ (static_cast<uint64_t>(tid) << 7);
        return static_cast<uint32_t>(x) & phtMask_;
    }
    uint32_t
    btbIndex(ThreadId tid, Addr pc) const
    {
        return static_cast<uint32_t>(pc * 0x9e3779b9u + tid) & btbMask_;
    }

    std::vector<uint8_t> pht_; // 2-bit counters
    uint32_t phtMask_;
    std::vector<BtbEntry> btb_;
    uint32_t btbMask_;
    std::vector<uint64_t> hist_;
};

} // namespace pipette

#endif // PIPETTE_CORE_BPRED_H
