/**
 * @file
 * Host-parallel simulation runner: turns a batch of independent
 * (config, workload, variant) sweep cells into tasks on a work-stealing
 * TaskPool, one self-contained System per job, and collects RunResults
 * in submission order.
 *
 * Determinism contract (DESIGN.md section 8):
 *  - every job builds its own System, workload instance, and memory
 *    image on the worker thread; jobs share only immutable inputs
 *    (graphs / matrices built up front by the caller);
 *  - each job's seed is assigned by the submitter (typically the job
 *    index), never derived from scheduling, thread ids, or time;
 *  - results and the onResult callback are delivered in submission
 *    order on the calling thread.
 * Consequently a batch's results -- and anything printed or written
 * from onResult -- are byte-identical for every worker count. `workers
 * == 1` runs inline on the calling thread with no threads spawned,
 * reproducing the pre-pool serial harness exactly.
 */

#ifndef PIPETTE_PARALLEL_SIM_JOB_POOL_H
#define PIPETTE_PARALLEL_SIM_JOB_POOL_H

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "harness/runner.h"
#include "parallel/task_pool.h"

namespace pipette::parallel {

/** One sweep cell: everything needed to simulate it in isolation. */
struct SimJob
{
    /** Full hardware configuration for this cell (numCores included;
     *  `numCores` below overrides it like Runner::run does). */
    SystemConfig config;
    /**
     * Workload factory, invoked on the worker thread with the job's
     * seed. Must be safe to run concurrently with other jobs' factories
     * -- capture only immutable inputs. Factories that take no seed can
     * ignore the argument.
     */
    std::function<std::unique_ptr<WorkloadBase>(uint64_t seed)> make;
    Variant variant = Variant::Serial;
    /** Input tag for reports ("Rd", "ycsb-c", ...). */
    std::string input;
    /** Core-count override (streaming/multicore variants need 4). */
    uint32_t numCores = 1;
    /** Deterministic per-job seed, set by the submitter. */
    uint64_t seed = 0;
};

class SimJobPool
{
  public:
    /** Invoked on the calling thread, in submission order. */
    using OnResult = std::function<void(size_t, const RunResult &)>;

    /** `workers` == 0 picks std::thread::hardware_concurrency(). */
    explicit SimJobPool(unsigned workers = 0) : pool_(workers) {}

    unsigned numWorkers() const { return pool_.numWorkers(); }

    /**
     * Simulate every job, `numWorkers()` cells at a time, and return
     * results in submission order. Blocking; reusable across batches.
     */
    std::vector<RunResult> runAll(const std::vector<SimJob> &jobs,
                                  const OnResult &onResult = {});

  private:
    TaskPool pool_;
};

} // namespace pipette::parallel

#endif // PIPETTE_PARALLEL_SIM_JOB_POOL_H
