#include "parallel/sim_job_pool.h"

#include "resilience/error.h"
#include "sim/logging.h"

namespace pipette::parallel {

std::vector<RunResult>
SimJobPool::runAll(const std::vector<SimJob> &jobs, const OnResult &onResult)
{
    std::vector<RunResult> results(jobs.size());
    std::vector<TaskPool::Task> tasks;
    tasks.reserve(jobs.size());
    for (size_t i = 0; i < jobs.size(); i++) {
        tasks.push_back([&jobs, &results, i] {
            const SimJob &j = jobs[i];
            // Runner::run catches SimException itself; this outer
            // guard isolates anything escaping workload construction
            // or the pool plumbing (a fatal() in make(), bad_alloc)
            // into a WorkerFault result instead of terminating every
            // sibling job with the worker thread.
            FatalThrowScope throwScope;
            try {
                Runner runner(j.config);
                std::unique_ptr<WorkloadBase> wl = j.make(j.seed);
                results[i] =
                    runner.run(*wl, j.variant, j.input, j.numCores);
            } catch (const std::exception &e) {
                RunResult r;
                r.input = j.input;
                r.variant = j.variant;
                r.numCores = j.numCores;
                r.error = resilience::SimError::WorkerFault;
                r.diagnosis = e.what();
                warn("worker fault on job ", i, " (", j.input,
                     "): ", e.what());
                results[i] = std::move(r);
            }
        });
    }
    // results[i] is written by a worker before its done-flag flips and
    // read by the collector after, so the TaskPool's batch mutex orders
    // the two; no extra synchronization needed here.
    pool_.run(std::move(tasks), [&](size_t i) {
        if (onResult)
            onResult(i, results[i]);
    });
    return results;
}

} // namespace pipette::parallel
