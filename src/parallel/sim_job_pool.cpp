#include "parallel/sim_job_pool.h"

namespace pipette::parallel {

std::vector<RunResult>
SimJobPool::runAll(const std::vector<SimJob> &jobs, const OnResult &onResult)
{
    std::vector<RunResult> results(jobs.size());
    std::vector<TaskPool::Task> tasks;
    tasks.reserve(jobs.size());
    for (size_t i = 0; i < jobs.size(); i++) {
        tasks.push_back([&jobs, &results, i] {
            const SimJob &j = jobs[i];
            Runner runner(j.config);
            std::unique_ptr<WorkloadBase> wl = j.make(j.seed);
            results[i] = runner.run(*wl, j.variant, j.input, j.numCores);
        });
    }
    // results[i] is written by a worker before its done-flag flips and
    // read by the collector after, so the TaskPool's batch mutex orders
    // the two; no extra synchronization needed here.
    pool_.run(std::move(tasks), [&](size_t i) {
        if (onResult)
            onResult(i, results[i]);
    });
    return results;
}

} // namespace pipette::parallel
