#include "parallel/task_pool.h"

#include <chrono>

#include "hostprof/hostprof.h"

namespace pipette::parallel {

namespace {

/** Raw steady-clock ns (hostprof keeps its own origin; only durations
 *  cross the boundary, so raw timestamps are fine here). */
uint64_t
rawNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

TaskPool::TaskPool(unsigned workers)
{
    if (workers == 0) {
        workers = std::thread::hardware_concurrency();
        if (workers == 0)
            workers = 1;
    }
    numWorkers_ = workers;
    if (workers <= 1)
        return; // inline mode: no threads, no deques
    workers_.reserve(workers);
    for (unsigned i = 0; i < workers; i++)
        workers_.push_back(std::make_unique<Worker>());
    threads_.reserve(workers);
    for (unsigned i = 0; i < workers; i++)
        threads_.emplace_back([this, i] { workerLoop(i); });
    if (hostprof::enabled())
        spawnRawNs_ = rawNs();
}

TaskPool::~TaskPool()
{
    {
        std::lock_guard<std::mutex> lock(mtx_);
        shutdown_ = true;
    }
    wakeWorkers_.notify_all();
    for (std::thread &t : threads_)
        t.join();
    if (spawnRawNs_) {
        hostprof::addPoolLifetime((rawNs() - spawnRawNs_) * numWorkers_,
                                  numWorkers_);
    }
}

bool
TaskPool::popOwn(unsigned self, size_t *idx)
{
    Worker &w = *workers_[self];
    std::lock_guard<std::mutex> lock(w.mtx);
    if (w.pending.empty())
        return false;
    *idx = w.pending.back();
    w.pending.pop_back();
    return true;
}

bool
TaskPool::stealAny(unsigned self, size_t *idx)
{
    // Sweep the other workers once, starting just past ourselves so
    // thieves spread out instead of all hammering worker 0.
    for (unsigned k = 1; k < numWorkers_; k++) {
        Worker &w = *workers_[(self + k) % numWorkers_];
        std::lock_guard<std::mutex> lock(w.mtx);
        if (w.pending.empty())
            continue;
        *idx = w.pending.front();
        w.pending.pop_front();
        return true;
    }
    return false;
}

void
TaskPool::execute(size_t idx)
{
    (*tasks_)[idx]();
    std::lock_guard<std::mutex> lock(mtx_);
    done_[idx] = 1;
    remaining_--;
    taskDone_.notify_one();
}

void
TaskPool::workerLoop(unsigned self)
{
    uint64_t seenBatch = 0;
    for (;;) {
        // Profiling gate is re-read each round trip so a pool that
        // outlives a setEnabled() flip starts/stops counting at the
        // next batch boundary; off costs one relaxed load per batch.
        const bool prof = hostprof::enabled();
        {
            uint64_t t0 = prof ? rawNs() : 0;
            std::unique_lock<std::mutex> lock(mtx_);
            wakeWorkers_.wait(lock, [&] {
                return shutdown_ || (tasks_ && batchId_ != seenBatch);
            });
            if (prof)
                hostprof::addPoolIdle(rawNs() - t0);
            if (shutdown_)
                return;
            seenBatch = batchId_;
        }
        // Drain: own work first, then steal. No task is ever added
        // after the batch starts, so an empty sweep means this worker
        // is finished with the batch.
        size_t idx;
        for (;;) {
            bool stolen = false;
            if (!popOwn(self, &idx)) {
                if (!stealAny(self, &idx))
                    break;
                stolen = true;
            }
            if (prof) {
                if (stolen)
                    hostprof::addPoolSteal();
                uint64_t t0 = rawNs();
                execute(idx);
                hostprof::addPoolBusy(rawNs() - t0);
                hostprof::addPoolTasks(1);
            } else {
                execute(idx);
            }
        }
    }
}

void
TaskPool::run(std::vector<Task> tasks,
              const std::function<void(size_t)> &onDone)
{
    const size_t n = tasks.size();
    if (n == 0)
        return;

    if (numWorkers_ <= 1) {
        // Serial path: byte-identical to a plain loop, no threads.
        for (size_t i = 0; i < n; i++) {
            tasks[i]();
            if (onDone)
                onDone(i);
        }
        return;
    }

    {
        std::lock_guard<std::mutex> lock(mtx_);
        // Publish the batch BEFORE dealing indices: a worker still
        // draining the previous batch may pop a new index as soon as it
        // hits a deque, and reads tasks_ without taking mtx_ -- the
        // per-worker deque mutex is what orders that read after these
        // writes.
        tasks_ = &tasks;
        done_.assign(n, 0);
        remaining_ = n;
        batchId_++;
        for (size_t i = 0; i < n; i++) {
            Worker &w = *workers_[i % numWorkers_];
            std::lock_guard<std::mutex> wl(w.mtx);
            w.pending.push_back(i);
        }
    }
    wakeWorkers_.notify_all();

    // Ordered collector: deliver onDone for the contiguous completed
    // prefix, dropping the lock around user code.
    size_t delivered = 0;
    std::unique_lock<std::mutex> lock(mtx_);
    while (delivered < n) {
        taskDone_.wait(lock, [&] { return done_[delivered] != 0; });
        while (delivered < n && done_[delivered]) {
            lock.unlock();
            if (onDone)
                onDone(delivered);
            delivered++;
            lock.lock();
        }
    }
    // delivered == n implies every task ran; workers may still be
    // mid-sweep over empty deques, but they no longer touch tasks_.
    tasks_ = nullptr;
}

} // namespace pipette::parallel
