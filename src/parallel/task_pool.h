/**
 * @file
 * Fixed-size work-stealing thread pool with an ordered result
 * collector. This is the host-parallel substrate under SimJobPool: it
 * knows nothing about simulation, it just runs a batch of independent
 * tasks across worker threads and delivers per-task completion
 * notifications on the *calling* thread in submission order.
 *
 * Scheduling: each worker owns a deque of task indices. Tasks are dealt
 * round-robin at batch start; a worker pops from the back of its own
 * deque and, when empty, steals from the front of a victim's (classic
 * work stealing, long-running stragglers migrate naturally). Deques are
 * tiny (indices only) and guarded by per-worker mutexes -- simulation
 * tasks run for milliseconds to seconds, so lock-free deques would buy
 * nothing.
 *
 * Determinism contract: scheduling order is arbitrary, but the
 * `onDone(i)` callback runs on the calling thread and is delivered in
 * index order (callback i fires only after tasks 0..i have all
 * finished). Anything the caller does in onDone -- printing progress,
 * appending to a result file -- is therefore byte-identical for every
 * worker count, including 1.
 *
 * A pool constructed with `workers <= 1` spawns no threads at all:
 * run() executes tasks inline, in order, on the calling thread,
 * reproducing a plain serial loop exactly.
 */

#ifndef PIPETTE_PARALLEL_TASK_POOL_H
#define PIPETTE_PARALLEL_TASK_POOL_H

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace pipette::parallel {

class TaskPool
{
  public:
    using Task = std::function<void()>;

    /** `workers` == 0 picks std::thread::hardware_concurrency(). */
    explicit TaskPool(unsigned workers = 0);
    ~TaskPool();

    TaskPool(const TaskPool &) = delete;
    TaskPool &operator=(const TaskPool &) = delete;

    unsigned numWorkers() const { return numWorkers_; }

    /**
     * Run every task to completion (blocking). `onDone(i)`, when
     * provided, is invoked on the calling thread in index order. A pool
     * outlives its batches: run() may be called repeatedly.
     *
     * Tasks must be independent -- they run concurrently in arbitrary
     * order and must not touch shared mutable state without their own
     * synchronization.
     */
    void run(std::vector<Task> tasks,
             const std::function<void(size_t)> &onDone = {});

  private:
    /** One worker's deque of pending task indices. */
    struct Worker
    {
        std::mutex mtx;
        std::deque<size_t> pending;
    };

    void workerLoop(unsigned self);
    bool popOwn(unsigned self, size_t *idx);
    bool stealAny(unsigned self, size_t *idx);
    void execute(size_t idx);

    unsigned numWorkers_;
    std::vector<std::unique_ptr<Worker>> workers_;
    std::vector<std::thread> threads_;
    /** Worker spawn time (raw steady ns); 0 = hostprof was off. */
    uint64_t spawnRawNs_ = 0;

    // Batch state (one run() at a time), guarded by mtx_.
    std::mutex mtx_;
    std::condition_variable wakeWorkers_; ///< new batch / shutdown
    std::condition_variable taskDone_;    ///< collector wakeup
    std::vector<Task> *tasks_ = nullptr;
    std::vector<char> done_;
    size_t remaining_ = 0;
    uint64_t batchId_ = 0;
    bool shutdown_ = false;
};

} // namespace pipette::parallel

#endif // PIPETTE_PARALLEL_TASK_POOL_H
