#include "pipette/qrm.h"

#include <sstream>

#include "obs/observer.h"

namespace pipette {

Qrm::Qrm(uint32_t numQueues, uint32_t defaultCap, uint32_t maxTotalRegs)
    : maxRegs_(maxTotalRegs)
{
    qs_.resize(numQueues);
    for (Queue &q : qs_) {
        q.cap = defaultCap;
        q.regs.assign(defaultCap, INVALID_PREG);
        q.ctrl.assign(defaultCap, 0);
    }
}

void
Qrm::setCapacity(QueueId q, uint32_t cap)
{
    Queue &Q = at(q);
    Q.version++;
    panic_if(Q.specTail != Q.commHead || Q.specHead != Q.commHead,
             "resizing active queue ", static_cast<int>(q));
    fatal_if(cap == 0, "queue capacity must be > 0");
    Q.cap = cap;
    Q.regs.assign(cap, INVALID_PREG);
    Q.ctrl.assign(cap, 0);
}

void
Qrm::enqueueSpec(QueueId q, PhysRegId reg, bool ctrl)
{
    Queue &Q = at(q);
    Q.version++;
    panic_if(!canEnqueueSpec(q), "enqueueSpec on full queue ",
             static_cast<int>(q));
    size_t idx = Q.specTail % Q.cap;
    Q.regs[idx] = reg;
    Q.ctrl[idx] = ctrl;
    Q.specTail++;
    regsInUse_++;
    regsVersion_++;
}

PhysRegId
Qrm::rollbackEnqueue(QueueId q)
{
    Queue &Q = at(q);
    Q.version++;
    panic_if(Q.specTail == Q.commTail, "rollbackEnqueue past commit");
    Q.specTail--;
    regsInUse_--;
    regsVersion_++;
    return Q.regs[Q.specTail % Q.cap];
}

void
Qrm::commitEnqueue(QueueId q)
{
    Queue &Q = at(q);
    Q.version++;
    panic_if(Q.commTail == Q.specTail, "commitEnqueue with no spec entry");
    Q.commTail++;
    if (obs_)
        obs_->onQueuePush(obsCore_, q, Q.commTail - Q.specHead);
}

bool
Qrm::headCtrl(QueueId q) const
{
    const Queue &Q = at(q);
    panic_if(!canDequeueSpec(q), "headCtrl on empty queue");
    return Q.ctrl[Q.specHead % Q.cap] != 0;
}

PhysRegId
Qrm::headReg(QueueId q) const
{
    const Queue &Q = at(q);
    panic_if(!canDequeueSpec(q), "headReg on empty queue");
    return Q.regs[Q.specHead % Q.cap];
}

PhysRegId
Qrm::dequeueSpec(QueueId q)
{
    Queue &Q = at(q);
    Q.version++;
    panic_if(!canDequeueSpec(q), "dequeueSpec on empty queue");
    PhysRegId r = Q.regs[Q.specHead % Q.cap];
    Q.specHead++;
    return r;
}

void
Qrm::rollbackDequeue(QueueId q)
{
    Queue &Q = at(q);
    Q.version++;
    panic_if(Q.specHead == Q.commHead, "rollbackDequeue past commit");
    Q.specHead--;
}

PhysRegId
Qrm::commitDequeue(QueueId q)
{
    Queue &Q = at(q);
    Q.version++;
    panic_if(Q.commHead == Q.specHead, "commitDequeue with no spec deq");
    PhysRegId r = Q.regs[Q.commHead % Q.cap];
    Q.commHead++;
    regsInUse_--;
    regsVersion_++;
    if (obs_)
        obs_->onQueuePop(obsCore_, q, Q.commTail - Q.specHead);
    return r;
}

Qrm::CtrlScan
Qrm::scanForCtrl(QueueId q) const
{
    const Queue &Q = at(q);
    CtrlScan s;
    for (uint64_t i = Q.specHead; i < Q.commTail; i++) {
        if (Q.ctrl[i % Q.cap]) {
            s.found = true;
            s.offset = static_cast<uint32_t>(i - Q.specHead);
            return s;
        }
    }
    return s;
}

PhysRegId
Qrm::dequeueNonSpec(QueueId q, bool *ctrl)
{
    Queue &Q = at(q);
    Q.version++;
    panic_if(!canDequeueNonSpec(q), "dequeueNonSpec unavailable");
    size_t idx = Q.commHead % Q.cap;
    PhysRegId r = Q.regs[idx];
    if (ctrl)
        *ctrl = Q.ctrl[idx] != 0;
    Q.commHead++;
    Q.specHead++;
    regsInUse_--;
    regsVersion_++;
    if (obs_)
        obs_->onQueuePop(obsCore_, q, Q.commTail - Q.specHead);
    return r;
}

void
Qrm::enqueueNonSpec(QueueId q, PhysRegId reg, bool ctrl)
{
    Queue &Q = at(q);
    Q.version++;
    panic_if(!canEnqueueNonSpec(q), "enqueueNonSpec on full queue");
    size_t idx = Q.specTail % Q.cap;
    Q.regs[idx] = reg;
    Q.ctrl[idx] = ctrl;
    Q.specTail++;
    Q.commTail++;
    regsInUse_++;
    regsVersion_++;
    if (ctrl)
        Q.skipArmed = false;
    if (obs_)
        obs_->onQueuePush(obsCore_, q, Q.commTail - Q.specHead);
}

std::string
Qrm::debugString() const
{
    std::ostringstream oss;
    for (size_t i = 0; i < qs_.size(); i++) {
        const Queue &Q = qs_[i];
        if (Q.specTail == 0 && Q.commHead == 0)
            continue;
        oss << "q" << i << ": sh=" << Q.specHead << " st=" << Q.specTail
            << " ch=" << Q.commHead << " ct=" << Q.commTail
            << (Q.skipArmed ? " ARMED" : "") << "\n";
    }
    return oss.str();
}

} // namespace pipette
