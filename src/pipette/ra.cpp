#include "pipette/ra.h"

#include "obs/observer.h"

namespace pipette {

RefAccel::RefAccel(const RaSpec &spec, uint32_t completionBufEntries,
                   Qrm *qrm, PhysRegFile *prf, SimMemory *mem,
                   MemoryHierarchy *hier, EventQueue *eq, CoreStats *stats,
                   PortArbiter ports)
    : spec_(spec), cbCapacity_(completionBufEntries), qrm_(qrm),
      prf_(prf), mem_(mem), hier_(hier), eq_(eq), stats_(stats),
      ports_(std::move(ports))
{
    cb_.init(completionBufEntries);
}

void
RefAccel::issueLoad(Addr addr, Cycle now, CbEntry *entry)
{
    uint32_t bytes = spec_.elemBytes;
    stats_->raAccesses++;
    hier_->access(spec_.core, addr, false, now,
                  [this, entry, addr, bytes, now] {
        entry->value =
            view_ ? view_->read(addr, bytes) : mem_->read(addr, bytes);
        entry->done = true;
        // The callback runs at exactly the completion cycle (in epoch
        // mode the issue-time return is PENDING, so the latency is
        // only knowable here). The histogram add commutes, so legacy
        // stats are unchanged by recording at completion instead of
        // issue.
        if (obs_)
            obs_->onRaLatency(obsIdx_, eq_->now() - now);
    });
}

void
RefAccel::tick(Cycle now)
{
    tickActive_ = false;

    // Fault-injected freeze, checked before the idle memo so a stalled
    // RA stays inert even when its queues mutate. (Fault plans imply
    // guardrails, which force single-stepping, so elision never sees a
    // stalled RA as quiescent-until-a-deadline.)
    if (now < stalledUntil_)
        return;

    // Idle fast path: no in-flight work and neither queue has changed
    // since the last do-nothing tick, so this tick cannot act either.
    if (idleValid_ && cb_.empty() && !pendingSecond_ && !scanning_ &&
        idleInV_ == qrm_->version(spec_.inQueue) &&
        idleOutV_ == qrm_->version(spec_.outQueue))
        return;

    // Propagate a consumer-side skip upstream (see header comment),
    // but only while no control value is already in the path (input
    // queue or completion buffer) -- it would clear the arm on arrival.
    if (qrm_->skipArmed(spec_.outQueue) &&
        !qrm_->skipArmed(spec_.inQueue)) {
        bool ctrlInPath = qrm_->hasAnyCtrl(spec_.inQueue);
        for (size_t i = 0; i < cb_.size(); i++)
            ctrlInPath |= cb_[i].ctrl;
        if (!ctrlInPath) {
            qrm_->armSkip(spec_.inQueue);
            tickActive_ = true;
        }
    }

    // 1. Retire completed entries, in order, into the output queue.
    uint32_t retired = 0;
    while (retired < 2 && !cb_.empty() && cb_.front().done) {
        if (!qrm_->canEnqueueNonSpec(spec_.outQueue) || prf_->numFree() == 0)
            break;
        const CbEntry &e = cb_.front();
        PhysRegId r = prf_->alloc();
        prf_->write(r, e.value);
        qrm_->enqueueNonSpec(spec_.outQueue, r, e.ctrl);
        if (e.ctrl)
            stats_->raCvForwards++;
        cb_.pop_front();
        retired++;
    }
    if (retired > 0)
        tickActive_ = true;

    // 2. Issue new work (one item per cycle).
    if (pendingSecond_) {
        // Second load of an IndirectPair waiting for a port.
        if (!ports_())
            return;
        tickActive_ = true;
        issueLoad(pendingAddr_, now, pendingEntry_);
        pendingSecond_ = false;
        pendingEntry_ = nullptr;
        return;
    }

    if (cb_.size() >= cbCapacity_)
        return;

    if (spec_.mode == RaMode::Scan && scanning_) {
        if (!ports_())
            return;
        tickActive_ = true;
        cb_.push_back(CbEntry{});
        issueLoad(spec_.base + cur_ * spec_.elemBytes, now, &cb_.back());
        cur_++;
        if (cur_ >= end_)
            scanning_ = false;
        return;
    }

    if (!qrm_->canDequeueNonSpec(spec_.inQueue)) {
        // This tick did nothing and holds no in-flight work: sleep
        // until one of the queues mutates.
        if (cb_.empty() && !pendingSecond_ && !scanning_) {
            idleValid_ = true;
            idleInV_ = qrm_->version(spec_.inQueue);
            idleOutV_ = qrm_->version(spec_.outQueue);
        }
        return;
    }

    bool headCtrl = qrm_->headCtrl(spec_.inQueue);
    if (headCtrl) {
        tickActive_ = true;
        // Forward the CV through the completion buffer to keep ordering.
        panic_if(spec_.mode == RaMode::Scan && haveStart_,
                 "control value between scan start and end");
        bool ctrl = false;
        PhysRegId r = qrm_->dequeueNonSpec(spec_.inQueue, &ctrl);
        CbEntry entry;
        entry.value = prf_->read(r);
        entry.ctrl = true;
        entry.done = true;
        prf_->free(r);
        cb_.push_back(entry);
        return;
    }

    if (spec_.mode == RaMode::Indirect) {
        if (!ports_())
            return;
        tickActive_ = true;
        bool ctrl = false;
        PhysRegId r = qrm_->dequeueNonSpec(spec_.inQueue, &ctrl);
        uint64_t idx = prf_->read(r);
        prf_->free(r);
        cb_.push_back(CbEntry{});
        issueLoad(spec_.base + idx * spec_.elemBytes, now, &cb_.back());
        return;
    }

    if (spec_.mode == RaMode::IndirectPair) {
        if (cb_.size() + 2 > cbCapacity_ || !ports_())
            return;
        tickActive_ = true;
        bool ctrl = false;
        PhysRegId r = qrm_->dequeueNonSpec(spec_.inQueue, &ctrl);
        uint64_t idx = prf_->read(r);
        prf_->free(r);
        cb_.push_back(CbEntry{});
        CbEntry *e1 = &cb_.back();
        cb_.push_back(CbEntry{});
        CbEntry *e2 = &cb_.back();
        issueLoad(spec_.base + idx * spec_.elemBytes, now, e1);
        // The second element usually shares the line; still one access.
        pendingSecond_ = true;
        pendingAddr_ = spec_.base + (idx + 1) * spec_.elemBytes;
        pendingEntry_ = e2;
        return;
    }

    if (spec_.mode == RaMode::IndirectKV) {
        if (cb_.size() + 2 > cbCapacity_ || !ports_())
            return;
        tickActive_ = true;
        bool ctrl = false;
        PhysRegId r = qrm_->dequeueNonSpec(spec_.inQueue, &ctrl);
        uint64_t idx = prf_->read(r);
        prf_->free(r);
        CbEntry key;
        key.value = idx;
        key.done = true;
        cb_.push_back(key);
        cb_.push_back(CbEntry{});
        issueLoad(spec_.base + idx * spec_.elemBytes, now, &cb_.back());
        return;
    }

    // Scan mode: consume start then end.
    tickActive_ = true;
    bool ctrl = false;
    PhysRegId r = qrm_->dequeueNonSpec(spec_.inQueue, &ctrl);
    uint64_t v = prf_->read(r);
    prf_->free(r);
    if (!haveStart_) {
        start_ = v;
        haveStart_ = true;
    } else {
        haveStart_ = false;
        if (start_ < v) {
            scanning_ = true;
            cur_ = start_;
            end_ = v;
        }
    }
}

} // namespace pipette
