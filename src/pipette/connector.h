/**
 * @file
 * Connectors (paper Sec. IV-C): simple FSMs that stream a queue from a
 * producer core to a consumer core with credit-based flow control. The
 * producer-side endpoint consumes committed entries non-speculatively;
 * after the network latency the consumer-side endpoint enqueues them
 * into the destination queue. In-flight entries plus destination
 * occupancy never exceed the destination capacity (the credits), so the
 * receiver state is strictly bounded. Skip arming propagates upstream.
 */

#ifndef PIPETTE_RT_CONNECTOR_H
#define PIPETTE_RT_CONNECTOR_H

#include <algorithm>
#include <deque>

#include "isa/machine_spec.h"
#include "pipette/qrm.h"
#include "pipette/regfile.h"
#include "sim/event_queue.h"
#include "sim/stats.h"
#include "sim/types.h"

namespace pipette {

/** One cross-core queue bridge. */
class Connector
{
  public:
    Connector(const ConnectorSpec &spec, Qrm *fromQrm,
              PhysRegFile *fromPrf, Qrm *toQrm, PhysRegFile *toPrf,
              CoreStats *stats, uint32_t latency, uint32_t bandwidth);

    /** Advance one cycle. */
    void tick(Cycle now);

    /**
     * Epoch-barrier mode (multicore scheduler): the producer and
     * consumer halves of tick() run in their cores' partitions, so
     * each touches only that core's QRM/PRF; everything cross-core
     * (flit handoff, credit snapshot, transfer stats, skip arming)
     * happens in epochEdge(), serially, in connector declaration
     * order. Credits freed by consumer dequeues mid-epoch become
     * visible to the producer only at the next edge.
     */
    void setEpochMode();
    /** Producer half: send flits into the outbox, bounded by the
     *  credit budget snapshotted at the last epoch edge. Runs in the
     *  fromCore partition. */
    void tickProducer(Cycle now);
    /** Consumer half: deliver inbox flits that have arrived. Runs in
     *  the toCore partition. */
    void tickConsumer(Cycle now);
    /** Cross-core exchange at the epoch edge (serial). */
    void epochEdge(Cycle now);

    /** True when nothing is in flight (quiesce/teardown check). */
    bool
    idle() const
    {
        return inflight_.empty() && inbox_.empty() && outbox_.empty();
    }

    // --- Stall-aware cycle elision (DESIGN.md §13) --------------------
    /**
     * True when the last legacy tick() mutated nothing: no send, no
     * delivery, no skip propagation -- and, with an observer attached,
     * no credit-stall hook fired (the hook's run-length tracking is
     * per-cycle observer state, so a credit-stalled connector under
     * observation must single-step).
     */
    bool tickQuiescent() const { return !tickActive_; }
    /**
     * Earliest future cycle at which legacy in-flight data matures: the
     * head flit's arrival while still in transit. Deliveries blocked on
     * a full destination queue and sends blocked on data/credits have
     * no self-deadline -- they unfreeze only through other agents'
     * activity.
     */
    Cycle
    nextSelfActivity(Cycle now) const
    {
        if (!inflight_.empty() && inflight_.front().arrival > now)
            return inflight_.front().arrival;
        return EventQueue::NEVER;
    }
    /**
     * Epoch-mode halves of tickQuiescent(). The halves run in
     * different cores' partitions -- potentially on different host
     * threads -- so each keeps its own activity flag; a shared one
     * would be a data race under --core-jobs > 1.
     */
    bool producerQuiescent() const { return !prodActive_; }
    bool consumerQuiescent() const { return !consActive_; }
    /**
     * Epoch-mode consumer-half deadline: the inbox head's arrival when
     * still in transit. Read only from the toCore partition (the inbox
     * mutates only there and at the serial epoch edge). The producer
     * half has no self-deadline: sends are gated purely on input data
     * and the edge-snapshotted credit budget.
     */
    Cycle
    nextInboxArrival(Cycle now) const
    {
        if (!inbox_.empty() && inbox_.front().arrival > now)
            return inbox_.front().arrival;
        return EventQueue::NEVER;
    }

    /**
     * Fault injection (FaultKind::DropConnectorCredits): freeze the
     * connector until the given cycle. No flits are sent or delivered
     * while frozen; in-flight flits are retained, so entries are delayed
     * but never lost or duplicated.
     */
    void injectStall(Cycle until) { stalledUntil_ = until; }

    // --- Guardrail diagnostics ---
    const ConnectorSpec &spec() const { return spec_; }
    size_t
    inflightSize() const
    {
        return inflight_.size() + inbox_.size() + outbox_.size();
    }
    Cycle stalledUntil() const { return stalledUntil_; }

    /**
     * Attach the observability hook target (credit-stall events). Null
     * (the default) disables the hook: the site is a single pointer
     * test (the guardrails pattern).
     */
    void
    setObserver(obs::Observer *o, uint32_t idx)
    {
        obs_ = o;
        obsIdx_ = idx;
    }

  private:
    struct Flit
    {
        Cycle arrival;
        uint64_t value;
        bool ctrl;
    };

    ConnectorSpec spec_;
    Qrm *fromQrm_;
    PhysRegFile *fromPrf_;
    Qrm *toQrm_;
    PhysRegFile *toPrf_;
    CoreStats *stats_;
    uint32_t latency_;
    uint32_t bandwidth_;
    Cycle stalledUntil_ = 0; ///< fault injection; 0 = not stalled
    std::deque<Flit> inflight_;

    // --- Epoch mode state ---
    /** Flits sent this epoch; handed to the inbox at the edge. */
    std::deque<Flit> outbox_;
    /** Flits visible to the consumer half. */
    std::deque<Flit> inbox_;
    /** Credits the producer may spend this epoch (edge snapshot). */
    uint64_t creditBudget_ = 0;
    /** Deliveries this epoch; folded into the from-core's stats (a
     *  cross-partition write) at the edge. */
    uint64_t deliveredThisEpoch_ = 0;

    /** Any mutation during the current legacy tick() sets this. */
    bool tickActive_ = true;
    /** Per-half activity flags for epoch mode (see producerQuiescent). */
    bool prodActive_ = true;
    bool consActive_ = true;

    /** Observability hooks; null = disabled. */
    obs::Observer *obs_ = nullptr;
    uint32_t obsIdx_ = 0;
};

} // namespace pipette

#endif // PIPETTE_RT_CONNECTOR_H
