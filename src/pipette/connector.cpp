#include "pipette/connector.h"

#include "obs/observer.h"

namespace pipette {

Connector::Connector(const ConnectorSpec &spec, Qrm *fromQrm,
                     PhysRegFile *fromPrf, Qrm *toQrm, PhysRegFile *toPrf,
                     CoreStats *stats, uint32_t latency,
                     uint32_t bandwidth)
    : spec_(spec), fromQrm_(fromQrm), fromPrf_(fromPrf), toQrm_(toQrm),
      toPrf_(toPrf), stats_(stats), latency_(latency),
      bandwidth_(bandwidth)
{
}

void
Connector::tick(Cycle now)
{
    // Fault-injected freezes only exist under fault plans, which imply
    // guardrails and therefore single-stepping -- elision never needs a
    // stalledUntil_ deadline.
    tickActive_ = false;

    if (now < stalledUntil_)
        return; // fault-injected freeze: hold all state as-is

    // Skip propagation: consumer-side arm reaches the real producer --
    // but only while no control value is anywhere in the path (source
    // queue or in-flight flits). If one is on its way it will clear the
    // consumer-side arm on delivery; propagating now would redirect the
    // producer inside the *next* work unit (wrong-abort race).
    if (toQrm_->skipArmed(spec_.toQueue) &&
        !fromQrm_->skipArmed(spec_.fromQueue)) {
        bool ctrlInPath = fromQrm_->hasAnyCtrl(spec_.fromQueue);
        for (const Flit &f : inflight_)
            ctrlInPath |= f.ctrl;
        if (!ctrlInPath) {
            fromQrm_->armSkip(spec_.fromQueue);
            tickActive_ = true;
        }
    }

    // Deliver arrived flits into the destination queue.
    while (!inflight_.empty() && inflight_.front().arrival <= now) {
        if (!toQrm_->canEnqueueNonSpec(spec_.toQueue) ||
            toPrf_->numFree() == 0) {
            break;
        }
        const Flit &f = inflight_.front();
        PhysRegId r = toPrf_->alloc();
        toPrf_->write(r, f.value);
        toQrm_->enqueueNonSpec(spec_.toQueue, r, f.ctrl);
        inflight_.pop_front();
        stats_->connectorTransfers++;
        tickActive_ = true;
    }

    // Send new flits, limited by bandwidth and credits: in-flight plus
    // destination occupancy must stay within the destination capacity.
    for (uint32_t b = 0; b < bandwidth_; b++) {
        if (!fromQrm_->canDequeueNonSpec(spec_.fromQueue))
            break;
        uint64_t credits = toQrm_->capacity(spec_.toQueue);
        if (inflight_.size() + toQrm_->totalSize(spec_.toQueue) >= credits) {
            // Data was available (canDequeueNonSpec passed) but no
            // credits: a genuine backpressure stall cycle. The hook's
            // run-length tracking is per-cycle observer state, so an
            // observed stall counts as activity (DESIGN.md §13).
            if (obs_) {
                obs_->onConnectorCreditStall(obsIdx_, now);
                tickActive_ = true;
            }
            break;
        }
        bool ctrl = false;
        PhysRegId r = fromQrm_->dequeueNonSpec(spec_.fromQueue, &ctrl);
        Flit f;
        f.arrival = now + latency_;
        f.value = fromPrf_->read(r);
        f.ctrl = ctrl;
        fromPrf_->free(r);
        inflight_.push_back(f);
        tickActive_ = true;
    }
}

void
Connector::setEpochMode()
{
    // Initial credit snapshot; refreshed at every epoch edge.
    uint64_t cap = toQrm_->capacity(spec_.toQueue);
    uint64_t used = toQrm_->totalSize(spec_.toQueue);
    creditBudget_ = cap > used ? cap - used : 0;
}

void
Connector::tickProducer(Cycle now)
{
    prodActive_ = false;
    if (now < stalledUntil_)
        return; // fault-injected freeze (applied at epoch edges)
    for (uint32_t b = 0; b < bandwidth_; b++) {
        if (!fromQrm_->canDequeueNonSpec(spec_.fromQueue))
            break;
        if (creditBudget_ == 0) {
            // Data was available but no credits as of the last epoch
            // edge: a backpressure stall cycle. Credits freed by the
            // consumer mid-epoch are not observable until the edge.
            // Observed stalls count as activity (see tick()).
            if (obs_) {
                obs_->onConnectorCreditStall(obsIdx_, now);
                prodActive_ = true;
            }
            break;
        }
        bool ctrl = false;
        PhysRegId r = fromQrm_->dequeueNonSpec(spec_.fromQueue, &ctrl);
        Flit f;
        f.arrival = now + latency_;
        f.value = fromPrf_->read(r);
        f.ctrl = ctrl;
        fromPrf_->free(r);
        outbox_.push_back(f);
        creditBudget_--;
        prodActive_ = true;
    }
}

void
Connector::tickConsumer(Cycle now)
{
    consActive_ = false;
    if (now < stalledUntil_)
        return;
    while (!inbox_.empty() && inbox_.front().arrival <= now) {
        if (!toQrm_->canEnqueueNonSpec(spec_.toQueue) ||
            toPrf_->numFree() == 0) {
            break;
        }
        const Flit &f = inbox_.front();
        PhysRegId r = toPrf_->alloc();
        toPrf_->write(r, f.value);
        toQrm_->enqueueNonSpec(spec_.toQueue, r, f.ctrl);
        inbox_.pop_front();
        deliveredThisEpoch_++;
        consActive_ = true;
    }
}

void
Connector::epochEdge(Cycle now)
{
    // Transfer stats live in the from-core's CoreStats, which the
    // consumer half (to-core partition) must not touch mid-epoch.
    stats_->connectorTransfers += deliveredThisEpoch_;
    deliveredThisEpoch_ = 0;

    // Hand this epoch's sends to the consumer. Epoch length never
    // exceeds the network latency, so nothing in the outbox could have
    // arrived mid-epoch, and arrival order is preserved by appending.
    while (!outbox_.empty()) {
        inbox_.push_back(outbox_.front());
        outbox_.pop_front();
    }

    // Skip propagation, against edge-consistent state (same rule as
    // the serial tick: no control value anywhere in the path).
    if (now >= stalledUntil_ && toQrm_->skipArmed(spec_.toQueue) &&
        !fromQrm_->skipArmed(spec_.fromQueue)) {
        bool ctrlInPath = fromQrm_->hasAnyCtrl(spec_.fromQueue);
        for (const Flit &f : inbox_)
            ctrlInPath |= f.ctrl;
        if (!ctrlInPath)
            fromQrm_->armSkip(spec_.fromQueue);
    }

    // Fresh credit snapshot: capacity minus everything already in the
    // destination queue or on the wire.
    uint64_t cap = toQrm_->capacity(spec_.toQueue);
    uint64_t used = toQrm_->totalSize(spec_.toQueue) + inbox_.size();
    creditBudget_ = cap > used ? cap - used : 0;
}

} // namespace pipette
