/**
 * @file
 * The Queue Register Map (QRM), the core Pipette structure (paper
 * Sec. IV-A). Queues live in the physical register file; the QRM tracks,
 * per queue, a circular buffer of physical register indices plus
 * speculative and committed head/tail pointers:
 *
 *  - enqueues advance the speculative tail at rename and the committed
 *    tail at commit;
 *  - dequeues advance the speculative head at rename and the committed
 *    head at commit (whereupon the register is freed);
 *  - dequeues may only consume committed entries (specHead < commTail),
 *    so misspeculation in a producer never propagates to a consumer;
 *  - recovery rolls the speculative pointers back.
 *
 * Reference accelerators and connectors act non-speculatively: their
 * enqueues/dequeues advance both pointers at once.
 *
 * Pointers are absolute 64-bit counters; slot index = counter % capacity.
 */

#ifndef PIPETTE_RT_QRM_H
#define PIPETTE_RT_QRM_H

#include <cstdint>
#include <string>
#include <vector>

#include "sim/logging.h"
#include "sim/types.h"

namespace pipette {

namespace obs {
class Observer;
} // namespace obs

/** Queue Register Map: all Pipette queues of one core. */
class Qrm
{
  public:
    Qrm(uint32_t numQueues, uint32_t defaultCap, uint32_t maxTotalRegs);

    /**
     * Attach the observability hook target (committed push/pop events,
     * occupancy). Null (the default) disables the hooks: each hook site
     * is a single pointer test (the guardrails pattern).
     */
    void
    setObserver(obs::Observer *o, CoreId core)
    {
        obs_ = o;
        obsCore_ = core;
    }

    uint32_t numQueues() const { return static_cast<uint32_t>(qs_.size()); }
    void setCapacity(QueueId q, uint32_t cap);
    uint32_t capacity(QueueId q) const { return qs_[q].cap; }

    /** Registers currently held by all queues (budget accounting). */
    uint32_t regsInUse() const { return regsInUse_; }
    uint32_t maxRegs() const { return maxRegs_; }

    /**
     * Monotonic counter bumped by every mutating operation on queue q.
     * All the rename-gate predicates (canDequeueSpec, headCtrl,
     * scanForCtrl, skipArmed, ...) read only per-queue state, so a
     * stalled rename whose queues' versions have not changed must stall
     * again; the core and the RAs use this to skip re-evaluating the
     * gates on retry cycles.
     */
    uint64_t version(QueueId q) const { return qs_[q].version; }
    /** Bumped whenever the shared register budget (regsInUse) moves;
     *  canEnqueueSpec additionally depends on this. */
    uint64_t regsVersion() const { return regsVersion_; }

    // --- Producer (thread, speculative) ---
    bool
    canEnqueueSpec(QueueId q) const
    {
        const Queue &Q = qs_[q];
        return Q.specTail - Q.commHead < Q.cap && regsInUse_ < maxRegs_;
    }
    /** True if enqueues are full purely due to queue capacity. */
    bool
    enqueueFull(QueueId q) const
    {
        const Queue &Q = qs_[q];
        return Q.specTail - Q.commHead >= Q.cap;
    }
    void enqueueSpec(QueueId q, PhysRegId reg, bool ctrl);
    /** Undo the youngest speculative enqueue; returns its register. */
    PhysRegId rollbackEnqueue(QueueId q);
    void commitEnqueue(QueueId q);

    // --- Consumer (thread, speculative) ---
    bool
    canDequeueSpec(QueueId q) const
    {
        const Queue &Q = qs_[q];
        return Q.specHead < Q.commTail;
    }
    bool headCtrl(QueueId q) const;
    PhysRegId headReg(QueueId q) const;
    /** Consume the head; returns its register (freed later, at commit). */
    PhysRegId dequeueSpec(QueueId q);
    void rollbackDequeue(QueueId q);
    /** Commit the oldest dequeue; returns the register to free. */
    PhysRegId commitDequeue(QueueId q);

    // --- skip_to_ctrl support ---
    struct CtrlScan
    {
        bool found = false;
        uint32_t offset = 0; ///< entries from specHead to the CV
    };
    /** Find the first control value among committed entries. */
    CtrlScan scanForCtrl(QueueId q) const;

    /** Producer has renamed-but-uncommitted enqueues in flight. */
    bool
    hasInflightEnqueues(QueueId q) const
    {
        return qs_[q].specTail > qs_[q].commTail;
    }

    /** A control value is in flight (renamed but not committed). */
    bool
    hasInflightCtrl(QueueId q) const
    {
        const Queue &Q = qs_[q];
        for (uint64_t i = Q.commTail; i < Q.specTail; i++)
            if (Q.ctrl[i % Q.cap])
                return true;
        return false;
    }

    /** Any control value among unconsumed entries (incl. in flight). */
    bool
    hasAnyCtrl(QueueId q) const
    {
        const Queue &Q = qs_[q];
        for (uint64_t i = Q.specHead; i < Q.specTail; i++)
            if (Q.ctrl[i % Q.cap])
                return true;
        return false;
    }

    bool skipArmed(QueueId q) const { return qs_[q].skipArmed; }
    void
    armSkip(QueueId q)
    {
        qs_[q].skipArmed = true;
        qs_[q].version++;
    }
    void
    setSkipArmed(QueueId q, bool v)
    {
        qs_[q].skipArmed = v;
        qs_[q].version++;
    }

    // --- Non-speculative agents (RAs, connectors, skiptc drain) ---
    bool
    canDequeueNonSpec(QueueId q) const
    {
        const Queue &Q = qs_[q];
        return Q.commHead < Q.commTail && Q.specHead == Q.commHead;
    }
    /** Consume the committed head outright; returns the register. */
    PhysRegId dequeueNonSpec(QueueId q, bool *ctrl);
    bool
    canEnqueueNonSpec(QueueId q) const
    {
        return canEnqueueSpec(q);
    }
    void enqueueNonSpec(QueueId q, PhysRegId reg, bool ctrl);

    // --- Introspection ---
    /** Pointer/state snapshot of one queue (guardrail diagnostics).
     *  Invariant: commHead <= specHead <= commTail <= specTail and
     *  specTail - commHead <= cap (checked by debug/invariants.h). */
    struct QueueDiag
    {
        uint64_t specHead = 0, specTail = 0, commHead = 0, commTail = 0;
        uint32_t cap = 0;
        bool skipArmed = false;
    };

    QueueDiag
    diag(QueueId q) const
    {
        const Queue &Q = at(q);
        return QueueDiag{Q.specHead, Q.specTail, Q.commHead,
                         Q.commTail,  Q.cap,     Q.skipArmed};
    }

    /**
     * Fault injection (FaultKind::CorruptQueueState): push the committed
     * tail past the speculative tail, breaking pointer consistency. The
     * run loop applies this before any stage can consume the phantom
     * entries, so the invariant checker must catch it first.
     */
    void
    injectTailCorruption(QueueId q)
    {
        Queue &Q = at(q);
        Q.commTail = Q.specTail + 1;
        Q.version++;
    }

    /** Committed occupancy (entries a consumer could dequeue). */
    uint64_t
    committedSize(QueueId q) const
    {
        return qs_[q].commTail - qs_[q].specHead;
    }
    /** Total entries holding registers (commHead..specTail). */
    uint64_t
    totalSize(QueueId q) const
    {
        return qs_[q].specTail - qs_[q].commHead;
    }
    bool empty(QueueId q) const { return totalSize(q) == 0; }

    std::string debugString() const;

  private:
    struct Queue
    {
        std::vector<PhysRegId> regs;
        std::vector<uint8_t> ctrl;
        uint64_t specHead = 0, specTail = 0, commHead = 0, commTail = 0;
        uint64_t version = 1;
        uint32_t cap = 0;
        bool skipArmed = false;
    };

    Queue &
    at(QueueId q)
    {
        panic_if(q >= qs_.size(), "queue id ", static_cast<int>(q),
                 " out of range");
        return qs_[q];
    }
    const Queue &
    at(QueueId q) const
    {
        panic_if(q >= qs_.size(), "queue id ", static_cast<int>(q),
                 " out of range");
        return qs_[q];
    }

    std::vector<Queue> qs_;
    uint32_t maxRegs_;
    uint32_t regsInUse_ = 0;
    uint64_t regsVersion_ = 1;

    /** Observability hooks; null = disabled. */
    obs::Observer *obs_ = nullptr;
    CoreId obsCore_ = 0;
};

} // namespace pipette

#endif // PIPETTE_RT_QRM_H
