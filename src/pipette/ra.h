/**
 * @file
 * Reference accelerators (paper Sec. IV-B): small configurable units
 * with one input and one output queue that offload producer-side
 * long-latency loads. Two modes:
 *
 *  - indirect: for each input index i, fetch base[i];
 *  - scan: for each input pair (start, end), fetch base[start..end-1].
 *
 * RAs act like non-speculative threads on the QRM: they consume
 * committed input entries and their enqueues commit immediately. They
 * opportunistically use spare data-cache ports (the port arbiter is
 * provided by the core) and track outstanding loads in an in-order
 * completion buffer. Control values pass through in order, and a
 * consumer-side skip on the output queue is propagated upstream to the
 * input queue so the real producer thread takes the enqueue trap.
 */

#ifndef PIPETTE_RT_RA_H
#define PIPETTE_RT_RA_H

#include <functional>

#include "isa/machine_spec.h"
#include "mem/hierarchy.h"
#include "mem/sim_memory.h"
#include "pipette/qrm.h"
#include "pipette/regfile.h"
#include "sim/pool.h"
#include "sim/stats.h"

namespace pipette {

/** One reference accelerator. */
class RefAccel
{
  public:
    /** Port arbiter: claims one data-cache port for this cycle. */
    using PortArbiter = std::function<bool()>;

    RefAccel(const RaSpec &spec, uint32_t completionBufEntries, Qrm *qrm,
             PhysRegFile *prf, SimMemory *mem, MemoryHierarchy *hier,
             EventQueue *eq, CoreStats *stats, PortArbiter ports);

    /** Advance one cycle. */
    void tick(Cycle now);

    /**
     * Cycle elision (DESIGN.md §13): true when the last tick() mutated
     * nothing -- no retire, no issue, no dequeue, no skip propagation.
     * A quiescent RA has no time-gated work of its own: its in-flight
     * loads complete through the event queue (whose deadline the run
     * loop consults) and everything else it waits on -- queue space,
     * free registers, input entries -- mutates only through other
     * agents' activity.
     */
    bool tickQuiescent() const { return !tickActive_; }

    /** True if the RA holds no in-flight work (for quiesce checks). */
    bool
    idle() const
    {
        return cb_.empty() && !scanning_ && !haveStart_ && !pendingSecond_;
    }

    /**
     * Fault injection (FaultKind::DelayRaCompletion): freeze the RA
     * until the given cycle. Outstanding loads still complete into the
     * completion buffer, but nothing is retired or newly issued, so the
     * consumer side starves until the stall lifts.
     */
    void injectStall(Cycle until) { stalledUntil_ = until; }

    // --- Guardrail diagnostics ---
    const RaSpec &spec() const { return spec_; }
    size_t cbSize() const { return cb_.size(); }
    Cycle stalledUntil() const { return stalledUntil_; }

    /**
     * Attach the observability hook target (indirection-load latency).
     * Null (the default) disables the hook: the site is a single
     * pointer test (the guardrails pattern).
     */
    void
    setObserver(obs::Observer *o, uint32_t idx)
    {
        obs_ = o;
        obsIdx_ = idx;
    }

    /**
     * Epoch scheduler: read through the owning core's write-buffering
     * memory view instead of the shared SimMemory, so RA loads see the
     * core's own in-epoch stores but never race a concurrent phase.
     */
    void setMemView(const EpochMemView *v) { view_ = v; }

    /**
     * Sampling checkpoint restore: install the golden interpreter's
     * functional scan cursor before a detailed window starts. The
     * completion buffer stays empty (in-flight loads are transient
     * timing state a checkpoint deliberately excludes; see DESIGN.md
     * §11). Only valid before the first tick of a run.
     */
    void
    restoreFunctionalState(bool scanning, bool haveStart, uint64_t start,
                           uint64_t cur, uint64_t end)
    {
        scanning_ = scanning;
        haveStart_ = haveStart;
        start_ = start;
        cur_ = cur;
        end_ = end;
        idleValid_ = false;
    }

  private:
    /**
     * Completion-buffer entry. Entries live by value in the bounded
     * ring below; an in-flight load's callback holds a raw pointer to
     * its slot. That is safe because ring slots never move, and a slot
     * is recycled only after its entry retires, which requires `done`
     * -- set by the callback itself, so no callback can outlive its
     * slot.
     */
    struct CbEntry
    {
        uint64_t value = 0;
        bool ctrl = false;
        bool done = false;
    };

    void issueLoad(Addr addr, Cycle now, CbEntry *entry);

    RaSpec spec_;
    uint32_t cbCapacity_;
    Qrm *qrm_;
    PhysRegFile *prf_;
    SimMemory *mem_;
    MemoryHierarchy *hier_;
    EventQueue *eq_;
    CoreStats *stats_;
    PortArbiter ports_;

    Cycle stalledUntil_ = 0; ///< fault injection; 0 = not stalled
    BoundedDeque<CbEntry> cb_;
    bool scanning_ = false;
    bool haveStart_ = false;
    uint64_t start_ = 0, cur_ = 0, end_ = 0;
    /** IndirectPair: second load waiting for a port. */
    bool pendingSecond_ = false;
    Addr pendingAddr_ = 0;
    CbEntry *pendingEntry_ = nullptr;
    /**
     * Idle memo: with no in-flight work, a tick can only act if the
     * input or output queue mutated since the last do-nothing tick
     * (everything tick() consults in that state is per-queue QRM
     * state). Keyed on both queues' versions.
     */
    bool idleValid_ = false;
    uint64_t idleInV_ = 0;
    uint64_t idleOutV_ = 0;
    /** Any mutation during the current tick sets this (elision). */
    bool tickActive_ = true;

    /** Observability hooks; null = disabled. */
    obs::Observer *obs_ = nullptr;
    uint32_t obsIdx_ = 0;
    /** Epoch-mode memory view; null = read the shared memory. */
    const EpochMemView *view_ = nullptr;
};

} // namespace pipette

#endif // PIPETTE_RT_RA_H
