/**
 * @file
 * Physical register file with an explicit free list. Shared by the
 * renamer, the Pipette QRM (queues live in physical registers), and the
 * reference accelerators.
 */

#ifndef PIPETTE_RT_REGFILE_H
#define PIPETTE_RT_REGFILE_H

#include <cstdint>
#include <vector>

#include "sim/logging.h"
#include "sim/types.h"

namespace pipette {

/** Physical integer register file + free list. */
class PhysRegFile
{
  public:
    explicit PhysRegFile(uint32_t n) : vals_(n, 0), ready_(n, 0)
    {
        freeList_.reserve(n);
        for (uint32_t i = 0; i < n; i++)
            freeList_.push_back(static_cast<PhysRegId>(n - 1 - i));
    }

    uint32_t numFree() const { return static_cast<uint32_t>(freeList_.size()); }
    uint32_t size() const { return static_cast<uint32_t>(vals_.size()); }

    /** Allocate a register; it starts not-ready. */
    PhysRegId
    alloc()
    {
        panic_if(freeList_.empty(), "physical register file exhausted");
        PhysRegId r = freeList_.back();
        freeList_.pop_back();
        ready_[r] = 0;
        return r;
    }

    /** Return a register to the free list. */
    void
    free(PhysRegId r)
    {
        panic_if(r == INVALID_PREG, "freeing invalid preg");
        freeList_.push_back(r);
    }

    bool isReady(PhysRegId r) const { return ready_[r] != 0; }

    uint64_t
    read(PhysRegId r) const
    {
        return vals_[r];
    }

    /** Write a value and mark the register ready. */
    void
    write(PhysRegId r, uint64_t v)
    {
        vals_[r] = v;
        if (!ready_[r]) {
            ready_[r] = 1;
            if (logReadyTransitions_)
                readyLog_.push_back(r);
        }
    }

    /** Mark ready without changing the value (pinned zero regs). */
    void
    setReady(PhysRegId r)
    {
        if (!ready_[r]) {
            ready_[r] = 1;
            if (logReadyTransitions_)
                readyLog_.push_back(r);
        }
    }

    /**
     * Record every not-ready -> ready transition in readyLog(). The
     * core's issue stage uses the log to wake sleeping issue-queue
     * entries instead of polling isReady every cycle. Off by default so
     * standalone users of PhysRegFile never accumulate an undrained log.
     */
    void
    enableReadyLog()
    {
        logReadyTransitions_ = true;
        readyLog_.reserve(vals_.size());
    }

    /** Registers made ready since the log was last cleared by the owner. */
    std::vector<PhysRegId> &readyLog() { return readyLog_; }

  private:
    std::vector<uint64_t> vals_;
    std::vector<uint8_t> ready_;
    std::vector<PhysRegId> freeList_;
    std::vector<PhysRegId> readyLog_;
    bool logReadyTransitions_ = false;
};

} // namespace pipette

#endif // PIPETTE_RT_REGFILE_H
