#include "hostprof/hostprof.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <vector>

namespace pipette::hostprof {

namespace detail {

std::atomic<bool> g_on{false};

namespace {

std::atomic<bool> g_trace{false};
/** Profile-clock origin, steady-clock ns since its epoch (0 = unset). */
std::atomic<int64_t> g_t0{0};

int64_t
rawNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

uint64_t
nowNs()
{
    int64_t t0 = g_t0.load(std::memory_order_relaxed);
    int64_t d = rawNs() - t0;
    return d > 0 ? static_cast<uint64_t>(d) : 0;
}

/** Phases recorded as trace slices. The elision scan fires every
 *  simulated cycle -- aggregate-only, or the trace would drown. */
constexpr bool
phaseTraced(Phase p)
{
    return p != Phase::ElisionScan;
}

struct TraceEvent
{
    uint64_t startNs;
    uint64_t endNs;
    Phase phase;
};

} // namespace

/**
 * One thread's aggregation slab. The per-phase counters are atomics so
 * snapshot() can read them while worker threads are live; all writes
 * come from the owning thread (relaxed adds, no contention). The frame
 * stack and trace buffer are owner-only.
 */
struct ThreadSlab
{
    static constexpr int kMaxDepth = 8;
    static constexpr size_t kMaxEvents = 1u << 16;

    struct Frame
    {
        Phase p;
        uint64_t sliceStart; ///< exclusive-time slice origin
        uint64_t scopeStart; ///< full-span origin (trace slices)
    };

    std::array<std::atomic<uint64_t>, kNumPhases> ns{};
    std::array<std::atomic<uint64_t>, kNumPhases> cnt{};
    Frame stack[kMaxDepth];
    int depth = 0;
    std::vector<TraceEvent> events;
    std::atomic<uint64_t> dropped{0};
    uint32_t tid = 0;
};

namespace {

struct Registry
{
    std::mutex mu;
    /** Slabs are never freed: a thread may exit while its counters are
     *  still part of the profile, so the registry owns them for the
     *  life of the process. */
    std::vector<std::unique_ptr<ThreadSlab>> slabs;

    // Pool telemetry (multi-writer: relaxed atomic adds).
    std::atomic<uint64_t> poolBusyNs{0};
    std::atomic<uint64_t> poolIdleNs{0};
    std::atomic<uint64_t> poolSteals{0};
    std::atomic<uint64_t> poolTasks{0};
    std::atomic<uint64_t> poolLifetimeNs{0};
    std::atomic<uint64_t> poolWorkers{0};

    // Low-frequency multi-writer aggregates, guarded by histMu.
    std::mutex histMu;
    obs::Log2Histogram skipHist;
    EpochTelemetry epoch;
};

Registry &
reg()
{
    static Registry r;
    return r;
}

} // namespace

ThreadSlab *
slab()
{
    thread_local ThreadSlab *tls = nullptr;
    if (!tls) {
        Registry &r = reg();
        std::lock_guard<std::mutex> lock(r.mu);
        r.slabs.push_back(std::make_unique<ThreadSlab>());
        tls = r.slabs.back().get();
        tls->tid = static_cast<uint32_t>(r.slabs.size() - 1);
    }
    return tls;
}

ThreadSlab *
enterPhase(ThreadSlab *s, Phase p)
{
    if (s->depth >= ThreadSlab::kMaxDepth)
        return nullptr;
    uint64_t now = nowNs();
    if (s->depth > 0) {
        ThreadSlab::Frame &par = s->stack[s->depth - 1];
        s->ns[static_cast<size_t>(par.p)].fetch_add(
            now - par.sliceStart, std::memory_order_relaxed);
    }
    s->stack[s->depth++] = {p, now, now};
    s->cnt[static_cast<size_t>(p)].fetch_add(1,
                                             std::memory_order_relaxed);
    return s;
}

void
exitPhase(ThreadSlab *s)
{
    ThreadSlab::Frame &f = s->stack[--s->depth];
    uint64_t now = nowNs();
    s->ns[static_cast<size_t>(f.p)].fetch_add(now - f.sliceStart,
                                              std::memory_order_relaxed);
    if (g_trace.load(std::memory_order_relaxed) && phaseTraced(f.p)) {
        if (s->events.size() < ThreadSlab::kMaxEvents)
            s->events.push_back({f.scopeStart, now, f.p});
        else
            s->dropped.fetch_add(1, std::memory_order_relaxed);
    }
    // Resume the parent's exclusive-time slice.
    if (s->depth > 0)
        s->stack[s->depth - 1].sliceStart = now;
}

} // namespace detail

using detail::reg;

const char *
phaseName(Phase p)
{
    switch (p) {
      case Phase::Build: return "build";
      case Phase::InputGen: return "input_gen";
      case Phase::DetailedSim: return "detailed_sim";
      case Phase::FastForward: return "fast_forward";
      case Phase::CheckpointCapture: return "checkpoint_capture";
      case Phase::WindowSim: return "window_sim";
      case Phase::EpochPhase: return "epoch_phase";
      case Phase::EpochBarrier: return "epoch_barrier";
      case Phase::ElisionScan: return "elision_scan";
      case Phase::SweepCacheIO: return "sweep_cache_io";
      case Phase::Verify: return "verify";
      case Phase::NUM_PHASES: break;
    }
    return "unknown";
}

void
setEnabled(bool on)
{
    if (on && !detail::g_t0.load(std::memory_order_relaxed))
        detail::g_t0.store(detail::rawNs(), std::memory_order_relaxed);
    detail::g_on.store(on, std::memory_order_relaxed);
}

void
setTraceEnabled(bool on)
{
    detail::g_trace.store(on, std::memory_order_relaxed);
}

void
reset()
{
    detail::Registry &r = reg();
    std::lock_guard<std::mutex> lock(r.mu);
    for (auto &s : r.slabs) {
        for (size_t i = 0; i < kNumPhases; i++) {
            s->ns[i].store(0, std::memory_order_relaxed);
            s->cnt[i].store(0, std::memory_order_relaxed);
        }
        s->depth = 0;
        s->events.clear();
        s->dropped.store(0, std::memory_order_relaxed);
    }
    r.poolBusyNs.store(0, std::memory_order_relaxed);
    r.poolIdleNs.store(0, std::memory_order_relaxed);
    r.poolSteals.store(0, std::memory_order_relaxed);
    r.poolTasks.store(0, std::memory_order_relaxed);
    r.poolLifetimeNs.store(0, std::memory_order_relaxed);
    r.poolWorkers.store(0, std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> hlock(r.histMu);
        r.skipHist = obs::Log2Histogram{};
        r.epoch = EpochTelemetry{};
    }
    detail::g_t0.store(detail::rawNs(), std::memory_order_relaxed);
}

double
profileSeconds()
{
    if (!detail::g_t0.load(std::memory_order_relaxed))
        return 0.0;
    return static_cast<double>(detail::nowNs()) * 1e-9;
}

void
addPoolBusy(uint64_t ns)
{
    reg().poolBusyNs.fetch_add(ns, std::memory_order_relaxed);
}

void
addPoolIdle(uint64_t ns)
{
    reg().poolIdleNs.fetch_add(ns, std::memory_order_relaxed);
}

void
addPoolSteal()
{
    reg().poolSteals.fetch_add(1, std::memory_order_relaxed);
}

void
addPoolTasks(uint64_t n)
{
    reg().poolTasks.fetch_add(n, std::memory_order_relaxed);
}

void
addPoolLifetime(uint64_t ns, unsigned workers)
{
    detail::Registry &r = reg();
    r.poolLifetimeNs.fetch_add(ns, std::memory_order_relaxed);
    r.poolWorkers.fetch_add(workers, std::memory_order_relaxed);
}

void
recordSkipWindow(uint64_t cycles)
{
    detail::Registry &r = reg();
    std::lock_guard<std::mutex> lock(r.histMu);
    r.skipHist.add(cycles);
}

void
EpochTelemetry::merge(const EpochTelemetry &o)
{
    epochs += o.epochs;
    pooledEpochs += o.pooledEpochs;
    phaseWorkNs += o.phaseWorkNs;
    phaseWallNs += o.phaseWallNs;
    wallWorkersNs += o.wallWorkersNs;
    barrierWaitNs += o.barrierWaitNs;
    imbalanceNs.merge(o.imbalanceNs);
}

void
mergeEpoch(const EpochTelemetry &t)
{
    detail::Registry &r = reg();
    std::lock_guard<std::mutex> lock(r.histMu);
    r.epoch.merge(t);
}

double
histPercentile(const obs::Log2Histogram &h, double q)
{
    uint64_t total = h.count();
    if (!total)
        return 0.0;
    uint64_t target = static_cast<uint64_t>(
        q * static_cast<double>(total));
    if (target >= total)
        target = total - 1;
    uint64_t seen = 0;
    for (size_t i = 0; i < obs::Log2Histogram::NUM_BUCKETS; i++) {
        seen += h.bucket(i);
        if (seen > target) {
            // Upper bound of bucket i: 0, 1, 3, 7, ... (2^(i-1)..2^i-1).
            if (i == 0)
                return 0.0;
            return static_cast<double>((uint64_t{1} << i) - 1);
        }
    }
    return static_cast<double>(h.max());
}

EpochSummary
summarizeEpoch(const EpochTelemetry &t)
{
    EpochSummary s;
    s.epochs = t.epochs;
    s.pooledEpochs = t.pooledEpochs;
    if (t.wallWorkersNs) {
        s.barrierWaitFrac = static_cast<double>(t.barrierWaitNs) /
                            static_cast<double>(t.wallWorkersNs);
    }
    s.imbalanceP50Us = histPercentile(t.imbalanceNs, 0.50) * 1e-3;
    s.imbalanceP99Us = histPercentile(t.imbalanceNs, 0.99) * 1e-3;
    s.imbalanceMaxUs = static_cast<double>(t.imbalanceNs.max()) * 1e-3;
    return s;
}

Snapshot
snapshot()
{
    detail::Registry &r = reg();
    Snapshot out;
    {
        std::lock_guard<std::mutex> lock(r.mu);
        for (auto &s : r.slabs) {
            for (size_t i = 0; i < kNumPhases; i++) {
                out.phases[i].ns +=
                    s->ns[i].load(std::memory_order_relaxed);
                out.phases[i].count +=
                    s->cnt[i].load(std::memory_order_relaxed);
            }
            out.traceEvents += s->events.size();
            out.traceDropped +=
                s->dropped.load(std::memory_order_relaxed);
        }
    }
    out.poolBusyNs = r.poolBusyNs.load(std::memory_order_relaxed);
    out.poolIdleNs = r.poolIdleNs.load(std::memory_order_relaxed);
    out.poolSteals = r.poolSteals.load(std::memory_order_relaxed);
    out.poolTasks = r.poolTasks.load(std::memory_order_relaxed);
    out.poolLifetimeNs = r.poolLifetimeNs.load(std::memory_order_relaxed);
    out.poolWorkersSpawned = r.poolWorkers.load(std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(r.histMu);
        out.skipWindowLen = r.skipHist;
        out.epoch = r.epoch;
    }
    out.wallSeconds = profileSeconds();
    return out;
}

namespace {

/** Minimal JSON string escaper (quotes, backslash, control chars). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(c) & 0xff);
            out += buf;
        } else {
            out += c;
        }
    }
    return out;
}

double
secs(uint64_t ns)
{
    return static_cast<double>(ns) * 1e-9;
}

} // namespace

bool
writeManifest(const std::string &path, const ManifestMeta &meta,
              std::string *err)
{
    Snapshot s = snapshot();
    FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        if (err)
            *err = "cannot open " + path + " for writing: " +
                   std::strerror(errno);
        return false;
    }
    std::fprintf(f, "{\n  \"pipette_host_prof\": 1,\n");
    std::fprintf(f, "  \"bench\": \"%s\",\n",
                 jsonEscape(meta.bench).c_str());
    std::fprintf(f,
                 "  \"build\": {\"describe\": \"%s\", \"compiler\": "
                 "\"%s\"},\n",
                 jsonEscape(buildDescribe()).c_str(),
                 jsonEscape(buildCompiler()).c_str());
    // The fingerprint identifies what was simulated; host-prof flags
    // are deliberately NOT part of it (DESIGN.md §14 contract).
    std::fprintf(f, "  \"config_fingerprint\": \"%016llx\",\n",
                 static_cast<unsigned long long>(meta.configFingerprint));
    std::fprintf(f, "  \"wall_seconds\": %.6f,\n", s.wallSeconds);
    std::fprintf(f, "  \"host_seconds_total\": %.6f,\n",
                 meta.hostSecondsTotal);

    uint64_t phaseNsTotal = 0;
    std::fprintf(f, "  \"phases\": {\n");
    for (size_t i = 0; i < kNumPhases; i++) {
        phaseNsTotal += s.phases[i].ns;
        std::fprintf(f,
                     "    \"%s\": {\"seconds\": %.6f, \"count\": "
                     "%llu}%s\n",
                     phaseName(static_cast<Phase>(i)),
                     secs(s.phases[i].ns),
                     static_cast<unsigned long long>(s.phases[i].count),
                     i + 1 < kNumPhases ? "," : "");
    }
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"phase_seconds_total\": %.6f,\n",
                 secs(phaseNsTotal));
    std::fprintf(f, "  \"phase_wall_coverage\": %.4f,\n",
                 s.wallSeconds > 0 ? secs(phaseNsTotal) / s.wallSeconds
                                   : 0.0);

    std::fprintf(
        f,
        "  \"pool\": {\"workers_spawned\": %llu, \"tasks\": %llu, "
        "\"steals\": %llu, \"busy_seconds\": %.6f, \"idle_seconds\": "
        "%.6f, \"lifetime_seconds\": %.6f},\n",
        static_cast<unsigned long long>(s.poolWorkersSpawned),
        static_cast<unsigned long long>(s.poolTasks),
        static_cast<unsigned long long>(s.poolSteals),
        secs(s.poolBusyNs), secs(s.poolIdleNs), secs(s.poolLifetimeNs));

    EpochSummary es = summarizeEpoch(s.epoch);
    std::fprintf(
        f,
        "  \"epoch\": {\"epochs\": %llu, \"pooled_epochs\": %llu, "
        "\"phase_work_seconds\": %.6f, \"phase_wall_seconds\": %.6f, "
        "\"barrier_wait_seconds\": %.6f, \"barrier_wait_frac\": %.4f, "
        "\"imbalance_us\": {\"p50\": %.3f, \"p99\": %.3f, \"max\": "
        "%.3f}, \"auto_inline_reason\": \"%s\"},\n",
        static_cast<unsigned long long>(s.epoch.epochs),
        static_cast<unsigned long long>(s.epoch.pooledEpochs),
        secs(s.epoch.phaseWorkNs), secs(s.epoch.phaseWallNs),
        secs(s.epoch.barrierWaitNs), es.barrierWaitFrac,
        es.imbalanceP50Us, es.imbalanceP99Us, es.imbalanceMaxUs,
        jsonEscape(meta.autoInlineReason).c_str());

    const obs::Log2Histogram &sw = s.skipWindowLen;
    std::fprintf(
        f,
        "  \"elision\": {\"skip_windows\": %llu, \"skipped_cycles\": "
        "%llu, \"window_len_cycles\": {\"mean\": %.1f, \"p50\": %.0f, "
        "\"p99\": %.0f, \"max\": %llu}, \"scan_seconds\": %.6f, "
        "\"scans\": %llu},\n",
        static_cast<unsigned long long>(sw.count()),
        static_cast<unsigned long long>(sw.sum()), sw.mean(),
        histPercentile(sw, 0.50), histPercentile(sw, 0.99),
        static_cast<unsigned long long>(sw.max()),
        secs(s.phases[static_cast<size_t>(Phase::ElisionScan)].ns),
        static_cast<unsigned long long>(
            s.phases[static_cast<size_t>(Phase::ElisionScan)].count));

    std::fprintf(f,
                 "  \"trace\": {\"events\": %llu, \"dropped\": %llu}\n",
                 static_cast<unsigned long long>(s.traceEvents),
                 static_cast<unsigned long long>(s.traceDropped));
    std::fprintf(f, "}\n");
    bool ok = std::ferror(f) == 0;
    if (std::fclose(f) != 0)
        ok = false;
    if (!ok && err)
        *err = "write to " + path + " failed";
    return ok;
}

bool
writeTrace(const std::string &path, std::string *err)
{
    detail::Registry &r = reg();
    FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        if (err)
            *err = "cannot open " + path + " for writing: " +
                   std::strerror(errno);
        return false;
    }
    // Chrome trace-event JSON, same envelope as the obs Perfetto
    // exporter: metadata ("M") thread names + complete ("X") slices,
    // timestamps in microseconds since the profile clock started.
    std::fprintf(f, "{\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n");
    bool first = true;
    std::lock_guard<std::mutex> lock(r.mu);
    std::fprintf(f,
                 "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": "
                 "1, \"args\": {\"name\": \"pipette-host\"}}");
    first = false;
    for (auto &s : r.slabs) {
        std::fprintf(f,
                     ",\n{\"name\": \"thread_name\", \"ph\": \"M\", "
                     "\"pid\": 1, \"tid\": %u, \"args\": {\"name\": "
                     "\"host-%u\"}}",
                     s->tid, s->tid);
        for (const detail::TraceEvent &e : s->events) {
            std::fprintf(f,
                         ",\n{\"name\": \"%s\", \"cat\": \"hostprof\", "
                         "\"ph\": \"X\", \"pid\": 1, \"tid\": %u, "
                         "\"ts\": %.3f, \"dur\": %.3f}",
                         phaseName(e.phase), s->tid,
                         static_cast<double>(e.startNs) * 1e-3,
                         static_cast<double>(e.endNs - e.startNs) *
                             1e-3);
        }
    }
    (void)first;
    std::fprintf(f, "\n]}\n");
    bool ok = std::ferror(f) == 0;
    if (std::fclose(f) != 0)
        ok = false;
    if (!ok && err)
        *err = "write to " + path + " failed";
    return ok;
}

const char *
buildDescribe()
{
#ifdef PIPETTE_HOSTPROF_GIT_DESC
    return PIPETTE_HOSTPROF_GIT_DESC;
#else
    return "unknown";
#endif
}

const char *
buildCompiler()
{
#ifdef __VERSION__
    return "g++ " __VERSION__;
#else
    return "unknown";
#endif
}

} // namespace pipette::hostprof
