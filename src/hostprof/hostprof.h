/**
 * @file
 * Host-side self-profiling (DESIGN.md §14): where does the *host's*
 * time go when it simulates? Scoped steady-clock phase timers over the
 * big host phases (interpreter fast-forward, checkpoint capture,
 * detailed window sim, epoch phase vs. barrier wait, elision oracle
 * scans, sweep-cache I/O), worker telemetry for the TaskPool
 * (busy/idle/steal/tasks), epoch-scheduler telemetry (per-epoch
 * max-min partition imbalance, barrier-wait fraction), elision
 * telemetry (skip-window length distribution), and two exporters: a
 * machine-readable run manifest (--host-prof) and a Chrome-trace
 * timeline of host phases (--host-trace).
 *
 * Non-perturbation contract (the guardrails/obs pattern): the layer is
 * always compiled and off by default; every hook site is a single
 * relaxed-atomic branch when off, so the simulated machine -- every
 * stat, every cycle, every random draw -- is byte-identical with
 * profiling on or off. All state is process-global and host-side: none
 * of it enters SystemConfig, configFingerprint, the sweep cache, or
 * the --stats-out determinism dumps.
 *
 * Aggregation is allocation-free in steady state: each thread owns a
 * fixed slab of per-phase counters (registered once, on the thread's
 * first timed scope) and scopes nest by pausing the parent frame, so
 * per-phase times are *exclusive* and sum to at most the thread's wall
 * time.
 */

#ifndef PIPETTE_HOSTPROF_HOSTPROF_H
#define PIPETTE_HOSTPROF_HOSTPROF_H

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "obs/histogram.h"

namespace pipette::hostprof {

/** The host-phase taxonomy (DESIGN.md §14 table). */
enum class Phase : uint8_t
{
    Build,             ///< workload build + System configure
    InputGen,          ///< synthetic input construction (bench suites)
    DetailedSim,       ///< full detailed run loop (System::run)
    FastForward,       ///< interpreter fast-forward (sampled mode)
    CheckpointCapture, ///< arch snapshot + warm-state copy + durable save
    WindowSim,         ///< one detailed measurement window
    EpochPhase,        ///< core-partition ticks of one epoch (per worker)
    EpochBarrier,      ///< coordinator waiting on the epoch-phase pool
    ElisionScan,       ///< quiescence-oracle scans + deadline computation
    SweepCacheIO,      ///< sweep CSV cache load/save
    Verify,            ///< host reference verification
    NUM_PHASES
};

constexpr size_t kNumPhases = static_cast<size_t>(Phase::NUM_PHASES);

const char *phaseName(Phase p);

namespace detail {
extern std::atomic<bool> g_on;
struct ThreadSlab;
/** This thread's slab (registered on first use; never freed). */
ThreadSlab *slab();
/** Enter/exit a timed frame; enter returns null on stack overflow. */
ThreadSlab *enterPhase(ThreadSlab *s, Phase p);
void exitPhase(ThreadSlab *s);
} // namespace detail

/** Single-branch hook gate: false costs one relaxed atomic load. */
inline bool
enabled()
{
    return detail::g_on.load(std::memory_order_relaxed);
}

/**
 * Master switch. Turning profiling on (re)starts the profile clock;
 * existing counters are kept (call reset() for a clean slate). Flip it
 * only from the main thread while no instrumented work is in flight.
 */
void setEnabled(bool on);

/** Record host-phase trace events for writeTrace(). Implies overhead
 *  per scope; independent of setEnabled only in that both default off
 *  (tracing without enabling records nothing). */
void setTraceEnabled(bool on);

/** Zero every counter, histogram, and trace buffer and restart the
 *  profile clock. Only call while no instrumented work is in flight. */
void reset();

/** Seconds since the profile clock started (setEnabled/reset). */
double profileSeconds();

/**
 * RAII exclusive-time phase scope. When profiling is off, construction
 * is one relaxed load and destruction one branch. When on: the parent
 * frame (if any) is paused, so concurrent-phase time is never double
 * counted and per-thread phase times sum to <= thread wall time.
 */
class ScopedPhase
{
  public:
    explicit ScopedPhase(Phase p)
    {
        if (enabled())
            slab_ = detail::enterPhase(detail::slab(), p);
    }
    ~ScopedPhase()
    {
        if (slab_)
            detail::exitPhase(slab_);
    }
    ScopedPhase(const ScopedPhase &) = delete;
    ScopedPhase &operator=(const ScopedPhase &) = delete;

  private:
    detail::ThreadSlab *slab_ = nullptr;
};

// --- TaskPool worker telemetry (called by parallel::TaskPool) --------

void addPoolBusy(uint64_t ns);
void addPoolIdle(uint64_t ns);
void addPoolSteal();
void addPoolTasks(uint64_t n);
/** Total worker-thread lifetime of one destroyed pool: (join - spawn)
 *  summed across its workers, plus the worker count itself. */
void addPoolLifetime(uint64_t ns, unsigned workers);

// --- Elision telemetry -----------------------------------------------

/** One skip window of `cycles` simulated cycles was elided. */
void recordSkipWindow(uint64_t cycles);

// --- Epoch-scheduler telemetry ---------------------------------------

/**
 * Per-System epoch-scheduler telemetry, accumulated single-writer on
 * the System's coordinating thread and merged into the global registry
 * when the System dies. All host-side nanoseconds.
 */
struct EpochTelemetry
{
    uint64_t epochs = 0;        ///< epoch phases run (inline + pooled)
    uint64_t pooledEpochs = 0;  ///< phases dispatched to the core pool
    uint64_t phaseWorkNs = 0;   ///< sum of per-partition tick durations
    uint64_t phaseWallNs = 0;   ///< sum of phase wall times
    uint64_t wallWorkersNs = 0; ///< sum of wall x pool workers (pooled)
    uint64_t barrierWaitNs = 0; ///< sum of (wall x workers - work)
    /** Per-epoch max-min partition duration, ns (pooled phases). */
    obs::Log2Histogram imbalanceNs;

    void merge(const EpochTelemetry &o);
};

/** Merge one System's telemetry into the process-global registry. */
void mergeEpoch(const EpochTelemetry &t);

/** Derived headline numbers for reports (fig17 rows, the manifest). */
struct EpochSummary
{
    uint64_t epochs = 0;
    uint64_t pooledEpochs = 0;
    /** Fraction of pooled worker-seconds spent waiting at the barrier:
     *  barrierWaitNs / wallWorkersNs (0 when nothing pooled). */
    double barrierWaitFrac = 0;
    double imbalanceP50Us = 0;
    double imbalanceP99Us = 0;
    double imbalanceMaxUs = 0;
};

EpochSummary summarizeEpoch(const EpochTelemetry &t);

/**
 * Approximate quantile of a log2 histogram: the upper bound of the
 * bucket holding the q-th sample (exact for the bucket, coarse within
 * it -- good enough for p50/p99 telemetry).
 */
double histPercentile(const obs::Log2Histogram &h, double q);

// --- Snapshot + exporters --------------------------------------------

/** Everything the layer has aggregated, summed across threads. */
struct Snapshot
{
    struct PhaseAgg
    {
        uint64_t ns = 0;
        uint64_t count = 0;
    };
    std::array<PhaseAgg, kNumPhases> phases{};
    uint64_t poolBusyNs = 0;
    uint64_t poolIdleNs = 0;
    uint64_t poolSteals = 0;
    uint64_t poolTasks = 0;
    uint64_t poolLifetimeNs = 0;
    uint64_t poolWorkersSpawned = 0;
    EpochTelemetry epoch;
    obs::Log2Histogram skipWindowLen; ///< simulated cycles per window
    uint64_t traceEvents = 0;
    uint64_t traceDropped = 0;
    double wallSeconds = 0; ///< profileSeconds() at snapshot time
};

Snapshot snapshot();

/** Caller-supplied context stamped into the manifest. */
struct ManifestMeta
{
    std::string bench;            ///< invoking binary / scenario name
    uint64_t configFingerprint = 0;
    double hostSecondsTotal = 0;  ///< sum of RunResult::hostSeconds
    std::string autoInlineReason; ///< empty = no auto-inline fallback
};

/**
 * Write the machine-readable run manifest (--host-prof): build info,
 * config fingerprint, wall seconds, every phase/worker/epoch/elision
 * metric. Returns false with *err set on I/O failure. The manifest is
 * host-side telemetry only -- it never feeds the determinism diffs.
 */
bool writeManifest(const std::string &path, const ManifestMeta &meta,
                   std::string *err);

/**
 * Write the recorded host-phase slices as a Chrome trace-event JSON
 * (--host-trace; the same "traceEvents" format the obs Perfetto
 * exporter emits, so it opens in ui.perfetto.dev next to a guest
 * trace). Requires setTraceEnabled(true) during the run.
 */
bool writeTrace(const std::string &path, std::string *err);

/** Compile-time build description ("git-describe-style"). */
const char *buildDescribe();
const char *buildCompiler();

} // namespace pipette::hostprof

#endif // PIPETTE_HOSTPROF_HOSTPROF_H
