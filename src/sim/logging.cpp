#include "sim/logging.h"

#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "resilience/error.h"

namespace pipette {

namespace {
/** Depth of FatalThrowScope nesting on this thread (> 0 = throw). */
thread_local int g_fatalThrowDepth = 0;
} // namespace

FatalThrowScope::FatalThrowScope()
{
    g_fatalThrowDepth++;
}

FatalThrowScope::~FatalThrowScope()
{
    g_fatalThrowDepth--;
}

namespace detail {

// Serializes sink writes so messages from concurrently running Systems
// (SimJobPool workers) come out whole lines, never interleaved
// mid-message. Single fprintf calls are atomic on POSIX but panic/fatal
// emit two, and this also covers platforms without that guarantee.
namespace {
std::mutex &
logMutex()
{
    static std::mutex m;
    return m;
}
} // namespace

[[noreturn]] void
panicImpl(const char *file, int line, const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lock(logMutex());
        std::fprintf(stderr, "panic: %s\n  at %s:%d\n", msg.c_str(), file,
                     line);
    }
    std::abort();
}

[[noreturn]] void
fatalImpl(const char *file, int line, const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lock(logMutex());
        std::fprintf(stderr, "fatal: %s\n  at %s:%d\n", msg.c_str(), file,
                     line);
    }
    // Under a FatalThrowScope the error is recoverable: the scope
    // holder (Runner, a pool worker, the window fan-out) converts it
    // into a structured result. Otherwise exit with the taxonomy code
    // for user/config errors.
    if (g_fatalThrowDepth > 0)
        throw resilience::SimException(resilience::SimError::ConfigError,
                                       msg);
    std::exit(resilience::exitCode(resilience::SimError::ConfigError));
}

void
warnImpl(const std::string &msg)
{
    std::lock_guard<std::mutex> lock(logMutex());
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    std::lock_guard<std::mutex> lock(logMutex());
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace detail
} // namespace pipette
