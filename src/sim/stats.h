/**
 * @file
 * Statistics containers. Hot-path stats are plain struct fields; dump()
 * flattens everything into a name->value map for reporting.
 */

#ifndef PIPETTE_SIM_STATS_H
#define PIPETTE_SIM_STATS_H

#include <array>
#include <cstdint>
#include <map>
#include <string>

#include "sim/types.h"

namespace pipette {

/**
 * CPI-stack buckets (paper Fig. 11): each core cycle is attributed to
 * exactly one bucket.
 */
enum class CpiBucket : uint8_t
{
    Issue,   ///< at least one micro-op issued this cycle
    Backend, ///< blocked on memory / ROB (long-latency loads)
    Queue,   ///< blocked on full/empty Pipette queues
    Other,   ///< front-end and miscellaneous stalls
    NumBuckets,
};

constexpr size_t NUM_CPI_BUCKETS =
    static_cast<size_t>(CpiBucket::NumBuckets);

/** Name of a CPI bucket for reports. */
const char *cpiBucketName(CpiBucket b);

/**
 * Registry of every scalar event counter in CoreStats. dump() and the
 * cross-core aggregation iterate this list, so a counter added to the
 * struct but not the registry can never be silently dropped from the
 * flattened map: the sizeof static_assert below fails until the new
 * field is registered here (or the special-cased cycles/per-thread/CPI
 * fields are updated alongside it).
 */
#define PIPETTE_CORE_STAT_COUNTERS(X)                                   \
    X(committedInstrs)                                                  \
    X(issuedUops)                                                       \
    X(squashedInstrs)                                                   \
    X(fetchedInstrs)                                                    \
    X(branches)                                                         \
    X(mispredicts)                                                      \
    X(loads)                                                            \
    X(stores)                                                           \
    X(atomics)                                                          \
    X(enqueues)                                                         \
    X(dequeues)                                                         \
    X(ctrlValues)                                                       \
    X(cvTraps)                                                          \
    X(enqTraps)                                                         \
    X(skipDiscards)                                                     \
    X(queueFullStalls)                                                  \
    X(queueEmptyStalls)                                                 \
    X(dynInstPoolStalls)                                                \
    X(checkpointStalls)                                                 \
    X(regReads)                                                         \
    X(regWrites)                                                        \
    X(raAccesses)                                                       \
    X(raCvForwards)                                                     \
    X(connectorTransfers)                                               \
    X(skippedCycles)                                                    \
    X(skipWindows)

/** Number of counters in PIPETTE_CORE_STAT_COUNTERS. */
constexpr size_t NUM_CORE_STAT_COUNTERS = [] {
    size_t n = 0;
#define PIPETTE_COUNT_STAT(name) n++;
    PIPETTE_CORE_STAT_COUNTERS(PIPETTE_COUNT_STAT)
#undef PIPETTE_COUNT_STAT
    return n;
}();

/** Per-core statistics. */
struct CoreStats
{
    uint64_t cycles = 0;
    uint64_t committedInstrs = 0;
    uint64_t committedPerThread[8] = {};
    uint64_t issuedUops = 0;
    uint64_t squashedInstrs = 0;
    uint64_t fetchedInstrs = 0;
    uint64_t branches = 0;
    uint64_t mispredicts = 0;
    uint64_t loads = 0;
    uint64_t stores = 0;
    uint64_t atomics = 0;
    uint64_t enqueues = 0;
    uint64_t dequeues = 0;
    uint64_t ctrlValues = 0;
    uint64_t cvTraps = 0;
    uint64_t enqTraps = 0;
    uint64_t skipDiscards = 0;
    uint64_t queueFullStalls = 0;
    uint64_t queueEmptyStalls = 0;
    /** Rename stalls from an exhausted DynInst pool (should stay 0). */
    uint64_t dynInstPoolStalls = 0;
    /** Rename stalls from an exhausted checkpoint arena (should stay 0). */
    uint64_t checkpointStalls = 0;
    uint64_t regReads = 0;
    uint64_t regWrites = 0;
    uint64_t raAccesses = 0;
    uint64_t raCvForwards = 0;
    uint64_t connectorTransfers = 0;
    /** Cycles the quiescence oracle elided (credited in bulk; included
     *  in `cycles`, so cycles stays the total simulated time). */
    uint64_t skippedCycles = 0;
    /** Contiguous elided stretches (skippedCycles / skipWindows = mean
     *  skip length). */
    uint64_t skipWindows = 0;
    std::array<uint64_t, NUM_CPI_BUCKETS> cpiCycles = {};

    double ipc() const;
    void dump(const std::string &prefix,
              std::map<std::string, double> &out) const;
};

// Completeness guard: cycles + the registered counters + the per-thread
// commit array + the CPI stack account for every byte of the struct. A
// new field changes sizeof and trips this until it is registered above
// (scalar counters) or handled explicitly (arrays / special fields) in
// dump() and System::aggregateCoreStats().
static_assert(sizeof(CoreStats) ==
                  sizeof(uint64_t) * (1 + NUM_CORE_STAT_COUNTERS + 8) +
                      sizeof(std::array<uint64_t, NUM_CPI_BUCKETS>),
              "CoreStats field not registered in "
              "PIPETTE_CORE_STAT_COUNTERS");

/** Per-cache statistics. */
struct CacheStats
{
    uint64_t accesses = 0;
    uint64_t misses = 0;
    uint64_t writebacks = 0;
    uint64_t prefetches = 0;
    uint64_t prefetchHits = 0;
    uint64_t invalidations = 0;
    uint64_t mshrFullEvents = 0;

    double missRate() const;
    void dump(const std::string &prefix,
              std::map<std::string, double> &out) const;
};

/** Memory-side statistics. */
struct MemStats
{
    uint64_t dramReads = 0;
    uint64_t dramWrites = 0;
    uint64_t dramQueueCycles = 0;

    void dump(const std::string &prefix,
              std::map<std::string, double> &out) const;
};

} // namespace pipette

#endif // PIPETTE_SIM_STATS_H
