/**
 * @file
 * Fixed-capacity allocation pools for simulation hot paths.
 *
 * The steady-state simulation loop must not hit the host heap: a
 * make_shared per renamed instruction and a make_unique per branch
 * checkpoint dominated host time on the benchmark sweeps. This header
 * provides the two building blocks that replace them:
 *
 *  - ObjectPool<T> / PooledPtr<T>: a free-list slab of T plus an
 *    intrusive (non-atomic) refcounted handle. All storage is allocated
 *    once at construction; acquire/release are push/pop on a
 *    pre-reserved free list. When the pool is exhausted, tryAcquire
 *    returns null and the caller is expected to stall (the core maps
 *    this to a rename Resource stall), never to fall back to the heap.
 *
 *  - SlotArena<T>: a fixed slab of T with a ring buffer of free slot
 *    indices, for objects with bounded population but unordered
 *    release (rename-map checkpoints: allocated in program order, freed
 *    from both ends by commit and squash).
 *
 *  - BoundedDeque<T>: a fixed-capacity ring replacement for the
 *    std::deque pipeline queues (ROB, fetch buffer, LSQ). std::deque
 *    allocates and frees 512-byte chunks as the queue wraps, which both
 *    costs host time and breaks the zero-allocation steady state.
 *
 * Both expose counters so tests can assert the hot loop performed zero
 * heap allocations after warmup (see test_pool.cpp / test_determinism).
 */

#ifndef PIPETTE_SIM_POOL_H
#define PIPETTE_SIM_POOL_H

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/logging.h"

namespace pipette {

template <typename T> class ObjectPool;

/**
 * Intrusive refcounted handle to a pool-managed object. T must provide
 * `uint32_t poolRefs`, `ObjectPool<T> *poolOwner`, and `void
 * poolReset()` (release external resources and restore the
 * default-constructed state, preserving poolOwner). The refcount is
 * non-atomic: pooled objects belong to one simulated core and are never
 * shared across host threads.
 */
template <typename T>
class PooledPtr
{
  public:
    PooledPtr() = default;
    explicit PooledPtr(T *p) noexcept : p_(p)
    {
        if (p_)
            p_->poolRefs++;
    }
    PooledPtr(const PooledPtr &o) noexcept : p_(o.p_)
    {
        if (p_)
            p_->poolRefs++;
    }
    PooledPtr(PooledPtr &&o) noexcept : p_(o.p_) { o.p_ = nullptr; }
    PooledPtr &
    operator=(const PooledPtr &o) noexcept
    {
        if (o.p_)
            o.p_->poolRefs++;
        drop();
        p_ = o.p_;
        return *this;
    }
    PooledPtr &
    operator=(PooledPtr &&o) noexcept
    {
        if (this != &o) {
            drop();
            p_ = o.p_;
            o.p_ = nullptr;
        }
        return *this;
    }
    ~PooledPtr() noexcept { drop(); }

    T *operator->() const { return p_; }
    T &operator*() const { return *p_; }
    T *get() const { return p_; }
    explicit operator bool() const { return p_ != nullptr; }
    bool operator==(const PooledPtr &o) const { return p_ == o.p_; }
    bool operator!=(const PooledPtr &o) const { return p_ != o.p_; }

    void
    reset()
    {
        drop();
        p_ = nullptr;
    }

  private:
    void
    drop()
    {
        if (p_ && --p_->poolRefs == 0)
            p_->poolOwner->release(p_);
    }

    T *p_ = nullptr;
};

/** Fixed-capacity free-list pool. All allocation happens up front. */
template <typename T>
class ObjectPool
{
  public:
    explicit ObjectPool(uint32_t capacity) : slab_(capacity)
    {
        free_.reserve(capacity);
        for (uint32_t i = capacity; i-- > 0;) {
            slab_[i].poolOwner = this;
            free_.push_back(&slab_[i]);
        }
    }

    // The slab hands out interior pointers; it must never move.
    ObjectPool(const ObjectPool &) = delete;
    ObjectPool &operator=(const ObjectPool &) = delete;

    /** Next free object (default-constructed state), or null if empty. */
    T *
    tryAcquire()
    {
        if (free_.empty()) {
            exhausted_++;
            return nullptr;
        }
        T *p = free_.back();
        free_.pop_back();
        acquires_++;
        return p;
    }

    /** Return an object; called by PooledPtr when refs hit zero. */
    void
    release(T *p)
    {
        p->poolReset();
        free_.push_back(p); // never reallocates: size <= capacity
    }

    uint32_t capacity() const { return static_cast<uint32_t>(slab_.size()); }
    uint32_t numFree() const { return static_cast<uint32_t>(free_.size()); }
    uint32_t inUse() const { return capacity() - numFree(); }
    /** Lifetime acquisitions (all free-list hits; none touch the heap). */
    uint64_t acquires() const { return acquires_; }
    /** Times tryAcquire found the pool empty (caller stalled). */
    uint64_t exhausted() const { return exhausted_; }

  private:
    std::vector<T> slab_;
    std::vector<T *> free_;
    uint64_t acquires_ = 0;
    uint64_t exhausted_ = 0;
};

/**
 * Fixed slab of T with a ring buffer of free slot indices. alloc() pops
 * from the ring head, free() pushes to the tail; capacity bounds the
 * population (for checkpoints: the max number of in-flight branches,
 * itself bounded by the ROB).
 */
template <typename T>
class SlotArena
{
  public:
    explicit SlotArena(uint32_t capacity)
        : slab_(capacity), ring_(capacity)
    {
        for (uint32_t i = 0; i < capacity; i++)
            ring_[i] = i;
        freeCount_ = capacity;
    }

    SlotArena(const SlotArena &) = delete;
    SlotArena &operator=(const SlotArena &) = delete;

    /** Grab a slot, or null when all slots are live (caller stalls). */
    T *
    alloc()
    {
        if (freeCount_ == 0) {
            exhausted_++;
            return nullptr;
        }
        uint32_t slot = ring_[head_];
        head_ = next(head_);
        freeCount_--;
        allocs_++;
        return &slab_[slot];
    }

    void
    free(T *p)
    {
        auto slot = static_cast<uint32_t>(p - slab_.data());
        panic_if(slot >= slab_.size(), "SlotArena::free of foreign pointer");
        panic_if(freeCount_ >= slab_.size(), "SlotArena double free");
        ring_[tail_] = slot;
        tail_ = next(tail_);
        freeCount_++;
    }

    uint32_t capacity() const { return static_cast<uint32_t>(slab_.size()); }
    uint32_t numFree() const { return freeCount_; }
    uint32_t inUse() const { return capacity() - freeCount_; }
    uint64_t allocs() const { return allocs_; }
    uint64_t exhausted() const { return exhausted_; }

  private:
    uint32_t
    next(uint32_t i) const
    {
        return i + 1 == ring_.size() ? 0 : i + 1;
    }

    std::vector<T> slab_;
    std::vector<uint32_t> ring_; ///< circular buffer of free slot indices
    uint32_t head_ = 0;          ///< next slot to hand out
    uint32_t tail_ = 0;          ///< where freed slots are returned
    uint32_t freeCount_ = 0;
    uint64_t allocs_ = 0;
    uint64_t exhausted_ = 0;
};

/**
 * Fixed-capacity double-ended queue over a power-of-two ring. The
 * storage is sized once by init(); push/pop never touch the heap.
 * Indices are monotonically increasing 64-bit counters, so wraparound
 * of the ring is just a mask. Popped slots are reset to T{} so handles
 * (e.g. PooledPtr) release their referents immediately.
 */
template <typename T>
class BoundedDeque
{
  public:
    /** Size the ring for at least `capacity` elements. Not reentrant
     *  with live contents; call once before use. */
    void
    init(uint32_t capacity)
    {
        uint32_t cap = 1;
        while (cap < capacity)
            cap <<= 1;
        buf_.assign(cap, T{});
        mask_ = cap - 1;
        head_ = tail_ = 0;
    }

    bool empty() const { return head_ == tail_; }
    size_t size() const { return tail_ - head_; }

    T &front() { return buf_[head_ & mask_]; }
    const T &front() const { return buf_[head_ & mask_]; }
    T &back() { return buf_[(tail_ - 1) & mask_]; }
    const T &back() const { return buf_[(tail_ - 1) & mask_]; }

    /** i-th element counted from the front. */
    T &operator[](size_t i) { return buf_[(head_ + i) & mask_]; }
    const T &operator[](size_t i) const { return buf_[(head_ + i) & mask_]; }

    void
    push_back(const T &v)
    {
        panic_if(size() > mask_, "BoundedDeque overflow");
        buf_[tail_ & mask_] = v;
        tail_++;
    }

    void
    push_back(T &&v)
    {
        panic_if(size() > mask_, "BoundedDeque overflow");
        buf_[tail_ & mask_] = std::move(v);
        tail_++;
    }

    void
    pop_front()
    {
        panic_if(empty(), "BoundedDeque::pop_front on empty");
        buf_[head_ & mask_] = T{};
        head_++;
    }

    void
    pop_back()
    {
        panic_if(empty(), "BoundedDeque::pop_back on empty");
        tail_--;
        buf_[tail_ & mask_] = T{};
    }

    void
    clear()
    {
        while (!empty())
            pop_front();
    }

  private:
    std::vector<T> buf_;
    uint64_t mask_ = 0;
    uint64_t head_ = 0;
    uint64_t tail_ = 0;
};

} // namespace pipette

#endif // PIPETTE_SIM_POOL_H
