/**
 * @file
 * gem5-style status and error reporting: panic() for simulator bugs,
 * fatal() for user/configuration errors, warn()/inform() for diagnostics.
 */

#ifndef PIPETTE_SIM_LOGGING_H
#define PIPETTE_SIM_LOGGING_H

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace pipette {

namespace detail {
[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);
} // namespace detail

/**
 * While an instance is alive on the current thread, fatal() throws a
 * resilience::SimException (class ConfigError) instead of exiting the
 * process. Recoverable layers -- Runner::run, SimJobPool workers, the
 * sampling window fan-out -- hold one so a bad cell or window is
 * isolated into a structured error result instead of killing every
 * sibling run (DESIGN.md §12). Unscoped fatal() still exits, with the
 * ConfigError taxonomy exit code. Nestable; thread-local.
 */
class FatalThrowScope
{
  public:
    FatalThrowScope();
    ~FatalThrowScope();
    FatalThrowScope(const FatalThrowScope &) = delete;
    FatalThrowScope &operator=(const FatalThrowScope &) = delete;
};

namespace detail {

/** Minimal printf-free formatter: concatenates stream-formattable args. */
template <typename... Args>
std::string
format(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
}
} // namespace detail

/** Abort on a condition that indicates a simulator bug. */
#define panic(...) \
    ::pipette::detail::panicImpl(__FILE__, __LINE__, \
                                 ::pipette::detail::format(__VA_ARGS__))

/** Exit on a condition that is the user's fault (bad config, bad input). */
#define fatal(...) \
    ::pipette::detail::fatalImpl(__FILE__, __LINE__, \
                                 ::pipette::detail::format(__VA_ARGS__))

/** Warn about suspicious but non-fatal behaviour. */
#define warn(...) \
    ::pipette::detail::warnImpl(::pipette::detail::format(__VA_ARGS__))

/** Informational status message. */
#define inform(...) \
    ::pipette::detail::informImpl(::pipette::detail::format(__VA_ARGS__))

/** panic() unless the invariant holds. */
#define panic_if(cond, ...) \
    do { \
        if (cond) { \
            panic(__VA_ARGS__); \
        } \
    } while (0)

/** fatal() unless the user-facing condition holds. */
#define fatal_if(cond, ...) \
    do { \
        if (cond) { \
            fatal(__VA_ARGS__); \
        } \
    } while (0)

} // namespace pipette

#endif // PIPETTE_SIM_LOGGING_H
