/**
 * @file
 * gem5-style status and error reporting: panic() for simulator bugs,
 * fatal() for user/configuration errors, warn()/inform() for diagnostics.
 */

#ifndef PIPETTE_SIM_LOGGING_H
#define PIPETTE_SIM_LOGGING_H

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace pipette {

namespace detail {
[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Minimal printf-free formatter: concatenates stream-formattable args. */
template <typename... Args>
std::string
format(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
}
} // namespace detail

/** Abort on a condition that indicates a simulator bug. */
#define panic(...) \
    ::pipette::detail::panicImpl(__FILE__, __LINE__, \
                                 ::pipette::detail::format(__VA_ARGS__))

/** Exit on a condition that is the user's fault (bad config, bad input). */
#define fatal(...) \
    ::pipette::detail::fatalImpl(__FILE__, __LINE__, \
                                 ::pipette::detail::format(__VA_ARGS__))

/** Warn about suspicious but non-fatal behaviour. */
#define warn(...) \
    ::pipette::detail::warnImpl(::pipette::detail::format(__VA_ARGS__))

/** Informational status message. */
#define inform(...) \
    ::pipette::detail::informImpl(::pipette::detail::format(__VA_ARGS__))

/** panic() unless the invariant holds. */
#define panic_if(cond, ...) \
    do { \
        if (cond) { \
            panic(__VA_ARGS__); \
        } \
    } while (0)

/** fatal() unless the user-facing condition holds. */
#define fatal_if(cond, ...) \
    do { \
        if (cond) { \
            fatal(__VA_ARGS__); \
        } \
    } while (0)

} // namespace pipette

#endif // PIPETTE_SIM_LOGGING_H
