#include "sim/stats.h"

namespace pipette {

const char *
cpiBucketName(CpiBucket b)
{
    switch (b) {
      case CpiBucket::Issue: return "issue";
      case CpiBucket::Backend: return "backend";
      case CpiBucket::Queue: return "queue";
      case CpiBucket::Other: return "other";
      default: return "?";
    }
}

double
CoreStats::ipc() const
{
    return cycles ? static_cast<double>(committedInstrs) /
                        static_cast<double>(cycles)
                  : 0.0;
}

void
CoreStats::dump(const std::string &prefix,
                std::map<std::string, double> &out) const
{
    out[prefix + ".cycles"] = static_cast<double>(cycles);
#define PIPETTE_DUMP_STAT(name)                                         \
    out[prefix + "." #name] = static_cast<double>(name);
    PIPETTE_CORE_STAT_COUNTERS(PIPETTE_DUMP_STAT)
#undef PIPETTE_DUMP_STAT
    for (size_t t = 0; t < 8; t++) {
        out[prefix + ".committedPerThread" + std::to_string(t)] =
            static_cast<double>(committedPerThread[t]);
    }
    out[prefix + ".ipc"] = ipc();
    for (size_t i = 0; i < NUM_CPI_BUCKETS; i++) {
        out[prefix + ".cpi." + cpiBucketName(static_cast<CpiBucket>(i))] =
            static_cast<double>(cpiCycles[i]);
    }
}

double
CacheStats::missRate() const
{
    return accesses ? static_cast<double>(misses) /
                          static_cast<double>(accesses)
                    : 0.0;
}

void
CacheStats::dump(const std::string &prefix,
                 std::map<std::string, double> &out) const
{
    out[prefix + ".accesses"] = static_cast<double>(accesses);
    out[prefix + ".misses"] = static_cast<double>(misses);
    out[prefix + ".missRate"] = missRate();
    out[prefix + ".writebacks"] = static_cast<double>(writebacks);
    out[prefix + ".prefetches"] = static_cast<double>(prefetches);
    out[prefix + ".prefetchHits"] = static_cast<double>(prefetchHits);
    out[prefix + ".invalidations"] = static_cast<double>(invalidations);
    out[prefix + ".mshrFullEvents"] = static_cast<double>(mshrFullEvents);
}

void
MemStats::dump(const std::string &prefix,
               std::map<std::string, double> &out) const
{
    out[prefix + ".dramReads"] = static_cast<double>(dramReads);
    out[prefix + ".dramWrites"] = static_cast<double>(dramWrites);
    out[prefix + ".dramQueueCycles"] =
        static_cast<double>(dramQueueCycles);
}

} // namespace pipette
