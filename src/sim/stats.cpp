#include "sim/stats.h"

namespace pipette {

const char *
cpiBucketName(CpiBucket b)
{
    switch (b) {
      case CpiBucket::Issue: return "issue";
      case CpiBucket::Backend: return "backend";
      case CpiBucket::Queue: return "queue";
      case CpiBucket::Other: return "other";
      default: return "?";
    }
}

double
CoreStats::ipc() const
{
    return cycles ? static_cast<double>(committedInstrs) /
                        static_cast<double>(cycles)
                  : 0.0;
}

void
CoreStats::dump(const std::string &prefix,
                std::map<std::string, double> &out) const
{
    out[prefix + ".cycles"] = static_cast<double>(cycles);
    out[prefix + ".committedInstrs"] = static_cast<double>(committedInstrs);
    out[prefix + ".issuedUops"] = static_cast<double>(issuedUops);
    out[prefix + ".squashedInstrs"] = static_cast<double>(squashedInstrs);
    out[prefix + ".fetchedInstrs"] = static_cast<double>(fetchedInstrs);
    out[prefix + ".branches"] = static_cast<double>(branches);
    out[prefix + ".mispredicts"] = static_cast<double>(mispredicts);
    out[prefix + ".loads"] = static_cast<double>(loads);
    out[prefix + ".stores"] = static_cast<double>(stores);
    out[prefix + ".atomics"] = static_cast<double>(atomics);
    out[prefix + ".enqueues"] = static_cast<double>(enqueues);
    out[prefix + ".dequeues"] = static_cast<double>(dequeues);
    out[prefix + ".ctrlValues"] = static_cast<double>(ctrlValues);
    out[prefix + ".cvTraps"] = static_cast<double>(cvTraps);
    out[prefix + ".enqTraps"] = static_cast<double>(enqTraps);
    out[prefix + ".queueFullStalls"] = static_cast<double>(queueFullStalls);
    out[prefix + ".queueEmptyStalls"] =
        static_cast<double>(queueEmptyStalls);
    out[prefix + ".dynInstPoolStalls"] =
        static_cast<double>(dynInstPoolStalls);
    out[prefix + ".checkpointStalls"] =
        static_cast<double>(checkpointStalls);
    out[prefix + ".regReads"] = static_cast<double>(regReads);
    out[prefix + ".regWrites"] = static_cast<double>(regWrites);
    out[prefix + ".raAccesses"] = static_cast<double>(raAccesses);
    out[prefix + ".connectorTransfers"] =
        static_cast<double>(connectorTransfers);
    out[prefix + ".ipc"] = ipc();
    for (size_t i = 0; i < NUM_CPI_BUCKETS; i++) {
        out[prefix + ".cpi." + cpiBucketName(static_cast<CpiBucket>(i))] =
            static_cast<double>(cpiCycles[i]);
    }
}

double
CacheStats::missRate() const
{
    return accesses ? static_cast<double>(misses) /
                          static_cast<double>(accesses)
                    : 0.0;
}

void
CacheStats::dump(const std::string &prefix,
                 std::map<std::string, double> &out) const
{
    out[prefix + ".accesses"] = static_cast<double>(accesses);
    out[prefix + ".misses"] = static_cast<double>(misses);
    out[prefix + ".missRate"] = missRate();
    out[prefix + ".writebacks"] = static_cast<double>(writebacks);
    out[prefix + ".prefetches"] = static_cast<double>(prefetches);
    out[prefix + ".prefetchHits"] = static_cast<double>(prefetchHits);
    out[prefix + ".invalidations"] = static_cast<double>(invalidations);
    out[prefix + ".mshrFullEvents"] = static_cast<double>(mshrFullEvents);
}

void
MemStats::dump(const std::string &prefix,
               std::map<std::string, double> &out) const
{
    out[prefix + ".dramReads"] = static_cast<double>(dramReads);
    out[prefix + ".dramWrites"] = static_cast<double>(dramWrites);
    out[prefix + ".dramQueueCycles"] =
        static_cast<double>(dramQueueCycles);
}

} // namespace pipette
