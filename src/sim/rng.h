/**
 * @file
 * Deterministic, platform-independent pseudo-random number generation.
 * std::mt19937_64 is portable but the standard distributions are not,
 * so input generators use this splitmix64-based RNG exclusively.
 */

#ifndef PIPETTE_SIM_RNG_H
#define PIPETTE_SIM_RNG_H

#include <cmath>
#include <cstdint>
#include <vector>

namespace pipette {

/** splitmix64 generator with convenience distributions. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed) {}

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Uniform integer in [lo, hi], inclusive. */
    uint64_t
    uniformInt(uint64_t lo, uint64_t hi)
    {
        return lo + next() % (hi - lo + 1);
    }

    /** Uniform real in [0, 1). */
    double
    uniformReal()
    {
        return (next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** True with probability p. */
    bool bernoulli(double p) { return uniformReal() < p; }

  private:
    uint64_t state_;
};

/**
 * Zipfian integer sampler over [0, n), used by the YCSB-C workload
 * generator. Precomputes the harmonic normalization once.
 */
class ZipfSampler
{
  public:
    ZipfSampler(uint64_t n, double theta, uint64_t seed);

    /** Draw one Zipf-distributed item in [0, n). */
    uint64_t sample();

  private:
    uint64_t n_;
    double theta_;
    double alpha_;
    double zetan_;
    double eta_;
    Rng rng_;
};

} // namespace pipette

#endif // PIPETTE_SIM_RNG_H
