/**
 * @file
 * Streaming FNV-1a fingerprinting for configurations and workload
 * inputs. Used to key the on-disk sweep cache: a cache entry is valid
 * only if the hash of the full SystemConfig plus every input it was
 * simulated with matches, so editing a config can never silently
 * reload stale results.
 *
 * Hash fields one by one (never whole structs): struct padding bytes
 * are indeterminate and would make the fingerprint nondeterministic.
 */

#ifndef PIPETTE_SIM_HASH_H
#define PIPETTE_SIM_HASH_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace pipette {

/** Incremental 64-bit FNV-1a hasher. */
class Fnv1a
{
  public:
    void
    bytes(const void *p, size_t n)
    {
        const auto *b = static_cast<const unsigned char *>(p);
        for (size_t i = 0; i < n; i++) {
            h_ ^= b[i];
            h_ *= 0x100000001b3ull;
        }
    }

    /** Hash one integral/enum/float value by representation. */
    template <typename T>
    void
    pod(const T &v)
    {
        bytes(&v, sizeof v);
    }

    /** Length-prefixed string (so "ab","c" != "a","bc"). */
    void
    str(const std::string &s)
    {
        pod(static_cast<uint64_t>(s.size()));
        bytes(s.data(), s.size());
    }

    /** Length-prefixed vector of integral values. */
    template <typename T>
    void
    vec(const std::vector<T> &v)
    {
        pod(static_cast<uint64_t>(v.size()));
        if (!v.empty())
            bytes(v.data(), v.size() * sizeof(T));
    }

    uint64_t value() const { return h_; }

  private:
    uint64_t h_ = 0xcbf29ce484222325ull;
};

} // namespace pipette

#endif // PIPETTE_SIM_HASH_H
