/**
 * @file
 * Small-buffer-optimized, move-only callable for simulation events.
 *
 * std::function heap-allocates any capture larger than ~16 bytes, which
 * put one malloc/free pair on every cache-miss completion and every
 * event-queue writeback. InlineCallback instead embeds the closure in a
 * fixed inline buffer and refuses (at compile time) closures that do not
 * fit, so scheduling an event never touches the heap.
 */

#ifndef PIPETTE_SIM_CALLBACK_H
#define PIPETTE_SIM_CALLBACK_H

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace pipette {

/** Move-only `void()` callable with inline storage; never allocates. */
class InlineCallback
{
  public:
    /**
     * Closure capacity in bytes. Sized for the largest hot-path capture
     * (a load-miss completion: pooled inst handle + memory/regfile/stat
     * pointers + address/size). Growing it is free until events stop
     * fitting in a cache line or two.
     */
    static constexpr size_t CAPACITY = 64;

    InlineCallback() = default;
    InlineCallback(std::nullptr_t) {}

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineCallback> &&
                  !std::is_same_v<std::decay_t<F>, std::nullptr_t>>>
    InlineCallback(F &&f)
    {
        using Fn = std::decay_t<F>;
        static_assert(sizeof(Fn) <= CAPACITY,
                      "closure too large for InlineCallback: shrink the "
                      "capture or raise CAPACITY");
        static_assert(alignof(Fn) <= alignof(std::max_align_t));
        static_assert(std::is_nothrow_move_constructible_v<Fn>);
        new (buf_) Fn(std::forward<F>(f));
        invoke_ = [](void *p) { (*static_cast<Fn *>(p))(); };
        relocate_ = [](void *src, void *dst) {
            Fn *s = static_cast<Fn *>(src);
            if (dst)
                new (dst) Fn(std::move(*s));
            s->~Fn();
        };
    }

    InlineCallback(InlineCallback &&o) noexcept
        : invoke_(o.invoke_), relocate_(o.relocate_)
    {
        if (relocate_)
            relocate_(o.buf_, buf_);
        o.invoke_ = nullptr;
        o.relocate_ = nullptr;
    }

    InlineCallback &
    operator=(InlineCallback &&o) noexcept
    {
        if (this != &o) {
            reset();
            invoke_ = o.invoke_;
            relocate_ = o.relocate_;
            if (relocate_)
                relocate_(o.buf_, buf_);
            o.invoke_ = nullptr;
            o.relocate_ = nullptr;
        }
        return *this;
    }

    InlineCallback(const InlineCallback &) = delete;
    InlineCallback &operator=(const InlineCallback &) = delete;

    ~InlineCallback() { reset(); }

    void operator()() { invoke_(buf_); }

    explicit operator bool() const { return invoke_ != nullptr; }

  private:
    void
    reset()
    {
        if (relocate_)
            relocate_(buf_, nullptr);
        invoke_ = nullptr;
        relocate_ = nullptr;
    }

    alignas(std::max_align_t) unsigned char buf_[CAPACITY];
    void (*invoke_)(void *) = nullptr;
    /** Move-construct *src into dst (or just destroy src if dst null). */
    void (*relocate_)(void *src, void *dst) = nullptr;
};

} // namespace pipette

#endif // PIPETTE_SIM_CALLBACK_H
