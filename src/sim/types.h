/**
 * @file
 * Fundamental scalar types shared by every simulator subsystem.
 */

#ifndef PIPETTE_SIM_TYPES_H
#define PIPETTE_SIM_TYPES_H

#include <cstdint>
#include <limits>

namespace pipette {

/** Simulated byte address (64-bit virtual address space). */
using Addr = uint64_t;

/** Simulation time in core clock cycles. */
using Cycle = uint64_t;

/** Hardware thread index within a core (0 .. smtThreads-1). */
using ThreadId = uint32_t;

/** Core index within the simulated system. */
using CoreId = uint32_t;

/** Physical register index within a core's register file. */
using PhysRegId = uint16_t;

/** Architectural register index (0 .. NUM_ARCH_REGS-1). */
using ArchRegId = uint8_t;

/** Pipette queue index within a core. */
using QueueId = uint8_t;

/** Sentinel for "no physical register". */
constexpr PhysRegId INVALID_PREG = std::numeric_limits<PhysRegId>::max();

/** Sentinel for "no queue". */
constexpr QueueId INVALID_QUEUE = std::numeric_limits<QueueId>::max();

/**
 * Number of architectural integer registers per thread. Chosen to match
 * x86-64's 16 GPRs, which is also what makes the paper's PRF arithmetic
 * work out (212-entry PRF - 4 threads x 16 regs = 148 queue-mappable
 * registers, the figure quoted in Table III).
 */
constexpr uint32_t NUM_ARCH_REGS = 16;

/** Architectural register conventions. */
namespace reg {
/** Hardwired zero register. */
constexpr ArchRegId ZERO = 0;
/** Control-value payload, written by CV dispatch (dequeue of a CV). */
constexpr ArchRegId CVVAL = 13;
/** Queue id that delivered the control value / triggered the trap. */
constexpr ArchRegId CVQID = 14;
/** Return PC: address of the instruction that triggered the handler. */
constexpr ArchRegId CVRET = 15;
} // namespace reg

} // namespace pipette

#endif // PIPETTE_SIM_TYPES_H
