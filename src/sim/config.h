/**
 * @file
 * Configuration structures for the simulated system. Defaults follow the
 * paper's Table IV: Skylake-like 6-wide OOO cores with 4 SMT threads,
 * 212-entry PRF, 16 Pipette queues of 32 entries, 4 reference
 * accelerators, and a 3-level cache hierarchy (scaled down together with
 * the inputs; see DESIGN.md).
 */

#ifndef PIPETTE_SIM_CONFIG_H
#define PIPETTE_SIM_CONFIG_H

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.h"

namespace pipette {

/** Parameters of one out-of-order SMT core. */
struct CoreConfig
{
    /** Hardware threads per core. */
    uint32_t smtThreads = 4;

    uint32_t fetchWidth = 6;
    uint32_t renameWidth = 6;
    uint32_t issueWidth = 6;
    uint32_t commitWidth = 6;

    /** Cycles from fetch of an instruction until it is renameable. */
    uint32_t frontendDelay = 4;

    /** Reorder buffer entries, partitioned evenly among active threads. */
    uint32_t robEntries = 224;
    /** Unified issue-queue entries (shared among threads). */
    uint32_t iqEntries = 97;
    /** Load-queue entries, partitioned among active threads. */
    uint32_t lqEntries = 72;
    /** Store-queue entries, partitioned among active threads. */
    uint32_t sqEntries = 56;
    /** Physical integer registers (shared: architectural + rename + queues). */
    uint32_t physRegs = 212;
    /** Per-thread fetch buffer entries. */
    uint32_t fetchBufferEntries = 24;
    /** Per-thread post-commit store buffer entries. */
    uint32_t storeBufferEntries = 16;
    /** Cycles of fetch redirect penalty on a branch misprediction. */
    uint32_t mispredictPenalty = 12;

    /** Functional unit counts per cycle. */
    uint32_t numAlu = 4;
    uint32_t numMul = 1;
    uint32_t numDiv = 1;
    uint32_t numMemPorts = 2;

    uint32_t mulLatency = 3;
    uint32_t divLatency = 20;

    /** log2 of gshare pattern-history-table entries. */
    uint32_t gshareBits = 14;
    /** Branch-target-buffer entries (indirect jumps). */
    uint32_t btbEntries = 2048;

    /** Enable Pipette hardware (queues, RAs). */
    bool pipetteEnabled = true;
    /** Number of architecturally visible queues. */
    uint32_t numQueues = 16;
    /** Default per-queue capacity in values. */
    uint32_t queueCapacity = 32;
    /**
     * Cap on the number of physical registers all queues may collectively
     * hold, preventing queues from starving rename (paper Sec. IV-A).
     */
    uint32_t maxQueueRegs = 148;
    /** Reference accelerators per core. */
    uint32_t numRAs = 4;
    /** Completion-buffer entries per RA. */
    uint32_t raCompletionBuf = 32;

    /**
     * DynInst pool capacity (0 = derive from ROB/LQ/SQ sizes). The pool
     * bounds in-flight instructions including squashed ones waiting on
     * outstanding memory completions; an exhausted pool stalls rename.
     * The default never stalls; small values are for testing.
     */
    uint32_t dynInstPoolEntries = 0;
    /**
     * Rename-checkpoint arena capacity (0 = match the DynInst pool).
     * Bounds in-flight branches; exhaustion stalls rename.
     */
    uint32_t checkpointArenaEntries = 0;

    /**
     * Commit trace sink: when non-null, every committed instruction is
     * logged as "cycle core.thread pc: disassembly" (debugging aid).
     */
    FILE *traceFile = nullptr;
};

/** Parameters of one cache level. */
struct CacheConfig
{
    uint32_t sizeBytes;
    uint32_t ways;
    /** Access (hit) latency in cycles, cumulative from the request. */
    uint32_t latency;
    /** Maximum outstanding misses. */
    uint32_t mshrs;
};

/** Parameters of the memory hierarchy. */
struct MemConfig
{
    uint32_t lineBytes = 64;

    // Capacities are scaled down together with the workload inputs so
    // that working-set:LLC ratios match the paper's setup at laptop
    // scale (see EXPERIMENTS.md); latencies stay Skylake-like.
    CacheConfig l1d{32 * 1024, 8, 4, 10};
    CacheConfig l2{128 * 1024, 8, 12, 20};
    /** Shared last-level cache (total across cores). */
    CacheConfig l3{512 * 1024, 16, 38, 64};

    /** DRAM access latency in core cycles (after the L3 miss). */
    uint32_t dramLatency = 140;
    /** Minimum cycles between DRAM requests per channel (bandwidth). */
    uint32_t dramCyclesPerReq = 4;
    uint32_t dramChannels = 2;

    bool prefetcherEnabled = true;
    /** Concurrent streams tracked by the L1D stream prefetcher. */
    uint32_t pfStreams = 16;
    /** Lines prefetched ahead on a detected stream. */
    uint32_t pfDegree = 4;

    /** Extra latency for invalidating / forwarding remote copies. */
    uint32_t coherencePenalty = 15;
};

/**
 * One deterministic fault to inject mid-run (guardrail testing). Each
 * kind exercises a different failure class the guardrails must detect:
 * stalled connectors and RAs wedge the pipeline (watchdog + deadlock
 * diagnoser), blocked pools starve rename (watchdog), flipped queue
 * payloads corrupt data (lockstep oracle), and corrupted QRM pointers
 * break structural invariants (invariant checker).
 */
enum class FaultKind : uint8_t
{
    /** Stall connector `index`: no sends or deliveries while active. */
    DropConnectorCredits,
    /** Stall RA `index`: it neither issues nor retires while active. */
    DelayRaCompletion,
    /** Rename on core `core` behaves as if the DynInst pool were empty. */
    BlockDynInstPool,
    /** Rename on core `core` behaves as if the checkpoint arena were empty. */
    BlockCheckpointArena,
    /** XOR bit `bit` into the committed head value of (core, queue). */
    FlipQueuePayload,
    /** Advance (core, queue)'s committed tail past its speculative tail. */
    CorruptQueueState,
};

/** One scheduled fault. Interpretation of index/core/queue is per kind. */
struct FaultInjection
{
    FaultKind kind = FaultKind::FlipQueuePayload;
    /** First cycle the fault may apply (FlipQueuePayload retries until
     *  the target queue has a committed data head). */
    uint64_t atCycle = 0;
    /** Cycles the fault stays active; 0 = rest of the run. Only
     *  meaningful for the stall/block kinds. */
    uint64_t duration = 0;
    /** Connector or RA index, in MachineSpec declaration order. */
    uint32_t index = 0;
    CoreId core = 0;
    QueueId queue = 0;
    /** FlipQueuePayload: which bit (0-63) of the value to flip. */
    uint32_t bit = 0;
};

/**
 * Guardrail layer configuration (src/debug/). Everything defaults off;
 * with the whole struct disabled the run loop takes no guardrail
 * branches, so golden statistics stay bit-identical.
 */
struct GuardrailConfig
{
    /**
     * Run the golden-model interpreter in lockstep, one step per
     * committed instruction, and stop at the first diverging commit.
     * Supports race-free programs (per-location single writer across
     * threads); cross-thread shared-memory races diverge by design.
     */
    bool lockstepOracle = false;
    /** Per-cycle QRM/credit invariant checks + leak accounting at drain. */
    bool invariantChecks = false;
    /** Per-thread flight-recorder depth in events (0 = off). */
    uint32_t flightRecorderDepth = 0;
    /** Deterministic fault plan (applied by the run loop). */
    std::vector<FaultInjection> faults;

    bool
    enabled() const
    {
        return lockstepOracle || invariantChecks ||
               flightRecorderDepth > 0 || !faults.empty();
    }
};

/**
 * Observability layer configuration (src/obs/). Everything defaults
 * off; with the whole struct disabled the run loop and every hook site
 * reduce to a single null-pointer test (the guardrails pattern), so
 * golden statistics stay bit-identical. The layer never feeds back into
 * simulated state: even when enabled, simulated timing and statistics
 * are unchanged -- it only records.
 */
struct ObservabilityConfig
{
    /**
     * Interval-sampling period in cycles (0 = off). Every N cycles the
     * System snapshots deltas of the aggregate core/cache/memory stats
     * plus per-queue occupancy into an in-memory time series,
     * exportable as CSV (sampleCsvPath or Observer::intervalCsv()).
     */
    uint32_t sampleInterval = 0;
    /**
     * Log2-bucketed histograms: per-queue occupancy-at-enqueue and
     * dequeue-wait latency, per-RA indirection latency, and per-
     * connector credit-stall run length. Folded into the flattened
     * stats map under "obs." keys.
     */
    bool histograms = false;
    /** Collect a Chrome/Perfetto JSON trace (see trace window below). */
    bool perfetto = false;
    /** Collect a gem5-style O3PipeView text trace (Konata-compatible). */
    bool pipeview = false;
    /** Output paths; empty = keep in memory only (tests use accessors). */
    std::string perfettoPath;
    std::string pipeviewPath;
    std::string sampleCsvPath;
    /** First cycle the trace collectors are active. */
    uint64_t traceFrom = 0;
    /** Trace-window length in cycles (0 = to the end of the run). */
    uint64_t traceCycles = 0;

    bool
    enabled() const
    {
        return sampleInterval > 0 || histograms || perfetto || pipeview;
    }
};

/**
 * Sampled-simulation regime (src/sample/): functionally fast-forward
 * through the golden interpreter (warming caches and branch
 * predictors), checkpoint every `period` retired instructions, run a
 * detailed window of `warmup + window` instructions from each
 * checkpoint, and extrapolate whole-run cycles from the measured
 * windows (SMARTS-style). Off by default (period = 0): the detailed
 * model runs the whole program and nothing changes. Sampled stats are
 * deterministic -- byte-identical across runs and at any --jobs value.
 */
struct SamplingConfig
{
    /** Retired instructions between checkpoints (0 = sampling off). */
    uint64_t period = 0;
    /** Measured (post-warmup) instructions per detailed window. */
    uint64_t window = 10'000;
    /** Detailed warmup instructions per window, excluded from CPI. */
    uint64_t warmup = 2'000;
    /**
     * Checkpoint cap: bounds host memory (each checkpoint carries a
     * warmed cache/bpred copy, a few hundred KB). When the cap trips,
     * the remaining instructions fast-forward uncovered and the run is
     * flagged (warn + sample.checkpointsTruncated); choose a larger
     * period instead of relying on the cap. Changes which instructions
     * are measured, so it keys the config fingerprint.
     */
    uint64_t maxCheckpoints = 256;

    bool enabled() const { return period != 0; }
};

/**
 * Host-level fault tolerance for sampled runs (src/resilience/;
 * DESIGN.md §12). Defaults are all off: no checkpoint file, no resume,
 * no window timeout, no injected faults -- and the sampled regime is
 * byte-identical to PR 7 behaviour.
 */
struct ResilienceConfig
{
    /**
     * Durable checkpoint output path ("" = off). Written atomically
     * (tmp + rename) at every sample-period boundary and again when
     * the fast-forward completes, so an interrupted or killed run can
     * continue via resumePath. Output-side only: never part of the
     * config fingerprint.
     */
    std::string checkpointOutPath;
    /**
     * Resume a sampled run from this checkpoint file ("" = off). The
     * file's embedded fingerprint must match this config -- resume
     * identity is the fingerprint, so the path itself is (like the
     * output path) never hashed.
     */
    std::string resumePath;
    /**
     * Wall-clock budget per detailed window in milliseconds (0 = no
     * timeout). A window that exceeds it is abandoned at the next
     * chunk boundary, retried once inline, and on the second failure
     * excluded from extrapolation (sample.windowsFailed).
     */
    uint64_t windowTimeoutMs = 0;
    /**
     * Deterministic-interrupt test hook: behave as if SIGINT arrived
     * once N checkpoints have been captured (0 = off). Lets tests and
     * CI exercise the exact cooperative-drain path a real signal takes
     * without timing races.
     */
    uint64_t interruptAtCheckpoint = 0;
    /** Fault injection (tests): the first N attempts of window
     *  `faultWindow` throw before running (0 = off). */
    uint32_t injectWindowFailures = 0;
    /** Fault injection (tests): every attempt of window `faultWindow`
     *  sleeps this long first, tripping the wall-clock watchdog. */
    uint64_t injectWindowHangMs = 0;
    /** Target window index for the two injection knobs above. */
    uint32_t faultWindow = 0;

    bool
    faultInjectionEnabled() const
    {
        return injectWindowFailures > 0 || injectWindowHangMs > 0;
    }
};

/** Parameters of the whole simulated system. */
struct SystemConfig
{
    uint32_t numCores = 1;
    CoreConfig core;
    MemConfig mem;

    /** One-way latency of a cross-core connector, in cycles. */
    uint32_t connectorLatency = 24;
    /** Values a connector can move per cycle. */
    uint32_t connectorBandwidth = 1;

    /** Abort if no instruction commits anywhere for this many cycles. */
    uint64_t watchdogCycles = 500'000;
    /** Hard cap on simulated cycles (0 = unlimited). */
    uint64_t maxCycles = 0;

    /**
     * Host worker threads simulating this System's cores in parallel
     * (intra-System parallelism, --core-jobs). Multicore systems
     * (numCores > 1) always run the epoch-barrier scheduler, so
     * simulated results are byte-identical at any value of this knob;
     * it only selects how many host threads execute the per-core
     * partitions between epoch edges. Ignored when numCores == 1
     * (single-core systems keep the cycle-serial loop). Composes with
     * the outer SimJobPool sweep parallelism (--jobs): each sweep
     * worker may itself fan out over coreJobs host threads.
     */
    uint32_t coreJobs = 1;
    /**
     * Epoch length in cycles for the epoch-barrier scheduler
     * (0 = auto: min(connectorLatency, l3.latency - l2.latency),
     * clamped to >= 1). Cross-core effects are exchanged only at
     * epoch edges, so this changes multicore simulated timing and is
     * part of the config fingerprint. Must not exceed connectorLatency
     * or flits could arrive within their send epoch.
     */
    uint32_t epochLength = 0;

    /**
     * Stall-aware cycle elision (DESIGN.md §13): when every simulated
     * structure is provably quiescent, the run loop jumps the clock to
     * the earliest future cycle at which anything can make progress and
     * credits all per-cycle statistics in bulk. On by default; results
     * are bit-identical with it off (`--no-skip`), it only changes host
     * speed. Hashed into the config fingerprint anyway (the coreJobs
     * policy): a cache row records exactly the config it ran under.
     * Guardrail modes (lockstep oracle, per-cycle invariant checks,
     * fault plans) and the commit trace force single-stepping
     * regardless of this flag.
     */
    bool cycleElision = true;

    /** Debug guardrails (oracle, invariants, flight recorder, faults). */
    GuardrailConfig guardrails;

    /** Observability (interval sampling, histograms, trace export). */
    ObservabilityConfig observability;

    /** Sampled simulation (src/sample/; off unless period > 0). */
    SamplingConfig sampling;

    /** Host fault tolerance: checkpoints, resume, window timeouts
     *  (src/resilience/; everything off by default). */
    ResilienceConfig resilience;

    /** Human-readable one-line summary (Table IV style). */
    std::string summary() const;
};

/**
 * Stable 64-bit fingerprint over every simulation-affecting field of a
 * SystemConfig (hashed field by field, never through struct padding).
 * Keys the bench sweep's disk cache: any config edit changes the hash
 * and invalidates cached results.
 */
uint64_t configFingerprint(const SystemConfig &cfg);

} // namespace pipette

#endif // PIPETTE_SIM_CONFIG_H
