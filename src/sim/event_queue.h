/**
 * @file
 * Global event queue used for memory-system completion callbacks. The
 * cores are cycle-driven; the event queue carries the asynchronous parts
 * (cache miss completions, DRAM responses, connector deliveries).
 *
 * Implementation: a hierarchical timing wheel. Events within WHEEL_SPAN
 * cycles of now (cache hits, L2/L3 fills, ordinary DRAM responses) go
 * into a per-cycle bucket; rarer far-future events (deeply queued DRAM
 * under congestion) fall back to a binary heap. Buckets are intrusive
 * FIFO lists of nodes drawn from a slab-backed free list, so the pool's
 * high-water mark is the maximum number of simultaneously pending
 * events -- reached once, early -- and the steady state performs no
 * heap allocation at all. Callbacks are InlineCallback, so capturing a
 * completion closure never allocates either.
 *
 * Ordering contract (unchanged from the binary-heap implementation):
 * events run in ascending (when, seq) order, where seq is the global
 * schedule order. An event scheduled during a callback for the same
 * cycle runs within the same runUntil call, after all earlier events.
 */

#ifndef PIPETTE_SIM_EVENT_QUEUE_H
#define PIPETTE_SIM_EVENT_QUEUE_H

#include <algorithm>
#include <array>
#include <memory>
#include <vector>

#include "sim/callback.h"
#include "sim/logging.h"
#include "sim/types.h"

namespace pipette {

/** Timing wheel + far-future heap of (cycle, insertion order) -> callback. */
class EventQueue
{
  public:
    using Callback = InlineCallback;

    /** Cycles covered by the near-future bucket array (power of two). */
    static constexpr uint32_t WHEEL_SPAN = 1024;

    /** Schedule cb to run at cycle `when` (must not be in the past). */
    void
    schedule(Cycle when, Callback cb)
    {
        panic_if(when < now_, "scheduling event in the past (", when,
                 " < ", now_, ")");
        pending_++;
        if (when - now_ < WHEEL_SPAN) {
            Bucket &b = wheel_[when & (WHEEL_SPAN - 1)];
            WheelNode *n = allocNode();
            n->seq = seq_++;
            n->cb = std::move(cb);
            n->next = nullptr;
            if (b.tail)
                b.tail->next = n;
            else
                b.head = n;
            b.tail = n;
            wheelCount_++;
            nearScheduled_++;
        } else {
            heap_.push_back(Event{when, seq_++, std::move(cb)});
            std::push_heap(heap_.begin(), heap_.end(), laterThan);
            farScheduled_++;
        }
    }

    /** Run all events due at or before `cycle`, advancing time. */
    void
    runUntil(Cycle cycle)
    {
        // Catch stragglers scheduled at == now_ since the last call.
        if (pending_ > 0 && dueAt(now_))
            runCycle(now_);
        while (now_ < cycle && pending_ > 0) {
            if (wheelCount_ == 0) {
                // Everything lives in the far heap: jump straight to
                // its top instead of walking empty buckets.
                if (heap_.empty() || heap_.front().when > cycle)
                    break;
                now_ = std::max(now_ + 1, heap_.front().when);
            } else {
                now_++;
            }
            if (dueAt(now_))
                runCycle(now_);
        }
        now_ = cycle;
    }

    /** Drop all pending events without running them (teardown). */
    void
    clear()
    {
        for (Bucket &b : wheel_) {
            while (b.head) {
                WheelNode *n = b.head;
                b.head = n->next;
                n->cb = Callback(); // release the closure
                freeNode(n);
            }
            b.tail = nullptr;
        }
        heap_.clear();
        wheelCount_ = 0;
        pending_ = 0;
    }

    bool empty() const { return pending_ == 0; }
    Cycle now() const { return now_; }
    size_t pending() const { return pending_; }

    /** nextDeadline() result when no event is pending. */
    static constexpr Cycle NEVER = ~static_cast<Cycle>(0);

    /**
     * Earliest cycle at which a pending event fires, or NEVER when the
     * queue is empty. Events already due (stragglers scheduled at
     * == now_ since the last runUntil) report now_ itself -- "not
     * quiescent" -- never a future cycle. Cost is one wheel scan capped
     * by the far heap's front, and it is only paid on cycles the run
     * loop has already found fully quiescent.
     */
    Cycle
    nextDeadline() const
    {
        if (pending_ == 0)
            return NEVER;
        if (dueAt(now_))
            return now_;
        // The heap front caps the scan: wheel entries all lie within
        // (now_, now_ + WHEEL_SPAN) here (schedule() bounds them below
        // now_ + WHEEL_SPAN and dueAt(now_) just cleared <= now_), so
        // the first nonempty bucket by offset is the earliest.
        Cycle best = heap_.empty() ? NEVER : heap_.front().when;
        if (wheelCount_ > 0) {
            for (uint32_t d = 1; d < WHEEL_SPAN; d++) {
                Cycle c = now_ + d;
                if (c >= best)
                    break;
                if (wheel_[c & (WHEEL_SPAN - 1)].head) {
                    best = c;
                    break;
                }
            }
        }
        return best;
    }

    /** Total callbacks run so far; delta across a runUntil tells the
     *  caller whether any event fired in that stretch. */
    uint64_t executed() const { return executed_; }

    /** Events that took the near-future (bucket array) path. */
    uint64_t nearScheduled() const { return nearScheduled_; }
    /** Events that fell back to the far-future heap. */
    uint64_t farScheduled() const { return farScheduled_; }

  private:
    struct WheelNode
    {
        uint64_t seq = 0;
        Callback cb;
        WheelNode *next = nullptr;
    };

    /** Intrusive FIFO list; append at tail, run from head. */
    struct Bucket
    {
        WheelNode *head = nullptr;
        WheelNode *tail = nullptr;
    };

    struct Event
    {
        Cycle when;
        uint64_t seq;
        Callback cb;
    };

    static constexpr size_t NODE_CHUNK = 1024;

    static bool
    laterThan(const Event &a, const Event &b)
    {
        return a.when != b.when ? a.when > b.when : a.seq > b.seq;
    }

    WheelNode *
    allocNode()
    {
        if (!freeNodes_) {
            // New slab: nodes are threaded onto the free list once and
            // recycled forever after. The number of slabs is set by the
            // peak count of pending events, so allocation stops for
            // good once the busiest phase has been seen.
            chunks_.push_back(std::make_unique<WheelNode[]>(NODE_CHUNK));
            WheelNode *slab = chunks_.back().get();
            for (size_t i = 0; i < NODE_CHUNK; i++) {
                slab[i].next = freeNodes_;
                freeNodes_ = &slab[i];
            }
        }
        WheelNode *n = freeNodes_;
        freeNodes_ = n->next;
        return n;
    }

    void
    freeNode(WheelNode *n)
    {
        n->next = freeNodes_;
        freeNodes_ = n;
    }

    /** Anything due at exactly cycle `c`? (runCycle on an empty due
     *  set is a no-op; skipping it keeps idle cycles cheap.) */
    bool
    dueAt(Cycle c) const
    {
        return wheel_[c & (WHEEL_SPAN - 1)].head != nullptr ||
               (!heap_.empty() && heap_.front().when <= c);
    }

    /**
     * Run every event due at cycle `c`, merging the wheel bucket (in
     * seq order by construction) with due heap events by seq.
     * Re-reading the bucket head each iteration keeps appends during a
     * callback safe: a same-cycle event lands at the tail and is
     * reached before the loop exits.
     */
    void
    runCycle(Cycle c)
    {
        Bucket &b = wheel_[c & (WHEEL_SPAN - 1)];
        while (true) {
            WheelNode *n = b.head;
            bool haveHeap = !heap_.empty() && heap_.front().when <= c;
            if (n && (!haveHeap || n->seq < heap_.front().seq)) {
                b.head = n->next;
                if (!b.head)
                    b.tail = nullptr;
                Callback cb = std::move(n->cb);
                freeNode(n); // safe: cb is moved out already
                wheelCount_--;
                pending_--;
                executed_++;
                cb();
            } else if (haveHeap) {
                std::pop_heap(heap_.begin(), heap_.end(), laterThan);
                Event ev = std::move(heap_.back());
                heap_.pop_back();
                pending_--;
                executed_++;
                ev.cb();
            } else {
                break;
            }
        }
    }

    std::array<Bucket, WHEEL_SPAN> wheel_;
    std::vector<Event> heap_; ///< min-heap on (when, seq) via laterThan
    std::vector<std::unique_ptr<WheelNode[]>> chunks_; ///< node slabs
    WheelNode *freeNodes_ = nullptr;
    size_t pending_ = 0;
    size_t wheelCount_ = 0;
    uint64_t seq_ = 0;
    Cycle now_ = 0;
    uint64_t nearScheduled_ = 0;
    uint64_t farScheduled_ = 0;
    uint64_t executed_ = 0;
};

} // namespace pipette

#endif // PIPETTE_SIM_EVENT_QUEUE_H
