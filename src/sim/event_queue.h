/**
 * @file
 * Global event queue used for memory-system completion callbacks. The
 * cores are cycle-driven; the event queue carries the asynchronous parts
 * (cache miss completions, DRAM responses, connector deliveries).
 */

#ifndef PIPETTE_SIM_EVENT_QUEUE_H
#define PIPETTE_SIM_EVENT_QUEUE_H

#include <functional>
#include <queue>
#include <vector>

#include "sim/logging.h"
#include "sim/types.h"

namespace pipette {

/** Min-heap of (cycle, insertion order) -> callback. */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Schedule cb to run at cycle `when` (must not be in the past). */
    void
    schedule(Cycle when, Callback cb)
    {
        panic_if(when < now_, "scheduling event in the past (", when,
                 " < ", now_, ")");
        heap_.push(Event{when, seq_++, std::move(cb)});
    }

    /** Run all events due at or before `cycle`, advancing time. */
    void
    runUntil(Cycle cycle)
    {
        now_ = cycle;
        while (!heap_.empty() && heap_.top().when <= cycle) {
            // Copy out before pop so the callback can schedule new events.
            Callback cb = std::move(const_cast<Event &>(heap_.top()).cb);
            heap_.pop();
            cb();
        }
    }

    bool empty() const { return heap_.empty(); }
    Cycle now() const { return now_; }
    size_t pending() const { return heap_.size(); }

  private:
    struct Event
    {
        Cycle when;
        uint64_t seq;
        Callback cb;

        bool
        operator>(const Event &o) const
        {
            return when != o.when ? when > o.when : seq > o.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
    uint64_t seq_ = 0;
    Cycle now_ = 0;
};

} // namespace pipette

#endif // PIPETTE_SIM_EVENT_QUEUE_H
