#include "sim/config.h"

#include <sstream>

namespace pipette {

std::string
SystemConfig::summary() const
{
    std::ostringstream oss;
    oss << numCores << " core(s), " << core.smtThreads << " SMT threads, "
        << core.issueWidth << "-wide OOO, ROB " << core.robEntries
        << ", IQ " << core.iqEntries << ", LQ/SQ " << core.lqEntries << "/"
        << core.sqEntries << ", PRF " << core.physRegs << "; Pipette "
        << (core.pipetteEnabled ? "on" : "off") << " (" << core.numQueues
        << " queues x " << core.queueCapacity << ", " << core.numRAs
        << " RAs); L1D " << mem.l1d.sizeBytes / 1024 << "KB, L2 "
        << mem.l2.sizeBytes / 1024 << "KB, L3 "
        << mem.l3.sizeBytes / 1024 << "KB, DRAM " << mem.dramLatency
        << "cy";
    return oss.str();
}

} // namespace pipette
