#include "sim/config.h"

#include <sstream>

#include "sim/hash.h"

namespace pipette {

std::string
SystemConfig::summary() const
{
    std::ostringstream oss;
    oss << numCores << " core(s), " << core.smtThreads << " SMT threads, "
        << core.issueWidth << "-wide OOO, ROB " << core.robEntries
        << ", IQ " << core.iqEntries << ", LQ/SQ " << core.lqEntries << "/"
        << core.sqEntries << ", PRF " << core.physRegs << "; Pipette "
        << (core.pipetteEnabled ? "on" : "off") << " (" << core.numQueues
        << " queues x " << core.queueCapacity << ", " << core.numRAs
        << " RAs); L1D " << mem.l1d.sizeBytes / 1024 << "KB, L2 "
        << mem.l2.sizeBytes / 1024 << "KB, L3 "
        << mem.l3.sizeBytes / 1024 << "KB, DRAM " << mem.dramLatency
        << "cy";
    return oss.str();
}

// Field-count tripwire for the fingerprint below: adding a field to
// any config struct changes its size and fails these asserts, forcing
// whoever adds it to decide whether the new field keys the sweep cache
// (hash it in configFingerprint) or is output-side only (document the
// exclusion), then update the expected size. Sizes are ABI-specific,
// so the check is scoped to the platform CI runs on.
#if defined(__x86_64__) && defined(__linux__)
static_assert(sizeof(CoreConfig) == 128,
              "CoreConfig changed: update configFingerprint, then this");
static_assert(sizeof(CacheConfig) == 16,
              "CacheConfig changed: update configFingerprint, then this");
static_assert(sizeof(MemConfig) == 80,
              "MemConfig changed: update configFingerprint, then this");
static_assert(sizeof(FaultInjection) == 40,
              "FaultInjection changed: update configFingerprint, then this");
static_assert(sizeof(GuardrailConfig) == 32,
              "GuardrailConfig changed: update configFingerprint, then this");
static_assert(sizeof(ObservabilityConfig) == 120,
              "ObservabilityConfig changed: update configFingerprint, "
              "then this");
static_assert(sizeof(SamplingConfig) == 32,
              "SamplingConfig changed: update configFingerprint, then this");
static_assert(sizeof(ResilienceConfig) == 104,
              "ResilienceConfig changed: update configFingerprint, "
              "then this");
static_assert(sizeof(SystemConfig) == 544,
              "SystemConfig changed: update configFingerprint, then this");
#endif

uint64_t
configFingerprint(const SystemConfig &cfg)
{
    Fnv1a h;
    h.pod(cfg.numCores);

    const CoreConfig &c = cfg.core;
    h.pod(c.smtThreads);
    h.pod(c.fetchWidth);
    h.pod(c.renameWidth);
    h.pod(c.issueWidth);
    h.pod(c.commitWidth);
    h.pod(c.frontendDelay);
    h.pod(c.robEntries);
    h.pod(c.iqEntries);
    h.pod(c.lqEntries);
    h.pod(c.sqEntries);
    h.pod(c.physRegs);
    h.pod(c.fetchBufferEntries);
    h.pod(c.storeBufferEntries);
    h.pod(c.mispredictPenalty);
    h.pod(c.numAlu);
    h.pod(c.numMul);
    h.pod(c.numDiv);
    h.pod(c.numMemPorts);
    h.pod(c.mulLatency);
    h.pod(c.divLatency);
    h.pod(c.gshareBits);
    h.pod(c.btbEntries);
    h.pod(c.pipetteEnabled);
    h.pod(c.numQueues);
    h.pod(c.queueCapacity);
    h.pod(c.maxQueueRegs);
    h.pod(c.numRAs);
    h.pod(c.raCompletionBuf);
    h.pod(c.dynInstPoolEntries);
    h.pod(c.checkpointArenaEntries);

    const MemConfig &m = cfg.mem;
    h.pod(m.lineBytes);
    for (const CacheConfig *cc : {&m.l1d, &m.l2, &m.l3}) {
        h.pod(cc->sizeBytes);
        h.pod(cc->ways);
        h.pod(cc->latency);
        h.pod(cc->mshrs);
    }
    h.pod(m.dramLatency);
    h.pod(m.dramCyclesPerReq);
    h.pod(m.dramChannels);
    h.pod(m.prefetcherEnabled);
    h.pod(m.pfStreams);
    h.pod(m.pfDegree);
    h.pod(m.coherencePenalty);

    h.pod(cfg.connectorLatency);
    h.pod(cfg.connectorBandwidth);
    h.pod(cfg.watchdogCycles);
    h.pod(cfg.maxCycles);
    // epochLength quantizes cross-core exchanges, so it changes
    // multicore simulated timing. coreJobs is byte-invisible by
    // construction (it only picks host worker counts), but it is
    // hashed anyway so a sweep cache row records exactly the config it
    // ran under -- the cost is a one-time cache invalidation, never a
    // stale hit.
    h.pod(cfg.coreJobs);
    h.pod(cfg.epochLength);
    // Cycle elision is byte-invisible by construction (the bit-identity
    // matrix in test_skip proves it), but hashed for the same reason as
    // coreJobs: a cache row records exactly the config it ran under.
    h.pod(cfg.cycleElision);

    // Guardrails perturb results when enabled (faults by design, the
    // oracle by stopping early on divergence), so they key the cache
    // too.
    const GuardrailConfig &g = cfg.guardrails;
    h.pod(g.lockstepOracle);
    h.pod(g.invariantChecks);
    h.pod(g.flightRecorderDepth);
    h.pod(static_cast<uint64_t>(g.faults.size()));
    for (const FaultInjection &f : g.faults) {
        h.pod(f.kind);
        h.pod(f.atCycle);
        h.pod(f.duration);
        h.pod(f.index);
        h.pod(f.core);
        h.pod(f.queue);
        h.pod(f.bit);
    }
    // Observability never perturbs simulated state, but sampling and
    // histograms add "obs." keys to the flattened stats map, so they
    // key the cache. The trace collectors and every output-side setting
    // (paths, trace window) are deliberately excluded: they only decide
    // what gets exported, and hashing them would spuriously invalidate
    // sweep caches between plain and traced runs of the same machine.
    const ObservabilityConfig &o = cfg.observability;
    h.pod(o.sampleInterval);
    h.pod(o.histograms);

    // Sampling replaces the exact whole-run cycle count with an
    // extrapolated one, and period/window/warmup all move the estimate,
    // so every field keys the cache. The host-side --jobs fan-out is
    // byte-invisible by construction (ordered collection) and has no
    // field here.
    const SamplingConfig &sp = cfg.sampling;
    h.pod(sp.period);
    h.pod(sp.window);
    h.pod(sp.warmup);
    h.pod(sp.maxCheckpoints);

    // Resilience: the window timeout and the fault-injection /
    // deterministic-interrupt knobs change which windows contribute to
    // the extrapolation (or whether the run completes at all), so they
    // key the cache. The checkpoint-out and resume paths are excluded:
    // resume identity is the fingerprint itself, and where a checkpoint
    // is written or read from never changes simulated results.
    const ResilienceConfig &rz = cfg.resilience;
    h.pod(rz.windowTimeoutMs);
    h.pod(rz.interruptAtCheckpoint);
    h.pod(rz.injectWindowFailures);
    h.pod(rz.injectWindowHangMs);
    h.pod(rz.faultWindow);
    return h.value();
}

} // namespace pipette
