/**
 * @file
 * Cooperative SIGINT/SIGTERM handling (DESIGN.md §12). The handler
 * only sets a lock-free flag; the run loops (System's cycle loop, the
 * epoch scheduler's edge, the sampling fast-forward at checkpoint
 * boundaries, the window fan-out between windows) poll it and drain at
 * the next consistent point -- emitting a final resumable checkpoint
 * and partial stats instead of dying mid-state. A second signal while
 * the first is still draining force-exits immediately with the
 * Interrupted exit code.
 *
 * Header-only on purpose: the flag is an inline atomic, so the core
 * run loop can poll it without linking pipette_resilience (which sits
 * above pipette_core in the layering).
 */

#ifndef PIPETTE_RESILIENCE_INTERRUPT_H
#define PIPETTE_RESILIENCE_INTERRUPT_H

#include <atomic>
#include <csignal>
#include <cstdlib>

#include "resilience/error.h"

namespace pipette::resilience {

namespace detail {
inline std::atomic<bool> g_interrupt{false};
} // namespace detail

/** Poll site for run loops (relaxed: a late observation only delays
 *  the drain by one poll interval). */
inline bool
interruptRequested()
{
    return detail::g_interrupt.load(std::memory_order_relaxed);
}

/** Set the flag programmatically (tests, deterministic drains). */
inline void
requestInterrupt()
{
    detail::g_interrupt.store(true, std::memory_order_relaxed);
}

/** Clear the flag (after a drain completed, or in test teardown). */
inline void
clearInterrupt()
{
    detail::g_interrupt.store(false, std::memory_order_relaxed);
}

namespace detail {
// Async-signal-safe: lock-free atomic ops and _Exit only.
inline void
signalHandler(int)
{
    if (g_interrupt.exchange(true, std::memory_order_relaxed))
        std::_Exit(exitCode(SimError::Interrupted)); // second signal
}
} // namespace detail

/** Route SIGINT/SIGTERM to the cooperative flag. */
inline void
installSignalHandlers()
{
    struct sigaction sa = {};
    sa.sa_handler = detail::signalHandler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0; // interrupt blocking syscalls: drain promptly
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
}

/** Restore default dispositions (test teardown). */
inline void
uninstallSignalHandlers()
{
    struct sigaction sa = {};
    sa.sa_handler = SIG_DFL;
    sigemptyset(&sa.sa_mask);
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
}

} // namespace pipette::resilience

#endif // PIPETTE_RESILIENCE_INTERRUPT_H
