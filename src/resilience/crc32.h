/**
 * @file
 * CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) used to guard
 * every durable artifact: each checkpoint section and the sweep CSV
 * cache carry a CRC so truncation and bit flips are detected instead
 * of parsed (DESIGN.md §12). Table-driven, byte at a time -- integrity
 * checking is nowhere near any hot path.
 */

#ifndef PIPETTE_RESILIENCE_CRC32_H
#define PIPETTE_RESILIENCE_CRC32_H

#include <array>
#include <cstddef>
#include <cstdint>

namespace pipette::resilience {

namespace detail {
inline const std::array<uint32_t, 256> &
crcTable()
{
    static const std::array<uint32_t, 256> table = [] {
        std::array<uint32_t, 256> t{};
        for (uint32_t i = 0; i < 256; i++) {
            uint32_t c = i;
            for (int k = 0; k < 8; k++)
                c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    return table;
}
} // namespace detail

/** Incremental CRC-32; feed bytes, read value() any time. */
class Crc32
{
  public:
    void
    update(const void *data, size_t n)
    {
        const uint8_t *p = static_cast<const uint8_t *>(data);
        const auto &t = detail::crcTable();
        uint32_t c = state_;
        for (size_t i = 0; i < n; i++)
            c = t[(c ^ p[i]) & 0xff] ^ (c >> 8);
        state_ = c;
    }

    uint32_t value() const { return state_ ^ 0xFFFFFFFFu; }

  private:
    uint32_t state_ = 0xFFFFFFFFu;
};

/** One-shot convenience. */
inline uint32_t
crc32(const void *data, size_t n)
{
    Crc32 c;
    c.update(data, n);
    return c.value();
}

} // namespace pipette::resilience

#endif // PIPETTE_RESILIENCE_CRC32_H
