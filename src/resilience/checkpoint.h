/**
 * @file
 * Durable on-disk sampling checkpoints (DESIGN.md §12).
 *
 * A checkpoint file captures everything a sampled run (src/sample/)
 * needs to continue after the process dies: the run's config
 * fingerprint and sampling parameters, every (ArchSnapshot, WarmState)
 * checkpoint taken so far, the copy-on-write journal's per-interval
 * page pre-images, and the live contents of every page the
 * fast-forward has dirtied (so the rebuilt workload memory can be
 * patched back to the boundary state). Files are written atomically
 * (tmp + rename) at sample-period boundaries, and every section
 * carries a CRC32 so truncation or bit flips load as
 * SimError::CheckpointCorrupt with a clean message -- never undefined
 * behaviour.
 *
 * Binary layout (version 1, little-endian):
 *
 *   magic "PIPCKPT1" (8 bytes) | version u32
 *   sections: id u32 | payloadLen u64 | crc32(payload) u32 | payload
 *     HEADER    fingerprint, sampling params, shape, FF progress
 *     CKPTS     every (ArchSnapshot, WarmState), oldest first
 *     JOURNAL   per interval: sorted (pn, mapped, page bytes)
 *     LIVEPAGES sorted (pn, page bytes) of the FF-dirtied set
 *     END       zero-length terminator
 */

#ifndef PIPETTE_RESILIENCE_CHECKPOINT_H
#define PIPETTE_RESILIENCE_CHECKPOINT_H

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "isa/arch_snapshot.h"
#include "resilience/error.h"
#include "sample/cow_journal.h"
#include "sample/warm_model.h"
#include "sim/config.h"

namespace pipette::resilience {

/** Fixed-size facts about the run the checkpoint belongs to. */
struct SampleCheckpointHeader
{
    /** configFingerprint of the run; resume refuses a mismatch. */
    uint64_t configFp = 0;
    uint64_t period = 0;
    uint64_t window = 0;
    uint64_t warmup = 0;
    uint64_t maxCheckpoints = 0;
    /** Machine shape, double-checked against the rebuilt spec. */
    uint32_t numThreads = 0;
    uint32_t numRas = 0;
    uint32_t numCores = 0;
    /** Fast-forward progress: false = resume continues the FF from the
     *  last checkpoint; true = FF finished, only windows remain. */
    bool ffDone = false;
    /** Interp::Status at FF end (meaningful iff ffDone). */
    uint8_t ffStatus = 0;
    /** The checkpoint cap tripped before this file was written. */
    bool truncated = false;
    uint64_t ffInstrs = 0;
    uint64_t ffRounds = 0;
};

/** One deserialized checkpoint. */
struct LoadedCheckpoint
{
    ArchSnapshot arch;
    sample::WarmState warm;
};

/** Everything loadSampleCheckpoint() produces. */
struct SampleCheckpointData
{
    SampleCheckpointHeader hdr;
    std::vector<LoadedCheckpoint> ckpts;
    std::vector<sample::CowJournal::PageMap> intervals;
    /** Live contents of every FF-dirtied page at the boundary. */
    std::vector<std::pair<uint64_t, std::unique_ptr<uint8_t[]>>>
        livePages;
};

/** Borrowed view of one in-memory checkpoint for serialization. */
struct CheckpointRef
{
    const ArchSnapshot *arch;
    const sample::WarmState *warm;
};

/**
 * Atomically write a checkpoint file (tmp + rename). The dirty-page
 * set is derived from the journal (union of all interval pre-images)
 * and read from `live`. Returns false with *err set on host I/O
 * failure -- the caller warns and keeps running (a failed save must
 * never kill the run it exists to protect).
 */
bool saveSampleCheckpoint(const std::string &path,
                          const SampleCheckpointHeader &hdr,
                          const std::vector<CheckpointRef> &ckpts,
                          const sample::CowJournal &journal,
                          const SimMemory &live, std::string *err);

/** Load outcome: None on success, else the class + a clean message. */
struct LoadStatus
{
    SimError error = SimError::None;
    std::string message;

    bool ok() const { return error == SimError::None; }
};

/**
 * Load and fully validate a checkpoint file. Classifications:
 * HostResource (unreadable file), CheckpointCorrupt (bad magic /
 * version / CRC / truncated or malformed payload), ConfigError (the
 * file's fingerprint or machine shape does not match `cfg`). Every
 * read is bounds-checked; corrupt input can never index out of range.
 */
LoadStatus loadSampleCheckpoint(const std::string &path,
                                const SystemConfig &cfg,
                                SampleCheckpointData *out);

} // namespace pipette::resilience

#endif // PIPETTE_RESILIENCE_CHECKPOINT_H
