/**
 * @file
 * Structured error taxonomy for host-level fault tolerance
 * (DESIGN.md §12). Every way a run can fail is classified into one of
 * a small set of SimError classes, each mapped to a distinct process
 * exit code, so scripts and CI can tell a corrupt checkpoint from an
 * out-of-budget worker without parsing stderr.
 *
 * The taxonomy rides on SimException, which recoverable layers
 * (Runner, SimJobPool workers, the sampling window fan-out) catch and
 * convert into a structured result instead of letting it kill the
 * process. panic() stays an abort: it flags simulator bugs where the
 * process state itself is suspect.
 */

#ifndef PIPETTE_RESILIENCE_ERROR_H
#define PIPETTE_RESILIENCE_ERROR_H

#include <cstdint>
#include <stdexcept>
#include <string>

namespace pipette::resilience {

/** Failure classes, coarsest useful grain (each gets an exit code). */
enum class SimError : uint8_t
{
    None = 0,          ///< no error
    ConfigError,       ///< bad configuration / flag combination
    InputError,        ///< bad or unverifiable workload input
    CheckpointCorrupt, ///< checkpoint/cache file failed validation
    HostResource,      ///< host-side I/O or resource failure
    WorkerFault,       ///< a window/sweep worker failed or timed out
    InternalInvariant, ///< guardrail stop (divergence, invariant, wedge)
    Interrupted,       ///< cooperative SIGINT/SIGTERM drain
};

inline const char *
simErrorName(SimError e)
{
    switch (e) {
      case SimError::None: return "none";
      case SimError::ConfigError: return "config-error";
      case SimError::InputError: return "input-error";
      case SimError::CheckpointCorrupt: return "checkpoint-corrupt";
      case SimError::HostResource: return "host-resource";
      case SimError::WorkerFault: return "worker-fault";
      case SimError::InternalInvariant: return "internal-invariant";
      case SimError::Interrupted: return "interrupted";
    }
    return "unknown";
}

/**
 * Process exit code per class (DESIGN.md §12 table). 1 is left to
 * generic "run did not pass" failures (verification mismatches, bench
 * gates), 2 matches the strict flag-parsing convention already used by
 * the bench binaries, and 130 is the shell convention for SIGINT.
 */
inline int
exitCode(SimError e)
{
    switch (e) {
      case SimError::None: return 0;
      case SimError::ConfigError: return 2;
      case SimError::InputError: return 3;
      case SimError::CheckpointCorrupt: return 4;
      case SimError::HostResource: return 5;
      case SimError::WorkerFault: return 6;
      case SimError::InternalInvariant: return 7;
      case SimError::Interrupted: return 130;
    }
    return 1;
}

/** A classified, catchable failure (what fatal() raises when scoped). */
class SimException : public std::runtime_error
{
  public:
    SimException(SimError e, const std::string &msg)
        : std::runtime_error(msg), error_(e)
    {
    }

    SimError error() const { return error_; }

  private:
    SimError error_;
};

} // namespace pipette::resilience

#endif // PIPETTE_RESILIENCE_ERROR_H
