#include "resilience/checkpoint.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "resilience/crc32.h"

namespace pipette::resilience {

namespace {

constexpr char kMagic[8] = {'P', 'I', 'P', 'C', 'K', 'P', 'T', '1'};
constexpr uint32_t kVersion = 1;

enum SectionId : uint32_t
{
    SEC_HEADER = 1,
    SEC_CKPTS = 2,
    SEC_JOURNAL = 3,
    SEC_LIVEPAGES = 4,
    SEC_END = 5,
};

// ---------------------------------------------------------------------
// Little-endian byte sink/cursor. Serialization goes field by field --
// never through struct memory -- so padding bytes and host struct
// layout can't leak into (or be corrupted by) the file format.

struct ByteSink
{
    std::vector<uint8_t> buf;

    void
    u8(uint8_t v)
    {
        buf.push_back(v);
    }
    void
    u32(uint32_t v)
    {
        for (int i = 0; i < 4; i++)
            buf.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
    void
    u64(uint64_t v)
    {
        for (int i = 0; i < 8; i++)
            buf.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
    void
    bytes(const void *p, size_t n)
    {
        const uint8_t *b = static_cast<const uint8_t *>(p);
        buf.insert(buf.end(), b, b + n);
    }
};

/** Bounds-checked reader: any overrun latches fail and yields zeros,
 *  so corrupt payloads parse to garbage values, never to UB. */
struct Cursor
{
    const uint8_t *p;
    size_t n;
    size_t off = 0;
    bool fail = false;

    bool
    need(size_t k)
    {
        if (fail || n - off < k) {
            fail = true;
            return false;
        }
        return true;
    }
    uint8_t
    u8()
    {
        if (!need(1))
            return 0;
        return p[off++];
    }
    uint32_t
    u32()
    {
        if (!need(4))
            return 0;
        uint32_t v = 0;
        for (int i = 0; i < 4; i++)
            v |= static_cast<uint32_t>(p[off++]) << (8 * i);
        return v;
    }
    uint64_t
    u64()
    {
        if (!need(8))
            return 0;
        uint64_t v = 0;
        for (int i = 0; i < 8; i++)
            v |= static_cast<uint64_t>(p[off++]) << (8 * i);
        return v;
    }
    bool
    bytes(void *dst, size_t k)
    {
        if (!need(k))
            return false;
        std::memcpy(dst, p + off, k);
        off += k;
        return true;
    }
    size_t remaining() const { return fail ? 0 : n - off; }
};

// --------------------------------------------------------------- write

void
putHeader(ByteSink &s, const SampleCheckpointHeader &h)
{
    s.u64(h.configFp);
    s.u64(h.period);
    s.u64(h.window);
    s.u64(h.warmup);
    s.u64(h.maxCheckpoints);
    s.u32(h.numThreads);
    s.u32(h.numRas);
    s.u32(h.numCores);
    s.u8(h.ffDone ? 1 : 0);
    s.u8(h.ffStatus);
    s.u8(h.truncated ? 1 : 0);
    s.u64(h.ffInstrs);
    s.u64(h.ffRounds);
}

void
putArch(ByteSink &s, const ArchSnapshot &a)
{
    s.u32(static_cast<uint32_t>(a.threads.size()));
    for (const ArchSnapshot::Thread &t : a.threads) {
        s.u64(t.pc);
        s.u8(t.halted ? 1 : 0);
        s.u64(t.instrs);
        for (uint64_t r : t.regs)
            s.u64(r);
    }
    s.u32(static_cast<uint32_t>(a.queues.size()));
    for (const ArchSnapshot::Queue &q : a.queues) {
        s.u32(q.core);
        s.u32(q.id);
        s.u8(q.skipArmed ? 1 : 0);
        s.u32(static_cast<uint32_t>(q.entries.size()));
        for (const auto &e : q.entries) {
            s.u64(e.first);
            s.u8(e.second ? 1 : 0);
        }
    }
    s.u32(static_cast<uint32_t>(a.ras.size()));
    for (const ArchSnapshot::Ra &r : a.ras) {
        s.u8(static_cast<uint8_t>((r.scanning ? 1 : 0) |
                                  (r.haveStart ? 2 : 0)));
        s.u64(r.start);
        s.u64(r.cur);
        s.u64(r.end);
    }
    s.u64(a.totalInstrs);
}

void
putCacheArray(ByteSink &s, const CacheArray &c)
{
    s.u64(c.rawTick());
    const std::vector<CacheArray::Line> &lines = c.rawLines();
    s.u32(static_cast<uint32_t>(lines.size()));
    for (const CacheArray::Line &l : lines) {
        s.u64(l.tag);
        s.u8(static_cast<uint8_t>((l.valid ? 1 : 0) | (l.dirty ? 2 : 0) |
                                  (l.prefetched ? 4 : 0) |
                                  (l.ownerValid ? 8 : 0)));
        s.u32(l.sharers);
        s.u32(l.owner);
        s.u64(l.lruTick);
    }
}

void
putWarm(ByteSink &s, const sample::WarmState &w)
{
    s.u32(static_cast<uint32_t>(w.l1.size()));
    for (size_t c = 0; c < w.l1.size(); c++) {
        putCacheArray(s, w.l1[c]);
        putCacheArray(s, w.l2[c]);
    }
    putCacheArray(s, w.l3);
    s.u32(static_cast<uint32_t>(w.bpred.size()));
    for (const BranchPredictor &bp : w.bpred) {
        const auto &pht = bp.rawPht();
        s.u32(static_cast<uint32_t>(pht.size()));
        s.bytes(pht.data(), pht.size());
        const auto &btb = bp.rawBtb();
        s.u32(static_cast<uint32_t>(btb.size()));
        for (const BranchPredictor::BtbEntry &e : btb) {
            s.u64(e.pc);
            s.u64(e.target);
            s.u32(e.tid);
        }
        const auto &hist = bp.rawHist();
        s.u32(static_cast<uint32_t>(hist.size()));
        for (uint64_t h : hist)
            s.u64(h);
    }
    s.u32(static_cast<uint32_t>(w.pf.size()));
    for (const StreamPrefetcher::State &st : w.pf) {
        s.u64(st.tick);
        s.u32(static_cast<uint32_t>(st.streams.size()));
        for (const StreamPrefetcher::Stream &m : st.streams) {
            s.u64(m.lastLine);
            s.u64(static_cast<uint64_t>(m.stride));
            s.u32(m.confidence);
            s.u64(m.lruTick);
            s.u8(m.valid ? 1 : 0);
        }
    }
}

/** Page maps iterate in hash order; emit sorted so files from the same
 *  state are byte-identical (determinism contract, DESIGN.md §12). */
std::vector<uint64_t>
sortedPns(const sample::CowJournal::PageMap &m)
{
    std::vector<uint64_t> pns;
    pns.reserve(m.size());
    for (const auto &kv : m)
        pns.push_back(kv.first);
    std::sort(pns.begin(), pns.end());
    return pns;
}

void
putSection(FILE *f, uint32_t id, const ByteSink &s, bool *ok)
{
    ByteSink hd;
    hd.u32(id);
    hd.u64(s.buf.size());
    hd.u32(crc32(s.buf.data(), s.buf.size()));
    if (std::fwrite(hd.buf.data(), 1, hd.buf.size(), f) != hd.buf.size())
        *ok = false;
    if (!s.buf.empty() &&
        std::fwrite(s.buf.data(), 1, s.buf.size(), f) != s.buf.size())
        *ok = false;
}

// ---------------------------------------------------------------- read

bool
getArch(Cursor &c, ArchSnapshot *a)
{
    uint32_t nThreads = c.u32();
    if (nThreads > c.remaining() / (8 + 1 + 8))
        return false;
    for (uint32_t i = 0; i < nThreads; i++) {
        ArchSnapshot::Thread t;
        t.pc = c.u64();
        t.halted = c.u8() != 0;
        t.instrs = c.u64();
        for (size_t r = 0; r < t.regs.size(); r++)
            t.regs[r] = c.u64();
        a->threads.push_back(t);
    }
    uint32_t nQueues = c.u32();
    if (nQueues > c.remaining() / (4 + 4 + 1 + 4))
        return false;
    for (uint32_t i = 0; i < nQueues; i++) {
        ArchSnapshot::Queue q;
        q.core = static_cast<CoreId>(c.u32());
        q.id = static_cast<QueueId>(c.u32());
        q.skipArmed = c.u8() != 0;
        uint32_t nEntries = c.u32();
        if (nEntries > c.remaining() / (8 + 1))
            return false;
        q.entries.reserve(nEntries);
        for (uint32_t e = 0; e < nEntries; e++) {
            uint64_t v = c.u64();
            bool ctrl = c.u8() != 0;
            q.entries.emplace_back(v, ctrl);
        }
        a->queues.push_back(std::move(q));
    }
    uint32_t nRas = c.u32();
    if (nRas > c.remaining() / (1 + 8 + 8 + 8))
        return false;
    for (uint32_t i = 0; i < nRas; i++) {
        ArchSnapshot::Ra r;
        uint8_t flags = c.u8();
        r.scanning = (flags & 1) != 0;
        r.haveStart = (flags & 2) != 0;
        r.start = c.u64();
        r.cur = c.u64();
        r.end = c.u64();
        a->ras.push_back(r);
    }
    a->totalInstrs = c.u64();
    return !c.fail;
}

bool
getCacheArray(Cursor &c, CacheArray *dst)
{
    uint64_t tick = c.u64();
    uint32_t nLines = c.u32();
    if (nLines != dst->rawLines().size())
        return false;
    if (nLines > c.remaining() / (8 + 1 + 4 + 4 + 8))
        return false;
    std::vector<CacheArray::Line> lines;
    lines.reserve(nLines);
    for (uint32_t i = 0; i < nLines; i++) {
        CacheArray::Line l;
        l.tag = c.u64();
        uint8_t flags = c.u8();
        l.valid = (flags & 1) != 0;
        l.dirty = (flags & 2) != 0;
        l.prefetched = (flags & 4) != 0;
        l.ownerValid = (flags & 8) != 0;
        l.sharers = c.u32();
        l.owner = c.u32();
        l.lruTick = c.u64();
        lines.push_back(l);
    }
    if (c.fail)
        return false;
    dst->restoreRaw(std::move(lines), tick);
    return true;
}

/** Empty WarmState with the geometry `cfg` dictates (mirrors the
 *  WarmModel constructor; restore then fills the arrays in place). */
sample::WarmState
makeWarmShape(const SystemConfig &cfg)
{
    uint32_t cores = cfg.numCores ? cfg.numCores : 1;
    sample::WarmState w{{},
                        {},
                        CacheArray(cfg.mem.l3, cfg.mem.lineBytes, "warmL3"),
                        {},
                        {}};
    for (uint32_t c = 0; c < cores; c++) {
        w.l1.emplace_back(cfg.mem.l1d, cfg.mem.lineBytes, "warmL1");
        w.l2.emplace_back(cfg.mem.l2, cfg.mem.lineBytes, "warmL2");
        w.bpred.emplace_back(cfg.core, cfg.core.smtThreads);
        w.pf.emplace_back();
        w.pf.back().streams.resize(cfg.mem.pfStreams);
    }
    return w;
}

bool
getWarm(Cursor &c, const SystemConfig &cfg, sample::WarmState *w)
{
    uint32_t cores = c.u32();
    if (cores != w->l1.size())
        return false;
    for (uint32_t i = 0; i < cores; i++) {
        if (!getCacheArray(c, &w->l1[i]) || !getCacheArray(c, &w->l2[i]))
            return false;
    }
    if (!getCacheArray(c, &w->l3))
        return false;

    uint32_t nBpred = c.u32();
    if (nBpred != w->bpred.size())
        return false;
    for (uint32_t i = 0; i < nBpred; i++) {
        BranchPredictor &bp = w->bpred[i];
        uint32_t phtSize = c.u32();
        if (phtSize != bp.rawPht().size() || phtSize > c.remaining())
            return false;
        std::vector<uint8_t> pht(phtSize);
        if (!c.bytes(pht.data(), phtSize))
            return false;
        uint32_t btbSize = c.u32();
        if (btbSize != bp.rawBtb().size() ||
            btbSize > c.remaining() / (8 + 8 + 4))
            return false;
        std::vector<BranchPredictor::BtbEntry> btb(btbSize);
        for (uint32_t e = 0; e < btbSize; e++) {
            btb[e].pc = c.u64();
            btb[e].target = c.u64();
            btb[e].tid = static_cast<ThreadId>(c.u32());
        }
        uint32_t histSize = c.u32();
        if (histSize != bp.rawHist().size() ||
            histSize > c.remaining() / 8)
            return false;
        std::vector<uint64_t> hist(histSize);
        for (uint32_t e = 0; e < histSize; e++)
            hist[e] = c.u64();
        if (c.fail)
            return false;
        bp.restoreRaw(std::move(pht), std::move(btb), std::move(hist));
    }

    uint32_t nPf = c.u32();
    if (nPf != w->pf.size())
        return false;
    for (uint32_t i = 0; i < nPf; i++) {
        StreamPrefetcher::State &st = w->pf[i];
        st.tick = c.u64();
        uint32_t nStreams = c.u32();
        if (nStreams != cfg.mem.pfStreams ||
            nStreams > c.remaining() / (8 + 8 + 4 + 8 + 1))
            return false;
        st.streams.assign(nStreams, StreamPrefetcher::Stream{});
        for (uint32_t m = 0; m < nStreams; m++) {
            StreamPrefetcher::Stream &sm = st.streams[m];
            sm.lastLine = c.u64();
            sm.stride = static_cast<int64_t>(c.u64());
            sm.confidence = c.u32();
            sm.lruTick = c.u64();
            sm.valid = c.u8() != 0;
        }
    }
    return !c.fail;
}

bool
getPageMap(Cursor &c, sample::CowJournal::PageMap *m)
{
    uint64_t nPages = c.u64();
    if (nPages > c.remaining() / (8 + 1))
        return false;
    for (uint64_t i = 0; i < nPages; i++) {
        uint64_t pn = c.u64();
        bool mapped = c.u8() != 0;
        if (!mapped) {
            m->emplace(pn, nullptr);
            continue;
        }
        auto page = std::make_unique<uint8_t[]>(SimMemory::PAGE_SIZE);
        if (!c.bytes(page.get(), SimMemory::PAGE_SIZE))
            return false;
        m->emplace(pn, std::move(page));
    }
    return !c.fail;
}

} // namespace

bool
saveSampleCheckpoint(const std::string &path,
                     const SampleCheckpointHeader &hdr,
                     const std::vector<CheckpointRef> &ckpts,
                     const sample::CowJournal &journal,
                     const SimMemory &live, std::string *err)
{
    std::string tmp = path + ".tmp";
    FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f) {
        if (err)
            *err = "cannot open " + tmp + " for writing";
        return false;
    }
    bool ok = true;
    if (std::fwrite(kMagic, 1, sizeof(kMagic), f) != sizeof(kMagic))
        ok = false;
    {
        ByteSink v;
        v.u32(kVersion);
        if (std::fwrite(v.buf.data(), 1, v.buf.size(), f) != v.buf.size())
            ok = false;
    }

    {
        ByteSink s;
        putHeader(s, hdr);
        putSection(f, SEC_HEADER, s, &ok);
    }
    {
        ByteSink s;
        s.u32(static_cast<uint32_t>(ckpts.size()));
        for (const CheckpointRef &ck : ckpts) {
            putArch(s, *ck.arch);
            putWarm(s, *ck.warm);
        }
        putSection(f, SEC_CKPTS, s, &ok);
    }
    {
        ByteSink s;
        const auto &intervals = journal.intervalMaps();
        s.u32(static_cast<uint32_t>(intervals.size()));
        for (const sample::CowJournal::PageMap &m : intervals) {
            s.u64(m.size());
            for (uint64_t pn : sortedPns(m)) {
                const auto &page = m.at(pn);
                s.u64(pn);
                s.u8(page ? 1 : 0);
                if (page)
                    s.bytes(page.get(), SimMemory::PAGE_SIZE);
            }
        }
        putSection(f, SEC_JOURNAL, s, &ok);
    }
    {
        // The FF-dirtied set is the union of every interval's
        // pre-imaged pages: any page whose content diverged from the
        // deterministic workload rebuild was written at least once
        // after the first boundary, and the first write journaled it.
        sample::CowJournal::PageMap dirty;
        for (const sample::CowJournal::PageMap &m : journal.intervalMaps())
            for (const auto &kv : m)
                dirty.try_emplace(kv.first, nullptr);
        ByteSink s;
        s.u64(dirty.size());
        for (uint64_t pn : sortedPns(dirty)) {
            const uint8_t *page = live.peekPage(pn);
            s.u64(pn);
            s.u8(page ? 1 : 0);
            if (page)
                s.bytes(page, SimMemory::PAGE_SIZE);
        }
        putSection(f, SEC_LIVEPAGES, s, &ok);
    }
    putSection(f, SEC_END, ByteSink{}, &ok);

    if (std::fflush(f) != 0)
        ok = false;
    if (std::fclose(f) != 0)
        ok = false;
    if (ok && std::rename(tmp.c_str(), path.c_str()) != 0)
        ok = false;
    if (!ok) {
        std::remove(tmp.c_str());
        if (err)
            *err = "I/O error writing " + tmp;
    }
    return ok;
}

LoadStatus
loadSampleCheckpoint(const std::string &path, const SystemConfig &cfg,
                     SampleCheckpointData *out)
{
    auto corrupt = [&path](const std::string &what) {
        return LoadStatus{SimError::CheckpointCorrupt,
                          "checkpoint " + path + ": " + what};
    };

    FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return {SimError::HostResource,
                "cannot open checkpoint " + path + " for reading"};
    std::vector<uint8_t> file;
    {
        uint8_t buf[1 << 16];
        size_t n;
        while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
            file.insert(file.end(), buf, buf + n);
        bool readErr = std::ferror(f) != 0;
        std::fclose(f);
        if (readErr)
            return {SimError::HostResource,
                    "I/O error reading checkpoint " + path};
    }

    Cursor top{file.data(), file.size()};
    char magic[8];
    if (!top.bytes(magic, sizeof(magic)) ||
        std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        return corrupt("bad magic (not a pipette checkpoint)");
    uint32_t version = top.u32();
    if (top.fail || version != kVersion)
        return corrupt("unsupported version " + std::to_string(version));

    bool sawHeader = false, sawCkpts = false, sawJournal = false,
         sawLive = false, sawEnd = false;
    while (!sawEnd) {
        uint32_t id = top.u32();
        uint64_t len = top.u64();
        uint32_t crc = top.u32();
        if (top.fail || len > top.remaining())
            return corrupt("truncated section table");
        const uint8_t *payload = file.data() + top.off;
        if (crc32(payload, static_cast<size_t>(len)) != crc)
            return corrupt("section " + std::to_string(id) +
                           " CRC mismatch (truncated or corrupt file)");
        Cursor c{payload, static_cast<size_t>(len)};
        top.off += static_cast<size_t>(len);

        switch (id) {
          case SEC_HEADER: {
            SampleCheckpointHeader &h = out->hdr;
            h.configFp = c.u64();
            h.period = c.u64();
            h.window = c.u64();
            h.warmup = c.u64();
            h.maxCheckpoints = c.u64();
            h.numThreads = c.u32();
            h.numRas = c.u32();
            h.numCores = c.u32();
            h.ffDone = c.u8() != 0;
            h.ffStatus = c.u8();
            h.truncated = c.u8() != 0;
            h.ffInstrs = c.u64();
            h.ffRounds = c.u64();
            if (c.fail)
                return corrupt("truncated header section");
            if (h.configFp != configFingerprint(cfg)) {
                return {SimError::ConfigError,
                        "checkpoint " + path +
                            " was taken under a different configuration "
                            "(fingerprint mismatch); resume with the "
                            "original flags"};
            }
            sawHeader = true;
            break;
          }
          case SEC_CKPTS: {
            if (!sawHeader)
                return corrupt("checkpoint section before header");
            uint32_t n = c.u32();
            if (n > c.remaining() / 4)
                return corrupt("implausible checkpoint count");
            for (uint32_t i = 0; i < n; i++) {
                LoadedCheckpoint ck{ArchSnapshot{}, makeWarmShape(cfg)};
                if (!getArch(c, &ck.arch) || !getWarm(c, cfg, &ck.warm))
                    return corrupt("malformed checkpoint " +
                                   std::to_string(i));
                out->ckpts.push_back(std::move(ck));
            }
            sawCkpts = true;
            break;
          }
          case SEC_JOURNAL: {
            uint32_t n = c.u32();
            if (n > c.remaining() / 8)
                return corrupt("implausible journal interval count");
            for (uint32_t i = 0; i < n; i++) {
                sample::CowJournal::PageMap m;
                if (!getPageMap(c, &m))
                    return corrupt("malformed journal interval " +
                                   std::to_string(i));
                out->intervals.push_back(std::move(m));
            }
            sawJournal = true;
            break;
          }
          case SEC_LIVEPAGES: {
            sample::CowJournal::PageMap m;
            if (!getPageMap(c, &m))
                return corrupt("malformed live-page section");
            for (auto &kv : m) {
                if (kv.second)
                    out->livePages.emplace_back(kv.first,
                                                std::move(kv.second));
            }
            std::sort(out->livePages.begin(), out->livePages.end(),
                      [](const auto &a, const auto &b) {
                          return a.first < b.first;
                      });
            sawLive = true;
            break;
          }
          case SEC_END:
            sawEnd = true;
            break;
          default:
            return corrupt("unknown section id " + std::to_string(id));
        }
    }
    if (!sawHeader || !sawCkpts || !sawJournal || !sawLive)
        return corrupt("missing section (truncated file)");

    // Structural cross-checks the per-section parses can't see.
    const SampleCheckpointHeader &h = out->hdr;
    if (out->ckpts.empty())
        return corrupt("no checkpoints in file");
    // Mid-FF files are written after checkpoint k is captured but
    // before interval k opens; FF-done files have one (possibly still
    // filling) interval per checkpoint.
    if (!h.ffDone && out->intervals.size() + 1 != out->ckpts.size())
        return corrupt("interval/checkpoint count mismatch");
    if (h.ffDone && out->intervals.size() != out->ckpts.size())
        return corrupt("interval/checkpoint count mismatch");
    for (const LoadedCheckpoint &ck : out->ckpts) {
        if (ck.arch.threads.size() != h.numThreads ||
            ck.arch.ras.size() != h.numRas)
            return corrupt("checkpoint shape disagrees with header");
    }
    return {};
}

} // namespace pipette::resilience
