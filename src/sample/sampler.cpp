#include "sample/sampler.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "hostprof/hostprof.h"
#include "parallel/task_pool.h"
#include "resilience/checkpoint.h"
#include "resilience/interrupt.h"
#include "sample/cow_journal.h"
#include "sample/warm_model.h"
#include "sim/logging.h"

namespace pipette::sample {

namespace {

/**
 * Warming horizon (instructions): the microarchitectural state a
 * window inherits only depends on the recent access history -- caches,
 * branch predictors, and prefetch streams forget anything older than
 * their own capacity. With periods longer than this horizon the warm
 * hooks stay detached until the fast-forward is within the horizon of
 * the next checkpoint, so most of the period runs at bare-interpreter
 * speed. Periods at or below the horizon (every tier-1 accuracy-gate
 * operating point) warm continuously and are byte-identical to the
 * pre-horizon behaviour. 250k instructions touch lines worth many
 * times the 512 KB L3 (the largest warmed structure, 8k lines), so the
 * horizon refills every level from scratch several times over.
 */
constexpr uint64_t kWarmHorizon = 250'000;

struct Checkpoint
{
    ArchSnapshot arch;
    WarmState warm;
};

struct WindowMeasure
{
    bool ok = false;
    uint64_t cycles = 0;
    uint64_t instrs = 0;
};

/**
 * Queue-occupancy budget for the fast-forward: checkpoint restore
 * backs every committed queue entry with a freshly allocated physical
 * register, so total occupancy must leave the PRF room for the pinned
 * architectural registers plus a rename burst. Functional results are
 * capacity-independent for race-free programs; only the interpreter's
 * blocking schedule shifts.
 */
uint32_t
queueRegBudget(const CoreConfig &c)
{
    uint32_t pinned = NUM_ARCH_REGS * c.smtThreads;
    uint32_t rename = 2 * c.renameWidth;
    uint32_t slack =
        c.physRegs > pinned + rename ? c.physRegs - pinned - rename : 4;
    return std::min(c.maxQueueRegs, slack);
}

/** Strip everything that must not run inside a measurement window. */
SystemConfig
windowConfig(const SystemConfig &cfg)
{
    SystemConfig w = cfg;
    w.sampling = SamplingConfig{};
    w.guardrails = GuardrailConfig{};
    w.observability = ObservabilityConfig{};
    // Fault injection / checkpointing acts at the sampler level; the
    // nested window System must never re-enter it.
    w.resilience = ResilienceConfig{};
    w.core.traceFile = nullptr;
    // Window-level parallelism comes from the window fan-out itself;
    // nesting the per-core pool inside it would oversubscribe the host.
    w.coreJobs = 1;
    return w;
}

/**
 * Run one detailed window from checkpoint k. A fresh System resolves
 * memory through the journal, takes the architectural snapshot and the
 * warmed microarchitectural state, then executes in chunks until it
 * passes warmup + window retired instructions (or stops early at
 * program end). Measured cycles/instructions are taken at chunk
 * boundaries, so the chunk size is part of the (deterministic) regime.
 *
 * Host-fault tolerance (`rz`, `attempt`): when a wall-clock timeout is
 * configured the deadline is checked at chunk boundaries and tripping
 * it throws SimError::WorkerFault; the test-only injection knobs make
 * targeted attempts throw or stall so the retry/exclusion machinery is
 * exercisable deterministically. Either way the caller retries once
 * and excludes the window on a second failure.
 */
WindowMeasure
runWindow(const SystemConfig &wCfg, const MachineSpec &spec,
          const CowJournal &journal, size_t k, const Checkpoint &ckpt,
          uint64_t warmup, uint64_t window, const ResilienceConfig &rz,
          unsigned attempt)
{
    using hostclock = std::chrono::steady_clock;
    const bool targeted =
        rz.faultInjectionEnabled() && k == rz.faultWindow;
    if (targeted && attempt < rz.injectWindowFailures) {
        throw resilience::SimException(
            resilience::SimError::WorkerFault,
            "injected window failure (test hook)");
    }
    const bool timed = rz.windowTimeoutMs > 0;
    hostclock::time_point deadline{};
    if (timed) {
        deadline = hostclock::now() +
                   std::chrono::milliseconds(rz.windowTimeoutMs);
    }
    if (targeted && rz.injectWindowHangMs) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(rz.injectWindowHangMs));
    }

    WindowSource src(&journal, k);
    System sys(wCfg);
    sys.memory().setPageSource(&src);
    sys.configure(spec);
    sys.restoreArchState(ckpt.arch);
    for (uint32_t c = 0; c < sys.numCores(); c++) {
        sys.hierarchy().l1Array(c) = ckpt.warm.l1[c];
        sys.hierarchy().l2Array(c) = ckpt.warm.l2[c];
        sys.core(c).bpred() = ckpt.warm.bpred[c];
        if (StreamPrefetcher *pf = sys.hierarchy().prefetcherFor(c))
            pf->restore(ckpt.warm.pf[c]);
    }
    sys.hierarchy().l3Array() = ckpt.warm.l3;

    uint64_t target0 = warmup;
    uint64_t target1 = warmup + window;
    Cycle chunk = std::max<Cycle>(
        256, std::min<Cycle>(2048, (target1 ? target1 : 1) / 8));

    WindowMeasure m;
    bool past0 = false;
    uint64_t c0 = 0, i0 = 0;
    while (true) {
        // Checked before (not after) each chunk so a window that just
        // produced its measurement is never discarded by the deadline.
        if (timed && hostclock::now() > deadline) {
            throw resilience::SimException(
                resilience::SimError::WorkerFault,
                detail::format("window exceeded --window-timeout-ms=",
                               rz.windowTimeoutMs));
        }
        System::RunResult r = sys.runFor(chunk);
        if (!past0 && r.instrs >= target0) {
            past0 = true;
            c0 = r.cycles;
            i0 = r.instrs;
        }
        if (past0 && r.instrs >= target1 && r.instrs > i0) {
            m.ok = true;
            m.cycles = r.cycles - c0;
            m.instrs = r.instrs - i0;
            return m;
        }
        if (r.stopReason != System::StopReason::None) {
            // Program end (or an abnormal stop) inside the window:
            // keep the partial measurement when anything committed
            // past the warmup.
            if (past0 && r.instrs > i0 &&
                r.stopReason == System::StopReason::Finished) {
                m.ok = true;
                m.cycles = r.cycles - c0;
                m.instrs = r.instrs - i0;
            }
            return m;
        }
    }
}

} // namespace

SampleReport
runSampled(const SystemConfig &cfg, WorkloadBase &wl, Variant v,
           unsigned jobs)
{
    panic_if(!cfg.sampling.enabled(),
             "runSampled with sampling.period == 0");
    fatal_if(cfg.sampling.maxCheckpoints == 0,
             "sampling.maxCheckpoints must be >= 1");
    auto t0 = std::chrono::steady_clock::now();
    const uint64_t period = cfg.sampling.period;
    const uint64_t window = cfg.sampling.window;
    const uint64_t warmup = cfg.sampling.warmup;
    const ResilienceConfig &rz = cfg.resilience;

    SampleReport rep;
    auto lap = [&t0] {
        auto now = std::chrono::steady_clock::now();
        double d = std::chrono::duration<double>(now - t0).count();
        return d;
    };

    // --- Build once; the spec and programs are shared by every window.
    System buildSys(cfg);
    BuildContext ctx(&buildSys);
    {
        hostprof::ScopedPhase hp(hostprof::Phase::Build);
        wl.build(ctx, v);
    }
    rep.buildSeconds = lap();

    // --- Fast-forward with warming + journaling + checkpoints.
    Interp interp(ctx.spec, &buildSys.memory(), cfg.core.queueCapacity);
    interp.clampQueueCaps(queueRegBudget(cfg.core));
    WarmModel warm(cfg);
    CowJournal journal(&buildSys.memory());

    std::vector<Checkpoint> ckpts;
    Interp::Result ff{Interp::Status::Deadlock, 0, 0};
    bool ffSkipped = false;   // resume file had the FF already finished
    bool resumedMid = false;  // continue the FF from the last checkpoint
    bool selfInterrupted = false; // interrupt came from the test hook
    size_t startK = 0;

    // --- Resume: patch the freshly built run back to the boundary the
    // checkpoint file captured, then fall into the normal FF loop (or
    // straight to the windows). No measurement is ever persisted, so
    // every window reruns and the stat dump is byte-identical to an
    // uninterrupted run's.
    if (!rz.resumePath.empty()) {
        resilience::SampleCheckpointData loaded;
        resilience::LoadStatus st =
            resilience::loadSampleCheckpoint(rz.resumePath, cfg, &loaded);
        if (!st.ok()) {
            rep.error = st.error;
            rep.errorMsg = st.message;
            warn("sampling: resume from ", rz.resumePath,
                 " failed: ", st.message);
            return rep;
        }
        rep.resumed = true;
        rep.truncated = loaded.hdr.truncated;
        journal.restore(std::move(loaded.intervals));
        for (const auto &pg : loaded.livePages)
            buildSys.memory().installPage(pg.first, pg.second.get());
        ckpts.reserve(loaded.ckpts.size());
        for (resilience::LoadedCheckpoint &lc : loaded.ckpts)
            ckpts.push_back({std::move(lc.arch), std::move(lc.warm)});
        if (loaded.hdr.ffDone) {
            ffSkipped = true;
            ff = {static_cast<Interp::Status>(loaded.hdr.ffStatus),
                  loaded.hdr.ffInstrs, loaded.hdr.ffRounds};
        } else {
            interp.restore(ckpts.back().arch);
            warm.restore(ckpts.back().warm);
            startK = ckpts.size() - 1;
            resumedMid = true;
        }
    }

    const uint64_t configFp = configFingerprint(cfg);
    auto saveDurable = [&](bool ffDone) {
        if (rz.checkpointOutPath.empty() || ckpts.empty())
            return;
        hostprof::ScopedPhase hp(hostprof::Phase::CheckpointCapture);
        resilience::SampleCheckpointHeader hdr;
        hdr.configFp = configFp;
        hdr.period = period;
        hdr.window = window;
        hdr.warmup = warmup;
        hdr.maxCheckpoints = cfg.sampling.maxCheckpoints;
        hdr.numThreads =
            static_cast<uint32_t>(ckpts[0].arch.threads.size());
        hdr.numRas = static_cast<uint32_t>(ckpts[0].arch.ras.size());
        hdr.numCores = cfg.numCores;
        hdr.ffDone = ffDone;
        hdr.ffStatus = static_cast<uint8_t>(ff.status);
        hdr.truncated = rep.truncated;
        hdr.ffInstrs = ffDone ? ff.instrs : interp.totalInstrs();
        hdr.ffRounds = ff.rounds;
        std::vector<resilience::CheckpointRef> refs;
        refs.reserve(ckpts.size());
        for (const Checkpoint &c : ckpts)
            refs.push_back({&c.arch, &c.warm});
        std::string err;
        if (!resilience::saveSampleCheckpoint(rz.checkpointOutPath, hdr,
                                              refs, journal,
                                              buildSys.memory(), &err)) {
            // A failed save (host resource) must never kill the run it
            // exists to protect.
            warn("sampling: checkpoint write to ", rz.checkpointOutPath,
                 " failed: ", err);
        }
    };

    if (!ffSkipped) {
        interp.setHooks(&warm);
        buildSys.memory().setWriteObserver(&journal);
        for (size_t k = startK;; k++) {
            if (k >= cfg.sampling.maxCheckpoints) {
                rep.truncated = true;
                warn("sampling: checkpoint cap (",
                     cfg.sampling.maxCheckpoints, ") hit at instr ",
                     interp.totalInstrs(),
                     "; the remainder fast-forwards unmeasured -- raise "
                     "--sample-period or --max-checkpoints");
                // No further checkpoints, so the warm state is dead
                // weight: run the tail bare.
                interp.setHooks(nullptr);
                {
                    hostprof::ScopedPhase hp(
                        hostprof::Phase::FastForward);
                    ff = interp.run();
                }
                break;
            }
            if (resumedMid && k == startK) {
                // Checkpoint k came from the resume file; skip the
                // re-capture and re-open its journal interval below.
                resumedMid = false;
            } else {
                {
                    hostprof::ScopedPhase hp(
                        hostprof::Phase::CheckpointCapture);
                    ckpts.push_back({interp.snapshot(), warm.state()});
                }
                // Boundary save: the file now holds checkpoints 0..k
                // and complete intervals 0..k-1.
                saveDurable(false);
                // Deterministic-interrupt hook: fires only when a
                // *fresh* capture reaches the target count, so a
                // resumed run (whose count starts past it) completes.
                if (rz.interruptAtCheckpoint &&
                    ckpts.size() == rz.interruptAtCheckpoint) {
                    resilience::requestInterrupt();
                    selfInterrupted = true;
                }
            }
            if (resilience::interruptRequested()) {
                rep.interrupted = true;
                ff.instrs = interp.totalInstrs();
                break;
            }
            journal.beginInterval();
            uint64_t target = (k + 1) * period;
            if (period > kWarmHorizon) {
                // Bare fast-forward (journal stays attached -- memory
                // reconstruction needs every pre-image), then re-attach
                // the warm hooks for the horizon leading into the
                // checkpoint.
                interp.setHooks(nullptr);
                {
                    hostprof::ScopedPhase hp(
                        hostprof::Phase::FastForward);
                    ff = interp.runUntil(target - kWarmHorizon);
                }
                interp.setHooks(&warm);
                if (ff.status != Interp::Status::Target)
                    break;
            }
            {
                hostprof::ScopedPhase hp(hostprof::Phase::FastForward);
                ff = interp.runUntil(target);
            }
            if (ff.status != Interp::Status::Target)
                break;
        }
        buildSys.memory().setWriteObserver(nullptr);
        interp.setHooks(nullptr);
        if (rep.interrupted) {
            rep.error = resilience::SimError::Interrupted;
            rep.errorMsg = "interrupted at sample boundary";
            if (rz.checkpointOutPath.empty()) {
                warn("sampling: interrupted with no --checkpoint-out; "
                     "progress is not resumable");
            } else {
                inform("sampling: interrupted; resume with --resume=",
                       rz.checkpointOutPath);
            }
        } else {
            // FF finished: persist the final (windows-only) checkpoint
            // so a later kill during the window phase is resumable too.
            saveDurable(true);
        }
    }

    rep.ffStatus = ff.status;
    rep.ffInstrs = ff.instrs;
    rep.ffRounds = ff.rounds;
    rep.windows = static_cast<uint32_t>(ckpts.size());
    if (!rep.interrupted && ff.status == Interp::Status::Done) {
        hostprof::ScopedPhase hp(hostprof::Phase::Verify);
        rep.verified = wl.verify(buildSys);
    }
    rep.ffSeconds = lap() - rep.buildSeconds;

    // --- Detailed windows: inline, or fanned out over a host pool.
    // Slot-addressed results + in-order reduction make the outcome
    // byte-identical at any worker count. Each window runs under
    // exception isolation: a host fault (or injected one) is retried
    // once inline, and a second failure excludes just that window.
    const SystemConfig wCfg = windowConfig(cfg);
    std::vector<WindowMeasure> slots(ckpts.size());
    std::atomic<uint32_t> windowRetries{0}, windowsFailed{0};
    auto measure = [&](size_t k) {
        hostprof::ScopedPhase hp(hostprof::Phase::WindowSim);
        FatalThrowScope throwScope;
        for (unsigned attempt = 0; attempt < 2; attempt++) {
            // Cooperative drain: skip remaining windows (and the
            // retry) once an interrupt is pending.
            if (resilience::interruptRequested())
                return;
            try {
                slots[k] = runWindow(wCfg, ctx.spec, journal, k,
                                     ckpts[k], warmup, window, rz,
                                     attempt);
                return;
            } catch (const std::exception &e) {
                if (attempt == 0) {
                    windowRetries.fetch_add(1,
                                            std::memory_order_relaxed);
                    warn("sampling: window ", k, " failed (", e.what(),
                         "); retrying once");
                } else {
                    windowsFailed.fetch_add(1,
                                            std::memory_order_relaxed);
                    warn("sampling: window ", k, " failed twice (",
                         e.what(),
                         "); excluded -- its period is unmeasured and "
                         "the extrapolation error bound is degraded");
                }
            }
        }
    };
    if (rep.interrupted) {
        // Drained at a boundary: no windows run; the durable
        // checkpoint (if any) carries everything needed to finish.
    } else if (jobs <= 1 || ckpts.size() <= 1) {
        for (size_t k = 0; k < ckpts.size(); k++)
            measure(k);
    } else {
        parallel::TaskPool pool(
            std::min<unsigned>(jobs, static_cast<unsigned>(ckpts.size())));
        std::vector<parallel::TaskPool::Task> tasks;
        tasks.reserve(ckpts.size());
        for (size_t k = 0; k < ckpts.size(); k++)
            tasks.push_back([&measure, k] { measure(k); });
        pool.run(std::move(tasks));
    }
    rep.windowRetries = windowRetries.load(std::memory_order_relaxed);
    rep.windowsFailed = windowsFailed.load(std::memory_order_relaxed);

    // A real signal can also land during the window phase; report the
    // partial result as interrupted (the FF-done checkpoint, if one
    // was requested, already makes it resumable).
    if (!rep.interrupted && resilience::interruptRequested()) {
        rep.interrupted = true;
        rep.error = resilience::SimError::Interrupted;
        rep.errorMsg = "interrupted during detailed windows";
    }

    rep.windowSeconds = lap() - rep.buildSeconds - rep.ffSeconds;

    // --- Extrapolate in checkpoint order.
    uint64_t sumCycles = 0, sumInstrs = 0;
    for (const WindowMeasure &m : slots) {
        if (!m.ok)
            continue;
        rep.windowsOk++;
        sumCycles += m.cycles;
        sumInstrs += m.instrs;
    }
    rep.measuredCycles = sumCycles;
    rep.measuredInstrs = sumInstrs;
    if (sumInstrs) {
        rep.cpi = static_cast<double>(sumCycles) /
                  static_cast<double>(sumInstrs);
        rep.extrapCycles = static_cast<uint64_t>(
            static_cast<unsigned __int128>(sumCycles) * rep.ffInstrs /
            sumInstrs);
    }
    rep.ok = ff.status == Interp::Status::Done && rep.windowsOk > 0 &&
             !rep.interrupted;

    // The test hook's synthetic interrupt must not leak into later
    // runs in this process; a real signal's flag stays set so a whole
    // sweep drains.
    if (selfInterrupted)
        resilience::clearInterrupt();

    rep.stats["sim.sampled"] = 1.0;
    rep.stats["sample.period"] = static_cast<double>(period);
    rep.stats["sample.window"] = static_cast<double>(window);
    rep.stats["sample.warmup"] = static_cast<double>(warmup);
    rep.stats["sample.windows"] = rep.windows;
    rep.stats["sample.windowsOk"] = rep.windowsOk;
    rep.stats["sample.truncated"] = rep.truncated ? 1.0 : 0.0;
    // The checkpoint-cap truncation used to be warn-only; it now also
    // lands in the stat dump so CI and sweep consumers see the
    // coverage loss without scraping stderr. Emitted (like every key
    // here) on every run -- a resumed run's dump must be byte-identical
    // to an uninterrupted one's, so no key is conditional.
    rep.stats["sample.checkpointsTruncated"] =
        rep.truncated ? 1.0 : 0.0;
    rep.stats["sample.windowsFailed"] =
        static_cast<double>(rep.windowsFailed);
    rep.stats["sample.windowRetries"] =
        static_cast<double>(rep.windowRetries);
    rep.stats["sample.interrupted"] = rep.interrupted ? 1.0 : 0.0;
    rep.stats["sample.ffInstrs"] = static_cast<double>(rep.ffInstrs);
    rep.stats["sample.measuredInstrs"] =
        static_cast<double>(rep.measuredInstrs);
    rep.stats["sample.measuredCycles"] =
        static_cast<double>(rep.measuredCycles);
    rep.stats["sample.cpi"] = rep.cpi;
    rep.stats["sample.extrapCycles"] =
        static_cast<double>(rep.extrapCycles);

    rep.hostSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    return rep;
}

} // namespace pipette::sample
