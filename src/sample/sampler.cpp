#include "sample/sampler.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <vector>

#include "parallel/task_pool.h"
#include "sample/cow_journal.h"
#include "sample/warm_model.h"
#include "sim/logging.h"

namespace pipette::sample {

namespace {

/**
 * Checkpoint cap: bounds host memory (each checkpoint carries a warmed
 * cache/bpred copy, a few hundred KB). When the cap trips, the
 * remaining instructions fast-forward uncovered and the report says so
 * (truncated) -- no silent coverage loss. Choose a larger period
 * instead of relying on the cap.
 */
constexpr size_t kMaxCheckpoints = 256;

/**
 * Warming horizon (instructions): the microarchitectural state a
 * window inherits only depends on the recent access history -- caches,
 * branch predictors, and prefetch streams forget anything older than
 * their own capacity. With periods longer than this horizon the warm
 * hooks stay detached until the fast-forward is within the horizon of
 * the next checkpoint, so most of the period runs at bare-interpreter
 * speed. Periods at or below the horizon (every tier-1 accuracy-gate
 * operating point) warm continuously and are byte-identical to the
 * pre-horizon behaviour. 250k instructions touch lines worth many
 * times the 512 KB L3 (the largest warmed structure, 8k lines), so the
 * horizon refills every level from scratch several times over.
 */
constexpr uint64_t kWarmHorizon = 250'000;

struct Checkpoint
{
    ArchSnapshot arch;
    WarmState warm;
};

struct WindowMeasure
{
    bool ok = false;
    uint64_t cycles = 0;
    uint64_t instrs = 0;
};

/**
 * Queue-occupancy budget for the fast-forward: checkpoint restore
 * backs every committed queue entry with a freshly allocated physical
 * register, so total occupancy must leave the PRF room for the pinned
 * architectural registers plus a rename burst. Functional results are
 * capacity-independent for race-free programs; only the interpreter's
 * blocking schedule shifts.
 */
uint32_t
queueRegBudget(const CoreConfig &c)
{
    uint32_t pinned = NUM_ARCH_REGS * c.smtThreads;
    uint32_t rename = 2 * c.renameWidth;
    uint32_t slack =
        c.physRegs > pinned + rename ? c.physRegs - pinned - rename : 4;
    return std::min(c.maxQueueRegs, slack);
}

/** Strip everything that must not run inside a measurement window. */
SystemConfig
windowConfig(const SystemConfig &cfg)
{
    SystemConfig w = cfg;
    w.sampling = SamplingConfig{};
    w.guardrails = GuardrailConfig{};
    w.observability = ObservabilityConfig{};
    w.core.traceFile = nullptr;
    // Window-level parallelism comes from the window fan-out itself;
    // nesting the per-core pool inside it would oversubscribe the host.
    w.coreJobs = 1;
    return w;
}

/**
 * Run one detailed window from checkpoint k. A fresh System resolves
 * memory through the journal, takes the architectural snapshot and the
 * warmed microarchitectural state, then executes in chunks until it
 * passes warmup + window retired instructions (or stops early at
 * program end). Measured cycles/instructions are taken at chunk
 * boundaries, so the chunk size is part of the (deterministic) regime.
 */
WindowMeasure
runWindow(const SystemConfig &wCfg, const MachineSpec &spec,
          const CowJournal &journal, size_t k, const Checkpoint &ckpt,
          uint64_t warmup, uint64_t window)
{
    WindowSource src(&journal, k);
    System sys(wCfg);
    sys.memory().setPageSource(&src);
    sys.configure(spec);
    sys.restoreArchState(ckpt.arch);
    for (uint32_t c = 0; c < sys.numCores(); c++) {
        sys.hierarchy().l1Array(c) = ckpt.warm.l1[c];
        sys.hierarchy().l2Array(c) = ckpt.warm.l2[c];
        sys.core(c).bpred() = ckpt.warm.bpred[c];
        if (StreamPrefetcher *pf = sys.hierarchy().prefetcherFor(c))
            pf->restore(ckpt.warm.pf[c]);
    }
    sys.hierarchy().l3Array() = ckpt.warm.l3;

    uint64_t target0 = warmup;
    uint64_t target1 = warmup + window;
    Cycle chunk = std::max<Cycle>(
        256, std::min<Cycle>(2048, (target1 ? target1 : 1) / 8));

    WindowMeasure m;
    bool past0 = false;
    uint64_t c0 = 0, i0 = 0;
    while (true) {
        System::RunResult r = sys.runFor(chunk);
        if (!past0 && r.instrs >= target0) {
            past0 = true;
            c0 = r.cycles;
            i0 = r.instrs;
        }
        if (past0 && r.instrs >= target1 && r.instrs > i0) {
            m.ok = true;
            m.cycles = r.cycles - c0;
            m.instrs = r.instrs - i0;
            return m;
        }
        if (r.stopReason != System::StopReason::None) {
            // Program end (or an abnormal stop) inside the window:
            // keep the partial measurement when anything committed
            // past the warmup.
            if (past0 && r.instrs > i0 &&
                r.stopReason == System::StopReason::Finished) {
                m.ok = true;
                m.cycles = r.cycles - c0;
                m.instrs = r.instrs - i0;
            }
            return m;
        }
    }
}

} // namespace

SampleReport
runSampled(const SystemConfig &cfg, WorkloadBase &wl, Variant v,
           unsigned jobs)
{
    panic_if(!cfg.sampling.enabled(),
             "runSampled with sampling.period == 0");
    auto t0 = std::chrono::steady_clock::now();
    const uint64_t period = cfg.sampling.period;
    const uint64_t window = cfg.sampling.window;
    const uint64_t warmup = cfg.sampling.warmup;

    SampleReport rep;
    auto lap = [&t0] {
        auto now = std::chrono::steady_clock::now();
        double d = std::chrono::duration<double>(now - t0).count();
        return d;
    };

    // --- Build once; the spec and programs are shared by every window.
    System buildSys(cfg);
    BuildContext ctx(&buildSys);
    wl.build(ctx, v);
    rep.buildSeconds = lap();

    // --- Fast-forward with warming + journaling + checkpoints.
    Interp interp(ctx.spec, &buildSys.memory(), cfg.core.queueCapacity);
    interp.clampQueueCaps(queueRegBudget(cfg.core));
    WarmModel warm(cfg);
    interp.setHooks(&warm);
    CowJournal journal(&buildSys.memory());
    buildSys.memory().setWriteObserver(&journal);

    std::vector<Checkpoint> ckpts;
    Interp::Result ff{Interp::Status::Deadlock, 0, 0};
    for (size_t k = 0;; k++) {
        if (k >= kMaxCheckpoints) {
            rep.truncated = true;
            warn("sampling: checkpoint cap (", kMaxCheckpoints,
                 ") hit at instr ", interp.totalInstrs(),
                 "; the remainder fast-forwards unmeasured -- raise "
                 "--sample-period");
            // No further checkpoints, so the warm state is dead weight:
            // run the tail bare.
            interp.setHooks(nullptr);
            ff = interp.run();
            break;
        }
        ckpts.push_back({interp.snapshot(), warm.state()});
        journal.beginInterval();
        uint64_t target = (k + 1) * period;
        if (period > kWarmHorizon) {
            // Bare fast-forward (journal stays attached -- memory
            // reconstruction needs every pre-image), then re-attach the
            // warm hooks for the horizon leading into the checkpoint.
            interp.setHooks(nullptr);
            ff = interp.runUntil(target - kWarmHorizon);
            interp.setHooks(&warm);
            if (ff.status != Interp::Status::Target)
                break;
        }
        ff = interp.runUntil(target);
        if (ff.status != Interp::Status::Target)
            break;
    }
    buildSys.memory().setWriteObserver(nullptr);
    interp.setHooks(nullptr);

    rep.ffStatus = ff.status;
    rep.ffInstrs = ff.instrs;
    rep.ffRounds = ff.rounds;
    rep.windows = static_cast<uint32_t>(ckpts.size());
    if (ff.status == Interp::Status::Done)
        rep.verified = wl.verify(buildSys);
    rep.ffSeconds = lap() - rep.buildSeconds;

    // --- Detailed windows: inline, or fanned out over a host pool.
    // Slot-addressed results + in-order reduction make the outcome
    // byte-identical at any worker count.
    const SystemConfig wCfg = windowConfig(cfg);
    std::vector<WindowMeasure> slots(ckpts.size());
    auto measure = [&](size_t k) {
        slots[k] = runWindow(wCfg, ctx.spec, journal, k, ckpts[k],
                             warmup, window);
    };
    if (jobs <= 1 || ckpts.size() <= 1) {
        for (size_t k = 0; k < ckpts.size(); k++)
            measure(k);
    } else {
        parallel::TaskPool pool(
            std::min<unsigned>(jobs, static_cast<unsigned>(ckpts.size())));
        std::vector<parallel::TaskPool::Task> tasks;
        tasks.reserve(ckpts.size());
        for (size_t k = 0; k < ckpts.size(); k++)
            tasks.push_back([&measure, k] { measure(k); });
        pool.run(std::move(tasks));
    }

    rep.windowSeconds = lap() - rep.buildSeconds - rep.ffSeconds;

    // --- Extrapolate in checkpoint order.
    uint64_t sumCycles = 0, sumInstrs = 0;
    for (const WindowMeasure &m : slots) {
        if (!m.ok)
            continue;
        rep.windowsOk++;
        sumCycles += m.cycles;
        sumInstrs += m.instrs;
    }
    rep.measuredCycles = sumCycles;
    rep.measuredInstrs = sumInstrs;
    if (sumInstrs) {
        rep.cpi = static_cast<double>(sumCycles) /
                  static_cast<double>(sumInstrs);
        rep.extrapCycles = static_cast<uint64_t>(
            static_cast<unsigned __int128>(sumCycles) * rep.ffInstrs /
            sumInstrs);
    }
    rep.ok = ff.status == Interp::Status::Done && rep.windowsOk > 0;

    rep.stats["sim.sampled"] = 1.0;
    rep.stats["sample.period"] = static_cast<double>(period);
    rep.stats["sample.window"] = static_cast<double>(window);
    rep.stats["sample.warmup"] = static_cast<double>(warmup);
    rep.stats["sample.windows"] = rep.windows;
    rep.stats["sample.windowsOk"] = rep.windowsOk;
    rep.stats["sample.truncated"] = rep.truncated ? 1.0 : 0.0;
    rep.stats["sample.ffInstrs"] = static_cast<double>(rep.ffInstrs);
    rep.stats["sample.measuredInstrs"] =
        static_cast<double>(rep.measuredInstrs);
    rep.stats["sample.measuredCycles"] =
        static_cast<double>(rep.measuredCycles);
    rep.stats["sample.cpi"] = rep.cpi;
    rep.stats["sample.extrapCycles"] =
        static_cast<double>(rep.extrapCycles);

    rep.hostSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    return rep;
}

} // namespace pipette::sample
