/**
 * @file
 * Functional microarchitectural warming for the sampling fast-forward.
 *
 * While the interpreter fast-forwards, every memory touch and branch
 * outcome is mirrored into private cache tag arrays (same CacheArray
 * the detailed hierarchy uses, same coherence/inclusion rules, no
 * timing or stats) and per-core branch predictors (the detailed
 * BranchPredictor itself, trained with the resolve-time sequence). A
 * checkpoint copies this state out; a detailed window installs it by
 * whole-array assignment, so the window starts with the cache contents
 * and branch history a full detailed run would have accumulated --
 * minus transients the detailed model alone produces (MSHR occupancy,
 * in-flight fills; see DESIGN.md §11).
 *
 * The L1D stream prefetcher is warmed too: its training algorithm is
 * mirrored on the touch stream, confident streams install their
 * prefetch-ahead lines into the warm arrays, and the stream table is
 * checkpointed so windows start with hot streams. Leaving it cold was
 * measured at ~10% CPI overestimation on irregular inputs (the warmed
 * caches lacked every prefetch-ahead line the detailed machine would
 * have held).
 */

#ifndef PIPETTE_SAMPLE_WARM_MODEL_H
#define PIPETTE_SAMPLE_WARM_MODEL_H

#include <vector>

#include "core/bpred.h"
#include "isa/interp.h"
#include "mem/cache.h"
#include "mem/prefetcher.h"
#include "sim/config.h"

namespace pipette::sample {

/** Copyable warmed-microarchitecture snapshot (one per checkpoint). */
struct WarmState
{
    std::vector<CacheArray> l1, l2; ///< per core
    CacheArray l3;                  ///< shared
    std::vector<BranchPredictor> bpred; ///< per core
    std::vector<StreamPrefetcher::State> pf; ///< per core stream tables
};

/** Interp warming hooks feeding cache-tag + branch-predictor models. */
class WarmModel : public Interp::FFHooks
{
  public:
    explicit WarmModel(const SystemConfig &cfg);

    void touchMem(CoreId core, Addr addr, uint32_t bytes,
                  bool isWrite) override;
    void condBranch(CoreId core, ThreadId tid, Addr pc,
                    bool taken) override;
    void indirect(CoreId core, ThreadId tid, Addr pc,
                  Addr target) override;

    /** Copy the current warmed state out (checkpoint capture). */
    WarmState state() const { return {l1_, l2_, l3_, bpred_, pf_}; }

    /** Install a captured state (durable-checkpoint resume): warming
     *  continues from exactly the boundary the state was taken at. */
    void
    restore(const WarmState &s)
    {
        l1_ = s.l1;
        l2_ = s.l2;
        l3_ = s.l3;
        bpred_ = s.bpred;
        pf_ = s.pf;
    }

  private:
    void touchLine(CoreId core, uint64_t lineAddr, bool isWrite);
    void observeStream(CoreId core, uint64_t lineAddr, bool wasMiss);
    void warmPrefetchLine(CoreId core, uint64_t lineAddr);

    uint32_t lineBytes_;
    uint32_t numCores_;
    bool pfEnabled_;
    uint32_t pfDegree_;
    std::vector<CacheArray> l1_, l2_;
    CacheArray l3_;
    std::vector<BranchPredictor> bpred_;
    std::vector<StreamPrefetcher::State> pf_;
};

} // namespace pipette::sample

#endif // PIPETTE_SAMPLE_WARM_MODEL_H
