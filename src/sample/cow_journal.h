/**
 * @file
 * Copy-on-write page journal for sampling checkpoints.
 *
 * The fast-forward interpreter runs against one live SimMemory. Instead
 * of deep-copying the address space at every checkpoint, the journal
 * observes writes (SimMemory::WriteObserver) and saves each page's
 * pre-image the *first* time the page is written within the current
 * interval. Memory as of checkpoint k is then reconstructed lazily:
 * the first pre-image of a page in intervals k.. is its content at k;
 * a page never written after k still has its checkpoint-k bytes in the
 * live memory. A null pre-image records "was unmapped" (reads as
 * zero), distinct from "not journaled".
 *
 * After the fast-forward completes the journal is immutable, so any
 * number of window Systems can resolve pages through it concurrently
 * (detailed windows fan out over host workers).
 */

#ifndef PIPETTE_SAMPLE_COW_JOURNAL_H
#define PIPETTE_SAMPLE_COW_JOURNAL_H

#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

#include "mem/sim_memory.h"

namespace pipette::sample {

/** Interval-stamped page pre-images over one live SimMemory. */
class CowJournal : public SimMemory::WriteObserver
{
  public:
    /** Pre-images of one interval; null page = "was unmapped". */
    using PageMap =
        std::unordered_map<uint64_t, std::unique_ptr<uint8_t[]>>;

    explicit CowJournal(const SimMemory *live) : live_(live) {}

    /** Open interval k (= current count); pre-images land here. */
    void beginInterval() { intervals_.emplace_back(); }

    size_t intervals() const { return intervals_.size(); }

    void
    onPageWrite(uint64_t pn) override
    {
        if (intervals_.empty())
            return; // writes before the first checkpoint need no journal
        size_t gen = intervals_.size();
        // Stores cluster heavily by page, so remember the last (page,
        // interval) handled and skip the hash probe on repeats.
        if (pn == lastPn_ && gen == lastGen_)
            return;
        lastPn_ = pn;
        lastGen_ = gen;
        // First touch per interval only: the pre-image of a page that
        // is written many times within one interval is its content at
        // the interval's start, which the first write captures.
        auto [it, fresh] = lastTouched_.try_emplace(pn, gen);
        if (!fresh) {
            if (it->second == gen)
                return;
            it->second = gen;
        }
        auto &m = intervals_.back();
        const uint8_t *p = live_->peekPage(pn);
        if (!p) {
            m.emplace(pn, nullptr); // pre-image: unmapped, reads zero
            return;
        }
        auto copy = std::make_unique<uint8_t[]>(SimMemory::PAGE_SIZE);
        std::memcpy(copy.get(), p, SimMemory::PAGE_SIZE);
        m.emplace(pn, std::move(copy));
    }

    /**
     * Page contents as of the start of interval k: the oldest
     * pre-image at or after k, else the live memory (the page was
     * never written after checkpoint k). Null = unmapped (zero).
     * Only valid once journaling has stopped (immutable journal).
     */
    const uint8_t *
    resolve(size_t k, uint64_t pn) const
    {
        for (size_t j = k; j < intervals_.size(); j++) {
            auto it = intervals_[j].find(pn);
            if (it != intervals_[j].end())
                return it->second ? it->second.get() : nullptr;
        }
        return live_->peekPage(pn);
    }

    // --- Durable-checkpoint support (src/resilience/) ----------------

    /** Every interval's pre-image map (serialization; read-only). */
    const std::vector<PageMap> &intervalMaps() const { return intervals_; }

    /**
     * Rebuild the journal from deserialized intervals (resume).
     * Reconstructs lastTouched_ so journaling can continue seamlessly:
     * a page's newest recorded interval decides whether the next write
     * in the now-open interval captures a fresh pre-image.
     */
    void
    restore(std::vector<PageMap> &&intervals)
    {
        intervals_ = std::move(intervals);
        lastTouched_.clear();
        for (size_t j = 0; j < intervals_.size(); j++) {
            for (const auto &kv : intervals_[j]) {
                auto [it, fresh] = lastTouched_.try_emplace(kv.first, j + 1);
                if (!fresh && it->second < j + 1)
                    it->second = j + 1;
            }
        }
        lastPn_ = ~0ull;
        lastGen_ = 0;
    }

  private:
    const SimMemory *live_;
    std::vector<PageMap> intervals_;
    /** pn -> newest interval (1-based size at touch) with a pre-image. */
    std::unordered_map<uint64_t, size_t> lastTouched_;
    /** One-entry repeat filter in front of lastTouched_. */
    uint64_t lastPn_ = ~0ull;
    size_t lastGen_ = 0;
};

/** Adapter presenting "memory as of checkpoint k" to a window System. */
class WindowSource : public SimMemory::PageSource
{
  public:
    WindowSource(const CowJournal *journal, size_t k)
        : journal_(journal), k_(k)
    {
    }

    const uint8_t *
    page(uint64_t pn) const override
    {
        return journal_->resolve(k_, pn);
    }

  private:
    const CowJournal *journal_;
    size_t k_;
};

} // namespace pipette::sample

#endif // PIPETTE_SAMPLE_COW_JOURNAL_H
