#include "sample/warm_model.h"

namespace pipette::sample {

WarmModel::WarmModel(const SystemConfig &cfg)
    : lineBytes_(cfg.mem.lineBytes),
      numCores_(cfg.numCores ? cfg.numCores : 1),
      pfEnabled_(cfg.mem.prefetcherEnabled),
      pfDegree_(cfg.mem.pfDegree),
      l3_(cfg.mem.l3, cfg.mem.lineBytes, "warmL3")
{
    for (uint32_t c = 0; c < numCores_; c++) {
        l1_.emplace_back(cfg.mem.l1d, cfg.mem.lineBytes, "warmL1");
        l2_.emplace_back(cfg.mem.l2, cfg.mem.lineBytes, "warmL2");
        bpred_.emplace_back(cfg.core, cfg.core.smtThreads);
        pf_.emplace_back();
        pf_.back().streams.resize(cfg.mem.pfStreams);
    }
}

void
WarmModel::touchMem(CoreId core, Addr addr, uint32_t bytes, bool isWrite)
{
    uint64_t first = addr / lineBytes_;
    uint64_t last = (addr + (bytes ? bytes : 1) - 1) / lineBytes_;
    touchLine(core, first, isWrite);
    if (last != first)
        touchLine(core, last, isWrite);
}

/**
 * Mirror MemoryHierarchy::accessNow / accessBelowL1 on the warm tag
 * arrays: same lookup/insert/invalidate sequence, same coherence and
 * inclusion actions, no MSHRs, latencies, or stats. The stream
 * prefetcher is mirrored too (observeStream below), since its
 * prefetch-ahead lines are a steady-state part of the cache contents.
 */
void
WarmModel::touchLine(CoreId core, uint64_t lineAddr, bool isWrite)
{
    CacheArray::Line *l1line = l1_[core].lookup(lineAddr);
    bool wasMiss = l1line == nullptr;
    if (l1line) {
        l1line->prefetched = false;
        if (isWrite) {
            l1line->dirty = true;
            // Ownership probe against the shared directory.
            CacheArray::Line *l3line = l3_.lookup(lineAddr, false);
            if (l3line && (l3line->sharers & ~(1u << core))) {
                for (uint32_t o = 0; o < numCores_; o++) {
                    if (o != core && (l3line->sharers & (1u << o))) {
                        l1_[o].invalidate(lineAddr);
                        l2_[o].invalidate(lineAddr);
                    }
                }
                l3line->sharers = 1u << core;
                l3line->owner = core;
                l3line->ownerValid = true;
            }
        }
        observeStream(core, lineAddr, wasMiss);
        return;
    }
    l1_[core].insert(lineAddr, isWrite, false);

    CacheArray::Line *l2line = l2_[core].lookup(lineAddr);
    if (l2line) {
        if (isWrite)
            l2line->dirty = true;
        observeStream(core, lineAddr, wasMiss);
        return;
    }

    CacheArray::Line *l3line = l3_.lookup(lineAddr);
    if (l3line) {
        l3line->prefetched = false;
        if (isWrite) {
            uint32_t remote = l3line->sharers & ~(1u << core);
            if (remote) {
                for (uint32_t o = 0; o < numCores_; o++) {
                    if (remote & (1u << o)) {
                        l1_[o].invalidate(lineAddr);
                        l2_[o].invalidate(lineAddr);
                    }
                }
            }
            l3line->sharers = 1u << core;
            l3line->owner = core;
            l3line->ownerValid = true;
            l3line->dirty = true;
        } else {
            if (l3line->ownerValid && l3line->owner != core)
                l3line->ownerValid = false;
            l3line->sharers |= 1u << core;
        }
    } else {
        auto ins = l3_.insert(lineAddr, isWrite, false);
        if (ins.evictedValid) {
            // Inclusive L3: back-invalidate private copies.
            for (uint32_t o = 0; o < numCores_; o++) {
                l1_[o].invalidate(ins.victimLineAddr);
                l2_[o].invalidate(ins.victimLineAddr);
            }
        }
        CacheArray::Line *nl = l3_.lookup(lineAddr, false);
        nl->sharers = 1u << core;
        nl->ownerValid = isWrite;
        nl->owner = core;
    }

    l2_[core].insert(lineAddr, isWrite, false);
    observeStream(core, lineAddr, wasMiss);
}

/**
 * Mirror StreamPrefetcher::observe on the warm stream table: identical
 * stream advance / allocate / direction-flip rules, with the prefetch
 * issue redirected into the warm arrays (warmPrefetchLine). Timing
 * (MSHR admits, inflight dedup) is dropped like everywhere else in the
 * warm model.
 */
void
WarmModel::observeStream(CoreId core, uint64_t lineAddr, bool wasMiss)
{
    if (!pfEnabled_)
        return;
    StreamPrefetcher::State &st = pf_[core];
    for (StreamPrefetcher::Stream &s : st.streams) {
        if (!s.valid)
            continue;
        if (lineAddr == s.lastLine + static_cast<uint64_t>(s.stride)) {
            s.lastLine = lineAddr;
            s.confidence++;
            s.lruTick = ++st.tick;
            if (s.confidence >= 2) {
                for (uint32_t k = 1; k <= pfDegree_; k++) {
                    warmPrefetchLine(
                        core,
                        lineAddr + static_cast<uint64_t>(s.stride) * k);
                }
            }
            return;
        }
        if (lineAddr == s.lastLine)
            return; // repeated access, not a new stream
    }
    if (!wasMiss)
        return;
    StreamPrefetcher::Stream *victim = &st.streams[0];
    for (StreamPrefetcher::Stream &s : st.streams) {
        if (!s.valid) {
            victim = &s;
            break;
        }
        if (s.lruTick < victim->lruTick)
            victim = &s;
    }
    int64_t stride = 1;
    for (StreamPrefetcher::Stream &s : st.streams) {
        if (s.valid && lineAddr + 1 == s.lastLine) {
            stride = -1;
            break;
        }
    }
    victim->valid = true;
    victim->lastLine = lineAddr;
    victim->stride = stride;
    victim->confidence = 0;
    victim->lruTick = ++st.tick;
}

/** Mirror MemoryHierarchy::prefetchLine: L2/L3 read walk + L1 install
 *  with the prefetched mark, skipped when the line is already in L1. */
void
WarmModel::warmPrefetchLine(CoreId core, uint64_t lineAddr)
{
    if (l1_[core].lookup(lineAddr, false))
        return;

    CacheArray::Line *l2line = l2_[core].lookup(lineAddr);
    if (!l2line) {
        CacheArray::Line *l3line = l3_.lookup(lineAddr);
        if (l3line) {
            l3line->prefetched = false;
            if (l3line->ownerValid && l3line->owner != core)
                l3line->ownerValid = false;
            l3line->sharers |= 1u << core;
        } else {
            auto ins = l3_.insert(lineAddr, false, true);
            if (ins.evictedValid) {
                for (uint32_t o = 0; o < numCores_; o++) {
                    l1_[o].invalidate(ins.victimLineAddr);
                    l2_[o].invalidate(ins.victimLineAddr);
                }
            }
            CacheArray::Line *nl = l3_.lookup(lineAddr, false);
            nl->sharers = 1u << core;
            nl->ownerValid = false;
            nl->owner = core;
        }
        l2_[core].insert(lineAddr, false, true);
    }
    l1_[core].insert(lineAddr, false, true);
}

void
WarmModel::condBranch(CoreId core, ThreadId tid, Addr pc, bool taken)
{
    // Replay the detailed core's predict -> resolve sequence: the
    // speculative history update at predict, PHT training with the
    // history-at-predict, and the squash-path history repair when the
    // prediction was wrong.
    BranchPredictor &bp = bpred_[core];
    uint64_t h = bp.history(tid);
    bool pred = bp.predictCond(tid, pc);
    bp.updateCond(tid, pc, taken, h);
    if (pred != taken)
        bp.restoreHistory(tid, h, taken);
}

void
WarmModel::indirect(CoreId core, ThreadId tid, Addr pc, Addr target)
{
    bpred_[core].updateIndirect(tid, pc, target);
}

} // namespace pipette::sample
