/**
 * @file
 * Sampled-simulation scheduler (SMARTS/SimPoint-style; DESIGN.md §11).
 *
 * State machine per run:
 *
 *   FAST-FORWARD  the golden interpreter executes the program
 *                 functionally at interpreter speed, warming cache
 *                 tags + branch predictors (WarmModel) and journaling
 *                 memory pre-images (CowJournal);
 *   CHECKPOINT    every `period` retired instructions: architectural
 *                 snapshot (threads, queues, RAs) + warmed-state copy;
 *   WINDOW        from each checkpoint, a fresh detailed System is
 *                 restored (memory through the copy-on-write journal)
 *                 and runs `warmup + window` instructions; cycles and
 *                 instructions after the warmup are measured;
 *   EXTRAPOLATE   whole-run cycles = exact retired instructions x the
 *                 measured aggregate CPI.
 *
 * Windows are independent, so they run inline or fan out across a host
 * worker pool; results land in index-addressed slots and are reduced
 * in checkpoint order, making every derived number byte-identical at
 * any worker count and across repeated runs.
 */

#ifndef PIPETTE_SAMPLE_SAMPLER_H
#define PIPETTE_SAMPLE_SAMPLER_H

#include <map>
#include <string>

#include "isa/interp.h"
#include "resilience/error.h"
#include "sim/config.h"
#include "workloads/workload.h"

namespace pipette::sample {

/** Everything a sampled run produces. */
struct SampleReport
{
    /** Fast-forward ran to completion and >= 1 window measured. */
    bool ok = false;
    /** Functional output check against the host reference passed. */
    bool verified = false;

    Interp::Status ffStatus = Interp::Status::Deadlock;
    /** Exact machine-wide retired instructions (from the interpreter). */
    uint64_t ffInstrs = 0;
    uint64_t ffRounds = 0;

    uint32_t windows = 0;   ///< checkpoints taken
    uint32_t windowsOk = 0; ///< windows that produced a measurement
    /** Checkpoint cap hit: later instructions are uncovered (logged). */
    bool truncated = false;

    /**
     * Error-taxonomy class (DESIGN.md §12): None for clean runs
     * (including degraded-but-complete ones with failed windows),
     * Interrupted for a cooperative signal drain, the loader's class
     * when --resume fails, with the human-readable message in
     * errorMsg.
     */
    resilience::SimError error = resilience::SimError::None;
    std::string errorMsg;
    /** Windows excluded after failing twice (fault / timeout). The
     *  extrapolation skips their periods; its error bound degrades. */
    uint32_t windowsFailed = 0;
    /** First-attempt window failures that were retried inline. */
    uint32_t windowRetries = 0;
    /** A SIGINT/SIGTERM (or the deterministic test hook) drained the
     *  run at a sample boundary; the report is partial. */
    bool interrupted = false;
    /** This run continued from a --resume checkpoint file. Never a
     *  stats key: a resumed run's stat dump is byte-identical to an
     *  uninterrupted one's. */
    bool resumed = false;

    /** Aggregate detailed measurement across ok windows (exact). */
    uint64_t measuredInstrs = 0;
    uint64_t measuredCycles = 0;
    /** Extrapolated whole-run numbers (estimates, kept separate). */
    double cpi = 0.0;
    uint64_t extrapCycles = 0;

    /** Host wall-clock of the whole sampled run (never in stats). */
    double hostSeconds = 0.0;
    /** Host-side phase breakdown (build/FF+checkpoint/windows). */
    double buildSeconds = 0.0;
    double ffSeconds = 0.0;
    double windowSeconds = 0.0;

    /**
     * Flattened "sample.*" counters plus "sim.sampled" = 1. Exact
     * counters (ffInstrs, measured*) and extrapolated ones (cpi,
     * extrapCycles) carry distinct key names so downstream tooling can
     * never mistake an estimate for a measurement.
     */
    std::map<std::string, double> stats;
};

/**
 * Run `wl` (variant `v`) under the sampling regime in cfg.sampling,
 * fanning detailed windows over `jobs` host workers (<= 1 = inline).
 * cfg.sampling.period must be non-zero. The workload is built once;
 * window Systems share its spec and reconstruct memory through the
 * journal. Byte-identical results at any `jobs` value.
 */
SampleReport runSampled(const SystemConfig &cfg, WorkloadBase &wl,
                        Variant v, unsigned jobs);

} // namespace pipette::sample

#endif // PIPETTE_SAMPLE_SAMPLER_H
