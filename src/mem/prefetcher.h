/**
 * @file
 * Stream prefetcher attached to each L1D. Detects ascending or
 * descending line-granularity streams and prefetches `degree` lines
 * ahead. The paper relies on one: sequential fringe accesses in BFS are
 * "trivially handled by a stream prefetcher" (Sec. II).
 */

#ifndef PIPETTE_MEM_PREFETCHER_H
#define PIPETTE_MEM_PREFETCHER_H

#include <cstdint>
#include <vector>

#include "sim/config.h"
#include "sim/types.h"

namespace pipette {

class MemoryHierarchy;

/** Per-core stream prefetcher. */
class StreamPrefetcher
{
  public:
    struct Stream
    {
        uint64_t lastLine = 0;
        int64_t stride = 1;
        uint32_t confidence = 0;
        uint64_t lruTick = 0;
        bool valid = false;
    };

    /** Detached training state (sampled-simulation checkpoints warm a
     *  mirror of the stream table and install it into each window). */
    struct State
    {
        std::vector<Stream> streams;
        uint64_t tick = 0;
    };

    StreamPrefetcher(const MemConfig &cfg, CoreId core,
                     MemoryHierarchy *hier);

    /** Observe a demand access (line address); may issue prefetches. */
    void observe(uint64_t lineAddr, bool wasMiss, Cycle now);

    State state() const { return {streams_, tick_}; }
    void
    restore(const State &s)
    {
        streams_ = s.streams;
        streams_.resize(cfg_.pfStreams);
        tick_ = s.tick;
    }

  private:
    const MemConfig &cfg_;
    CoreId core_;
    MemoryHierarchy *hier_;
    std::vector<Stream> streams_;
    uint64_t tick_ = 0;
};

} // namespace pipette

#endif // PIPETTE_MEM_PREFETCHER_H
