/**
 * @file
 * Functional simulated memory: a sparse, paged 64-bit byte-addressable
 * address space, plus a bump allocator for laying out workload data.
 *
 * Reads of unmapped memory return zero without allocating, so wrong-path
 * (speculative) accesses with garbage addresses are always safe.
 *
 * Pages live in a two-level radix table of atomic pointers rather than a
 * hash map so the epoch-barrier multicore scheduler can run per-core
 * phases on different host threads without locking: lookups are acquire
 * loads, and page/chunk allocation is a compare-and-swap race where the
 * loser frees its copy. Distinct simulated addresses are therefore
 * host-race-free under concurrent access. Concurrent plain accesses to
 * the *same* address from different simulated cores are a data race in
 * the simulated program -- the workload contract requires atomics (whose
 * functional effect is applied serially at epoch edges) or a barrier for
 * cross-core sharing.
 */

#ifndef PIPETTE_MEM_SIM_MEMORY_H
#define PIPETTE_MEM_SIM_MEMORY_H

#include <array>
#include <atomic>
#include <cstring>
#include <string>
#include <vector>

#include "sim/logging.h"
#include "sim/types.h"

namespace pipette {

/** Sparse functional memory. */
class SimMemory
{
  public:
    static constexpr uint32_t PAGE_BITS = 16;
    static constexpr uint64_t PAGE_SIZE = 1ull << PAGE_BITS;
    /** Second-level (chunk) fan-out in pages. */
    static constexpr uint32_t CHUNK_BITS = 12;
    static constexpr uint64_t CHUNK_PAGES = 1ull << CHUNK_BITS;
    /** First-level (root) fan-out in chunks. */
    static constexpr uint32_t ROOT_BITS = 12;
    static constexpr uint64_t ROOT_CHUNKS = 1ull << ROOT_BITS;
    /** Addressable bits: 12 + 12 + 16 = a 1 TiB simulated space. */
    static constexpr uint32_t ADDR_BITS =
        ROOT_BITS + CHUNK_BITS + PAGE_BITS;

    /**
     * Backing source for copy-on-write checkpoint restore (sampling):
     * when a lookup misses the radix, the page is resolved read-only
     * from the source; the first write copies the source page into a
     * freshly allocated radix page. Pages absent from the source too
     * read as zero, as usual.
     */
    class PageSource
    {
      public:
        virtual ~PageSource() = default;
        /** Page contents for page number `pn`, or null if unmapped. */
        virtual const uint8_t *page(uint64_t pn) const = 0;
    };

    /**
     * Write notification for copy-on-write journaling (sampling): fired
     * once per touched page, before the bytes mutate, so the observer
     * can capture the pre-image.
     */
    class WriteObserver
    {
      public:
        virtual ~WriteObserver() = default;
        virtual void onPageWrite(uint64_t pn) = 0;
    };

    SimMemory() = default;
    SimMemory(const SimMemory &) = delete;
    SimMemory &operator=(const SimMemory &) = delete;
    ~SimMemory() { releaseAll(); }

    /** Attach/detach the checkpoint page source (null = none). */
    void setPageSource(const PageSource *src) { source_ = src; }

    /** Whether a checkpoint page source is attached (disables the
     *  interpreter's page-pointer cache: CoW can replace pages). */
    bool hasSource() const { return source_ != nullptr; }

    /** Attach/detach the pre-image write observer (null = none). */
    void setWriteObserver(WriteObserver *obs) { writeObs_ = obs; }

    /**
     * Drop every mapped page (the page source, if any, is kept). Used
     * by the sampling scheduler to discard workload-build contents
     * before pointing a window System at checkpointed state.
     */
    void reset() { releaseAll(); }

    /**
     * Read-only view of a page by page number, resolving through the
     * page source; null if unmapped everywhere (reads as zero).
     */
    const uint8_t *
    peekPage(uint64_t pn) const
    {
        return pageFor(pn << PAGE_BITS);
    }

    /** Read `size` bytes (1,2,4,8) at addr, zero-extended to 64 bits. */
    uint64_t
    read(Addr addr, uint32_t size) const
    {
        // Fast path: the access stays within one page, so one page
        // lookup covers every byte (the common case by far).
        if (((addr ^ (addr + size - 1)) >> PAGE_BITS) == 0) {
            const uint8_t *p = pageFor(addr);
            if (!p)
                return 0;
            const uint8_t *b = p + (addr & (PAGE_SIZE - 1));
            uint64_t v = 0;
            for (uint32_t i = 0; i < size; i++)
                v |= static_cast<uint64_t>(b[i]) << (8 * i);
            return v;
        }
        uint64_t v = 0;
        for (uint32_t i = 0; i < size; i++) {
            const uint8_t *p = pageFor(addr + i);
            uint8_t byte = p ? p[(addr + i) & (PAGE_SIZE - 1)] : 0;
            v |= static_cast<uint64_t>(byte) << (8 * i);
        }
        return v;
    }

    /** Write the low `size` bytes of val at addr, allocating pages. */
    void
    write(Addr addr, uint32_t size, uint64_t val)
    {
        if (((addr ^ (addr + size - 1)) >> PAGE_BITS) == 0) {
            if (writeObs_)
                writeObs_->onPageWrite(addr >> PAGE_BITS);
            uint8_t *b = pageForAlloc(addr) + (addr & (PAGE_SIZE - 1));
            for (uint32_t i = 0; i < size; i++)
                b[i] = static_cast<uint8_t>(val >> (8 * i));
            return;
        }
        for (uint32_t i = 0; i < size; i++) {
            if (writeObs_ && (i == 0 || (((addr + i) & (PAGE_SIZE - 1)) == 0)))
                writeObs_->onPageWrite((addr + i) >> PAGE_BITS);
            uint8_t *p = pageForAlloc(addr + i);
            p[(addr + i) & (PAGE_SIZE - 1)] =
                static_cast<uint8_t>(val >> (8 * i));
        }
    }

    /**
     * Install a full page image (durable-checkpoint resume): allocate
     * the page and overwrite all PAGE_SIZE bytes. Bypasses the write
     * observer -- restore happens before journaling (re)starts, so the
     * installed bytes are the baseline, not a journaled write.
     */
    void
    installPage(uint64_t pn, const uint8_t *bytes)
    {
        uint8_t *p = pageForAlloc(pn << PAGE_BITS);
        std::memcpy(p, bytes, PAGE_SIZE);
    }

    /** Copy a host array of 64-bit words into simulated memory. */
    void
    writeArray64(Addr addr, const uint64_t *data, size_t n)
    {
        for (size_t i = 0; i < n; i++)
            write(addr + 8 * i, 8, data[i]);
    }

    /** Copy a host array of 32-bit words into simulated memory. */
    void
    writeArray32(Addr addr, const uint32_t *data, size_t n)
    {
        for (size_t i = 0; i < n; i++)
            write(addr + 4 * i, 4, data[i]);
    }

    /** Read back an array of 64-bit words. */
    std::vector<uint64_t>
    readArray64(Addr addr, size_t n) const
    {
        std::vector<uint64_t> out(n);
        for (size_t i = 0; i < n; i++)
            out[i] = read(addr + 8 * i, 8);
        return out;
    }

    /** Read back an array of 32-bit words. */
    std::vector<uint32_t>
    readArray32(Addr addr, size_t n) const
    {
        std::vector<uint32_t> out(n);
        for (size_t i = 0; i < n; i++)
            out[i] = static_cast<uint32_t>(read(addr + 4 * i, 4));
        return out;
    }

    /** Fill n bytes with a byte value. */
    void
    fill(Addr addr, size_t n, uint8_t byte)
    {
        for (size_t i = 0; i < n; i++)
            write(addr + i, 1, byte);
    }

    /** Number of mapped pages (for tests). */
    size_t
    mappedPages() const
    {
        return mappedCount_.load(std::memory_order_relaxed);
    }

    /**
     * Replace this memory's contents with a deep copy of another's.
     * Used by the lockstep oracle to give the golden model a private
     * snapshot of the populated address space at run start. Not safe
     * concurrently with writes to either memory.
     */
    void
    copyFrom(const SimMemory &other)
    {
        releaseAll();
        for (uint64_t r = 0; r < ROOT_CHUNKS; r++) {
            const Chunk *oc =
                other.root_[r].load(std::memory_order_acquire);
            if (!oc)
                continue;
            Chunk *c = nullptr;
            for (uint64_t i = 0; i < CHUNK_PAGES; i++) {
                const uint8_t *op =
                    (*oc)[i].load(std::memory_order_acquire);
                if (!op)
                    continue;
                if (!c) {
                    c = new Chunk();
                    root_[r].store(c, std::memory_order_release);
                }
                uint8_t *p = new uint8_t[PAGE_SIZE];
                std::memcpy(p, op, PAGE_SIZE);
                (*c)[i].store(p, std::memory_order_release);
                mappedCount_.fetch_add(1, std::memory_order_relaxed);
            }
        }
    }

  private:
    using Chunk = std::array<std::atomic<uint8_t *>, CHUNK_PAGES>;

    const uint8_t *
    pageFor(Addr addr) const
    {
        uint64_t pn = addr >> PAGE_BITS;
        if (pn >> (ROOT_BITS + CHUNK_BITS))
            return nullptr; // beyond the radix: reads as unmapped
        const Chunk *c =
            root_[pn >> CHUNK_BITS].load(std::memory_order_acquire);
        if (!c)
            return source_ ? source_->page(pn) : nullptr;
        const uint8_t *p = (*c)[pn & (CHUNK_PAGES - 1)].load(
            std::memory_order_acquire);
        if (!p && source_)
            return source_->page(pn);
        return p;
    }

    uint8_t *
    pageForAlloc(Addr addr)
    {
        uint64_t pn = addr >> PAGE_BITS;
        // Stores are architectural (commit-time), so an out-of-range
        // address is a workload layout bug, not a wrong-path access.
        panic_if(pn >> (ROOT_BITS + CHUNK_BITS),
                 "write beyond the ", ADDR_BITS,
                 "-bit simulated address space at ", addr);
        std::atomic<Chunk *> &rslot = root_[pn >> CHUNK_BITS];
        Chunk *c = rslot.load(std::memory_order_acquire);
        if (!c) {
            Chunk *fresh = new Chunk();
            if (rslot.compare_exchange_strong(c, fresh,
                                              std::memory_order_acq_rel,
                                              std::memory_order_acquire))
                c = fresh;
            else
                delete fresh; // another thread won the install race
        }
        std::atomic<uint8_t *> &slot = (*c)[pn & (CHUNK_PAGES - 1)];
        uint8_t *p = slot.load(std::memory_order_acquire);
        if (!p) {
            uint8_t *fresh = new uint8_t[PAGE_SIZE]();
            // Copy-on-write: seed the private page from the checkpoint
            // source before publishing it, so the first write to a
            // source-backed page keeps every untouched byte.
            if (source_) {
                if (const uint8_t *base = source_->page(pn))
                    std::memcpy(fresh, base, PAGE_SIZE);
            }
            if (slot.compare_exchange_strong(p, fresh,
                                             std::memory_order_acq_rel,
                                             std::memory_order_acquire)) {
                p = fresh;
                mappedCount_.fetch_add(1, std::memory_order_relaxed);
            } else {
                delete[] fresh;
            }
        }
        return p;
    }

    void
    releaseAll()
    {
        for (std::atomic<Chunk *> &rslot : root_) {
            Chunk *c = rslot.load(std::memory_order_relaxed);
            if (!c)
                continue;
            for (std::atomic<uint8_t *> &slot : *c)
                delete[] slot.load(std::memory_order_relaxed);
            delete c;
            rslot.store(nullptr, std::memory_order_relaxed);
        }
        mappedCount_.store(0, std::memory_order_relaxed);
    }

    std::array<std::atomic<Chunk *>, ROOT_CHUNKS> root_{};
    std::atomic<size_t> mappedCount_{0};
    const PageSource *source_ = nullptr;
    WriteObserver *writeObs_ = nullptr;
};

/**
 * Per-core write-buffering view of a SimMemory for the epoch-barrier
 * multicore scheduler. During a phase, plain stores are buffered here
 * (in commit order) instead of landing in the shared memory; reads
 * forward byte-accurately from the owning core's own buffer over the
 * epoch-start contents. The System drains every core's buffer at the
 * epoch edge, serially, merged by (commit cycle, core id). The shared
 * SimMemory is therefore read-only while phases run concurrently --
 * cross-core plain-memory visibility is epoch-granular and
 * deterministic at any host worker count -- while a core always sees
 * its own stores immediately.
 *
 * With buffering off (the default, and the single-core legacy loop)
 * writes pass straight through and reads are plain base reads.
 */
class EpochMemView
{
  public:
    explicit EpochMemView(SimMemory *base) : base_(base) {}

    struct BufferedStore
    {
        Cycle cycle; ///< commit cycle (merge key across cores)
        Addr addr;
        uint32_t size;
        uint64_t val;
    };

    void
    setBuffering(bool on)
    {
        buffering_ = on;
        buf_.clear();
    }
    bool buffering() const { return buffering_; }

    /** Read with store-to-load forwarding from this view's buffer. */
    uint64_t
    read(Addr addr, uint32_t size) const
    {
        uint64_t v = base_->read(addr, size);
        // Overlay buffered stores oldest-first so the newest write to
        // any byte wins, handling partial overlaps byte-accurately.
        for (const BufferedStore &s : buf_) {
            if (s.addr + s.size <= addr || addr + size <= s.addr)
                continue;
            for (uint32_t i = 0; i < size; i++) {
                Addr a = addr + i;
                if (a < s.addr || a >= s.addr + s.size)
                    continue;
                uint64_t byte = (s.val >> (8 * (a - s.addr))) & 0xff;
                v = (v & ~(0xffull << (8 * i))) | (byte << (8 * i));
            }
        }
        return v;
    }

    /** Commit a store: buffered in epoch mode, immediate otherwise. */
    void
    write(Cycle now, Addr addr, uint32_t size, uint64_t val)
    {
        if (!buffering_) {
            base_->write(addr, size, val);
            return;
        }
        buf_.push_back({now, addr, size, val});
    }

    /** Stores awaiting the edge drain, in commit order. */
    const std::vector<BufferedStore> &pending() const { return buf_; }
    void clearPending() { buf_.clear(); }

  private:
    SimMemory *base_;
    bool buffering_ = false;
    std::vector<BufferedStore> buf_;
};

/** Bump allocator carving regions out of a SimMemory address space. */
class SimAllocator
{
  public:
    explicit SimAllocator(Addr base = 0x10000) : next_(base) {}

    /** Allocate `bytes` with the given alignment; returns the address. */
    Addr
    alloc(uint64_t bytes, uint64_t align = 64)
    {
        next_ = (next_ + align - 1) & ~(align - 1);
        Addr a = next_;
        next_ += bytes;
        return a;
    }

    /** Allocate an array of 64-bit words. */
    Addr alloc64(uint64_t words) { return alloc(words * 8, 64); }
    /** Allocate an array of 32-bit words. */
    Addr alloc32(uint64_t words) { return alloc(words * 4, 64); }

    Addr brk() const { return next_; }

  private:
    Addr next_;
};

} // namespace pipette

#endif // PIPETTE_MEM_SIM_MEMORY_H
