/**
 * @file
 * Functional simulated memory: a sparse, paged 64-bit byte-addressable
 * address space, plus a bump allocator for laying out workload data.
 *
 * Reads of unmapped memory return zero without allocating, so wrong-path
 * (speculative) accesses with garbage addresses are always safe.
 */

#ifndef PIPETTE_MEM_SIM_MEMORY_H
#define PIPETTE_MEM_SIM_MEMORY_H

#include <cstring>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/logging.h"
#include "sim/types.h"

namespace pipette {

/** Sparse functional memory. */
class SimMemory
{
  public:
    static constexpr uint32_t PAGE_BITS = 16;
    static constexpr uint64_t PAGE_SIZE = 1ull << PAGE_BITS;

    /** Read `size` bytes (1,2,4,8) at addr, zero-extended to 64 bits. */
    uint64_t
    read(Addr addr, uint32_t size) const
    {
        // Fast path: the access stays within one page, so one page
        // lookup covers every byte (the common case by far).
        if (((addr ^ (addr + size - 1)) >> PAGE_BITS) == 0) {
            const uint8_t *p = pageFor(addr);
            if (!p)
                return 0;
            const uint8_t *b = p + (addr & (PAGE_SIZE - 1));
            uint64_t v = 0;
            for (uint32_t i = 0; i < size; i++)
                v |= static_cast<uint64_t>(b[i]) << (8 * i);
            return v;
        }
        uint64_t v = 0;
        for (uint32_t i = 0; i < size; i++) {
            const uint8_t *p = pageFor(addr + i);
            uint8_t byte = p ? p[(addr + i) & (PAGE_SIZE - 1)] : 0;
            v |= static_cast<uint64_t>(byte) << (8 * i);
        }
        return v;
    }

    /** Write the low `size` bytes of val at addr, allocating pages. */
    void
    write(Addr addr, uint32_t size, uint64_t val)
    {
        if (((addr ^ (addr + size - 1)) >> PAGE_BITS) == 0) {
            uint8_t *b = pageForAlloc(addr) + (addr & (PAGE_SIZE - 1));
            for (uint32_t i = 0; i < size; i++)
                b[i] = static_cast<uint8_t>(val >> (8 * i));
            return;
        }
        for (uint32_t i = 0; i < size; i++) {
            uint8_t *p = pageForAlloc(addr + i);
            p[(addr + i) & (PAGE_SIZE - 1)] =
                static_cast<uint8_t>(val >> (8 * i));
        }
    }

    /** Copy a host array of 64-bit words into simulated memory. */
    void
    writeArray64(Addr addr, const uint64_t *data, size_t n)
    {
        for (size_t i = 0; i < n; i++)
            write(addr + 8 * i, 8, data[i]);
    }

    /** Copy a host array of 32-bit words into simulated memory. */
    void
    writeArray32(Addr addr, const uint32_t *data, size_t n)
    {
        for (size_t i = 0; i < n; i++)
            write(addr + 4 * i, 4, data[i]);
    }

    /** Read back an array of 64-bit words. */
    std::vector<uint64_t>
    readArray64(Addr addr, size_t n) const
    {
        std::vector<uint64_t> out(n);
        for (size_t i = 0; i < n; i++)
            out[i] = read(addr + 8 * i, 8);
        return out;
    }

    /** Read back an array of 32-bit words. */
    std::vector<uint32_t>
    readArray32(Addr addr, size_t n) const
    {
        std::vector<uint32_t> out(n);
        for (size_t i = 0; i < n; i++)
            out[i] = static_cast<uint32_t>(read(addr + 4 * i, 4));
        return out;
    }

    /** Fill n bytes with a byte value. */
    void
    fill(Addr addr, size_t n, uint8_t byte)
    {
        for (size_t i = 0; i < n; i++)
            write(addr + i, 1, byte);
    }

    /** Number of mapped pages (for tests). */
    size_t mappedPages() const { return pages_.size(); }

    /**
     * Replace this memory's contents with a deep copy of another's.
     * Used by the lockstep oracle to give the golden model a private
     * snapshot of the populated address space at run start.
     */
    void
    copyFrom(const SimMemory &other)
    {
        pages_.clear();
        for (const auto &[num, page] : other.pages_) {
            auto p = std::make_unique<uint8_t[]>(PAGE_SIZE);
            std::memcpy(p.get(), page.get(), PAGE_SIZE);
            pages_.emplace(num, std::move(p));
        }
    }

  private:
    const uint8_t *
    pageFor(Addr addr) const
    {
        auto it = pages_.find(addr >> PAGE_BITS);
        return it == pages_.end() ? nullptr : it->second.get();
    }

    uint8_t *
    pageForAlloc(Addr addr)
    {
        auto &p = pages_[addr >> PAGE_BITS];
        if (!p) {
            p = std::make_unique<uint8_t[]>(PAGE_SIZE);
            std::memset(p.get(), 0, PAGE_SIZE);
        }
        return p.get();
    }

    std::unordered_map<uint64_t, std::unique_ptr<uint8_t[]>> pages_;
};

/** Bump allocator carving regions out of a SimMemory address space. */
class SimAllocator
{
  public:
    explicit SimAllocator(Addr base = 0x10000) : next_(base) {}

    /** Allocate `bytes` with the given alignment; returns the address. */
    Addr
    alloc(uint64_t bytes, uint64_t align = 64)
    {
        next_ = (next_ + align - 1) & ~(align - 1);
        Addr a = next_;
        next_ += bytes;
        return a;
    }

    /** Allocate an array of 64-bit words. */
    Addr alloc64(uint64_t words) { return alloc(words * 8, 64); }
    /** Allocate an array of 32-bit words. */
    Addr alloc32(uint64_t words) { return alloc(words * 4, 64); }

    Addr brk() const { return next_; }

  private:
    Addr next_;
};

} // namespace pipette

#endif // PIPETTE_MEM_SIM_MEMORY_H
