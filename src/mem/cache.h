/**
 * @file
 * Set-associative LRU tag array used by every cache level. Data is held
 * functionally in SimMemory; the tag arrays model timing state only
 * (presence, dirtiness, prefetched bit, and - at the shared L3 - the
 * per-core sharer mask used for coarse coherence).
 */

#ifndef PIPETTE_MEM_CACHE_H
#define PIPETTE_MEM_CACHE_H

#include <cstdint>
#include <vector>

#include "sim/config.h"
#include "sim/logging.h"
#include "sim/stats.h"
#include "sim/types.h"

namespace pipette {

/** Tag array with LRU replacement. */
class CacheArray
{
  public:
    CacheArray(const CacheConfig &cfg, uint32_t lineBytes,
               const char *name);

    struct Line
    {
        uint64_t tag = 0;
        bool valid = false;
        bool dirty = false;
        bool prefetched = false;
        uint32_t sharers = 0; ///< core bitmask (used at the L3 only)
        uint32_t owner = 0;   ///< modifying core (valid if ownerValid)
        bool ownerValid = false;
        uint64_t lruTick = 0;
    };

    /** Look up a line address; returns the line or nullptr on miss. */
    Line *lookup(uint64_t lineAddr, bool touch = true);

    /**
     * Insert a line (on fill), evicting the LRU victim. Returns true and
     * the victim line address via out-params when a dirty line was
     * evicted (writeback).
     */
    struct InsertResult
    {
        bool evictedDirty = false;
        bool evictedValid = false;
        uint64_t victimLineAddr = 0;
    };
    InsertResult insert(uint64_t lineAddr, bool dirty, bool prefetched);

    /** Invalidate a line if present; returns true if it was present. */
    bool invalidate(uint64_t lineAddr);

    uint32_t numSets() const { return numSets_; }
    const char *name() const { return name_; }

    // --- Durable-checkpoint support (src/resilience/) ----------------
    //
    // The tag array is serialized field by field (never through struct
    // padding); restore requires an array of identical geometry, which
    // the loader guarantees by rebuilding it from the same CacheConfig.

    /** Raw line state, set-major (numSets * ways entries). */
    const std::vector<Line> &rawLines() const { return lines_; }
    /** LRU clock at the snapshot. */
    uint64_t rawTick() const { return tick_; }
    /** Install previously captured line state; geometry must match. */
    void
    restoreRaw(std::vector<Line> &&lines, uint64_t tick)
    {
        panic_if(lines.size() != lines_.size(),
                 "CacheArray::restoreRaw geometry mismatch on ", name_);
        lines_ = std::move(lines);
        tick_ = tick;
    }

  private:
    uint32_t setIndex(uint64_t lineAddr) const
    {
        return static_cast<uint32_t>(lineAddr) & (numSets_ - 1);
    }

    const char *name_;
    uint32_t ways_;
    uint32_t numSets_;
    uint64_t tick_ = 0;
    std::vector<Line> lines_; // numSets_ * ways_
};

} // namespace pipette

#endif // PIPETTE_MEM_CACHE_H
