#include "mem/hierarchy.h"

#include <algorithm>

namespace pipette {

MemoryHierarchy::MemoryHierarchy(const MemConfig &cfg, uint32_t numCores,
                                 EventQueue *eq)
    : cfg_(cfg), numCores_(numCores), eq_(eq)
{
    fatal_if(numCores > 32, "sharer mask supports up to 32 cores");
    perCore_.resize(numCores);
    for (uint32_t c = 0; c < numCores; c++) {
        perCore_[c].l1 =
            std::make_unique<CacheArray>(cfg.l1d, cfg.lineBytes, "l1d");
        perCore_[c].l2 =
            std::make_unique<CacheArray>(cfg.l2, cfg.lineBytes, "l2");
        perCore_[c].l1Mshrs.capacity = cfg.l1d.mshrs;
        perCore_[c].l2Mshrs.capacity = cfg.l2.mshrs;
        if (cfg.prefetcherEnabled) {
            perCore_[c].prefetcher =
                std::make_unique<StreamPrefetcher>(cfg_, c, this);
        }
    }
    l3_ = std::make_unique<CacheArray>(cfg.l3, cfg.lineBytes, "l3");
    l3Mshrs_.capacity = cfg.l3.mshrs;
    dramChannelFree_.resize(cfg.dramChannels, 0);
}

Cycle
MemoryHierarchy::dramAccess(uint64_t lineAddr, bool isWrite, Cycle start)
{
    uint32_t ch = static_cast<uint32_t>(lineAddr) % cfg_.dramChannels;
    Cycle issue = std::max(start, dramChannelFree_[ch]);
    dramChannelFree_[ch] = issue + cfg_.dramCyclesPerReq;
    memStats_.dramQueueCycles += issue - start;
    if (isWrite) {
        memStats_.dramWrites++;
        return issue; // writes are posted
    }
    memStats_.dramReads++;
    return issue + cfg_.dramLatency;
}

Cycle
MemoryHierarchy::accessBelowL1(CoreId core, uint64_t lineAddr, bool isWrite,
                               Cycle start, bool isPrefetch)
{
    PerCore &pc = perCore_[core];

    // --- L2 ---
    pc.l2Stats.accesses++;
    Cycle l2Done = start + (cfg_.l2.latency - cfg_.l1d.latency);
    CacheArray::Line *l2line = pc.l2->lookup(lineAddr);
    if (l2line) {
        if (isWrite)
            l2line->dirty = true;
        return l2Done;
    }
    pc.l2Stats.misses++;
    Cycle l2Start = pc.l2Mshrs.admit(l2Done);

    // --- L3 (shared, inclusive, tracks sharers/owner) ---
    l3Stats_.accesses++;
    Cycle l3Done = l2Start + (cfg_.l3.latency - cfg_.l2.latency);
    CacheArray::Line *l3line = l3_->lookup(lineAddr);
    Cycle fillTime;
    if (l3line) {
        if (l3line->prefetched) {
            l3Stats_.prefetchHits++;
            l3line->prefetched = false;
        }
        fillTime = l3Done;
        // Coherence actions against remote private copies.
        if (isWrite) {
            uint32_t remote = l3line->sharers & ~(1u << core);
            if (remote) {
                for (uint32_t o = 0; o < numCores_; o++) {
                    if (remote & (1u << o)) {
                        perCore_[o].l1->invalidate(lineAddr);
                        perCore_[o].l2->invalidate(lineAddr);
                        perCore_[o].l1Stats.invalidations++;
                    }
                }
                fillTime += cfg_.coherencePenalty;
            }
            l3line->sharers = 1u << core;
            l3line->owner = core;
            l3line->ownerValid = true;
            l3line->dirty = true;
        } else {
            if (l3line->ownerValid && l3line->owner != core) {
                fillTime += cfg_.coherencePenalty; // remote forward
                l3line->ownerValid = false;
            }
            l3line->sharers |= 1u << core;
        }
    } else {
        l3Stats_.misses++;
        Cycle l3Start = l3Mshrs_.admit(l3Done);
        fillTime = dramAccess(lineAddr, false, l3Start);
        l3Mshrs_.track(fillTime);
        auto ins = l3_->insert(lineAddr, isWrite, isPrefetch);
        if (ins.evictedDirty) {
            l3Stats_.writebacks++;
            dramAccess(ins.victimLineAddr, true, fillTime);
        }
        if (ins.evictedValid) {
            // Inclusive L3: back-invalidate private copies of the victim.
            for (uint32_t o = 0; o < numCores_; o++) {
                perCore_[o].l1->invalidate(ins.victimLineAddr);
                perCore_[o].l2->invalidate(ins.victimLineAddr);
            }
        }
        CacheArray::Line *nl = l3_->lookup(lineAddr, false);
        nl->sharers = 1u << core;
        nl->ownerValid = isWrite;
        nl->owner = core;
    }

    pc.l2Mshrs.track(fillTime);
    auto l2ins = pc.l2->insert(lineAddr, isWrite, isPrefetch);
    if (l2ins.evictedDirty)
        pc.l2Stats.writebacks++;
    return fillTime;
}

Cycle
MemoryHierarchy::access(CoreId core, Addr addr, bool isWrite, Cycle now,
                        Callback cb)
{
    if (epochMode_) {
        Cycle done = accessEpoch(core, addr, isWrite, now, cb);
        if (done == PENDING)
            return PENDING; // cb was captured by the deferred op
        if (cb)
            coreEqs_[core]->schedule(done, std::move(cb));
        return done;
    }
    Cycle done = accessNow(core, addr, isWrite, now);
    if (cb)
        eq_->schedule(done, std::move(cb));
    return done;
}

Cycle
MemoryHierarchy::accessNow(CoreId core, Addr addr, bool isWrite, Cycle now)
{
    PerCore &pc = perCore_[core];
    uint64_t lineAddr = addr / cfg_.lineBytes;

    pc.l1Stats.accesses++;
    Cycle done;
    CacheArray::Line *l1line = pc.l1->lookup(lineAddr);
    bool wasMiss = l1line == nullptr;
    if (l1line) {
        if (l1line->prefetched) {
            pc.l1Stats.prefetchHits++;
            l1line->prefetched = false;
        }
        if (isWrite)
            l1line->dirty = true;
        done = now + cfg_.l1d.latency;
        // A "hit" on a line whose fill is still in flight completes no
        // earlier than the fill.
        Cycle fill = pc.inflightLines.lookup(lineAddr);
        if (fill > done)
            done = fill;
        // A write to a line not exclusively owned must still reach the
        // L3 directory; approximate by an async ownership probe.
        if (isWrite) {
            CacheArray::Line *l3line = l3_->lookup(lineAddr, false);
            if (l3line && (l3line->sharers & ~(1u << core))) {
                for (uint32_t o = 0; o < numCores_; o++) {
                    if (o != core && (l3line->sharers & (1u << o))) {
                        perCore_[o].l1->invalidate(lineAddr);
                        perCore_[o].l2->invalidate(lineAddr);
                        perCore_[o].l1Stats.invalidations++;
                    }
                }
                l3line->sharers = 1u << core;
                l3line->owner = core;
                l3line->ownerValid = true;
                done += cfg_.coherencePenalty;
            }
        }
    } else {
        pc.l1Stats.misses++;
        Cycle fill = pc.inflightLines.lookup(lineAddr);
        if (fill > now) {
            // Coalesce with the in-flight miss to the same line.
            done = fill;
        } else {
            Cycle start = pc.l1Mshrs.admit(now + cfg_.l1d.latency);
            done = accessBelowL1(core, lineAddr, isWrite, start, false);
            pc.l1Mshrs.track(done);
            pc.inflightLines.insert(lineAddr, done, now);
            auto ins = pc.l1->insert(lineAddr, isWrite, false);
            if (ins.evictedDirty)
                pc.l1Stats.writebacks++;
        }
    }

    if (pc.prefetcher)
        pc.prefetcher->observe(lineAddr, wasMiss, now);

    return done;
}

Cycle
MemoryHierarchy::accessEpoch(CoreId core, Addr addr, bool isWrite,
                             Cycle now, Callback &cb)
{
    PerCore &pc = perCore_[core];
    uint64_t lineAddr = addr / cfg_.lineBytes;

    pc.l1Stats.accesses++;
    Cycle done;
    CacheArray::Line *l1line = pc.l1->lookup(lineAddr);
    bool wasMiss = l1line == nullptr;
    if (l1line) {
        if (l1line->prefetched) {
            pc.l1Stats.prefetchHits++;
            l1line->prefetched = false;
        }
        if (isWrite)
            l1line->dirty = true;
        Cycle penalty = 0;
        if (isWrite) {
            // The penalty is decided against the frozen (start-of-
            // epoch) L3 image; the directory mutation itself replays
            // at the edge in deterministic order.
            penalty = writeProbePenalty(core, lineAddr);
            if (penalty) {
                pc.epochOps.push_back({DeferredOp::Kind::Probe, true,
                                       false, now, pc.epochSeq++,
                                       lineAddr, 0, Callback()});
            }
        }
        Cycle fill = pc.inflightLines.lookup(lineAddr);
        if (fill == PENDING) {
            // Completion depends on a miss deferred to the edge.
            pc.epochOps.push_back({DeferredOp::Kind::Waiter, isWrite,
                                   true, now, pc.epochSeq++, lineAddr,
                                   penalty, std::move(cb)});
            done = PENDING;
        } else {
            done = now + cfg_.l1d.latency;
            // A "hit" on a line whose fill is still in flight
            // completes no earlier than the fill.
            if (fill > done)
                done = fill;
            done += penalty;
        }
    } else {
        pc.l1Stats.misses++;
        Cycle fill = pc.inflightLines.lookup(lineAddr);
        if (fill == PENDING) {
            // Coalesce with a miss deferred earlier this epoch.
            pc.epochOps.push_back({DeferredOp::Kind::Waiter, isWrite,
                                   false, now, pc.epochSeq++, lineAddr,
                                   0, std::move(cb)});
            done = PENDING;
        } else if (fill > now) {
            // Coalesce with an already-resolved in-flight miss.
            done = fill;
        } else {
            // New miss: L1 bookkeeping now, the shared L2-miss/L3/DRAM
            // path at the edge.
            pc.epochOps.push_back({DeferredOp::Kind::Miss, isWrite,
                                   false, now, pc.epochSeq++, lineAddr,
                                   0, std::move(cb)});
            pc.inflightLines.insert(lineAddr, PENDING, now);
            auto ins = pc.l1->insert(lineAddr, isWrite, false);
            if (ins.evictedDirty)
                pc.l1Stats.writebacks++;
            done = PENDING;
        }
    }

    if (pc.prefetcher)
        pc.prefetcher->observe(lineAddr, wasMiss, now);
    return done;
}

Cycle
MemoryHierarchy::writeProbePenalty(CoreId core, uint64_t lineAddr) const
{
    // Read-only probe (touch=false, no LRU update) of the L3, which is
    // frozen during phases, so concurrent probes from other cores'
    // phases are host-race-free.
    const CacheArray::Line *l3line = l3_->lookup(lineAddr, false);
    if (l3line && (l3line->sharers & ~(1u << core)))
        return cfg_.coherencePenalty;
    return 0;
}

void
MemoryHierarchy::setEpochMode(std::vector<EventQueue *> eqs)
{
    fatal_if(eqs.size() != numCores_,
             "epoch mode needs one event queue per core");
    epochMode_ = true;
    coreEqs_ = std::move(eqs);
}

bool
MemoryHierarchy::epochOpsPending() const
{
    for (const PerCore &pc : perCore_)
        if (!pc.epochOps.empty())
            return true;
    return false;
}

void
MemoryHierarchy::flushEpochEdge(Cycle edge)
{
    // Deterministic global replay order: (issue cycle, core id,
    // per-core sequence). Each core's vector is already sorted by
    // (issue, seq) -- ops are appended in phase order -- so a k-way
    // merge over the per-core vectors realizes the global order.
    std::vector<size_t> pos(numCores_, 0);
    while (true) {
        int best = -1;
        for (uint32_t c = 0; c < numCores_; c++) {
            if (pos[c] >= perCore_[c].epochOps.size())
                continue;
            if (best < 0 ||
                perCore_[c].epochOps[pos[c]].issue <
                    perCore_[best].epochOps[pos[best]].issue) {
                best = static_cast<int>(c);
            }
        }
        if (best < 0)
            break;
        CoreId core = static_cast<CoreId>(best);
        PerCore &pc = perCore_[core];
        DeferredOp &op = pc.epochOps[pos[best]++];
        switch (op.kind) {
          case DeferredOp::Kind::Miss: {
            Cycle start = pc.l1Mshrs.admit(op.issue + cfg_.l1d.latency);
            Cycle done =
                accessBelowL1(core, op.line, op.isWrite, start, false);
            pc.l1Mshrs.track(done);
            pc.inflightLines.insert(op.line, done, edge);
            if (op.cb) {
                coreEqs_[core]->schedule(std::max(done, edge),
                                         std::move(op.cb));
            }
            break;
          }
          case DeferredOp::Kind::Prefetch: {
            Cycle start = pc.l1Mshrs.admit(op.issue + cfg_.l1d.latency);
            Cycle done = accessBelowL1(core, op.line, false, start, true);
            pc.l1Mshrs.track(done);
            pc.inflightLines.insert(op.line, done, edge);
            break;
          }
          case DeferredOp::Kind::Waiter: {
            // The miss (or prefetch) that made this line PENDING is
            // from the same core with a lower (issue, seq), so it has
            // already replayed and patched the completion time.
            Cycle fill = pc.inflightLines.lookup(op.line);
            panic_if(fill == 0 || fill == PENDING,
                     "epoch waiter with unresolved fill for line ",
                     op.line);
            Cycle done =
                op.isHit
                    ? std::max(op.issue + cfg_.l1d.latency, fill) +
                          op.extra
                    : fill;
            if (op.cb) {
                coreEqs_[core]->schedule(std::max(done, edge),
                                         std::move(op.cb));
            }
            break;
          }
          case DeferredOp::Kind::Probe: {
            CacheArray::Line *l3line = l3_->lookup(op.line, false);
            if (l3line && (l3line->sharers & ~(1u << core))) {
                for (uint32_t o = 0; o < numCores_; o++) {
                    if (o != core && (l3line->sharers & (1u << o))) {
                        perCore_[o].l1->invalidate(op.line);
                        perCore_[o].l2->invalidate(op.line);
                        perCore_[o].l1Stats.invalidations++;
                    }
                }
                l3line->sharers = 1u << core;
                l3line->owner = core;
                l3line->ownerValid = true;
            }
            break;
          }
        }
    }
    for (uint32_t c = 0; c < numCores_; c++) {
        perCore_[c].epochOps.clear();
        perCore_[c].epochSeq = 0;
    }
}

Cycle
MemoryHierarchy::accessAtEdge(CoreId core, Addr addr, bool isWrite,
                              Cycle issue, Cycle edge, Callback cb)
{
    // Runs serially at an epoch edge, after flushEpochEdge(): no
    // PENDING lines remain, so the full legacy path is safe.
    Cycle done = accessNow(core, addr, isWrite, issue);
    done = std::max(done, edge);
    if (cb)
        coreEqs_[core]->schedule(done, std::move(cb));
    return done;
}

void
MemoryHierarchy::prefetchLine(CoreId core, uint64_t lineAddr, Cycle now)
{
    PerCore &pc = perCore_[core];
    if (pc.l1->lookup(lineAddr, false))
        return;
    if (pc.inflightLines.lookup(lineAddr) > now)
        return; // in flight (or PENDING on a deferred miss)
    pc.l1Stats.prefetches++;
    if (epochMode_) {
        pc.epochOps.push_back({DeferredOp::Kind::Prefetch, false, false,
                               now, pc.epochSeq++, lineAddr, 0,
                               Callback()});
        pc.inflightLines.insert(lineAddr, PENDING, now);
        auto ins = pc.l1->insert(lineAddr, false, true);
        if (ins.evictedDirty)
            pc.l1Stats.writebacks++;
        return;
    }
    Cycle start = pc.l1Mshrs.admit(now + cfg_.l1d.latency);
    Cycle done = accessBelowL1(core, lineAddr, false, start, true);
    pc.l1Mshrs.track(done);
    pc.inflightLines.insert(lineAddr, done, now);
    auto ins = pc.l1->insert(lineAddr, false, true);
    if (ins.evictedDirty)
        pc.l1Stats.writebacks++;
}

void
MemoryHierarchy::dumpStats(std::map<std::string, double> &out) const
{
    for (uint32_t c = 0; c < numCores_; c++) {
        std::string p = "core" + std::to_string(c);
        perCore_[c].l1Stats.dump(p + ".l1d", out);
        perCore_[c].l2Stats.dump(p + ".l2", out);
    }
    l3Stats_.dump("l3", out);
    memStats_.dump("mem", out);
}

StreamPrefetcher::StreamPrefetcher(const MemConfig &cfg, CoreId core,
                                   MemoryHierarchy *hier)
    : cfg_(cfg), core_(core), hier_(hier)
{
    streams_.resize(cfg.pfStreams);
}

void
StreamPrefetcher::observe(uint64_t lineAddr, bool wasMiss, Cycle now)
{
    // Advance a matching stream.
    for (Stream &s : streams_) {
        if (!s.valid)
            continue;
        if (lineAddr == s.lastLine + static_cast<uint64_t>(s.stride)) {
            s.lastLine = lineAddr;
            s.confidence++;
            s.lruTick = ++tick_;
            if (s.confidence >= 2) {
                for (uint32_t k = 1; k <= cfg_.pfDegree; k++) {
                    hier_->prefetchLine(
                        core_,
                        lineAddr + static_cast<uint64_t>(s.stride) * k, now);
                }
            }
            return;
        }
        if (lineAddr == s.lastLine)
            return; // repeated access, not a new stream
    }
    if (!wasMiss)
        return;
    // Allocate a new stream on a miss (try ascending by default; a
    // second miss one line below flips it to descending).
    Stream *victim = &streams_[0];
    for (Stream &s : streams_) {
        if (!s.valid) {
            victim = &s;
            break;
        }
        if (s.lruTick < victim->lruTick)
            victim = &s;
    }
    // Detect direction against existing entries' anchor points.
    int64_t stride = 1;
    for (Stream &s : streams_) {
        if (s.valid && lineAddr + 1 == s.lastLine) {
            stride = -1;
            break;
        }
    }
    victim->valid = true;
    victim->lastLine = lineAddr;
    victim->stride = stride;
    victim->confidence = 0;
    victim->lruTick = ++tick_;
}

} // namespace pipette
