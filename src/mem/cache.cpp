#include "mem/cache.h"

namespace pipette {

namespace {
uint32_t
floorPow2(uint32_t x)
{
    uint32_t p = 1;
    while (p * 2 <= x)
        p *= 2;
    return p;
}
} // namespace

CacheArray::CacheArray(const CacheConfig &cfg, uint32_t lineBytes,
                       const char *name)
    : name_(name), ways_(cfg.ways)
{
    uint32_t lines = cfg.sizeBytes / lineBytes;
    fatal_if(lines < ways_, "cache ", name, " smaller than one set");
    numSets_ = floorPow2(lines / ways_);
    lines_.resize(static_cast<size_t>(numSets_) * ways_);
}

CacheArray::Line *
CacheArray::lookup(uint64_t lineAddr, bool touch)
{
    uint32_t set = setIndex(lineAddr);
    Line *base = &lines_[static_cast<size_t>(set) * ways_];
    for (uint32_t w = 0; w < ways_; w++) {
        if (base[w].valid && base[w].tag == lineAddr) {
            if (touch)
                base[w].lruTick = ++tick_;
            return &base[w];
        }
    }
    return nullptr;
}

CacheArray::InsertResult
CacheArray::insert(uint64_t lineAddr, bool dirty, bool prefetched)
{
    uint32_t set = setIndex(lineAddr);
    Line *base = &lines_[static_cast<size_t>(set) * ways_];
    Line *victim = &base[0];
    for (uint32_t w = 0; w < ways_; w++) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (base[w].lruTick < victim->lruTick)
            victim = &base[w];
    }
    InsertResult res;
    res.evictedValid = victim->valid;
    res.evictedDirty = victim->valid && victim->dirty;
    res.victimLineAddr = victim->tag;
    victim->tag = lineAddr;
    victim->valid = true;
    victim->dirty = dirty;
    victim->prefetched = prefetched;
    victim->sharers = 0;
    victim->ownerValid = false;
    victim->lruTick = ++tick_;
    return res;
}

bool
CacheArray::invalidate(uint64_t lineAddr)
{
    Line *l = lookup(lineAddr, false);
    if (!l)
        return false;
    l->valid = false;
    return true;
}

} // namespace pipette
