/**
 * @file
 * Timing model of the memory hierarchy: per-core L1D and L2, shared L3,
 * and DRAM with per-channel bandwidth. Latencies are computed at request
 * time (instant-fill tag updates) with MSHR occupancy modeled via the
 * completion times of in-flight misses; completions are delivered
 * through the global event queue.
 *
 * Coherence is modeled coarsely: the inclusive L3 tracks a sharer mask
 * and a modifying owner per line; writes invalidate remote private
 * copies and reads of remotely-modified lines pay a forward penalty.
 */

#ifndef PIPETTE_MEM_HIERARCHY_H
#define PIPETTE_MEM_HIERARCHY_H

#include <functional>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "mem/cache.h"
#include "mem/prefetcher.h"
#include "sim/config.h"
#include "sim/event_queue.h"
#include "sim/stats.h"

namespace pipette {

/** The full cache + DRAM timing model. */
class MemoryHierarchy
{
  public:
    using Callback = std::function<void()>;

    MemoryHierarchy(const MemConfig &cfg, uint32_t numCores,
                    EventQueue *eq);

    /**
     * Issue a demand access. The callback (may be null for stores) is
     * scheduled on the event queue at the completion cycle; the
     * completion cycle is also returned for bookkeeping.
     */
    Cycle access(CoreId core, Addr addr, bool isWrite, Cycle now,
                 Callback cb);

    /** L1D hit latency (fast path known statically). */
    uint32_t l1Latency() const { return cfg_.l1d.latency; }

    const CacheStats &l1Stats(CoreId c) const { return perCore_[c].l1Stats; }
    const CacheStats &l2Stats(CoreId c) const { return perCore_[c].l2Stats; }
    const CacheStats &l3Stats() const { return l3Stats_; }
    const MemStats &memStats() const { return memStats_; }

    void dumpStats(std::map<std::string, double> &out) const;

  private:
    friend class StreamPrefetcher;

    struct MshrPool
    {
        uint32_t capacity;
        uint64_t full = 0; // stat
        // Completion times of in-flight misses.
        std::priority_queue<Cycle, std::vector<Cycle>, std::greater<>>
            inflight;

        /** Earliest cycle >= now at which a new miss can start. */
        Cycle
        admit(Cycle now)
        {
            while (!inflight.empty() && inflight.top() <= now)
                inflight.pop();
            if (inflight.size() < capacity)
                return now;
            full++;
            return inflight.top();
        }

        void track(Cycle done) { inflight.push(done); }
    };

    struct PerCore
    {
        std::unique_ptr<CacheArray> l1;
        std::unique_ptr<CacheArray> l2;
        MshrPool l1Mshrs;
        MshrPool l2Mshrs;
        CacheStats l1Stats;
        CacheStats l2Stats;
        // Coalescing: completion time of in-flight L1 misses per line.
        std::unordered_map<uint64_t, Cycle> inflightLines;
        std::unique_ptr<StreamPrefetcher> prefetcher;
    };

    /** Timing of the path below the L1 (L2 -> L3 -> DRAM). */
    Cycle accessBelowL1(CoreId core, uint64_t lineAddr, bool isWrite,
                        Cycle start, bool isPrefetch);
    /** DRAM service: returns completion cycle. */
    Cycle dramAccess(uint64_t lineAddr, bool isWrite, Cycle start);
    /** Issue a hardware prefetch of a line into the given core's L1. */
    void prefetchLine(CoreId core, uint64_t lineAddr, Cycle now);

    const MemConfig cfg_;
    uint32_t numCores_;
    EventQueue *eq_;
    std::vector<PerCore> perCore_;
    std::unique_ptr<CacheArray> l3_;
    MshrPool l3Mshrs_;
    CacheStats l3Stats_;
    MemStats memStats_;
    std::vector<Cycle> dramChannelFree_;
};

} // namespace pipette

#endif // PIPETTE_MEM_HIERARCHY_H
