/**
 * @file
 * Timing model of the memory hierarchy: per-core L1D and L2, shared L3,
 * and DRAM with per-channel bandwidth. Latencies are computed at request
 * time (instant-fill tag updates) with MSHR occupancy modeled via the
 * completion times of in-flight misses; completions are delivered
 * through the global event queue.
 *
 * Coherence is modeled coarsely: the inclusive L3 tracks a sharer mask
 * and a modifying owner per line; writes invalidate remote private
 * copies and reads of remotely-modified lines pay a forward penalty.
 */

#ifndef PIPETTE_MEM_HIERARCHY_H
#define PIPETTE_MEM_HIERARCHY_H

#include <memory>
#include <queue>
#include <vector>

#include "mem/cache.h"
#include "mem/prefetcher.h"
#include "sim/config.h"
#include "sim/event_queue.h"
#include "sim/stats.h"

namespace pipette {

/**
 * Open-addressing map from line address to the completion cycle of the
 * in-flight miss to that line, with preallocated storage. Every reader
 * compares the stored cycle against `now`, so an expired entry
 * (completion <= now) is semantically absent; insertion therefore
 * reuses expired slots in place of tombstones, and the periodic
 * in-place rebuild drops them outright. The node-per-miss churn of the
 * std::unordered_map this replaces was one of the last heap-allocation
 * sources in the simulation hot loop.
 *
 * A slot with val == 0 is empty (completion cycles are always > now at
 * insertion time, hence nonzero).
 */
class InflightLineMap
{
  public:
    InflightLineMap() : slots_(INITIAL_SLOTS), spare_(INITIAL_SLOTS) {}

    /** Completion cycle recorded for the line, or 0 if none. Callers
     *  must compare against now/done; expired entries may linger. */
    Cycle
    lookup(uint64_t key) const
    {
        uint64_t i = indexOf(key);
        while (slots_[i].val != 0) {
            if (slots_[i].key == key)
                return slots_[i].val;
            i = (i + 1) & (slots_.size() - 1);
        }
        return 0;
    }

    /** Record (or refresh) the line's completion cycle `val` (> now). */
    void
    insert(uint64_t key, Cycle val, Cycle now)
    {
        uint64_t mask = slots_.size() - 1;
        uint64_t i = indexOf(key);
        uint64_t reuse = NO_SLOT;
        while (slots_[i].val != 0) {
            if (slots_[i].key == key) {
                slots_[i].val = val;
                return;
            }
            // Remember the first expired slot on the probe chain; it
            // can hold the new entry without breaking later chains
            // (the slot stays non-empty, so probing continues past it).
            if (reuse == NO_SLOT && slots_[i].val <= now)
                reuse = i;
            i = (i + 1) & mask;
        }
        if (reuse != NO_SLOT)
            i = reuse;
        else
            used_++;
        slots_[i] = Slot{key, val};
        if (used_ * 8 > slots_.size() * 5)
            rebuild(now);
    }

  private:
    struct Slot
    {
        uint64_t key = 0;
        Cycle val = 0; ///< 0 = empty slot
    };

    static constexpr size_t INITIAL_SLOTS = 8192; ///< power of two
    static constexpr uint64_t NO_SLOT = ~0ull;

    uint64_t
    indexOf(uint64_t key) const
    {
        // Fibonacci mixing: line addresses are near-sequential.
        return (key * 0x9E3779B97F4A7C15ull) >> shift_;
    }

    /** Repack live entries into the spare buffer and swap. Runs every
     *  ~used_/2 insertions at most; no allocation unless the table is
     *  genuinely full of unexpired entries (bounded by the number of
     *  misses in flight, far below INITIAL_SLOTS in practice). */
    void
    rebuild(Cycle now)
    {
        if (used_ * 4 > slots_.size() * 3) {
            // Pathological: mostly-live table. Grow both buffers.
            slots_.resize(slots_.size() * 2);
            spare_.resize(spare_.size() * 2);
            shift_--;
        }
        std::swap(slots_, spare_);
        for (Slot &s : slots_)
            s.val = 0;
        used_ = 0;
        uint64_t mask = slots_.size() - 1;
        for (const Slot &s : spare_) {
            if (s.val <= now)
                continue; // empty or expired
            uint64_t i = indexOf(s.key);
            while (slots_[i].val != 0)
                i = (i + 1) & mask;
            slots_[i] = s;
            used_++;
        }
    }

    std::vector<Slot> slots_;
    std::vector<Slot> spare_; ///< scratch for allocation-free rebuilds
    size_t used_ = 0;         ///< non-empty slots (live or expired)
    uint32_t shift_ = 64 - 13; ///< 64 - log2(slots_.size())
};

/** The full cache + DRAM timing model. */
class MemoryHierarchy
{
  public:
    /** Completion callback; inline storage, so scheduling is alloc-free. */
    using Callback = EventQueue::Callback;

    /**
     * Sentinel returned by access() in epoch mode when the completion
     * cycle is not knowable until the epoch edge (the access misses in
     * the private L1 or depends on a deferred miss). The callback still
     * fires -- at the edge-resolved completion cycle -- so callers that
     * need the real cycle read it there.
     */
    static constexpr Cycle PENDING = ~0ull;

    MemoryHierarchy(const MemConfig &cfg, uint32_t numCores,
                    EventQueue *eq);

    /**
     * Issue a demand access. The callback (may be null for stores) is
     * scheduled on the event queue at the completion cycle; the
     * completion cycle is also returned for bookkeeping. In epoch mode
     * anything that would touch shared state (L2 miss path, L3,
     * coherence mutations) is deferred to the next epoch edge and
     * PENDING is returned; private-L1 hits on resolved lines complete
     * inline exactly as in legacy mode.
     */
    Cycle access(CoreId core, Addr addr, bool isWrite, Cycle now,
                 Callback cb);

    /**
     * Switch to epoch-barrier mode: phase-time access() calls touch
     * only the calling core's private state, all shared-state effects
     * replay serially in flushEpochEdge(), and callbacks are scheduled
     * on that core's own event queue. `eqs` must have one queue per
     * core.
     */
    void setEpochMode(std::vector<EventQueue *> eqs);

    /**
     * Replay every deferred access of the ending epoch against the
     * shared L2-miss/L3/DRAM path, in the deterministic global order
     * (issue cycle, core id, per-core sequence). Patches in-flight
     * line completions and schedules the deferred callbacks at
     * max(completion, edge).
     */
    void flushEpochEdge(Cycle edge);

    /**
     * Run one access through the full legacy (serial) path at an epoch
     * edge -- used for replaying deferred atomics after
     * flushEpochEdge(), when no PENDING lines remain. The callback is
     * scheduled on the core's event queue at max(completion, edge).
     */
    Cycle accessAtEdge(CoreId core, Addr addr, bool isWrite, Cycle issue,
                       Cycle edge, Callback cb);

    /** Any deferred operations not yet replayed? (drain loop) */
    bool epochOpsPending() const;

    /** L1D hit latency (fast path known statically). */
    uint32_t l1Latency() const { return cfg_.l1d.latency; }

    const CacheStats &l1Stats(CoreId c) const { return perCore_[c].l1Stats; }
    const CacheStats &l2Stats(CoreId c) const { return perCore_[c].l2Stats; }

    /**
     * Direct tag-array access for the sampling scheduler: warmed cache
     * state is installed into a window System by whole-array assignment
     * before detailed execution starts. Not for use mid-run.
     */
    CacheArray &l1Array(CoreId c) { return *perCore_[c].l1; }
    CacheArray &l2Array(CoreId c) { return *perCore_[c].l2; }
    CacheArray &l3Array() { return *l3_; }
    /** Null when the prefetcher is disabled by config. */
    StreamPrefetcher *
    prefetcherFor(CoreId c)
    {
        return perCore_[c].prefetcher.get();
    }
    const CacheStats &l3Stats() const { return l3Stats_; }
    const MemStats &memStats() const { return memStats_; }

    void dumpStats(std::map<std::string, double> &out) const;

  private:
    friend class StreamPrefetcher;

    struct MshrPool
    {
        uint32_t capacity;
        uint64_t full = 0; // stat
        // Completion times of in-flight misses.
        std::priority_queue<Cycle, std::vector<Cycle>, std::greater<>>
            inflight;

        /** Earliest cycle >= now at which a new miss can start. */
        Cycle
        admit(Cycle now)
        {
            while (!inflight.empty() && inflight.top() <= now)
                inflight.pop();
            if (inflight.size() < capacity)
                return now;
            full++;
            return inflight.top();
        }

        void track(Cycle done) { inflight.push(done); }
    };

    /**
     * One phase-time access whose shared-state effects were deferred
     * to the epoch edge. Appended in phase order, so each core's
     * vector is already sorted by (issue, seq).
     */
    struct DeferredOp
    {
        enum class Kind : uint8_t
        {
            Miss,     ///< new L1 miss: run accessBelowL1 at the edge
            Waiter,   ///< completion coalesced onto a deferred miss
            Probe,    ///< write-hit ownership upgrade in the L3
            Prefetch, ///< prefetch miss: like Miss, no callback
        };
        Kind kind;
        bool isWrite = false;
        /** Waiter: L1 hit (adds the hit latency floor) vs coalesced
         *  miss (completes exactly at the resolved fill). */
        bool isHit = false;
        Cycle issue;
        uint64_t seq;
        uint64_t line;
        /** Waiter: extra latency (write coherence penalty) on top of
         *  the resolved fill time. */
        Cycle extra = 0;
        Callback cb;
    };

    struct PerCore
    {
        std::unique_ptr<CacheArray> l1;
        std::unique_ptr<CacheArray> l2;
        MshrPool l1Mshrs;
        MshrPool l2Mshrs;
        CacheStats l1Stats;
        CacheStats l2Stats;
        // Coalescing: completion time of in-flight L1 misses per line.
        InflightLineMap inflightLines;
        std::unique_ptr<StreamPrefetcher> prefetcher;
        // Epoch mode: this core's deferred shared-state operations.
        std::vector<DeferredOp> epochOps;
        uint64_t epochSeq = 0;
    };

    /** Timing of the path below the L1 (L2 -> L3 -> DRAM). */
    Cycle accessBelowL1(CoreId core, uint64_t lineAddr, bool isWrite,
                        Cycle start, bool isPrefetch);
    /** DRAM service: returns completion cycle. */
    Cycle dramAccess(uint64_t lineAddr, bool isWrite, Cycle start);
    /** Issue a hardware prefetch of a line into the given core's L1. */
    void prefetchLine(CoreId core, uint64_t lineAddr, Cycle now);
    /** The legacy serial access body (no callback scheduling). */
    Cycle accessNow(CoreId core, Addr addr, bool isWrite, Cycle now);
    /** Epoch-mode phase-time access body (may defer and return PENDING). */
    Cycle accessEpoch(CoreId core, Addr addr, bool isWrite, Cycle now,
                      Callback &cb);
    /** Coherence penalty a write hit would pay, from the frozen L3. */
    Cycle writeProbePenalty(CoreId core, uint64_t lineAddr) const;

    /** Event queue completions for this core are delivered on. */
    EventQueue *
    coreEq(CoreId core) const
    {
        return epochMode_ ? coreEqs_[core] : eq_;
    }

    const MemConfig cfg_;
    uint32_t numCores_;
    EventQueue *eq_;
    std::vector<PerCore> perCore_;
    std::unique_ptr<CacheArray> l3_;
    MshrPool l3Mshrs_;
    CacheStats l3Stats_;
    MemStats memStats_;
    std::vector<Cycle> dramChannelFree_;
    bool epochMode_ = false;
    std::vector<EventQueue *> coreEqs_;
};

} // namespace pipette

#endif // PIPETTE_MEM_HIERARCHY_H
