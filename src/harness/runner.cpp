#include "harness/runner.h"

#include <chrono>
#include <cmath>

#include "sim/logging.h"

namespace pipette {

RunResult
Runner::run(WorkloadBase &wl, Variant v, const std::string &inputName,
            uint32_t numCores)
{
    auto hostStart = std::chrono::steady_clock::now();
    RunResult r;
    r.workload = wl.name();
    r.input = inputName;
    r.variant = v;
    r.numCores = numCores;

    // While this scope is alive, fatal() (bad config, bad input)
    // throws instead of exiting, so one broken cell in a sweep is
    // isolated into a structured result instead of killing every
    // sibling run.
    FatalThrowScope throwScope;
    try {
        runInner(wl, v, inputName, numCores, r);
    } catch (const resilience::SimException &e) {
        r.error = e.error();
        r.diagnosis = e.what();
        r.verified = false;
        warn(wl.name(), "/", variantName(v), " on ", inputName, ": ",
             resilience::simErrorName(r.error), ": ", e.what());
    }
    r.hostSeconds = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - hostStart)
                        .count();
    return r;
}

void
Runner::runInner(WorkloadBase &wl, Variant v,
                 const std::string &inputName, uint32_t numCores,
                 RunResult &r)
{
    SystemConfig cfg = base_;
    cfg.numCores = numCores;
    System sys(cfg);
    BuildContext ctx(&sys);
    {
        hostprof::ScopedPhase hp(hostprof::Phase::Build);
        wl.build(ctx, v);
        sys.configure(ctx.spec);
    }
    System::RunResult res;
    {
        hostprof::ScopedPhase hp(hostprof::Phase::DetailedSim);
        res = sys.run();
    }

    r.finished = res.finished;
    r.stopReason = res.stopReason;
    r.diagnosis = res.diagnosis;
    r.cycles = res.cycles;
    r.instrs = res.instrs;
    r.ipc = res.cycles ? static_cast<double>(res.instrs) / res.cycles : 0;
    // Map guardrail / drain stops onto the error taxonomy so callers
    // (and process exit codes) can distinguish simulator bugs from
    // user error or a cooperative interrupt.
    switch (res.stopReason) {
      case System::StopReason::WatchdogDeadlock:
      case System::StopReason::OracleDivergence:
      case System::StopReason::InvariantViolation:
        r.error = resilience::SimError::InternalInvariant;
        break;
      case System::StopReason::Interrupted:
        r.error = resilience::SimError::Interrupted;
        break;
      default:
        break;
    }
    {
        hostprof::ScopedPhase hp(hostprof::Phase::Verify);
        r.verified = res.finished && wl.verify(sys);
    }
    if (!r.verified) {
        if (res.finished) {
            warn(wl.name(), "/", variantName(v), " on ", inputName,
                 ": verification failed (result mismatch)");
        } else {
            warn(wl.name(), "/", variantName(v), " on ", inputName,
                 ": stopped early: ",
                 System::stopReasonName(res.stopReason));
            if (!res.diagnosis.empty())
                warn("diagnosis:\n", res.diagnosis);
        }
    }
    r.epochAutoInline = sys.epochAutoInline();
    r.epochLength = sys.epochLength();
    if (hostprof::enabled())
        r.hostEpoch = hostprof::summarizeEpoch(sys.epochTelemetry());
    r.agg = sys.aggregateCoreStats();
    double tot = 0;
    for (size_t i = 0; i < NUM_CPI_BUCKETS; i++)
        tot += static_cast<double>(r.agg.cpiCycles[i]);
    for (size_t i = 0; i < NUM_CPI_BUCKETS; i++) {
        r.cpiFrac[i] =
            tot ? static_cast<double>(r.agg.cpiCycles[i]) / tot : 0;
    }
    r.energy = computeEnergy(sys);
    const ObservabilityConfig &ocfg = cfg.observability;
    if (ocfg.enabled()) {
        // The System wrote the trace files at the terminal stop; tell
        // the user where they landed.
        if (ocfg.perfetto && !ocfg.perfettoPath.empty()) {
            inform(wl.name(), "/", variantName(v),
                   ": Perfetto trace written to ", ocfg.perfettoPath,
                   " (open in ui.perfetto.dev)");
        }
        if (ocfg.pipeview && !ocfg.pipeviewPath.empty()) {
            inform(wl.name(), "/", variantName(v),
                   ": O3PipeView trace written to ", ocfg.pipeviewPath,
                   " (open in Konata)");
        }
        if (ocfg.sampleInterval && !ocfg.sampleCsvPath.empty()) {
            inform(wl.name(), "/", variantName(v),
                   ": interval samples written to ", ocfg.sampleCsvPath);
        }
    }
}

std::string
runStatus(const RunResult &r)
{
    if (r.verified)
        return "yes";
    if (r.finished)
        return "NO (result mismatch)";
    // Errors caught before/without a System run (a fatal() during
    // build, a worker fault) have no stop reason; name the taxonomy
    // class instead.
    if (r.stopReason == System::StopReason::None &&
        r.error != resilience::SimError::None) {
        return std::string("NO (") + resilience::simErrorName(r.error) +
               ")";
    }
    return std::string("NO (") + System::stopReasonName(r.stopReason) +
           ")";
}

double
gmean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double acc = 0;
    for (double x : xs)
        acc += std::log(x);
    return std::exp(acc / static_cast<double>(xs.size()));
}

} // namespace pipette
