/**
 * @file
 * Event-count energy model standing in for the paper's McPAT + DDR3L
 * flow (Sec. V-A). Energies are in arbitrary units chosen to match
 * 22 nm relative costs; every figure reports values normalized to the
 * data-parallel baseline, so only the ratios matter (see DESIGN.md's
 * substitution table).
 */

#ifndef PIPETTE_HARNESS_ENERGY_H
#define PIPETTE_HARNESS_ENERGY_H

#include "core/system.h"

namespace pipette {

/** Energy split the paper's Fig. 12 reports. */
struct EnergyBreakdown
{
    double coreDynamic = 0;
    double coreStatic = 0;
    double cache = 0;
    double dram = 0;

    double
    total() const
    {
        return coreDynamic + coreStatic + cache + dram;
    }
};

/** Per-event / per-cycle energy constants (arbitrary units). */
struct EnergyParams
{
    double perCommit = 35;
    double perIssue = 10;
    double perRegRead = 4;
    double perRegWrite = 6;
    double perRaAccess = 8;
    double perConnectorFlit = 15;

    double perL1 = 20;
    double perL2 = 60;
    double perL3 = 250;
    double perDram = 2500;

    double coreStaticPerCycle = 40; ///< per core with >= 1 thread
    double l2StaticPerCycle = 4;    ///< per core
    double l3StaticPerCycle = 12;   ///< whole LLC
    double dramStaticPerCycle = 10;
};

/** Compute the breakdown for a finished System run. */
EnergyBreakdown computeEnergy(const System &sys,
                              const EnergyParams &p = EnergyParams{});

} // namespace pipette

#endif // PIPETTE_HARNESS_ENERGY_H
