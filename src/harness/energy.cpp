#include "harness/energy.h"

namespace pipette {

EnergyBreakdown
computeEnergy(const System &sys, const EnergyParams &p)
{
    EnergyBreakdown e;
    auto &csys = const_cast<System &>(sys);
    Cycle cycles = 0;
    uint32_t activeCores = 0;

    for (uint32_t c = 0; c < csys.numCores(); c++) {
        const CoreStats &s = csys.core(c).stats();
        cycles = std::max(cycles, s.cycles);
        if (s.committedInstrs > 0)
            activeCores++;
        e.coreDynamic += p.perCommit * static_cast<double>(s.committedInstrs);
        e.coreDynamic += p.perIssue * static_cast<double>(s.issuedUops);
        e.coreDynamic += p.perRegRead * static_cast<double>(s.regReads);
        e.coreDynamic += p.perRegWrite * static_cast<double>(s.regWrites);
        e.coreDynamic += p.perRaAccess * static_cast<double>(s.raAccesses);
        e.coreDynamic +=
            p.perConnectorFlit * static_cast<double>(s.connectorTransfers);

        const CacheStats &l1 = csys.hierarchy().l1Stats(c);
        const CacheStats &l2 = csys.hierarchy().l2Stats(c);
        e.cache += p.perL1 * static_cast<double>(l1.accesses + l1.prefetches);
        e.cache += p.perL2 * static_cast<double>(l2.accesses);
    }
    const CacheStats &l3 = csys.hierarchy().l3Stats();
    e.cache += p.perL3 * static_cast<double>(l3.accesses);
    const MemStats &m = csys.hierarchy().memStats();
    e.dram += p.perDram * static_cast<double>(m.dramReads + m.dramWrites);

    double cyc = static_cast<double>(cycles);
    e.coreStatic += p.coreStaticPerCycle * cyc * activeCores;
    e.coreStatic += p.l2StaticPerCycle * cyc * csys.numCores();
    e.coreStatic += p.l3StaticPerCycle * cyc;
    e.dram += p.dramStaticPerCycle * cyc;
    return e;
}

} // namespace pipette
