#include "harness/report.h"

#include <cstdio>
#include <sstream>

#include "sim/logging.h"

namespace pipette {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    panic_if(cells.size() != headers_.size(),
             "table row width mismatch");
    rows_.push_back(std::move(cells));
}

std::string
Table::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

void
Table::print() const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); c++)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); c++)
            widths[c] = std::max(widths[c], row[c].size());

    auto printRow = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); c++)
            std::printf("%-*s%s", static_cast<int>(widths[c]),
                        row[c].c_str(),
                        c + 1 == row.size() ? "\n" : "  ");
    };
    printRow(headers_);
    size_t total = 0;
    for (size_t w : widths)
        total += w + 2;
    for (size_t i = 0; i + 2 < total; i++)
        std::printf("-");
    std::printf("\n");
    for (const auto &row : rows_)
        printRow(row);
}

void
banner(const std::string &title, const std::string &subtitle)
{
    std::printf("\n=== %s ===\n", title.c_str());
    if (!subtitle.empty())
        std::printf("%s\n", subtitle.c_str());
    std::printf("\n");
}

} // namespace pipette
