/**
 * @file
 * Experiment runner: builds a System for one (workload, variant) pair,
 * runs it to completion, verifies the architectural result against the
 * host reference, and collects the metrics every figure needs.
 */

#ifndef PIPETTE_HARNESS_RUNNER_H
#define PIPETTE_HARNESS_RUNNER_H

#include <string>

#include "harness/energy.h"
#include "hostprof/hostprof.h"
#include "resilience/error.h"
#include "workloads/workload.h"

namespace pipette {

/** Everything measured from one run. */
struct RunResult
{
    std::string workload;
    std::string input;
    Variant variant = Variant::Serial;
    bool verified = false;
    bool finished = false;
    /** Why the run stopped (distinguishes deadlock / guardrail stops
     *  from a plain verification mismatch). */
    System::StopReason stopReason = System::StopReason::None;
    /** Structured failure report from the guardrails (empty when the
     *  run finished cleanly). */
    std::string diagnosis;
    /**
     * Error-taxonomy class for the failure (DESIGN.md §12). None for
     * verified runs and plain result mismatches; guardrail stops map to
     * InternalInvariant, cooperative signal drains to Interrupted, and
     * a fatal()/SimException escaping the build or run is caught under
     * a FatalThrowScope and recorded here instead of killing the
     * process (its message lands in `diagnosis`).
     */
    resilience::SimError error = resilience::SimError::None;
    Cycle cycles = 0;
    uint64_t instrs = 0;
    double ipc = 0;
    /** Whole-system CPI-stack fractions (paper Fig. 11 buckets). */
    std::array<double, NUM_CPI_BUCKETS> cpiFrac = {};
    EnergyBreakdown energy;
    CoreStats agg;
    uint32_t numCores = 1;
    /** Multicore phase dispatch fell back to the inline path because
     *  epochLength x numCores is below the parallel-work threshold
     *  (pure config function; see sim.epochAutoInline). */
    bool epochAutoInline = false;
    /** Epoch length the multicore scheduler ran with (1 = single-core
     *  legacy loop); lets reports explain the auto-inline decision. */
    Cycle epochLength = 1;
    /** Host wall-clock spent simulating this run, in seconds. Host-side
     *  only -- never part of determinism comparisons or the sweep
     *  cache. */
    double hostSeconds = 0;
    /** Epoch-scheduler host telemetry (barrier-wait fraction, partition
     *  imbalance). All zeros unless host profiling was on. Host-side
     *  only, like hostSeconds. */
    hostprof::EpochSummary hostEpoch;
};

/** Runs workloads under a base hardware configuration. */
class Runner
{
  public:
    explicit Runner(SystemConfig base) : base_(std::move(base)) {}

    /**
     * Run one variant. `numCores` overrides the base core count
     * (streaming/multicore variants need 4). Fails the run (verified =
     * false) rather than aborting on a mismatch.
     */
    RunResult run(WorkloadBase &wl, Variant v,
                  const std::string &inputName, uint32_t numCores = 1);

    SystemConfig &config() { return base_; }

  private:
    /** Body of run(): everything that may fatal()/throw. */
    void runInner(WorkloadBase &wl, Variant v,
                  const std::string &inputName, uint32_t numCores,
                  RunResult &r);

    SystemConfig base_;
};

/**
 * Short status cell for report tables: "yes" for a verified run,
 * otherwise the reason it is not ("NO (watchdog-deadlock)", ...).
 */
std::string runStatus(const RunResult &r);

/** Geometric mean of a non-empty vector. */
double gmean(const std::vector<double> &xs);

} // namespace pipette

#endif // PIPETTE_HARNESS_RUNNER_H
