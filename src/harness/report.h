/**
 * @file
 * Plain-text table/series printing for the benchmark harness. Each
 * bench binary prints the rows/series of one of the paper's tables or
 * figures through these helpers.
 */

#ifndef PIPETTE_HARNESS_REPORT_H
#define PIPETTE_HARNESS_REPORT_H

#include <string>
#include <vector>

namespace pipette {

/** Simple aligned-column table. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);
    /** Format helper: fixed-point double. */
    static std::string num(double v, int precision = 2);
    /** Render to stdout. */
    void print() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Print a figure/table banner. */
void banner(const std::string &title, const std::string &subtitle = "");

} // namespace pipette

#endif // PIPETTE_HARNESS_REPORT_H
