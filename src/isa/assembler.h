/**
 * @file
 * Assembler DSL for writing mini-ISA programs from C++. All workloads
 * (serial, data-parallel, and Pipette variants) are written against this
 * builder; it provides labels with forward references and one method per
 * opcode plus a few pseudo-instructions.
 *
 * Example:
 * @code
 *   Program p("count");
 *   Asm a(&p);
 *   auto loop = a.label("loop");
 *   a.li(R::r1, 10);
 *   a.bind(loop);
 *   a.addi(R::r1, R::r1, -1);
 *   a.bnei(R::r1, 0, loop);
 *   a.halt();
 *   a.finalize();
 * @endcode
 */

#ifndef PIPETTE_ISA_ASSEMBLER_H
#define PIPETTE_ISA_ASSEMBLER_H

#include <string>
#include <vector>

#include "isa/program.h"

namespace pipette {

/** Opaque label handle created by Asm::label(). */
struct Label
{
    int32_t id = -1;
};

/** Instruction builder writing into a Program. */
class Asm
{
  public:
    explicit Asm(Program *prog);

    /** Create a label (optionally named for listings/tests). */
    Label label(const std::string &name = "");
    /** Bind a label to the current position. */
    void bind(Label l);
    /** Current position (next instruction index). */
    Addr here() const;

    /**
     * Patch all forward references. Must be called exactly once, after
     * the last instruction is emitted.
     */
    void finalize();

    // ALU register-register
    void add(Reg rd, Reg a, Reg b) { emit3(Op::ADD, rd, a, b); }
    void sub(Reg rd, Reg a, Reg b) { emit3(Op::SUB, rd, a, b); }
    void mul(Reg rd, Reg a, Reg b) { emit3(Op::MUL, rd, a, b); }
    void divu(Reg rd, Reg a, Reg b) { emit3(Op::DIVU, rd, a, b); }
    void remu(Reg rd, Reg a, Reg b) { emit3(Op::REMU, rd, a, b); }
    void and_(Reg rd, Reg a, Reg b) { emit3(Op::AND, rd, a, b); }
    void or_(Reg rd, Reg a, Reg b) { emit3(Op::OR, rd, a, b); }
    void xor_(Reg rd, Reg a, Reg b) { emit3(Op::XOR, rd, a, b); }
    void sll(Reg rd, Reg a, Reg b) { emit3(Op::SLL, rd, a, b); }
    void srl(Reg rd, Reg a, Reg b) { emit3(Op::SRL, rd, a, b); }
    void sra(Reg rd, Reg a, Reg b) { emit3(Op::SRA, rd, a, b); }
    void slt(Reg rd, Reg a, Reg b) { emit3(Op::SLT, rd, a, b); }
    void sltu(Reg rd, Reg a, Reg b) { emit3(Op::SLTU, rd, a, b); }

    // ALU register-immediate
    void addi(Reg rd, Reg a, int64_t imm) { emitI(Op::ADDI, rd, a, imm); }
    void andi(Reg rd, Reg a, int64_t imm) { emitI(Op::ANDI, rd, a, imm); }
    void ori(Reg rd, Reg a, int64_t imm) { emitI(Op::ORI, rd, a, imm); }
    void xori(Reg rd, Reg a, int64_t imm) { emitI(Op::XORI, rd, a, imm); }
    void slli(Reg rd, Reg a, int64_t imm) { emitI(Op::SLLI, rd, a, imm); }
    void srli(Reg rd, Reg a, int64_t imm) { emitI(Op::SRLI, rd, a, imm); }
    void srai(Reg rd, Reg a, int64_t imm) { emitI(Op::SRAI, rd, a, imm); }
    void slti(Reg rd, Reg a, int64_t imm) { emitI(Op::SLTI, rd, a, imm); }
    void sltiu(Reg rd, Reg a, int64_t imm) { emitI(Op::SLTIU, rd, a, imm); }
    void li(Reg rd, uint64_t imm);
    /** Pseudo: register move. */
    void mov(Reg rd, Reg a) { addi(rd, a, 0); }
    void nop() { emit(Instr{Op::NOP}); }

    // Memory (address = rs1 + imm)
    void ld(Reg rd, Reg base, int64_t off) { emitI(Op::LD, rd, base, off); }
    void lw(Reg rd, Reg base, int64_t off) { emitI(Op::LW, rd, base, off); }
    void lh(Reg rd, Reg base, int64_t off) { emitI(Op::LH, rd, base, off); }
    void lb(Reg rd, Reg base, int64_t off) { emitI(Op::LB, rd, base, off); }
    void sd(Reg val, Reg base, int64_t off) { emitS(Op::SD, val, base, off); }
    void sw(Reg val, Reg base, int64_t off) { emitS(Op::SW, val, base, off); }
    void sh(Reg val, Reg base, int64_t off) { emitS(Op::SH, val, base, off); }
    void sb(Reg val, Reg base, int64_t off) { emitS(Op::SB, val, base, off); }

    // Branches
    void beq(Reg a, Reg b, Label t) { emitB(Op::BEQ, a, b, t); }
    void bne(Reg a, Reg b, Label t) { emitB(Op::BNE, a, b, t); }
    void blt(Reg a, Reg b, Label t) { emitB(Op::BLT, a, b, t); }
    void bge(Reg a, Reg b, Label t) { emitB(Op::BGE, a, b, t); }
    void bltu(Reg a, Reg b, Label t) { emitB(Op::BLTU, a, b, t); }
    void bgeu(Reg a, Reg b, Label t) { emitB(Op::BGEU, a, b, t); }
    void beqi(Reg a, int64_t imm, Label t) { emitBI(Op::BEQI, a, imm, t); }
    void bnei(Reg a, int64_t imm, Label t) { emitBI(Op::BNEI, a, imm, t); }
    void blti(Reg a, int64_t imm, Label t) { emitBI(Op::BLTI, a, imm, t); }
    void bgei(Reg a, int64_t imm, Label t) { emitBI(Op::BGEI, a, imm, t); }
    void jmp(Label t);
    void jal(Reg rd, Label t);
    void jr(Reg a) { emitI(Op::JR, R::zero, a, 0); }

    // Atomics: rd = old value; address = rs1; operand = rs2.
    void amoadd(Reg rd, Reg addr, Reg val) { emit3(Op::AMOADD, rd, addr, val); }
    void amoswap(Reg rd, Reg addr, Reg val) { emit3(Op::AMOSWAP, rd, addr, val); }
    /** CAS: expected value is read from rd; rd receives the old value. */
    void amocas(Reg rd, Reg addr, Reg newv) { emit3(Op::AMOCAS, rd, addr, newv); }
    void amoor(Reg rd, Reg addr, Reg val) { emit3(Op::AMOOR, rd, addr, val); }
    void amoand(Reg rd, Reg addr, Reg val) { emit3(Op::AMOAND, rd, addr, val); }
    void amominu(Reg rd, Reg addr, Reg val) { emit3(Op::AMOMINU, rd, addr, val); }
    void amomaxu(Reg rd, Reg addr, Reg val) { emit3(Op::AMOMAXU, rd, addr, val); }
    // 32-bit atomic variants (zero-extended results)
    void amoaddw(Reg rd, Reg addr, Reg val) { emit3(Op::AMOADDW, rd, addr, val); }
    void amoswapw(Reg rd, Reg addr, Reg val) { emit3(Op::AMOSWAPW, rd, addr, val); }
    void amocasw(Reg rd, Reg addr, Reg newv) { emit3(Op::AMOCASW, rd, addr, newv); }
    void amoorw(Reg rd, Reg addr, Reg val) { emit3(Op::AMOORW, rd, addr, val); }
    void amominuw(Reg rd, Reg addr, Reg val) { emit3(Op::AMOMINUW, rd, addr, val); }

    // Pipette
    /** Read the queue head (queue mapped at qreg) without consuming it. */
    void peek(Reg rd, Reg qreg) { emitI(Op::PEEK, rd, qreg, 0); }
    /** Enqueue src as a control value through the out-mapped qreg. */
    void enqc(Reg qreg, Reg src) { emitI(Op::ENQC, qreg, src, 0); }
    /** Skip to (and consume into rd) the next control value on qreg. */
    void skiptc(Reg rd, Reg qreg) { emitI(Op::SKIPTC, rd, qreg, 0); }

    void halt() { emit(Instr{Op::HALT}); }
    /** Memory fence: younger loads wait until it retires. */
    void fence() { emit(Instr{Op::FENCE}); }

  private:
    void emit(Instr i);
    void emit3(Op op, Reg rd, Reg a, Reg b);
    void emitI(Op op, Reg rd, Reg a, int64_t imm);
    void emitS(Op op, Reg val, Reg base, int64_t off);
    void emitB(Op op, Reg a, Reg b, Label t);
    void emitBI(Op op, Reg a, int64_t imm, Label t);
    void addFixup(Label t);

    Program *prog_;
    std::vector<int64_t> labelPos_;       // -1 until bound
    std::vector<std::string> labelName_;
    std::vector<std::pair<Addr, int32_t>> fixups_; // (instr idx, label id)
    bool finalized_ = false;
};

} // namespace pipette

#endif // PIPETTE_ISA_ASSEMBLER_H
