/**
 * @file
 * Architectural checkpoint captured from the golden interpreter at a
 * sampling boundary and restored into a detailed System before a
 * measurement window runs (see src/sample/ and DESIGN.md §11).
 *
 * The snapshot covers exactly the state the ISA makes architectural:
 * per-thread PC + integer registers + halt flag, the committed contents
 * of every Pipette queue (values with their control marks, plus the
 * consumer-side skip arm), and the functional scan cursor of every
 * reference accelerator. Memory is checkpointed separately through the
 * SimMemory copy-on-write journal; microarchitectural warm state
 * (cache tags, branch predictor) rides in sample::WarmState.
 */

#ifndef PIPETTE_ISA_ARCH_SNAPSHOT_H
#define PIPETTE_ISA_ARCH_SNAPSHOT_H

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/types.h"

namespace pipette {

/** Full architectural state of a machine at one committed instant. */
struct ArchSnapshot
{
    /** One hardware thread, in MachineSpec::threads order. */
    struct Thread
    {
        Addr pc = 0;
        bool halted = false;
        std::array<uint64_t, NUM_ARCH_REGS> regs = {};
        /** Instructions this thread had retired at the snapshot. */
        uint64_t instrs = 0;
    };

    /** One Pipette queue, sorted by (core, id) for determinism. */
    struct Queue
    {
        CoreId core = 0;
        QueueId id = 0;
        bool skipArmed = false;
        /** Committed entries oldest-first: (value, ctrl mark). */
        std::vector<std::pair<uint64_t, bool>> entries;
    };

    /** One reference accelerator's functional cursor, in spec order. */
    struct Ra
    {
        bool scanning = false;
        bool haveStart = false;
        uint64_t start = 0, cur = 0, end = 0;
    };

    std::vector<Thread> threads;
    std::vector<Queue> queues;
    std::vector<Ra> ras;
    /** Machine-wide retired-instruction count at the snapshot. */
    uint64_t totalInstrs = 0;
};

} // namespace pipette

#endif // PIPETTE_ISA_ARCH_SNAPSHOT_H
