/**
 * @file
 * The mini-ISA executed by the simulator. RISC-like 64-bit integer ISA
 * with fused compare-and-branch (matching x86's fused cmp/jcc micro-ops),
 * atomics, and the Pipette operations from Table II of the paper:
 *
 *  - register-mapped enqueue/dequeue (any instruction whose destination /
 *    source architectural register is queue-mapped),
 *  - peek,
 *  - enq_ctrl (enqueue a control value),
 *  - skip_to_ctrl,
 *
 * plus two internal micro-ops (CVTRAP / ENQTRAP) that the hardware
 * fabricates when dispatching control-value and enqueue traps.
 */

#ifndef PIPETTE_ISA_OPCODES_H
#define PIPETTE_ISA_OPCODES_H

#include <cstddef>
#include <cstdint>

namespace pipette {

enum class Op : uint8_t
{
    // ALU register-register
    ADD, SUB, MUL, DIVU, REMU, AND, OR, XOR, SLL, SRL, SRA, SLT, SLTU,
    // ALU register-immediate
    ADDI, ANDI, ORI, XORI, SLLI, SRLI, SRAI, SLTI, SLTIU, LI,
    // Loads (zero-extending) and stores
    LD, LW, LH, LB, SD, SW, SH, SB,
    // Control flow. B**I compare rs1 against an immediate.
    BEQ, BNE, BLT, BGE, BLTU, BGEU, BEQI, BNEI, BLTI, BGEI,
    JMP, JAL, JR,
    // Atomics (read-modify-write; issue non-speculatively at ROB head).
    // *W variants operate on 32-bit words (zero-extended results).
    AMOADD, AMOSWAP, AMOCAS, AMOOR, AMOAND, AMOMINU, AMOMAXU,
    AMOADDW, AMOSWAPW, AMOCASW, AMOORW, AMOMINUW,
    // Pipette
    PEEK, ENQC, SKIPTC,
    // System. FENCE orders memory: it executes only as the oldest
    // instruction of its thread and younger loads wait for it (models
    // the load-ordering x86 enforces via replay-on-invalidation).
    HALT, NOP, FENCE,
    // Internal micro-ops fabricated by the core (not assembler-visible)
    CVTRAP, ENQTRAP,
    NUM_OPS,
};

/** Functional-unit classes for issue-port accounting. */
enum class FuType : uint8_t { Alu, Mul, Div, Mem, None };

/** Static per-opcode metadata. */
struct OpInfo
{
    const char *name;
    FuType fu;
    bool readsRs1;
    bool readsRs2;
    bool readsRd;   ///< AMOCAS reads rd as the expected value
    bool writesRd;
    bool isLoad;
    bool isStore;
    bool isAtomic;
    bool isCondBranch;
    bool isDirectJump; ///< JMP/JAL: target known at fetch
    bool isIndirectJump;
    bool isHalt;
    uint8_t memBytes; ///< access size for loads/stores/atomics
    uint8_t latency;  ///< fixed execute latency (memory ops use caches)
};

/** Static metadata table, indexed by Op (defined in opcodes.cpp). */
extern const OpInfo opInfoTable[static_cast<size_t>(Op::NUM_OPS)];

/** Look up metadata for an opcode. Inline: this sits on the per-cycle
 *  fetch/rename/issue paths of the core model. */
inline const OpInfo &
opInfo(Op op)
{
    return opInfoTable[static_cast<size_t>(op)];
}

/** Evaluate an ALU op (imm forms receive the immediate as b). */
uint64_t evalAlu(Op op, uint64_t a, uint64_t b);

/** Evaluate a conditional branch (imm forms receive the immediate as b). */
bool evalBranch(Op op, uint64_t a, uint64_t b);

/**
 * Evaluate an atomic: given the old memory value and the operand (rs2),
 * plus the expected value for CAS (from rd), return the new memory value
 * and whether the store happens. The instruction's result is always the
 * old value.
 */
struct AtomicResult
{
    uint64_t newValue;
    bool doStore;
};
AtomicResult evalAtomic(Op op, uint64_t oldVal, uint64_t operand,
                        uint64_t expected);

} // namespace pipette

#endif // PIPETTE_ISA_OPCODES_H
