/**
 * @file
 * Static instruction representation and architectural register handles.
 */

#ifndef PIPETTE_ISA_INSTR_H
#define PIPETTE_ISA_INSTR_H

#include <cstdint>
#include <string>

#include "isa/opcodes.h"
#include "sim/types.h"

namespace pipette {

/** Type-safe architectural register handle used by the assembler. */
struct Reg
{
    ArchRegId idx = 0;

    constexpr Reg() = default;
    constexpr explicit Reg(ArchRegId i) : idx(i) {}
    constexpr bool operator==(const Reg &o) const { return idx == o.idx; }
};

/** Architectural register constants (16 GPRs; see sim/types.h). */
namespace R {
constexpr Reg zero{0};
constexpr Reg r1{1}, r2{2}, r3{3}, r4{4}, r5{5}, r6{6}, r7{7}, r8{8},
    r9{9}, r10{10}, r11{11}, r12{12};
/** CV payload register (written by the hardware on CV dispatch). */
constexpr Reg cvval{reg::CVVAL};
/** CV queue-id register. */
constexpr Reg cvqid{reg::CVQID};
/** CV return-PC register (JR R::cvret returns from a handler). */
constexpr Reg cvret{reg::CVRET};
} // namespace R

/**
 * One static instruction. PCs are instruction indices into the owning
 * Program, not byte addresses.
 */
struct Instr
{
    Op op = Op::NOP;
    ArchRegId rd = 0;
    ArchRegId rs1 = 0;
    ArchRegId rs2 = 0;
    int64_t imm = 0;
    /** Branch/jump target as an instruction index; -1 if none. */
    int32_t target = -1;

    /** Disassembly for traces and error messages. */
    std::string toString() const;
};

} // namespace pipette

#endif // PIPETTE_ISA_INSTR_H
