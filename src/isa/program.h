/**
 * @file
 * A Program is an immutable-after-finalize sequence of instructions with
 * named labels, produced by the assembler DSL (isa/assembler.h).
 */

#ifndef PIPETTE_ISA_PROGRAM_H
#define PIPETTE_ISA_PROGRAM_H

#include <string>
#include <unordered_map>
#include <vector>

#include "isa/instr.h"
#include "sim/logging.h"

namespace pipette {

/** A finalized instruction sequence for one thread. */
class Program
{
  public:
    explicit Program(std::string name = "prog") : name_(std::move(name)) {}

    const Instr &
    at(Addr pc) const
    {
        panic_if(pc >= code_.size(), "PC ", pc, " out of range in program '",
                 name_, "' (", code_.size(), " instrs)");
        return code_[pc];
    }

    size_t size() const { return code_.size(); }
    const std::string &name() const { return name_; }

    /** Resolved label positions (for tests and debugging). */
    const std::unordered_map<std::string, Addr> &labels() const
    {
        return labels_;
    }

    /** Full disassembly listing. */
    std::string listing() const;

  private:
    friend class Asm;

    std::string name_;
    std::vector<Instr> code_;
    std::unordered_map<std::string, Addr> labels_;
};

} // namespace pipette

#endif // PIPETTE_ISA_PROGRAM_H
