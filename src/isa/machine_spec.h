/**
 * @file
 * MachineSpec describes the software side of a Pipette run: which
 * programs run on which (core, thread), queue register mappings, control
 * handlers, reference-accelerator configurations, and cross-core
 * connectors. The same spec configures both the golden-model functional
 * interpreter (isa/interp.h) and the cycle-level system (core/system.h).
 *
 * In the paper these configurations are made through privileged
 * OS-mediated operations (Sec. III-C); here they are set up by the host
 * before the run, which models the same thing.
 */

#ifndef PIPETTE_ISA_MACHINE_SPEC_H
#define PIPETTE_ISA_MACHINE_SPEC_H

#include <array>
#include <cstdint>
#include <deque>
#include <vector>

#include "isa/program.h"
#include "sim/types.h"

namespace pipette {

/** Direction of a queue register mapping. */
enum class QueueDir : uint8_t { In, Out };

/** One architectural register mapped to a queue endpoint. */
struct QueueMapSpec
{
    ArchRegId archReg;
    QueueId queue; ///< core-local queue id
    QueueDir dir;
};

/** One hardware thread's software context. */
struct ThreadSpec
{
    CoreId core = 0;
    ThreadId tid = 0;
    const Program *prog = nullptr;
    /** Dequeue-control-handler PC; -1 if none registered. */
    int64_t deqHandler = -1;
    /** Enqueue-control-handler PC; -1 if none registered. */
    int64_t enqHandler = -1;
    std::vector<QueueMapSpec> queueMaps;
    /** Initial architectural register values (arguments). */
    std::array<uint64_t, NUM_ARCH_REGS> initRegs = {};
};

/** Reference accelerator access mode (paper Sec. IV-B). */
enum class RaMode : uint8_t
{
    Indirect,     ///< input: index i    -> output: A[i]
    IndirectPair, ///< input: index i    -> outputs: A[i], A[i+1]
                  ///< (fetches offsets[v], offsets[v+1] in BFS)
    IndirectKV,   ///< input: index i    -> outputs: i, A[i]
    Scan,         ///< input: start, end -> outputs: A[start..end-1]
};

/** One configured reference accelerator. */
struct RaSpec
{
    CoreId core = 0;
    QueueId inQueue;
    QueueId outQueue;
    Addr base = 0;
    uint32_t elemBytes = 8;
    RaMode mode = RaMode::Indirect;
};

/** Explicit capacity override for one queue. */
struct QueueCapSpec
{
    CoreId core = 0;
    QueueId queue;
    uint32_t capacity;
};

/** One cross-core connector bridging two core-local queues. */
struct ConnectorSpec
{
    CoreId fromCore;
    QueueId fromQueue;
    CoreId toCore;
    QueueId toQueue;
};

/** Complete software configuration of a run. */
struct MachineSpec
{
    /** deque: addThread() references stay valid as threads are added. */
    std::deque<ThreadSpec> threads;
    std::vector<RaSpec> ras;
    std::vector<ConnectorSpec> connectors;
    std::vector<QueueCapSpec> queueCaps;

    ThreadSpec &
    addThread(CoreId core, ThreadId tid, const Program *prog)
    {
        threads.push_back(ThreadSpec{});
        ThreadSpec &t = threads.back();
        t.core = core;
        t.tid = tid;
        t.prog = prog;
        return t;
    }
};

} // namespace pipette

#endif // PIPETTE_ISA_MACHINE_SPEC_H
