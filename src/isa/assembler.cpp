#include "isa/assembler.h"

#include <sstream>

namespace pipette {

std::string
Instr::toString() const
{
    const OpInfo &info = opInfo(op);
    std::ostringstream oss;
    oss << info.name;
    if (info.writesRd || info.readsRd)
        oss << " r" << static_cast<int>(rd);
    if (info.readsRs1)
        oss << " r" << static_cast<int>(rs1);
    if (info.readsRs2)
        oss << " r" << static_cast<int>(rs2);
    if (op == Op::PEEK || op == Op::SKIPTC || op == Op::JR)
        oss << " r" << static_cast<int>(rs1);
    if (imm != 0 || op == Op::LI)
        oss << " #" << imm;
    if (target >= 0)
        oss << " ->" << target;
    return oss.str();
}

std::string
Program::listing() const
{
    std::ostringstream oss;
    std::unordered_map<Addr, std::string> rev;
    for (const auto &[name, pc] : labels_)
        rev[pc] = name;
    for (size_t i = 0; i < code_.size(); i++) {
        auto it = rev.find(i);
        if (it != rev.end())
            oss << it->second << ":\n";
        oss << "  " << i << ": " << code_[i].toString() << "\n";
    }
    return oss.str();
}

Asm::Asm(Program *prog) : prog_(prog)
{
    panic_if(!prog, "Asm requires a program");
}

Label
Asm::label(const std::string &name)
{
    Label l{static_cast<int32_t>(labelPos_.size())};
    labelPos_.push_back(-1);
    labelName_.push_back(name);
    return l;
}

void
Asm::bind(Label l)
{
    panic_if(l.id < 0 || static_cast<size_t>(l.id) >= labelPos_.size(),
             "bind of invalid label");
    panic_if(labelPos_[l.id] >= 0, "label bound twice");
    labelPos_[l.id] = static_cast<int64_t>(prog_->code_.size());
    if (!labelName_[l.id].empty())
        prog_->labels_[labelName_[l.id]] = prog_->code_.size();
}

Addr
Asm::here() const
{
    return prog_->code_.size();
}

void
Asm::finalize()
{
    panic_if(finalized_, "finalize called twice");
    for (auto &[pc, id] : fixups_) {
        panic_if(labelPos_[id] < 0, "unbound label '", labelName_[id],
                 "' in program '", prog_->name(), "'");
        prog_->code_[pc].target = static_cast<int32_t>(labelPos_[id]);
    }
    finalized_ = true;
}

void
Asm::emit(Instr i)
{
    panic_if(finalized_, "emit after finalize");
    const OpInfo &info = opInfo(i.op);
    panic_if(info.writesRd && i.rd == reg::ZERO && !info.isAtomic &&
                 (info.isLoad || i.op == Op::PEEK),
             "r0 as destination of ", info.name, " discards the value");
    prog_->code_.push_back(i);
}

void
Asm::emit3(Op op, Reg rd, Reg a, Reg b)
{
    Instr i;
    i.op = op;
    i.rd = rd.idx;
    i.rs1 = a.idx;
    i.rs2 = b.idx;
    emit(i);
}

void
Asm::emitI(Op op, Reg rd, Reg a, int64_t imm)
{
    Instr i;
    i.op = op;
    i.rd = rd.idx;
    i.rs1 = a.idx;
    i.imm = imm;
    emit(i);
}

void
Asm::emitS(Op op, Reg val, Reg base, int64_t off)
{
    Instr i;
    i.op = op;
    i.rs1 = base.idx;
    i.rs2 = val.idx;
    i.imm = off;
    emit(i);
}

void
Asm::addFixup(Label t)
{
    panic_if(t.id < 0, "branch to invalid label");
    fixups_.emplace_back(prog_->code_.size(), t.id);
}

void
Asm::emitB(Op op, Reg a, Reg b, Label t)
{
    addFixup(t);
    Instr i;
    i.op = op;
    i.rs1 = a.idx;
    i.rs2 = b.idx;
    emit(i);
}

void
Asm::emitBI(Op op, Reg a, int64_t imm, Label t)
{
    addFixup(t);
    Instr i;
    i.op = op;
    i.rs1 = a.idx;
    i.imm = imm;
    emit(i);
}

void
Asm::jmp(Label t)
{
    addFixup(t);
    emit(Instr{Op::JMP});
}

void
Asm::jal(Reg rd, Label t)
{
    addFixup(t);
    Instr i;
    i.op = Op::JAL;
    i.rd = rd.idx;
    emit(i);
}

void
Asm::li(Reg rd, uint64_t imm)
{
    Instr i;
    i.op = Op::LI;
    i.rd = rd.idx;
    i.imm = static_cast<int64_t>(imm);
    emit(i);
}

} // namespace pipette
