/**
 * @file
 * Golden-model functional interpreter. Executes a MachineSpec with full
 * Pipette semantics (blocking queues, control values, control handlers,
 * skip_to_ctrl, reference accelerators, connectors) but no timing:
 * agents are stepped round-robin, one instruction / transfer at a time.
 *
 * Used for (i) debugging workloads without out-of-order complexity and
 * (ii) differential testing of the cycle-level core: both models must
 * produce identical architectural memory contents.
 */

#ifndef PIPETTE_ISA_INTERP_H
#define PIPETTE_ISA_INTERP_H

#include <array>
#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "isa/machine_spec.h"
#include "mem/sim_memory.h"
#include "sim/types.h"

namespace pipette {

/** Functional interpreter over a MachineSpec. */
class Interp
{
  public:
    enum class Status { Done, Deadlock, StepLimit };

    struct Result
    {
        Status status;
        /** Total instructions retired across all threads. */
        uint64_t instrs;
        /** Round-robin rounds executed. */
        uint64_t rounds;
    };

    Interp(const MachineSpec &spec, SimMemory *mem,
           uint32_t defaultQueueCap = 32);

    /** Run until completion, deadlock, or the round limit. */
    Result run(uint64_t maxRounds = 500'000'000);

    /** Architectural register value of thread `idx` in spec order. */
    uint64_t reg(size_t idx, ArchRegId r) const;
    /** Instructions retired by thread `idx`. */
    uint64_t threadInstrs(size_t idx) const;

    // --- Lockstep stepping API (debug/oracle.h) -----------------------
    //
    // The lockstep oracle replays the OOO core's commit stream one
    // retired instruction at a time instead of calling run(). In this
    // mode the interpreter must not take skip-arming decisions on its
    // own (skiptc-on-empty arming, RA/connector arm propagation): those
    // are timing-dependent choices the OOO core already made, and the
    // oracle dictates them explicitly via setSkipArmed().

    /** Enter/leave lockstep mode (suppresses interp-initiated arming). */
    void setLockstep(bool on) { lockstep_ = on; }

    size_t numThreads() const { return threads_.size(); }
    Addr threadPc(size_t idx) const { return threads_[idx].pc; }
    bool threadHalted(size_t idx) const { return threads_[idx].halted; }

    /** Execute one step of thread `idx`; false if blocked on a queue.
     *  A true return may be a skiptc discard (no instruction retired):
     *  callers loop until threadInstrs() increments. */
    bool stepThreadAt(size_t idx) { return stepThread(threads_[idx]); }

    /** One pass over every RA and connector; true if any progressed. */
    bool sweepAgents();

    /** Force a queue's skip-armed state (mirrors an OOO arm decision). */
    void
    setSkipArmed(CoreId core, QueueId q, bool v)
    {
        queue(core, q).skipArmed = v;
    }

    size_t
    queueSize(CoreId core, QueueId q)
    {
        return queue(core, q).q.size();
    }

    /** (value, ctrl) of the newest entry (the most recent push). */
    std::pair<uint64_t, bool>
    queueBack(CoreId core, QueueId q)
    {
        return queue(core, q).q.back();
    }

    /** Pop the oldest entry (mirrors the core's non-speculative
     *  skip_to_ctrl drain, which consumes entries outside commit). */
    std::pair<uint64_t, bool>
    popQueueFront(CoreId core, QueueId q)
    {
        FQueue &fq = queue(core, q);
        auto e = fq.q.front();
        fq.q.pop_front();
        return e;
    }

  private:
    struct FQueue
    {
        std::deque<std::pair<uint64_t, bool>> q; // (value, ctrl)
        uint32_t cap = 32;
        bool skipArmed = false;

        bool full() const { return q.size() >= cap; }

        void
        push(uint64_t v, bool ctrl)
        {
            if (ctrl)
                skipArmed = false;
            q.emplace_back(v, ctrl);
        }
    };

    struct FThread
    {
        const ThreadSpec *spec;
        Addr pc = 0;
        std::array<uint64_t, NUM_ARCH_REGS> regs = {};
        std::array<int8_t, NUM_ARCH_REGS> mapDir; // -1 none, 0 in, 1 out
        std::array<QueueId, NUM_ARCH_REGS> mapQ;
        bool halted = false;
        uint64_t instrs = 0;
    };

    struct FRa
    {
        const RaSpec *spec;
        bool scanning = false;
        bool haveStart = false;
        uint64_t start = 0, cur = 0, end = 0;
    };

    FQueue &queue(CoreId core, QueueId q);
    bool stepThread(FThread &t);
    bool stepRa(FRa &ra);
    bool stepConnector(const ConnectorSpec &c);

    const MachineSpec &spec_;
    SimMemory *mem_;
    std::vector<FThread> threads_;
    std::vector<FRa> ras_;
    std::unordered_map<uint32_t, FQueue> queues_;
    uint32_t defaultCap_;
    bool lockstep_ = false;
};

} // namespace pipette

#endif // PIPETTE_ISA_INTERP_H
