/**
 * @file
 * Golden-model functional interpreter. Executes a MachineSpec with full
 * Pipette semantics (blocking queues, control values, control handlers,
 * skip_to_ctrl, reference accelerators, connectors) but no timing:
 * agents are stepped round-robin, one instruction / transfer at a time.
 *
 * Used for (i) debugging workloads without out-of-order complexity and
 * (ii) differential testing of the cycle-level core: both models must
 * produce identical architectural memory contents.
 */

#ifndef PIPETTE_ISA_INTERP_H
#define PIPETTE_ISA_INTERP_H

#include <algorithm>
#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "isa/arch_snapshot.h"
#include "isa/machine_spec.h"
#include "mem/sim_memory.h"
#include "sim/types.h"

namespace pipette {

/** Functional interpreter over a MachineSpec. */
class Interp
{
  public:
    enum class Status { Done, Deadlock, StepLimit, Target };

    struct Result
    {
        Status status;
        /** Total instructions retired across all threads. */
        uint64_t instrs;
        /** Round-robin rounds executed. */
        uint64_t rounds;
    };

    /**
     * Warming hooks for the sampling fast-forward (src/sample/):
     * functional memory touches and branch outcomes are mirrored into
     * lightweight cache-tag / branch-predictor models so a detailed
     * window starts from warmed microarchitectural state. Null (the
     * default) disables every site at the cost of one pointer test.
     */
    class FFHooks
    {
      public:
        virtual ~FFHooks() = default;
        /** A load/store/atomic/RA access of `bytes` bytes at `addr`. */
        virtual void touchMem(CoreId core, Addr addr, uint32_t bytes,
                              bool isWrite) = 0;
        /** A conditional branch at `pc` resolved `taken`. */
        virtual void condBranch(CoreId core, ThreadId tid, Addr pc,
                                bool taken) = 0;
        /** An indirect jump at `pc` resolved to `target`. */
        virtual void indirect(CoreId core, ThreadId tid, Addr pc,
                              Addr target) = 0;
    };

    Interp(const MachineSpec &spec, SimMemory *mem,
           uint32_t defaultQueueCap = 32);

    /** Run until completion, deadlock, or the round limit. */
    Result run(uint64_t maxRounds = 500'000'000);

    /**
     * Fast-forward: run until the machine-wide retired-instruction
     * count reaches `targetInstrs` (Status::Target), with completion,
     * deadlock, and the round limit stopping early as in run(). Stops
     * at a round boundary, so the machine state is a consistent
     * snapshot point (no agent is mid-transfer).
     */
    Result runUntil(uint64_t targetInstrs,
                    uint64_t maxRounds = 500'000'000);

    /** Machine-wide retired-instruction count so far. */
    uint64_t totalInstrs() const;

    /** Attach/detach fast-forward warming hooks (null = off). */
    void setHooks(FFHooks *h) { hooks_ = h; }

    /** Architectural state at the current round boundary. */
    ArchSnapshot snapshot() const;

    /**
     * Install a previously captured snapshot (durable-checkpoint
     * resume): thread PCs/registers/retire counts, queue contents and
     * skip arms, and RA cursors are replaced wholesale; memory is
     * restored separately (journal + page images). The snapshot must
     * come from a machine built on the same MachineSpec with the same
     * queue-capacity clamp, which the resume path validates up front.
     */
    void restore(const ArchSnapshot &s);

    /**
     * Sampling support: clamp queue capacities so one core's total
     * committed queue occupancy can never exceed `perCoreRegBudget`
     * entries. Checkpoint restore preloads every committed entry into
     * a physical register, so the budget must leave the detailed
     * core's PRF room for the pinned architectural registers and
     * in-flight rename. Call before the first step; functional results
     * are capacity-independent, only the blocking schedule shifts.
     */
    void clampQueueCaps(uint32_t perCoreRegBudget);

    /** Architectural register value of thread `idx` in spec order. */
    uint64_t reg(size_t idx, ArchRegId r) const;
    /** Instructions retired by thread `idx`. */
    uint64_t threadInstrs(size_t idx) const;

    // --- Lockstep stepping API (debug/oracle.h) -----------------------
    //
    // The lockstep oracle replays the OOO core's commit stream one
    // retired instruction at a time instead of calling run(). In this
    // mode the interpreter must not take skip-arming decisions on its
    // own (skiptc-on-empty arming, RA/connector arm propagation): those
    // are timing-dependent choices the OOO core already made, and the
    // oracle dictates them explicitly via setSkipArmed().

    /** Enter/leave lockstep mode (suppresses interp-initiated arming). */
    void setLockstep(bool on) { lockstep_ = on; }

    size_t numThreads() const { return threads_.size(); }
    Addr threadPc(size_t idx) const { return threads_[idx].pc; }
    bool threadHalted(size_t idx) const { return threads_[idx].halted; }

    /** Execute one step of thread `idx`; false if blocked on a queue.
     *  A true return may be a skiptc discard (no instruction retired):
     *  callers loop until threadInstrs() increments. */
    bool stepThreadAt(size_t idx) { return stepThread(threads_[idx]); }

    /** One pass over every RA and connector; true if any progressed. */
    bool sweepAgents();

    /** Force a queue's skip-armed state (mirrors an OOO arm decision). */
    void
    setSkipArmed(CoreId core, QueueId q, bool v)
    {
        queue(core, q).skipArmed = v;
    }

    size_t
    queueSize(CoreId core, QueueId q)
    {
        return queue(core, q).size();
    }

    /** (value, ctrl) of the newest entry (the most recent push). */
    std::pair<uint64_t, bool>
    queueBack(CoreId core, QueueId q)
    {
        return queue(core, q).back();
    }

    /** Pop the oldest entry (mirrors the core's non-speculative
     *  skip_to_ctrl drain, which consumes entries outside commit). */
    std::pair<uint64_t, bool>
    popQueueFront(CoreId core, QueueId q)
    {
        FQueue &fq = queue(core, q);
        auto e = fq.front();
        fq.pop_front();
        return e;
    }

  private:
    struct FQueue
    {
        // Flat ring storage for (value, ctrl) entries: queue ops run on
        // nearly every interpreted instruction, and an explicit
        // head/count ring beats std::deque's block bookkeeping by a
        // wide margin on the fast-forward path.
        std::vector<std::pair<uint64_t, bool>> buf;
        size_t head = 0;
        size_t count = 0;
        uint32_t cap = 32;
        bool skipArmed = false;

        bool empty() const { return count == 0; }
        size_t size() const { return count; }
        bool full() const { return count >= cap; }

        size_t
        wrap(size_t i) const
        {
            return i >= buf.size() ? i - buf.size() : i;
        }

        /** Oldest entry (callers guard non-empty). */
        const std::pair<uint64_t, bool> &front() const { return buf[head]; }
        /** Newest entry. */
        const std::pair<uint64_t, bool> &back() const
        {
            return buf[wrap(head + count - 1)];
        }
        /** i-th oldest entry. */
        const std::pair<uint64_t, bool> &at(size_t i) const
        {
            return buf[wrap(head + i)];
        }

        void
        pop_front()
        {
            head = wrap(head + 1);
            count--;
        }

        void
        push(uint64_t v, bool ctrl)
        {
            if (ctrl)
                skipArmed = false;
            if (buf.size() < cap)
                grow(); // caps only change before stepping; cold
            buf[wrap(head + count)] = {v, ctrl};
            count++;
        }

        /** Re-linearize into a ring sized for the current cap. */
        void
        grow()
        {
            std::vector<std::pair<uint64_t, bool>> nb(
                std::max<size_t>(cap, count));
            for (size_t i = 0; i < count; i++)
                nb[i] = at(i);
            buf = std::move(nb);
            head = 0;
        }
    };

    struct FThread
    {
        const ThreadSpec *spec;
        Addr pc = 0;
        std::array<uint64_t, NUM_ARCH_REGS> regs = {};
        std::array<int8_t, NUM_ARCH_REGS> mapDir; // -1 none, 0 in, 1 out
        std::array<QueueId, NUM_ARCH_REGS> mapQ;
        /** Mapped-queue pointers, resolved once at construction
         *  (unordered_map references are stable) so the per-instruction
         *  path never hashes. */
        std::array<FQueue *, NUM_ARCH_REGS> qp = {};
        bool halted = false;
        uint64_t instrs = 0;
    };

    struct FRa
    {
        const RaSpec *spec;
        FQueue *in = nullptr;  ///< resolved once (stable references)
        FQueue *out = nullptr;
        bool scanning = false;
        bool haveStart = false;
        uint64_t start = 0, cur = 0, end = 0;
    };

    FQueue &queue(CoreId core, QueueId q);
    bool stepThread(FThread &t);
    bool stepRa(FRa &ra);
    bool stepConnector(size_t idx);
    uint64_t readMem(Addr addr, uint32_t size);

    const MachineSpec &spec_;
    SimMemory *mem_;
    std::vector<FThread> threads_;
    std::vector<FRa> ras_;
    /** Endpoint pointers per spec_.connectors entry (stable refs). */
    std::vector<std::pair<FQueue *, FQueue *>> connQ_;
    std::unordered_map<uint32_t, FQueue> queues_;
    uint32_t defaultCap_;
    bool lockstep_ = false;
    FFHooks *hooks_ = nullptr;
    /** One-page read cache for readMem (see interp.cpp). */
    uint64_t rdPn_ = ~0ull;
    const uint8_t *rdPage_ = nullptr;
};

} // namespace pipette

#endif // PIPETTE_ISA_INTERP_H
