#include "isa/opcodes.h"

#include <array>

#include "sim/logging.h"

namespace pipette {

namespace {

constexpr OpInfo
alu(const char *name)
{
    return {name, FuType::Alu, true, true, false, true,
            false, false, false, false, false, false, false, 0, 1};
}

constexpr OpInfo
aluImm(const char *name)
{
    return {name, FuType::Alu, true, false, false, true,
            false, false, false, false, false, false, false, 0, 1};
}

constexpr OpInfo
load(const char *name, uint8_t bytes)
{
    return {name, FuType::Mem, true, false, false, true,
            true, false, false, false, false, false, false, bytes, 1};
}

constexpr OpInfo
store(const char *name, uint8_t bytes)
{
    return {name, FuType::Mem, true, true, false, false,
            false, true, false, false, false, false, false, bytes, 1};
}

constexpr OpInfo
branch(const char *name, bool reads_rs2)
{
    return {name, FuType::Alu, true, reads_rs2, false, false,
            false, false, false, true, false, false, false, 0, 1};
}

constexpr OpInfo
amo(const char *name, bool reads_rd, uint8_t bytes = 8)
{
    return {name, FuType::Mem, true, true, reads_rd, true,
            true, true, true, false, false, false, false, bytes, 1};
}

// Order must match enum class Op.
} // namespace

const OpInfo opInfoTable[static_cast<size_t>(Op::NUM_OPS)] = {
    alu("add"), alu("sub"),
    {"mul", FuType::Mul, true, true, false, true,
     false, false, false, false, false, false, false, 0, 3},
    {"divu", FuType::Div, true, true, false, true,
     false, false, false, false, false, false, false, 0, 20},
    {"remu", FuType::Div, true, true, false, true,
     false, false, false, false, false, false, false, 0, 20},
    alu("and"), alu("or"), alu("xor"), alu("sll"), alu("srl"), alu("sra"),
    alu("slt"), alu("sltu"),
    aluImm("addi"), aluImm("andi"), aluImm("ori"), aluImm("xori"),
    aluImm("slli"), aluImm("srli"), aluImm("srai"), aluImm("slti"),
    aluImm("sltiu"),
    // LI has no register sources
    {"li", FuType::Alu, false, false, false, true,
     false, false, false, false, false, false, false, 0, 1},
    load("ld", 8), load("lw", 4), load("lh", 2), load("lb", 1),
    store("sd", 8), store("sw", 4), store("sh", 2), store("sb", 1),
    branch("beq", true), branch("bne", true), branch("blt", true),
    branch("bge", true), branch("bltu", true), branch("bgeu", true),
    branch("beqi", false), branch("bnei", false), branch("blti", false),
    branch("bgei", false),
    // JMP: unconditional direct
    {"jmp", FuType::Alu, false, false, false, false,
     false, false, false, false, true, false, false, 0, 1},
    // JAL: link into rd
    {"jal", FuType::Alu, false, false, false, true,
     false, false, false, false, true, false, false, 0, 1},
    // JR: indirect through rs1
    {"jr", FuType::Alu, true, false, false, false,
     false, false, false, false, false, true, false, 0, 1},
    amo("amoadd", false), amo("amoswap", false), amo("amocas", true),
    amo("amoor", false), amo("amoand", false), amo("amominu", false),
    amo("amomaxu", false),
    amo("amoaddw", false, 4), amo("amoswapw", false, 4),
    amo("amocasw", true, 4), amo("amoorw", false, 4),
    amo("amominuw", false, 4),
    // PEEK: rs1 names the queue-mapped register; handled specially at
    // rename (reads the queue head without consuming it).
    {"peek", FuType::Alu, false, false, false, true,
     false, false, false, false, false, false, false, 0, 1},
    // ENQC: moves rs1 into a queue-out-mapped rd with the control bit.
    {"enqc", FuType::Alu, true, false, false, true,
     false, false, false, false, false, false, false, 0, 1},
    // SKIPTC: rs1 names the queue; rd receives the control value.
    {"skiptc", FuType::Alu, false, false, false, true,
     false, false, false, false, false, false, false, 0, 1},
    {"halt", FuType::None, false, false, false, false,
     false, false, false, false, false, false, true, 0, 1},
    {"nop", FuType::Alu, false, false, false, false,
     false, false, false, false, false, false, false, 0, 1},
    {"fence", FuType::None, false, false, false, false,
     false, false, false, false, false, false, false, 0, 1},
    // CVTRAP: internal; writes cvval/cvqid/cvret and redirects fetch.
    {"cvtrap", FuType::Alu, false, false, false, false,
     false, false, false, false, false, false, false, 0, 1},
    // ENQTRAP: internal; writes cvqid/cvret and redirects fetch.
    {"enqtrap", FuType::Alu, false, false, false, false,
     false, false, false, false, false, false, false, 0, 1},
};

uint64_t
evalAlu(Op op, uint64_t a, uint64_t b)
{
    switch (op) {
      case Op::ADD: case Op::ADDI: return a + b;
      case Op::SUB: return a - b;
      case Op::MUL: return a * b;
      case Op::DIVU: return b ? a / b : ~0ull;
      case Op::REMU: return b ? a % b : a;
      case Op::AND: case Op::ANDI: return a & b;
      case Op::OR: case Op::ORI: return a | b;
      case Op::XOR: case Op::XORI: return a ^ b;
      case Op::SLL: case Op::SLLI: return a << (b & 63);
      case Op::SRL: case Op::SRLI: return a >> (b & 63);
      case Op::SRA: case Op::SRAI:
        return static_cast<uint64_t>(static_cast<int64_t>(a) >> (b & 63));
      case Op::SLT: case Op::SLTI:
        return static_cast<int64_t>(a) < static_cast<int64_t>(b) ? 1 : 0;
      case Op::SLTU: case Op::SLTIU: return a < b ? 1 : 0;
      case Op::LI: return b;
      default:
        panic("evalAlu on non-ALU op ", opInfo(op).name);
    }
}

bool
evalBranch(Op op, uint64_t a, uint64_t b)
{
    switch (op) {
      case Op::BEQ: case Op::BEQI: return a == b;
      case Op::BNE: case Op::BNEI: return a != b;
      case Op::BLT: case Op::BLTI:
        return static_cast<int64_t>(a) < static_cast<int64_t>(b);
      case Op::BGE: case Op::BGEI:
        return static_cast<int64_t>(a) >= static_cast<int64_t>(b);
      case Op::BLTU: return a < b;
      case Op::BGEU: return a >= b;
      default:
        panic("evalBranch on non-branch op ", opInfo(op).name);
    }
}

AtomicResult
evalAtomic(Op op, uint64_t oldVal, uint64_t operand, uint64_t expected)
{
    switch (op) {
      case Op::AMOADD: case Op::AMOADDW: return {oldVal + operand, true};
      case Op::AMOSWAP: case Op::AMOSWAPW: return {operand, true};
      case Op::AMOCAS: case Op::AMOCASW:
        return {operand, oldVal == expected};
      case Op::AMOOR: case Op::AMOORW: return {oldVal | operand, true};
      case Op::AMOAND: return {oldVal & operand, true};
      case Op::AMOMINU: case Op::AMOMINUW:
        return {operand < oldVal ? operand : oldVal, true};
      case Op::AMOMAXU:
        return {operand > oldVal ? operand : oldVal, true};
      default:
        panic("evalAtomic on non-atomic op ", opInfo(op).name);
    }
}

} // namespace pipette
