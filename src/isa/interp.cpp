#include "isa/interp.h"

#include <algorithm>

#include "sim/logging.h"

namespace pipette {

namespace {
constexpr uint32_t
queueKey(CoreId core, QueueId q)
{
    return (core << 8) | q;
}
} // namespace

Interp::Interp(const MachineSpec &spec, SimMemory *mem,
               uint32_t defaultQueueCap)
    : spec_(spec), mem_(mem), defaultCap_(defaultQueueCap)
{
    for (const ThreadSpec &ts : spec.threads) {
        FThread t;
        t.spec = &ts;
        t.regs = ts.initRegs;
        t.regs[reg::ZERO] = 0;
        t.mapDir.fill(-1);
        t.mapQ.fill(INVALID_QUEUE);
        for (const QueueMapSpec &m : ts.queueMaps) {
            panic_if(m.archReg == reg::ZERO, "cannot queue-map r0");
            t.mapDir[m.archReg] = m.dir == QueueDir::In ? 0 : 1;
            t.mapQ[m.archReg] = m.queue;
            t.qp[m.archReg] = &queue(ts.core, m.queue); // materialize
        }
        threads_.push_back(t);
    }
    for (const RaSpec &rs : spec.ras) {
        FRa ra;
        ra.spec = &rs;
        ra.in = &queue(rs.core, rs.inQueue);
        ra.out = &queue(rs.core, rs.outQueue);
        ras_.push_back(ra);
    }
    for (const ConnectorSpec &cs : spec.connectors) {
        connQ_.emplace_back(&queue(cs.fromCore, cs.fromQueue),
                            &queue(cs.toCore, cs.toQueue));
    }
    for (const QueueCapSpec &qc : spec.queueCaps)
        queue(qc.core, qc.queue).cap = qc.capacity;
}

Interp::FQueue &
Interp::queue(CoreId core, QueueId q)
{
    auto [it, inserted] = queues_.try_emplace(queueKey(core, q));
    if (inserted)
        it->second.cap = defaultCap_;
    return it->second;
}

uint64_t
Interp::reg(size_t idx, ArchRegId r) const
{
    return threads_[idx].regs[r];
}

uint64_t
Interp::threadInstrs(size_t idx) const
{
    return threads_[idx].instrs;
}

Interp::Result
Interp::run(uint64_t maxRounds)
{
    return runUntil(UINT64_MAX, maxRounds);
}

uint64_t
Interp::totalInstrs() const
{
    uint64_t total = 0;
    for (const FThread &t : threads_)
        total += t.instrs;
    return total;
}

Interp::Result
Interp::runUntil(uint64_t targetInstrs, uint64_t maxRounds)
{
    uint64_t rounds = 0;
    while (rounds < maxRounds) {
        rounds++;
        bool progressed = false;
        bool allHalted = true;
        for (FThread &t : threads_) {
            if (!t.halted) {
                progressed |= stepThread(t);
                allHalted &= t.halted;
            }
        }
        for (FRa &ra : ras_)
            progressed |= stepRa(ra);
        for (size_t i = 0; i < connQ_.size(); i++)
            progressed |= stepConnector(i);

        uint64_t total = totalInstrs();
        if (allHalted)
            return {Status::Done, total, rounds};
        if (total >= targetInstrs)
            return {Status::Target, total, rounds};
        if (!progressed)
            return {Status::Deadlock, total, rounds};
    }
    return {Status::StepLimit, totalInstrs(), rounds};
}

ArchSnapshot
Interp::snapshot() const
{
    ArchSnapshot s;
    for (const FThread &t : threads_) {
        ArchSnapshot::Thread st;
        st.pc = t.pc;
        st.halted = t.halted;
        st.regs = t.regs;
        st.instrs = t.instrs;
        s.threads.push_back(st);
        s.totalInstrs += t.instrs;
    }
    // queues_ is a hash map: emit in (core, id) key order so the
    // snapshot -- and everything derived from it -- is deterministic.
    std::vector<uint32_t> keys;
    keys.reserve(queues_.size());
    for (const auto &kv : queues_)
        keys.push_back(kv.first);
    std::sort(keys.begin(), keys.end());
    for (uint32_t k : keys) {
        const FQueue &fq = queues_.at(k);
        ArchSnapshot::Queue sq;
        sq.core = k >> 8;
        sq.id = static_cast<QueueId>(k & 0xff);
        sq.skipArmed = fq.skipArmed;
        sq.entries.reserve(fq.size());
        for (size_t i = 0; i < fq.size(); i++)
            sq.entries.push_back(fq.at(i));
        s.queues.push_back(std::move(sq));
    }
    for (const FRa &ra : ras_)
        s.ras.push_back({ra.scanning, ra.haveStart, ra.start, ra.cur,
                         ra.end});
    return s;
}

void
Interp::restore(const ArchSnapshot &s)
{
    panic_if(s.threads.size() != threads_.size() ||
                 s.ras.size() != ras_.size(),
             "ArchSnapshot shape mismatch in Interp::restore");
    for (size_t i = 0; i < threads_.size(); i++) {
        FThread &t = threads_[i];
        const ArchSnapshot::Thread &st = s.threads[i];
        t.pc = st.pc;
        t.halted = st.halted;
        t.regs = st.regs;
        t.regs[reg::ZERO] = 0;
        t.instrs = st.instrs;
    }
    // The snapshot was emitted from an identical queue set, but queues
    // empty at the snapshot carry no entry list -- clear everything
    // first so they do not keep stale contents.
    for (auto &kv : queues_) {
        kv.second.head = 0;
        kv.second.count = 0;
        kv.second.skipArmed = false;
    }
    for (const ArchSnapshot::Queue &sq : s.queues) {
        FQueue &fq = queue(sq.core, sq.id);
        for (const auto &e : sq.entries)
            fq.push(e.first, e.second);
        fq.skipArmed = sq.skipArmed; // after pushes (ctrl pushes disarm)
    }
    for (size_t i = 0; i < ras_.size(); i++) {
        FRa &ra = ras_[i];
        const ArchSnapshot::Ra &sr = s.ras[i];
        ra.scanning = sr.scanning;
        ra.haveStart = sr.haveStart;
        ra.start = sr.start;
        ra.cur = sr.cur;
        ra.end = sr.end;
    }
    // The restored address space may have replaced the page the read
    // cache points at.
    rdPn_ = ~0ull;
    rdPage_ = nullptr;
}

void
Interp::clampQueueCaps(uint32_t perCoreRegBudget)
{
    std::unordered_map<CoreId, std::vector<FQueue *>> byCore;
    for (auto &kv : queues_)
        byCore[kv.first >> 8].push_back(&kv.second);
    for (auto &[core, qs] : byCore) {
        uint64_t sum = 0;
        for (const FQueue *q : qs)
            sum += q->cap;
        if (sum <= perCoreRegBudget)
            continue;
        // Shrink uniformly; a floor of 4 keeps every RA mode live
        // (IndirectPair/KV need 2 output slots at once).
        auto each = std::max<uint32_t>(
            4, perCoreRegBudget / static_cast<uint32_t>(qs.size()));
        for (FQueue *q : qs)
            q->cap = std::min(q->cap, each);
    }
}

bool
Interp::stepThread(FThread &t)
{
    const Instr &in = t.spec->prog->at(t.pc);
    const OpInfo &info = opInfo(in.op);
    CoreId core = t.spec->core;

    // Collect the architectural source registers this instruction reads.
    // PEEK/SKIPTC name their queue via rs1 but do not "read" it as data.
    ArchRegId srcs[3];
    int nsrcs = 0;
    if (info.readsRs1)
        srcs[nsrcs++] = in.rs1;
    if (info.readsRs2)
        srcs[nsrcs++] = in.rs2;
    if (info.readsRd)
        srcs[nsrcs++] = in.rd;

    // --- Gate 1: every dequeue source must have a committed entry. ---
    for (int i = 0; i < nsrcs; i++) {
        ArchRegId r = srcs[i];
        panic_if(t.mapDir[r] == 1, "read of output-mapped r",
                 static_cast<int>(r), " in ", in.toString());
        if (t.mapDir[r] == 0 && t.qp[r]->empty())
            return false; // blocked on empty queue
        for (int j = 0; j < i; j++) {
            panic_if(t.mapDir[r] == 0 && t.mapDir[srcs[j]] == 0 &&
                         t.mapQ[srcs[j]] == t.mapQ[r],
                     "instruction dequeues the same queue twice: ",
                     in.toString());
        }
    }

    // PEEK/SKIPTC queue availability.
    bool isPeek = in.op == Op::PEEK;
    bool isSkip = in.op == Op::SKIPTC;
    if (isPeek || isSkip) {
        panic_if(t.mapDir[in.rs1] != 0, "peek/skiptc on non-input-mapped r",
                 static_cast<int>(in.rs1));
        FQueue &q = *t.qp[in.rs1];
        if (q.empty()) {
            // In lockstep mode arming is dictated by the OOO core's
            // commits (setSkipArmed), never decided here.
            if (isSkip && !lockstep_)
                q.skipArmed = true;
            return false;
        }
    }

    // --- Gate 2: control value at the head of any dequeue source? ---
    // Dispatch to the dequeue control handler, consuming the CV.
    auto cvTrap = [&](QueueId qid, uint64_t value) {
        panic_if(t.spec->deqHandler < 0,
                 "control value dequeued with no handler (program '",
                 t.spec->prog->name(), "' pc ", t.pc, ")");
        t.regs[reg::CVVAL] = value;
        t.regs[reg::CVQID] = qid;
        t.regs[reg::CVRET] = t.pc;
        t.pc = static_cast<Addr>(t.spec->deqHandler);
        t.instrs++;
    };

    for (int i = 0; i < nsrcs; i++) {
        ArchRegId r = srcs[i];
        if (t.mapDir[r] != 0)
            continue;
        FQueue &q = *t.qp[r];
        if (q.front().second) {
            uint64_t v = q.front().first;
            q.pop_front();
            cvTrap(t.mapQ[r], v);
            return true;
        }
    }
    if (isPeek) {
        FQueue &q = *t.qp[in.rs1];
        if (q.front().second) {
            uint64_t v = q.front().first;
            q.pop_front();
            cvTrap(t.mapQ[in.rs1], v);
            return true;
        }
    }

    // --- Gate 3: destination enqueue conditions. ---
    bool enq = info.writesRd && in.rd != reg::ZERO && t.mapDir[in.rd] == 1;
    panic_if(in.op == Op::ENQC && !enq, "enqc destination is not "
             "output-mapped: ", in.toString());
    if (enq) {
        FQueue &q = *t.qp[in.rd];
        if (q.skipArmed && in.op != Op::ENQC) {
            // Enqueue trap: redirect to the enqueue control handler; the
            // enqueue does not happen and no source is consumed.
            panic_if(t.spec->enqHandler < 0,
                     "skip armed with no enqueue handler (program '",
                     t.spec->prog->name(), "')");
            t.regs[reg::CVQID] = t.mapQ[in.rd];
            t.regs[reg::CVRET] = t.pc;
            t.pc = static_cast<Addr>(t.spec->enqHandler);
            t.instrs++;
            return true;
        }
        if (q.full())
            return false; // blocked on full queue
    }

    // --- SKIPTC main behaviour (head is data or ctrl, queue nonempty) ---
    if (isSkip) {
        FQueue &q = *t.qp[in.rs1];
        auto [v, ctrl] = q.front();
        q.pop_front();
        if (!ctrl)
            return true; // discarded one data value; pc unchanged
        q.skipArmed = false;
        if (in.rd != reg::ZERO) {
            if (enq)
                t.qp[in.rd]->push(v, false);
            else
                t.regs[in.rd] = v;
        }
        t.pc++;
        t.instrs++;
        return true;
    }

    // --- Consume dequeue sources and read register sources. ---
    uint64_t vals[3] = {0, 0, 0};
    for (int i = 0; i < nsrcs; i++) {
        ArchRegId r = srcs[i];
        if (t.mapDir[r] == 0) {
            FQueue &q = *t.qp[r];
            vals[i] = q.front().first;
            q.pop_front();
        } else {
            vals[i] = t.regs[r];
        }
    }
    // Map positional values back to operand roles.
    uint64_t v1 = 0, v2 = 0, vd = 0;
    {
        int i = 0;
        if (info.readsRs1)
            v1 = vals[i++];
        if (info.readsRs2)
            v2 = vals[i++];
        if (info.readsRd)
            vd = vals[i++];
    }

    // --- Execute. ---
    uint64_t result = 0;
    bool hasResult = info.writesRd;
    Addr nextPc = t.pc + 1;

    if (isPeek) {
        result = t.qp[in.rs1]->front().first;
    } else if (in.op == Op::ENQC) {
        result = v1;
    } else if (info.isLoad && !info.isAtomic) {
        Addr addr = v1 + static_cast<uint64_t>(in.imm);
        result = readMem(addr, info.memBytes);
        if (hooks_)
            hooks_->touchMem(core, addr, info.memBytes, false);
    } else if (info.isStore && !info.isAtomic) {
        Addr addr = v1 + static_cast<uint64_t>(in.imm);
        mem_->write(addr, info.memBytes, v2);
        if (hooks_)
            hooks_->touchMem(core, addr, info.memBytes, true);
    } else if (info.isAtomic) {
        Addr addr = v1;
        uint64_t old = readMem(addr, info.memBytes);
        AtomicResult ar = evalAtomic(in.op, old, v2, vd);
        if (ar.doStore)
            mem_->write(addr, info.memBytes, ar.newValue);
        result = old;
        if (hooks_)
            hooks_->touchMem(core, addr, info.memBytes, true);
    } else if (info.isCondBranch) {
        bool useImm = in.op >= Op::BEQI && in.op <= Op::BGEI;
        bool taken = evalBranch(in.op, v1,
                                useImm ? static_cast<uint64_t>(in.imm) : v2);
        if (taken)
            nextPc = static_cast<Addr>(in.target);
        if (hooks_)
            hooks_->condBranch(core, t.spec->tid, t.pc, taken);
    } else if (in.op == Op::JMP) {
        nextPc = static_cast<Addr>(in.target);
    } else if (in.op == Op::JAL) {
        result = t.pc + 1;
        nextPc = static_cast<Addr>(in.target);
    } else if (in.op == Op::JR) {
        nextPc = v1;
        if (hooks_)
            hooks_->indirect(core, t.spec->tid, t.pc, nextPc);
    } else if (in.op == Op::HALT) {
        t.halted = true;
        t.instrs++;
        return true;
    } else if (in.op == Op::NOP || in.op == Op::FENCE) {
        // nothing (the interpreter is sequentially consistent)
    } else {
        result = evalAlu(in.op, v1,
                         info.readsRs2 ? v2 : static_cast<uint64_t>(in.imm));
    }

    // --- Write destination (register or enqueue). ---
    if (hasResult && in.rd != reg::ZERO) {
        panic_if(t.mapDir[in.rd] == 0, "write to input-mapped r",
                 static_cast<int>(in.rd), " in ", in.toString());
        if (enq)
            t.qp[in.rd]->push(result, in.op == Op::ENQC);
        else
            t.regs[in.rd] = result;
    }

    t.pc = nextPc;
    t.instrs++;
    return true;
}

/**
 * Hot-path load with a one-page cache. Page storage is written in
 * place and never relocated once allocated, so a cached non-null page
 * pointer stays valid and sees every later store; a cached null falls
 * through to the authoritative slow path. Memories with a checkpoint
 * page source bypass the cache entirely (a copy-on-write can replace
 * the backing page mid-run).
 */
uint64_t
Interp::readMem(Addr addr, uint32_t size)
{
    if (((addr ^ (addr + size - 1)) >> SimMemory::PAGE_BITS) == 0 &&
        !mem_->hasSource()) {
        uint64_t pn = addr >> SimMemory::PAGE_BITS;
        if (pn != rdPn_) {
            rdPn_ = pn;
            rdPage_ = mem_->peekPage(pn);
        }
        if (rdPage_) {
            const uint8_t *b =
                rdPage_ + (addr & (SimMemory::PAGE_SIZE - 1));
            uint64_t v = 0;
            for (uint32_t i = 0; i < size; i++)
                v |= static_cast<uint64_t>(b[i]) << (8 * i);
            return v;
        }
    }
    return mem_->read(addr, size);
}

bool
Interp::stepRa(FRa &ra)
{
    const RaSpec &s = *ra.spec;
    FQueue &in = *ra.in;
    FQueue &out = *ra.out;

    // Propagate a consumer-side skip upstream so the real producer
    // thread takes the enqueue trap (see DESIGN.md). In lockstep mode
    // the oracle mirrors the OOO core's arm decisions instead.
    if (!lockstep_ && out.skipArmed && !in.skipArmed)
        in.skipArmed = true;

    if (out.full())
        return false;

    if (s.mode == RaMode::Scan && ra.scanning) {
        Addr addr = s.base + ra.cur * s.elemBytes;
        out.push(readMem(addr, s.elemBytes), false);
        if (hooks_)
            hooks_->touchMem(s.core, addr, s.elemBytes, false);
        ra.cur++;
        if (ra.cur >= ra.end)
            ra.scanning = false;
        return true;
    }

    if (in.empty())
        return false;
    auto [v, ctrl] = in.front();

    if (ctrl) {
        panic_if(s.mode == RaMode::Scan && ra.haveStart,
                 "control value between scan start and end");
        in.pop_front();
        out.push(v, true);
        return true;
    }

    if (s.mode == RaMode::Indirect) {
        in.pop_front();
        Addr addr = s.base + v * s.elemBytes;
        out.push(readMem(addr, s.elemBytes), false);
        if (hooks_)
            hooks_->touchMem(s.core, addr, s.elemBytes, false);
        return true;
    }

    if (s.mode == RaMode::IndirectPair) {
        // Needs space for both outputs (the timing model retires them
        // back to back; keep the functional model all-or-nothing).
        if (out.size() + 2 > out.cap)
            return false;
        in.pop_front();
        Addr addr = s.base + v * s.elemBytes;
        out.push(readMem(addr, s.elemBytes), false);
        out.push(readMem(addr + s.elemBytes, s.elemBytes), false);
        if (hooks_) {
            hooks_->touchMem(s.core, addr, s.elemBytes, false);
            hooks_->touchMem(s.core, addr + s.elemBytes, s.elemBytes,
                             false);
        }
        return true;
    }

    if (s.mode == RaMode::IndirectKV) {
        if (out.size() + 2 > out.cap)
            return false;
        in.pop_front();
        out.push(v, false);
        Addr addr = s.base + v * s.elemBytes;
        out.push(readMem(addr, s.elemBytes), false);
        if (hooks_)
            hooks_->touchMem(s.core, addr, s.elemBytes, false);
        return true;
    }

    // Scan mode: collect start, then end.
    in.pop_front();
    if (!ra.haveStart) {
        ra.start = v;
        ra.haveStart = true;
    } else {
        ra.haveStart = false;
        if (ra.start < v) {
            ra.scanning = true;
            ra.cur = ra.start;
            ra.end = v;
        }
    }
    return true;
}

bool
Interp::sweepAgents()
{
    bool progressed = false;
    for (FRa &ra : ras_)
        progressed |= stepRa(ra);
    for (size_t i = 0; i < connQ_.size(); i++)
        progressed |= stepConnector(i);
    return progressed;
}

bool
Interp::stepConnector(size_t idx)
{
    FQueue &from = *connQ_[idx].first;
    FQueue &to = *connQ_[idx].second;

    if (!lockstep_ && to.skipArmed && !from.skipArmed)
        from.skipArmed = true;

    if (from.empty() || to.full())
        return false;
    auto [v, ctrl] = from.front();
    from.pop_front();
    to.push(v, ctrl);
    return true;
}

} // namespace pipette
