#include "isa/interp.h"

#include "sim/logging.h"

namespace pipette {

namespace {
constexpr uint32_t
queueKey(CoreId core, QueueId q)
{
    return (core << 8) | q;
}
} // namespace

Interp::Interp(const MachineSpec &spec, SimMemory *mem,
               uint32_t defaultQueueCap)
    : spec_(spec), mem_(mem), defaultCap_(defaultQueueCap)
{
    for (const ThreadSpec &ts : spec.threads) {
        FThread t;
        t.spec = &ts;
        t.regs = ts.initRegs;
        t.regs[reg::ZERO] = 0;
        t.mapDir.fill(-1);
        t.mapQ.fill(INVALID_QUEUE);
        for (const QueueMapSpec &m : ts.queueMaps) {
            panic_if(m.archReg == reg::ZERO, "cannot queue-map r0");
            t.mapDir[m.archReg] = m.dir == QueueDir::In ? 0 : 1;
            t.mapQ[m.archReg] = m.queue;
            queue(ts.core, m.queue); // materialize
        }
        threads_.push_back(t);
    }
    for (const RaSpec &rs : spec.ras) {
        FRa ra;
        ra.spec = &rs;
        queue(rs.core, rs.inQueue);
        queue(rs.core, rs.outQueue);
        ras_.push_back(ra);
    }
    for (const ConnectorSpec &cs : spec.connectors) {
        queue(cs.fromCore, cs.fromQueue);
        queue(cs.toCore, cs.toQueue);
    }
    for (const QueueCapSpec &qc : spec.queueCaps)
        queue(qc.core, qc.queue).cap = qc.capacity;
}

Interp::FQueue &
Interp::queue(CoreId core, QueueId q)
{
    auto [it, inserted] = queues_.try_emplace(queueKey(core, q));
    if (inserted)
        it->second.cap = defaultCap_;
    return it->second;
}

uint64_t
Interp::reg(size_t idx, ArchRegId r) const
{
    return threads_[idx].regs[r];
}

uint64_t
Interp::threadInstrs(size_t idx) const
{
    return threads_[idx].instrs;
}

Interp::Result
Interp::run(uint64_t maxRounds)
{
    uint64_t rounds = 0;
    while (rounds < maxRounds) {
        rounds++;
        bool progressed = false;
        bool allHalted = true;
        for (FThread &t : threads_) {
            if (!t.halted) {
                progressed |= stepThread(t);
                allHalted &= t.halted;
            }
        }
        for (FRa &ra : ras_)
            progressed |= stepRa(ra);
        for (const ConnectorSpec &c : spec_.connectors)
            progressed |= stepConnector(c);

        uint64_t total = 0;
        for (const FThread &t : threads_)
            total += t.instrs;
        if (allHalted)
            return {Status::Done, total, rounds};
        if (!progressed)
            return {Status::Deadlock, total, rounds};
    }
    uint64_t total = 0;
    for (const FThread &t : threads_)
        total += t.instrs;
    return {Status::StepLimit, total, rounds};
}

bool
Interp::stepThread(FThread &t)
{
    const Instr &in = t.spec->prog->at(t.pc);
    const OpInfo &info = opInfo(in.op);
    CoreId core = t.spec->core;

    // Collect the architectural source registers this instruction reads.
    // PEEK/SKIPTC name their queue via rs1 but do not "read" it as data.
    ArchRegId srcs[3];
    int nsrcs = 0;
    if (info.readsRs1)
        srcs[nsrcs++] = in.rs1;
    if (info.readsRs2)
        srcs[nsrcs++] = in.rs2;
    if (info.readsRd)
        srcs[nsrcs++] = in.rd;

    // --- Gate 1: every dequeue source must have a committed entry. ---
    for (int i = 0; i < nsrcs; i++) {
        ArchRegId r = srcs[i];
        panic_if(t.mapDir[r] == 1, "read of output-mapped r",
                 static_cast<int>(r), " in ", in.toString());
        if (t.mapDir[r] == 0 && queue(core, t.mapQ[r]).q.empty())
            return false; // blocked on empty queue
        for (int j = 0; j < i; j++) {
            panic_if(t.mapDir[r] == 0 && t.mapDir[srcs[j]] == 0 &&
                         t.mapQ[srcs[j]] == t.mapQ[r],
                     "instruction dequeues the same queue twice: ",
                     in.toString());
        }
    }

    // PEEK/SKIPTC queue availability.
    bool isPeek = in.op == Op::PEEK;
    bool isSkip = in.op == Op::SKIPTC;
    if (isPeek || isSkip) {
        panic_if(t.mapDir[in.rs1] != 0, "peek/skiptc on non-input-mapped r",
                 static_cast<int>(in.rs1));
        FQueue &q = queue(core, t.mapQ[in.rs1]);
        if (q.q.empty()) {
            // In lockstep mode arming is dictated by the OOO core's
            // commits (setSkipArmed), never decided here.
            if (isSkip && !lockstep_)
                q.skipArmed = true;
            return false;
        }
    }

    // --- Gate 2: control value at the head of any dequeue source? ---
    // Dispatch to the dequeue control handler, consuming the CV.
    auto cvTrap = [&](QueueId qid, uint64_t value) {
        panic_if(t.spec->deqHandler < 0,
                 "control value dequeued with no handler (program '",
                 t.spec->prog->name(), "' pc ", t.pc, ")");
        t.regs[reg::CVVAL] = value;
        t.regs[reg::CVQID] = qid;
        t.regs[reg::CVRET] = t.pc;
        t.pc = static_cast<Addr>(t.spec->deqHandler);
        t.instrs++;
    };

    for (int i = 0; i < nsrcs; i++) {
        ArchRegId r = srcs[i];
        if (t.mapDir[r] != 0)
            continue;
        FQueue &q = queue(core, t.mapQ[r]);
        if (q.q.front().second) {
            uint64_t v = q.q.front().first;
            q.q.pop_front();
            cvTrap(t.mapQ[r], v);
            return true;
        }
    }
    if (isPeek) {
        FQueue &q = queue(core, t.mapQ[in.rs1]);
        if (q.q.front().second) {
            uint64_t v = q.q.front().first;
            q.q.pop_front();
            cvTrap(t.mapQ[in.rs1], v);
            return true;
        }
    }

    // --- Gate 3: destination enqueue conditions. ---
    bool enq = info.writesRd && in.rd != reg::ZERO && t.mapDir[in.rd] == 1;
    panic_if(in.op == Op::ENQC && !enq, "enqc destination is not "
             "output-mapped: ", in.toString());
    if (enq) {
        FQueue &q = queue(core, t.mapQ[in.rd]);
        if (q.skipArmed && in.op != Op::ENQC) {
            // Enqueue trap: redirect to the enqueue control handler; the
            // enqueue does not happen and no source is consumed.
            panic_if(t.spec->enqHandler < 0,
                     "skip armed with no enqueue handler (program '",
                     t.spec->prog->name(), "')");
            t.regs[reg::CVQID] = t.mapQ[in.rd];
            t.regs[reg::CVRET] = t.pc;
            t.pc = static_cast<Addr>(t.spec->enqHandler);
            t.instrs++;
            return true;
        }
        if (q.full())
            return false; // blocked on full queue
    }

    // --- SKIPTC main behaviour (head is data or ctrl, queue nonempty) ---
    if (isSkip) {
        FQueue &q = queue(core, t.mapQ[in.rs1]);
        auto [v, ctrl] = q.q.front();
        q.q.pop_front();
        if (!ctrl)
            return true; // discarded one data value; pc unchanged
        q.skipArmed = false;
        if (in.rd != reg::ZERO) {
            if (enq)
                queue(core, t.mapQ[in.rd]).push(v, false);
            else
                t.regs[in.rd] = v;
        }
        t.pc++;
        t.instrs++;
        return true;
    }

    // --- Consume dequeue sources and read register sources. ---
    uint64_t vals[3] = {0, 0, 0};
    for (int i = 0; i < nsrcs; i++) {
        ArchRegId r = srcs[i];
        if (t.mapDir[r] == 0) {
            FQueue &q = queue(core, t.mapQ[r]);
            vals[i] = q.q.front().first;
            q.q.pop_front();
        } else {
            vals[i] = t.regs[r];
        }
    }
    // Map positional values back to operand roles.
    uint64_t v1 = 0, v2 = 0, vd = 0;
    {
        int i = 0;
        if (info.readsRs1)
            v1 = vals[i++];
        if (info.readsRs2)
            v2 = vals[i++];
        if (info.readsRd)
            vd = vals[i++];
    }

    // --- Execute. ---
    uint64_t result = 0;
    bool hasResult = info.writesRd;
    Addr nextPc = t.pc + 1;

    if (isPeek) {
        result = queue(core, t.mapQ[in.rs1]).q.front().first;
    } else if (in.op == Op::ENQC) {
        result = v1;
    } else if (info.isLoad && !info.isAtomic) {
        result = mem_->read(v1 + static_cast<uint64_t>(in.imm),
                            info.memBytes);
    } else if (info.isStore && !info.isAtomic) {
        mem_->write(v1 + static_cast<uint64_t>(in.imm), info.memBytes, v2);
    } else if (info.isAtomic) {
        Addr addr = v1;
        uint64_t old = mem_->read(addr, info.memBytes);
        AtomicResult ar = evalAtomic(in.op, old, v2, vd);
        if (ar.doStore)
            mem_->write(addr, info.memBytes, ar.newValue);
        result = old;
    } else if (info.isCondBranch) {
        bool useImm = in.op >= Op::BEQI && in.op <= Op::BGEI;
        bool taken = evalBranch(in.op, v1,
                                useImm ? static_cast<uint64_t>(in.imm) : v2);
        if (taken)
            nextPc = static_cast<Addr>(in.target);
    } else if (in.op == Op::JMP) {
        nextPc = static_cast<Addr>(in.target);
    } else if (in.op == Op::JAL) {
        result = t.pc + 1;
        nextPc = static_cast<Addr>(in.target);
    } else if (in.op == Op::JR) {
        nextPc = v1;
    } else if (in.op == Op::HALT) {
        t.halted = true;
        t.instrs++;
        return true;
    } else if (in.op == Op::NOP || in.op == Op::FENCE) {
        // nothing (the interpreter is sequentially consistent)
    } else {
        result = evalAlu(in.op, v1,
                         info.readsRs2 ? v2 : static_cast<uint64_t>(in.imm));
    }

    // --- Write destination (register or enqueue). ---
    if (hasResult && in.rd != reg::ZERO) {
        panic_if(t.mapDir[in.rd] == 0, "write to input-mapped r",
                 static_cast<int>(in.rd), " in ", in.toString());
        if (enq)
            queue(core, t.mapQ[in.rd]).push(result, in.op == Op::ENQC);
        else
            t.regs[in.rd] = result;
    }

    t.pc = nextPc;
    t.instrs++;
    return true;
}

bool
Interp::stepRa(FRa &ra)
{
    const RaSpec &s = *ra.spec;
    FQueue &in = queue(s.core, s.inQueue);
    FQueue &out = queue(s.core, s.outQueue);

    // Propagate a consumer-side skip upstream so the real producer
    // thread takes the enqueue trap (see DESIGN.md). In lockstep mode
    // the oracle mirrors the OOO core's arm decisions instead.
    if (!lockstep_ && out.skipArmed && !in.skipArmed)
        in.skipArmed = true;

    if (out.full())
        return false;

    if (s.mode == RaMode::Scan && ra.scanning) {
        out.push(mem_->read(s.base + ra.cur * s.elemBytes, s.elemBytes),
                 false);
        ra.cur++;
        if (ra.cur >= ra.end)
            ra.scanning = false;
        return true;
    }

    if (in.q.empty())
        return false;
    auto [v, ctrl] = in.q.front();

    if (ctrl) {
        panic_if(s.mode == RaMode::Scan && ra.haveStart,
                 "control value between scan start and end");
        in.q.pop_front();
        out.push(v, true);
        return true;
    }

    if (s.mode == RaMode::Indirect) {
        in.q.pop_front();
        out.push(mem_->read(s.base + v * s.elemBytes, s.elemBytes), false);
        return true;
    }

    if (s.mode == RaMode::IndirectPair) {
        // Needs space for both outputs (the timing model retires them
        // back to back; keep the functional model all-or-nothing).
        if (out.q.size() + 2 > out.cap)
            return false;
        in.q.pop_front();
        out.push(mem_->read(s.base + v * s.elemBytes, s.elemBytes), false);
        out.push(mem_->read(s.base + (v + 1) * s.elemBytes, s.elemBytes),
                 false);
        return true;
    }

    if (s.mode == RaMode::IndirectKV) {
        if (out.q.size() + 2 > out.cap)
            return false;
        in.q.pop_front();
        out.push(v, false);
        out.push(mem_->read(s.base + v * s.elemBytes, s.elemBytes), false);
        return true;
    }

    // Scan mode: collect start, then end.
    in.q.pop_front();
    if (!ra.haveStart) {
        ra.start = v;
        ra.haveStart = true;
    } else {
        ra.haveStart = false;
        if (ra.start < v) {
            ra.scanning = true;
            ra.cur = ra.start;
            ra.end = v;
        }
    }
    return true;
}

bool
Interp::sweepAgents()
{
    bool progressed = false;
    for (FRa &ra : ras_)
        progressed |= stepRa(ra);
    for (const ConnectorSpec &c : spec_.connectors)
        progressed |= stepConnector(c);
    return progressed;
}

bool
Interp::stepConnector(const ConnectorSpec &c)
{
    FQueue &from = queue(c.fromCore, c.fromQueue);
    FQueue &to = queue(c.toCore, c.toQueue);

    if (!lockstep_ && to.skipArmed && !from.skipArmed)
        from.skipArmed = true;

    if (from.q.empty() || to.full())
        return false;
    auto [v, ctrl] = from.q.front();
    from.q.pop_front();
    to.push(v, ctrl);
    return true;
}

} // namespace pipette
