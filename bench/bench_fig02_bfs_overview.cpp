/**
 * @file
 * Fig. 2: BFS performance and IPC on serial, data-parallel, and Pipette
 * versions on one 4-thread SMT core, plus the 4-core streaming
 * multicore, on the road-network input (the paper's Fig. 2 setup).
 */

#include "bench_common.h"

using namespace pipette;
using namespace pipette::bench;

int
main(int argc, char **argv)
{
    BenchOpts o = BenchOpts::parse(argc, argv);
    banner("Figure 2", "BFS speedup over serial and IPC "
                       "(road-network graph, 4-thread SMT core)");
    printConfig(o);

    std::vector<GraphInput> inputs;
    {
        hostprof::ScopedPhase hp(hostprof::Phase::InputGen);
        inputs = makeTable5Inputs(o.scale * 0.6);
    }
    Graph &rd = inputs.back().graph; // "Rd"
    std::printf("input: Rd road proxy, %u vertices, %u edges\n\n",
                rd.numVertices, rd.numEdges());

    // --trace-*/--sample-*/--histograms: re-run the Pipette variant
    // alone with the observability layer on (the sweep rows above stay
    // un-instrumented so their timing is comparable across figures).
    if (o.obsRequested()) {
        SystemConfig cfg = baseConfig();
        o.applyObservability(cfg);
        Runner runner(cfg);
        BfsWorkload wl(&rd);
        RunResult r = runner.run(wl, Variant::Pipette, "Rd", 1);
        std::printf("instrumented bfs/pipette: %llu cycles, IPC %.3f, "
                    "verified=%s\n\n",
                    static_cast<unsigned long long>(r.cycles), r.ipc,
                    runStatus(r).c_str());
        if (o.traceOnly)
            return finishHostProf(o, "fig02_bfs_overview",
                                  r.hostSeconds);
    }

    struct Row
    {
        const char *name;
        Variant v;
        uint32_t cores;
    };
    const Row rows[] = {
        {"serial", Variant::Serial, 1},
        {"data-parallel", Variant::DataParallel, 1},
        {"pipette", Variant::Pipette, 1},
        {"streaming-4c", Variant::Streaming, 4},
    };

    std::vector<parallel::SimJob> jobs;
    for (const Row &row : rows)
        jobs.push_back(simJob(
            baseConfig(), [&rd] { return new BfsWorkload(&rd); }, row.v,
            "Rd", row.cores));
    std::vector<RunResult> rs = runJobs(o, jobs);

    Table t({"variant", "speedup-vs-serial", "core-IPC", "verified"});
    double serialCycles = static_cast<double>(rs[0].cycles);
    for (size_t i = 0; i < rs.size(); i++) {
        t.addRow({rows[i].name,
                  Table::num(serialCycles / static_cast<double>(
                                                rs[i].cycles)),
                  Table::num(rs[i].ipc), runStatus(rs[i])});
    }
    t.print();
    std::printf("\npaper shape: serial IPC ~0.43; data-parallel only "
                "~1.3x; Pipette ~4.9x with IPC ~2.4;\n"
                "streaming comparable to Pipette despite 4 cores.\n");
    double hostTotal = 0;
    for (const RunResult &r : rs)
        hostTotal += r.hostSeconds;
    return finishHostProf(o, "fig02_bfs_overview", hostTotal);
}
