/**
 * @file
 * Fig. 11: CPI stacks -- each variant's cycles broken into issuing,
 * backend (memory) stalls, full/empty queue stalls, and other, relative
 * to the data-parallel baseline's cycle count.
 */

#include "bench_common.h"

using namespace pipette;
using namespace pipette::bench;

int
main(int argc, char **argv)
{
    BenchOpts o = BenchOpts::parse(argc, argv);
    banner("Figure 11",
           "Cycle breakdown (CPI stacks) relative to data-parallel");
    printConfig(o);

    // --sample-interval=N: time-resolved variant of this figure. Drive
    // one BFS/Pipette System directly so the interval sampler's rows
    // are reachable, print the per-interval CPI stack, and write
    // fig11_intervals.csv alongside the --sample-csv dump.
    if (o.sampleInterval > 0) {
        auto inputs = makeTable5Inputs(o.scale * 0.6);
        Graph &rd = inputs.back().graph; // "Rd"
        SystemConfig cfg = baseConfig();
        o.applyObservability(cfg);
        System sys(cfg);
        BfsWorkload wl(&rd);
        BuildContext ctx(&sys);
        wl.build(ctx, Variant::Pipette);
        sys.configure(ctx.spec);
        auto res = sys.run();
        std::printf("bfs/pipette on Rd: %llu cycles, %llu instrs\n\n",
                    static_cast<unsigned long long>(res.cycles),
                    static_cast<unsigned long long>(res.instrs));

        Table t({"cycle", "instrs", "issue", "backend", "queue",
                 "other"});
        const auto &rows = sys.observer()->sampleRows();
        FILE *f = std::fopen("fig11_intervals.csv", "w");
        if (f)
            std::fprintf(f, "cycle,instrs,cpi_issue,cpi_backend,"
                            "cpi_queue,cpi_other\n");
        for (const auto &row : rows) {
            double tot = 0;
            for (size_t b = 0; b < NUM_CPI_BUCKETS; b++)
                tot += static_cast<double>(row.cpi[b]);
            std::array<double, NUM_CPI_BUCKETS> frac = {};
            for (size_t b = 0; b < NUM_CPI_BUCKETS; b++)
                frac[b] =
                    tot ? static_cast<double>(row.cpi[b]) / tot : 0;
            t.addRow({std::to_string(row.cycle),
                      std::to_string(row.instrs), Table::num(frac[0]),
                      Table::num(frac[1]), Table::num(frac[2]),
                      Table::num(frac[3])});
            if (f) {
                std::fprintf(
                    f, "%llu,%llu,%llu,%llu,%llu,%llu\n",
                    static_cast<unsigned long long>(row.cycle),
                    static_cast<unsigned long long>(row.instrs),
                    static_cast<unsigned long long>(row.cpi[0]),
                    static_cast<unsigned long long>(row.cpi[1]),
                    static_cast<unsigned long long>(row.cpi[2]),
                    static_cast<unsigned long long>(row.cpi[3]));
            }
        }
        if (f) {
            std::fclose(f);
            std::printf("\nper-interval CPI stack written to "
                        "fig11_intervals.csv\n");
        }
        t.print();
        if (o.traceOnly)
            return 0;
        std::printf("\n");
    }

    SweepResult sweep = runSweep(o);

    Table t({"app", "variant", "total", "issue", "backend", "queue",
             "other"});
    for (const std::string &app : appOrder()) {
        for (Variant v : {Variant::Serial, Variant::DataParallel,
                          Variant::Pipette, Variant::Streaming}) {
            // Average the normalized stacks across inputs.
            std::vector<double> tot, parts[NUM_CPI_BUCKETS];
            for (const RunResult &r : sweep.runs) {
                if (r.workload != app || r.variant != v)
                    continue;
                auto dp =
                    sweep.find(app, r.input, Variant::DataParallel);
                if (!dp)
                    continue;
                double norm = static_cast<double>(r.cycles) /
                              static_cast<double>(dp->cycles);
                tot.push_back(norm);
                for (size_t b = 0; b < NUM_CPI_BUCKETS; b++)
                    parts[b].push_back(
                        std::max(r.cpiFrac[b] * norm, 1e-9));
            }
            if (tot.empty())
                continue;
            t.addRow({app, variantName(v), Table::num(gmean(tot)),
                      Table::num(gmean(parts[0])),
                      Table::num(gmean(parts[1])),
                      Table::num(gmean(parts[2])),
                      Table::num(gmean(parts[3]))});
        }
    }
    t.print();
    std::printf("\npaper shape: serial and data-parallel are dominated "
                "by backend (memory) stalls; the streaming multicore by "
                "queue stalls (load imbalance); Pipette mostly "
                "issues.\n");
    return 0;
}
