/**
 * @file
 * Fig. 11: CPI stacks -- each variant's cycles broken into issuing,
 * backend (memory) stalls, full/empty queue stalls, and other, relative
 * to the data-parallel baseline's cycle count.
 */

#include "bench_common.h"

using namespace pipette;
using namespace pipette::bench;

int
main(int argc, char **argv)
{
    BenchOpts o = BenchOpts::parse(argc, argv);
    banner("Figure 11",
           "Cycle breakdown (CPI stacks) relative to data-parallel");
    printConfig(o);

    SweepResult sweep = runSweep(o);

    Table t({"app", "variant", "total", "issue", "backend", "queue",
             "other"});
    for (const std::string &app : appOrder()) {
        for (Variant v : {Variant::Serial, Variant::DataParallel,
                          Variant::Pipette, Variant::Streaming}) {
            // Average the normalized stacks across inputs.
            std::vector<double> tot, parts[NUM_CPI_BUCKETS];
            for (const RunResult &r : sweep.runs) {
                if (r.workload != app || r.variant != v)
                    continue;
                auto dp =
                    sweep.find(app, r.input, Variant::DataParallel);
                if (!dp)
                    continue;
                double norm = static_cast<double>(r.cycles) /
                              static_cast<double>(dp->cycles);
                tot.push_back(norm);
                for (size_t b = 0; b < NUM_CPI_BUCKETS; b++)
                    parts[b].push_back(
                        std::max(r.cpiFrac[b] * norm, 1e-9));
            }
            if (tot.empty())
                continue;
            t.addRow({app, variantName(v), Table::num(gmean(tot)),
                      Table::num(gmean(parts[0])),
                      Table::num(gmean(parts[1])),
                      Table::num(gmean(parts[2])),
                      Table::num(gmean(parts[3]))});
        }
    }
    t.print();
    std::printf("\npaper shape: serial and data-parallel are dominated "
                "by backend (memory) stalls; the streaming multicore by "
                "queue stalls (load imbalance); Pipette mostly "
                "issues.\n");
    return 0;
}
