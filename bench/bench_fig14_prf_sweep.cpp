/**
 * @file
 * Fig. 14: sensitivity to physical register file size. The PRF is swept
 * from 180 to 308 entries with Pipette's queue capacities scaled
 * proportionally (more registers -> deeper queues -> more decoupling);
 * data-parallel performance should stay flat.
 */

#include "bench_common.h"

using namespace pipette;
using namespace pipette::bench;

int
main(int argc, char **argv)
{
    BenchOpts o = BenchOpts::parse(argc, argv);
    banner("Figure 14",
           "Gmean speedup over serial (212-entry PRF) vs PRF size");
    printConfig(o);

    // Representative kernels: BFS on the road and power-law proxies.
    auto inputs = makeTable5Inputs(o.scale * 0.4);
    std::vector<const GraphInput *> picks = {&inputs[0], &inputs[4]};

    const uint32_t prfs[] = {180, 212, 244, 276, 308};

    // Every cell of the sweep -- the serial baselines at the default
    // 212-entry PRF plus (PRF, input, variant) -- is an independent
    // System, so batch them all through one job pool.
    std::vector<parallel::SimJob> jobs;
    for (auto *gi : picks)
        jobs.push_back(simJob(
            baseConfig(), [g = &gi->graph] { return new BfsWorkload(g); },
            Variant::Serial, gi->name));

    std::vector<uint32_t> queueCaps;
    for (uint32_t prf : prfs) {
        SystemConfig cfg = baseConfig();
        cfg.core.physRegs = prf;
        // Scale queues with the registers left after the architectural
        // state (paper: "queues scale proportionally with PRF size").
        uint32_t mappable = prf - 4 * NUM_ARCH_REGS;
        cfg.core.maxQueueRegs = mappable;
        cfg.core.queueCapacity =
            std::max(8u, 32 * mappable / 148);
        queueCaps.push_back(cfg.core.queueCapacity);
        for (auto *gi : picks)
            for (Variant v : {Variant::DataParallel, Variant::Pipette})
                jobs.push_back(simJob(
                    cfg, [g = &gi->graph] { return new BfsWorkload(g); },
                    v, gi->name));
    }
    std::vector<RunResult> rs = runJobs(o, jobs);

    std::vector<double> serialCycles;
    for (size_t i = 0; i < picks.size(); i++)
        serialCycles.push_back(static_cast<double>(rs[i].cycles));

    Table t({"PRF", "queue-cap", "data-parallel", "pipette"});
    size_t cell = picks.size();
    for (size_t p = 0; p < std::size(prfs); p++) {
        std::vector<double> sDp, sPip;
        for (size_t i = 0; i < picks.size(); i++) {
            sDp.push_back(serialCycles[i] /
                          static_cast<double>(rs[cell++].cycles));
            sPip.push_back(serialCycles[i] /
                           static_cast<double>(rs[cell++].cycles));
        }
        t.addRow({std::to_string(prfs[p]),
                  std::to_string(queueCaps[p]),
                  Table::num(gmean(sDp)), Table::num(gmean(sPip))});
    }
    t.print();
    std::printf("\npaper shape: data-parallel is insensitive to PRF "
                "size; Pipette keeps a large advantage across the whole "
                "range and benefits modestly from bigger PRFs (deeper "
                "queues, more decoupling).\n");
    return 0;
}
