/**
 * @file
 * Fig. 14: sensitivity to physical register file size. The PRF is swept
 * from 180 to 308 entries with Pipette's queue capacities scaled
 * proportionally (more registers -> deeper queues -> more decoupling);
 * data-parallel performance should stay flat.
 */

#include "bench_common.h"

using namespace pipette;
using namespace pipette::bench;

int
main(int argc, char **argv)
{
    BenchOpts o = BenchOpts::parse(argc, argv);
    banner("Figure 14",
           "Gmean speedup over serial (212-entry PRF) vs PRF size");
    printConfig(o);

    // Representative kernels: BFS on the road and power-law proxies.
    auto inputs = makeTable5Inputs(o.scale * 0.4);
    std::vector<const GraphInput *> picks = {&inputs[0], &inputs[4]};

    const uint32_t prfs[] = {180, 212, 244, 276, 308};

    // Serial baseline at the default 212-entry PRF.
    std::vector<double> serialCycles;
    {
        Runner r0(baseConfig());
        for (auto *gi : picks) {
            BfsWorkload wl(&gi->graph);
            serialCycles.push_back(static_cast<double>(
                r0.run(wl, Variant::Serial, gi->name).cycles));
        }
    }

    Table t({"PRF", "queue-cap", "data-parallel", "pipette"});
    for (uint32_t prf : prfs) {
        SystemConfig cfg = baseConfig();
        cfg.core.physRegs = prf;
        // Scale queues with the registers left after the architectural
        // state (paper: "queues scale proportionally with PRF size").
        uint32_t mappable = prf - 4 * NUM_ARCH_REGS;
        cfg.core.maxQueueRegs = mappable;
        cfg.core.queueCapacity =
            std::max(8u, 32 * mappable / 148);
        Runner runner(cfg);
        std::vector<double> sDp, sPip;
        for (size_t i = 0; i < picks.size(); i++) {
            BfsWorkload wlD(&picks[i]->graph);
            auto rd = runner.run(wlD, Variant::DataParallel,
                                 picks[i]->name);
            sDp.push_back(serialCycles[i] /
                          static_cast<double>(rd.cycles));
            BfsWorkload wlP(&picks[i]->graph);
            auto rp = runner.run(wlP, Variant::Pipette, picks[i]->name);
            sPip.push_back(serialCycles[i] /
                           static_cast<double>(rp.cycles));
        }
        t.addRow({std::to_string(prf),
                  std::to_string(cfg.core.queueCapacity),
                  Table::num(gmean(sDp)), Table::num(gmean(sPip))});
    }
    t.print();
    std::printf("\npaper shape: data-parallel is insensitive to PRF "
                "size; Pipette keeps a large advantage across the whole "
                "range and benefits modestly from bigger PRFs (deeper "
                "queues, more decoupling).\n");
    return 0;
}
