/**
 * @file
 * Sampled-simulation accuracy + speed check (DESIGN.md section 11).
 *
 * Default mode (the CI gate): run BFS/Pipette on tier-1-sized inputs
 * both exactly (full detailed simulation) and sampled (fast-forward +
 * detailed windows), sweep a few operating points, and print the
 * extrapolated-vs-exact cycle error for each. The documented operating
 * point (period 20000, window 10000, warmup 2000) must stay within the
 * 3% error bound or the binary exits non-zero.
 *
 * --big: additionally run a million-scale R-MAT graph (>= 100x the
 * paper-scale Co proxy) sampled AND fully detailed, and report the
 * host wall-clock speedup; the sampled run must be >= 10x faster.
 *
 * --sample-period/--sample-window/--sample-warmup override the gate's
 * operating point (the 3% check then applies to the override).
 */

#include "bench_common.h"
#include "sample/sampler.h"

using namespace pipette;
using namespace pipette::bench;

namespace {

struct OperatingPoint
{
    uint64_t period;
    uint64_t window;
    uint64_t warmup;
    bool gate; // the documented point CI hard-fails on
};

struct ErrorRow
{
    double errPct = 0.0;
    bool ok = false;
};

ErrorRow
sampledError(const SystemConfig &base, const Graph *g,
             const OperatingPoint &pt, uint64_t exactCycles,
             unsigned jobs, Table *t, const std::string &input)
{
    SystemConfig cfg = base;
    cfg.sampling.period = pt.period;
    cfg.sampling.window = pt.window;
    cfg.sampling.warmup = pt.warmup;
    BfsWorkload wl(g);
    sample::SampleReport rep =
        sample::runSampled(cfg, wl, Variant::Pipette, jobs);

    ErrorRow row;
    row.ok = rep.ok && rep.verified;
    row.errPct =
        exactCycles
            ? 100.0 *
                  std::abs(static_cast<double>(rep.extrapCycles) -
                           static_cast<double>(exactCycles)) /
                  static_cast<double>(exactCycles)
            : 100.0;
    char period[32], win[32], err[32];
    std::snprintf(period, sizeof(period), "%llu",
                  (unsigned long long)pt.period);
    std::snprintf(win, sizeof(win), "%llu/%llu",
                  (unsigned long long)pt.window,
                  (unsigned long long)pt.warmup);
    std::snprintf(err, sizeof(err), "%.2f%%%s", row.errPct,
                  pt.gate ? "  <- gate" : "");
    t->addRow({input, period, win, std::to_string(rep.windows),
               Table::num(rep.cpi, 3),
               std::to_string((unsigned long long)rep.extrapCycles),
               std::to_string((unsigned long long)exactCycles), err,
               row.ok ? "yes" : "NO"});
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOpts o = BenchOpts::parse(argc, argv);
    bool big = false;
    for (int i = 1; i < argc; i++)
        if (std::strcmp(argv[i], "--big") == 0)
            big = true;

    banner("Sampled simulation",
           "extrapolated CPI error vs exact detailed runs");

    SystemConfig base = baseConfig();
    unsigned jobs = o.effectiveJobs();

    // Tier-1-sized inputs: the same generators and scale class the
    // unit tests use, big enough for a dozen sampling windows.
    struct Input
    {
        std::string name;
        Graph g;
    };
    std::vector<Input> inputs;
    {
        hostprof::ScopedPhase hp(hostprof::Phase::InputGen);
        inputs.push_back({"rmat-8k", makeRmatGraph(8192, 32768, 11)});
        inputs.push_back({"grid-64", makeGridGraph(64, 64, 5)});
    }

    // Operating points: the documented default plus a coarser and a
    // finer period for the sweep table. CLI overrides replace the gate
    // point.
    std::vector<OperatingPoint> pts = {
        {10'000, 10'000, 2'000, false},
        {20'000, 10'000, 2'000, true},
        {40'000, 10'000, 2'000, false},
    };
    if (o.samplingRequested()) {
        pts.clear();
        pts.push_back({o.samplePeriod,
                       o.sampleWindow ? o.sampleWindow : 10'000,
                       o.sampleWarmup ? o.sampleWarmup : 2'000, true});
    }

    Table t({"input", "period", "window/warm", "wins", "cpi",
             "extrap-cycles", "exact-cycles", "error", "ok"});
    bool gatePass = true;
    for (const Input &in : inputs) {
        Runner r(base);
        BfsWorkload wl(&in.g);
        RunResult exact = r.run(wl, Variant::Pipette, in.name, 1);
        if (!exact.verified) {
            std::fprintf(stderr, "FATAL: exact run on %s failed\n",
                         in.name.c_str());
            return 1;
        }
        for (const OperatingPoint &pt : pts) {
            ErrorRow row = sampledError(base, &in.g, pt, exact.cycles,
                                        jobs, &t, in.name);
            if (pt.gate && (!row.ok || row.errPct > 3.0))
                gatePass = false;
        }
    }
    t.print();
    if (!gatePass) {
        std::fprintf(stderr,
                     "\nFAIL: sampled CPI error exceeded the 3%% bound "
                     "(or a run failed) at the gate operating point\n");
        return 1;
    }
    std::printf("\ngate: CPI error within 3%% at the documented "
                "operating point (period 20000, window 10000, warmup "
                "2000)\n");

    if (big) {
        // >= 100x the paper-scale Co proxy (16384 vertices / 55000
        // edges at scale 1): 1.64M vertices, 11M edges.
        banner("Sampled simulation, million-scale",
               "host wall-clock: sampled vs full detailed");
        Graph g = makeRmatGraph(1'638'400, 11'000'000, 11);

        SystemConfig cfg = base;
        cfg.sampling.period = 4'000'000;
        cfg.sampling.window = 20'000;
        cfg.sampling.warmup = 5'000;
        o.applySampling(cfg);
        BfsWorkload wlS(&g);
        sample::SampleReport rep =
            sample::runSampled(cfg, wlS, Variant::Pipette, jobs);
        std::printf("sampled:  %llu instrs, %u windows, cpi %.3f, "
                    "extrap %llu cycles, %.2fs host%s\n",
                    (unsigned long long)rep.ffInstrs, rep.windows,
                    rep.cpi, (unsigned long long)rep.extrapCycles,
                    rep.hostSeconds, rep.verified ? "" : "  [VERIFY FAILED]");
        std::printf("          (build %.2fs, fast-forward %.2fs, "
                    "windows %.2fs)\n",
                    rep.buildSeconds, rep.ffSeconds, rep.windowSeconds);
        if (!rep.ok || !rep.verified) {
            std::fprintf(stderr, "FATAL: big sampled run failed\n");
            return 1;
        }

        Runner r(base);
        BfsWorkload wlE(&g);
        RunResult exact = r.run(wlE, Variant::Pipette, "rmat-1.6M", 1);
        double errPct =
            exact.cycles
                ? 100.0 *
                      std::abs(static_cast<double>(rep.extrapCycles) -
                               static_cast<double>(exact.cycles)) /
                      static_cast<double>(exact.cycles)
                : 100.0;
        double speedup = rep.hostSeconds > 0
                             ? exact.hostSeconds / rep.hostSeconds
                             : 0.0;
        std::printf("detailed: %llu instrs, %llu cycles, %.2fs host\n",
                    (unsigned long long)exact.instrs,
                    (unsigned long long)exact.cycles,
                    exact.hostSeconds);
        std::printf("big-run: %.1fx host speedup, %.2f%% cycle error\n",
                    speedup, errPct);
        if (speedup < 10.0) {
            std::fprintf(stderr,
                         "FAIL: sampled run only %.1fx faster than "
                         "full detailed (need >= 10x)\n",
                         speedup);
            return 1;
        }
    }
    return finishHostProf(o, "sample_error");
}
