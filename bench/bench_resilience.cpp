/**
 * @file
 * Resilience driver (DESIGN.md section 12): one sampled BFS/Pipette
 * run under the durable-checkpoint / interrupt / window-fault flags,
 * with the process exit code taken from the error taxonomy. CI drives
 * it four ways:
 *
 *   interrupt   --checkpoint-out=F --interrupt-at-checkpoint=N
 *               drains at the Nth boundary, leaves a resumable file,
 *               exits 130;
 *   resume      --resume=F (plus the original flags) continues the run
 *               to completion; its --stats-out dump must be
 *               byte-identical to an uninterrupted run's;
 *   corrupt     --resume=<bit-flipped or truncated F> must exit 4
 *               (checkpoint-corrupt), never crash;
 *   fault       --inject-window-failures=2 --fault-window=K completes
 *               with sample.windowsFailed=1 and exit 0 (degraded, not
 *               dead).
 *
 * Real signals work too (SIGINT/SIGTERM are installed cooperatively);
 * the deterministic hook exists so CI needs no timing races.
 */

#include "bench_common.h"
#include "resilience/interrupt.h"
#include "sample/sampler.h"

using namespace pipette;
using namespace pipette::bench;

namespace {

void
writeSampleStats(const std::string &path, const sample::SampleReport &rep)
{
    FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "error: cannot open %s for writing\n",
                     path.c_str());
        std::exit(resilience::exitCode(
            resilience::SimError::HostResource));
    }
    // Sorted map order + %.17g round-trip formatting: the dump is
    // byte-comparable across runs (the resume determinism gate).
    for (const auto &kv : rep.stats)
        std::fprintf(f, "%s %.17g\n", kv.first.c_str(), kv.second);
    std::fprintf(f, "verified %d\n", rep.verified ? 1 : 0);
    std::fclose(f);
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOpts o = BenchOpts::parse(argc, argv);

    banner("Resilience",
           "durable checkpoint/resume + fault-tolerant sampled run");

    // The documented sampled operating point on the tier-1-sized R-MAT
    // input (deterministic generator; same seed everywhere).
    SystemConfig cfg = baseConfig();
    cfg.sampling.period = 20'000;
    cfg.sampling.window = 10'000;
    cfg.sampling.warmup = 2'000;
    o.applySampling(cfg);
    o.applyResilience(cfg);

    resilience::installSignalHandlers();

    Graph g = makeRmatGraph(8192, 32768, 11);
    BfsWorkload wl(&g);
    sample::SampleReport rep =
        sample::runSampled(cfg, wl, Variant::Pipette, o.effectiveJobs());

    std::printf("%s%s: %u windows (%u ok, %u failed, %u retried), "
                "%llu ff-instrs, cpi %.3f, extrap %llu cycles\n",
                rep.resumed ? "resumed " : "",
                rep.interrupted ? "interrupted" : "run",
                rep.windows, rep.windowsOk, rep.windowsFailed,
                rep.windowRetries,
                static_cast<unsigned long long>(rep.ffInstrs), rep.cpi,
                static_cast<unsigned long long>(rep.extrapCycles));
    if (rep.error != resilience::SimError::None) {
        std::fprintf(stderr, "result: %s%s%s\n",
                     resilience::simErrorName(rep.error),
                     rep.errorMsg.empty() ? "" : ": ",
                     rep.errorMsg.c_str());
    }

    if (!o.statsOutPath.empty())
        writeSampleStats(o.statsOutPath, rep);

    if (rep.error != resilience::SimError::None)
        return resilience::exitCode(rep.error);
    if (!rep.ok || !rep.verified) {
        std::fprintf(stderr, "FAIL: sampled run did not complete "
                             "verified\n");
        return 1;
    }
    return 0;
}
