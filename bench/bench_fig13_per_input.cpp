/**
 * @file
 * Fig. 13(a-f): per-input speedups over the data-parallel baseline for
 * every application (serial, Pipette, streaming multicore).
 */

#include "bench_common.h"

using namespace pipette;
using namespace pipette::bench;

int
main(int argc, char **argv)
{
    BenchOpts o = BenchOpts::parse(argc, argv);
    banner("Figure 13", "Per-input speedup over data-parallel");
    printConfig(o);

    SweepResult sweep = runSweep(o);

    char panel = 'a';
    for (const std::string &app : appOrder()) {
        bool any = false;
        Table t({"input", "serial", "data-par", "pipette",
                 "streaming-4c"});
        for (const RunResult &r : sweep.runs) {
            if (r.workload != app || r.variant != Variant::DataParallel)
                continue;
            any = true;
            double dp = static_cast<double>(r.cycles);
            auto cell = [&](Variant v) {
                auto x = sweep.find(app, r.input, v);
                return x ? Table::num(dp / static_cast<double>(x->cycles))
                         : std::string("-");
            };
            t.addRow({r.input, cell(Variant::Serial), "1.00",
                      cell(Variant::Pipette), cell(Variant::Streaming)});
        }
        if (!any)
            continue;
        std::printf("-- Fig. 13(%c): %s --\n", panel++, app.c_str());
        t.print();
        std::printf("\n");
    }
    std::printf("paper shape: Pipette beats data-parallel almost "
                "everywhere (BFS up to 3.9x, best on large low-degree "
                "graphs); SpMM on the small dense-ish input can tie or "
                "slightly lose (frequent control values).\n");
    return 0;
}
