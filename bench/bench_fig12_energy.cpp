/**
 * @file
 * Fig. 12: energy breakdown (core dynamic, core static, caches, DRAM)
 * for each variant, relative to the data-parallel baseline.
 */

#include "bench_common.h"

using namespace pipette;
using namespace pipette::bench;

int
main(int argc, char **argv)
{
    BenchOpts o = BenchOpts::parse(argc, argv);
    banner("Figure 12", "Energy relative to data-parallel "
                        "(event-count model; see DESIGN.md)");
    printConfig(o);

    SweepResult sweep = runSweep(o);

    Table t({"app", "variant", "total", "core-dyn", "core-static",
             "cache", "dram"});
    for (const std::string &app : appOrder()) {
        for (Variant v : {Variant::Serial, Variant::DataParallel,
                          Variant::Pipette, Variant::Streaming}) {
            std::vector<double> tot, dyn, sta, cache, dram;
            for (const RunResult &r : sweep.runs) {
                if (r.workload != app || r.variant != v)
                    continue;
                auto dp =
                    sweep.find(app, r.input, Variant::DataParallel);
                if (!dp)
                    continue;
                double base = dp->energy.total();
                tot.push_back(r.energy.total() / base);
                dyn.push_back(r.energy.coreDynamic / base);
                sta.push_back(r.energy.coreStatic / base);
                cache.push_back(r.energy.cache / base);
                dram.push_back(r.energy.dram / base);
            }
            if (tot.empty())
                continue;
            t.addRow({app, variantName(v), Table::num(gmean(tot)),
                      Table::num(gmean(dyn)), Table::num(gmean(sta)),
                      Table::num(gmean(cache)),
                      Table::num(gmean(dram))});
        }
    }
    t.print();
    std::printf("\npaper shape: Pipette is the most efficient variant "
                "on BFS/CC/PRD/Radii/SpMM (up to 2.2x less energy), by "
                "cutting dynamic energy (fewer instructions) and static "
                "energy (fewer cycles); the streaming multicore wastes "
                "static energy on poorly-utilized cores.\n");
    return 0;
}
