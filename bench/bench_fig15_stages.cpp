/**
 * @file
 * Fig. 15: effect of the number of BFS pipeline stages (2/3/4) with and
 * without reference accelerators, as speedup over serial.
 */

#include "bench_common.h"

using namespace pipette;
using namespace pipette::bench;

int
main(int argc, char **argv)
{
    BenchOpts o = BenchOpts::parse(argc, argv);
    banner("Figure 15",
           "BFS speedup over serial vs pipeline depth, with/without RAs");
    printConfig(o);

    auto inputs = makeTable5Inputs(o.scale * 0.5);
    Graph &rd = inputs[4].graph; // road proxy
    std::printf("input: Rd road proxy, %u vertices, %u edges\n\n",
                rd.numVertices, rd.numEdges());

    Runner runner(baseConfig());
    double serial;
    {
        BfsWorkload wl(&rd);
        serial = static_cast<double>(
            runner.run(wl, Variant::Serial, "Rd").cycles);
    }

    Table t({"stages", "no-RA", "with-RA"});
    for (uint32_t depth : {2u, 3u, 4u}) {
        BfsWorkload::Options opt;
        opt.depth = depth;
        BfsWorkload wlN(&rd, opt);
        auto rn = runner.run(wlN, Variant::PipetteNoRa, "Rd");
        BfsWorkload wlR(&rd, opt);
        auto rr = runner.run(wlR, Variant::Pipette, "Rd");
        t.addRow({std::to_string(depth) + "t",
                  Table::num(serial / static_cast<double>(rn.cycles)),
                  Table::num(serial / static_cast<double>(rr.cycles))});
    }
    t.print();
    std::printf("\npaper shape: without RAs performance peaks at 3 "
                "stages; RAs unlock the 4-stage peak (~1.7x over the "
                "conventional 4-stage pipeline); 2t+RA shows the "
                "pitfall of adding RAs without enough decoupling.\n");
    return 0;
}
