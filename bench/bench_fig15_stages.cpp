/**
 * @file
 * Fig. 15: effect of the number of BFS pipeline stages (2/3/4) with and
 * without reference accelerators, as speedup over serial.
 */

#include "bench_common.h"

using namespace pipette;
using namespace pipette::bench;

int
main(int argc, char **argv)
{
    BenchOpts o = BenchOpts::parse(argc, argv);
    banner("Figure 15",
           "BFS speedup over serial vs pipeline depth, with/without RAs");
    printConfig(o);

    auto inputs = makeTable5Inputs(o.scale * 0.5);
    Graph &rd = inputs[4].graph; // road proxy
    std::printf("input: Rd road proxy, %u vertices, %u edges\n\n",
                rd.numVertices, rd.numEdges());

    std::vector<parallel::SimJob> jobs;
    jobs.push_back(simJob(
        baseConfig(), [&rd] { return new BfsWorkload(&rd); },
        Variant::Serial, "Rd"));
    const uint32_t depths[] = {2, 3, 4};
    for (uint32_t depth : depths) {
        auto mk = [&rd, depth] {
            BfsWorkload::Options opt;
            opt.depth = depth;
            return new BfsWorkload(&rd, opt);
        };
        jobs.push_back(simJob(baseConfig(), mk, Variant::PipetteNoRa,
                              "Rd"));
        jobs.push_back(simJob(baseConfig(), mk, Variant::Pipette, "Rd"));
    }
    std::vector<RunResult> rs = runJobs(o, jobs);

    double serial = static_cast<double>(rs[0].cycles);
    Table t({"stages", "no-RA", "with-RA"});
    for (size_t d = 0; d < std::size(depths); d++) {
        const RunResult &rn = rs[1 + 2 * d];
        const RunResult &rr = rs[2 + 2 * d];
        t.addRow({std::to_string(depths[d]) + "t",
                  Table::num(serial / static_cast<double>(rn.cycles)),
                  Table::num(serial / static_cast<double>(rr.cycles))});
    }
    t.print();
    std::printf("\npaper shape: without RAs performance peaks at 3 "
                "stages; RAs unlock the 4-stage peak (~1.7x over the "
                "conventional 4-stage pipeline); 2t+RA shows the "
                "pitfall of adding RAs without enough decoupling.\n");
    return 0;
}
