/**
 * @file
 * Fig. 17: multicore BFS -- serial (1 core), data-parallel (4 cores x 4
 * threads), streaming single-threaded (one stage per core), and the
 * replicated multicore-Pipette pipeline with cross-core neighbor
 * partitioning; speedups over serial, gmean across graphs.
 */

#include "bench_common.h"

using namespace pipette;
using namespace pipette::bench;

int
main(int argc, char **argv)
{
    BenchOpts o = BenchOpts::parse(argc, argv);
    banner("Figure 17",
           "Multicore BFS: data vs pipeline parallelism across 4 cores");
    printConfig(o);

    auto inputs = makeTable5Inputs(o.scale * 0.5);

    // Four variants per graph, every cell independent: one pool batch.
    std::vector<parallel::SimJob> jobs;
    std::vector<const GraphInput *> picked;
    for (const GraphInput &gi : inputs) {
        if (o.quick && gi.name != "Co" && gi.name != "Rd")
            continue;
        picked.push_back(&gi);
        auto mk = [g = &gi.graph] { return new BfsWorkload(g); };
        jobs.push_back(simJob(baseConfig(), mk, Variant::Serial,
                              gi.name, 1));
        jobs.push_back(simJob(baseConfig(), mk, Variant::DataParallel,
                              gi.name, 4));
        jobs.push_back(simJob(baseConfig(), mk, Variant::Streaming,
                              gi.name, 4));
        jobs.push_back(simJob(baseConfig(), mk,
                              Variant::MulticorePipette, gi.name, 4));
    }
    std::vector<RunResult> rs = runJobs(o, jobs);

    Table t({"graph", "serial-1c", "data-par-4c", "streaming-4c",
             "pipette-multicore-4c"});
    std::vector<double> gDp, gStr, gMc;
    for (size_t i = 0; i < picked.size(); i++) {
        double serial = static_cast<double>(rs[4 * i].cycles);
        double sDp = serial / static_cast<double>(rs[4 * i + 1].cycles);
        double sSt = serial / static_cast<double>(rs[4 * i + 2].cycles);
        double sMc = serial / static_cast<double>(rs[4 * i + 3].cycles);
        gDp.push_back(sDp);
        gStr.push_back(sSt);
        gMc.push_back(sMc);
        t.addRow({picked[i]->name, "1.00", Table::num(sDp),
                  Table::num(sSt), Table::num(sMc)});
    }
    t.addRow({"gmean", "1.00", Table::num(gmean(gDp)),
              Table::num(gmean(gStr)), Table::num(gmean(gMc))});
    t.print();
    std::printf("\npaper shape: 16-thread data-parallel reaches only "
                "~3.8x over serial; streaming is limited by per-stage "
                "load imbalance; multicore Pipette performs best "
                "(~5.9x) by replicating stages and partitioning "
                "neighbors across cores through connectors.\n");
    return 0;
}
