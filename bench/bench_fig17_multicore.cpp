/**
 * @file
 * Fig. 17: multicore BFS -- serial (1 core), data-parallel (4 cores x 4
 * threads), streaming single-threaded (one stage per core), and the
 * replicated multicore-Pipette pipeline with cross-core neighbor
 * partitioning; speedups over serial, gmean across graphs.
 */

#include "bench_common.h"

using namespace pipette;
using namespace pipette::bench;

int
main(int argc, char **argv)
{
    BenchOpts o = BenchOpts::parse(argc, argv);
    banner("Figure 17",
           "Multicore BFS: data vs pipeline parallelism across 4 cores");
    printConfig(o);

    std::vector<GraphInput> inputs;
    {
        hostprof::ScopedPhase hp(hostprof::Phase::InputGen);
        inputs = makeTable5Inputs(o.scale * 0.5);
    }

    // Four variants per graph, every cell independent: one pool batch.
    std::vector<parallel::SimJob> jobs;
    std::vector<const GraphInput *> picked;
    for (const GraphInput &gi : inputs) {
        if (o.quick && gi.name != "Co" && gi.name != "Rd")
            continue;
        picked.push_back(&gi);
        auto mk = [g = &gi.graph] { return new BfsWorkload(g); };
        jobs.push_back(simJob(baseConfig(), mk, Variant::Serial,
                              gi.name, 1));
        jobs.push_back(simJob(baseConfig(), mk, Variant::DataParallel,
                              gi.name, 4));
        jobs.push_back(simJob(baseConfig(), mk, Variant::Streaming,
                              gi.name, 4));
        jobs.push_back(simJob(baseConfig(), mk,
                              Variant::MulticorePipette, gi.name, 4));
    }
    for (parallel::SimJob &j : jobs)
        o.applySampling(j.config); // --epoch-length override
    applyCoreJobs(o, &jobs);
    std::vector<RunResult> rs = runJobs(o, jobs);
    if (!o.statsOutPath.empty())
        writeStatsOut(o.statsOutPath, rs);

    Table t({"graph", "serial-1c", "data-par-4c", "streaming-4c",
             "pipette-multicore-4c"});
    std::vector<double> gDp, gStr, gMc;
    for (size_t i = 0; i < picked.size(); i++) {
        double serial = static_cast<double>(rs[4 * i].cycles);
        double sDp = serial / static_cast<double>(rs[4 * i + 1].cycles);
        double sSt = serial / static_cast<double>(rs[4 * i + 2].cycles);
        double sMc = serial / static_cast<double>(rs[4 * i + 3].cycles);
        gDp.push_back(sDp);
        gStr.push_back(sSt);
        gMc.push_back(sMc);
        t.addRow({picked[i]->name, "1.00", Table::num(sDp),
                  Table::num(sSt), Table::num(sMc)});
    }
    t.addRow({"gmean", "1.00", Table::num(gmean(gDp)),
              Table::num(gmean(gStr)), Table::num(gmean(gMc))});
    t.print();

    // Host-side speedup of the intra-System epoch scheduler: rerun the
    // multicore-Pipette cells with core-jobs=1 and compare wall clock.
    // Simulated results must be byte-identical (the epoch scheduler's
    // determinism contract), so diverging cycle counts are a hard fail.
    {
        FILE *f = std::fopen("BENCH_sweep.json", "w");
        if (f) {
            // With the default short epochs the per-phase work is below
            // kEpochParallelMinWork, so every multicore cell reports
            // auto_inline = true: the System ignored --core-jobs and
            // ran inline (host_speedup 1.0 by construction). Passing
            // --epoch-length past the threshold re-enables the pool.
            bool autoInline = true;
            for (size_t i = 0; i < picked.size(); i++)
                autoInline = autoInline && rs[4 * i + 3].epochAutoInline;
            std::fprintf(f,
                         "{\n  \"bench\": \"fig17_multicore\",\n"
                         "  \"core_jobs\": %u,\n"
                         "  \"auto_inline_fallback\": %s,\n"
                         "  \"runs\": [\n",
                         o.coreJobs, autoInline ? "true" : "false");
            std::vector<double> hostSpeedups;
            for (size_t i = 0; i < picked.size(); i++) {
                size_t mc = 4 * i + 3; // MulticorePipette cell
                double hostN = rs[mc].hostSeconds;
                double host1 = hostN;
                if (o.coreJobs > 1 && !rs[mc].epochAutoInline) {
                    std::vector<parallel::SimJob> base{jobs[mc]};
                    base[0].config.coreJobs = 1;
                    std::vector<RunResult> r1 = runJobs(o, base);
                    host1 = r1[0].hostSeconds;
                    if (r1[0].cycles != rs[mc].cycles) {
                        std::fprintf(stderr,
                                     "FATAL: --core-jobs %u changed "
                                     "simulated cycles on %s (%llu != "
                                     "%llu)\n",
                                     o.coreJobs, picked[i]->name.c_str(),
                                     (unsigned long long)rs[mc].cycles,
                                     (unsigned long long)r1[0].cycles);
                        std::fclose(f);
                        return 1;
                    }
                }
                double sp = hostN > 0 ? host1 / hostN : 1.0;
                hostSpeedups.push_back(sp);
                // Host-prof fields answer *why* the speedup is what it
                // is: barrier-wait % of pooled worker time, per-epoch
                // partition imbalance, and the auto-inline reason. All
                // zeros / empty unless --host-prof/--host-trace was on.
                const hostprof::EpochSummary &he = rs[mc].hostEpoch;
                std::fprintf(f,
                             "    {\"graph\": \"%s\", "
                             "\"variant\": \"multicore-pipette\", "
                             "\"sim_cycles\": %llu, "
                             "\"auto_inline\": %s, "
                             "\"auto_inline_reason\": \"%s\", "
                             "\"host_s_core_jobs_1\": %.4f, "
                             "\"host_s_core_jobs_n\": %.4f, "
                             "\"host_speedup\": %.3f, "
                             "\"barrier_wait_pct\": %.1f, "
                             "\"imbalance_p50_us\": %.3f, "
                             "\"imbalance_p99_us\": %.3f}%s\n",
                             picked[i]->name.c_str(),
                             (unsigned long long)rs[mc].cycles,
                             rs[mc].epochAutoInline ? "true" : "false",
                             autoInlineReason(rs[mc].epochAutoInline,
                                              rs[mc].epochLength,
                                              rs[mc].numCores)
                                 .c_str(),
                             host1, hostN, sp, he.barrierWaitFrac * 100,
                             he.imbalanceP50Us, he.imbalanceP99Us,
                             i + 1 < picked.size() ? "," : "");
            }
            std::fprintf(f, "  ],\n  \"gmean_host_speedup\": %.3f\n}\n",
                         gmean(hostSpeedups));
            std::fclose(f);
            if (o.coreJobs > 1 && autoInline) {
                std::printf("\nhost-side: --core-jobs %u requested but "
                            "the epoch auto-inline fallback engaged "
                            "(epoch work below the parallel threshold); "
                            "pass --epoch-length to re-enable the "
                            "pool; details in BENCH_sweep.json\n",
                            o.coreJobs);
            } else if (o.coreJobs > 1) {
                std::printf("\nhost-side: --core-jobs %u ran the "
                            "4-core cells %.2fx faster than core-jobs "
                            "1 (gmean, identical simulated results); "
                            "details in BENCH_sweep.json\n",
                            o.coreJobs, gmean(hostSpeedups));
            }
        }
    }
    std::printf("\npaper shape: 16-thread data-parallel reaches only "
                "~3.8x over serial; streaming is limited by per-stage "
                "load imbalance; multicore Pipette performs best "
                "(~5.9x) by replicating stages and partitioning "
                "neighbors across cores through connectors.\n");

    double hostTotal = 0;
    std::string inlineReason;
    for (const RunResult &r : rs) {
        hostTotal += r.hostSeconds;
        if (inlineReason.empty() && r.epochAutoInline)
            inlineReason = autoInlineReason(true, r.epochLength,
                                            r.numCores);
    }
    return finishHostProf(o, "fig17_multicore", hostTotal, inlineReason);
}
