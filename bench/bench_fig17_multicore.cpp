/**
 * @file
 * Fig. 17: multicore BFS -- serial (1 core), data-parallel (4 cores x 4
 * threads), streaming single-threaded (one stage per core), and the
 * replicated multicore-Pipette pipeline with cross-core neighbor
 * partitioning; speedups over serial, gmean across graphs.
 */

#include "bench_common.h"

using namespace pipette;
using namespace pipette::bench;

int
main(int argc, char **argv)
{
    BenchOpts o = BenchOpts::parse(argc, argv);
    banner("Figure 17",
           "Multicore BFS: data vs pipeline parallelism across 4 cores");
    printConfig(o);

    auto inputs = makeTable5Inputs(o.scale * 0.5);
    Runner runner(baseConfig());

    Table t({"graph", "serial-1c", "data-par-4c", "streaming-4c",
             "pipette-multicore-4c"});
    std::vector<double> gDp, gStr, gMc;
    for (const GraphInput &gi : inputs) {
        if (o.quick && gi.name != "Co" && gi.name != "Rd")
            continue;
        BfsWorkload w0(&gi.graph);
        double serial = static_cast<double>(
            runner.run(w0, Variant::Serial, gi.name, 1).cycles);
        BfsWorkload w1(&gi.graph);
        auto dp = runner.run(w1, Variant::DataParallel, gi.name, 4);
        BfsWorkload w2(&gi.graph);
        auto st = runner.run(w2, Variant::Streaming, gi.name, 4);
        BfsWorkload w3(&gi.graph);
        auto mc = runner.run(w3, Variant::MulticorePipette, gi.name, 4);
        double sDp = serial / static_cast<double>(dp.cycles);
        double sSt = serial / static_cast<double>(st.cycles);
        double sMc = serial / static_cast<double>(mc.cycles);
        gDp.push_back(sDp);
        gStr.push_back(sSt);
        gMc.push_back(sMc);
        t.addRow({gi.name, "1.00", Table::num(sDp), Table::num(sSt),
                  Table::num(sMc)});
    }
    t.addRow({"gmean", "1.00", Table::num(gmean(gDp)),
              Table::num(gmean(gStr)), Table::num(gmean(gMc))});
    t.print();
    std::printf("\npaper shape: 16-thread data-parallel reaches only "
                "~3.8x over serial; streaming is limited by per-stage "
                "load imbalance; multicore Pipette performs best "
                "(~5.9x) by replicating stages and partitioning "
                "neighbors across cores through connectors.\n");
    return 0;
}
