/**
 * @file
 * Table III: Pipette's storage requirements, recomputed from the
 * configuration (the paper's point: the additions are tiny because the
 * queues reuse the physical register file).
 */

#include "bench_common.h"

using namespace pipette;
using namespace pipette::bench;

int
main(int argc, char **argv)
{
    BenchOpts o = BenchOpts::parse(argc, argv);
    (void)o;
    banner("Table III", "Pipette storage requirements per core");

    CoreConfig c = baseConfig().core;
    uint32_t prfBits = 32 - __builtin_clz(c.physRegs - 1); // idx width
    uint32_t mappable = c.maxQueueRegs;

    // QRM: one entry per mappable register: physical register index +
    // control bit; plus per-queue spec/committed head/tail pointers.
    uint32_t qrmEntryBits = prfBits + 1;
    uint32_t qrmBits = mappable * qrmEntryBits;
    uint32_t ptrBits = 32 - __builtin_clz(c.queueCapacity * 2 - 1);
    uint32_t ptrsBits = c.numQueues * 4 * ptrBits;
    // Per-thread enqueue + dequeue control handler PCs (64-bit each).
    uint32_t handlerBits = c.smtThreads * 2 * 64;
    uint32_t totalBits = qrmBits + ptrsBits + handlerBits;

    Table t({"structure", "entries", "bits", "bytes"});
    t.addRow({"QRM entries (reg idx + ctrl bit)",
              std::to_string(mappable), std::to_string(qrmBits),
              Table::num(qrmBits / 8.0, 0)});
    t.addRow({"queue head/tail pointers (spec+committed)",
              std::to_string(c.numQueues * 4), std::to_string(ptrsBits),
              Table::num(ptrsBits / 8.0, 0)});
    t.addRow({"control-handler PCs", std::to_string(c.smtThreads * 2),
              std::to_string(handlerBits),
              Table::num(handlerBits / 8.0, 0)});
    t.addRow({"total", "-", std::to_string(totalBits),
              Table::num(totalBits / 8.0, 0)});
    t.print();

    double prfFrac = 100.0 * mappable * (qrmEntryBits / 8.0) /
                     (c.physRegs * 8.0); // vs 64-bit PRF storage
    std::printf("\nmappable registers: %u of %u PRF entries "
                "(4 threads x %u architectural regs pinned)\n",
                mappable, c.physRegs, NUM_ARCH_REGS);
    std::printf("QRM storage is ~%.0f%% of the PRF's data storage; the "
                "paper reports 1844 bits of QRM (14%% of PRF) and 2356 "
                "bits total.\n", prfFrac);
    std::printf("RAs: 4 units, 32-entry completion buffers; paper's RTL "
                "synthesis: 0.0014 mm^2 at 45 nm (~0.007%% core area).\n");
    return 0;
}
