/**
 * @file
 * Fig. 10: instructions executed relative to the data-parallel baseline
 * (left, lower is better) and IPC (right, higher is better) for each
 * benchmark variant, averaged across inputs.
 */

#include "bench_common.h"

using namespace pipette;
using namespace pipette::bench;

int
main(int argc, char **argv)
{
    BenchOpts o = BenchOpts::parse(argc, argv);
    banner("Figure 10",
           "Relative committed instructions (vs data-parallel) and IPC");
    printConfig(o);

    SweepResult sweep = runSweep(o);

    Table t({"app", "instr:serial", "instr:pipette", "instr:streaming",
             "ipc:serial", "ipc:data-par", "ipc:pipette",
             "ipc:streaming"});
    for (const std::string &app : appOrder()) {
        std::vector<double> iSer, iPip, iStr;
        std::vector<double> ipcS, ipcD, ipcP, ipcT;
        for (const RunResult &r : sweep.runs) {
            if (r.workload != app || r.variant != Variant::DataParallel)
                continue;
            double dpI = static_cast<double>(r.instrs);
            ipcD.push_back(r.ipc);
            if (auto s = sweep.find(app, r.input, Variant::Serial)) {
                iSer.push_back(static_cast<double>(s->instrs) / dpI);
                ipcS.push_back(s->ipc);
            }
            if (auto p = sweep.find(app, r.input, Variant::Pipette)) {
                iPip.push_back(static_cast<double>(p->instrs) / dpI);
                ipcP.push_back(p->ipc);
            }
            if (auto x = sweep.find(app, r.input, Variant::Streaming)) {
                iStr.push_back(static_cast<double>(x->instrs) / dpI);
                // Whole-system IPC across 4 cores.
                ipcT.push_back(x->ipc);
            }
        }
        if (iPip.empty())
            continue;
        t.addRow({app, Table::num(gmean(iSer)), Table::num(gmean(iPip)),
                  Table::num(gmean(iStr)), Table::num(gmean(ipcS)),
                  Table::num(gmean(ipcD)), Table::num(gmean(ipcP)),
                  Table::num(gmean(ipcT))});
    }
    t.print();
    std::printf("\npaper shape: Pipette commits about as many "
                "instructions as serial (fewer than data-parallel, up "
                "to 3.2x fewer on PRD/Radii) and reaches much higher "
                "IPC than serial.\n");
    return 0;
}
