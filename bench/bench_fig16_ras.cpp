/**
 * @file
 * Fig. 16: per-application effect of reference accelerators -- Pipette
 * without and with RAs, as speedup over the no-RA configuration.
 */

#include "bench_common.h"

using namespace pipette;
using namespace pipette::bench;

int
main(int argc, char **argv)
{
    BenchOpts o = BenchOpts::parse(argc, argv);
    banner("Figure 16", "Pipette speedup from reference accelerators");
    printConfig(o);

    Runner runner(baseConfig());
    // Representative input per app (road proxy for graphs, a mid-size
    // matrix for SpMM), like the paper's per-app averages.
    auto graphs = makeTable5Inputs(o.scale * 0.7);
    Graph &rd = graphs[4].graph;
    Graph &sk = graphs[3].graph;
    auto mats = makeTable6Inputs(o.scale * 0.4);
    SparseMatrix &A = mats[2].matrix;
    SparseMatrix Bt =
        makeSparseMatrix(A.n, A.avgNnzPerRow(), 777).transpose();

    Table t({"app", "no-RA", "with-RA", "RA-speedup"});
    std::vector<double> gains;
    auto report = [&](const std::string &app, WorkloadBase &wlN,
                      WorkloadBase &wlR, const std::string &input) {
        auto rn = runner.run(wlN, Variant::PipetteNoRa, input);
        auto rr = runner.run(wlR, Variant::Pipette, input);
        double gain = static_cast<double>(rn.cycles) /
                      static_cast<double>(rr.cycles);
        gains.push_back(gain);
        t.addRow({app, "1.00", Table::num(gain), Table::num(gain)});
    };

    {
        BfsWorkload a(&rd), b(&rd);
        report("bfs", a, b, "Rd");
    }
    {
        CcWorkload a(&sk), b(&sk);
        report("cc", a, b, "Sk");
    }
    {
        PrdParams p;
        p.maxIters = 3;
        PrdWorkload a(&sk, p), b(&sk, p);
        report("prd", a, b, "Sk");
    }
    {
        RadiiParams p;
        p.numSources = 16;
        RadiiWorkload a(&rd, p), b(&rd, p);
        report("radii", a, b, "Rd");
    }
    {
        SpmmWorkload::Options so;
        so.numCols = 6;
        SpmmWorkload a(&A, &Bt, so), b(&A, &Bt, so);
        report("spmm", a, b, "Cg");
    }
    {
        SiloWorkload::Options so;
        so.numKeys = std::max(2000u,
                              static_cast<uint32_t>(40000 * o.scale));
        so.numQueries =
            std::max(500u, static_cast<uint32_t>(4000 * o.scale));
        SiloWorkload a(so), b(so);
        report("silo", a, b, "ycsb-c");
    }
    t.addRow({"gmean", "1.00", Table::num(gmean(gains)),
              Table::num(gmean(gains))});
    t.print();
    std::printf("\npaper shape: RAs improve performance by ~38%% gmean; "
                "BFS/CC/SpMM benefit substantially, PRD/Radii/Silo "
                "modestly.\n");
    return 0;
}
