/**
 * @file
 * Fig. 16: per-application effect of reference accelerators -- Pipette
 * without and with RAs, as speedup over the no-RA configuration.
 */

#include "bench_common.h"

using namespace pipette;
using namespace pipette::bench;

int
main(int argc, char **argv)
{
    BenchOpts o = BenchOpts::parse(argc, argv);
    banner("Figure 16", "Pipette speedup from reference accelerators");
    printConfig(o);

    // Representative input per app (road proxy for graphs, a mid-size
    // matrix for SpMM), like the paper's per-app averages.
    auto graphs = makeTable5Inputs(o.scale * 0.7);
    Graph &rd = graphs[4].graph;
    Graph &sk = graphs[3].graph;
    auto mats = makeTable6Inputs(o.scale * 0.4);
    SparseMatrix &A = mats[2].matrix;
    SparseMatrix Bt =
        makeSparseMatrix(A.n, A.avgNnzPerRow(), 777).transpose();

    SiloWorkload::Options siloOpts;
    siloOpts.numKeys = std::max(2000u,
                                static_cast<uint32_t>(40000 * o.scale));
    siloOpts.numQueries =
        std::max(500u, static_cast<uint32_t>(4000 * o.scale));

    // One (app, variant) pair per job: no-RA and with-RA cells for all
    // six applications go through the pool as one batch.
    struct Cell
    {
        const char *app;
        const char *input;
        std::function<WorkloadBase *()> mk;
    };
    const std::vector<Cell> cells = {
        {"bfs", "Rd", [&rd] { return new BfsWorkload(&rd); }},
        {"cc", "Sk", [&sk] { return new CcWorkload(&sk); }},
        {"prd", "Sk",
         [&sk] {
             PrdParams p;
             p.maxIters = 3;
             return new PrdWorkload(&sk, p);
         }},
        {"radii", "Rd",
         [&rd] {
             RadiiParams p;
             p.numSources = 16;
             return new RadiiWorkload(&rd, p);
         }},
        {"spmm", "Cg",
         [&A, &Bt] {
             SpmmWorkload::Options so;
             so.numCols = 6;
             return new SpmmWorkload(&A, &Bt, so);
         }},
        {"silo", "ycsb-c",
         [siloOpts] { return new SiloWorkload(siloOpts); }},
    };

    std::vector<parallel::SimJob> jobs;
    for (const Cell &c : cells) {
        jobs.push_back(simJob(baseConfig(), c.mk, Variant::PipetteNoRa,
                              c.input));
        jobs.push_back(simJob(baseConfig(), c.mk, Variant::Pipette,
                              c.input));
    }
    std::vector<RunResult> rs = runJobs(o, jobs);

    Table t({"app", "no-RA", "with-RA", "RA-speedup"});
    std::vector<double> gains;
    for (size_t c = 0; c < cells.size(); c++) {
        const RunResult &rn = rs[2 * c];
        const RunResult &rr = rs[2 * c + 1];
        double gain = static_cast<double>(rn.cycles) /
                      static_cast<double>(rr.cycles);
        gains.push_back(gain);
        t.addRow({cells[c].app, "1.00", Table::num(gain),
                  Table::num(gain)});
    }
    t.addRow({"gmean", "1.00", Table::num(gmean(gains)),
              Table::num(gmean(gains))});
    t.print();
    std::printf("\npaper shape: RAs improve performance by ~38%% gmean; "
                "BFS/CC/SpMM benefit substantially, PRD/Radii/Silo "
                "modestly.\n");
    return 0;
}
