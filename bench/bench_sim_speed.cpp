/**
 * @file
 * google-benchmark microbenchmarks of the simulator's own building
 * blocks: QRM operations, cache-hierarchy accesses, functional
 * interpretation, and whole-core cycle throughput, plus end-to-end
 * KIPS (simulated kilo-instructions per host second) runs of BFS.
 * These track the host-side cost of simulation, not simulated
 * performance. Results are also written to BENCH_sim_speed.json so
 * successive PRs can track the host-perf trajectory.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "core/system.h"
#include "isa/assembler.h"
#include "isa/interp.h"
#include "mem/hierarchy.h"
#include "pipette/qrm.h"
#include "sample/warm_model.h"
#include "workloads/bfs.h"

namespace pipette {
namespace {

void
BM_QrmEnqueueDequeue(benchmark::State &state)
{
    Qrm qrm(16, 32, 148);
    PhysRegId r = 5;
    for (auto _ : state) {
        qrm.enqueueSpec(0, r, false);
        qrm.commitEnqueue(0);
        benchmark::DoNotOptimize(qrm.dequeueSpec(0));
        benchmark::DoNotOptimize(qrm.commitDequeue(0));
    }
}
BENCHMARK(BM_QrmEnqueueDequeue);

void
BM_CacheHit(benchmark::State &state)
{
    MemConfig mc;
    mc.prefetcherEnabled = false;
    EventQueue eq;
    MemoryHierarchy h(mc, 1, &eq);
    h.access(0, 0x1000, false, 0, nullptr);
    Cycle now = 100;
    for (auto _ : state) {
        benchmark::DoNotOptimize(h.access(0, 0x1000, false, now, nullptr));
        now += 10;
    }
}
BENCHMARK(BM_CacheHit);

void
BM_EventQueueSchedule(benchmark::State &state)
{
    // Cost of scheduling + dispatching one short-latency completion,
    // the per-cache-hit path of the memory hierarchy.
    EventQueue eq;
    Cycle now = 0;
    uint64_t sink = 0;
    for (auto _ : state) {
        now++;
        eq.schedule(now + 4, [&sink] { sink++; });
        eq.runUntil(now);
    }
    benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_EventQueueSchedule);

void
BM_InterpInstrs(benchmark::State &state)
{
    Program p("loop");
    Asm a(&p);
    auto loop = a.label();
    a.li(R::r1, 1'000'000'000);
    a.bind(loop);
    a.addi(R::r1, R::r1, -1);
    a.bnei(R::r1, 0, loop);
    a.halt();
    a.finalize();

    for (auto _ : state) {
        state.PauseTiming();
        MachineSpec spec;
        spec.addThread(0, 0, &p);
        SimMemory mem;
        Interp in(spec, &mem);
        state.ResumeTiming();
        in.run(100'000); // 100k rounds = 200k instrs
    }
    state.SetItemsProcessed(state.iterations() * 200'000);
}
BENCHMARK(BM_InterpInstrs)->Unit(benchmark::kMillisecond);

void
BM_CoreCycles(benchmark::State &state)
{
    // Simulated-cycle throughput of the OOO core on a BFS kernel.
    Graph g = makeGridGraph(48, 48, 7);
    for (auto _ : state) {
        state.PauseTiming();
        SystemConfig cfg;
        cfg.maxCycles = 200'000;
        System sys(cfg);
        BfsWorkload wl(&g);
        BuildContext ctx(&sys);
        wl.build(ctx, Variant::Pipette);
        sys.configure(ctx.spec);
        state.ResumeTiming();
        auto res = sys.run();
        state.SetIterationTime(static_cast<double>(res.cycles) * 1e-9);
        benchmark::DoNotOptimize(res.cycles);
    }
    state.SetItemsProcessed(state.iterations() * 200'000);
}
BENCHMARK(BM_CoreCycles)->Unit(benchmark::kMillisecond);

/**
 * Stall-heavy, DRAM-bound cycle throughput: serial BFS over an R-MAT
 * graph whose frontier walks random neighbor lists far larger than the
 * LLC, on a memory system with slow DRAM (400 cycles) and no stream
 * prefetcher -- so the single thread spends most cycles quiesced
 * behind DRAM fills and the fills arrive in clustered waves rather
 * than a staggered prefetch drizzle. Captured with cycle elision on
 * and off; the ratio between the two rows is the headline host-speed
 * win of stall-aware skip-ahead (DESIGN.md section 13), and
 * `skipped_frac` reports what fraction of simulated cycles the
 * quiescence oracle elided.
 */
void
BM_CoreCyclesStall(benchmark::State &state, bool elision)
{
    Graph g = makeRmatGraph(65536, 262144, 11);
    uint64_t cycles = 0;
    uint64_t skipped = 0;
    for (auto _ : state) {
        state.PauseTiming();
        SystemConfig cfg;
        cfg.maxCycles = 200'000;
        cfg.cycleElision = elision;
        cfg.mem.dramLatency = 400;
        cfg.mem.prefetcherEnabled = false;
        System sys(cfg);
        BfsWorkload wl(&g);
        BuildContext ctx(&sys);
        wl.build(ctx, Variant::Serial);
        sys.configure(ctx.spec);
        state.ResumeTiming();
        auto res = sys.run();
        cycles += res.cycles;
        benchmark::DoNotOptimize(res.cycles);
        state.PauseTiming();
        skipped += static_cast<uint64_t>(
            sys.dumpStats().at("sim.skippedCycles"));
        state.ResumeTiming();
    }
    state.SetItemsProcessed(state.iterations() * 200'000);
    state.counters["skipped_frac"] =
        cycles ? static_cast<double>(skipped) / static_cast<double>(cycles)
               : 0.0;
}
BENCHMARK_CAPTURE(BM_CoreCyclesStall, rmat_serial_skip, true)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_CoreCyclesStall, rmat_serial_noskip, false)
    ->Unit(benchmark::kMillisecond);

/**
 * Bare fast-forward throughput: the golden interpreter running BFS
 * with no hooks attached -- the ceiling the warming hooks are measured
 * against (and the speed hook-detached stretches of the fast-forward
 * run at).
 */
void
BM_FFInstrs(benchmark::State &state)
{
    Graph g = makeRmatGraph(4096, 16384, 11);
    uint64_t instrs = 0;
    for (auto _ : state) {
        state.PauseTiming();
        SystemConfig cfg;
        System sys(cfg);
        BfsWorkload wl(&g);
        BuildContext ctx(&sys);
        wl.build(ctx, Variant::Pipette);
        Interp in(ctx.spec, &sys.memory(), cfg.core.queueCapacity);
        state.ResumeTiming();
        auto r = in.run();
        instrs += r.instrs;
        benchmark::DoNotOptimize(r.instrs);
    }
    state.SetItemsProcessed(static_cast<int64_t>(instrs));
}
BENCHMARK(BM_FFInstrs)->Unit(benchmark::kMillisecond);

/**
 * Fast-forward (warming) throughput: the golden interpreter running
 * BFS with the sampling warm hooks attached -- cache-tag + stream-
 * prefetcher + branch-predictor mirroring on every commit. This is the
 * speed sampled simulation covers the instructions between detailed
 * windows at; compare items_per_second against BM_InterpInstrs (bare
 * interpreter) for the warming overhead and against BM_BfsKips for the
 * fast-forward-vs-detailed gap.
 */
void
BM_FFWarmInstrs(benchmark::State &state)
{
    Graph g = makeRmatGraph(4096, 16384, 11);
    uint64_t instrs = 0;
    for (auto _ : state) {
        state.PauseTiming();
        SystemConfig cfg;
        System sys(cfg);
        BfsWorkload wl(&g);
        BuildContext ctx(&sys);
        wl.build(ctx, Variant::Pipette);
        Interp in(ctx.spec, &sys.memory(), cfg.core.queueCapacity);
        sample::WarmModel warm(cfg);
        in.setHooks(&warm);
        state.ResumeTiming();
        auto r = in.run();
        instrs += r.instrs;
        benchmark::DoNotOptimize(r.instrs);
    }
    state.SetItemsProcessed(static_cast<int64_t>(instrs));
}
BENCHMARK(BM_FFWarmInstrs)->Unit(benchmark::kMillisecond);

/**
 * End-to-end host throughput: run BFS to completion and report KIPS
 * (simulated kilo-instructions committed per host second). This is the
 * number the ROADMAP's "as fast as the hardware allows" goal tracks.
 */
void
BM_BfsKips(benchmark::State &state, Variant v)
{
    Graph g = makeGridGraph(56, 56, 7);
    uint64_t instrs = 0;
    uint64_t cycles = 0;
    for (auto _ : state) {
        state.PauseTiming();
        SystemConfig cfg;
        cfg.maxCycles = 20'000'000;
        System sys(cfg);
        BfsWorkload wl(&g);
        BuildContext ctx(&sys);
        wl.build(ctx, v);
        sys.configure(ctx.spec);
        state.ResumeTiming();
        auto res = sys.run();
        instrs += res.instrs;
        cycles += res.cycles;
        benchmark::DoNotOptimize(res.cycles);
    }
    state.SetItemsProcessed(static_cast<int64_t>(instrs));
    state.counters["KIPS"] = benchmark::Counter(
        static_cast<double>(instrs) / 1e3, benchmark::Counter::kIsRate);
    state.counters["sim_cycles"] = benchmark::Counter(
        static_cast<double>(cycles) / static_cast<double>(state.iterations()));
}
BENCHMARK_CAPTURE(BM_BfsKips, serial, Variant::Serial)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_BfsKips, pipette, Variant::Pipette)
    ->Unit(benchmark::kMillisecond);

} // namespace
} // namespace pipette

// Build type baked in by bench/CMakeLists.txt; host-perf numbers from
// unoptimized builds are meaningless against the pinned CI floors.
#ifndef PIPETTE_BENCH_BUILD_TYPE
#define PIPETTE_BENCH_BUILD_TYPE ""
#endif

int
main(int argc, char **argv)
{
    // Tag every JSON artifact with the build type, warn loudly when it
    // is not Release, and hard-fail when the CI speed gate demands an
    // optimized build (PIPETTE_BENCH_REQUIRE_RELEASE=1).
    const char *buildType =
        PIPETTE_BENCH_BUILD_TYPE[0] ? PIPETTE_BENCH_BUILD_TYPE
                                    : "unspecified";
    bool release = std::strcmp(buildType, "Release") == 0;
    if (!release) {
        std::fprintf(stderr,
                     "WARNING: bench_sim_speed built as '%s', not Release; "
                     "host-perf numbers are not comparable to pinned "
                     "floors.\n",
                     buildType);
        const char *req = std::getenv("PIPETTE_BENCH_REQUIRE_RELEASE");
        if (req && req[0] && std::strcmp(req, "0") != 0) {
            std::fprintf(stderr,
                         "FATAL: PIPETTE_BENCH_REQUIRE_RELEASE is set but "
                         "this is a '%s' build; rebuild with "
                         "-DCMAKE_BUILD_TYPE=Release.\n",
                         buildType);
            return 2;
        }
    }

    // Emit the JSON artifact by default so CI and future PRs can diff
    // host-perf numbers; explicit --benchmark_out still wins.
    std::vector<char *> args(argv, argv + argc);
    bool haveOut = false;
    for (int i = 1; i < argc; i++)
        haveOut |= std::strncmp(argv[i], "--benchmark_out", 15) == 0;
    std::string outFlag = "--benchmark_out=BENCH_sim_speed.json";
    std::string fmtFlag = "--benchmark_out_format=json";
    if (!haveOut) {
        args.push_back(outFlag.data());
        args.push_back(fmtFlag.data());
    }
    int nargs = static_cast<int>(args.size());
    benchmark::Initialize(&nargs, args.data());
    if (benchmark::ReportUnrecognizedArguments(nargs, args.data()))
        return 1;
    benchmark::AddCustomContext("build_type", buildType);
    benchmark::AddCustomContext("release_build", release ? "yes" : "no");
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
