/**
 * @file
 * google-benchmark microbenchmarks of the simulator's own building
 * blocks: QRM operations, cache-hierarchy accesses, functional
 * interpretation, and whole-core cycle throughput. These track the
 * host-side cost of simulation, not simulated performance.
 */

#include <benchmark/benchmark.h>

#include "core/system.h"
#include "isa/assembler.h"
#include "isa/interp.h"
#include "mem/hierarchy.h"
#include "pipette/qrm.h"
#include "workloads/bfs.h"

namespace pipette {
namespace {

void
BM_QrmEnqueueDequeue(benchmark::State &state)
{
    Qrm qrm(16, 32, 148);
    PhysRegId r = 5;
    for (auto _ : state) {
        qrm.enqueueSpec(0, r, false);
        qrm.commitEnqueue(0);
        benchmark::DoNotOptimize(qrm.dequeueSpec(0));
        benchmark::DoNotOptimize(qrm.commitDequeue(0));
    }
}
BENCHMARK(BM_QrmEnqueueDequeue);

void
BM_CacheHit(benchmark::State &state)
{
    MemConfig mc;
    mc.prefetcherEnabled = false;
    EventQueue eq;
    MemoryHierarchy h(mc, 1, &eq);
    h.access(0, 0x1000, false, 0, nullptr);
    Cycle now = 100;
    for (auto _ : state) {
        benchmark::DoNotOptimize(h.access(0, 0x1000, false, now, nullptr));
        now += 10;
    }
}
BENCHMARK(BM_CacheHit);

void
BM_InterpInstrs(benchmark::State &state)
{
    Program p("loop");
    Asm a(&p);
    auto loop = a.label();
    a.li(R::r1, 1'000'000'000);
    a.bind(loop);
    a.addi(R::r1, R::r1, -1);
    a.bnei(R::r1, 0, loop);
    a.halt();
    a.finalize();

    for (auto _ : state) {
        state.PauseTiming();
        MachineSpec spec;
        spec.addThread(0, 0, &p);
        SimMemory mem;
        Interp in(spec, &mem);
        state.ResumeTiming();
        in.run(100'000); // 100k rounds = 200k instrs
    }
    state.SetItemsProcessed(state.iterations() * 200'000);
}
BENCHMARK(BM_InterpInstrs)->Unit(benchmark::kMillisecond);

void
BM_CoreCycles(benchmark::State &state)
{
    // Simulated-cycle throughput of the OOO core on a BFS kernel.
    Graph g = makeGridGraph(48, 48, 7);
    for (auto _ : state) {
        state.PauseTiming();
        SystemConfig cfg;
        cfg.maxCycles = 200'000;
        System sys(cfg);
        BfsWorkload wl(&g);
        BuildContext ctx(&sys);
        wl.build(ctx, Variant::Pipette);
        sys.configure(ctx.spec);
        state.ResumeTiming();
        auto res = sys.run();
        state.SetIterationTime(static_cast<double>(res.cycles) * 1e-9);
        benchmark::DoNotOptimize(res.cycles);
    }
    state.SetItemsProcessed(state.iterations() * 200'000);
}
BENCHMARK(BM_CoreCycles)->Unit(benchmark::kMillisecond);

} // namespace
} // namespace pipette

BENCHMARK_MAIN();
