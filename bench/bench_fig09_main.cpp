/**
 * @file
 * Fig. 9: speedup over the data-parallel baseline for serial, Pipette
 * (one 4-thread core), and the 4-core streaming multicore, gmean across
 * inputs per application; plus the per-core performance panel.
 */

#include "bench_common.h"

using namespace pipette;
using namespace pipette::bench;

int
main(int argc, char **argv)
{
    BenchOpts o = BenchOpts::parse(argc, argv);
    banner("Figure 9",
           "Speedup over data-parallel (gmean across inputs) and "
           "performance per core");
    printConfig(o);

    SweepResult sweep = runSweep(o);

    Table t({"app", "serial", "data-par", "pipette", "streaming-4c",
             "pipette/core", "streaming/core"});
    std::vector<double> gmPip, gmStream, gmSerial;
    for (const std::string &app : appOrder()) {
        std::vector<double> sSer, sPip, sStr;
        for (const RunResult &r : sweep.runs) {
            if (r.workload != app || r.variant != Variant::DataParallel)
                continue;
            double dp = static_cast<double>(r.cycles);
            auto ser = sweep.find(app, r.input, Variant::Serial);
            auto pip = sweep.find(app, r.input, Variant::Pipette);
            auto str = sweep.find(app, r.input, Variant::Streaming);
            if (ser)
                sSer.push_back(dp / static_cast<double>(ser->cycles));
            if (pip)
                sPip.push_back(dp / static_cast<double>(pip->cycles));
            if (str)
                sStr.push_back(dp / static_cast<double>(str->cycles));
        }
        if (sPip.empty())
            continue;
        double gs = gmean(sSer), gp = gmean(sPip), gt = gmean(sStr);
        gmSerial.push_back(gs);
        gmPip.push_back(gp);
        gmStream.push_back(gt);
        t.addRow({app, Table::num(gs), "1.00", Table::num(gp),
                  Table::num(gt), Table::num(gp),
                  Table::num(gt / 4.0)});
    }
    t.addRow({"gmean", Table::num(gmean(gmSerial)), "1.00",
              Table::num(gmean(gmPip)), Table::num(gmean(gmStream)),
              Table::num(gmean(gmPip)), Table::num(gmean(gmStream) / 4)});
    t.print();
    std::printf("\npaper shape: Pipette ~1.9x gmean over data-parallel "
                "(up to 2.5x for BFS); streaming only ~22%% faster than "
                "Pipette despite 4x the cores, so its per-core "
                "performance is near serial.\n");
    return 0;
}
