/**
 * @file
 * Shared infrastructure for the figure/table bench binaries: flag
 * parsing, the simulated-system base configuration, per-application
 * input construction (Table V/VI proxies at laptop scale), and the full
 * evaluation sweep used by Figs. 9-13.
 *
 * Flags: --quick (quarter-scale inputs, fewer of them), --scale=F
 * (multiply all input sizes), --jobs=N / --jobs N (simulate N sweep
 * cells concurrently; default hardware concurrency, 1 = the serial
 * path, no threads), --core-jobs=N (host workers *inside* each
 * multicore System's epoch scheduler; default 1, composes with --jobs:
 * each sweep worker may fan its simulated cores out over N host
 * threads), --stats-out=FILE (write every run's flattened counters for
 * determinism diffs), and --fresh (ignore the on-disk sweep cache).
 * The default sizes keep working sets a few times larger than the
 * scaled-down LLC, mirroring the paper's setup (see EXPERIMENTS.md).
 *
 * Sweep cells are independent Systems, so the sweep runs them through
 * parallel::SimJobPool. Results, progress lines, and the cached CSV are
 * collected in submission order and are byte-identical for every
 * --jobs value (DESIGN.md section 8) and every --core-jobs value
 * (DESIGN.md section 10).
 */

#ifndef PIPETTE_BENCH_COMMON_H
#define PIPETTE_BENCH_COMMON_H

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <thread>

#include "harness/report.h"
#include "harness/runner.h"
#include "hostprof/hostprof.h"
#include "parallel/sim_job_pool.h"
#include "resilience/crc32.h"
#include "resilience/error.h"
#include "sim/hash.h"
#include "workloads/bfs.h"
#include "workloads/cc.h"
#include "workloads/graph.h"
#include "workloads/matrix.h"
#include "workloads/prd.h"
#include "workloads/radii.h"
#include "workloads/silo.h"
#include "workloads/spmm.h"

namespace pipette::bench {

/**
 * Process-wide default for SystemConfig::cycleElision, set by
 * BenchOpts::parse from --no-skip before any config is built. Routing
 * it through baseConfig() makes every config a bench binary constructs
 * -- sweep cells, ad-hoc jobs, the fingerprint the sweep cache is keyed
 * by -- agree on the toggle, so a --no-skip run can never silently load
 * cached rows produced with elision on (the fingerprint hashes the
 * field) nor mix modes within one process.
 */
inline bool benchCycleElision = true;

struct BenchOpts
{
    double scale = 1.0;
    bool quick = false;
    bool fresh = false;
    /** --no-skip: disable stall-aware cycle elision (DESIGN.md §13).
     *  Simulated results are bit-identical either way; the flag exists
     *  for the CI identity diff and for timing the oracle itself. */
    bool noSkip = false;
    /** Concurrent sweep cells; 0 = hardware concurrency. */
    unsigned jobs = 0;
    /** Host workers per multicore System (epoch scheduler); 1 = the
     *  inline phase, no extra threads. Results never depend on this. */
    unsigned coreJobs = 1;
    /** When set, write every run's flattened counters to this file
     *  (CI determinism diffs across --core-jobs values). */
    std::string statsOutPath;
    /** --host-prof=FILE: enable host self-profiling (src/hostprof/)
     *  and write the machine-readable run manifest here at exit.
     *  Host-side only: never fingerprinted, never in determinism
     *  diffs; simulated results are byte-identical on/off. */
    std::string hostProfPath;
    /** --host-trace=FILE: Chrome-trace timeline of host phases
     *  (implies --host-prof-style instrumentation being live). */
    std::string hostTracePath;

    /**
     * Strict worker-count flag value. atoi silently turned "--jobs x"
     * into 0 (= hardware concurrency) and "--jobs -3" into a huge
     * unsigned; both now abort with a clear message, as does an
     * explicit "--jobs 0" (auto is spelled by omitting the flag).
     */
    static unsigned
    parseWorkerCount(const char *flag, const char *s)
    {
        char *end = nullptr;
        errno = 0;
        long v = std::strtol(s, &end, 10);
        if (end == s || *end != '\0' || errno == ERANGE || v < 0) {
            std::fprintf(stderr,
                         "error: %s expects a positive integer, got "
                         "'%s'\n",
                         flag, s);
            std::exit(2);
        }
        if (v == 0) {
            std::fprintf(stderr,
                         "error: %s 0 is not valid (omit %s entirely "
                         "for the default)\n",
                         flag, flag);
            std::exit(2);
        }
        return static_cast<unsigned>(v);
    }

    /**
     * Strict u64 flag value, same contract as parseWorkerCount (zero
     * is spelled by omitting the flag, never "--flag 0").
     */
    static uint64_t
    parseCount64(const char *flag, const char *s)
    {
        char *end = nullptr;
        errno = 0;
        unsigned long long v = std::strtoull(s, &end, 10);
        if (end == s || *end != '\0' || errno == ERANGE ||
            std::strchr(s, '-')) {
            std::fprintf(stderr,
                         "error: %s expects a positive integer, got "
                         "'%s'\n",
                         flag, s);
            std::exit(2);
        }
        if (v == 0) {
            std::fprintf(stderr,
                         "error: %s 0 is not valid (omit %s entirely "
                         "for the default)\n",
                         flag, flag);
            std::exit(2);
        }
        return v;
    }

    /**
     * Strict output-path flag value (PR 6/7 pattern): empty paths are
     * a config error, and writability is probed at parse time (append
     * mode, so an existing file is untouched) so an unwritable
     * directory fails fast with the HostResource exit code instead of
     * after minutes of simulation.
     */
    static std::string
    parseOutPath(const char *flag, const char *s)
    {
        if (*s == '\0') {
            std::fprintf(stderr,
                         "error: %s expects a file path, got an empty "
                         "string\n",
                         flag);
            std::exit(
                resilience::exitCode(resilience::SimError::ConfigError));
        }
        FILE *f = std::fopen(s, "ab");
        if (!f) {
            std::fprintf(stderr, "error: %s %s is not writable: %s\n",
                         flag, s, std::strerror(errno));
            std::exit(
                resilience::exitCode(resilience::SimError::HostResource));
        }
        std::fclose(f);
        return s;
    }

    // Sampled simulation (src/sample/): --sample-period=N turns it on
    // (checkpoint every N retired instructions); --sample-window=N /
    // --sample-warmup=N size the detailed windows. Distinct from the
    // observability flag --sample-interval below, which samples
    // counters over time inside a full detailed run.
    uint64_t samplePeriod = 0;
    uint64_t sampleWindow = 0;
    uint64_t sampleWarmup = 0;
    /** Override the multicore epoch length in cycles (0 = default).
     *  Simulated results are epoch-length-dependent, so this keys the
     *  config fingerprint like any other config field. */
    uint64_t epochLength = 0;

    // Observability (src/obs/): --sample-interval=N,
    // --trace-perfetto=FILE, --trace-pipeview=FILE, --histograms,
    // --trace-from=C / --trace-cycles=N (cycle window), --trace-only
    // (skip the sweep, run just the instrumented case).
    uint32_t sampleInterval = 0;
    std::string sampleCsvPath;
    std::string perfettoPath;
    std::string pipeviewPath;
    bool histograms = false;
    uint64_t traceFrom = 0;
    uint64_t traceCycles = 0;
    bool traceOnly = false;

    // Resilience (src/resilience/; DESIGN.md section 12):
    // --checkpoint-out=FILE (durable resumable checkpoint at every
    // sample boundary), --resume=FILE (continue an interrupted sampled
    // run), --window-timeout-ms=N (wall-clock budget per detailed
    // window), --max-checkpoints=N (checkpoint cap override), and the
    // deterministic test hooks --interrupt-at-checkpoint=N /
    // --inject-window-failures=N / --inject-window-hang-ms=N /
    // --fault-window=K used by CI to exercise the drain/retry paths
    // without timing races. Numeric values parse strictly (parseCount64:
    // zero/garbage abort; off is spelled by omitting the flag).
    std::string checkpointOutPath;
    std::string resumePath;
    uint64_t windowTimeoutMs = 0;
    uint64_t maxCheckpoints = 0;
    uint64_t interruptAtCheckpoint = 0;
    uint64_t injectWindowFailures = 0;
    uint64_t injectWindowHangMs = 0;
    uint64_t faultWindow = 0;

    static BenchOpts
    parse(int argc, char **argv)
    {
        BenchOpts o;
        for (int i = 1; i < argc; i++) {
            if (std::strcmp(argv[i], "--quick") == 0)
                o.quick = true;
            else if (std::strcmp(argv[i], "--fresh") == 0)
                o.fresh = true;
            else if (std::strcmp(argv[i], "--no-skip") == 0) {
                o.noSkip = true;
                benchCycleElision = false;
            }
            else if (std::strncmp(argv[i], "--scale=", 8) == 0)
                o.scale = std::atof(argv[i] + 8);
            else if (std::strncmp(argv[i], "--jobs=", 7) == 0)
                o.jobs = parseWorkerCount("--jobs", argv[i] + 7);
            else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc)
                o.jobs = parseWorkerCount("--jobs", argv[++i]);
            else if (std::strncmp(argv[i], "--core-jobs=", 12) == 0)
                o.coreJobs =
                    parseWorkerCount("--core-jobs", argv[i] + 12);
            else if (std::strcmp(argv[i], "--core-jobs") == 0 &&
                     i + 1 < argc)
                o.coreJobs = parseWorkerCount("--core-jobs", argv[++i]);
            else if (std::strncmp(argv[i], "--stats-out=", 12) == 0)
                o.statsOutPath = argv[i] + 12;
            else if (std::strncmp(argv[i], "--host-prof=", 12) == 0)
                o.hostProfPath =
                    parseOutPath("--host-prof", argv[i] + 12);
            else if (std::strncmp(argv[i], "--host-trace=", 13) == 0)
                o.hostTracePath =
                    parseOutPath("--host-trace", argv[i] + 13);
            else if (std::strncmp(argv[i], "--sample-period=", 16) == 0)
                o.samplePeriod =
                    parseCount64("--sample-period", argv[i] + 16);
            else if (std::strncmp(argv[i], "--sample-window=", 16) == 0)
                o.sampleWindow =
                    parseCount64("--sample-window", argv[i] + 16);
            else if (std::strncmp(argv[i], "--sample-warmup=", 16) == 0)
                o.sampleWarmup =
                    parseCount64("--sample-warmup", argv[i] + 16);
            else if (std::strncmp(argv[i], "--epoch-length=", 15) == 0)
                o.epochLength =
                    parseCount64("--epoch-length", argv[i] + 15);
            else if (std::strncmp(argv[i], "--sample-interval=", 18) == 0)
                o.sampleInterval =
                    static_cast<uint32_t>(std::atoi(argv[i] + 18));
            else if (std::strncmp(argv[i], "--sample-csv=", 13) == 0)
                o.sampleCsvPath = argv[i] + 13;
            else if (std::strncmp(argv[i], "--trace-perfetto=", 17) == 0)
                o.perfettoPath = argv[i] + 17;
            else if (std::strncmp(argv[i], "--trace-pipeview=", 17) == 0)
                o.pipeviewPath = argv[i] + 17;
            else if (std::strcmp(argv[i], "--histograms") == 0)
                o.histograms = true;
            else if (std::strncmp(argv[i], "--trace-from=", 13) == 0)
                o.traceFrom = std::strtoull(argv[i] + 13, nullptr, 10);
            else if (std::strncmp(argv[i], "--trace-cycles=", 15) == 0)
                o.traceCycles = std::strtoull(argv[i] + 15, nullptr, 10);
            else if (std::strcmp(argv[i], "--trace-only") == 0)
                o.traceOnly = true;
            else if (std::strncmp(argv[i], "--checkpoint-out=", 17) == 0)
                o.checkpointOutPath = argv[i] + 17;
            else if (std::strncmp(argv[i], "--resume=", 9) == 0)
                o.resumePath = argv[i] + 9;
            else if (std::strncmp(argv[i], "--window-timeout-ms=", 20) ==
                     0)
                o.windowTimeoutMs =
                    parseCount64("--window-timeout-ms", argv[i] + 20);
            else if (std::strncmp(argv[i], "--max-checkpoints=", 18) ==
                     0)
                o.maxCheckpoints =
                    parseCount64("--max-checkpoints", argv[i] + 18);
            else if (std::strncmp(argv[i], "--interrupt-at-checkpoint=",
                                  26) == 0)
                o.interruptAtCheckpoint = parseCount64(
                    "--interrupt-at-checkpoint", argv[i] + 26);
            else if (std::strncmp(argv[i], "--inject-window-failures=",
                                  25) == 0)
                o.injectWindowFailures = parseCount64(
                    "--inject-window-failures", argv[i] + 25);
            else if (std::strncmp(argv[i], "--inject-window-hang-ms=",
                                  24) == 0)
                o.injectWindowHangMs = parseCount64(
                    "--inject-window-hang-ms", argv[i] + 24);
            else if (std::strncmp(argv[i], "--fault-window=", 15) == 0)
                o.faultWindow =
                    parseCount64("--fault-window", argv[i] + 15);
        }
        if (o.quick)
            o.scale *= 0.25;
        // Host profiling switches on before any instrumented work so
        // the profile clock covers the whole run (the manifest's
        // wall-time coverage is measured against it).
        if (!o.hostProfPath.empty() || !o.hostTracePath.empty()) {
            hostprof::setEnabled(true);
            if (!o.hostTracePath.empty())
                hostprof::setTraceEnabled(true);
        }
        return o;
    }

    unsigned
    effectiveJobs() const
    {
        if (jobs)
            return jobs;
        unsigned hw = std::thread::hardware_concurrency();
        return hw ? hw : 1;
    }

    /** Any observability collection requested on the command line. */
    bool
    obsRequested() const
    {
        return sampleInterval > 0 || histograms || !perfettoPath.empty() ||
               !pipeviewPath.empty();
    }

    /** Apply the observability flags to a run's SystemConfig. */
    void
    applyObservability(SystemConfig &cfg) const
    {
        ObservabilityConfig &o = cfg.observability;
        o.sampleInterval = sampleInterval;
        o.sampleCsvPath = sampleCsvPath;
        o.histograms = histograms;
        o.perfetto = !perfettoPath.empty();
        o.perfettoPath = perfettoPath;
        o.pipeview = !pipeviewPath.empty();
        o.pipeviewPath = pipeviewPath;
        o.traceFrom = traceFrom;
        o.traceCycles = traceCycles;
    }

    /** Sampled simulation requested on the command line. */
    bool
    samplingRequested() const
    {
        return samplePeriod > 0;
    }

    /** Apply the sampling + epoch flags to a run's SystemConfig. */
    void
    applySampling(SystemConfig &cfg) const
    {
        if (samplePeriod)
            cfg.sampling.period = samplePeriod;
        if (sampleWindow)
            cfg.sampling.window = sampleWindow;
        if (sampleWarmup)
            cfg.sampling.warmup = sampleWarmup;
        if (epochLength)
            cfg.epochLength = static_cast<uint32_t>(epochLength);
    }

    /** Any resilience flag requested on the command line. */
    bool
    resilienceRequested() const
    {
        return !checkpointOutPath.empty() || !resumePath.empty() ||
               windowTimeoutMs || maxCheckpoints ||
               interruptAtCheckpoint || injectWindowFailures ||
               injectWindowHangMs;
    }

    /**
     * Apply the resilience flags to a run's SystemConfig. The paths
     * are output-side (never fingerprinted); every numeric knob keys
     * the fingerprint, so a --resume run must repeat the originals.
     */
    void
    applyResilience(SystemConfig &cfg) const
    {
        ResilienceConfig &rz = cfg.resilience;
        rz.checkpointOutPath = checkpointOutPath;
        rz.resumePath = resumePath;
        rz.windowTimeoutMs = windowTimeoutMs;
        rz.interruptAtCheckpoint = interruptAtCheckpoint;
        rz.injectWindowFailures =
            static_cast<uint32_t>(injectWindowFailures);
        rz.injectWindowHangMs = injectWindowHangMs;
        rz.faultWindow = static_cast<uint32_t>(faultWindow);
        if (maxCheckpoints)
            cfg.sampling.maxCheckpoints = maxCheckpoints;
    }
};

inline SystemConfig
baseConfig()
{
    SystemConfig cfg;
    cfg.watchdogCycles = 2'000'000;
    cfg.maxCycles = 2'000'000'000;
    cfg.cycleElision = benchCycleElision;
    return cfg;
}

inline void
printConfig(const BenchOpts &o)
{
    std::printf("system (Table IV, scaled): %s\n",
                baseConfig().summary().c_str());
    std::printf("input scale: %.2f%s\n", o.scale,
                o.quick ? " (--quick)" : "");
    if (o.noSkip)
        std::printf("cycle elision: off (--no-skip)\n");
}

/** One (workload, input) pair owning its input data. */
struct AppInput
{
    std::string app;
    std::string input;
    std::shared_ptr<Graph> graph;         // graph apps
    std::shared_ptr<SparseMatrix> matA;   // spmm
    std::shared_ptr<SparseMatrix> matBt;  // spmm
    /** Workload-parameter hash for inputs not covered by the fields
     *  above (silo key/query counts, PRD iteration caps, ...). */
    uint64_t paramHash = 0;
    std::function<std::unique_ptr<WorkloadBase>()> make;
};

/** Build the evaluation suite (per-app input scales; see above). */
inline std::vector<AppInput>
makeSuite(const BenchOpts &o)
{
    hostprof::ScopedPhase hp(hostprof::Phase::InputGen);
    std::vector<AppInput> suite;

    auto addGraphApp = [&](const std::string &app, double appScale,
                           uint64_t paramHash, auto makeFn) {
        auto inputs = makeTable5Inputs(o.scale * appScale);
        for (auto &gi : inputs) {
            if (o.quick && gi.name != "Co" && gi.name != "Rd")
                continue;
            AppInput ai;
            ai.app = app;
            ai.input = gi.name;
            ai.graph = std::make_shared<Graph>(std::move(gi.graph));
            ai.paramHash = paramHash;
            ai.make = [g = ai.graph, makeFn] { return makeFn(g.get()); };
            suite.push_back(std::move(ai));
        }
    };

    addGraphApp("bfs", 0.6, 0, [](const Graph *g) {
        return std::unique_ptr<WorkloadBase>(new BfsWorkload(g));
    });
    addGraphApp("cc", 0.35, 0, [](const Graph *g) {
        return std::unique_ptr<WorkloadBase>(new CcWorkload(g));
    });
    addGraphApp("prd", 0.3, 3, [](const Graph *g) {
        PrdParams p;
        p.maxIters = 3;
        return std::unique_ptr<WorkloadBase>(new PrdWorkload(g, p));
    });
    addGraphApp("radii", 0.25, 16, [](const Graph *g) {
        RadiiParams p;
        p.numSources = 16;
        return std::unique_ptr<WorkloadBase>(new RadiiWorkload(g, p));
    });

    // SpMM over the Table VI proxies.
    {
        auto inputs = makeTable6Inputs(o.scale * 0.35);
        for (auto &mi : inputs) {
            if (o.quick && mi.name != "Ca" && mi.name != "Pe")
                continue;
            AppInput ai;
            ai.app = "spmm";
            ai.input = mi.name;
            ai.matA = std::make_shared<SparseMatrix>(std::move(mi.matrix));
            ai.matBt = std::make_shared<SparseMatrix>(
                makeSparseMatrix(ai.matA->n,
                                 ai.matA->avgNnzPerRow(), 777)
                    .transpose());
            ai.paramHash = 6; // numCols
            ai.make = [a = ai.matA, bt = ai.matBt] {
                SpmmWorkload::Options so;
                so.numCols = 6;
                return std::unique_ptr<WorkloadBase>(
                    new SpmmWorkload(a.get(), bt.get(), so));
            };
            suite.push_back(std::move(ai));
        }
    }

    // Silo / YCSB-C.
    {
        AppInput ai;
        ai.app = "silo";
        ai.input = "ycsb-c";
        // Tree sized a few times past the scaled LLC, like the paper's
        // 52 GB dataset vs its real LLC.
        uint32_t keys = std::max(2000u,
                                 static_cast<uint32_t>(120000 * o.scale));
        uint32_t queries =
            std::max(500u, static_cast<uint32_t>(5000 * o.scale));
        Fnv1a ph;
        ph.pod(keys);
        ph.pod(queries);
        ai.paramHash = ph.value();
        ai.make = [keys, queries] {
            SiloWorkload::Options so;
            so.numKeys = keys;
            so.numQueries = queries;
            return std::unique_ptr<WorkloadBase>(new SiloWorkload(so));
        };
        suite.push_back(std::move(ai));
    }
    return suite;
}

inline const std::vector<std::string> &
appOrder()
{
    static const std::vector<std::string> apps = {"bfs", "cc",  "prd",
                                                  "radii", "spmm", "silo"};
    return apps;
}

/** Full evaluation sweep (Figs. 9-13): 4 variants per input. */
struct SweepResult
{
    std::vector<RunResult> runs;

    const RunResult *
    find(const std::string &app, const std::string &input,
         Variant v) const
    {
        for (const RunResult &r : runs)
            if (r.workload == app && r.input == input && r.variant == v)
                return &r;
        return nullptr;
    }
};

// The sweep backs Figs. 9-13; cache its results on disk so running all
// bench binaries in sequence simulates the suite only once. The cache
// is keyed by a fingerprint of the full SystemConfig plus every input
// (below); pass --fresh to force re-simulation regardless.
inline std::string
sweepCachePath(const BenchOpts &o)
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "pipette_sweep_s%.3f%s.csv", o.scale,
                  o.quick ? "_q" : "");
    return buf;
}

/**
 * Fingerprint of everything the sweep's results depend on: the system
 * configuration and, per suite cell, the workload name plus the actual
 * input data (full CSR arrays -- cheap next to simulating them). A
 * config or generator change therefore invalidates the cache instead of
 * silently reloading stale rows.
 */
inline uint64_t
sweepFingerprint(const BenchOpts &o, const std::vector<AppInput> &suite,
                 bool includeStreaming)
{
    Fnv1a h;
    h.pod(configFingerprint(baseConfig()));
    h.pod(o.scale);
    h.pod(o.quick);
    h.pod(includeStreaming);
    h.pod(static_cast<uint64_t>(suite.size()));
    for (const AppInput &ai : suite) {
        h.str(ai.app);
        h.str(ai.input);
        h.pod(ai.paramHash);
        if (ai.graph) {
            h.pod(ai.graph->numVertices);
            h.vec(ai.graph->offsets);
            h.vec(ai.graph->neighbors);
        }
        for (const auto &m : {ai.matA, ai.matBt}) {
            if (!m)
                continue;
            h.pod(m->n);
            h.vec(m->rowPtr);
            h.vec(m->colIdx);
            h.vec(m->values);
        }
    }
    return h.value();
}

/**
 * Load the sweep cache. The file is trusted only after three checks:
 * the v2 header's config/input fingerprint must match, every row must
 * parse exactly, and the trailing "# crc32=<hex>" line must match the
 * CRC32 of the row bytes. Anything else -- a truncated write, a flipped
 * bit, a hand-edited row, a pre-CRC file -- invalidates the cache with
 * a message and the suite re-simulates; corrupt bytes can never load
 * as results.
 */
inline bool
loadSweepCache(const std::string &path, uint64_t fingerprint,
               SweepResult *out)
{
    hostprof::ScopedPhase hp(hostprof::Phase::SweepCacheIO);
    FILE *f = std::fopen(path.c_str(), "r");
    if (!f)
        return false;
    // Header: "# pipette-sweep v2 cfg=<hex fingerprint>". Headerless
    // (pre-fingerprint) files fail the check and are re-simulated.
    char line[512];
    unsigned long long cached = 0;
    if (!std::fgets(line, sizeof(line), f) ||
        std::sscanf(line, "# pipette-sweep v2 cfg=%llx", &cached) != 1 ||
        cached != fingerprint) {
        std::fprintf(stderr,
                     "  (sweep cache %s invalidated: config/input "
                     "fingerprint %016llx != %016llx; re-simulating)\n",
                     path.c_str(), cached,
                     static_cast<unsigned long long>(fingerprint));
        std::fclose(f);
        return false;
    }
    auto invalidate = [&](const char *why) {
        std::fprintf(stderr,
                     "  (sweep cache %s invalidated: %s; "
                     "re-simulating)\n",
                     path.c_str(), why);
        std::fclose(f);
        out->runs.clear();
        return false;
    };
    resilience::Crc32 crc;
    bool sawTrailer = false;
    unsigned long long trailer = 0;
    while (std::fgets(line, sizeof(line), f)) {
        if (std::sscanf(line, "# crc32=%llx", &trailer) == 1) {
            sawTrailer = true;
            break;
        }
        crc.update(line, std::strlen(line));
        char app[32], input[32];
        int variant, verified, finished;
        unsigned long long cycles, instrs;
        RunResult r;
        if (std::sscanf(line,
                        "%31[^,],%31[^,],%d,%d,%d,%llu,%llu,%lf,"
                        "%lf,%lf,%lf,%lf,%lf,%lf,%lf,%lf,%u",
                        app, input, &variant, &verified, &finished,
                        &cycles, &instrs, &r.ipc, &r.cpiFrac[0],
                        &r.cpiFrac[1], &r.cpiFrac[2], &r.cpiFrac[3],
                        &r.energy.coreDynamic, &r.energy.coreStatic,
                        &r.energy.cache, &r.energy.dram,
                        &r.numCores) != 17)
            return invalidate("malformed row");
        r.workload = app;
        r.input = input;
        r.variant = static_cast<Variant>(variant);
        r.verified = verified != 0;
        r.finished = finished != 0;
        r.cycles = cycles;
        r.instrs = instrs;
        out->runs.push_back(r);
    }
    if (!sawTrailer)
        return invalidate("missing CRC trailer (truncated or pre-CRC "
                          "file)");
    if (trailer != crc.value())
        return invalidate("CRC mismatch (corrupt bytes)");
    if (std::fgets(line, sizeof(line), f))
        return invalidate("trailing bytes after the CRC line");
    std::fclose(f);
    return !out->runs.empty();
}

inline void
saveSweepCache(const std::string &path, uint64_t fingerprint,
               const SweepResult &res)
{
    hostprof::ScopedPhase hp(hostprof::Phase::SweepCacheIO);
    FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return;
    std::fprintf(f, "# pipette-sweep v2 cfg=%016llx\n",
                 static_cast<unsigned long long>(fingerprint));
    // The trailer CRC covers exactly the row bytes between the header
    // and the "# crc32=" line, so rows are formatted once into a
    // buffer, hashed, then written.
    resilience::Crc32 crc;
    for (const RunResult &r : res.runs) {
        char row[512];
        int n = std::snprintf(
            row, sizeof(row),
            "%s,%s,%d,%d,%d,%llu,%llu,%.6f,%.6f,%.6f,%.6f,%.6f,"
            "%.3f,%.3f,%.3f,%.3f,%u\n",
            r.workload.c_str(), r.input.c_str(),
            static_cast<int>(r.variant), r.verified ? 1 : 0,
            r.finished ? 1 : 0,
            static_cast<unsigned long long>(r.cycles),
            static_cast<unsigned long long>(r.instrs), r.ipc,
            r.cpiFrac[0], r.cpiFrac[1], r.cpiFrac[2], r.cpiFrac[3],
            r.energy.coreDynamic, r.energy.coreStatic, r.energy.cache,
            r.energy.dram, r.numCores);
        if (n < 0 || n >= static_cast<int>(sizeof(row)))
            continue; // over-long row: drop rather than corrupt
        crc.update(row, static_cast<size_t>(n));
        std::fputs(row, f);
    }
    std::fprintf(f, "# crc32=%08x\n", crc.value());
    std::fclose(f);
}

/**
 * Run an ad-hoc batch of sweep cells under --jobs workers, results in
 * submission order (shared by the sensitivity-sweep figure binaries).
 */
inline std::vector<RunResult>
runJobs(const BenchOpts &o, const std::vector<parallel::SimJob> &jobs)
{
    parallel::SimJobPool pool(o.effectiveJobs());
    return pool.runAll(jobs);
}

/**
 * Stamp --core-jobs on every multicore cell. The epoch scheduler makes
 * simulated results independent of the value, so this is purely a
 * host-side throughput knob (it composes with the sweep's --jobs).
 */
inline void
applyCoreJobs(const BenchOpts &o, std::vector<parallel::SimJob> *jobs)
{
    for (parallel::SimJob &j : *jobs) {
        if (j.numCores > 1 || j.config.numCores > 1)
            j.config.coreJobs = o.coreJobs;
    }
}

/**
 * Write every run's identity plus its full flattened counter registry,
 * in submission order. CI diffs this file byte-for-byte between
 * --core-jobs values as the determinism smoke check.
 */
inline void
writeStatsOut(const std::string &path, const std::vector<RunResult> &rs)
{
    FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "error: cannot open %s for writing\n",
                     path.c_str());
        std::exit(1);
    }
    for (size_t i = 0; i < rs.size(); i++) {
        const RunResult &r = rs[i];
        std::fprintf(f, "run%zu %s,%s variant=%d cores=%u cycles=%llu "
                        "instrs=%llu verified=%d finished=%d\n",
                     i, r.workload.c_str(), r.input.c_str(),
                     static_cast<int>(r.variant), r.numCores,
                     static_cast<unsigned long long>(r.cycles),
                     static_cast<unsigned long long>(r.instrs),
                     r.verified ? 1 : 0, r.finished ? 1 : 0);
        std::map<std::string, double> m;
        r.agg.dump("agg", m);
        for (const auto &kv : m) {
            // Elision totals record how the run was executed, not what
            // it simulated: CI diffs this file between --no-skip and
            // the default, and every simulated row must match
            // byte-for-byte while these two legitimately differ.
            if (kv.first == "agg.skippedCycles" ||
                kv.first == "agg.skipWindows")
                continue;
            std::fprintf(f, "run%zu %s %.17g\n", i, kv.first.c_str(),
                         kv.second);
        }
    }
    std::fclose(f);
}

/** Convenience SimJob builder for the bench binaries. */
template <typename MakeFn>
inline parallel::SimJob
simJob(const SystemConfig &cfg, MakeFn makeFn, Variant v,
       const std::string &input, uint32_t numCores = 1)
{
    parallel::SimJob j;
    j.config = cfg;
    j.make = [makeFn](uint64_t) {
        return std::unique_ptr<WorkloadBase>(makeFn());
    };
    j.variant = v;
    j.input = input;
    j.numCores = numCores;
    return j;
}

inline SweepResult
runSweep(const BenchOpts &o, bool includeStreaming = true)
{
    SweepResult out;
    auto suite = makeSuite(o);
    uint64_t fingerprint = sweepFingerprint(o, suite, includeStreaming);
    std::string cache = sweepCachePath(o);
    if (!o.fresh && loadSweepCache(cache, fingerprint, &out)) {
        std::fprintf(stderr, "  (sweep results loaded from %s)\n",
                     cache.c_str());
        return out;
    }

    std::vector<parallel::SimJob> jobs;
    std::vector<std::string> cellApp; // progress-line labels, by index
    for (AppInput &ai : suite) {
        for (Variant v : {Variant::Serial, Variant::DataParallel,
                          Variant::Pipette, Variant::Streaming}) {
            if (v == Variant::Streaming && !includeStreaming)
                continue;
            uint32_t cores = v == Variant::Streaming ? 4 : 1;
            parallel::SimJob j;
            j.config = baseConfig();
            j.make = [make = ai.make](uint64_t) { return make(); };
            j.variant = v;
            j.input = ai.input;
            j.numCores = cores;
            j.seed = jobs.size();
            jobs.push_back(std::move(j));
            cellApp.push_back(ai.app);
        }
    }

    // Host-side knob only: cached rows from a different --core-jobs
    // value are still valid, so it is applied after fingerprinting.
    applyCoreJobs(o, &jobs);

    parallel::SimJobPool pool(o.effectiveJobs());
    if (pool.numWorkers() > 1)
        std::fprintf(stderr, "  (sweep: %zu cells on %u workers)\n",
                     jobs.size(), pool.numWorkers());
    out.runs = pool.runAll(jobs, [&](size_t i, const RunResult &r) {
        std::fprintf(stderr, "  ran %-6s %-7s %-14s %10llu cycles%s\n",
                     cellApp[i].c_str(), jobs[i].input.c_str(),
                     variantName(jobs[i].variant),
                     static_cast<unsigned long long>(r.cycles),
                     r.verified ? "" : "  [VERIFY FAILED]");
    });
    saveSweepCache(cache, fingerprint, out);
    return out;
}

/**
 * End-of-run host-profiling export: write the manifest (--host-prof)
 * and the Chrome trace (--host-trace) if requested. `bench` names the
 * invoking binary; `hostSecondsTotal` is the sum of the run
 * hostSeconds the bench collected (0 = not tracked);
 * `autoInlineReason` explains a kEpochParallelMinWork fallback (empty
 * = none taken). Returns the HostResource exit code on I/O failure, 0
 * otherwise -- callers `return finishHostProf(...)` as their last
 * statement (or OR it into their own status).
 */
inline int
finishHostProf(const BenchOpts &o, const std::string &bench,
               double hostSecondsTotal = 0,
               const std::string &autoInlineReason = {})
{
    if (o.hostProfPath.empty() && o.hostTracePath.empty())
        return 0;
    int rc = 0;
    std::string err;
    if (!o.hostProfPath.empty()) {
        hostprof::ManifestMeta meta;
        meta.bench = bench;
        meta.configFingerprint = configFingerprint(baseConfig());
        meta.hostSecondsTotal = hostSecondsTotal;
        meta.autoInlineReason = autoInlineReason;
        if (!hostprof::writeManifest(o.hostProfPath, meta, &err)) {
            std::fprintf(stderr, "error: --host-prof: %s\n",
                         err.c_str());
            rc = resilience::exitCode(resilience::SimError::HostResource);
        } else {
            std::fprintf(stderr, "  (host profile written to %s)\n",
                         o.hostProfPath.c_str());
        }
    }
    if (!o.hostTracePath.empty()) {
        if (!hostprof::writeTrace(o.hostTracePath, &err)) {
            std::fprintf(stderr, "error: --host-trace: %s\n",
                         err.c_str());
            rc = resilience::exitCode(resilience::SimError::HostResource);
        } else {
            std::fprintf(stderr, "  (host trace written to %s; open in "
                                 "ui.perfetto.dev)\n",
                         o.hostTracePath.c_str());
        }
    }
    return rc;
}

/** Compose the one-line explanation fig17 rows / manifests carry for
 *  the epoch scheduler's auto-inline fallback ("" = none taken). */
inline std::string
autoInlineReason(bool fellBack, Cycle epochLen, uint32_t numCores)
{
    if (!fellBack)
        return "";
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "epoch %llu x %u cores = %llu core-cycles/phase < "
                  "kEpochParallelMinWork=%llu",
                  static_cast<unsigned long long>(epochLen), numCores,
                  static_cast<unsigned long long>(epochLen * numCores),
                  static_cast<unsigned long long>(
                      System::kEpochParallelMinWork));
    return buf;
}

} // namespace pipette::bench

#endif // PIPETTE_BENCH_COMMON_H
