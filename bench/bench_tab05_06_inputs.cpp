/**
 * @file
 * Tables V and VI: the input sets. Prints our synthetic proxies next to
 * the paper's originals so the per-input shape comparisons in Fig. 13
 * can be interpreted.
 */

#include "bench_common.h"

using namespace pipette;
using namespace pipette::bench;

int
main(int argc, char **argv)
{
    BenchOpts o = BenchOpts::parse(argc, argv);
    banner("Tables V / VI", "Input graphs and matrices (proxies)");
    printConfig(o);

    {
        Table t({"tag", "domain", "vertices", "edges", "avg-deg",
                 "max-deg", "paper original"});
        const char *orig[] = {
            "coAuthorsDBLP 299K/1.9M", "hugetrace-00000 4.6M/14M",
            "Freescale1 3.4M/19M", "as-Skitter 1.7M/22M",
            "USA-road-d 24M/58M"};
        auto inputs = makeTable5Inputs(o.scale);
        for (size_t i = 0; i < inputs.size(); i++) {
            const Graph &g = inputs[i].graph;
            uint32_t maxd = 0;
            for (uint32_t v = 0; v < g.numVertices; v++)
                maxd = std::max(maxd, g.degree(v));
            t.addRow({inputs[i].name, inputs[i].domain,
                      std::to_string(g.numVertices),
                      std::to_string(g.numEdges()),
                      Table::num(g.avgDegree(), 1), std::to_string(maxd),
                      orig[i]});
        }
        t.print();
    }
    std::printf("\n");
    {
        Table t({"tag", "domain", "n", "nnz", "avg-nnz/row",
                 "paper original"});
        const char *orig[] = {"amazon0312 (8.0)", "ca-CondMat (8.1)",
                              "cage12 (15.6)", "2cubes_sphere (16.2)",
                              "rna10 (49.7)", "pct20stif (52.9)"};
        auto mats = makeTable6Inputs(o.scale);
        for (size_t i = 0; i < mats.size(); i++) {
            const SparseMatrix &m = mats[i].matrix;
            t.addRow({mats[i].name, mats[i].domain, std::to_string(m.n),
                      std::to_string(m.nnz()),
                      Table::num(m.avgNnzPerRow(), 1), orig[i]});
        }
        t.print();
    }
    std::printf("\nSilo: YCSB-C (read-only, Zipf 0.99) over a B+tree; "
                "paper used a 52 GB dataset, we size the tree a few "
                "times past the scaled LLC.\n");
    return 0;
}
