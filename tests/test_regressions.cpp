// Regression tests for concurrency/protocol bugs found (and fixed)
// during development. Each test documents the failure mode it guards.

#include <gtest/gtest.h>

#include "core/system.h"
#include "isa/assembler.h"
#include "isa/interp.h"
#include "workloads/cc.h"
#include "workloads/spmm.h"

namespace pipette {
namespace {

constexpr Reg QOUT = R::r11;
constexpr Reg QIN = R::r12;

// Bug 1: skip_to_ctrl armed the queue while the producer's end-of-unit
// CV was still in flight (renamed but uncommitted), redirecting the
// producer inside the *next* unit. The consumer here skips immediately
// after the producer finishes each unit, maximizing the race window.
TEST(Regression, SkipArmMustNotFireWithCvInFlight)
{
    Program prod("prod");
    Addr eh;
    {
        Asm a(&prod);
        auto unit = a.label();
        auto body = a.label();
        auto hdl = a.label("eh");
        auto done = a.label();
        a.li(R::r1, 0); // unit counter
        a.bind(unit);
        a.li(R::r2, 0);
        a.bind(body);
        // Pack (unit << 16 | i) so misrouted values are detectable.
        a.slli(R::r3, R::r1, 16);
        a.or_(R::r3, R::r3, R::r2);
        a.mov(QOUT, R::r3);
        a.addi(R::r2, R::r2, 1);
        a.blti(R::r2, 6, body);
        a.enqc(QOUT, R::r1); // unit delimiter carries the unit id
        a.addi(R::r1, R::r1, 1);
        a.blti(R::r1, 50, unit);
        a.jmp(done);
        a.bind(hdl); // consumer skipped: abort this unit
        a.enqc(QOUT, R::r1);
        a.addi(R::r1, R::r1, 1);
        a.blti(R::r1, 50, unit);
        a.bind(done);
        a.halt();
        a.finalize();
        eh = prod.labels().at("eh");
    }
    Program cons("cons");
    {
        Asm a(&cons);
        auto loop = a.label();
        auto end = a.label();
        // Take the first value of each unit, then skip to the CV; the
        // CVs must arrive in strict unit order 0,1,2,...
        a.li(R::r1, 0); // expected unit id
        a.li(R::r4, 0); // mismatch count
        a.bind(loop);
        a.mov(R::r2, QIN);    // first value of the unit
        a.skiptc(R::r3, QIN); // -> unit delimiter
        {
            auto ok = a.label();
            a.beq(R::r3, R::r1, ok);
            a.addi(R::r4, R::r4, 1); // out-of-order delimiter!
            a.bind(ok);
        }
        a.addi(R::r1, R::r1, 1);
        a.blti(R::r1, 50, loop);
        a.bind(end);
        a.halt();
        a.finalize();
    }
    SystemConfig cfg;
    cfg.watchdogCycles = 200'000;
    System sys(cfg);
    MachineSpec spec;
    auto &tp = spec.addThread(0, 0, &prod);
    tp.queueMaps.push_back({QOUT.idx, 0, QueueDir::Out});
    tp.enqHandler = static_cast<int64_t>(eh);
    spec.addThread(0, 1, &cons).queueMaps.push_back(
        {QIN.idx, 0, QueueDir::In});
    spec.queueCaps.push_back({0, 0, 4});
    sys.configure(spec);
    ASSERT_TRUE(sys.run().finished) << sys.core(0).debugString();
    EXPECT_EQ(sys.core(0).readArchReg(1, 4), 0u); // all CVs in order
}

// Bug 2: the same wrong-abort race across a connector -- the CV can be
// in a network flit when the consumer skips. This is the SpMM streaming
// configuration that originally failed.
TEST(Regression, SpmmStreamingSkipAcrossConnectors)
{
    SparseMatrix A = makeSparseMatrix(800, 16.0, 303);
    SparseMatrix Bt =
        makeSparseMatrix(A.n, A.avgNnzPerRow(), 777).transpose();
    SystemConfig cfg;
    cfg.numCores = 4;
    cfg.watchdogCycles = 500'000;
    System sys(cfg);
    SpmmWorkload wl(&A, &Bt);
    BuildContext ctx(&sys);
    wl.build(ctx, Variant::Streaming);
    sys.configure(ctx.spec);
    ASSERT_TRUE(sys.run().finished);
    EXPECT_TRUE(wl.verify(sys));
}

// Bug 3: CC's original fringe dedup cleared a flag with a plain store
// and then read the label -- StoreLoad reordering (legal on x86 without
// a locked op, and in our OOO model) lost concurrent improvements. The
// epoch protocol removed the window; this pins CC data-parallel at the
// size where it originally failed.
TEST(Regression, CcDataParallelAtFailingScale)
{
    Graph g = makeUniformGraph(9830, 3.0, 22);
    SystemConfig cfg;
    cfg.watchdogCycles = 2'000'000;
    System sys(cfg);
    CcWorkload wl(&g);
    BuildContext ctx(&sys);
    wl.build(ctx, Variant::DataParallel);
    sys.configure(ctx.spec);
    ASSERT_TRUE(sys.run().finished);
    EXPECT_TRUE(wl.verify(sys));
}

// Bug 4: fringe arrays overflowed when a vertex could be appended more
// than once per round (the original flag protocol allowed geometric
// duplicate growth from initial flags of 0). The epoch protocol bounds
// occurrences to one per round; this checks a dense-component graph
// that originally overflowed.
TEST(Regression, CcFringeStaysBounded)
{
    Graph g = makeUniformGraph(104, 3.0, 23);
    SystemConfig cfg;
    System sys(cfg);
    CcWorkload wl(&g);
    BuildContext ctx(&sys);
    wl.build(ctx, Variant::DataParallel);
    Interp in(ctx.spec, &sys.memory());
    ASSERT_EQ(in.run().status, Interp::Status::Done);
    EXPECT_TRUE(wl.verify(sys));
}

// Bug 5: loads executing speculatively past a spin-loop exit read stale
// values (missed wakeup); barriers now end with a FENCE. This runs a
// producer/consumer flag handshake that deadlocked (and timed out)
// before the fix. Covered further in test_core_fence.cpp; this variant
// uses the shared emitBarrier helper exactly as the workloads do.
TEST(Regression, BarrierPublishesSizesToAllThreads)
{
    // Thread 0 writes a value pre-barrier; all threads must read it
    // post-barrier, 30 rounds in a row.
    Addr g = 0x60000, slot = 0x60040;
    const int rounds = 30;
    Program p("pub");
    Asm a(&p);
    auto loop = a.label();
    auto notT0 = a.label();
    a.li(R::r4, g);
    a.li(R::r1, slot);
    a.li(R::r8, 0); // round
    a.li(R::r9, 0); // mismatches
    a.bind(loop);
    a.bnei(R::r5, 0, notT0);
    a.addi(R::r2, R::r8, 1000);
    a.sd(R::r2, R::r1, 0);
    a.bind(notT0);
    emitBarrier(a, R::r4, 0, 8, 4, R::r2, R::r3, R::r6);
    a.ld(R::r2, R::r1, 0);
    a.addi(R::r3, R::r8, 1000);
    {
        auto ok = a.label();
        a.beq(R::r2, R::r3, ok);
        a.addi(R::r9, R::r9, 1);
        a.bind(ok);
    }
    emitBarrier(a, R::r4, 0, 8, 4, R::r2, R::r3, R::r6);
    a.addi(R::r8, R::r8, 1);
    a.blti(R::r8, rounds, loop);
    a.halt();
    a.finalize();

    SystemConfig cfg;
    cfg.watchdogCycles = 300'000;
    System sys(cfg);
    MachineSpec spec;
    for (ThreadId t = 0; t < 4; t++) {
        ThreadSpec &ts = spec.addThread(0, t, &p);
        ts.initRegs[5] = t;
    }
    sys.configure(spec);
    ASSERT_TRUE(sys.run().finished);
    for (ThreadId t = 0; t < 4; t++)
        EXPECT_EQ(sys.core(0).readArchReg(t, 9), 0u) << "thread " << t;
}

} // namespace
} // namespace pipette
