// Fixed-capacity pool tests (sim/pool.h): ObjectPool/PooledPtr
// refcounting and reuse, SlotArena out-of-order release, BoundedDeque
// ring behavior, plus end-to-end checks that a deliberately undersized
// pool stalls rename (instead of corrupting state or touching the heap)
// and that the steady-state run loop performs zero host allocations.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "core/system.h"
#include "sim/pool.h"
#include "workloads/bfs.h"

// Host-heap instrumentation for the zero-allocation steady-state test:
// count every operator-new in the process. Atomic (relaxed -- it is
// only a counter, not a synchronization point) so the count stays
// correct when the binary also runs multithreaded code, e.g. under a
// SimJobPool-style parallel runner.
namespace {
std::atomic<size_t> g_hostAllocs{0};

/**
 * Snapshot-delta reader: scope the measurement to a region instead of
 * comparing raw counter values inline, so tests read one coherent
 * delta even if other allocations happen around the region.
 */
struct AllocCounterScope
{
    size_t start = g_hostAllocs.load(std::memory_order_relaxed);
    size_t
    delta() const
    {
        return g_hostAllocs.load(std::memory_order_relaxed) - start;
    }
};
} // namespace

void *
operator new(size_t n)
{
    g_hostAllocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](size_t n)
{
    g_hostAllocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n))
        return p;
    throw std::bad_alloc();
}

void *
operator new(size_t n, std::align_val_t al)
{
    g_hostAllocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::aligned_alloc(static_cast<size_t>(al), n))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](size_t n, std::align_val_t al)
{
    g_hostAllocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::aligned_alloc(static_cast<size_t>(al), n))
        return p;
    throw std::bad_alloc();
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}
void
operator delete[](void *p) noexcept
{
    std::free(p);
}
void
operator delete(void *p, size_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, size_t) noexcept
{
    std::free(p);
}
void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}

namespace pipette {
namespace {

struct Obj
{
    uint32_t poolRefs = 0;
    ObjectPool<Obj> *poolOwner = nullptr;
    int value = 0;
    int resets = 0;

    void
    poolReset()
    {
        value = 0;
        resets++;
    }
};

TEST(ObjectPoolTest, ExhaustionReturnsNullNotHeap)
{
    ObjectPool<Obj> pool(3);
    EXPECT_EQ(pool.capacity(), 3u);
    EXPECT_EQ(pool.numFree(), 3u);

    PooledPtr<Obj> a(pool.tryAcquire());
    PooledPtr<Obj> b(pool.tryAcquire());
    PooledPtr<Obj> c(pool.tryAcquire());
    ASSERT_TRUE(a && b && c);
    EXPECT_EQ(pool.inUse(), 3u);

    // Pool empty: tryAcquire must report exhaustion, never allocate.
    EXPECT_EQ(pool.tryAcquire(), nullptr);
    EXPECT_EQ(pool.tryAcquire(), nullptr);
    EXPECT_EQ(pool.exhausted(), 2u);
    EXPECT_EQ(pool.acquires(), 3u);
}

TEST(ObjectPoolTest, ReleaseOnLastRefAndReuse)
{
    ObjectPool<Obj> pool(2);
    Obj *raw = nullptr;
    {
        PooledPtr<Obj> a(pool.tryAcquire());
        a->value = 42;
        raw = a.get();

        PooledPtr<Obj> copy = a; // refcount 2
        EXPECT_EQ(raw->poolRefs, 2u);
        a.reset();
        EXPECT_EQ(pool.inUse(), 1u) << "live copy must keep the slot";
        EXPECT_EQ(raw->poolRefs, 1u);
    } // copy dies -> slot released, poolReset ran
    EXPECT_EQ(pool.numFree(), 2u);
    EXPECT_EQ(raw->resets, 1);
    EXPECT_EQ(raw->value, 0);

    // The freed slot is handed out again (LIFO free list).
    PooledPtr<Obj> b(pool.tryAcquire());
    EXPECT_EQ(b.get(), raw);
}

TEST(ObjectPoolTest, MoveTransfersWithoutRefchurn)
{
    ObjectPool<Obj> pool(1);
    PooledPtr<Obj> a(pool.tryAcquire());
    Obj *raw = a.get();
    PooledPtr<Obj> b = std::move(a);
    EXPECT_FALSE(a);
    EXPECT_EQ(b.get(), raw);
    EXPECT_EQ(raw->poolRefs, 1u);
    b = PooledPtr<Obj>(); // move-assign empty drops the slot
    EXPECT_EQ(pool.numFree(), 1u);
}

TEST(SlotArenaTest, OutOfOrderFreeAndExhaustion)
{
    SlotArena<int> arena(3);
    int *a = arena.alloc();
    int *b = arena.alloc();
    int *c = arena.alloc();
    ASSERT_TRUE(a && b && c);
    EXPECT_EQ(arena.alloc(), nullptr);
    EXPECT_EQ(arena.exhausted(), 1u);

    // Checkpoints free from both ends (commit and squash): release the
    // middle first, then the ends, and make sure every slot comes back.
    arena.free(b);
    arena.free(a);
    EXPECT_EQ(arena.numFree(), 2u);
    int *d = arena.alloc();
    int *e = arena.alloc();
    ASSERT_TRUE(d && e);
    EXPECT_EQ(arena.alloc(), nullptr);
    arena.free(c);
    arena.free(d);
    arena.free(e);
    EXPECT_EQ(arena.numFree(), 3u);
    EXPECT_EQ(arena.allocs(), 5u);
}

TEST(BoundedDequeTest, WrapsWithoutAllocating)
{
    BoundedDeque<int> dq;
    dq.init(4);
    // Push/pop far more than the capacity so head/tail wrap many times.
    for (int lap = 0; lap < 100; lap++) {
        dq.push_back(lap);
        dq.push_back(lap + 1000);
        EXPECT_EQ(dq.front(), lap);
        EXPECT_EQ(dq.back(), lap + 1000);
        EXPECT_EQ(dq[1], lap + 1000);
        dq.pop_front();
        dq.pop_front();
        EXPECT_TRUE(dq.empty());
    }
    dq.push_back(1);
    dq.push_back(2);
    dq.pop_back();
    EXPECT_EQ(dq.back(), 1);
    dq.clear();
    EXPECT_TRUE(dq.empty());
}

// An undersized DynInst pool must surface as a rename stall (counted in
// dynInstPoolStalls) while still producing a correct run -- exhaustion
// is a stall, never UB or a heap fallback.
TEST(PoolIntegration, TinyDynInstPoolStallsButStaysCorrect)
{
    Graph g = makeGridGraph(12, 12, 3);
    SystemConfig cfg;
    cfg.watchdogCycles = 200'000;
    cfg.maxCycles = 100'000'000;
    cfg.core.dynInstPoolEntries = 4; // far below ROB size
    System sys(cfg);
    BfsWorkload wl(&g);
    BuildContext ctx(&sys);
    wl.build(ctx, Variant::Serial);
    sys.configure(ctx.spec);
    auto res = sys.run();
    ASSERT_TRUE(res.finished) << sys.core(0).debugString();
    EXPECT_TRUE(wl.verify(sys));
    EXPECT_GT(sys.core(0).stats().dynInstPoolStalls, 0u);
    EXPECT_EQ(sys.core(0).dynInstPool().capacity(), 4u);
    EXPECT_EQ(sys.core(0).dynInstPool().inUse(), 0u)
        << "all instructions must return to the pool at halt";
}

TEST(PoolIntegration, TinyCheckpointArenaStallsButStaysCorrect)
{
    Graph g = makeGridGraph(12, 12, 3);
    SystemConfig cfg;
    cfg.watchdogCycles = 200'000;
    cfg.maxCycles = 100'000'000;
    cfg.core.checkpointArenaEntries = 1; // one in-flight branch at a time
    System sys(cfg);
    BfsWorkload wl(&g);
    BuildContext ctx(&sys);
    wl.build(ctx, Variant::Serial);
    sys.configure(ctx.spec);
    auto res = sys.run();
    ASSERT_TRUE(res.finished) << sys.core(0).debugString();
    EXPECT_TRUE(wl.verify(sys));
    EXPECT_GT(sys.core(0).stats().checkpointStalls, 0u);
    EXPECT_EQ(sys.core(0).checkpointArena().inUse(), 0u);
}

// The headline property of this change: once warm, the run loop makes
// zero host heap allocations -- instructions come from the pool,
// checkpoints from the arena, events from the timing wheel's retained
// buckets, and every pipeline queue is a pre-sized ring.
TEST(PoolIntegration, ZeroHostAllocationsInSteadyState)
{
    Graph g = makeGridGraph(24, 24, 5);
    SystemConfig cfg;
    cfg.watchdogCycles = 200'000;
    cfg.maxCycles = 100'000'000;
    System sys(cfg);
    BfsWorkload wl(&g);
    BuildContext ctx(&sys);
    wl.build(ctx, Variant::Pipette);
    sys.configure(ctx.spec);

    // Warm up: first-touch pages, wheel bucket capacities, MSHR lists.
    auto res = sys.runFor(30'000);
    ASSERT_FALSE(res.finished) << "warmup consumed the whole run; "
                                  "enlarge the graph";

    AllocCounterScope steadyState;
    res = sys.runFor(10'000);
    EXPECT_EQ(steadyState.delta(), 0u)
        << "steady-state simulation must not touch the host heap";

    // And the run still completes correctly afterwards.
    while (!res.finished && !res.deadlock)
        res = sys.runFor(100'000);
    ASSERT_TRUE(res.finished);
    EXPECT_TRUE(wl.verify(sys));

    // Default-sized pools must never have been the bottleneck.
    EXPECT_EQ(sys.core(0).stats().dynInstPoolStalls, 0u);
    EXPECT_EQ(sys.core(0).stats().checkpointStalls, 0u);
    EXPECT_EQ(sys.core(0).dynInstPool().exhausted(), 0u);
    EXPECT_GT(sys.core(0).dynInstPool().acquires(),
              sys.core(0).stats().committedInstrs / 2);
}

} // namespace
} // namespace pipette
