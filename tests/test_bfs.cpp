// BFS workload tests: every variant x pipeline depth x graph shape must
// produce exactly the reference distances, on both the functional
// interpreter and the cycle-level simulator.

#include <gtest/gtest.h>

#include "core/system.h"
#include "isa/interp.h"
#include "workloads/bfs.h"

namespace pipette {
namespace {

struct BfsCase
{
    const char *graphKind;
    Variant variant;
    uint32_t depth;
};

std::string
caseName(const testing::TestParamInfo<BfsCase> &info)
{
    std::string s = std::string(info.param.graphKind) + "_" +
                    variantName(info.param.variant) + "_d" +
                    std::to_string(info.param.depth);
    for (char &c : s)
        if (c == '-')
            c = '_';
    return s;
}

Graph
makeGraph(const std::string &kind)
{
    if (kind == "grid")
        return makeGridGraph(24, 24, 5);
    if (kind == "rmat")
        return makeRmatGraph(512, 2048, 9);
    if (kind == "uniform")
        return makeUniformGraph(600, 4.0, 13);
    return makeGridGraph(4, 4, 1);
}

class BfsVariants : public testing::TestWithParam<BfsCase>
{
};

TEST_P(BfsVariants, MatchesReference)
{
    const BfsCase &c = GetParam();
    Graph g = makeGraph(c.graphKind);

    SystemConfig cfg;
    cfg.numCores = c.variant == Variant::Streaming ? 4 : 1;
    cfg.watchdogCycles = 200'000;
    cfg.maxCycles = 100'000'000;
    System sys(cfg);

    BfsWorkload::Options opt;
    opt.depth = c.depth;
    BfsWorkload wl(&g, opt);
    BuildContext ctx(&sys);
    wl.build(ctx, c.variant);
    sys.configure(ctx.spec);
    auto res = sys.run();
    ASSERT_TRUE(res.finished) << sys.core(0).debugString();
    EXPECT_TRUE(wl.verify(sys));
    EXPECT_GT(res.instrs, g.numEdges()); // actually did the work
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, BfsVariants,
    testing::Values(
        BfsCase{"grid", Variant::Serial, 4},
        BfsCase{"grid", Variant::DataParallel, 4},
        BfsCase{"grid", Variant::Pipette, 4},
        BfsCase{"grid", Variant::Pipette, 3},
        BfsCase{"grid", Variant::Pipette, 2},
        BfsCase{"grid", Variant::PipetteNoRa, 4},
        BfsCase{"grid", Variant::PipetteNoRa, 3},
        BfsCase{"grid", Variant::PipetteNoRa, 2},
        BfsCase{"grid", Variant::Streaming, 4},
        BfsCase{"rmat", Variant::Serial, 4},
        BfsCase{"rmat", Variant::DataParallel, 4},
        BfsCase{"rmat", Variant::Pipette, 4},
        BfsCase{"rmat", Variant::PipetteNoRa, 4},
        BfsCase{"rmat", Variant::Streaming, 4},
        BfsCase{"uniform", Variant::Pipette, 4},
        BfsCase{"uniform", Variant::DataParallel, 4}),
    caseName);

TEST(BfsInterp, PipetteFunctionallyCorrectOnInterpreter)
{
    // The same machine spec must also pass on the golden-model
    // interpreter (differential check of the Pipette semantics).
    Graph g = makeGridGraph(12, 12, 3);
    SystemConfig cfg;
    System sys(cfg); // memory donor for the build
    BfsWorkload wl(&g);
    BuildContext ctx(&sys);
    wl.build(ctx, Variant::Pipette);

    Interp in(ctx.spec, &sys.memory());
    auto res = in.run();
    ASSERT_EQ(res.status, Interp::Status::Done);
    EXPECT_TRUE(wl.verify(sys));
}

TEST(BfsInterp, DataParallelFunctionallyCorrectOnInterpreter)
{
    Graph g = makeRmatGraph(256, 1024, 17);
    SystemConfig cfg;
    System sys(cfg);
    BfsWorkload wl(&g);
    BuildContext ctx(&sys);
    wl.build(ctx, Variant::DataParallel);

    Interp in(ctx.spec, &sys.memory());
    ASSERT_EQ(in.run().status, Interp::Status::Done);
    EXPECT_TRUE(wl.verify(sys));
}

TEST(BfsPerf, PipetteBeatsSerialOnIrregularGraph)
{
    // Smoke-check the paper's headline direction on a small-but-real
    // input: Pipette with RAs must be meaningfully faster than serial.
    Graph g = makeGridGraph(48, 48, 21);

    auto runCycles = [&](Variant v) {
        SystemConfig cfg;
        cfg.watchdogCycles = 500'000;
        System sys(cfg);
        BfsWorkload wl(&g);
        BuildContext ctx(&sys);
        wl.build(ctx, v);
        sys.configure(ctx.spec);
        auto res = sys.run();
        EXPECT_TRUE(res.finished);
        EXPECT_TRUE(wl.verify(sys));
        return res.cycles;
    };

    Cycle serial = runCycles(Variant::Serial);
    Cycle pipette = runCycles(Variant::Pipette);
    EXPECT_LT(pipette, serial);
}

} // namespace
} // namespace pipette

namespace pipette {
namespace {

TEST(BfsMulticore, MatchesReferenceOnGrid)
{
    Graph g = makeGridGraph(24, 24, 5);
    SystemConfig cfg;
    cfg.numCores = 4;
    cfg.watchdogCycles = 300'000;
    cfg.maxCycles = 200'000'000;
    System sys(cfg);
    BfsWorkload wl(&g);
    BuildContext ctx(&sys);
    wl.build(ctx, Variant::MulticorePipette);
    sys.configure(ctx.spec);
    auto res = sys.run();
    ASSERT_TRUE(res.finished)
        << sys.core(0).debugString() << sys.core(1).debugString()
        << sys.core(2).debugString() << sys.core(3).debugString();
    EXPECT_TRUE(wl.verify(sys));
    EXPECT_GT(sys.core(0).stats().connectorTransfers, 0u);
}

TEST(BfsMulticore, MatchesReferenceOnRmat)
{
    Graph g = makeRmatGraph(512, 2048, 9);
    SystemConfig cfg;
    cfg.numCores = 4;
    cfg.watchdogCycles = 300'000;
    cfg.maxCycles = 200'000'000;
    System sys(cfg);
    BfsWorkload wl(&g);
    BuildContext ctx(&sys);
    wl.build(ctx, Variant::MulticorePipette);
    sys.configure(ctx.spec);
    auto res = sys.run();
    ASSERT_TRUE(res.finished) << sys.core(0).debugString();
    EXPECT_TRUE(wl.verify(sys));
}

TEST(BfsMulticore, FunctionallyCorrectOnInterpreter)
{
    Graph g = makeUniformGraph(500, 4.0, 13);
    SystemConfig cfg;
    cfg.numCores = 4;
    System sys(cfg);
    BfsWorkload wl(&g);
    BuildContext ctx(&sys);
    wl.build(ctx, Variant::MulticorePipette);
    Interp in(ctx.spec, &sys.memory());
    ASSERT_EQ(in.run().status, Interp::Status::Done);
    EXPECT_TRUE(wl.verify(sys));
}

} // namespace
} // namespace pipette
