// Tests for the harness layer: runner metrics, energy model, gmean,
// and the report tables.

#include <gtest/gtest.h>

#include "harness/report.h"
#include "harness/runner.h"
#include "workloads/bfs.h"

namespace pipette {
namespace {

TEST(Gmean, BasicProperties)
{
    EXPECT_DOUBLE_EQ(gmean({4.0}), 4.0);
    EXPECT_NEAR(gmean({1.0, 4.0}), 2.0, 1e-9);
    EXPECT_NEAR(gmean({2.0, 2.0, 2.0}), 2.0, 1e-9);
    EXPECT_EQ(gmean({}), 0.0);
}

TEST(Runner, CollectsConsistentMetrics)
{
    Graph g = makeGridGraph(16, 16, 3);
    SystemConfig cfg;
    Runner runner(cfg);
    BfsWorkload wl(&g);
    RunResult r = runner.run(wl, Variant::Serial, "grid");
    EXPECT_TRUE(r.finished);
    EXPECT_TRUE(r.verified);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.instrs, 0u);
    EXPECT_NEAR(r.ipc,
                static_cast<double>(r.instrs) /
                    static_cast<double>(r.cycles),
                1e-9);
    double fracSum = 0;
    for (double f : r.cpiFrac)
        fracSum += f;
    EXPECT_NEAR(fracSum, 1.0, 1e-6);
    EXPECT_GT(r.energy.total(), 0.0);
    EXPECT_EQ(r.workload, "bfs");
    EXPECT_EQ(r.input, "grid");
}

TEST(Runner, FlagsVerificationFailuresWithoutAborting)
{
    // A workload whose verify always fails must come back as
    // verified=false, not crash.
    struct Broken : WorkloadBase
    {
        Graph g = makeGridGraph(4, 4, 1);
        BfsWorkload inner{&g};
        std::string name() const override { return "broken"; }
        void
        build(BuildContext &ctx, Variant v) override
        {
            inner.build(ctx, v);
        }
        bool verify(System &) const override { return false; }
    };
    SystemConfig cfg;
    Runner runner(cfg);
    Broken wl;
    RunResult r = runner.run(wl, Variant::Serial, "x");
    EXPECT_TRUE(r.finished);
    EXPECT_FALSE(r.verified);
}

TEST(Energy, MoreWorkCostsMoreEnergy)
{
    auto runEnergy = [](uint32_t dim) {
        Graph g = makeGridGraph(dim, dim, 3);
        SystemConfig cfg;
        Runner runner(cfg);
        BfsWorkload wl(&g);
        return runner.run(wl, Variant::Serial, "g").energy.total();
    };
    EXPECT_LT(runEnergy(12), runEnergy(32));
}

TEST(Energy, StreamingPaysMoreStaticThanPipette)
{
    // The 4-core streaming configuration burns static energy on
    // poorly-utilized cores (paper Fig. 12's key point).
    Graph g = makeGridGraph(24, 24, 3);
    SystemConfig cfg;
    Runner runner(cfg);
    BfsWorkload wl1(&g);
    auto pip = runner.run(wl1, Variant::Pipette, "g", 1);
    BfsWorkload wl2(&g);
    auto str = runner.run(wl2, Variant::Streaming, "g", 4);
    ASSERT_TRUE(pip.verified);
    ASSERT_TRUE(str.verified);
    EXPECT_GT(str.energy.coreStatic, pip.energy.coreStatic);
}

TEST(Energy, BreakdownComponentsAreNonNegative)
{
    Graph g = makeGridGraph(10, 10, 3);
    SystemConfig cfg;
    Runner runner(cfg);
    BfsWorkload wl(&g);
    auto e = runner.run(wl, Variant::Pipette, "g").energy;
    EXPECT_GE(e.coreDynamic, 0.0);
    EXPECT_GE(e.coreStatic, 0.0);
    EXPECT_GE(e.cache, 0.0);
    EXPECT_GE(e.dram, 0.0);
    EXPECT_NEAR(e.total(),
                e.coreDynamic + e.coreStatic + e.cache + e.dram, 1e-9);
}

TEST(Report, TableFormatsNumbers)
{
    EXPECT_EQ(Table::num(1.234), "1.23");
    EXPECT_EQ(Table::num(1.235, 1), "1.2");
    EXPECT_EQ(Table::num(10, 0), "10");
}

TEST(Report, TableRejectsWrongWidth)
{
    Table t({"a", "b"});
    t.addRow({"1", "2"});
    EXPECT_DEATH(t.addRow({"only-one"}), "width mismatch");
}

} // namespace
} // namespace pipette
