// Sampled + fast-forward simulation tests (src/sample/): checkpoint
// round-trips into the detailed model, byte-identical sampled stats at
// any --jobs value and across repeated runs, queue-cap clamping, and
// configFingerprint coverage of the sampling knobs.

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "core/system.h"
#include "isa/interp.h"
#include "sample/cow_journal.h"
#include "sample/sampler.h"
#include "sample/warm_model.h"
#include "workloads/bfs.h"

namespace pipette {
namespace {

Graph
testGraph()
{
    return makeRmatGraph(512, 2048, 9);
}

SystemConfig
testConfig()
{
    SystemConfig cfg;
    cfg.watchdogCycles = 200'000;
    cfg.maxCycles = 100'000'000;
    return cfg;
}

/** Render a stats map with full double precision (byte-identity). */
std::string
statsString(const std::map<std::string, double> &m)
{
    std::string out;
    char buf[64];
    for (const auto &[k, v] : m) {
        snprintf(buf, sizeof(buf), "%.17g", v);
        out += k;
        out += '=';
        out += buf;
        out += '\n';
    }
    return out;
}

// A window restored from a checkpoint taken before the first committed
// instruction must replay the entire run: same full flattened stat set
// as an uninterrupted detailed simulation, same verified output. This
// pins the restore path end to end -- thread state, queue preload, RA
// cursors, page-source memory, and warm-state install must all be
// exact no-ops at instruction zero.
TEST(SampleCheckpoint, RestoreAtStartBitIdenticalToFreshRun)
{
    Graph g = testGraph();
    SystemConfig cfg = testConfig();

    // Uninterrupted detailed run.
    System plain(cfg);
    BfsWorkload wlPlain(&g);
    BuildContext ctxPlain(&plain);
    wlPlain.build(ctxPlain, Variant::Pipette);
    plain.configure(ctxPlain.spec);
    System::RunResult rPlain = plain.run();
    ASSERT_TRUE(rPlain.finished);
    ASSERT_TRUE(wlPlain.verify(plain));
    auto statsPlain = plain.dumpStats();

    // Checkpoint at instruction zero: build a separate live memory,
    // snapshot the unstepped interpreter, and restore into a fresh
    // System that reads memory through the (empty) journal.
    System ffSys(cfg);
    BfsWorkload wl(&g);
    BuildContext ctx(&ffSys);
    wl.build(ctx, Variant::Pipette);
    Interp interp(ctx.spec, &ffSys.memory(), cfg.core.queueCapacity);
    sample::WarmModel warm(cfg);
    sample::CowJournal journal(&ffSys.memory());
    ArchSnapshot snap = interp.snapshot();
    sample::WarmState warmState = warm.state();

    sample::WindowSource src(&journal, 0);
    System win(cfg);
    win.memory().setPageSource(&src);
    win.configure(ctx.spec);
    win.restoreArchState(snap);
    for (uint32_t c = 0; c < win.numCores(); c++) {
        win.hierarchy().l1Array(c) = warmState.l1[c];
        win.hierarchy().l2Array(c) = warmState.l2[c];
        win.core(c).bpred() = warmState.bpred[c];
        if (StreamPrefetcher *pf = win.hierarchy().prefetcherFor(c))
            pf->restore(warmState.pf[c]);
    }
    win.hierarchy().l3Array() = warmState.l3;

    System::RunResult rWin = win.run();
    ASSERT_TRUE(rWin.finished);
    EXPECT_TRUE(wl.verify(win));
    EXPECT_EQ(rWin.cycles, rPlain.cycles);
    EXPECT_EQ(rWin.instrs, rPlain.instrs);
    EXPECT_EQ(statsString(win.dumpStats()), statsString(statsPlain));
}

// A checkpoint taken mid-run (fast-forward to an arbitrary commit,
// with warming and journaling active) must restore into a detailed
// System that runs to completion and produces the exact architectural
// output -- the reference distances -- even though the fast-forward
// continued past the checkpoint and overwrote the live memory.
TEST(SampleCheckpoint, MidRunRestoreCompletesAndVerifies)
{
    Graph g = testGraph();
    SystemConfig cfg = testConfig();

    System ffSys(cfg);
    BfsWorkload wl(&g);
    BuildContext ctx(&ffSys);
    wl.build(ctx, Variant::Pipette);

    Interp interp(ctx.spec, &ffSys.memory(), cfg.core.queueCapacity);
    interp.clampQueueCaps(64);
    sample::WarmModel warm(cfg);
    interp.setHooks(&warm);
    sample::CowJournal journal(&ffSys.memory());
    ffSys.memory().setWriteObserver(&journal);

    Interp::Result mid = interp.runUntil(8'000);
    ASSERT_EQ(mid.status, Interp::Status::Target);
    ArchSnapshot snap = interp.snapshot();
    sample::WarmState warmState = warm.state();
    journal.beginInterval(); // checkpoint covers everything after it

    Interp::Result fin = interp.run();
    ASSERT_EQ(fin.status, Interp::Status::Done);
    ffSys.memory().setWriteObserver(nullptr);
    ASSERT_TRUE(wl.verify(ffSys)); // functional fast-forward is exact

    sample::WindowSource src(&journal, 0);
    System win(cfg);
    win.memory().setPageSource(&src);
    win.configure(ctx.spec);
    win.restoreArchState(snap);
    for (uint32_t c = 0; c < win.numCores(); c++) {
        win.hierarchy().l1Array(c) = warmState.l1[c];
        win.hierarchy().l2Array(c) = warmState.l2[c];
        win.core(c).bpred() = warmState.bpred[c];
        if (StreamPrefetcher *pf = win.hierarchy().prefetcherFor(c))
            pf->restore(warmState.pf[c]);
    }
    win.hierarchy().l3Array() = warmState.l3;

    System::RunResult r = win.run();
    EXPECT_TRUE(r.finished) << "stop: "
                            << System::stopReasonName(r.stopReason)
                            << " " << r.diagnosis;
    EXPECT_GT(r.instrs, 0u);
    EXPECT_TRUE(wl.verify(win));
}

// Sampled-mode stats must be byte-identical across repeated runs and
// across --jobs values: the window fan-out writes slot-addressed
// results reduced in checkpoint order, so host scheduling can never
// leak into the numbers.
TEST(SampledRun, StatsByteIdenticalAcrossJobsAndRuns)
{
    Graph g = testGraph();
    SystemConfig cfg = testConfig();
    cfg.sampling.period = 4'000;
    cfg.sampling.window = 1'500;
    cfg.sampling.warmup = 500;

    BfsWorkload wl1(&g), wl2(&g), wl3(&g);
    sample::SampleReport a =
        sample::runSampled(cfg, wl1, Variant::Pipette, 1);
    sample::SampleReport b =
        sample::runSampled(cfg, wl2, Variant::Pipette, 1);
    sample::SampleReport c =
        sample::runSampled(cfg, wl3, Variant::Pipette, 4);

    ASSERT_TRUE(a.ok);
    EXPECT_TRUE(a.verified);
    EXPECT_GE(a.windows, 4u) << "period too large for this input";
    EXPECT_EQ(a.windowsOk, a.windows);

    EXPECT_EQ(statsString(a.stats), statsString(b.stats));
    EXPECT_EQ(statsString(a.stats), statsString(c.stats));
    EXPECT_EQ(a.extrapCycles, c.extrapCycles);

    // Extrapolated and exact counters stay separate.
    EXPECT_EQ(a.stats.count("sample.extrapCycles"), 1u);
    EXPECT_EQ(a.stats.count("sample.ffInstrs"), 1u);
    EXPECT_EQ(a.stats.at("sim.sampled"), 1.0);
}

// Clamped queue capacities keep the interpreter's functional results
// exact (capacities only change the blocking schedule), and bound the
// committed occupancy a checkpoint can carry.
TEST(SampleFastForward, ClampedQueueCapsKeepFunctionalResults)
{
    Graph g = testGraph();
    SystemConfig cfg = testConfig();

    System sys(cfg);
    BfsWorkload wl(&g);
    BuildContext ctx(&sys);
    wl.build(ctx, Variant::Pipette);

    Interp interp(ctx.spec, &sys.memory(), cfg.core.queueCapacity);
    interp.clampQueueCaps(32); // much tighter than the default budget
    Interp::Result r = interp.run();
    ASSERT_EQ(r.status, Interp::Status::Done);
    EXPECT_TRUE(wl.verify(sys));

    ArchSnapshot snap = interp.snapshot();
    for (const auto &q : snap.queues)
        EXPECT_LE(q.entries.size(), 32u);
}

// The sampling knobs change the reported numbers, so they must key the
// sweep cache.
TEST(SamplingConfigTest, FieldsKeyTheFingerprint)
{
    SystemConfig base;
    SystemConfig p = base, w = base, u = base;
    p.sampling.period = 100'000;
    w.sampling.window = base.sampling.window + 1;
    u.sampling.warmup = base.sampling.warmup + 1;

    EXPECT_EQ(configFingerprint(base), configFingerprint(SystemConfig{}));
    EXPECT_NE(configFingerprint(base), configFingerprint(p));
    EXPECT_NE(configFingerprint(base), configFingerprint(w));
    EXPECT_NE(configFingerprint(base), configFingerprint(u));
}

} // namespace
} // namespace pipette
