// Memory ordering and misc core behaviours: FENCE semantics, 32-bit
// atomics, divider pipelining, and assorted corner cases of the
// rename/commit machinery.

#include <gtest/gtest.h>

#include "core/system.h"
#include "isa/assembler.h"
#include "isa/interp.h"
#include "workloads/workload.h"

namespace pipette {
namespace {

TEST(Fence, OrdersSpinExitAgainstLaterLoads)
{
    // Producer: data = 41..; publish via flag. Consumer: spin on flag,
    // fence, read data. Without the fence the consumer's data load can
    // execute speculatively before the flag observation and read 0.
    // Run many rounds to give the race room.
    Addr data = 0x20000;
    const int rounds = 50;

    Program prod("prod");
    {
        Asm a(&prod);
        auto loop = a.label();
        auto spin = a.label();
        a.li(R::r1, data);
        a.li(R::r2, 0); // round
        a.bind(loop);
        a.addi(R::r3, R::r2, 100);
        a.sd(R::r3, R::r1, 0); // data = round + 100
        a.addi(R::r3, R::r2, 1);
        a.sd(R::r3, R::r1, 8); // flag = round + 1
        // Wait for the consumer to ack (flag set to 0 by consumer).
        a.bind(spin);
        a.ld(R::r3, R::r1, 8);
        a.bnei(R::r3, 0, spin);
        a.fence();
        a.addi(R::r2, R::r2, 1);
        a.blti(R::r2, rounds, loop);
        a.halt();
        a.finalize();
    }
    Program cons("cons");
    {
        Asm a(&cons);
        auto loop = a.label();
        auto spin = a.label();
        a.li(R::r1, data);
        a.li(R::r2, 0); // round
        a.li(R::r4, 0); // sum of observed data
        a.bind(loop);
        a.bind(spin);
        a.ld(R::r3, R::r1, 8);
        a.beqi(R::r3, 0, spin);
        a.fence();
        a.ld(R::r3, R::r1, 0); // must see this round's data
        a.add(R::r4, R::r4, R::r3);
        a.sd(R::zero, R::r1, 8); // ack
        a.addi(R::r2, R::r2, 1);
        a.blti(R::r2, rounds, loop);
        a.halt();
        a.finalize();
    }
    SystemConfig cfg;
    cfg.watchdogCycles = 200'000;
    System sys(cfg);
    MachineSpec spec;
    spec.addThread(0, 0, &prod);
    spec.addThread(0, 1, &cons);
    sys.configure(spec);
    ASSERT_TRUE(sys.run().finished);
    uint64_t expect = 0;
    for (int r = 0; r < rounds; r++)
        expect += 100 + r;
    EXPECT_EQ(sys.core(0).readArchReg(1, 4), expect);
}

TEST(Atomics32, WidthAndZeroExtension)
{
    Program p("a32");
    Asm a(&p);
    a.li(R::r1, 0x30000);
    a.li(R::r2, 0xFFFFFFFFFFFFFFFFull);
    a.sd(R::r2, R::r1, 0); // both words all-ones
    a.li(R::r3, 1);
    a.amoaddw(R::r4, R::r1, R::r3); // low word only
    a.ld(R::r5, R::r1, 0);
    a.halt();
    a.finalize();
    SystemConfig cfg;
    System sys(cfg);
    MachineSpec spec;
    spec.addThread(0, 0, &p);
    sys.configure(spec);
    ASSERT_TRUE(sys.run().finished);
    // Old value zero-extended.
    EXPECT_EQ(sys.core(0).readArchReg(0, 4), 0xFFFFFFFFull);
    // Low word wrapped to 0; high word untouched.
    EXPECT_EQ(sys.core(0).readArchReg(0, 5), 0xFFFFFFFF00000000ull);
}

TEST(Atomics32, MinClaimSemantics)
{
    Program p("min");
    Asm a(&p);
    a.li(R::r1, 0x30000);
    a.li(R::r2, 50);
    a.sw(R::r2, R::r1, 0);
    a.li(R::r3, 30);
    a.amominuw(R::r4, R::r1, R::r3); // improves: old 50
    a.li(R::r3, 40);
    a.amominuw(R::r5, R::r1, R::r3); // no improvement: old 30
    a.lw(R::r6, R::r1, 0);
    a.halt();
    a.finalize();
    SystemConfig cfg;
    System sys(cfg);
    MachineSpec spec;
    spec.addThread(0, 0, &p);
    sys.configure(spec);
    ASSERT_TRUE(sys.run().finished);
    EXPECT_EQ(sys.core(0).readArchReg(0, 4), 50u);
    EXPECT_EQ(sys.core(0).readArchReg(0, 5), 30u);
    EXPECT_EQ(sys.core(0).readArchReg(0, 6), 30u);
}

TEST(Divider, IndependentDivsOverlap)
{
    // 32 independent divisions: with a pipelined divider this takes
    // far less than 32 * latency cycles.
    Program p("divs");
    Asm a(&p);
    auto loop = a.label();
    a.li(R::r1, 1000000);
    a.li(R::r2, 7);
    a.li(R::r3, 0);
    a.li(R::r4, 0);
    a.bind(loop);
    a.divu(R::r5, R::r1, R::r2); // independent each iteration
    a.add(R::r4, R::r4, R::r5);
    a.addi(R::r3, R::r3, 1);
    a.blti(R::r3, 32, loop);
    a.halt();
    a.finalize();
    SystemConfig cfg;
    System sys(cfg);
    MachineSpec spec;
    spec.addThread(0, 0, &p);
    sys.configure(spec);
    auto res = sys.run();
    ASSERT_TRUE(res.finished);
    EXPECT_EQ(sys.core(0).readArchReg(0, 4), 32ull * (1000000 / 7));
    // Far better than serialized 32 * 20 latency (plus loop overhead).
    EXPECT_LT(res.cycles, 32 * 20);
}

TEST(Barrier, EmitBarrierSynchronizesFourThreads)
{
    // Each thread increments a shared counter, barriers, then reads it;
    // all must observe the full count.
    Addr g = 0x40000, counter = 0x40040;
    Program p("bar");
    Asm a(&p);
    a.li(R::r4, g);
    a.li(R::r1, counter);
    a.li(R::r2, 1);
    a.amoadd(R::zero, R::r1, R::r2);
    emitBarrier(a, R::r4, 0, 8, 4, R::r5, R::r6, R::r7);
    a.ld(R::r3, R::r1, 0);
    a.halt();
    a.finalize();
    SystemConfig cfg;
    System sys(cfg);
    MachineSpec spec;
    for (ThreadId t = 0; t < 4; t++)
        spec.addThread(0, t, &p);
    sys.configure(spec);
    ASSERT_TRUE(sys.run().finished);
    for (ThreadId t = 0; t < 4; t++)
        EXPECT_EQ(sys.core(0).readArchReg(t, 3), 4u) << "thread " << t;
}

TEST(Barrier, ReusableAcrossManyRounds)
{
    // 20 consecutive barrier crossings; a phase-aliasing bug would
    // deadlock or let threads slip a round.
    Addr g = 0x50000, counter = 0x50040;
    const int rounds = 20;
    Program p("bars");
    Asm a(&p);
    auto loop = a.label();
    a.li(R::r4, g);
    a.li(R::r1, counter);
    a.li(R::r8, 0);
    a.bind(loop);
    a.li(R::r2, 1);
    a.amoadd(R::zero, R::r1, R::r2);
    emitBarrier(a, R::r4, 0, 8, 4, R::r5, R::r6, R::r7);
    a.addi(R::r8, R::r8, 1);
    a.blti(R::r8, rounds, loop);
    a.halt();
    a.finalize();
    SystemConfig cfg;
    cfg.watchdogCycles = 200'000;
    System sys(cfg);
    MachineSpec spec;
    for (ThreadId t = 0; t < 4; t++)
        spec.addThread(0, t, &p);
    sys.configure(spec);
    ASSERT_TRUE(sys.run().finished);
    EXPECT_EQ(sys.memory().read(counter, 8),
              static_cast<uint64_t>(4 * rounds));
}

} // namespace
} // namespace pipette
