// Unit tests for the Queue Register Map: pointer discipline,
// speculative rollback, non-speculative agents, and the register budget.

#include <gtest/gtest.h>

#include "pipette/qrm.h"

namespace pipette {
namespace {

TEST(Qrm, SpecEnqueueVisibleOnlyAfterCommit)
{
    Qrm q(4, 8, 64);
    EXPECT_FALSE(q.canDequeueSpec(0));
    q.enqueueSpec(0, 5, false);
    EXPECT_FALSE(q.canDequeueSpec(0)); // not committed yet
    q.commitEnqueue(0);
    EXPECT_TRUE(q.canDequeueSpec(0));
    EXPECT_EQ(q.headReg(0), 5);
    EXPECT_FALSE(q.headCtrl(0));
}

TEST(Qrm, FifoOrder)
{
    Qrm q(1, 8, 64);
    for (PhysRegId r = 10; r < 14; r++) {
        q.enqueueSpec(0, r, false);
        q.commitEnqueue(0);
    }
    for (PhysRegId r = 10; r < 14; r++)
        EXPECT_EQ(q.dequeueSpec(0), r);
    for (PhysRegId r = 10; r < 14; r++)
        EXPECT_EQ(q.commitDequeue(0), r);
}

TEST(Qrm, CapacityBlocksEnqueue)
{
    Qrm q(1, 4, 64);
    for (int i = 0; i < 4; i++)
        q.enqueueSpec(0, static_cast<PhysRegId>(i), false);
    EXPECT_FALSE(q.canEnqueueSpec(0));
    EXPECT_TRUE(q.enqueueFull(0));
    // Committing the enqueues does not free space; dequeue-commit does.
    for (int i = 0; i < 4; i++)
        q.commitEnqueue(0);
    EXPECT_FALSE(q.canEnqueueSpec(0));
    q.dequeueSpec(0);
    EXPECT_FALSE(q.canEnqueueSpec(0)); // spec dequeue is not enough
    q.commitDequeue(0);
    EXPECT_TRUE(q.canEnqueueSpec(0));
}

TEST(Qrm, RollbackEnqueueRestoresState)
{
    Qrm q(1, 4, 64);
    q.enqueueSpec(0, 7, true);
    EXPECT_EQ(q.regsInUse(), 1u);
    EXPECT_EQ(q.rollbackEnqueue(0), 7);
    EXPECT_EQ(q.regsInUse(), 0u);
    EXPECT_EQ(q.totalSize(0), 0u);
}

TEST(Qrm, RollbackDequeueRestoresHead)
{
    Qrm q(1, 4, 64);
    q.enqueueSpec(0, 9, false);
    q.commitEnqueue(0);
    EXPECT_EQ(q.dequeueSpec(0), 9);
    EXPECT_FALSE(q.canDequeueSpec(0));
    q.rollbackDequeue(0);
    EXPECT_TRUE(q.canDequeueSpec(0));
    EXPECT_EQ(q.headReg(0), 9);
}

TEST(Qrm, CtrlBitTracked)
{
    Qrm q(1, 4, 64);
    q.enqueueSpec(0, 1, false);
    q.commitEnqueue(0);
    q.enqueueSpec(0, 2, true);
    q.commitEnqueue(0);
    EXPECT_FALSE(q.headCtrl(0));
    q.dequeueSpec(0);
    EXPECT_TRUE(q.headCtrl(0));
}

TEST(Qrm, ScanForCtrl)
{
    Qrm q(1, 8, 64);
    for (int i = 0; i < 3; i++) {
        q.enqueueSpec(0, static_cast<PhysRegId>(i), false);
        q.commitEnqueue(0);
    }
    EXPECT_FALSE(q.scanForCtrl(0).found);
    q.enqueueSpec(0, 50, true);
    // Not committed: scan must not see it.
    EXPECT_FALSE(q.scanForCtrl(0).found);
    q.commitEnqueue(0);
    auto s = q.scanForCtrl(0);
    EXPECT_TRUE(s.found);
    EXPECT_EQ(s.offset, 3u);
}

TEST(Qrm, NonSpecAgentsBypassSpeculation)
{
    Qrm q(2, 4, 64);
    q.enqueueNonSpec(0, 3, false);
    EXPECT_TRUE(q.canDequeueSpec(0));  // immediately visible
    bool ctrl = true;
    EXPECT_EQ(q.dequeueNonSpec(0, &ctrl), 3);
    EXPECT_FALSE(ctrl);
    EXPECT_EQ(q.regsInUse(), 0u);
}

TEST(Qrm, NonSpecCtrlEnqueueClearsSkipArm)
{
    Qrm q(1, 4, 64);
    q.armSkip(0);
    q.enqueueNonSpec(0, 1, false);
    EXPECT_TRUE(q.skipArmed(0)); // data does not clear
    q.enqueueNonSpec(0, 2, true);
    EXPECT_FALSE(q.skipArmed(0)); // CV clears
}

TEST(Qrm, RegisterBudgetSharedAcrossQueues)
{
    Qrm q(2, 8, 6);
    for (int i = 0; i < 3; i++)
        q.enqueueSpec(0, static_cast<PhysRegId>(i), false);
    for (int i = 0; i < 3; i++)
        q.enqueueSpec(1, static_cast<PhysRegId>(10 + i), false);
    EXPECT_FALSE(q.canEnqueueSpec(0)); // budget, not capacity
    EXPECT_FALSE(q.enqueueFull(0));
    EXPECT_FALSE(q.canEnqueueSpec(1));
}

TEST(Qrm, WrapAroundManyTimes)
{
    Qrm q(1, 3, 64);
    for (int round = 0; round < 50; round++) {
        PhysRegId r = static_cast<PhysRegId>(round);
        q.enqueueSpec(0, r, round % 5 == 0);
        q.commitEnqueue(0);
        EXPECT_EQ(q.headCtrl(0), round % 5 == 0);
        EXPECT_EQ(q.dequeueSpec(0), r);
        EXPECT_EQ(q.commitDequeue(0), r);
    }
    EXPECT_EQ(q.regsInUse(), 0u);
}

TEST(Qrm, ResizeInactiveQueueOnly)
{
    Qrm q(2, 4, 64);
    q.setCapacity(0, 16);
    EXPECT_EQ(q.capacity(0), 16u);
    q.enqueueSpec(1, 1, false);
    EXPECT_DEATH(q.setCapacity(1, 16), "resizing active queue");
}

} // namespace
} // namespace pipette
