// Stats-registry completeness (ISSUE 5 satellite): every CoreStats
// counter must reach the flattened dump map and the cross-core
// aggregation. The PIPETTE_CORE_STAT_COUNTERS X-macro is the single
// source of truth (a sizeof static_assert in stats.h ties the struct to
// it); these tests pin the dumped key set to the registry and check the
// aggregate against the per-core dumps of a real multi-core run.

#include <gtest/gtest.h>

#include <set>

#include "core/system.h"
#include "workloads/bfs.h"
#include "workloads/graph.h"

namespace pipette {
namespace {

TEST(StatsCoverage, DumpKeySetMatchesRegistryExactly)
{
    CoreStats s;
    std::map<std::string, double> out;
    s.dump("core0", out);

    std::set<std::string> expected;
    expected.insert("core0.cycles");
#define PIPETTE_EXPECT_STAT(name) expected.insert("core0." #name);
    PIPETTE_CORE_STAT_COUNTERS(PIPETTE_EXPECT_STAT)
#undef PIPETTE_EXPECT_STAT
    for (size_t t = 0; t < 8; t++)
        expected.insert("core0.committedPerThread" + std::to_string(t));
    expected.insert("core0.ipc");
    for (size_t i = 0; i < NUM_CPI_BUCKETS; i++) {
        expected.insert(std::string("core0.cpi.") +
                        cpiBucketName(static_cast<CpiBucket>(i)));
    }

    std::set<std::string> actual;
    for (const auto &[k, v] : out)
        actual.insert(k);
    EXPECT_EQ(actual, expected);
    EXPECT_EQ(out.size(),
              1 + NUM_CORE_STAT_COUNTERS + 8 + 1 + NUM_CPI_BUCKETS);
}

// Aggregate a 4-core streaming run and cross-check every registered
// counter (plus cycles, the per-thread commits, and the CPI stack)
// against the sum of the per-core dumps. A counter dropped from
// System::aggregateCoreStats (the pre-ISSUE-5 bug for
// committedPerThread) fails here on the first workload that touches it.
TEST(StatsCoverage, AggregateSumsEveryCounterAcrossCores)
{
    Graph g = makeGridGraph(40, 40, 11);
    SystemConfig cfg;
    cfg.numCores = 4;
    cfg.watchdogCycles = 300'000;
    cfg.maxCycles = 500'000'000;
    System sys(cfg);
    BfsWorkload wl(&g);
    BuildContext ctx(&sys);
    wl.build(ctx, Variant::Streaming);
    sys.configure(ctx.spec);
    auto res = sys.run();
    ASSERT_TRUE(res.finished);

    std::map<std::string, double> aggDump;
    sys.aggregateCoreStats().dump("agg", aggDump);
    std::map<std::string, double> full = sys.dumpStats();

    // cycles is wall-clock semantics: the aggregate takes the max
    // across cores, not the sum.
    double maxCycles = 0;
    for (uint32_t c = 0; c < cfg.numCores; c++) {
        maxCycles = std::max(
            maxCycles, full.at("core" + std::to_string(c) + ".cycles"));
    }
    EXPECT_EQ(maxCycles, aggDump.at("agg.cycles"));

    std::vector<std::string> names;
#define PIPETTE_NAME_STAT(name) names.push_back(#name);
    PIPETTE_CORE_STAT_COUNTERS(PIPETTE_NAME_STAT)
#undef PIPETTE_NAME_STAT
    for (size_t t = 0; t < 8; t++)
        names.push_back("committedPerThread" + std::to_string(t));
    for (size_t i = 0; i < NUM_CPI_BUCKETS; i++) {
        names.push_back(std::string("cpi.") +
                        cpiBucketName(static_cast<CpiBucket>(i)));
    }

    for (const std::string &n : names) {
        double sum = 0;
        for (uint32_t c = 0; c < cfg.numCores; c++)
            sum += full.at("core" + std::to_string(c) + "." + n);
        EXPECT_EQ(sum, aggDump.at("agg." + n)) << "counter " << n;
    }

    // The run must actually exercise the Pipette-specific counters, or
    // the sum check above proves nothing about them.
    EXPECT_GT(aggDump.at("agg.enqueues"), 0);
    EXPECT_GT(aggDump.at("agg.dequeues"), 0);
    EXPECT_GT(aggDump.at("agg.connectorTransfers"), 0);
}

} // namespace
} // namespace pipette
