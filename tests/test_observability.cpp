// Observability-layer tests (ISSUE 5): the obs layer must (a) never
// perturb simulated behavior, (b) produce byte-identical output across
// repeated runs and host-parallel execution, and (c) produce internally
// consistent histograms, interval samples, and traces (monotonic
// O3PipeView stages, structurally valid Perfetto JSON).

#include <gtest/gtest.h>

#include <cinttypes>
#include <cstdio>
#include <memory>

#include "core/system.h"
#include "parallel/sim_job_pool.h"
#include "workloads/bfs.h"
#include "workloads/cc.h"
#include "workloads/graph.h"

namespace pipette {
namespace {

// Golden bfs/Pipette numbers from test_determinism.cpp: the obs layer
// must reproduce them exactly even with every collector enabled.
constexpr uint64_t BFS_PIPETTE_CYCLES = 92599;
constexpr uint64_t BFS_PIPETTE_INSTRS = 51220;

SystemConfig
testCfg()
{
    SystemConfig cfg;
    cfg.watchdogCycles = 300'000;
    cfg.maxCycles = 500'000'000;
    return cfg;
}

struct ObsRun
{
    std::unique_ptr<Graph> g;
    std::unique_ptr<System> sys;
    System::RunResult res;
};

ObsRun
runBfs(const ObservabilityConfig &ocfg, Variant v = Variant::Pipette)
{
    ObsRun o;
    o.g = std::make_unique<Graph>(makeGridGraph(40, 40, 11));
    SystemConfig cfg = testCfg();
    cfg.observability = ocfg;
    o.sys = std::make_unique<System>(cfg);
    BfsWorkload wl(o.g.get());
    BuildContext ctx(o.sys.get());
    wl.build(ctx, v);
    o.sys->configure(ctx.spec);
    o.res = o.sys->run();
    return o;
}

ObservabilityConfig
allOn()
{
    ObservabilityConfig o;
    o.sampleInterval = 1000;
    o.histograms = true;
    o.perfetto = true;
    o.pipeview = true;
    return o;
}

std::string
readFile(const std::string &path)
{
    FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return "";
    std::string out;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, n);
    std::fclose(f);
    return out;
}

// ---------------------------------------------------------------------
// Non-perturbation

TEST(Observability, EnabledLayerDoesNotPerturbSimulation)
{
    ObsRun off = runBfs(ObservabilityConfig{});
    ObsRun on = runBfs(allOn());
    ASSERT_TRUE(off.res.finished);
    ASSERT_TRUE(on.res.finished);
    EXPECT_EQ(off.res.cycles, BFS_PIPETTE_CYCLES);
    EXPECT_EQ(off.res.instrs, BFS_PIPETTE_INSTRS);
    EXPECT_EQ(on.res.cycles, off.res.cycles);
    EXPECT_EQ(on.res.instrs, off.res.instrs);

    // Every simulated statistic must match; the obs-on dump only adds
    // "obs." keys on top. The cycle-elision totals are host-speed
    // metadata, not simulated state: the observer's per-cycle
    // collectors (interval samples, trace windows, credit-stall runs)
    // legitimately clamp or disable skips, so how much was elided
    // differs while every simulated row stays identical.
    std::map<std::string, double> offStats = off.sys->dumpStats();
    std::map<std::string, double> onStats = on.sys->dumpStats();
    for (const auto &[k, v] : offStats) {
        if (k.find("skippedCycles") != std::string::npos ||
            k.find("skipWindows") != std::string::npos)
            continue;
        auto it = onStats.find(k);
        ASSERT_NE(it, onStats.end()) << k;
        EXPECT_EQ(it->second, v) << k;
    }
    for (const auto &[k, v] : onStats) {
        if (offStats.find(k) == offStats.end()) {
            EXPECT_EQ(k.rfind("obs.", 0), 0u) << "unexpected new key " << k;
        }
    }
    EXPECT_GT(onStats.size(), offStats.size());
}

// ---------------------------------------------------------------------
// Histograms

TEST(Observability, HistogramTotalsMatchQueueTraffic)
{
    ObservabilityConfig ocfg;
    ocfg.histograms = true;
    ObsRun r = runBfs(ocfg);
    ASSERT_TRUE(r.res.finished);
    const obs::Observer *ob = r.sys->observer();
    ASSERT_NE(ob, nullptr);

    const SystemConfig &cfg = r.sys->config();
    uint64_t pushes = 0, pops = 0;
    for (uint32_t q = 0; q < cfg.core.numQueues; q++) {
        const obs::Log2Histogram &occ = ob->occupancyHist(0, q);
        const obs::Log2Histogram &wait = ob->waitHist(0, q);
        // Exactly one occupancy sample per committed enqueue, one wait
        // sample per committed dequeue, and bucket totals that cover
        // every sample (no value escapes the log2 bucketing).
        EXPECT_EQ(occ.count(), ob->queuePushes(0, q)) << "q" << q;
        EXPECT_EQ(occ.bucketTotal(), occ.count()) << "q" << q;
        EXPECT_EQ(wait.count(), ob->queuePops(0, q)) << "q" << q;
        EXPECT_EQ(wait.bucketTotal(), wait.count()) << "q" << q;
        pushes += ob->queuePushes(0, q);
        pops += ob->queuePops(0, q);
    }
    EXPECT_GT(pushes, 0u);
    EXPECT_LE(pops, pushes);

    // Core enqueues are a subset of all committed pushes (the RA also
    // pushes into its output queue).
    CoreStats agg = r.sys->aggregateCoreStats();
    EXPECT_GE(pushes, agg.enqueues);
    EXPECT_EQ(ob->totalQueuePushes(), pushes);

    // The histograms land in the flattened stats map under obs. keys.
    std::map<std::string, double> stats = r.sys->dumpStats();
    uint64_t dumped = 0;
    for (uint32_t q = 0; q < cfg.core.numQueues; q++) {
        auto it = stats.find("obs.c0.q" + std::to_string(q) +
                             ".occ.count");
        if (it != stats.end())
            dumped += static_cast<uint64_t>(it->second);
    }
    EXPECT_EQ(dumped, pushes);
}

// ---------------------------------------------------------------------
// Interval sampling

TEST(Observability, SampleRowDeltasSumToRunTotals)
{
    ObservabilityConfig ocfg;
    ocfg.sampleInterval = 1000;
    ObsRun r = runBfs(ocfg);
    ASSERT_TRUE(r.res.finished);
    const obs::Observer *ob = r.sys->observer();
    ASSERT_NE(ob, nullptr);

    const auto &rows = ob->sampleRows();
    ASSERT_GT(rows.size(), 10u); // ~92k cycles / 1k interval
    uint64_t instrs = 0, cpi = 0;
    Cycle prevCycle = 0;
    for (const auto &row : rows) {
        EXPECT_GT(row.cycle, prevCycle);
        prevCycle = row.cycle;
        instrs += row.instrs;
        for (size_t b = 0; b < NUM_CPI_BUCKETS; b++)
            cpi += row.cpi[b];
    }
    // The finalize() partial sample makes the deltas telescope to the
    // whole run.
    EXPECT_EQ(instrs, r.res.instrs);
    CoreStats agg = r.sys->aggregateCoreStats();
    uint64_t cpiTotal = 0;
    for (size_t b = 0; b < NUM_CPI_BUCKETS; b++)
        cpiTotal += agg.cpiCycles[b];
    EXPECT_EQ(cpi, cpiTotal);

    // CSV: one header plus one line per stored row.
    const std::string &csv = ob->intervalCsv();
    size_t lines = 0;
    for (char c : csv)
        lines += c == '\n';
    EXPECT_EQ(lines, rows.size() + 1);
    EXPECT_EQ(csv.rfind("cycle,instrs,uops,squashed", 0), 0u);

    std::map<std::string, double> stats = r.sys->dumpStats();
    EXPECT_EQ(stats.at("obs.samples"),
              static_cast<double>(rows.size()));
}

// ---------------------------------------------------------------------
// Traces

/** Parse one O3PipeView block's seven stage ticks; returns false at
 *  end of input and asserts on malformed blocks. */
bool
nextPipeviewBlock(const std::string &text, size_t *pos,
                  uint64_t ticks[7])
{
    size_t p = *pos;
    if (p >= text.size())
        return false;
    auto line = [&]() {
        size_t e = text.find('\n', p);
        EXPECT_NE(e, std::string::npos);
        std::string l = text.substr(p, e - p);
        p = e + 1;
        return l;
    };
    std::string fetch = line();
    EXPECT_EQ(sscanf(fetch.c_str(), "O3PipeView:fetch:%" SCNu64 ":",
                     &ticks[0]),
              1)
        << fetch;
    static const char *stages[] = {"decode", "rename", "dispatch",
                                   "issue", "complete"};
    for (int i = 0; i < 5; i++) {
        std::string l = line();
        std::string fmt =
            std::string("O3PipeView:") + stages[i] + ":%" SCNu64;
        EXPECT_EQ(sscanf(l.c_str(), fmt.c_str(), &ticks[i + 1]), 1) << l;
    }
    std::string retire = line();
    EXPECT_EQ(sscanf(retire.c_str(), "O3PipeView:retire:%" SCNu64 ":",
                     &ticks[6]),
              1)
        << retire;
    *pos = p;
    return true;
}

TEST(Observability, PipeviewTraceIsMonotonicAndNonEmpty)
{
    ObservabilityConfig ocfg;
    ocfg.pipeview = true;
    ObsRun r = runBfs(ocfg);
    ASSERT_TRUE(r.res.finished);
    const std::string &pv = r.sys->observer()->pipeviewText();
    ASSERT_FALSE(pv.empty());

    size_t pos = 0, blocks = 0;
    uint64_t ticks[7];
    uint64_t lastRetire = 0;
    while (nextPipeviewBlock(pv, &pos, ticks)) {
        blocks++;
        // Stage order within one instruction, all on 500-tick cycles.
        for (int i = 0; i < 7; i++)
            EXPECT_EQ(ticks[i] % 500, 0u);
        for (int i = 0; i < 6; i++)
            EXPECT_LE(ticks[i], ticks[i + 1]) << "block " << blocks;
        // Retire (commit) order is the emission order on one core.
        EXPECT_GE(ticks[6], lastRetire);
        lastRetire = ticks[6];
    }
    // One block per committed instruction.
    EXPECT_EQ(blocks, r.res.instrs);
}

TEST(Observability, TraceWindowBoundsCollection)
{
    ObservabilityConfig ocfg;
    ocfg.pipeview = true;
    ocfg.traceFrom = 10'000;
    ocfg.traceCycles = 5'000;
    ObsRun r = runBfs(ocfg);
    ASSERT_TRUE(r.res.finished);
    const std::string &pv = r.sys->observer()->pipeviewText();
    ASSERT_FALSE(pv.empty());
    size_t pos = 0, blocks = 0;
    uint64_t ticks[7];
    while (nextPipeviewBlock(pv, &pos, ticks)) {
        blocks++;
        EXPECT_GE(ticks[6], 10'000u * 500);
        EXPECT_LT(ticks[6], 15'000u * 500);
    }
    EXPECT_GT(blocks, 0u);
    EXPECT_LT(blocks, r.res.instrs); // strictly a window, not the run
}

TEST(Observability, PerfettoJsonIsStructurallySound)
{
    ObservabilityConfig ocfg;
    ocfg.perfetto = true;
    ObsRun r = runBfs(ocfg);
    ASSERT_TRUE(r.res.finished);
    std::string json = r.sys->observer()->perfettoJson();
    ASSERT_FALSE(json.empty());
    EXPECT_EQ(json.front(), '{');
    EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(json.find("\"displayTimeUnit\":\"ns\""),
              std::string::npos);
    // All four event kinds show up: metadata, slices, counters exist in
    // any Pipette run; instants only on abnormal stops.
    EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
    EXPECT_NE(json.find("process_name"), std::string::npos);
    EXPECT_NE(json.find("stall:"), std::string::npos);

    // Brace balance outside string literals: cheap structural parse.
    int depth = 0;
    bool inStr = false, esc = false;
    for (char c : json) {
        if (esc) {
            esc = false;
        } else if (inStr) {
            if (c == '\\')
                esc = true;
            else if (c == '"')
                inStr = false;
        } else if (c == '"') {
            inStr = true;
        } else if (c == '{' || c == '[') {
            depth++;
        } else if (c == '}' || c == ']') {
            depth--;
            EXPECT_GE(depth, 0);
        }
    }
    EXPECT_EQ(depth, 0);
    EXPECT_FALSE(inStr);
}

// ---------------------------------------------------------------------
// Determinism

TEST(Observability, OutputsAreByteIdenticalAcrossRuns)
{
    ObsRun a = runBfs(allOn());
    ObsRun b = runBfs(allOn());
    ASSERT_TRUE(a.res.finished);
    ASSERT_TRUE(b.res.finished);
    EXPECT_EQ(a.sys->observer()->perfettoJson(),
              b.sys->observer()->perfettoJson());
    EXPECT_EQ(a.sys->observer()->pipeviewText(),
              b.sys->observer()->pipeviewText());
    EXPECT_EQ(a.sys->observer()->intervalCsv(),
              b.sys->observer()->intervalCsv());
    EXPECT_EQ(a.sys->dumpStats(), b.sys->dumpStats());
}

// The same instrumented batch through SimJobPool must write the same
// trace bytes no matter how many workers simulate it (DESIGN.md
// section 8 extended to the obs layer).
TEST(Observability, TraceFilesAreByteIdenticalAcrossJobCounts)
{
    auto g = std::make_shared<Graph>(makeGridGraph(40, 40, 11));

    auto makeBatch = [&](const std::string &tag) {
        std::vector<parallel::SimJob> jobs;
        struct Cell
        {
            Variant v;
            bool cc;
        };
        const Cell cells[] = {{Variant::Pipette, false},
                              {Variant::Serial, false},
                              {Variant::Pipette, true},
                              {Variant::Serial, true}};
        for (size_t i = 0; i < 4; i++) {
            parallel::SimJob j;
            j.config = testCfg();
            ObservabilityConfig &o = j.config.observability;
            o.sampleInterval = 1000;
            o.histograms = true;
            o.perfetto = true;
            o.pipeview = true;
            std::string base = "obs_jobs_" + tag + std::to_string(i);
            o.perfettoPath = base + ".perfetto.json";
            o.pipeviewPath = base + ".pipeview";
            o.sampleCsvPath = base + ".csv";
            bool cc = cells[i].cc;
            j.make = [g, cc](uint64_t) -> std::unique_ptr<WorkloadBase> {
                if (cc)
                    return std::make_unique<CcWorkload>(g.get());
                return std::make_unique<BfsWorkload>(g.get());
            };
            j.variant = cells[i].v;
            j.input = "grid";
            j.seed = i;
            jobs.push_back(std::move(j));
        }
        return jobs;
    };

    parallel::SimJobPool serial(1), wide(4);
    std::vector<RunResult> ra = serial.runAll(makeBatch("a"));
    std::vector<RunResult> rb = wide.runAll(makeBatch("b"));
    ASSERT_EQ(ra.size(), rb.size());
    for (size_t i = 0; i < ra.size(); i++) {
        EXPECT_EQ(ra[i].cycles, rb[i].cycles) << "job " << i;
        for (const char *ext : {".perfetto.json", ".pipeview", ".csv"}) {
            std::string a =
                readFile("obs_jobs_a" + std::to_string(i) + ext);
            std::string b =
                readFile("obs_jobs_b" + std::to_string(i) + ext);
            EXPECT_FALSE(a.empty()) << "job " << i << ext;
            EXPECT_EQ(a, b) << "job " << i << ext;
            std::remove(
                ("obs_jobs_a" + std::to_string(i) + ext).c_str());
            std::remove(
                ("obs_jobs_b" + std::to_string(i) + ext).c_str());
        }
    }
}

// ---------------------------------------------------------------------
// Config fingerprint policy

TEST(Observability, FingerprintIgnoresTraceOutputsButNotStatKeys)
{
    SystemConfig base = testCfg();
    uint64_t fp = configFingerprint(base);

    // Pure output-side settings (trace collectors, paths, window) do
    // not change simulated results or the stats key set, so the sweep
    // cache stays valid.
    SystemConfig t = base;
    t.observability.perfetto = true;
    t.observability.perfettoPath = "x.json";
    t.observability.pipeview = true;
    t.observability.pipeviewPath = "x.pipeview";
    t.observability.traceFrom = 5;
    t.observability.traceCycles = 100;
    EXPECT_EQ(configFingerprint(t), fp);

    // Sampling and histograms add "obs." keys to the flattened stats
    // map, so they must invalidate cached stat dumps.
    SystemConfig s = base;
    s.observability.sampleInterval = 1000;
    EXPECT_NE(configFingerprint(s), fp);
    SystemConfig h = base;
    h.observability.histograms = true;
    EXPECT_NE(configFingerprint(h), fp);
}

TEST(Observability, FingerprintCoversEpochSchedulerKnobs)
{
    SystemConfig base = testCfg();
    uint64_t fp = configFingerprint(base);

    // epochLength quantizes cross-core exchange, changing multicore
    // simulated timing; coreJobs is result-invisible by contract but
    // still keys the cache so a row records the exact config it ran
    // under.
    SystemConfig e = base;
    e.epochLength = 8;
    EXPECT_NE(configFingerprint(e), fp);
    SystemConfig c = base;
    c.coreJobs = 4;
    EXPECT_NE(configFingerprint(c), fp);
}

// ---------------------------------------------------------------------
// Epoch scheduler: obs outputs across core-jobs

// A multicore System journals its hooks per core partition and replays
// them at epoch edges in global (cycle, core) order, so every obs
// product -- histograms, samples, traces, the obs.* stat keys -- must
// be byte-identical at any intra-System worker count.
TEST(Observability, ObsOutputsIdenticalAcrossCoreJobs)
{
    auto g = std::make_unique<Graph>(makeGridGraph(40, 40, 11));
    auto runStreaming = [&](unsigned coreJobs) {
        ObsRun o;
        SystemConfig cfg = testCfg();
        cfg.numCores = 4;
        cfg.coreJobs = coreJobs;
        cfg.observability = allOn();
        o.sys = std::make_unique<System>(cfg);
        BfsWorkload wl(g.get());
        BuildContext ctx(o.sys.get());
        wl.build(ctx, Variant::Streaming);
        o.sys->configure(ctx.spec);
        o.res = o.sys->run();
        return o;
    };
    ObsRun a = runStreaming(1);
    ObsRun b = runStreaming(4);
    ASSERT_TRUE(a.res.finished);
    ASSERT_TRUE(b.res.finished);
    EXPECT_EQ(a.res.cycles, b.res.cycles);
    EXPECT_EQ(a.res.instrs, b.res.instrs);
    EXPECT_EQ(a.sys->dumpStats(), b.sys->dumpStats());
    EXPECT_EQ(a.sys->observer()->perfettoJson(),
              b.sys->observer()->perfettoJson());
    EXPECT_EQ(a.sys->observer()->pipeviewText(),
              b.sys->observer()->pipeviewText());
    EXPECT_EQ(a.sys->observer()->intervalCsv(),
              b.sys->observer()->intervalCsv());
}

// ---------------------------------------------------------------------
// Flight-recorder import on abnormal stop

TEST(Observability, FlightEventsLandInPerfettoOnWatchdogStop)
{
    auto g = std::make_unique<Graph>(makeGridGraph(40, 40, 11));
    SystemConfig cfg = testCfg();
    cfg.watchdogCycles = 25'000;
    cfg.observability.perfetto = true;
    cfg.guardrails.flightRecorderDepth = 8;
    cfg.guardrails.faults.push_back(
        {FaultKind::BlockDynInstPool, 2000, 0, 0, 0, 0, 0});
    System sys(cfg);
    BfsWorkload wl(g.get());
    BuildContext ctx(&sys);
    wl.build(ctx, Variant::Pipette);
    sys.configure(ctx.spec);
    auto res = sys.run();
    ASSERT_FALSE(res.finished);
    EXPECT_EQ(res.stopReason, System::StopReason::WatchdogDeadlock);

    std::string json = sys.observer()->perfettoJson();
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("flight:commit"), std::string::npos);
}

} // namespace
} // namespace pipette
