// Unit tests for SimMemory and SimAllocator.

#include <gtest/gtest.h>

#include "mem/sim_memory.h"

namespace pipette {
namespace {

TEST(SimMemory, ReadWriteRoundTrip)
{
    SimMemory m;
    m.write(0x1234, 8, 0xdeadbeefcafef00dull);
    EXPECT_EQ(m.read(0x1234, 8), 0xdeadbeefcafef00dull);
    EXPECT_EQ(m.read(0x1234, 4), 0xcafef00du);
    EXPECT_EQ(m.read(0x1238, 4), 0xdeadbeefu);
    EXPECT_EQ(m.read(0x1234, 1), 0x0du);
}

TEST(SimMemory, UnmappedReadsZeroWithoutAllocating)
{
    SimMemory m;
    EXPECT_EQ(m.read(0xffff'ffff'0000ull, 8), 0u);
    EXPECT_EQ(m.mappedPages(), 0u);
}

TEST(SimMemory, CrossPageAccess)
{
    SimMemory m;
    Addr boundary = SimMemory::PAGE_SIZE - 4;
    m.write(boundary, 8, 0x1122334455667788ull);
    EXPECT_EQ(m.read(boundary, 8), 0x1122334455667788ull);
    EXPECT_EQ(m.mappedPages(), 2u);
}

TEST(SimMemory, PartialWritePreservesNeighbors)
{
    SimMemory m;
    m.write(0x100, 8, ~0ull);
    m.write(0x102, 2, 0);
    EXPECT_EQ(m.read(0x100, 8), 0xffffffff0000ffffull);
}

TEST(SimMemory, ArrayHelpers)
{
    SimMemory m;
    std::vector<uint64_t> v64 = {1, 2, 3, 4, 5};
    m.writeArray64(0x2000, v64.data(), v64.size());
    EXPECT_EQ(m.readArray64(0x2000, 5), v64);

    std::vector<uint32_t> v32 = {10, 20, 30};
    m.writeArray32(0x3000, v32.data(), v32.size());
    EXPECT_EQ(m.readArray32(0x3000, 3), v32);
}

TEST(SimMemory, Fill)
{
    SimMemory m;
    m.fill(0x4000, 16, 0xff);
    EXPECT_EQ(m.read(0x4000, 8), ~0ull);
    EXPECT_EQ(m.read(0x4008, 8), ~0ull);
    EXPECT_EQ(m.read(0x4010, 8), 0u);
}

TEST(SimAllocator, AlignmentAndMonotonicity)
{
    SimAllocator a(0x10000);
    Addr x = a.alloc(10, 64);
    Addr y = a.alloc(1, 64);
    Addr z = a.alloc(8, 8);
    EXPECT_EQ(x % 64, 0u);
    EXPECT_EQ(y % 64, 0u);
    EXPECT_GE(y, x + 10);
    EXPECT_GE(z, y + 1);
    EXPECT_EQ(z % 8, 0u);
}

TEST(SimAllocator, DisjointRegions)
{
    SimAllocator a;
    Addr x = a.alloc64(100);
    Addr y = a.alloc64(100);
    EXPECT_GE(y, x + 800);
}

} // namespace
} // namespace pipette
