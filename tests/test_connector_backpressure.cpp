// Connector backpressure tests: a consumer-stalled connector must not
// lose or duplicate entries, and credits (in-flight + destination
// occupancy vs. destination capacity) must conserve across a forced
// stall/resume -- checked every cycle by the invariant guardrail.

#include <gtest/gtest.h>

#include "core/system.h"
#include "isa/assembler.h"

namespace pipette {
namespace {

constexpr Reg QOUT = R::r11;
constexpr Reg QIN = R::r12;

/** Two cores bridged by a connector on queue 0; consumer folds with
 *  add and the producer terminates with a CV. */
struct CrossCorePipeline
{
    Program prod{"prod"};
    Program cons{"cons"};
    MachineSpec spec;
    uint32_t n;

    explicit CrossCorePipeline(uint32_t n_, bool slowConsumer = false)
        : n(n_)
    {
        {
            Asm a(&prod);
            auto loop = a.label();
            a.li(R::r1, 1);
            a.bind(loop);
            a.mov(QOUT, R::r1);
            a.addi(R::r1, R::r1, 1);
            a.blti(R::r1, n + 1, loop);
            a.enqc(QOUT, R::zero);
            a.halt();
            a.finalize();
        }
        Addr handler;
        {
            Asm a(&cons);
            auto loop = a.label();
            auto hdl = a.label("h");
            a.li(R::r1, 0);
            a.bind(loop);
            a.add(R::r1, R::r1, QIN);
            if (slowConsumer) {
                // Long dependency chain between dequeues so the
                // destination queue backs up and throttles the sender.
                a.mul(R::r2, R::r1, R::r1);
                a.mul(R::r2, R::r2, R::r2);
                a.mul(R::r2, R::r2, R::r2);
            }
            a.jmp(loop);
            a.bind(hdl);
            a.halt();
            a.finalize();
            handler = cons.labels().at("h");
        }
        spec.addThread(0, 0, &prod).queueMaps.push_back(
            {QOUT.idx, 0, QueueDir::Out});
        auto &tc = spec.addThread(1, 0, &cons);
        tc.queueMaps.push_back({QIN.idx, 0, QueueDir::In});
        tc.deqHandler = static_cast<int64_t>(handler);
        spec.connectors.push_back({0, 0, 1, 0});
    }

    uint64_t
    expect() const
    {
        return static_cast<uint64_t>(n) * (n + 1) / 2;
    }
};

SystemConfig
cfg2()
{
    SystemConfig cfg;
    cfg.numCores = 2;
    cfg.watchdogCycles = 200'000;
    cfg.maxCycles = 50'000'000;
    return cfg;
}

TEST(ConnectorBackpressure, SlowConsumerLosesNothing)
{
    // Tiny destination queue (4 credits) + slow consumer: the sender is
    // credit-throttled for most of the run. Per-cycle credit invariants
    // on, plus leak accounting at drain.
    CrossCorePipeline p(800, /*slowConsumer=*/true);
    p.spec.queueCaps.push_back({1, 0, 4});
    SystemConfig cfg = cfg2();
    cfg.guardrails.invariantChecks = true;
    System sys(cfg);
    sys.configure(p.spec);
    auto res = sys.run();
    ASSERT_TRUE(res.finished) << res.diagnosis;
    EXPECT_EQ(res.stopReason, System::StopReason::Finished);
    // Sum of 1..n is wrong if any entry was dropped or duplicated.
    EXPECT_EQ(sys.core(1).readArchReg(0, 1), p.expect());
    // Exactly n data values + 1 CV crossed the connector.
    EXPECT_EQ(sys.core(0).stats().connectorTransfers,
              static_cast<uint64_t>(p.n) + 1);
}

TEST(ConnectorBackpressure, CreditsConserveAcrossInjectedStallResume)
{
    // Freeze the connector mid-stream for 20k cycles, then resume. The
    // invariant guardrail checks credit conservation every cycle
    // through the stall and the refill burst after it; the final sum
    // proves no entry was lost or duplicated across the transition.
    CrossCorePipeline p(800);
    SystemConfig cfg = cfg2();
    cfg.guardrails.invariantChecks = true;
    cfg.guardrails.faults.push_back(
        {FaultKind::DropConnectorCredits, 1000, 20'000, 0, 0, 0, 0});
    System sys(cfg);
    sys.configure(p.spec);
    auto res = sys.run();
    ASSERT_TRUE(res.finished) << res.diagnosis;
    EXPECT_EQ(res.stopReason, System::StopReason::Finished);
    EXPECT_TRUE(res.diagnosis.empty()) << res.diagnosis;
    EXPECT_EQ(sys.core(1).readArchReg(0, 1), p.expect());
    EXPECT_EQ(sys.core(0).stats().connectorTransfers,
              static_cast<uint64_t>(p.n) + 1);
    // The stall delayed the run past the fault window.
    EXPECT_GT(res.cycles, 21'000u);
}

TEST(ConnectorBackpressure, EpochBoundaryCreditAccounting)
{
    // Epoch-barrier scheduler semantics: a credit released mid-epoch
    // (consumer dequeues, freeing destination capacity) is invisible to
    // the producer until the next epoch edge. With a 4-credit queue the
    // stream is credit-limited, so a larger epoch recycles credits more
    // slowly -- the run can only get longer -- but conservation still
    // holds exactly: nothing is lost or duplicated at any epoch length.
    Cycle cyc[2];
    for (int i = 0; i < 2; i++) {
        CrossCorePipeline p(800, /*slowConsumer=*/true);
        p.spec.queueCaps.push_back({1, 0, 4});
        SystemConfig cfg = cfg2();
        cfg.guardrails.invariantChecks = true;
        cfg.epochLength = i == 0 ? 1 : 16;
        System sys(cfg);
        sys.configure(p.spec);
        ASSERT_EQ(sys.epochLength(), cfg.epochLength);
        auto res = sys.run();
        ASSERT_TRUE(res.finished) << res.diagnosis;
        EXPECT_EQ(sys.core(1).readArchReg(0, 1), p.expect());
        EXPECT_EQ(sys.core(0).stats().connectorTransfers,
                  static_cast<uint64_t>(p.n) + 1);
        cyc[i] = res.cycles;
    }
    EXPECT_GE(cyc[1], cyc[0]);
}

TEST(ConnectorBackpressure, CreditPathIdenticalAcrossCoreJobs)
{
    // The credit-throttled stream must be byte-identical whether the
    // two core partitions share one host thread or run on two.
    Cycle cycles[2];
    uint64_t sum[2], transfers[2];
    for (int i = 0; i < 2; i++) {
        CrossCorePipeline p(800, /*slowConsumer=*/true);
        p.spec.queueCaps.push_back({1, 0, 4});
        SystemConfig cfg = cfg2();
        cfg.coreJobs = i == 0 ? 1 : 2;
        System sys(cfg);
        sys.configure(p.spec);
        auto res = sys.run();
        ASSERT_TRUE(res.finished) << res.diagnosis;
        cycles[i] = res.cycles;
        sum[i] = sys.core(1).readArchReg(0, 1);
        transfers[i] = sys.core(0).stats().connectorTransfers;
    }
    EXPECT_EQ(cycles[0], cycles[1]);
    EXPECT_EQ(sum[0], sum[1]);
    EXPECT_EQ(transfers[0], transfers[1]);
}

TEST(ConnectorBackpressure, OracleCleanAcrossConnector)
{
    // Lockstep oracle across a cross-core stream: entry order is
    // preserved by the connector, so the golden model must track the
    // core commit-for-commit even though delivery timing differs.
    CrossCorePipeline p(500);
    SystemConfig cfg = cfg2();
    cfg.guardrails.lockstepOracle = true;
    cfg.guardrails.invariantChecks = true;
    System sys(cfg);
    sys.configure(p.spec);
    auto res = sys.run();
    ASSERT_TRUE(res.finished) << res.diagnosis;
    EXPECT_EQ(res.stopReason, System::StopReason::Finished);
    EXPECT_EQ(sys.core(1).readArchReg(0, 1), p.expect());
}

} // namespace
} // namespace pipette
