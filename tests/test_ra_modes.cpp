// Reference-accelerator mode tests (IndirectPair / IndirectKV) on both
// the interpreter and the cycle-level core, plus connector credit and
// RA skip-propagation behaviour.

#include <gtest/gtest.h>

#include "core/system.h"
#include "isa/assembler.h"
#include "isa/interp.h"

namespace pipette {
namespace {

constexpr Reg QOUT = R::r11;
constexpr Reg QIN = R::r12;

struct PairSetup
{
    Program prod{"prod"};
    Program cons{"cons"};
    Addr handler = 0;
    MachineSpec spec;

    PairSetup(Addr arr, RaMode mode, uint32_t elemBytes, uint32_t n)
    {
        {
            Asm a(&prod);
            auto loop = a.label();
            a.li(R::r1, 0);
            a.bind(loop);
            a.mov(QOUT, R::r1);
            a.addi(R::r1, R::r1, 1);
            a.blti(R::r1, n, loop);
            a.enqc(QOUT, R::zero);
            a.halt();
            a.finalize();
        }
        {
            Asm a(&cons);
            auto loop = a.label();
            auto hdl = a.label("h");
            a.li(R::r1, 0); // sum of first-of-pair
            a.li(R::r2, 0); // sum of second-of-pair
            a.bind(loop);
            a.add(R::r1, R::r1, QIN);
            a.add(R::r2, R::r2, QIN);
            a.jmp(loop);
            a.bind(hdl);
            a.halt();
            a.finalize();
            handler = cons.labels().at("h");
        }
        spec.addThread(0, 0, &prod).queueMaps.push_back(
            {QOUT.idx, 0, QueueDir::Out});
        auto &tc = spec.addThread(0, 1, &cons);
        tc.queueMaps.push_back({QIN.idx, 1, QueueDir::In});
        tc.deqHandler = static_cast<int64_t>(handler);
        spec.ras.push_back({0, 0, 1, arr, elemBytes, mode});
    }
};

TEST(RaModes, IndirectPairOnInterpreterAndCore)
{
    const uint32_t n = 40;
    // A[i] = i * 11; pair mode yields (A[i], A[i+1]).
    uint64_t sumLo = 0, sumHi = 0;
    for (uint32_t i = 0; i < n; i++) {
        sumLo += 11ull * i;
        sumHi += 11ull * (i + 1);
    }

    for (int timing = 0; timing < 2; timing++) {
        SystemConfig cfg;
        System sys(cfg);
        Addr arr = 0x80000;
        for (uint32_t i = 0; i <= n; i++)
            sys.memory().write(arr + 4 * i, 4, 11 * i);
        PairSetup s(arr, RaMode::IndirectPair, 4, n);
        if (timing) {
            sys.configure(s.spec);
            ASSERT_TRUE(sys.run().finished);
            EXPECT_EQ(sys.core(0).readArchReg(1, 1), sumLo);
            EXPECT_EQ(sys.core(0).readArchReg(1, 2), sumHi);
        } else {
            Interp in(s.spec, &sys.memory());
            ASSERT_EQ(in.run().status, Interp::Status::Done);
            EXPECT_EQ(in.reg(1, 1), sumLo);
            EXPECT_EQ(in.reg(1, 2), sumHi);
        }
    }
}

TEST(RaModes, IndirectKvOnInterpreterAndCore)
{
    const uint32_t n = 40;
    uint64_t sumKeys = 0, sumVals = 0;
    for (uint32_t i = 0; i < n; i++) {
        sumKeys += i;
        sumVals += 1000ull + 3 * i;
    }
    for (int timing = 0; timing < 2; timing++) {
        SystemConfig cfg;
        System sys(cfg);
        Addr arr = 0x90000;
        for (uint32_t i = 0; i < n; i++)
            sys.memory().write(arr + 8 * i, 8, 1000 + 3 * i);
        PairSetup s(arr, RaMode::IndirectKV, 8, n);
        if (timing) {
            sys.configure(s.spec);
            ASSERT_TRUE(sys.run().finished);
            EXPECT_EQ(sys.core(0).readArchReg(1, 1), sumKeys);
            EXPECT_EQ(sys.core(0).readArchReg(1, 2), sumVals);
        } else {
            Interp in(s.spec, &sys.memory());
            ASSERT_EQ(in.run().status, Interp::Status::Done);
            EXPECT_EQ(in.reg(1, 1), sumKeys);
            EXPECT_EQ(in.reg(1, 2), sumVals);
        }
    }
}

TEST(Connector, LatencyDelaysFirstDelivery)
{
    // Measure that the consumer finishes later with a slower connector.
    auto runWith = [](uint32_t latency) {
        Program prod("prod");
        {
            Asm a(&prod);
            auto loop = a.label();
            a.li(R::r1, 0);
            a.bind(loop);
            a.mov(QOUT, R::r1);
            a.addi(R::r1, R::r1, 1);
            a.blti(R::r1, 200, loop);
            a.enqc(QOUT, R::zero);
            a.halt();
            a.finalize();
        }
        Program cons("cons");
        Addr handler;
        {
            Asm a(&cons);
            auto loop = a.label();
            auto hdl = a.label("h");
            a.bind(loop);
            a.add(R::r1, R::r1, QIN);
            a.jmp(loop);
            a.bind(hdl);
            a.halt();
            a.finalize();
            handler = cons.labels().at("h");
        }
        SystemConfig cfg;
        cfg.numCores = 2;
        cfg.connectorLatency = latency;
        System sys(cfg);
        MachineSpec spec;
        spec.addThread(0, 0, &prod).queueMaps.push_back(
            {QOUT.idx, 0, QueueDir::Out});
        auto &tc = spec.addThread(1, 0, &cons);
        tc.queueMaps.push_back({QIN.idx, 0, QueueDir::In});
        tc.deqHandler = static_cast<int64_t>(handler);
        spec.connectors.push_back({0, 0, 1, 0});
        // Keep programs alive for the run.
        static std::vector<std::unique_ptr<Program>> keep;
        keep.push_back(std::make_unique<Program>(std::move(prod)));
        keep.push_back(std::make_unique<Program>(std::move(cons)));
        spec.threads[0].prog = keep[keep.size() - 2].get();
        spec.threads[1].prog = keep[keep.size() - 1].get();
        sys.configure(spec);
        auto res = sys.run();
        EXPECT_TRUE(res.finished);
        EXPECT_EQ(sys.core(1).readArchReg(0, 1), 200ull * 199 / 2);
        return res.cycles;
    };
    Cycle fast = runWith(4);
    Cycle slow = runWith(400);
    EXPECT_GT(slow, fast);
}

TEST(Connector, CreditsBoundInflightState)
{
    // A never-consuming receiver: the producer can run at most
    // capacity(dest) values ahead through the connector.
    Program prod("prod");
    {
        Asm a(&prod);
        auto loop = a.label();
        a.li(R::r1, 0);
        a.bind(loop);
        a.mov(QOUT, R::r1);
        a.addi(R::r1, R::r1, 1);
        a.blti(R::r1, 1000, loop);
        a.halt();
        a.finalize();
    }
    Program idle("idle");
    {
        Asm a(&idle);
        auto spin = a.label();
        a.bind(spin);
        a.jmp(spin);
        a.finalize();
    }
    SystemConfig cfg;
    cfg.numCores = 2;
    cfg.watchdogCycles = 20'000;
    cfg.maxCycles = 100'000;
    System sys(cfg);
    MachineSpec spec;
    spec.addThread(0, 0, &prod).queueMaps.push_back(
        {QOUT.idx, 0, QueueDir::Out});
    spec.addThread(1, 0, &idle).queueMaps.push_back(
        {QIN.idx, 0, QueueDir::In});
    spec.connectors.push_back({0, 0, 1, 0});
    spec.queueCaps.push_back({0, 0, 8});
    spec.queueCaps.push_back({1, 0, 8});
    sys.configure(spec);
    sys.run(); // hits maxCycles (idle thread never halts)
    // Producer got at most srcCap + credits(=destCap) values out.
    uint64_t sent = sys.core(0).readArchReg(0, 1);
    EXPECT_LE(sent, 8u + 8u + 1u);
    // Receiver-side state never exceeded its capacity.
    EXPECT_LE(sys.core(1).qrm().totalSize(0), 8u);
}

} // namespace
} // namespace pipette
