// Unit tests for the assembler DSL and static instruction metadata.

#include <gtest/gtest.h>

#include "isa/assembler.h"
#include "isa/opcodes.h"

namespace pipette {
namespace {

TEST(Assembler, EmitsAndFinalizesForwardLabels)
{
    Program p("t");
    Asm a(&p);
    auto skip = a.label("skip");
    a.li(R::r1, 5);
    a.beqi(R::r1, 5, skip);
    a.li(R::r1, 99);
    a.bind(skip);
    a.halt();
    a.finalize();

    ASSERT_EQ(p.size(), 4u);
    EXPECT_EQ(p.at(1).op, Op::BEQI);
    EXPECT_EQ(p.at(1).target, 3);
    EXPECT_EQ(p.labels().at("skip"), 3u);
}

TEST(Assembler, BackwardLabel)
{
    Program p("t");
    Asm a(&p);
    auto loop = a.label("loop");
    a.li(R::r1, 3);
    a.bind(loop);
    a.addi(R::r1, R::r1, -1);
    a.bnei(R::r1, 0, loop);
    a.halt();
    a.finalize();
    EXPECT_EQ(p.at(2).target, 1);
}

TEST(Assembler, UnboundLabelPanics)
{
    Program p("t");
    Asm a(&p);
    auto l = a.label("nowhere");
    a.jmp(l);
    EXPECT_DEATH(a.finalize(), "unbound label");
}

TEST(Assembler, DoubleBindPanics)
{
    Program p("t");
    Asm a(&p);
    auto l = a.label();
    a.bind(l);
    EXPECT_DEATH(a.bind(l), "bound twice");
}

TEST(Assembler, LoadToZeroRegPanics)
{
    Program p("t");
    Asm a(&p);
    EXPECT_DEATH(a.ld(R::zero, R::r1, 0), "r0 as destination");
}

TEST(Assembler, StoreFieldLayout)
{
    Program p("t");
    Asm a(&p);
    a.sd(R::r2, R::r3, 16); // value r2 at [r3+16]
    a.finalize();
    EXPECT_EQ(p.at(0).rs1, 3); // base
    EXPECT_EQ(p.at(0).rs2, 2); // value
    EXPECT_EQ(p.at(0).imm, 16);
}

TEST(Assembler, ListingContainsLabelsAndOps)
{
    Program p("t");
    Asm a(&p);
    auto l = a.label("top");
    a.bind(l);
    a.addi(R::r1, R::r1, 1);
    a.jmp(l);
    a.finalize();
    std::string ls = p.listing();
    EXPECT_NE(ls.find("top:"), std::string::npos);
    EXPECT_NE(ls.find("addi"), std::string::npos);
}

TEST(OpInfo, MetadataConsistency)
{
    // Every opcode has a name and the table is aligned with the enum.
    EXPECT_STREQ(opInfo(Op::ADD).name, "add");
    EXPECT_STREQ(opInfo(Op::LI).name, "li");
    EXPECT_STREQ(opInfo(Op::SD).name, "sd");
    EXPECT_STREQ(opInfo(Op::BGEI).name, "bgei");
    EXPECT_STREQ(opInfo(Op::AMOCAS).name, "amocas");
    EXPECT_STREQ(opInfo(Op::SKIPTC).name, "skiptc");
    EXPECT_STREQ(opInfo(Op::ENQTRAP).name, "enqtrap");

    EXPECT_TRUE(opInfo(Op::LD).isLoad);
    EXPECT_TRUE(opInfo(Op::SW).isStore);
    EXPECT_TRUE(opInfo(Op::AMOCAS).readsRd);
    EXPECT_FALSE(opInfo(Op::AMOADD).readsRd);
    EXPECT_TRUE(opInfo(Op::BEQ).isCondBranch);
    EXPECT_TRUE(opInfo(Op::JMP).isDirectJump);
    EXPECT_TRUE(opInfo(Op::JR).isIndirectJump);
    EXPECT_EQ(opInfo(Op::LW).memBytes, 4);
    EXPECT_EQ(opInfo(Op::MUL).fu, FuType::Mul);
    EXPECT_EQ(opInfo(Op::DIVU).fu, FuType::Div);
}

TEST(OpInfo, AluEval)
{
    EXPECT_EQ(evalAlu(Op::ADD, 2, 3), 5u);
    EXPECT_EQ(evalAlu(Op::SUB, 2, 3), static_cast<uint64_t>(-1));
    EXPECT_EQ(evalAlu(Op::MUL, 7, 6), 42u);
    EXPECT_EQ(evalAlu(Op::DIVU, 42, 5), 8u);
    EXPECT_EQ(evalAlu(Op::DIVU, 42, 0), ~0ull);
    EXPECT_EQ(evalAlu(Op::REMU, 42, 5), 2u);
    EXPECT_EQ(evalAlu(Op::SLL, 1, 8), 256u);
    EXPECT_EQ(evalAlu(Op::SRA, static_cast<uint64_t>(-8), 1),
              static_cast<uint64_t>(-4));
    EXPECT_EQ(evalAlu(Op::SLT, static_cast<uint64_t>(-1), 0), 1u);
    EXPECT_EQ(evalAlu(Op::SLTU, static_cast<uint64_t>(-1), 0), 0u);
    EXPECT_EQ(evalAlu(Op::LI, 0, 1234), 1234u);
}

TEST(OpInfo, BranchEval)
{
    EXPECT_TRUE(evalBranch(Op::BEQ, 4, 4));
    EXPECT_FALSE(evalBranch(Op::BNE, 4, 4));
    EXPECT_TRUE(evalBranch(Op::BLT, static_cast<uint64_t>(-2), 1));
    EXPECT_FALSE(evalBranch(Op::BLTU, static_cast<uint64_t>(-2), 1));
    EXPECT_TRUE(evalBranch(Op::BGEU, static_cast<uint64_t>(-2), 1));
}

TEST(OpInfo, AtomicEval)
{
    auto r = evalAtomic(Op::AMOADD, 10, 5, 0);
    EXPECT_EQ(r.newValue, 15u);
    EXPECT_TRUE(r.doStore);

    r = evalAtomic(Op::AMOCAS, 10, 99, 10);
    EXPECT_TRUE(r.doStore);
    EXPECT_EQ(r.newValue, 99u);
    r = evalAtomic(Op::AMOCAS, 10, 99, 11);
    EXPECT_FALSE(r.doStore);

    r = evalAtomic(Op::AMOMINU, 10, 5, 0);
    EXPECT_EQ(r.newValue, 5u);
    r = evalAtomic(Op::AMOMAXU, 10, 5, 0);
    EXPECT_EQ(r.newValue, 10u);
    r = evalAtomic(Op::AMOOR, 0b1010, 0b0101, 0);
    EXPECT_EQ(r.newValue, 0b1111u);
}

} // namespace
} // namespace pipette
