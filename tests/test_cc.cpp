// Connected-components workload tests across all variants.

#include <gtest/gtest.h>

#include "core/system.h"
#include "isa/interp.h"
#include "workloads/cc.h"

namespace pipette {
namespace {

struct CcCase
{
    const char *graphKind;
    Variant variant;
};

std::string
caseName(const testing::TestParamInfo<CcCase> &info)
{
    std::string s = std::string(info.param.graphKind) + "_" +
                    variantName(info.param.variant);
    for (char &c : s)
        if (c == '-')
            c = '_';
    return s;
}

Graph
makeGraph(const std::string &kind)
{
    if (kind == "grid")
        return makeGridGraph(20, 20, 6);
    if (kind == "rmat")
        return makeRmatGraph(512, 1500, 10); // likely disconnected
    return makeUniformGraph(500, 2.0, 14);   // many components
}

class CcVariants : public testing::TestWithParam<CcCase>
{
};

TEST_P(CcVariants, MatchesReference)
{
    const CcCase &c = GetParam();
    Graph g = makeGraph(c.graphKind);

    SystemConfig cfg;
    cfg.numCores = c.variant == Variant::Streaming ? 4 : 1;
    cfg.watchdogCycles = 200'000;
    cfg.maxCycles = 200'000'000;
    System sys(cfg);

    CcWorkload wl(&g);
    BuildContext ctx(&sys);
    wl.build(ctx, c.variant);
    sys.configure(ctx.spec);
    auto res = sys.run();
    ASSERT_TRUE(res.finished) << sys.core(0).debugString();
    EXPECT_TRUE(wl.verify(sys));
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, CcVariants,
    testing::Values(CcCase{"grid", Variant::Serial},
                    CcCase{"grid", Variant::DataParallel},
                    CcCase{"grid", Variant::Pipette},
                    CcCase{"grid", Variant::PipetteNoRa},
                    CcCase{"grid", Variant::Streaming},
                    CcCase{"rmat", Variant::Serial},
                    CcCase{"rmat", Variant::DataParallel},
                    CcCase{"rmat", Variant::Pipette},
                    CcCase{"rmat", Variant::PipetteNoRa},
                    CcCase{"sparse", Variant::Pipette},
                    CcCase{"sparse", Variant::DataParallel}),
    caseName);

TEST(CcInterp, PipetteFunctionallyCorrect)
{
    Graph g = makeRmatGraph(256, 700, 19);
    SystemConfig cfg;
    System sys(cfg);
    CcWorkload wl(&g);
    BuildContext ctx(&sys);
    wl.build(ctx, Variant::Pipette);
    Interp in(ctx.spec, &sys.memory());
    ASSERT_EQ(in.run().status, Interp::Status::Done);
    EXPECT_TRUE(wl.verify(sys));
}

TEST(CcInterp, DataParallelFunctionallyCorrect)
{
    Graph g = makeUniformGraph(400, 3.0, 23);
    SystemConfig cfg;
    System sys(cfg);
    CcWorkload wl(&g);
    BuildContext ctx(&sys);
    wl.build(ctx, Variant::DataParallel);
    Interp in(ctx.spec, &sys.memory());
    ASSERT_EQ(in.run().status, Interp::Status::Done);
    EXPECT_TRUE(wl.verify(sys));
}

} // namespace
} // namespace pipette
