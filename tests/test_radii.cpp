// Radii-estimation workload tests across all variants.

#include <gtest/gtest.h>

#include "core/system.h"
#include "isa/interp.h"
#include "workloads/radii.h"

namespace pipette {
namespace {

struct RadiiCase
{
    const char *graphKind;
    Variant variant;
};

std::string
caseName(const testing::TestParamInfo<RadiiCase> &info)
{
    std::string s = std::string(info.param.graphKind) + "_" +
                    variantName(info.param.variant);
    for (char &c : s)
        if (c == '-')
            c = '_';
    return s;
}

Graph
makeGraph(const std::string &kind)
{
    if (kind == "grid")
        return makeGridGraph(18, 18, 31);
    if (kind == "rmat")
        return makeRmatGraph(400, 1400, 37);
    return makeUniformGraph(400, 3.5, 41);
}

class RadiiVariants : public testing::TestWithParam<RadiiCase>
{
};

TEST_P(RadiiVariants, MatchesReference)
{
    const RadiiCase &c = GetParam();
    Graph g = makeGraph(c.graphKind);

    SystemConfig cfg;
    cfg.numCores = c.variant == Variant::Streaming ? 4 : 1;
    cfg.watchdogCycles = 300'000;
    cfg.maxCycles = 300'000'000;
    System sys(cfg);

    RadiiParams params;
    params.numSources = 12;
    RadiiWorkload wl(&g, params);
    BuildContext ctx(&sys);
    wl.build(ctx, c.variant);
    sys.configure(ctx.spec);
    auto res = sys.run();
    ASSERT_TRUE(res.finished) << sys.core(0).debugString();
    EXPECT_TRUE(wl.verify(sys));
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, RadiiVariants,
    testing::Values(RadiiCase{"grid", Variant::Serial},
                    RadiiCase{"grid", Variant::DataParallel},
                    RadiiCase{"grid", Variant::Pipette},
                    RadiiCase{"grid", Variant::PipetteNoRa},
                    RadiiCase{"grid", Variant::Streaming},
                    RadiiCase{"rmat", Variant::Serial},
                    RadiiCase{"rmat", Variant::DataParallel},
                    RadiiCase{"rmat", Variant::Pipette},
                    RadiiCase{"rmat", Variant::PipetteNoRa},
                    RadiiCase{"uniform", Variant::Pipette},
                    RadiiCase{"uniform", Variant::DataParallel}),
    caseName);

TEST(RadiiInterp, PipetteFunctionallyCorrect)
{
    Graph g = makeGridGraph(14, 14, 43);
    SystemConfig cfg;
    System sys(cfg);
    RadiiParams params;
    params.numSources = 6;
    RadiiWorkload wl(&g, params);
    BuildContext ctx(&sys);
    wl.build(ctx, Variant::Pipette);
    Interp in(ctx.spec, &sys.memory());
    ASSERT_EQ(in.run().status, Interp::Status::Done);
    EXPECT_TRUE(wl.verify(sys));
}

TEST(RadiiInterp, DataParallelFunctionallyCorrect)
{
    Graph g = makeUniformGraph(300, 3.0, 47);
    SystemConfig cfg;
    System sys(cfg);
    RadiiParams params;
    params.numSources = 10;
    RadiiWorkload wl(&g, params);
    BuildContext ctx(&sys);
    wl.build(ctx, Variant::DataParallel);
    Interp in(ctx.spec, &sys.memory());
    ASSERT_EQ(in.run().status, Interp::Status::Done);
    EXPECT_TRUE(wl.verify(sys));
}

} // namespace
} // namespace pipette
